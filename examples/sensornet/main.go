// Sensornet models the sensor-network scenario from the paper's
// introduction: a field of sensors connected by radio range (a random
// geometric graph). Sensors fail (vertex deletions) and replacements are
// deployed (vertex additions) while closeness — here a proxy for routing
// centrality — is being computed. Failures skew the partitions, so the
// operator periodically requests an explicit rebalance (the paper's
// rebalancing future work).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"anytime"
)

func main() {
	// A 600-sensor field; radio range chosen for a well-connected mesh.
	field, err := anytime.GeometricGraph(600, 0.09, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %d nodes, %d links, mean degree %.1f\n",
		field.NumVertices(), field.NumEdges(),
		2*float64(field.NumEdges())/float64(field.NumVertices()))

	opts := anytime.DefaultOptions()
	opts.P = 8
	opts.Seed = 31
	e, err := anytime.NewEngine(field, opts)
	if err != nil {
		log.Fatal(err)
	}
	e.Run()
	fmt.Printf("initial analysis converged in %d RC steps\n", e.StepsTaken())

	// Operations phase: 3 rounds of failures and redeployments.
	rng := rand.New(rand.NewSource(31))
	for round := 1; round <= 3; round++ {
		// a handful of sensors fail
		for i := 0; i < 6; i++ {
			v := int32(rng.Intn(field.NumVertices()))
			if e.Alive(v) {
				if err := e.QueueVertexDel(v); err != nil {
					log.Fatal(err)
				}
			}
		}
		// replacements are deployed near existing sensors
		batch, err := anytime.PreferentialBatch(e.Graph(), 8, 3, 1, int64(round))
		if err != nil {
			log.Fatal(err)
		}
		if err := e.QueueBatch(batch); err != nil {
			log.Fatal(err)
		}
		e.Run()
		m := e.Metrics()
		fmt.Printf("round %d: graph=%dv/%de, load spread %v\n",
			round, e.Graph().NumVertices(), e.Graph().NumEdges(), m.ProcVertices)
	}

	// failures skew the partitions: rebalance explicitly
	before := e.Metrics().ProcVertices
	e.QueueRebalance()
	e.Run()
	after := e.Metrics()
	fmt.Printf("rebalanced: %v -> %v (%d rows migrated)\n",
		before, after.ProcVertices, after.RowsMigrated)

	snap := e.Snapshot()
	fmt.Println("most central sensors (routing hotspots):")
	for rank, v := range snap.TopK(3) {
		fmt.Printf("  %d. sensor %-6d C=%.6g\n", rank+1, v, snap.Closeness[v])
	}
	fmt.Printf("network diameter %d, radius %d\n", snap.Diameter(), snap.Radius())

	// final exactness spot check against the sequential oracle
	oracle := anytime.Closeness(e.Graph())
	for v := range oracle {
		d := oracle[v] - snap.Closeness[v]
		if d > 1e-15 || d < -1e-15 {
			log.Fatalf("verification failed at sensor %d", v)
		}
	}
	fmt.Println("verified against the sequential oracle")
}
