// Loadbalance dissects what the processor-assignment strategies do to the
// partition itself (the paper's Fig. 7 analysis): for growing batch sizes
// it reports, per strategy, the new cut edges created, the resulting
// per-processor load spread, and the communication volume of the
// subsequent re-convergence.
package main

import (
	"fmt"
	"log"

	"anytime"
)

func main() {
	g, err := anytime.ScaleFreeGraph(900, 3, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base graph: %d vertices, %d edges, P=8\n\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("%-8s %-14s %12s %12s %14s %12s\n",
		"batch", "strategy", "newCutEdges", "imbalance", "bytesShipped", "RCsteps")

	for _, batchSize := range []int{30, 90, 180} {
		batch, err := anytime.CommunityBatch(g, batchSize, 1.5, int64(batchSize))
		if err != nil {
			log.Fatal(err)
		}
		for _, strategy := range []anytime.Strategy{
			anytime.RoundRobinPS, anytime.CutEdgePS, anytime.RepartitionS,
		} {
			opts := anytime.DefaultOptions()
			opts.P = 8
			opts.Seed = 31
			opts.Strategy = strategy
			e, err := anytime.NewEngine(g, opts)
			if err != nil {
				log.Fatal(err)
			}
			e.Run()
			before := e.Metrics()
			if err := e.QueueBatch(batch); err != nil {
				log.Fatal(err)
			}
			e.Run()
			after := e.Metrics()

			// load imbalance factor over vertices after the additions
			max, sum := 0, 0
			for _, s := range after.ProcVertices {
				sum += s
				if s > max {
					max = s
				}
			}
			imb := float64(max) * float64(len(after.ProcVertices)) / float64(sum)

			fmt.Printf("%-8d %-14s %12d %12.3f %14d %12d\n",
				batchSize, strategy,
				after.NewCutEdges-before.NewCutEdges,
				imb,
				after.Comm.Bytes-before.Comm.Bytes,
				after.RCSteps-before.RCSteps)
		}
		fmt.Println()
	}
	fmt.Println("reading the table: RoundRobin-PS keeps vertex counts flat but scatters")
	fmt.Println("communities across processors (most new cut edges); CutEdge-PS keeps")
	fmt.Println("communities together; Repartition-S re-optimizes the whole cut at the")
	fmt.Println("price of repartitioning and extra RC steps")
}
