// Citations models a growing citation network (one of the paper's
// motivating vertex-addition workloads): a conference publishes its yearly
// proceedings as a large, community-structured batch of new papers — whole
// research communities arrive at once. The example compares the three
// processor-assignment strategies on the same batch, the paper's Fig. 5/6
// scenario.
package main

import (
	"fmt"
	"log"

	"anytime"
)

func main() {
	// Existing corpus.
	corpus, err := anytime.ScaleFreeGraph(1000, 2, 5)
	if err != nil {
		log.Fatal(err)
	}

	// A year's proceedings: 120 new papers in tight topical clusters,
	// citing each other heavily and anchoring into the existing corpus.
	proceedings, err := anytime.CommunityBatch(corpus, 120, 2.0, 17)
	if err != nil {
		log.Fatal(err)
	}
	labels, k, q := anytime.Communities(proceedings.BatchGraph(), 5)
	_ = labels
	fmt.Printf("corpus: %d papers; proceedings: %d papers in ~%d communities (Q=%.2f)\n",
		corpus.NumVertices(), proceedings.NumVertices, k, q)

	for _, strategy := range []anytime.Strategy{
		anytime.RoundRobinPS, anytime.CutEdgePS, anytime.RepartitionS,
	} {
		opts := anytime.DefaultOptions()
		opts.P = 8
		opts.Seed = 5
		opts.Strategy = strategy

		e, err := anytime.NewEngine(corpus, opts)
		if err != nil {
			log.Fatal(err)
		}
		e.Run() // analysis converged before the proceedings land
		before := e.Metrics()

		if err := e.QueueBatch(proceedings); err != nil {
			log.Fatal(err)
		}
		e.Run()
		after := e.Metrics()

		fmt.Printf("%-14s absorb=%-12v newCutEdges=%-5d rowsMigrated=%-4d maxLoad=%v\n",
			strategy,
			(after.VirtualTime - before.VirtualTime).Round(1000000),
			after.NewCutEdges-before.NewCutEdges,
			after.RowsMigrated-before.RowsMigrated,
			maxOf(after.ProcVertices))
	}
	fmt.Println("expected: CutEdge-PS creates fewer cut edges than RoundRobin-PS;")
	fmt.Println("Repartition-S fewest cuts but pays partitioning+migration — it wins only for large batches")
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
