// Liveserve demonstrates the live query-serving subsystem: the engine
// converges and absorbs a dynamic event stream on a background driver
// while concurrent readers query top-k closeness over HTTP the whole
// time. Every recombination step publishes a fresh immutable snapshot —
// the paper's anytime property turned into a serving guarantee — so the
// readers observe a monotonically increasing snapshot version and a
// ranking that is always usable, never blocked on ingestion.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"anytime"
)

func main() {
	const (
		members = 600 // initial community size
		seed    = 42
		readers = 6
	)
	base, err := anytime.ScaleFreeGraph(members, 2, seed)
	if err != nil {
		log.Fatal(err)
	}
	opts := anytime.DefaultOptions()
	opts.P = 8
	opts.Seed = seed
	opts.Strategy = anytime.AutoPS
	e, err := anytime.NewEngine(base, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The serving layer owns the engine from here on.
	srv, err := anytime.NewServer(e, anytime.ServeConfig{PublishEvery: 1, TopKIndex: 32})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	url := "http://" + ln.Addr().String()
	fmt.Printf("serving %d members at %s\n", members, url)

	// A growth-with-churn stream: new members joining with their edges,
	// relationships forming and dissolving, while queries keep landing.
	stream, err := anytime.GenerateStream(base, anytime.StreamConfig{
		Ticks: 80, JoinsPerTick: 2, Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent readers hammer the top-k endpoint for the whole run.
	var (
		done       atomic.Bool
		queries    atomic.Int64
		maxVersion atomic.Uint64
		wg         sync.WaitGroup
	)
	ctx := context.Background()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &anytime.ServeClient{BaseURL: url}
			for !done.Load() {
				tk, err := client.TopK(ctx, 5)
				if err != nil {
					continue
				}
				queries.Add(1)
				for {
					seen := maxVersion.Load()
					if tk.Version <= seen || maxVersion.CompareAndSwap(seen, tk.Version) {
						break
					}
				}
			}
		}()
	}

	// Ingest the stream in time windows, printing the snapshot-version
	// progression the readers observe.
	client := &anytime.ServeClient{BaseURL: url}
	windows := stream.Window(8)
	for i, evs := range windows {
		for {
			_, err := client.PostEvents(ctx, evs)
			if errors.Is(err, anytime.ErrBackpressure) {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			break
		}
		if (i+1)%3 == 0 || i == len(windows)-1 {
			m, err := client.Snapshot(ctx)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  window %2d/%d: snapshot v%-4d %4d vertices, depth %d, converged=%v, %d queries answered\n",
				i+1, len(windows), m.Version, m.Vertices, m.QueueDepth, m.Converged, queries.Load())
		}
	}

	// Drain in-flight requests, then converge and stop the driver.
	httpSrv.Shutdown(ctx)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	done.Store(true)
	wg.Wait()

	final := srv.View()
	fmt.Printf("ingested %d events; %d snapshots published, %d queries served during ingestion\n",
		len(stream.Events), final.Version, queries.Load())
	fmt.Printf("final (converged=%v) top 5 by closeness:\n", final.Converged)
	for rank, v := range final.TopK(5) {
		fmt.Printf("  %d. vertex %-6d C=%.6g\n", rank+1, v, final.Snap.Closeness[v])
	}
	if v := maxVersion.Load(); v < 2 {
		log.Fatalf("readers observed only snapshot version %d during ingestion", v)
	}

	// Verify against the sequential oracle on the grown graph.
	grown := base.Clone()
	if err := stream.Apply(grown); err != nil {
		log.Fatal(err)
	}
	oracle := anytime.Closeness(grown)
	for _, v := range final.TopK(5) {
		if final.Snap.Closeness[v] != oracle[v] {
			log.Fatalf("vertex %d: served %g != oracle %g", v, final.Snap.Closeness[v], oracle[v])
		}
	}
	fmt.Println("verified: served ranking identical to from-scratch recomputation")
}
