// Socialstream models the paper's motivating scenario (and its Fig. 8
// experiment): an online community whose member base grows continuously
// while the analysis is running. New members arrive in small waves at
// every recombination step; the engine absorbs each wave without
// restarting and the closeness ranking stays current.
//
// The same stream is fed to the baseline-restart comparator to show the
// cost of not having the anytime/anywhere properties.
package main

import (
	"fmt"
	"log"

	"anytime"
)

func main() {
	const (
		members = 800 // initial community size
		joiners = 200 // total new members arriving
		waves   = 10  // spread over this many RC steps
	)
	g, err := anytime.ScaleFreeGraph(members, 3, 11)
	if err != nil {
		log.Fatal(err)
	}

	opts := anytime.DefaultOptions()
	opts.P = 8
	opts.Seed = 11
	opts.Strategy = anytime.RoundRobinPS

	e, err := anytime.NewEngine(g, opts)
	if err != nil {
		log.Fatal(err)
	}

	// One community-structured cohort of joiners, split into waves that
	// arrive at consecutive steps (friends tend to join together, so later
	// waves bring edges back to earlier joiners).
	cohort, err := anytime.CommunityBatch(g, joiners, 1.5, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("community of %d; %d joiners arriving in %d waves\n", members, joiners, waves)

	for i, wave := range anytime.SplitBatch(cohort, waves) {
		if err := e.QueueBatch(wave); err != nil {
			log.Fatal(err)
		}
		e.Step()
		snap := e.Snapshot()
		top := snap.TopK(1)[0]
		fmt.Printf("  wave %2d: +%3d members (graph=%d), current top vertex %d (C=%.6g)\n",
			i+1, wave.NumVertices, e.Graph().NumVertices(), top, snap.Closeness[top])
	}
	e.Run()
	m := e.Metrics()
	fmt.Printf("stream absorbed: converged in %d total RC steps, %v simulated time\n",
		e.StepsTaken(), m.VirtualTime.Round(1000000))

	// The same stream through the baseline: restart on every wave.
	r, err := anytime.NewBaselineRestart(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	before := r.Metrics().VirtualTime
	for _, wave := range anytime.SplitBatch(cohort, waves) {
		if err := r.ApplyBatch(wave); err != nil {
			log.Fatal(err)
		}
	}
	restartCost := r.Metrics().VirtualTime - before
	fmt.Printf("baseline restart for the same stream: %v simulated time (%.1fx the anytime-anywhere cost)\n",
		restartCost.Round(1000000), float64(restartCost)/float64(m.VirtualTime))

	// Both must agree exactly.
	a, b := e.Snapshot(), r.Snapshot()
	for v := range a.Closeness {
		if a.Closeness[v] != b.Closeness[v] {
			log.Fatalf("mismatch at vertex %d", v)
		}
	}
	fmt.Println("verified: anytime-anywhere result identical to full recomputation")
}
