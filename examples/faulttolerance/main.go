// Faulttolerance demonstrates the checkpoint/restore extension (the
// paper's stated future work on fault tolerance in the cloud): a long
// analysis checkpoints at recombination-step boundaries; when the process
// "crashes" mid-run, a fresh engine restores from the last checkpoint and
// continues — landing on the bit-identical result, with all cost counters
// preserved. Engine trace events show the phases as they happen.
package main

import (
	"bytes"
	"fmt"
	"log"

	"anytime"
)

func main() {
	g, err := anytime.ScaleFreeGraph(800, 3, 99)
	if err != nil {
		log.Fatal(err)
	}

	opts := anytime.DefaultOptions()
	opts.P = 8
	opts.Seed = 99
	opts.Strategy = anytime.CutEdgePS
	opts.Trace = func(ev anytime.TraceEvent) {
		fmt.Printf("  [trace] step=%-3d %-10s %s (virtual %v)\n",
			ev.Step, ev.Kind, ev.Detail, ev.Virtual.Round(1000000))
	}

	fmt.Println("primary run with per-step checkpoints:")
	e, err := anytime.NewEngine(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := anytime.CommunityBatch(g, 80, 1.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.QueueBatch(batch); err != nil {
		log.Fatal(err)
	}

	var lastCheckpoint bytes.Buffer
	crashAfter := 2
	for i := 0; ; i++ {
		more := e.Step()
		lastCheckpoint.Reset()
		if err := e.WriteCheckpoint(&lastCheckpoint); err != nil {
			log.Fatal(err)
		}
		if i+1 == crashAfter {
			fmt.Printf("\n!! simulated crash after RC step %d (checkpoint: %d bytes)\n\n",
				e.StepsTaken(), lastCheckpoint.Len())
			break
		}
		if !more {
			break
		}
	}

	fmt.Println("recovery: restoring into a fresh engine and continuing:")
	opts.Trace = nil // quiet for the recovery run
	r, err := anytime.RestoreEngine(&lastCheckpoint, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  restored at RC step %d with %d vertices\n", r.StepsTaken(), r.Graph().NumVertices())
	r.Run()
	got := r.Snapshot()

	// Reference: the same computation without the crash.
	ref, err := anytime.NewEngine(g, anytime.Options{
		P: 8, Seed: 99, Strategy: anytime.CutEdgePS,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.QueueBatch(batch); err != nil {
		log.Fatal(err)
	}
	ref.Run()
	want := ref.Snapshot()

	for v := range want.Closeness {
		if got.Closeness[v] != want.Closeness[v] {
			log.Fatalf("recovered run diverged at vertex %d", v)
		}
	}
	fmt.Printf("  recovered run converged at RC step %d — identical to the uninterrupted run\n", r.StepsTaken())
	fmt.Printf("  accumulated metrics survived: %d messages, %v virtual time\n",
		r.Metrics().Comm.Messages, r.Metrics().VirtualTime.Round(1000000))
}
