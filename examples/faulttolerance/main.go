// Faulttolerance demonstrates the checkpoint/restore extension (the
// paper's stated future work on fault tolerance in the cloud): a long
// analysis checkpoints at recombination-step boundaries; when the process
// "crashes" mid-run, a fresh engine restores from the last checkpoint and
// continues — landing on the bit-identical result, with all cost counters
// preserved. Engine trace events show the phases as they happen.
//
// The second half turns on the seeded fault-injection layer inside the
// simulated cluster itself: messages drop, duplicate, delay, and corrupt
// on the wire, and a scheduled processor crash is recovered from its
// periodic in-memory shard — yet recombination still converges to exactly
// the fault-free answer.
package main

import (
	"bytes"
	"fmt"
	"log"

	"anytime"
)

func main() {
	g, err := anytime.ScaleFreeGraph(800, 3, 99)
	if err != nil {
		log.Fatal(err)
	}

	opts := anytime.DefaultOptions()
	opts.P = 8
	opts.Seed = 99
	opts.Strategy = anytime.CutEdgePS
	opts.Trace = func(ev anytime.TraceEvent) {
		fmt.Printf("  [trace] step=%-3d %-10s %s (virtual %v)\n",
			ev.Step, ev.Kind, ev.Detail, ev.Virtual.Round(1000000))
	}

	fmt.Println("primary run with per-step checkpoints:")
	e, err := anytime.NewEngine(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	batch, err := anytime.CommunityBatch(g, 80, 1.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.QueueBatch(batch); err != nil {
		log.Fatal(err)
	}

	var lastCheckpoint bytes.Buffer
	crashAfter := 2
	for i := 0; ; i++ {
		more := e.Step()
		lastCheckpoint.Reset()
		if err := e.WriteCheckpoint(&lastCheckpoint); err != nil {
			log.Fatal(err)
		}
		if i+1 == crashAfter {
			fmt.Printf("\n!! simulated crash after RC step %d (checkpoint: %d bytes)\n\n",
				e.StepsTaken(), lastCheckpoint.Len())
			break
		}
		if !more {
			break
		}
	}

	fmt.Println("recovery: restoring into a fresh engine and continuing:")
	opts.Trace = nil // quiet for the recovery run
	r, err := anytime.RestoreEngine(&lastCheckpoint, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  restored at RC step %d with %d vertices\n", r.StepsTaken(), r.Graph().NumVertices())
	r.Run()
	got := r.Snapshot()

	// Reference: the same computation without the crash.
	ref, err := anytime.NewEngine(g, anytime.Options{
		P: 8, Seed: 99, Strategy: anytime.CutEdgePS,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.QueueBatch(batch); err != nil {
		log.Fatal(err)
	}
	ref.Run()
	want := ref.Snapshot()

	for v := range want.Closeness {
		if got.Closeness[v] != want.Closeness[v] {
			log.Fatalf("recovered run diverged at vertex %d", v)
		}
	}
	fmt.Printf("  recovered run converged at RC step %d — identical to the uninterrupted run\n", r.StepsTaken())
	fmt.Printf("  accumulated metrics survived: %d messages, %v virtual time\n",
		r.Metrics().Comm.Messages, r.Metrics().VirtualTime.Round(1000000))

	chaos(g, batch, want)
}

// chaos reruns the same batch on a deliberately hostile simulated cluster
// — lossy links plus a scheduled processor crash recovered in-engine from
// its shard — and checks the answer against the fault-free reference.
func chaos(g *anytime.Graph, batch *anytime.Batch, want anytime.Snapshot) {
	fmt.Println("\nchaos run: lossy links + a mid-recombination processor crash:")
	opts := anytime.DefaultOptions()
	opts.P = 8
	opts.Seed = 99
	opts.Strategy = anytime.CutEdgePS
	opts.Faults = &anytime.FaultPlan{
		Seed:          2026,
		DropRate:      0.05,
		DuplicateRate: 0.02,
		DelayRate:     0.05,
		CorruptRate:   0.02,
		Crashes:       []anytime.FaultCrash{{Proc: 3, Step: 4, DownFor: 2}},
	}
	opts.Trace = func(ev anytime.TraceEvent) {
		if ev.Kind == "crash" || ev.Kind == "rejoin" {
			fmt.Printf("  [trace] step=%-3d %-10s %s\n", ev.Step, ev.Kind, ev.Detail)
		}
	}
	c, err := anytime.NewEngine(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.QueueBatch(batch); err != nil {
		log.Fatal(err)
	}
	c.Run()

	got := c.Snapshot()
	for v := range want.Closeness {
		if got.Closeness[v] != want.Closeness[v] {
			log.Fatalf("chaos run diverged at vertex %d", v)
		}
	}
	m := c.Metrics()
	fmt.Printf("  network: %d dropped, %d duplicated, %d delayed, %d corrupted, %d resends\n",
		m.Comm.Dropped, m.Comm.Duplicated, m.Comm.Delayed, m.Comm.Corrupted, m.Comm.Resends)
	fmt.Printf("  recovery: %d crash, %d rejoin, %d shards written (%d bytes)\n",
		m.Crashes, m.Recoveries, m.ShardsWritten, m.ShardBytes)
	fmt.Printf("  chaos run converged at RC step %d — identical to the fault-free run\n", c.StepsTaken())
}
