// Quickstart: compute closeness centrality on a scale-free graph with the
// anytime-anywhere engine, interrupt it mid-run for an anytime estimate,
// add vertices mid-analysis, and read back the exact result.
package main

import (
	"fmt"
	"log"

	"anytime"
)

func main() {
	// 1. A connected scale-free graph — the paper's input regime.
	g, err := anytime.ScaleFreeGraph(1000, 3, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 2. Engine over 8 simulated processors (DD + IA run here).
	opts := anytime.DefaultOptions()
	opts.P = 8
	opts.Seed = 42
	e, err := anytime.NewEngine(g, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Anytime: take a snapshot after a single recombination step. The
	// estimates are usable immediately and only improve afterwards.
	e.Step()
	early := e.Snapshot()
	fmt.Printf("after RC step 1 (converged=%v): vertex 0 closeness >= %.6g\n",
		early.Converged, early.Closeness[0])

	// 4. Anywhere: a batch of 50 new community-structured vertices arrives
	// while the analysis is still running.
	batch, err := anytime.CommunityBatch(g, 50, 1.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := e.QueueBatch(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queued %d new vertices with %d edges\n", batch.NumVertices, batch.NumEdges())

	// 5. Run to convergence: the result now covers the grown graph and is
	// exact (equal to recomputing from scratch), at a fraction of the cost.
	e.Run()
	snap := e.Snapshot()
	fmt.Printf("converged after %d RC steps on %d vertices\n",
		e.StepsTaken(), e.Graph().NumVertices())

	fmt.Println("top 5 by closeness:")
	for rank, v := range snap.TopK(5) {
		fmt.Printf("  %d. vertex %-6d C=%.6g\n", rank+1, v, snap.Closeness[v])
	}

	// 6. The recombination phase maintains DVR routing tables, so exact
	// shortest paths can be reconstructed across the simulated processors.
	top := snap.TopK(1)[0]
	newest := int32(e.Graph().NumVertices() - 1) // a dynamically added vertex
	path, err := e.Path(int32(top), newest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortest path from top vertex %d to new vertex %d: %v\n", top, newest, path)

	m := e.Metrics()
	fmt.Printf("cost: %v simulated cluster time, %d messages, %d bytes shipped\n",
		m.VirtualTime.Round(1000000), m.Comm.Messages, m.Comm.Bytes)
}
