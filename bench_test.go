// Benchmarks regenerating the paper's evaluation, one target per
// table/figure (Figs. 4-8 and the analysis-bounds table), plus ablation
// benches for the design choices called out in DESIGN.md and micro-benches
// of the engine phases.
//
// Wall time is what testing.B measures; every figure bench additionally
// reports the simulated-cluster LogP time as "virt-ms/op" (the unit the
// paper plots, scaled), and Fig. 7 reports "new-cut-edges".
//
// Run with: go test -bench=. -benchmem
package anytime_test

import (
	"testing"

	"anytime"
	"anytime/internal/change"
	"anytime/internal/core"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/partition"
)

const (
	benchN    = 400
	benchP    = 4
	benchSeed = 1
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.BarabasiAlbert(benchN, 3, gen.Weights{}, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	gen.Connectify(g, benchSeed)
	return g
}

func benchOptions(strat core.Strategy) core.Options {
	o := core.NewOptions()
	o.P = benchP
	o.Seed = benchSeed
	o.Strategy = strat
	o.Workers = 2
	return o
}

func benchBatch(b *testing.B, g *graph.Graph, k int) *change.VertexBatch {
	b.Helper()
	batch, err := gen.CommunityBatch(g, k, 1.5, gen.Weights{}, benchSeed+int64(k))
	if err != nil {
		b.Fatal(err)
	}
	return batch
}

// absorbBench measures absorbing one batch injected at the given RC step.
func absorbBench(b *testing.B, strat core.Strategy, injectStep, batchSize int, opts core.Options) {
	g := benchGraph(b)
	batch := benchBatch(b, g, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	var virt, cuts float64
	for i := 0; i < b.N; i++ {
		e, err := core.New(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < injectStep && e.Step(); s++ {
		}
		if err := e.QueueBatch(batch); err != nil {
			b.Fatal(err)
		}
		e.Run()
		if !e.Converged() {
			b.Fatal("did not converge")
		}
		m := e.Metrics()
		virt += m.VirtualTime.Seconds() * 1000
		cuts += float64(m.NewCutEdges)
	}
	b.ReportMetric(virt/float64(b.N), "virt-ms/op")
	b.ReportMetric(cuts/float64(b.N), "new-cut-edges")
}

// --- Fig. 4: baseline restart vs anytime anywhere ---

func BenchmarkFig4_AnytimeRC0(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 0, 16, benchOptions(core.RoundRobinPS))
}

func BenchmarkFig4_AnytimeRC4(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 4, 16, benchOptions(core.RoundRobinPS))
}

func BenchmarkFig4_AnytimeRC8(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 8, 16, benchOptions(core.RoundRobinPS))
}

func BenchmarkFig4_BaselineRestart(b *testing.B) {
	g := benchGraph(b)
	batch := benchBatch(b, g, 16)
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		r, err := core.NewRestart(g, benchOptions(core.RoundRobinPS))
		if err != nil {
			b.Fatal(err)
		}
		if err := r.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		virt += r.Metrics().VirtualTime.Seconds() * 1000
	}
	b.ReportMetric(virt/float64(b.N), "virt-ms/op")
}

// --- Figs. 5/7: strategy sweep at RC0 (Fig. 7 = the new-cut-edges metric
// these benches report) ---

func BenchmarkFig5_RoundRobinPS(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 0, 48, benchOptions(core.RoundRobinPS))
}

func BenchmarkFig5_CutEdgePS(b *testing.B) {
	absorbBench(b, core.CutEdgePS, 0, 48, benchOptions(core.CutEdgePS))
}

func BenchmarkFig5_RepartitionS(b *testing.B) {
	absorbBench(b, core.RepartitionS, 0, 48, benchOptions(core.RepartitionS))
}

// Fig. 7 at the largest sweep point, where the cut-edge gap is widest.
func BenchmarkFig7_RoundRobinPS_LargeBatch(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 0, 96, benchOptions(core.RoundRobinPS))
}

func BenchmarkFig7_CutEdgePS_LargeBatch(b *testing.B) {
	absorbBench(b, core.CutEdgePS, 0, 96, benchOptions(core.CutEdgePS))
}

func BenchmarkFig7_RepartitionS_LargeBatch(b *testing.B) {
	absorbBench(b, core.RepartitionS, 0, 96, benchOptions(core.RepartitionS))
}

// --- Fig. 6: strategy sweep with late injection (RC8) ---

func BenchmarkFig6_RoundRobinPS(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 8, 48, benchOptions(core.RoundRobinPS))
}

func BenchmarkFig6_CutEdgePS(b *testing.B) {
	absorbBench(b, core.CutEdgePS, 8, 48, benchOptions(core.CutEdgePS))
}

func BenchmarkFig6_RepartitionS(b *testing.B) {
	absorbBench(b, core.RepartitionS, 8, 48, benchOptions(core.RepartitionS))
}

// --- Fig. 8: incremental additions over 10 RC steps ---

func incrementalBench(b *testing.B, strat core.Strategy) {
	g := benchGraph(b)
	full := benchBatch(b, g, 60)
	parts := gen.SplitBatch(full, 10)
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		e, err := core.New(g, benchOptions(strat))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range parts {
			if err := e.QueueBatch(p); err != nil {
				b.Fatal(err)
			}
			e.Step()
		}
		e.Run()
		virt += e.Metrics().VirtualTime.Seconds() * 1000
	}
	b.ReportMetric(virt/float64(b.N), "virt-ms/op")
}

func BenchmarkFig8_RoundRobinPS(b *testing.B) { incrementalBench(b, core.RoundRobinPS) }
func BenchmarkFig8_CutEdgePS(b *testing.B)    { incrementalBench(b, core.CutEdgePS) }
func BenchmarkFig8_RepartitionS(b *testing.B) { incrementalBench(b, core.RepartitionS) }

func BenchmarkFig8_BaselineRestart(b *testing.B) {
	g := benchGraph(b)
	full := benchBatch(b, g, 60)
	parts := gen.SplitBatch(full, 10)
	b.ReportAllocs()
	b.ResetTimer()
	var virt float64
	for i := 0; i < b.N; i++ {
		r, err := core.NewRestart(g, benchOptions(core.RoundRobinPS))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range parts {
			if err := r.ApplyBatch(p); err != nil {
				b.Fatal(err)
			}
		}
		virt += r.Metrics().VirtualTime.Seconds() * 1000
	}
	b.ReportMetric(virt/float64(b.N), "virt-ms/op")
}

// --- Analysis-bounds table: a full static run, reporting the measured
// counters the LogP analysis bounds ---

func BenchmarkAnalysisBounds(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	var ia, rc, bytes float64
	for i := 0; i < b.N; i++ {
		e, err := core.New(g, benchOptions(core.RoundRobinPS))
		if err != nil {
			b.Fatal(err)
		}
		e.Run()
		m := e.Metrics()
		ia += float64(m.IAOps)
		rc += float64(m.RCOps)
		bytes += float64(m.Comm.Bytes)
	}
	b.ReportMetric(ia/float64(b.N), "IA-ops")
	b.ReportMetric(rc/float64(b.N), "RC-ops")
	b.ReportMetric(bytes/float64(b.N), "RC-bytes")
}

// --- Ablation benches (DESIGN.md section 6) ---

func BenchmarkAblation_LocalRefineOn(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 0, 48, benchOptions(core.RoundRobinPS))
}

func BenchmarkAblation_LocalRefineOff(b *testing.B) {
	o := benchOptions(core.RoundRobinPS)
	o.NoLocalRefine = true
	absorbBench(b, core.RoundRobinPS, 0, 48, o)
}

func BenchmarkAblation_DirtyOnlyShipping(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 4, 48, benchOptions(core.RoundRobinPS))
}

func BenchmarkAblation_ShipAllBoundary(b *testing.B) {
	o := benchOptions(core.RoundRobinPS)
	o.ShipAllBoundary = true
	absorbBench(b, core.RoundRobinPS, 4, 48, o)
}

func BenchmarkAblation_SerializedComm(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 0, 48, benchOptions(core.RoundRobinPS))
}

func BenchmarkAblation_ParallelComm(b *testing.B) {
	o := benchOptions(core.RoundRobinPS)
	o.ParallelComm = true
	absorbBench(b, core.RoundRobinPS, 0, 48, o)
}

func BenchmarkAblation_MsgCap4K(b *testing.B) {
	o := benchOptions(core.RoundRobinPS)
	o.MaxMsgBytes = 4 << 10
	absorbBench(b, core.RoundRobinPS, 0, 48, o)
}

func BenchmarkAblation_MsgCap1M(b *testing.B) {
	o := benchOptions(core.RoundRobinPS)
	o.MaxMsgBytes = 1 << 20
	absorbBench(b, core.RoundRobinPS, 0, 48, o)
}

func BenchmarkAblation_DDMultilevel(b *testing.B) {
	absorbBench(b, core.RoundRobinPS, 0, 48, benchOptions(core.RoundRobinPS))
}

func BenchmarkAblation_DDGreedy(b *testing.B) {
	o := benchOptions(core.RoundRobinPS)
	o.Partitioner = partition.Greedy{Seed: benchSeed}
	absorbBench(b, core.RoundRobinPS, 0, 48, o)
}

func BenchmarkAblation_DDRoundRobin(b *testing.B) {
	o := benchOptions(core.RoundRobinPS)
	o.Partitioner = partition.RoundRobin{}
	absorbBench(b, core.RoundRobinPS, 0, 48, o)
}

func BenchmarkAblation_CutEdgeGreedyMapping(b *testing.B) {
	absorbBench(b, core.CutEdgePS, 0, 48, benchOptions(core.CutEdgePS))
}

func BenchmarkAblation_CutEdgeNaiveMapping(b *testing.B) {
	o := benchOptions(core.CutEdgePS)
	o.NaiveBatchMapping = true
	absorbBench(b, core.CutEdgePS, 0, 48, o)
}

// --- Engine-phase micro-benches ---

func BenchmarkPhaseDDandIA(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(g, benchOptions(core.RoundRobinPS)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhaseRCStep(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := core.New(g, benchOptions(core.RoundRobinPS))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		e.Step() // the first (heaviest) recombination step
	}
}

func BenchmarkSnapshot(b *testing.B) {
	g := benchGraph(b)
	e, err := core.New(g, benchOptions(core.RoundRobinPS))
	if err != nil {
		b.Fatal(err)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Snapshot()
	}
}

// Public-API end-to-end bench: the quickstart flow.
func BenchmarkPublicAPIEndToEnd(b *testing.B) {
	g, err := anytime.ScaleFreeGraph(benchN, 3, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	opts := anytime.DefaultOptions()
	opts.P = benchP
	opts.Seed = benchSeed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := anytime.NewEngine(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		batch, err := anytime.PreferentialBatch(g, 16, 2, 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.QueueBatch(batch); err != nil {
			b.Fatal(err)
		}
		e.Run()
		_ = e.Snapshot()
	}
}
