module anytime

go 1.22
