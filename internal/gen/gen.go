// Package gen provides deterministic, seeded random graph generators used as
// workloads: Barabási–Albert scale-free graphs (the paper's Pajek-generated
// inputs), Erdős–Rényi, Watts–Strogatz, planted-partition (SBM) community
// graphs, R-MAT, and the vertex-addition batch generator that carves
// community-structured batches out of a reservoir graph.
package gen

import (
	"fmt"
	"math/rand"

	"anytime/internal/graph"
)

// Weights controls edge-weight assignment for generators.
type Weights struct {
	Min graph.Weight // minimum weight (inclusive); 0 means unit weights
	Max graph.Weight // maximum weight (inclusive)
}

func (w Weights) draw(rng *rand.Rand) graph.Weight {
	if w.Min <= 0 || w.Max < w.Min {
		return 1
	}
	if w.Min == w.Max {
		return w.Min
	}
	return w.Min + graph.Weight(rng.Intn(int(w.Max-w.Min)+1))
}

// BarabasiAlbert generates a scale-free graph with n vertices via
// preferential attachment: it starts from a small clique of m0 = m+1
// vertices and attaches every subsequent vertex with m edges whose targets
// are chosen proportionally to current degree. Matches the regime of the
// paper's Pajek scale-free inputs.
func BarabasiAlbert(n, m int, w Weights, seed int64) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert m=%d < 1", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert n=%d too small for m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	// repeated-targets list for O(1) preferential sampling
	targets := make([]int32, 0, 2*n*m)
	m0 := m + 1
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			g.MustAddEdge(u, v, w.draw(rng))
			targets = append(targets, int32(u), int32(v))
		}
	}
	seen := make(map[int32]bool, m)
	chosen := make([]int32, 0, m)
	for v := m0; v < n; v++ {
		for _, t := range chosen {
			delete(seen, t)
		}
		chosen = chosen[:0]
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			if seen[t] {
				continue
			}
			seen[t] = true
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			g.MustAddEdge(v, int(t), w.draw(rng))
			targets = append(targets, int32(v), t)
		}
	}
	return g, nil
}

// ErdosRenyi generates a G(n, m) graph with exactly m distinct random edges.
func ErdosRenyi(n, m int, w Weights, seed int64) (*graph.Graph, error) {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		return nil, fmt.Errorf("gen: ErdosRenyi m=%d exceeds max %d for n=%d", m, maxEdges, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, w.draw(rng))
	}
	return g, nil
}

// WattsStrogatz generates a small-world ring lattice with n vertices, each
// connected to its k nearest neighbors (k even), with rewiring probability
// beta.
func WattsStrogatz(n, k int, beta float64, w Weights, seed int64) (*graph.Graph, error) {
	if k%2 != 0 || k < 2 || k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz requires even 2<=k<n, got k=%d n=%d", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, w.draw(rng))
			}
		}
	}
	// Rewire: each lattice edge (u, u+j) is rewired to a random target with
	// probability beta.
	type e struct{ u, v int }
	var edges []e
	g.ForEachEdge(func(u, v int, _ graph.Weight) { edges = append(edges, e{u, v}) })
	for _, ed := range edges {
		if rng.Float64() >= beta {
			continue
		}
		for tries := 0; tries < 32; tries++ {
			t := rng.Intn(n)
			if t == ed.u || g.HasEdge(ed.u, t) {
				continue
			}
			wt, _ := g.EdgeWeight(ed.u, ed.v)
			if err := g.RemoveEdge(ed.u, ed.v); err != nil {
				return nil, err
			}
			g.MustAddEdge(ed.u, t, wt)
			break
		}
	}
	return g, nil
}

// PlantedPartition generates an SBM/planted-partition graph: n vertices in
// c equal communities, with intra-community edge probability pin and
// inter-community probability pout. Community labels are returned alongside.
func PlantedPartition(n, c int, pin, pout float64, w Weights, seed int64) (*graph.Graph, []int32, error) {
	if c < 1 || n < c {
		return nil, nil, fmt.Errorf("gen: PlantedPartition needs 1<=c<=n, got c=%d n=%d", c, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	label := make([]int32, n)
	for v := range label {
		label[v] = int32(v * c / n) // contiguous blocks
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pout
			if label[u] == label[v] {
				p = pin
			}
			if rng.Float64() < p {
				g.MustAddEdge(u, v, w.draw(rng))
			}
		}
	}
	return g, label, nil
}

// RMAT generates a recursive-matrix graph with 2^scale vertices and m
// distinct undirected edges using partition probabilities a, b, c
// (d = 1-a-b-c). Self-loops and duplicates are resampled.
func RMAT(scale, m int, a, b, c float64, w Weights, seed int64) (*graph.Graph, error) {
	if a+b+c >= 1 {
		return nil, fmt.Errorf("gen: RMAT probabilities a+b+c=%.3f must be < 1", a+b+c)
	}
	n := 1 << scale
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges/2 {
		return nil, fmt.Errorf("gen: RMAT m=%d too dense for scale=%d", m, scale)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.NumEdges() < m {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, w.draw(rng))
	}
	return g, nil
}

// Connectify adds minimum-weight edges joining the connected components of
// g so the result is connected. It mutates g in place and returns the
// number of edges added. Experiment graphs are connectified so closeness
// is defined for every vertex.
func Connectify(g *graph.Graph, seed int64) int {
	comp, k := graph.ConnectedComponents(g)
	if k <= 1 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	// one representative per component
	rep := make([]int, k)
	for i := range rep {
		rep[i] = -1
	}
	for v, c := range comp {
		if rep[c] == -1 {
			rep[c] = v
		}
	}
	added := 0
	for c := 1; c < k; c++ {
		u := rep[rng.Intn(c)] // attach to a random earlier component rep
		if err := g.AddEdge(rep[c], u, 1); err == nil {
			added++
		}
	}
	return added
}

// RandomGeometric generates a random geometric graph: n vertices placed
// uniformly in the unit square, connected when within Euclidean distance
// `radius`. This is the standard model for the sensor-network workloads
// the paper's introduction motivates. Edge weights are drawn from w (unit
// by default); a grid bucketing keeps generation near O(n + m).
func RandomGeometric(n int, radius float64, w Weights, seed int64) (*graph.Graph, error) {
	if radius <= 0 || radius > 1.5 {
		return nil, fmt.Errorf("gen: RandomGeometric radius %g outside (0, 1.5]", radius)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	grid := make(map[int][]int32, n)
	cellOf := func(i int) int {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		if cx == cells {
			cx--
		}
		if cy == cells {
			cy--
		}
		return cx*cells + cy
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		grid[c] = append(grid[c], int32(i))
	}
	g := graph.New(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := int(xs[i]*float64(cells)), int(ys[i]*float64(cells))
		if cx == cells {
			cx--
		}
		if cy == cells {
			cy--
		}
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, j := range grid[nx*cells+ny] {
					if int(j) <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						g.MustAddEdge(i, int(j), w.draw(rng))
					}
				}
			}
		}
	}
	return g, nil
}
