package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"anytime/internal/change"
	"anytime/internal/community"
	"anytime/internal/graph"
)

// PreferentialBatch generates a batch of k new vertices that attach to the
// existing graph g preferentially by degree, each with mExt external edges
// and (after the first few) mInt edges to earlier vertices of the same
// batch. This models organic growth streams (Fig. 4/8 scenarios).
func PreferentialBatch(g *graph.Graph, k, mExt, mInt int, w Weights, seed int64) (*change.VertexBatch, error) {
	if k < 1 {
		return nil, fmt.Errorf("gen: batch size %d < 1", k)
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("gen: cannot attach a batch to an empty graph")
	}
	if mExt < 1 {
		mExt = 1
	}
	rng := rand.New(rand.NewSource(seed))
	// degree-proportional sampling over existing vertices
	targets := make([]int32, 0, 2*g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for range g.Neighbors(v) {
			targets = append(targets, int32(v))
		}
	}
	if len(targets) == 0 { // edgeless graph: uniform
		for v := 0; v < g.NumVertices(); v++ {
			targets = append(targets, int32(v))
		}
	}
	b := &change.VertexBatch{NumVertices: k}
	seenExt := map[int64]bool{}
	seenInt := map[int64]bool{}
	for i := 0; i < k; i++ {
		for e := 0; e < mExt; e++ {
			t := targets[rng.Intn(len(targets))]
			key := int64(i)<<32 | int64(t)
			if seenExt[key] {
				continue
			}
			seenExt[key] = true
			b.External = append(b.External, change.ExternalEdge{
				New: int32(i), Existing: t, Weight: w.draw(rng),
			})
		}
		for e := 0; e < mInt && i > 0; e++ {
			j := int32(rng.Intn(i))
			a, c := int32(i), j
			if a > c {
				a, c = c, a
			}
			key := int64(a)<<32 | int64(c)
			if seenInt[key] {
				continue
			}
			seenInt[key] = true
			b.Internal = append(b.Internal, change.InternalEdge{A: a, B: c, Weight: w.draw(rng)})
		}
	}
	return b, nil
}

// CommunityBatch generates a batch of k new vertices carrying community
// structure, mirroring the paper's experimental setup: the new vertices are
// extracted from a larger scale-free reservoir graph via Louvain community
// detection, so edges among new vertices concentrate inside communities.
// Each new vertex also receives extAvg external anchor edges (on average)
// into the existing graph, chosen degree-preferentially with
// community-coherent anchoring: vertices of one extracted community anchor
// near each other.
func CommunityBatch(g *graph.Graph, k int, extAvg float64, w Weights, seed int64) (*change.VertexBatch, error) {
	if k < 2 {
		return nil, fmt.Errorf("gen: community batch size %d < 2", k)
	}
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("gen: cannot attach a batch to an empty graph")
	}
	rng := rand.New(rand.NewSource(seed))
	// Reservoir: a scale-free graph ~4x the batch, from which communities
	// are carved (the "larger graph" of the paper's setup).
	resN := 4 * k
	if resN < 32 {
		resN = 32
	}
	reservoir, err := BarabasiAlbert(resN, 3, w, seed^0x5eed)
	if err != nil {
		return nil, err
	}
	comm := community.Louvain(reservoir, seed^0xc0de)
	// Order communities by size descending and take whole communities until
	// k vertices are collected (truncating the last).
	byComm := make([][]int32, comm.K)
	for v, c := range comm.Label {
		byComm[c] = append(byComm[c], int32(v))
	}
	sort.Slice(byComm, func(i, j int) bool { return len(byComm[i]) > len(byComm[j]) })
	var picked []int32
	commOf := make(map[int32]int32) // reservoir vertex -> extracted community index
	for ci := 0; ci < len(byComm) && len(picked) < k; ci++ {
		for _, v := range byComm[ci] {
			if len(picked) == k {
				break
			}
			commOf[v] = int32(ci)
			picked = append(picked, v)
		}
	}
	// batch-local index of each picked reservoir vertex
	localOf := make(map[int32]int32, len(picked))
	for i, v := range picked {
		localOf[v] = int32(i)
	}
	b := &change.VertexBatch{NumVertices: k}
	reservoir.ForEachEdge(func(u, v int, wt graph.Weight) {
		lu, ok1 := localOf[int32(u)]
		lv, ok2 := localOf[int32(v)]
		if ok1 && ok2 {
			b.Internal = append(b.Internal, change.InternalEdge{A: lu, B: lv, Weight: wt})
		}
	})
	// External anchors: one degree-preferential anchor region per extracted
	// community; members anchor to the region's vertex or its neighbors.
	targets := make([]int32, 0, 2*g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		for range g.Neighbors(v) {
			targets = append(targets, int32(v))
		}
	}
	if len(targets) == 0 {
		for v := 0; v < g.NumVertices(); v++ {
			targets = append(targets, int32(v))
		}
	}
	anchor := map[int32]int32{} // community -> anchor vertex in g
	seenExt := map[int64]bool{}
	total := int(extAvg * float64(k))
	if total < k {
		total = k // ensure connectivity of every new vertex
	}
	addExt := func(local int32) {
		rv := picked[local]
		c := commOf[rv]
		av, ok := anchor[c]
		if !ok {
			av = targets[rng.Intn(len(targets))]
			anchor[c] = av
		}
		// anchor vertex itself or a random neighbor of it
		t := av
		if nb := g.Neighbors(int(av)); len(nb) > 0 && rng.Intn(2) == 0 {
			t = nb[rng.Intn(len(nb))].To
		}
		key := int64(local)<<32 | int64(t)
		if seenExt[key] {
			return
		}
		seenExt[key] = true
		b.External = append(b.External, change.ExternalEdge{New: local, Existing: t, Weight: w.draw(rng)})
	}
	for i := 0; i < k; i++ { // every new vertex gets at least one anchor
		addExt(int32(i))
	}
	for len(b.External) < total {
		addExt(int32(rng.Intn(k)))
	}
	return b, nil
}

// SplitBatch divides a batch of vertex additions into `steps` smaller
// batches applied at consecutive recombination steps (the paper's
// incremental-additions experiment, Fig. 8). Internal edges whose endpoints
// fall into different sub-batches become external edges of the later one.
func SplitBatch(b *change.VertexBatch, steps int) []*change.VertexBatch {
	if steps < 1 {
		steps = 1
	}
	if steps > b.NumVertices {
		steps = b.NumVertices
	}
	out := make([]*change.VertexBatch, steps)
	// contiguous ranges of batch-local IDs per step
	bounds := make([]int, steps+1)
	for s := 0; s <= steps; s++ {
		bounds[s] = s * b.NumVertices / steps
	}
	stepOf := func(local int32) int {
		return sort.Search(steps, func(s int) bool { return bounds[s+1] > int(local) })
	}
	for s := 0; s < steps; s++ {
		out[s] = &change.VertexBatch{NumVertices: bounds[s+1] - bounds[s]}
	}
	for _, e := range b.Internal {
		sa, sb := stepOf(e.A), stepOf(e.B)
		la, lb := e.A-int32(bounds[sa]), e.B-int32(bounds[sb])
		switch {
		case sa == sb:
			out[sa].Internal = append(out[sa].Internal, change.InternalEdge{A: la, B: lb, Weight: e.Weight})
		case sa < sb:
			// A joins the graph in an earlier step; its eventual global ID
			// is unknown here, so the edge is recorded as Pending against
			// A's stream-local index and resolved by the engine's stream map.
			out[sb].Pending = append(out[sb].Pending, change.PendingEdge{
				New: lb, EarlierBatchVertex: e.A, Weight: e.Weight,
			})
		default:
			out[sa].Pending = append(out[sa].Pending, change.PendingEdge{
				New: la, EarlierBatchVertex: e.B, Weight: e.Weight,
			})
		}
	}
	for _, e := range b.External {
		s := stepOf(e.New)
		out[s].External = append(out[s].External, change.ExternalEdge{
			New: e.New - int32(bounds[s]), Existing: e.Existing, Weight: e.Weight,
		})
	}
	return out
}
