package gen

import (
	"testing"
	"testing/quick"

	"anytime/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	g, err := BarabasiAlbert(500, 3, Weights{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// clique m0=4 (6 edges) + (n-m0)*m edges
	want := 6 + (500-4)*3
	if g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !graph.IsConnected(g) {
		t.Fatal("BA graph must be connected")
	}
}

func TestBarabasiAlbertScaleFree(t *testing.T) {
	g, err := BarabasiAlbert(3000, 2, Weights{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// preferential attachment yields gamma ≈ 3; accept a broad band
	gamma := graph.PowerLawExponent(g, 4)
	if gamma < 1.8 || gamma > 4.5 {
		t.Fatalf("power-law exponent %.2f outside scale-free band", gamma)
	}
	// heavy tail: max degree far above the mean
	if float64(g.MaxDegree()) < 6*graph.MeanDegree(g) {
		t.Fatalf("max degree %d too small vs mean %.1f", g.MaxDegree(), graph.MeanDegree(g))
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, _ := BarabasiAlbert(200, 2, Weights{Min: 1, Max: 5}, 42)
	b, _ := BarabasiAlbert(200, 2, Weights{Min: 1, Max: 5}, 42)
	same := true
	a.ForEachEdge(func(u, v int, w graph.Weight) {
		bw, ok := b.EdgeWeight(u, v)
		if !ok || bw != w {
			same = false
		}
	})
	if !same || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	if _, err := BarabasiAlbert(3, 3, Weights{}, 1); err == nil {
		t.Fatal("n < m+1 should fail")
	}
	if _, err := BarabasiAlbert(10, 0, Weights{}, 1); err == nil {
		t.Fatal("m < 1 should fail")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 300, Weights{Min: 2, Max: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 300 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	g.ForEachEdge(func(_, _ int, w graph.Weight) {
		if w != 2 {
			t.Fatalf("weight %d, want 2", w)
		}
	})
	if _, err := ErdosRenyi(4, 100, Weights{}, 1); err == nil {
		t.Fatal("over-dense request should fail")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(200, 4, 0.1, Weights{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// rewiring preserves the edge count
	if g.NumEdges() != 400 {
		t.Fatalf("edges = %d, want 400", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := WattsStrogatz(10, 3, 0.1, Weights{}, 1); err == nil {
		t.Fatal("odd k should fail")
	}
}

func TestPlantedPartitionCommunities(t *testing.T) {
	g, label, err := PlantedPartition(200, 4, 0.3, 0.01, Weights{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(label) != 200 {
		t.Fatalf("labels = %d", len(label))
	}
	intra, inter := 0, 0
	g.ForEachEdge(func(u, v int, _ graph.Weight) {
		if label[u] == label[v] {
			intra++
		} else {
			inter++
		}
	})
	if intra <= 3*inter {
		t.Fatalf("no community structure: intra=%d inter=%d", intra, inter)
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(8, 500, 0.57, 0.19, 0.19, Weights{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 256 || g.NumEdges() != 500 {
		t.Fatalf("shape %d/%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := RMAT(4, 500, 0.5, 0.3, 0.3, Weights{}, 1); err == nil {
		t.Fatal("bad probabilities should fail")
	}
}

func TestConnectify(t *testing.T) {
	g := graph.New(10)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	added := Connectify(g, 1)
	if !graph.IsConnected(g) {
		t.Fatal("not connected after Connectify")
	}
	// 8 components (2 pairs + 6 singletons) need 7 joins
	if added != 7 {
		t.Fatalf("added %d edges, want 7", added)
	}
	if Connectify(g, 1) != 0 {
		t.Fatal("already-connected graph should add nothing")
	}
}

// Property: ER generation with any feasible m yields a valid graph with
// exactly m edges.
func TestQuickErdosRenyi(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		g, err := ErdosRenyi(n, m, Weights{Min: 1, Max: 9}, seed)
		return err == nil && g.NumEdges() == m && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsDraw(t *testing.T) {
	g, err := BarabasiAlbert(100, 2, Weights{Min: 3, Max: 7}, 11)
	if err != nil {
		t.Fatal(err)
	}
	g.ForEachEdge(func(_, _ int, w graph.Weight) {
		if w < 3 || w > 7 {
			t.Fatalf("weight %d outside [3,7]", w)
		}
	})
	g2, _ := BarabasiAlbert(50, 2, Weights{}, 11)
	g2.ForEachEdge(func(_, _ int, w graph.Weight) {
		if w != 1 {
			t.Fatalf("zero Weights must give unit weights, got %d", w)
		}
	})
}

func TestRandomGeometric(t *testing.T) {
	g, err := RandomGeometric(500, 0.08, Weights{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// expected mean degree ≈ n·π·r² ≈ 10; accept a broad band
	md := graph.MeanDegree(g)
	if md < 4 || md > 20 {
		t.Fatalf("mean degree %.1f outside plausible band", md)
	}
	// determinism
	h, _ := RandomGeometric(500, 0.08, Weights{}, 13)
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	if _, err := RandomGeometric(10, 0, Weights{}, 1); err == nil {
		t.Fatal("radius 0 should fail")
	}
	if _, err := RandomGeometric(10, 2, Weights{}, 1); err == nil {
		t.Fatal("radius 2 should fail")
	}
}

// A geometric (sensor-network) workload must also run exactly through the
// generators' main consumer path: quick shape check only here; the engine
// exactness is covered in core tests.
func TestRandomGeometricEdgesAreLocal(t *testing.T) {
	g, err := RandomGeometric(200, 0.15, Weights{Min: 2, Max: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	g.ForEachEdge(func(_, _ int, w graph.Weight) {
		if w < 2 || w > 5 {
			t.Fatalf("weight %d outside range", w)
		}
	})
}
