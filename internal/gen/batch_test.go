package gen

import (
	"testing"

	"anytime/internal/change"
	"anytime/internal/graph"
)

func baseGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := BarabasiAlbert(150, 2, Weights{}, 21)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPreferentialBatchValid(t *testing.T) {
	g := baseGraph(t)
	b, err := PreferentialBatch(g, 30, 2, 1, Weights{Min: 1, Max: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumVertices != 30 {
		t.Fatalf("k = %d", b.NumVertices)
	}
	if err := b.Validate(g.NumVertices()); err != nil {
		t.Fatal(err)
	}
	// every new vertex must have at least one external anchor
	anchored := make([]bool, 30)
	for _, e := range b.External {
		anchored[e.New] = true
	}
	for i, a := range anchored {
		if !a {
			t.Fatalf("new vertex %d has no external edge", i)
		}
	}
}

func TestPreferentialBatchErrors(t *testing.T) {
	g := baseGraph(t)
	if _, err := PreferentialBatch(g, 0, 2, 1, Weights{}, 1); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := PreferentialBatch(graph.New(0), 3, 2, 1, Weights{}, 1); err == nil {
		t.Fatal("empty base graph should fail")
	}
}

func TestCommunityBatchStructure(t *testing.T) {
	g := baseGraph(t)
	b, err := CommunityBatch(g, 60, 1.5, Weights{Min: 1, Max: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(g.NumVertices()); err != nil {
		t.Fatal(err)
	}
	if b.NumVertices != 60 {
		t.Fatalf("k = %d", b.NumVertices)
	}
	if len(b.Internal) == 0 {
		t.Fatal("community batch must carry internal edges")
	}
	if len(b.External) < 60 {
		t.Fatalf("only %d external edges; every vertex needs an anchor", len(b.External))
	}
	// the batch graph (internal edges only) must exhibit clustering: far
	// more internal edges than a same-size uniform-random assignment would
	// keep inside parts — proxy: average internal degree >= 1
	if 2*len(b.Internal) < b.NumVertices {
		t.Fatalf("too sparse internally: %d edges over %d vertices", len(b.Internal), b.NumVertices)
	}
}

func TestCommunityBatchErrors(t *testing.T) {
	g := baseGraph(t)
	if _, err := CommunityBatch(g, 1, 1, Weights{}, 1); err == nil {
		t.Fatal("k<2 should fail")
	}
	if _, err := CommunityBatch(graph.New(0), 10, 1, Weights{}, 1); err == nil {
		t.Fatal("empty base should fail")
	}
}

func TestSplitBatchPartitionsVertices(t *testing.T) {
	g := baseGraph(t)
	b, err := CommunityBatch(g, 50, 1.2, Weights{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	parts := SplitBatch(b, 7)
	if len(parts) != 7 {
		t.Fatalf("got %d parts", len(parts))
	}
	total := 0
	edges := 0
	for _, p := range parts {
		total += p.NumVertices
		edges += p.NumEdges()
		if err := p.Validate(g.NumVertices()); err != nil {
			t.Fatal(err)
		}
	}
	if total != 50 {
		t.Fatalf("split lost vertices: %d", total)
	}
	if edges != b.NumEdges() {
		t.Fatalf("split lost edges: %d vs %d", edges, b.NumEdges())
	}
}

func TestSplitBatchPendingIndices(t *testing.T) {
	b := &change.VertexBatch{NumVertices: 4}
	b.Internal = []change.InternalEdge{
		{A: 0, B: 3, Weight: 1}, // crosses the split
		{A: 0, B: 1, Weight: 1}, // stays in step 0
	}
	parts := SplitBatch(b, 2)
	if len(parts[0].Internal) != 1 || parts[0].Internal[0].B != 1 {
		t.Fatalf("step 0 internal wrong: %+v", parts[0].Internal)
	}
	if len(parts[1].Pending) != 1 {
		t.Fatalf("step 1 pending wrong: %+v", parts[1].Pending)
	}
	p := parts[1].Pending[0]
	// vertex 3 is local index 1 of step 1; earlier endpoint is stream index 0
	if p.New != 1 || p.EarlierBatchVertex != 0 {
		t.Fatalf("pending = %+v", p)
	}
}

func TestSplitBatchDegenerate(t *testing.T) {
	b := &change.VertexBatch{NumVertices: 3}
	parts := SplitBatch(b, 10) // more steps than vertices
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	parts = SplitBatch(b, 0)
	if len(parts) != 1 || parts[0].NumVertices != 3 {
		t.Fatalf("steps=0 should behave as 1: %+v", parts)
	}
}
