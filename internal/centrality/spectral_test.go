package centrality

import (
	"math"
	"testing"

	"anytime/internal/gen"
	"anytime/internal/graph"
)

func TestEigenvectorStar(t *testing.T) {
	g := starGraph(5)
	x := Eigenvector(g, 0, 0)
	// hub must dominate; leaves equal by symmetry
	if x[0] <= x[1] {
		t.Fatalf("hub %g not above leaf %g", x[0], x[1])
	}
	for v := 2; v < 5; v++ {
		if math.Abs(x[v]-x[1]) > 1e-8 {
			t.Fatalf("leaves differ: %v", x)
		}
	}
	// analytically, hub/leaf ratio is sqrt(4) = 2 for a star K_{1,4}
	if r := x[0] / x[1]; math.Abs(r-2) > 1e-6 {
		t.Fatalf("hub/leaf ratio = %g, want 2", r)
	}
	var norm float64
	for _, xi := range x {
		norm += xi * xi
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("norm = %g", norm)
	}
}

func TestEigenvectorEdgeless(t *testing.T) {
	x := Eigenvector(graph.New(4), 0, 0)
	for _, xi := range x {
		if math.Abs(xi-0.5) > 1e-12 {
			t.Fatalf("edgeless eigenvector = %v", x)
		}
	}
}

func TestEigenvectorSymmetricCycle(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, (i+1)%6, 1)
	}
	x := Eigenvector(g, 0, 0)
	for v := 1; v < 6; v++ {
		if math.Abs(x[v]-x[0]) > 1e-7 {
			t.Fatalf("cycle should be uniform: %v", x)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 2, gen.Weights{Min: 1, Max: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	pr := PageRank(g, 0, 0, 0)
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %g", sum)
	}
}

func TestPageRankDangling(t *testing.T) {
	// one isolated vertex: must still receive the teleport share and the
	// scores must sum to 1
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	pr := PageRank(g, 0.85, 0, 0)
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %g", sum)
	}
	if pr[3] <= 0 {
		t.Fatal("isolated vertex got no rank")
	}
	if pr[1] <= pr[0] {
		t.Fatalf("middle vertex should outrank endpoint: %v", pr)
	}
}

func TestPageRankHubDominates(t *testing.T) {
	g := starGraph(9)
	pr := PageRank(g, 0.85, 0, 0)
	for v := 1; v < 9; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("hub rank %g not above leaf %g", pr[0], pr[v])
		}
	}
}

func TestEigenvectorAndPageRankAgreeOnHubs(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 2, gen.Weights{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	ev := Eigenvector(g, 0, 0)
	pr := PageRank(g, 0, 0, 0)
	// the top-10 sets of both measures should overlap substantially on a
	// scale-free graph
	topEV := map[int]bool{}
	for _, v := range TopK(ev, 10) {
		topEV[v] = true
	}
	overlap := 0
	for _, v := range TopK(pr, 10) {
		if topEV[v] {
			overlap++
		}
	}
	if overlap < 5 {
		t.Fatalf("top-10 overlap only %d", overlap)
	}
}
