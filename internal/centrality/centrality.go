// Package centrality provides sequential reference implementations of the
// social-network-analysis measures the anytime-anywhere methodology
// targets: closeness (the paper's focus), harmonic closeness, degree, and
// Brandes betweenness. They serve as verification oracles for the
// distributed engine and as standalone utilities for the examples.
package centrality

import (
	"runtime"
	"sync"

	"anytime/internal/graph"
	"anytime/internal/sssp"
)

// Closeness computes exact closeness centrality for every vertex:
// C(v) = 1 / Σ_t d(v,t) over reachable t ≠ v (0 if nothing is reachable).
func Closeness(g *graph.Graph) []float64 {
	return closenessFrom(g, func(sum int64, _ int) float64 {
		if sum == 0 {
			return 0
		}
		return 1 / float64(sum)
	})
}

// Lin computes Lin's index, the component-size-corrected closeness:
// C(v) = (r(v)-1)² / (n-1) / Σ d(v,t), robust on disconnected graphs.
func Lin(g *graph.Graph) []float64 {
	n := g.NumVertices()
	if n <= 1 {
		return make([]float64, n)
	}
	return closenessFrom(g, func(sum int64, reach int) float64 {
		if sum == 0 {
			return 0
		}
		r := float64(reach)
		return r * r / float64(n-1) / float64(sum)
	})
}

func closenessFrom(g *graph.Graph, combine func(sum int64, reach int) float64) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	parallelOver(n, func(v int) {
		d := sssp.Dijkstra(g, v)
		var sum int64
		reach := 0
		for t, dt := range d {
			if t == v || dt == graph.InfDist {
				continue
			}
			sum += int64(dt)
			reach++
		}
		out[v] = combine(sum, reach)
	})
	return out
}

// Harmonic computes harmonic closeness: H(v) = Σ_t 1/d(v,t), naturally
// handling disconnected graphs.
func Harmonic(g *graph.Graph) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	parallelOver(n, func(v int) {
		d := sssp.Dijkstra(g, v)
		var h float64
		for t, dt := range d {
			if t != v && dt != graph.InfDist {
				h += 1 / float64(dt)
			}
		}
		out[v] = h
	})
	return out
}

// Degree computes degree centrality normalized by n-1.
func Degree(g *graph.Graph) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	for v := 0; v < n; v++ {
		out[v] = float64(g.Degree(v)) / float64(n-1)
	}
	return out
}

// Betweenness computes exact betweenness centrality with Brandes'
// algorithm on the weighted graph (undirected convention: each pair
// counted once, so scores are halved).
func Betweenness(g *graph.Graph) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	var mu sync.Mutex
	parallelOver(n, func(s int) {
		bc := brandesFrom(g, int32(s))
		mu.Lock()
		for v := range out {
			out[v] += bc[v]
		}
		mu.Unlock()
	})
	for v := range out {
		out[v] /= 2 // undirected: each pair visited from both ends
	}
	return out
}

// brandesFrom accumulates the betweenness contributions of all shortest
// paths from s (weighted Dijkstra variant of Brandes' algorithm).
func brandesFrom(g *graph.Graph, s int32) []float64 {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	sigma := make([]float64, n) // number of shortest paths
	delta := make([]float64, n)
	preds := make([][]int32, n)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	dist[s] = 0
	sigma[s] = 1
	// Dijkstra with predecessor tracking and a settle order stack.
	type qe struct {
		v int32
		d graph.Dist
	}
	pq := []qe{{s, 0}}
	push := func(e qe) {
		pq = append(pq, e)
		for i := len(pq) - 1; i > 0; {
			p := (i - 1) / 2
			if pq[p].d <= pq[i].d {
				break
			}
			pq[p], pq[i] = pq[i], pq[p]
			i = p
		}
	}
	pop := func() qe {
		top := pq[0]
		last := len(pq) - 1
		pq[0] = pq[last]
		pq = pq[:last]
		for i := 0; ; {
			l, r, m := 2*i+1, 2*i+2, i
			if l < last && pq[l].d < pq[m].d {
				m = l
			}
			if r < last && pq[r].d < pq[m].d {
				m = r
			}
			if m == i {
				break
			}
			pq[m], pq[i] = pq[i], pq[m]
			i = m
		}
		return top
	}
	var order []int32
	settled := make([]bool, n)
	for len(pq) > 0 {
		e := pop()
		if settled[e.v] || e.d > dist[e.v] {
			continue
		}
		settled[e.v] = true
		order = append(order, e.v)
		for _, a := range g.Neighbors(int(e.v)) {
			nd := e.d + a.Weight
			switch {
			case nd < dist[a.To]:
				dist[a.To] = nd
				sigma[a.To] = sigma[e.v]
				preds[a.To] = append(preds[a.To][:0], e.v)
				push(qe{a.To, nd})
			case nd == dist[a.To]:
				sigma[a.To] += sigma[e.v]
				preds[a.To] = append(preds[a.To], e.v)
			}
		}
	}
	// dependency accumulation in reverse settle order
	bc := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		for _, p := range preds[w] {
			delta[p] += sigma[p] / sigma[w] * (1 + delta[w])
		}
		if w != s {
			bc[w] += delta[w]
		}
	}
	return bc
}

// parallelOver runs fn(i) for i in [0,n) over GOMAXPROCS workers.
func parallelOver(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan int, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

// TopK returns the indices of the k largest scores, ties broken by lower
// index, in descending score order. k <= 0 yields an empty result and
// k > len(scores) is clamped. Selection is heap-based, O(n log k), so
// building a serving-layer top-k index over a large snapshot stays cheap.
func TopK(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	// beats(a, b): index a ranks strictly ahead of index b.
	beats := func(a, b int) bool {
		return scores[a] > scores[b] || (scores[a] == scores[b] && a < b)
	}
	// min-heap of the k best seen so far; heap[0] is the weakest kept.
	heap := make([]int, 0, k)
	siftDown := func(i int) {
		for {
			l, r, m := 2*i+1, 2*i+2, i
			if l < len(heap) && beats(heap[m], heap[l]) {
				m = l
			}
			if r < len(heap) && beats(heap[m], heap[r]) {
				m = r
			}
			if m == i {
				return
			}
			heap[m], heap[i] = heap[i], heap[m]
			i = m
		}
	}
	for i := range scores {
		if len(heap) < k {
			heap = append(heap, i)
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if !beats(heap[p], heap[c]) {
					break
				}
				heap[p], heap[c] = heap[c], heap[p]
				c = p
			}
		} else if beats(i, heap[0]) {
			heap[0] = i
			siftDown(0)
		}
	}
	// pop the weakest repeatedly to emit descending order.
	out := heap
	for n := len(heap) - 1; n > 0; n-- {
		heap[0], heap[n] = heap[n], heap[0]
		heap = heap[:n]
		siftDown(0)
	}
	return out
}
