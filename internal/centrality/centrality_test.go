package centrality

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"anytime/internal/gen"
	"anytime/internal/graph"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func starGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, 1)
	}
	return g
}

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

func TestClosenessStar(t *testing.T) {
	c := Closeness(starGraph(5))
	if !approx(c[0], 1.0/4) {
		t.Fatalf("hub closeness = %g", c[0])
	}
	// leaf: 1 + 2+2+2 = 7
	if !approx(c[1], 1.0/7) {
		t.Fatalf("leaf closeness = %g", c[1])
	}
}

func TestClosenessDisconnected(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 2)
	c := Closeness(g)
	if !approx(c[0], 0.5) || !approx(c[2], 0) {
		t.Fatalf("closeness = %v", c)
	}
}

func TestHarmonicPath(t *testing.T) {
	h := Harmonic(pathGraph(3))
	if !approx(h[0], 1+0.5) || !approx(h[1], 2) {
		t.Fatalf("harmonic = %v", h)
	}
}

func TestLinIndexConnectedMatchesScaledCloseness(t *testing.T) {
	g := starGraph(5)
	lin := Lin(g)
	c := Closeness(g)
	// connected graph: Lin = (n-1)^2/(n-1) / sum = (n-1) * closeness
	for v := range lin {
		if !approx(lin[v], 4*c[v]) {
			t.Fatalf("lin[%d] = %g, closeness = %g", v, lin[v], c[v])
		}
	}
}

func TestDegreeCentrality(t *testing.T) {
	d := Degree(starGraph(5))
	if !approx(d[0], 1) || !approx(d[3], 0.25) {
		t.Fatalf("degree = %v", d)
	}
	if len(Degree(graph.New(1))) != 1 {
		t.Fatal("single vertex should work")
	}
}

func TestBetweennessStar(t *testing.T) {
	bc := Betweenness(starGraph(5))
	// hub lies on all C(4,2)=6 leaf pairs
	if !approx(bc[0], 6) {
		t.Fatalf("hub betweenness = %g", bc[0])
	}
	for v := 1; v < 5; v++ {
		if !approx(bc[v], 0) {
			t.Fatalf("leaf %d betweenness = %g", v, bc[v])
		}
	}
}

func TestBetweennessPath(t *testing.T) {
	bc := Betweenness(pathGraph(4))
	// path 0-1-2-3: inner vertices carry 2 pairs each
	if !approx(bc[1], 2) || !approx(bc[2], 2) || !approx(bc[0], 0) {
		t.Fatalf("betweenness = %v", bc)
	}
}

func TestBetweennessCountsMultiplicities(t *testing.T) {
	// diamond: 0-1, 0-2, 1-3, 2-3; two shortest 0→3 paths
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(2, 3, 1)
	bc := Betweenness(g)
	if !approx(bc[1], 0.5) || !approx(bc[2], 0.5) {
		t.Fatalf("betweenness = %v", bc)
	}
}

func TestBetweennessWeighted(t *testing.T) {
	// triangle where the direct edge 0-2 is longer than the detour via 1
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 5)
	bc := Betweenness(g)
	if !approx(bc[1], 1) {
		t.Fatalf("betweenness = %v", bc)
	}
}

func TestClosenessMatchesEngineScaleFree(t *testing.T) {
	g, err := gen.BarabasiAlbert(120, 2, gen.Weights{Min: 1, Max: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := Closeness(g)
	for v, cv := range c {
		if cv <= 0 {
			t.Fatalf("closeness[%d] = %g on a connected graph", v, cv)
		}
	}
	// hubs (max degree) should rank above the median closeness
	hub := 0
	for v := 1; v < 120; v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	above := 0
	for _, cv := range c {
		if c[hub] >= cv {
			above++
		}
	}
	if above < 100 {
		t.Fatalf("hub closeness rank too low: above %d/120", above)
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.3, 0.9, 0.1, 0.9, 0.5}
	top := TopK(scores, 3)
	want := []int{1, 3, 4}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", top, want)
		}
	}
	if len(TopK(scores, 99)) != 5 {
		t.Fatal("k > n should clamp")
	}
}

func TestTopKDegenerate(t *testing.T) {
	scores := []float64{0.3, 0.9, 0.1}
	if got := TopK(scores, 0); len(got) != 0 {
		t.Fatalf("TopK(k=0) = %v, want empty", got)
	}
	if got := TopK(scores, -7); len(got) != 0 {
		t.Fatalf("TopK(k=-7) = %v, want empty", got)
	}
	if got := TopK(nil, 5); len(got) != 0 {
		t.Fatalf("TopK(nil) = %v, want empty", got)
	}
	full := TopK(scores, 99)
	want := []int{1, 0, 2}
	for i := range want {
		if full[i] != want[i] {
			t.Fatalf("TopK clamped = %v, want %v", full, want)
		}
	}
}

func TestTopKMatchesSort(t *testing.T) {
	// Heap selection must agree with a full sort, including index
	// tie-breaks, on a score vector with many duplicates.
	rng := rand.New(rand.NewSource(42))
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = float64(rng.Intn(20)) / 20
	}
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return scores[order[a]] > scores[order[b]]
	})
	for _, k := range []int{1, 7, 50, 499, 500} {
		got := TopK(scores, k)
		if len(got) != k {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i := range got {
			if got[i] != order[i] {
				t.Fatalf("k=%d: rank %d = %d, want %d", k, i, got[i], order[i])
			}
		}
	}
}
