package centrality

import (
	"math"
	"sort"
	"testing"

	"anytime/internal/gen"
	"anytime/internal/graph"
)

func TestKatzStarHubDominates(t *testing.T) {
	k := Katz(starGraph(6), 0, 0, 0)
	for v := 1; v < 6; v++ {
		if k[0] <= k[v] {
			t.Fatalf("hub katz %g not above leaf %g", k[0], k[v])
		}
		if math.Abs(k[v]-k[1]) > 1e-9 {
			t.Fatalf("leaves differ: %v", k)
		}
	}
}

func TestKatzEdgelessIsOne(t *testing.T) {
	k := Katz(graph.New(3), 0.1, 0, 0)
	for _, kv := range k {
		if math.Abs(kv-1) > 1e-9 {
			t.Fatalf("edgeless katz = %v", k)
		}
	}
}

func TestKatzPathAnalytic(t *testing.T) {
	// path 0-1-2 with alpha=0.1: solve x = αAx + 1 exactly:
	// x0 = x2 = 1 + α·x1; x1 = 1 + α(x0+x2)
	// → x1 = (1+2α)/(1-2α²), x0 = 1 + α·x1
	g := pathGraph(3)
	a := 0.1
	k := Katz(g, a, 500, 1e-14)
	x1 := (1 + 2*a) / (1 - 2*a*a)
	x0 := 1 + a*x1
	if math.Abs(k[1]-x1) > 1e-9 || math.Abs(k[0]-x0) > 1e-9 {
		t.Fatalf("katz = %v, want [%g %g %g]", k, x0, x1, x0)
	}
}

func TestApproxClosenessCorrelatesWithExact(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 2, gen.Weights{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact := Closeness(g)
	approx := ApproxCloseness(g, 60, 7)
	// Spearman-ish check: rank vertices by both and compare the top decile
	topOf := func(s []float64) map[int]bool {
		idx := TopK(s, 40)
		m := map[int]bool{}
		for _, v := range idx {
			m[v] = true
		}
		return m
	}
	te, ta := topOf(exact), topOf(approx)
	overlap := 0
	for v := range te {
		if ta[v] {
			overlap++
		}
	}
	if overlap < 25 {
		t.Fatalf("top-40 overlap only %d/40", overlap)
	}
}

func TestApproxClosenessFullSamplingIsProportional(t *testing.T) {
	// with samples == n every pivot is used, so the estimate must be
	// exactly proportional to true closeness (factor n/(n-1) ... both
	// normalize by n-1; check ratio constancy instead)
	g, err := gen.BarabasiAlbert(60, 2, gen.Weights{Min: 1, Max: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact := Closeness(g)
	approx := ApproxCloseness(g, 60, 5)
	ratio := approx[0] / exact[0]
	for v := 1; v < 60; v++ {
		if exact[v] == 0 {
			continue
		}
		r := approx[v] / exact[v]
		if math.Abs(r-ratio) > 1e-9 {
			t.Fatalf("ratio varies: %g vs %g at %d", r, ratio, v)
		}
	}
}

func TestApproxClosenessEdgeCases(t *testing.T) {
	if out := ApproxCloseness(graph.New(1), 5, 1); out[0] != 0 {
		t.Fatal("single vertex should have 0")
	}
	g := graph.New(4) // edgeless
	for _, c := range ApproxCloseness(g, 4, 1) {
		if c != 0 {
			t.Fatal("edgeless closeness must be 0")
		}
	}
}

func TestTopKClosenessExact(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 2, gen.Weights{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := TopK(Closeness(g), 10)
	got := TopKCloseness(g, 10, 40, 11)
	sort.Ints(want)
	wantSet := map[int]bool{}
	for _, v := range want {
		wantSet[v] = true
	}
	hit := 0
	for _, v := range got {
		if wantSet[v] {
			hit++
		}
	}
	// the verify stage computes exact closeness for candidates, so misses
	// can only come from the candidate set not covering the true top-k;
	// with a 4x candidate multiplier this should be (nearly) perfect
	if hit < 9 {
		t.Fatalf("top-10 hit only %d", hit)
	}
	if len(TopKCloseness(g, 0, 10, 1)) != 0 {
		t.Fatal("k=0 should be empty")
	}
}

func TestApproxBetweennessFullSamplingIsExact(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 2, gen.Weights{Min: 1, Max: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	exact := Betweenness(g)
	approx := ApproxBetweenness(g, 80, 7) // all sources: scale factor 1
	for v := range exact {
		if math.Abs(exact[v]-approx[v]) > 1e-6 {
			t.Fatalf("full-sample betweenness differs at %d: %g vs %g", v, approx[v], exact[v])
		}
	}
}

func TestApproxBetweennessRanksHubs(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 2, gen.Weights{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	exact := Betweenness(g)
	approx := ApproxBetweenness(g, 60, 9)
	te := map[int]bool{}
	for _, v := range TopK(exact, 20) {
		te[v] = true
	}
	overlap := 0
	for _, v := range TopK(approx, 20) {
		if te[v] {
			overlap++
		}
	}
	if overlap < 12 {
		t.Fatalf("top-20 overlap only %d", overlap)
	}
	if len(ApproxBetweenness(graph.New(0), 5, 1)) != 0 {
		t.Fatal("empty graph should give empty result")
	}
}
