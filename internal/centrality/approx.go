package centrality

import (
	"math"
	"math/rand"
	"sort"

	"anytime/internal/graph"
	"anytime/internal/sssp"
)

// Katz computes Katz centrality: K(v) = Σ_k α^k · (#walks of length k
// ending at v), by fixed-point iteration x = α·A·x + 1. alpha must be
// below 1/λ_max for convergence; alpha 0 picks a safe default based on the
// maximum degree bound (1/(maxdeg+1)). Unweighted interpretation: edge
// weights are treated as walk multiplicities.
func Katz(g *graph.Graph, alpha float64, maxIter int, tol float64) []float64 {
	n := g.NumVertices()
	if alpha <= 0 {
		var maxW float64
		for v := 0; v < n; v++ {
			var s float64
			for _, a := range g.Neighbors(v) {
				s += float64(a.Weight)
			}
			if s > maxW {
				maxW = s
			}
		}
		alpha = 1 / (maxW + 1)
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 1
		}
		for v := 0; v < n; v++ {
			if x[v] == 0 {
				continue
			}
			ax := alpha * x[v]
			for _, a := range g.Neighbors(v) {
				next[a.To] += ax * float64(a.Weight)
			}
		}
		var delta float64
		for i := range next {
			delta += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if delta < tol {
			break
		}
	}
	return x
}

// ApproxCloseness estimates closeness centrality by pivot sampling
// (Eppstein–Wang style, the basis of the closeness-ranking work the paper
// cites as [22]): `samples` random pivots run exact SSSP, and every
// vertex's average distance is estimated from its distances to the
// pivots: Ĉ(v) = 1 / (n/(s) · Σ_pivots d(pivot, v) · (n-1)/n ... reduced
// to the standard estimator
//
//	Ĉ(v) = (s·(n-1)) / (n · Σ_p d(p,v))
//
// Unreachable pivot-vertex pairs are skipped (their mass renormalized).
// Deterministic for a fixed seed. Cost: O(s·(E + n log n)).
func ApproxCloseness(g *graph.Graph, samples int, seed int64) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	if n <= 1 {
		return out
	}
	if samples <= 0 {
		samples = int(math.Sqrt(float64(n))) + 1
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	pivots := rng.Perm(n)[:samples]
	sum := make([]int64, n)
	cnt := make([]int64, n)
	for _, p := range pivots {
		d := sssp.Dijkstra(g, p)
		for v, dv := range d {
			if v == p || dv == graph.InfDist {
				continue
			}
			sum[v] += int64(dv)
			cnt[v]++
		}
	}
	for v := 0; v < n; v++ {
		if cnt[v] == 0 || sum[v] == 0 {
			continue
		}
		// average distance estimate, scaled to the n-1 possible targets
		avg := float64(sum[v]) / float64(cnt[v])
		out[v] = 1 / (avg * float64(n-1))
	}
	return out
}

// TopKCloseness returns the indices of the k vertices with the highest
// exact closeness, using the sampling-then-verify scheme of the
// closeness-ranking literature the paper cites: pivot sampling ranks all
// vertices approximately, then exact SSSP verifies a candidate set a few
// times larger than k. For moderate k this computes far fewer SSSPs than
// the full APSP while returning exact top-k (with high probability the
// candidate set covers the true top-k; the candidate multiplier trades
// certainty for work).
func TopKCloseness(g *graph.Graph, k, samples int, seed int64) []int {
	n := g.NumVertices()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	approx := ApproxCloseness(g, samples, seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if approx[order[a]] != approx[order[b]] {
			return approx[order[a]] > approx[order[b]]
		}
		return order[a] < order[b]
	})
	cand := 4*k + 16
	if cand > n {
		cand = n
	}
	type scored struct {
		v int
		c float64
	}
	exact := make([]scored, 0, cand)
	for _, v := range order[:cand] {
		d := sssp.Dijkstra(g, v)
		var sum int64
		for t, dt := range d {
			if t != v && dt != graph.InfDist {
				sum += int64(dt)
			}
		}
		c := 0.0
		if sum > 0 {
			c = 1 / float64(sum)
		}
		exact = append(exact, scored{v, c})
	}
	sort.Slice(exact, func(a, b int) bool {
		if exact[a].c != exact[b].c {
			return exact[a].c > exact[b].c
		}
		return exact[a].v < exact[b].v
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = exact[i].v
	}
	return out
}

// ApproxBetweenness estimates betweenness centrality by source sampling
// (the adaptive-sampling family of Bader et al., which the paper cites):
// Brandes dependency accumulation runs from `samples` random sources and
// the sums are scaled by n/samples. Deterministic for a fixed seed. Cost:
// O(samples·(E + n log n)) versus O(n·E) exact.
func ApproxBetweenness(g *graph.Graph, samples int, seed int64) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if samples <= 0 {
		samples = int(math.Sqrt(float64(n))) + 1
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	for _, s := range rng.Perm(n)[:samples] {
		bc := brandesFrom(g, int32(s))
		for v := range out {
			out[v] += bc[v]
		}
	}
	scale := float64(n) / float64(samples) / 2 // undirected halving as in Betweenness
	for v := range out {
		out[v] *= scale
	}
	return out
}
