package centrality

import (
	"math"

	"anytime/internal/graph"
)

// Eigenvector computes eigenvector centrality by power iteration on the
// shifted weighted adjacency matrix A+I (same eigenvectors as A; the
// shift guarantees convergence on bipartite graphs, whose spectrum is
// symmetric). The paper's §IV lists eigenvector centrality among the key
// measures. Scores are normalized to unit Euclidean norm. Iteration stops
// at maxIter (0 = 200) or when the L1 change falls below tol (0 = 1e-10).
func Eigenvector(g *graph.Graph, maxIter int, tol float64) []float64 {
	n := g.NumVertices()
	if maxIter <= 0 {
		maxIter = 200
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			xv := x[v]
			if xv == 0 {
				continue
			}
			next[v] += xv // the +I shift
			for _, a := range g.Neighbors(v) {
				next[a.To] += xv * float64(a.Weight)
			}
		}
		var norm float64
		for _, t := range next {
			norm += t * t
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return x // edgeless graph: initial uniform vector
		}
		var delta float64
		for i := range next {
			next[i] /= norm
			delta += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if delta < tol {
			break
		}
	}
	return x
}

// PageRank computes PageRank with damping factor d (0 = 0.85) by power
// iteration over the weighted transition matrix (weights act as transition
// propensities; note this is the opposite sense of the shortest-path
// interpretation, as is conventional for random-walk measures). Dangling
// vertices redistribute uniformly. Scores sum to 1.
func PageRank(g *graph.Graph, d float64, maxIter int, tol float64) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if d <= 0 || d >= 1 {
		d = 0.85
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-12
	}
	wdeg := make([]float64, n)
	for v := 0; v < n; v++ {
		for _, a := range g.Neighbors(v) {
			wdeg[v] += float64(a.Weight)
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		base := (1 - d) / float64(n)
		var dangling float64
		for v := 0; v < n; v++ {
			if wdeg[v] == 0 {
				dangling += x[v]
			}
		}
		base += d * dangling / float64(n)
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			if wdeg[v] == 0 {
				continue
			}
			share := d * x[v] / wdeg[v]
			for _, a := range g.Neighbors(v) {
				next[a.To] += share * float64(a.Weight)
			}
		}
		var delta float64
		for i := range next {
			delta += math.Abs(next[i] - x[i])
		}
		x, next = next, x
		if delta < tol {
			break
		}
	}
	return x
}
