package partition

import (
	"math/rand"

	"anytime/internal/graph"
)

// Multilevel is a from-scratch multilevel k-way partitioner in the METIS
// family, standing in for ParMETIS (Domain Decomposition, Repartition-S)
// and serial METIS (CutEdge-PS):
//
//  1. Coarsening by randomized heavy-edge matching until the graph is small.
//  2. Initial partition by recursive bisection with greedy graph growing.
//  3. Uncoarsening with boundary Fiduccia–Mattheyses-style refinement at
//     every level (greedy gain moves under a balance constraint).
//
// Edge *distance* weights are deliberately ignored: the objective is the
// cut-edge count, which is what determines communication volume in the
// recombination phase.
type Multilevel struct {
	Seed         int64
	CoarsenTo    int     // stop coarsening at this many vertices (0 = auto)
	Imbalance    float64 // allowed part-weight factor (0 = 1.05)
	InitTries    int     // greedy-growing seeds per bisection (0 = 4)
	RefinePasses int     // refinement passes per level (0 = 6)
}

func (Multilevel) Name() string { return "multilevel-kway" }

func (m Multilevel) opts(k int) Multilevel {
	if m.CoarsenTo == 0 {
		m.CoarsenTo = 30 * k
		if m.CoarsenTo < 200 {
			m.CoarsenTo = 200
		}
	}
	if m.Imbalance == 0 {
		m.Imbalance = 1.05
	}
	if m.InitTries == 0 {
		m.InitTries = 4
	}
	if m.RefinePasses == 0 {
		m.RefinePasses = 6
	}
	return m
}

// Partition implements Partitioner.
func (m Multilevel) Partition(g *graph.Graph, k int) (*graph.Partition, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	p := graph.NewPartition(n, k)
	if k == 1 || n == 0 {
		return p, nil
	}
	m = m.opts(k)
	// Unit-weight CSR: one cut edge == one unit of objective.
	c := graph.ToCSR(g)
	for i := range c.AdjWgt {
		c.AdjWgt[i] = 1
	}
	p.Part = m.partitionCSR(c, k)
	return p, nil
}

type level struct {
	csr  *graph.CSR
	cmap []int32 // maps the previous (finer) level's vertices to this level
}

func (m Multilevel) partitionCSR(c *graph.CSR, k int) []int32 {
	rng := rand.New(rand.NewSource(m.Seed))
	levels := []*level{{csr: c}}
	cur := c
	for cur.NumVertices() > m.CoarsenTo {
		coarse, cmap := coarsen(cur, rng)
		// Stop when matching no longer shrinks the graph meaningfully.
		if coarse.NumVertices() > cur.NumVertices()*19/20 {
			break
		}
		levels = append(levels, &level{csr: coarse, cmap: cmap})
		cur = coarse
	}
	part := m.initialKWay(cur, k, rng)
	maxW := m.maxPartWeight(cur, k)
	refineKWay(cur, part, k, maxW, m.RefinePasses, rng)
	for li := len(levels) - 1; li >= 1; li-- {
		fine := levels[li-1].csr
		cmap := levels[li].cmap
		finePart := make([]int32, fine.NumVertices())
		for v := range finePart {
			finePart[v] = part[cmap[v]]
		}
		part = finePart
		refineKWay(fine, part, k, m.maxPartWeight(fine, k), m.RefinePasses, rng)
	}
	return part
}

func (m Multilevel) maxPartWeight(c *graph.CSR, k int) int64 {
	tot := c.TotalVWgt()
	w := int64(float64(tot) / float64(k) * m.Imbalance)
	if w < tot/int64(k)+1 {
		w = tot/int64(k) + 1
	}
	return w
}

// coarsen performs one level of randomized heavy-edge matching and builds
// the coarse graph (vertex weights summed, parallel edges merged).
func coarsen(c *graph.CSR, rng *rand.Rand) (*graph.CSR, []int32) {
	n := c.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	coarseN := 0
	cmap := make([]int32, n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] != -1 {
			continue
		}
		// heaviest unmatched neighbor
		best, bestW := int32(-1), graph.Weight(0)
		c.Neighbors(v, func(to int32, w graph.Weight) {
			if match[to] == -1 && to != v && w > bestW {
				best, bestW = to, w
			}
		})
		if best == -1 {
			match[v] = v
			cmap[v] = int32(coarseN)
		} else {
			match[v], match[best] = best, v
			cmap[v] = int32(coarseN)
			cmap[best] = int32(coarseN)
		}
		coarseN++
	}
	coarse := &graph.CSR{
		XAdj: make([]int32, coarseN+1),
		VWgt: make([]int32, coarseN),
	}
	for v := 0; v < n; v++ {
		coarse.VWgt[cmap[v]] += c.VWgt[v]
	}
	// Accumulate coarse adjacency with a timestamped scratch table.
	pos := make([]int32, coarseN) // position of coarse neighbor in current row
	stamp := make([]int32, coarseN)
	for i := range stamp {
		stamp[i] = -1
	}
	// members[cv] listing is implicit via match: cv's members are v and match[v].
	rep := make([]int32, coarseN) // one representative fine vertex per coarse vertex
	for i := range rep {
		rep[i] = -1
	}
	for v := 0; v < n; v++ {
		if rep[cmap[v]] == -1 {
			rep[cmap[v]] = int32(v)
		}
	}
	for cv := int32(0); cv < int32(coarseN); cv++ {
		emit := func(fv int32) {
			c.Neighbors(fv, func(to int32, w graph.Weight) {
				ct := cmap[to]
				if ct == cv {
					return // contracted edge becomes internal
				}
				if stamp[ct] == cv {
					coarse.AdjWgt[pos[ct]] += w
					return
				}
				stamp[ct] = cv
				pos[ct] = int32(len(coarse.Adjncy))
				coarse.Adjncy = append(coarse.Adjncy, ct)
				coarse.AdjWgt = append(coarse.AdjWgt, w)
			})
		}
		fv := rep[cv]
		emit(fv)
		if other := match[fv]; other != fv {
			emit(other)
		}
		coarse.XAdj[cv+1] = int32(len(coarse.Adjncy))
	}
	return coarse, cmap
}

// initialKWay partitions the coarsest graph into k parts by recursive
// bisection over induced subgraphs.
func (m Multilevel) initialKWay(c *graph.CSR, k int, rng *rand.Rand) []int32 {
	part := make([]int32, c.NumVertices())
	verts := make([]int32, c.NumVertices())
	for i := range verts {
		verts[i] = int32(i)
	}
	m.recBisect(c, verts, k, 0, part, rng)
	return part
}

// recBisect assigns parts [base, base+k) to the given vertex subset.
func (m Multilevel) recBisect(c *graph.CSR, verts []int32, k int, base int32, out []int32, rng *rand.Rand) {
	if k == 1 {
		for _, v := range verts {
			out[v] = base
		}
		return
	}
	k1 := (k + 1) / 2
	frac := float64(k1) / float64(k)
	sub, back := inducedCSR(c, verts)
	side := m.bisect(sub, frac, rng)
	var left, right []int32
	for i, s := range side {
		if s == 0 {
			left = append(left, back[i])
		} else {
			right = append(right, back[i])
		}
	}
	m.recBisect(c, left, k1, base, out, rng)
	m.recBisect(c, right, k-k1, base+int32(k1), out, rng)
}

// inducedCSR extracts the subgraph induced by verts, returning it together
// with the mapping from new IDs back to c's IDs.
func inducedCSR(c *graph.CSR, verts []int32) (*graph.CSR, []int32) {
	idx := make(map[int32]int32, len(verts))
	for i, v := range verts {
		idx[v] = int32(i)
	}
	sub := &graph.CSR{
		XAdj: make([]int32, len(verts)+1),
		VWgt: make([]int32, len(verts)),
	}
	for i, v := range verts {
		sub.VWgt[i] = c.VWgt[v]
		c.Neighbors(v, func(to int32, w graph.Weight) {
			if j, ok := idx[to]; ok {
				sub.Adjncy = append(sub.Adjncy, j)
				sub.AdjWgt = append(sub.AdjWgt, w)
			}
		})
		sub.XAdj[i+1] = int32(len(sub.Adjncy))
	}
	back := append([]int32(nil), verts...)
	return sub, back
}

// bisect splits c into sides 0/1 with side-0 weight ≈ frac of the total,
// using greedy graph growing (best of InitTries seeds) followed by
// boundary refinement.
func (m Multilevel) bisect(c *graph.CSR, frac float64, rng *rand.Rand) []int8 {
	n := c.NumVertices()
	side := make([]int8, n)
	if n == 0 {
		return side
	}
	tot := c.TotalVWgt()
	target0 := int64(float64(tot) * frac)
	bestCut := int64(-1)
	var bestSide []int8
	try := make([]int8, n)
	for t := 0; t < m.InitTries; t++ {
		for i := range try {
			try[i] = 1
		}
		growSide0(c, try, target0, rng)
		m.refineBisect(c, try, target0, tot, rng)
		cut := cutWeight(c, try)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			bestSide = append(bestSide[:0], try...)
		}
	}
	copy(side, bestSide)
	return side
}

// growSide0 BFS-grows side 0 from a random seed until it holds ~target0
// vertex weight. Remaining vertices stay on side 1.
func growSide0(c *graph.CSR, side []int8, target0 int64, rng *rand.Rand) {
	n := c.NumVertices()
	var w0 int64
	var queue []int32
	visited := make([]bool, n)
	for w0 < target0 {
		if len(queue) == 0 {
			seed := int32(-1)
			start := rng.Intn(n)
			for off := 0; off < n; off++ {
				v := int32((start + off) % n)
				if !visited[v] {
					seed = v
					break
				}
			}
			if seed == -1 {
				break
			}
			visited[seed] = true
			side[seed] = 0
			w0 += int64(c.VWgt[seed])
			queue = append(queue, seed)
			continue
		}
		v := queue[0]
		queue = queue[1:]
		c.Neighbors(v, func(to int32, _ graph.Weight) {
			if w0 >= target0 || visited[to] {
				return
			}
			visited[to] = true
			side[to] = 0
			w0 += int64(c.VWgt[to])
			queue = append(queue, to)
		})
	}
}

func cutWeight(c *graph.CSR, side []int8) int64 {
	var cut int64
	for v := int32(0); v < int32(c.NumVertices()); v++ {
		c.Neighbors(v, func(to int32, w graph.Weight) {
			if to > v && side[v] != side[to] {
				cut += int64(w)
			}
		})
	}
	return cut
}

// refineBisect runs greedy gain-based boundary passes on a bisection,
// keeping both sides within the balance tolerance.
func (m Multilevel) refineBisect(c *graph.CSR, side []int8, target0, tot int64, rng *rand.Rand) {
	n := c.NumVertices()
	target1 := tot - target0
	max0 := int64(float64(target0) * m.Imbalance)
	max1 := int64(float64(target1) * m.Imbalance)
	var w0 int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += int64(c.VWgt[v])
		}
	}
	w1 := tot - w0
	order := rng.Perm(n)
	for pass := 0; pass < m.RefinePasses; pass++ {
		moved := false
		for _, vi := range order {
			v := int32(vi)
			var intW, extW int64
			c.Neighbors(v, func(to int32, w graph.Weight) {
				if side[to] == side[v] {
					intW += int64(w)
				} else {
					extW += int64(w)
				}
			})
			if extW == 0 {
				continue // interior vertex
			}
			gain := extW - intW
			vw := int64(c.VWgt[v])
			if side[v] == 0 {
				fits := w1+vw <= max1
				if (gain > 0 && fits) || (gain == 0 && fits && w0 > max0) {
					side[v] = 1
					w0 -= vw
					w1 += vw
					moved = true
				}
			} else {
				fits := w0+vw <= max0
				if (gain > 0 && fits) || (gain == 0 && fits && w1 > max1) {
					side[v] = 0
					w1 -= vw
					w0 += vw
					moved = true
				}
			}
		}
		if !moved {
			break
		}
	}
}

// refineKWay performs greedy k-way boundary refinement: every boundary
// vertex may move to the adjacent part it is most connected to, provided
// the move strictly reduces the cut and respects the balance bound.
func refineKWay(c *graph.CSR, part []int32, k int, maxW int64, passes int, rng *rand.Rand) {
	n := c.NumVertices()
	pw := make([]int64, k)
	for v := 0; v < n; v++ {
		pw[part[v]] += int64(c.VWgt[v])
	}
	conn := make([]int64, k)
	stamp := make([]int32, k)
	for i := range stamp {
		stamp[i] = -1
	}
	tick := int32(0)
	order := rng.Perm(n)
	for pass := 0; pass < passes; pass++ {
		moved := false
		for _, vi := range order {
			v := int32(vi)
			cur := part[v]
			tick++
			boundary := false
			var touched []int32
			c.Neighbors(v, func(to int32, w graph.Weight) {
				p := part[to]
				if stamp[p] != tick {
					stamp[p] = tick
					conn[p] = 0
					touched = append(touched, p)
				}
				conn[p] += int64(w)
				if p != cur {
					boundary = true
				}
			})
			if !boundary {
				continue
			}
			var intW int64
			if stamp[cur] == tick {
				intW = conn[cur]
			}
			best, bestW := cur, intW
			vw := int64(c.VWgt[v])
			for _, p := range touched {
				if p == cur {
					continue
				}
				if conn[p] > bestW && pw[p]+vw <= maxW {
					best, bestW = p, conn[p]
				}
			}
			if best != cur {
				part[v] = best
				pw[cur] -= vw
				pw[best] += vw
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}
