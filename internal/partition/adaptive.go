package partition

import (
	"fmt"
	"math/rand"

	"anytime/internal/graph"
)

// Adaptive improves an existing vertex-to-part assignment after the graph
// has changed, instead of partitioning from scratch: it seeds from the
// given assignment and runs k-way boundary refinement under the balance
// constraint. This is the adaptive-repartitioning mode of the ParMETIS
// family: migration is minimized because only vertices that refinement
// actually moves change owner.
//
// part must already cover every vertex of g (the caller assigns the new
// vertices, e.g. by neighbor affinity, before calling). The input slice is
// not modified.
type Adaptive struct {
	Seed         int64
	Imbalance    float64 // allowed part-weight factor (0 = 1.05)
	RefinePasses int     // boundary refinement passes (0 = 8)
}

// Refine returns the refined assignment.
func (a Adaptive) Refine(g *graph.Graph, part []int32, k int) (*graph.Partition, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	if len(part) != g.NumVertices() {
		return nil, fmt.Errorf("partition: adaptive seed covers %d of %d vertices",
			len(part), g.NumVertices())
	}
	if a.Imbalance == 0 {
		a.Imbalance = 1.05
	}
	if a.RefinePasses == 0 {
		a.RefinePasses = 8
	}
	out := &graph.Partition{Part: append([]int32(nil), part...), K: k}
	for v, pt := range out.Part {
		if int(pt) < 0 || int(pt) >= k {
			return nil, fmt.Errorf("partition: adaptive seed assigns vertex %d to part %d", v, pt)
		}
	}
	c := graph.ToCSR(g)
	for i := range c.AdjWgt {
		c.AdjWgt[i] = 1 // cut-edge count objective
	}
	tot := c.TotalVWgt()
	maxW := int64(float64(tot) / float64(k) * a.Imbalance)
	if maxW < tot/int64(k)+1 {
		maxW = tot/int64(k) + 1
	}
	rng := rand.New(rand.NewSource(a.Seed))
	refineKWay(c, out.Part, k, maxW, a.RefinePasses, rng)
	return out, nil
}

// AffinityExtend assigns each vertex in [first, n) of g to the part its
// neighbors are most connected to (ties: lower load), subject to the
// standard 1.05 balance cap — a full part falls through to the best
// non-full one (least-loaded if no neighbors). It extends `part` in place
// and returns it. New vertices are processed in ID order, so earlier new
// vertices influence later ones.
func AffinityExtend(g *graph.Graph, part []int32, k, first int) []int32 {
	n := g.NumVertices()
	cap64 := int64(float64(n)/float64(k)*1.05) + 1
	load := make([]int64, k)
	for _, pt := range part[:first] {
		load[pt]++
	}
	conn := make([]int64, k)
	for v := first; v < n; v++ {
		for i := range conn {
			conn[i] = 0
		}
		for _, a := range g.Neighbors(v) {
			if int(a.To) < len(part) {
				conn[part[a.To]]++
			}
		}
		best := -1
		for p := 0; p < k; p++ {
			if load[p] >= cap64 {
				continue
			}
			switch {
			case best == -1:
				best = p
			case conn[p] > conn[best]:
				best = p
			case conn[p] == conn[best] && load[p] < load[best]:
				best = p
			}
		}
		if best == -1 { // every part at the cap: pick the least loaded
			best = 0
			for p := 1; p < k; p++ {
				if load[p] < load[best] {
					best = p
				}
			}
		}
		part = append(part, int32(best))
		load[best]++
	}
	return part
}
