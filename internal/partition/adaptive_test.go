package partition

import (
	"testing"

	"anytime/internal/gen"
	"anytime/internal/graph"
)

func TestAdaptiveRefineImprovesCut(t *testing.T) {
	g, _, err := gen.PlantedPartition(320, 4, 0.2, 0.01, gen.Weights{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// bad seed assignment: round robin scatters the communities
	seed := make([]int32, 320)
	for v := range seed {
		seed[v] = int32(v % 4)
	}
	before := graph.EdgeCut(g, &graph.Partition{Part: seed, K: 4})
	p, err := Adaptive{Seed: 5}.Refine(g, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	after := graph.EdgeCut(g, p)
	if after >= before {
		t.Fatalf("refinement did not improve cut: %d -> %d", before, after)
	}
	if im := graph.Imbalance(g, p); im > 1.2 {
		t.Fatalf("imbalance %.3f", im)
	}
	// the input must not be mutated
	for v := range seed {
		if seed[v] != int32(v%4) {
			t.Fatal("Refine mutated its input")
		}
	}
}

func TestAdaptiveRefineKeepsGoodPartition(t *testing.T) {
	g, _, err := gen.PlantedPartition(320, 4, 0.2, 0.01, gen.Weights{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Multilevel{Seed: 7}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Adaptive{Seed: 7}.Refine(g, good.Part, 4)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for v := range p.Part {
		if p.Part[v] != good.Part[v] {
			moved++
		}
	}
	// refining an already-good partition should move almost nothing
	if moved > 32 {
		t.Fatalf("refinement relocated %d of 320 vertices of a good partition", moved)
	}
}

func TestAdaptiveRefineErrors(t *testing.T) {
	g := randomGraph(10, 15, 1)
	if _, err := (Adaptive{}).Refine(g, make([]int32, 5), 2); err == nil {
		t.Fatal("short seed should fail")
	}
	bad := make([]int32, 10)
	bad[3] = 7
	if _, err := (Adaptive{}).Refine(g, bad, 2); err == nil {
		t.Fatal("out-of-range seed label should fail")
	}
	if _, err := (Adaptive{}).Refine(g, make([]int32, 10), 0); err == nil {
		t.Fatal("k=0 should fail")
	}
}

func TestAffinityExtendPrefersNeighbors(t *testing.T) {
	// two cliques on parts 0/1, then a new vertex attached to clique 1
	g := graph.New(9)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.MustAddEdge(u, v, 1)
			g.MustAddEdge(u+4, v+4, 1)
		}
	}
	g.MustAddEdge(8, 4, 1)
	g.MustAddEdge(8, 5, 1)
	part := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	part = AffinityExtend(g, part, 2, 8)
	if len(part) != 9 || part[8] != 1 {
		t.Fatalf("affinity assignment = %v", part)
	}
}

func TestAffinityExtendRespectsCap(t *testing.T) {
	// a hub on part 0; many new vertices all attached to the hub would
	// overload part 0 without the cap
	g := graph.New(24)
	for v := 8; v < 24; v++ {
		g.MustAddEdge(0, v, 1)
	}
	part := make([]int32, 8) // 8 existing vertices: 4 per part
	for v := 4; v < 8; v++ {
		part[v] = 1
	}
	part = AffinityExtend(g, part, 2, 8)
	load := [2]int{}
	for _, p := range part {
		load[p]++
	}
	// cap = 24/2*1.05+1 = 13
	if load[0] > 13 {
		t.Fatalf("cap violated: loads %v", load)
	}
}

func TestAffinityExtendIsolatedVertices(t *testing.T) {
	g := graph.New(6)
	part := []int32{0, 0, 1, 1}
	part = AffinityExtend(g, part, 2, 4)
	if len(part) != 6 {
		t.Fatalf("len = %d", len(part))
	}
	load := [2]int{}
	for _, p := range part {
		load[p]++
	}
	if load[0] != 3 || load[1] != 3 {
		t.Fatalf("isolated vertices not spread by load: %v", load)
	}
}
