package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"anytime/internal/gen"
	"anytime/internal/graph"
)

func randomGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, graph.Weight(1+rng.Intn(4)))
	}
	return g
}

func allPartitioners(seed int64) []Partitioner {
	return []Partitioner{
		RoundRobin{},
		Blocked{},
		Random{Seed: seed},
		Greedy{Seed: seed},
		Multilevel{Seed: seed},
	}
}

// Every partitioner must produce a valid cover with bounded imbalance.
func TestPartitionersValidAndBalanced(t *testing.T) {
	g := randomGraph(300, 900, 2)
	for _, pt := range allPartitioners(2) {
		for _, k := range []int{1, 2, 3, 8} {
			p, err := pt.Partition(g, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", pt.Name(), k, err)
			}
			if err := p.Validate(g); err != nil {
				t.Fatalf("%s k=%d: %v", pt.Name(), k, err)
			}
			if pt.Name() == "random" {
				continue // random gives no balance guarantee
			}
			if im := graph.Imbalance(g, p); im > 1.35 {
				t.Errorf("%s k=%d imbalance %.3f", pt.Name(), k, im)
			}
		}
	}
}

func TestPartitionerErrors(t *testing.T) {
	g := randomGraph(10, 20, 3)
	for _, pt := range allPartitioners(3) {
		if _, err := pt.Partition(g, 0); err == nil {
			t.Errorf("%s: k=0 should fail", pt.Name())
		}
		if _, err := pt.Partition(g, 11); err == nil {
			t.Errorf("%s: k>n should fail", pt.Name())
		}
	}
}

func TestRoundRobinExact(t *testing.T) {
	g := randomGraph(10, 12, 4)
	p, err := RoundRobin{}.Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v, pt := range p.Part {
		if int(pt) != v%3 {
			t.Fatalf("vertex %d in part %d", v, pt)
		}
	}
}

// The multilevel partitioner must beat round robin decisively on graphs
// with community structure — that is its entire reason to exist.
func TestMultilevelBeatsRoundRobinOnCommunities(t *testing.T) {
	g, _, err := gen.PlantedPartition(400, 8, 0.20, 0.005, gen.Weights{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobin{}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Multilevel{Seed: 7}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	cutRR := graph.EdgeCut(g, rr)
	cutML := graph.EdgeCut(g, ml)
	if cutML*2 >= cutRR {
		t.Fatalf("multilevel cut %d not < half of round-robin cut %d", cutML, cutRR)
	}
}

func TestMultilevelOnRing(t *testing.T) {
	n := 256
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)
	}
	p, err := Multilevel{Seed: 5}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// a ring cut into 4 contiguous arcs has cut 4; allow slack but demand
	// far better than random (~3n/4)
	if cut := graph.EdgeCut(g, p); cut > 24 {
		t.Fatalf("ring cut = %d", cut)
	}
}

func TestMultilevelDeterministicForSeed(t *testing.T) {
	g := randomGraph(200, 600, 11)
	p1, err := Multilevel{Seed: 42}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Multilevel{Seed: 42}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range p1.Part {
		if p1.Part[v] != p2.Part[v] {
			t.Fatalf("nondeterministic at vertex %d", v)
		}
	}
}

// Property: multilevel output is always a valid partition with every part
// nonempty (for k <= n/4, plenty of room).
func TestQuickMultilevelValid(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 40
		k := int(kRaw)%4 + 2
		g := randomGraph(n, 3*n, seed)
		p, err := Multilevel{Seed: seed}.Partition(g, k)
		if err != nil || p.Validate(g) != nil {
			return false
		}
		for _, s := range p.Sizes() {
			if s == 0 {
				return false
			}
		}
		return graph.Imbalance(g, p) <= 1.6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyCoversDisconnected(t *testing.T) {
	// two disjoint cliques plus isolated vertices
	g := graph.New(20)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.MustAddEdge(u, v, 1)
			g.MustAddEdge(u+5, v+5, 1)
		}
	}
	p, err := Greedy{Seed: 9}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Sizes() {
		if s != 5 {
			t.Fatalf("sizes = %v", p.Sizes())
		}
	}
}

func TestEvaluate(t *testing.T) {
	g := randomGraph(50, 100, 13)
	p, err := Multilevel{Seed: 13}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(g, p)
	if q.EdgeCut < 0 || len(q.Sizes) != 4 || len(q.CutSizes) != 4 {
		t.Fatalf("quality = %+v", q)
	}
	sum := 0
	for _, c := range q.CutSizes {
		sum += c
	}
	if sum != 2*q.EdgeCut {
		t.Fatalf("cut sizes sum %d != 2*cut %d", sum, q.EdgeCut)
	}
}

func TestMultilevelK1AndKEqualsN(t *testing.T) {
	g := randomGraph(30, 60, 15)
	p, err := Multilevel{Seed: 15}.Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range p.Part {
		if pt != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
	p, err = Multilevel{Seed: 15}.Partition(g, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
}
