// Package partition provides the graph partitioners used by the Domain
// Decomposition phase and by the CutEdge-PS / Repartition-S strategies: a
// from-scratch multilevel k-way partitioner in the METIS family
// (heavy-edge-matching coarsening, greedy-growing recursive bisection,
// Fiduccia–Mattheyses-style boundary refinement), plus round-robin, hash,
// random and BFS greedy-growing baselines, and partition quality metrics.
package partition

import (
	"fmt"
	"math/rand"

	"anytime/internal/graph"
)

// Partitioner splits a graph into k balanced parts.
type Partitioner interface {
	// Partition returns an assignment of every vertex to a part in [0, k).
	Partition(g *graph.Graph, k int) (*graph.Partition, error)
	// Name identifies the algorithm in reports.
	Name() string
}

func checkK(g *graph.Graph, k int) error {
	if k < 1 {
		return fmt.Errorf("partition: k=%d < 1", k)
	}
	if g.NumVertices() > 0 && k > g.NumVertices() {
		return fmt.Errorf("partition: k=%d exceeds %d vertices", k, g.NumVertices())
	}
	return nil
}

// RoundRobin assigns vertex v to part v mod k. Perfectly balanced, ignores
// edges entirely.
type RoundRobin struct{}

func (RoundRobin) Name() string { return "roundrobin" }

func (RoundRobin) Partition(g *graph.Graph, k int) (*graph.Partition, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	p := graph.NewPartition(g.NumVertices(), k)
	for v := range p.Part {
		p.Part[v] = int32(v % k)
	}
	return p, nil
}

// Blocked assigns contiguous ID ranges to parts (v*k/n). Balanced; keeps
// generator locality when IDs are assigned in attachment order.
type Blocked struct{}

func (Blocked) Name() string { return "blocked" }

func (Blocked) Partition(g *graph.Graph, k int) (*graph.Partition, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	p := graph.NewPartition(n, k)
	for v := range p.Part {
		p.Part[v] = int32(v * k / n)
	}
	return p, nil
}

// Random assigns vertices to parts uniformly at random (seeded). The
// worst-reasonable baseline for cut quality.
type Random struct{ Seed int64 }

func (Random) Name() string { return "random" }

func (r Random) Partition(g *graph.Graph, k int) (*graph.Partition, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	p := graph.NewPartition(g.NumVertices(), k)
	for v := range p.Part {
		p.Part[v] = int32(rng.Intn(k))
	}
	return p, nil
}

// Greedy is BFS greedy growing: parts are grown one at a time from random
// seeds, absorbing frontier vertices until the part reaches its target
// size. Cheap, locality-aware, no refinement.
type Greedy struct{ Seed int64 }

func (Greedy) Name() string { return "greedy-grow" }

func (ggp Greedy) Partition(g *graph.Graph, k int) (*graph.Partition, error) {
	if err := checkK(g, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(ggp.Seed))
	p := graph.NewPartition(n, k)
	for i := range p.Part {
		p.Part[i] = -1
	}
	assigned := 0
	var queue []int32
	for part := 0; part < k; part++ {
		target := (n - assigned) / (k - part)
		cnt := 0
		queue = queue[:0]
		for cnt < target {
			if len(queue) == 0 {
				// new seed: any unassigned vertex
				seed := int32(-1)
				start := rng.Intn(n)
				for off := 0; off < n; off++ {
					v := int32((start + off) % n)
					if p.Part[v] == -1 {
						seed = v
						break
					}
				}
				if seed == -1 {
					break
				}
				p.Part[seed] = int32(part)
				assigned++
				cnt++
				queue = append(queue, seed)
				continue
			}
			v := queue[0]
			queue = queue[1:]
			for _, a := range g.Neighbors(int(v)) {
				if cnt >= target {
					break
				}
				if p.Part[a.To] == -1 {
					p.Part[a.To] = int32(part)
					assigned++
					cnt++
					queue = append(queue, a.To)
				}
			}
		}
	}
	// leftovers (target rounding): round-robin over parts
	next := 0
	for v := range p.Part {
		if p.Part[v] == -1 {
			p.Part[v] = int32(next % k)
			next++
		}
	}
	return p, nil
}

// Quality summarizes a partition for reports and tests.
type Quality struct {
	EdgeCut   int
	CutSizes  []int
	Sizes     []int
	Imbalance float64
}

// Evaluate computes the quality metrics of p over g.
func Evaluate(g *graph.Graph, p *graph.Partition) Quality {
	return Quality{
		EdgeCut:   graph.EdgeCut(g, p),
		CutSizes:  graph.CutSizes(g, p),
		Sizes:     p.Sizes(),
		Imbalance: graph.Imbalance(g, p),
	}
}
