package logp

import (
	"testing"
	"time"
)

func TestModelValidate(t *testing.T) {
	if err := GigabitCluster(4).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{P: 0}).Validate(); err == nil {
		t.Fatal("P=0 should fail")
	}
	bad := GigabitCluster(2)
	bad.L = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative latency should fail")
	}
}

func TestCosts(t *testing.T) {
	m := Model{L: 100, O: 10, G: 2, P: 2, Compute: 3}
	if c := m.SendCost(5); c != 10+5*2 {
		t.Fatalf("SendCost = %v", c)
	}
	if c := m.RecvCost(5); c != 10+5*2 {
		t.Fatalf("RecvCost = %v", c)
	}
	if m.Transit() != 100 {
		t.Fatalf("Transit = %v", m.Transit())
	}
	if w := m.Work(7); w != 21 {
		t.Fatalf("Work = %v", w)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(-5) // negative ignored
	if c.Now() != 10 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.AdvanceTo(7) // earlier ignored
	if c.Now() != 10 {
		t.Fatalf("Now = %v", c.Now())
	}
	c.AdvanceTo(25)
	if c.Now() != 25 {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestBarrierSynchronizesToMax(t *testing.T) {
	clocks := []*Clock{{}, {}, {}}
	clocks[0].Advance(5 * time.Millisecond)
	clocks[1].Advance(9 * time.Millisecond)
	clocks[2].Advance(1 * time.Millisecond)
	max := Barrier(clocks)
	if max != 9*time.Millisecond {
		t.Fatalf("barrier = %v", max)
	}
	for i, c := range clocks {
		if c.Now() != max {
			t.Fatalf("clock %d = %v", i, c.Now())
		}
	}
}

// TestClockBusyTracksAdvanceOnly: Advance accrues busy time, AdvanceTo
// (barrier/message-wait jumps) moves the clock without counting as busy.
func TestClockBusyTracksAdvanceOnly(t *testing.T) {
	var c Clock
	c.Advance(40 * time.Microsecond)
	c.AdvanceTo(100 * time.Microsecond)
	c.Advance(10 * time.Microsecond)
	c.AdvanceTo(50 * time.Microsecond) // behind: no-op
	if c.Now() != 110*time.Microsecond {
		t.Fatalf("Now = %v, want 110µs", c.Now())
	}
	if c.Busy() != 50*time.Microsecond {
		t.Fatalf("Busy = %v, want 50µs (idle jump excluded)", c.Busy())
	}
}
