// Package logp implements the LogP distributed-memory machine model
// (Culler et al., PPoPP 1993) used by the paper for its runtime analysis,
// plus per-processor virtual clocks. The simulated cluster charges every
// message and every unit of local computation against these parameters, so
// cluster-scale time *shapes* are reproduced even though the runtime
// executes in a single process.
package logp

import (
	"fmt"
	"time"
)

// Model holds the LogP parameters. All times are virtual nanoseconds.
type Model struct {
	// L is the latency: upper bound on the delay of a small message
	// between two processors.
	L time.Duration
	// O is the overhead: time a processor is busy sending or receiving one
	// message (charged on both ends).
	O time.Duration
	// G is the gap per byte: reciprocal of per-processor bandwidth. The
	// classic model defines g per message of fixed size w; a per-byte gap
	// generalizes it to the variable-size boundary-DV messages.
	G time.Duration
	// P is the number of processors.
	P int
	// Compute scales virtual time charged per abstract work unit (one
	// distance relaxation, one heap operation, ...).
	Compute time.Duration
}

// GigabitCluster returns parameters resembling the paper's testbed: 1 Gb/s
// Ethernet (≈1 ns/byte + protocol overhead), tens-of-microsecond latency,
// and ~1 ns per scalar operation on a ~1.8 GHz core.
func GigabitCluster(p int) Model {
	return Model{
		L:       50 * time.Microsecond,
		O:       5 * time.Microsecond,
		G:       10 * time.Nanosecond, // ~100 MB/s effective
		P:       p,
		Compute: 1 * time.Nanosecond,
	}
}

// Validate checks the parameters.
func (m Model) Validate() error {
	if m.P < 1 {
		return fmt.Errorf("logp: P=%d < 1", m.P)
	}
	if m.L < 0 || m.O < 0 || m.G < 0 || m.Compute < 0 {
		return fmt.Errorf("logp: negative parameter in %+v", m)
	}
	return nil
}

// SendCost is the sender-side busy time for a message of `bytes` payload:
// o + bytes*G.
func (m Model) SendCost(bytes int) time.Duration {
	return m.O + time.Duration(bytes)*m.G
}

// RecvCost is the receiver-side busy time for a message of `bytes` payload.
func (m Model) RecvCost(bytes int) time.Duration {
	return m.O + time.Duration(bytes)*m.G
}

// Transit is the wire time of a message: L (independent of size; the
// serialization time is charged via G on the endpoints).
func (m Model) Transit() time.Duration { return m.L }

// Work converts an abstract operation count into virtual compute time.
func (m Model) Work(ops int64) time.Duration {
	return time.Duration(ops) * m.Compute
}

// Clock is one processor's virtual clock. Clocks advance independently
// during a step; barriers synchronize them to the maximum.
//
// The clock distinguishes *busy* time (explicit charges via Advance: compute,
// send/receive overhead) from *idle* time (AdvanceTo jumps: waiting at a
// barrier or for a message in flight). The busy total is what the paper's
// load-imbalance metric (Fig. 5) is computed over — a processor stalled at a
// barrier has a late clock but no extra busy time.
type Clock struct {
	now  time.Duration
	busy time.Duration
}

// Advance adds d to the clock, counting it as busy time.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
		c.busy += d
	}
}

// AdvanceTo moves the clock forward to t if t is later. The jump is idle
// (synchronization) time and does not count as busy.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Busy returns the accumulated busy (explicitly charged) virtual time.
func (c *Clock) Busy() time.Duration { return c.busy }

// Barrier synchronizes a set of clocks to their maximum and returns it.
// This models the bulk-synchronous structure of the recombination steps.
func Barrier(clocks []*Clock) time.Duration {
	var max time.Duration
	for _, c := range clocks {
		if c.now > max {
			max = c.now
		}
	}
	for _, c := range clocks {
		c.now = max
	}
	return max
}
