package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"anytime/internal/stream"
)

// Client is a minimal stdlib-only client for the serving API — the other
// half of the load-generator pair (aastream -mode replay -target feeds a
// running aaserve through it).
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusTooManyRequests:
		return ErrBackpressure
	case http.StatusServiceUnavailable:
		return ErrClosed
	default:
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("serve: %s %s: %s", method, path, e.Error)
	}
}

// PostEvents admits a batch of dynamic events. A 429 response surfaces as
// ErrBackpressure so callers can retry with backoff.
func (c *Client) PostEvents(ctx context.Context, evs []stream.Event) (EventsResponse, error) {
	var out EventsResponse
	err := c.do(ctx, http.MethodPost, "/v1/events", EventsRequest{Events: ToWire(evs)}, &out)
	return out, err
}

// TopK fetches the current top-k closeness ranking.
func (c *Client) TopK(ctx context.Context, k int) (TopKResponse, error) {
	var out TopKResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/topk?k=%d", k), nil, &out)
	return out, err
}

// Closeness fetches one vertex's centrality estimates.
func (c *Client) Closeness(ctx context.Context, vertex int) (ClosenessResponse, error) {
	var out ClosenessResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/closeness/%d", vertex), nil, &out)
	return out, err
}

// Snapshot fetches the latest View metadata.
func (c *Client) Snapshot(ctx context.Context) (SnapshotMeta, error) {
	var out SnapshotMeta
	err := c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// Metrics fetches the counter map served at /metrics.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}
