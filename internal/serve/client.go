package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"anytime/internal/obs"
	"anytime/internal/stream"
)

// Client is a minimal stdlib-only client for the serving API — the other
// half of the load-generator pair (aastream -mode replay -target feeds a
// running aaserve through it). It is hardened against a flaky server:
// every attempt runs under a per-request timeout, and failed attempts are
// retried with exponential backoff plus jitter. Reads (GET) retry on
// transport errors, 5xx responses, and 429; writes (POST /v1/events)
// retry only on 429 — admission is not idempotent, and a transport error
// after the server received the body could double-apply the batch.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// Timeout bounds each individual attempt (default 5s).
	Timeout time.Duration
	// MaxRetries is the number of retries after the first attempt
	// (default 3, so up to 4 attempts). Negative disables retries.
	MaxRetries int
	// RetryBase is the first backoff delay (default 100ms); attempt i
	// sleeps RetryBase·2ⁱ plus up to RetryBase of jitter.
	RetryBase time.Duration
	// rng overrides the jitter source in tests.
	rng func() float64
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 5 * time.Second
}

func (c *Client) maxRetries() int {
	if c.MaxRetries != 0 {
		if c.MaxRetries < 0 {
			return 0
		}
		return c.MaxRetries
	}
	return 3
}

func (c *Client) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 100 * time.Millisecond
}

// backoff sleeps for attempt i's delay (exponential plus jitter),
// returning early with the context error if ctx is done first.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	jitter := rand.Float64()
	if c.rng != nil {
		jitter = c.rng()
	}
	base := c.retryBase()
	d := base<<attempt + time.Duration(jitter*float64(base))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryable reports whether an attempt outcome warrants another attempt
// for the given method. err != nil with status == 0 is a transport error.
func retryable(method string, status int, err error) bool {
	if status == http.StatusTooManyRequests {
		return true // backpressure: both reads and writes retry
	}
	if method != http.MethodGet {
		return false
	}
	return err != nil || status >= 500
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		status, err := c.attempt(ctx, method, path, payload, in != nil, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= c.maxRetries() || !retryable(method, status, err) {
			return lastErr
		}
		if berr := c.backoff(ctx, attempt); berr != nil {
			return lastErr
		}
	}
}

// attempt runs one HTTP round trip. The returned status is 0 on transport
// errors (no response).
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, hasBody bool, out any) (int, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, strings.TrimRight(c.BaseURL, "/")+path, body)
	if err != nil {
		return 0, err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
		if out == nil {
			return resp.StatusCode, nil
		}
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	case http.StatusTooManyRequests:
		return resp.StatusCode, ErrBackpressure
	case http.StatusServiceUnavailable:
		return resp.StatusCode, ErrClosed
	default:
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return resp.StatusCode, fmt.Errorf("serve: %s %s: %s", method, path, e.Error)
	}
}

// PostEvents admits a batch of dynamic events. A 429 response surfaces as
// ErrBackpressure after the retry budget; other write failures are never
// retried (admission is not idempotent).
func (c *Client) PostEvents(ctx context.Context, evs []stream.Event) (EventsResponse, error) {
	var out EventsResponse
	err := c.do(ctx, http.MethodPost, "/v1/events", EventsRequest{Events: ToWire(evs)}, &out)
	return out, err
}

// TopK fetches the current top-k closeness ranking.
func (c *Client) TopK(ctx context.Context, k int) (TopKResponse, error) {
	var out TopKResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/topk?k=%d", k), nil, &out)
	return out, err
}

// Closeness fetches one vertex's centrality estimates.
func (c *Client) Closeness(ctx context.Context, vertex int) (ClosenessResponse, error) {
	var out ClosenessResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/closeness/%d", vertex), nil, &out)
	return out, err
}

// Snapshot fetches the latest View metadata.
func (c *Client) Snapshot(ctx context.Context) (SnapshotMeta, error) {
	var out SnapshotMeta
	err := c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// Metrics scrapes /metrics and parses the Prometheus text exposition into
// a flat map keyed by sample name including labels, e.g.
// `aa_queries_served_total` or `aa_proc_rows{proc="0"}`.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	actx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, strings.TrimRight(c.BaseURL, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: GET /metrics: %s", resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// Healthz fetches the health probe: "ok", "degraded", or an error when the
// serving layer is down.
func (c *Client) Healthz(ctx context.Context) (string, error) {
	var out struct {
		Status string `json:"status"`
	}
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out.Status, err
}
