package serve

import (
	"sync/atomic"

	"anytime/internal/obs"
)

// Counters are the serving subsystem's counters, safe for concurrent use.
// The monotone ones are obs.Counter so the metrics registry renders them
// directly; GET /metrics serves the whole set in the Prometheus text
// exposition format together with engine totals and per-step telemetry.
type Counters struct {
	// QueriesServed counts answered read queries (closeness, top-k,
	// snapshot metadata), across HTTP and programmatic access.
	QueriesServed obs.Counter
	// EventsAdmitted counts dynamic events accepted into the admission
	// queue. Rejections are split by cause: backpressure (the queue stayed
	// full through AdmitWait) vs validation (the batch referenced an
	// invalid vertex, weight, or ID).
	EventsAdmitted             obs.Counter
	EventsRejectedBackpressure obs.Counter
	EventsRejectedInvalid      obs.Counter
	// EventsIngested counts admitted events handed to the engine;
	// EventsDropped counts events the engine refused (normally zero —
	// admission validation mirrors the engine's checks).
	EventsIngested obs.Counter
	EventsDropped  obs.Counter
	// Publishes counts View publications (equals the latest version).
	Publishes obs.Counter
	// EngineRestarts counts driver recoveries: a failed RC step replaced
	// the engine with one restored from the last checkpoint.
	EngineRestarts obs.Counter
	// CheckpointsWritten counts periodic and shutdown checkpoints.
	CheckpointsWritten obs.Counter
	// EventsLost counts events dropped by engine restarts: everything
	// applied or admitted after the checkpoint the driver restarted from
	// (the at-most-once trade the hardened serving path makes).
	EventsLost obs.Counter
	// PendingEvents and EngineQueued are gauges: events sitting in the
	// admission queue and in the engine's internal change queue. They stay
	// plain atomics (the driver Stores absolute values) and are exposed on
	// /metrics through gauge functions.
	PendingEvents atomic.Int64
	EngineQueued  atomic.Int64
}

// EventsRejected is the total rejection count across both causes.
func (c *Counters) EventsRejected() int64 {
	return c.EventsRejectedBackpressure.Load() + c.EventsRejectedInvalid.Load()
}

// QueueDepth is the total ingestion backlog: admission queue plus the
// engine's internal change queue.
func (c *Counters) QueueDepth() int64 {
	return c.PendingEvents.Load() + c.EngineQueued.Load()
}
