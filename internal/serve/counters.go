package serve

import "sync/atomic"

// Counters are the serving subsystem's expvar-style counters, safe for
// concurrent use. GET /metrics renders them together with the latest
// View's version, RC steps, and virtual time.
type Counters struct {
	// QueriesServed counts answered read queries (closeness, top-k,
	// snapshot metadata), across HTTP and programmatic access.
	QueriesServed atomic.Int64
	// EventsAdmitted / EventsRejected count dynamic events accepted into /
	// refused from the admission queue (rejections: backpressure or
	// validation failure).
	EventsAdmitted atomic.Int64
	EventsRejected atomic.Int64
	// EventsIngested counts admitted events handed to the engine;
	// EventsDropped counts events the engine refused (normally zero —
	// admission validation mirrors the engine's checks).
	EventsIngested atomic.Int64
	EventsDropped  atomic.Int64
	// Publishes counts View publications (equals the latest version).
	Publishes atomic.Int64
	// EngineRestarts counts driver recoveries: a failed RC step replaced
	// the engine with one restored from the last checkpoint.
	EngineRestarts atomic.Int64
	// CheckpointsWritten counts periodic and shutdown checkpoints.
	CheckpointsWritten atomic.Int64
	// EventsLost counts events dropped by engine restarts: everything
	// applied or admitted after the checkpoint the driver restarted from
	// (the at-most-once trade the hardened serving path makes).
	EventsLost atomic.Int64
	// PendingEvents and EngineQueued are gauges: events sitting in the
	// admission queue and in the engine's internal change queue.
	PendingEvents atomic.Int64
	EngineQueued  atomic.Int64
}

// QueueDepth is the total ingestion backlog: admission queue plus the
// engine's internal change queue.
func (c *Counters) QueueDepth() int64 {
	return c.PendingEvents.Load() + c.EngineQueued.Load()
}
