package serve

import (
	"fmt"
	"time"

	"anytime/internal/core"
	"anytime/internal/stream"
)

// Admit validates a batch of dynamic events against the admitted-so-far
// graph shape and appends it to the admission queue, blocking up to
// Config.AdmitWait when the queue is full (bounded backpressure). The
// batch is admitted atomically: either every event enters the queue in
// order, or none does. Vertex joins must use dense increasing IDs — the
// next join's ID is the current vertex count over everything admitted so
// far (see SnapshotMeta.Vertices plus the queue depth, or generate the
// events with package stream against the same base graph).
func (s *Server) Admit(evs []stream.Event) error {
	if len(evs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var deadline time.Time
	for !s.closed && len(s.pending) > 0 && len(s.pending)+len(evs) > s.cfg.QueueCapacity {
		if deadline.IsZero() {
			deadline = time.Now().Add(s.cfg.AdmitWait)
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			s.counters.EventsRejectedBackpressure.Add(int64(len(evs)))
			return ErrBackpressure
		}
		// sync.Cond has no timed wait: arm a broadcast at the deadline so
		// the loop re-checks and can give up.
		t := time.AfterFunc(wait, s.cond.Broadcast)
		s.cond.Wait()
		t.Stop()
	}
	if s.closed {
		return ErrClosed
	}
	if err := s.validateLocked(evs); err != nil {
		s.counters.EventsRejectedInvalid.Add(int64(len(evs)))
		return err
	}
	s.pending = append(s.pending, evs...)
	s.counters.EventsAdmitted.Add(int64(len(evs)))
	s.counters.PendingEvents.Store(int64(len(s.pending)))
	s.cond.Broadcast()
	return nil
}

// validateLocked dry-runs evs against the admitted graph shape (vertex
// count and deletions), committing the shape change only if every event is
// valid. Mirrors stream.Validate, but against live state instead of a
// whole stream.
func (s *Server) validateLocked(evs []stream.Event) error {
	n := s.admitN
	var newlyDeleted map[int32]bool
	isDeleted := func(v int32) bool { return s.deleted[v] || newlyDeleted[v] }
	checkPair := func(i int, ev stream.Event) error {
		if ev.U < 0 || ev.V < 0 || int(ev.U) >= n || int(ev.V) >= n || ev.U == ev.V {
			return fmt.Errorf("serve: event %d references invalid pair {%d,%d}", i, ev.U, ev.V)
		}
		if isDeleted(ev.U) || isDeleted(ev.V) {
			return fmt.Errorf("serve: event %d references deleted vertex", i)
		}
		return nil
	}
	for i, ev := range evs {
		switch ev.Kind {
		case stream.AddVertex:
			if int(ev.U) != n {
				return fmt.Errorf("serve: event %d adds vertex %d, expected next ID %d", i, ev.U, n)
			}
			n++
		case stream.AddEdge, stream.SetWeight:
			if err := checkPair(i, ev); err != nil {
				return err
			}
			if ev.W <= 0 {
				return fmt.Errorf("serve: event %d has non-positive weight", i)
			}
		case stream.DelEdge:
			if err := checkPair(i, ev); err != nil {
				return err
			}
		case stream.DelVertex:
			if int(ev.U) >= n || ev.U < 0 || isDeleted(ev.U) {
				return fmt.Errorf("serve: event %d deletes invalid vertex %d", i, ev.U)
			}
			if newlyDeleted == nil {
				newlyDeleted = map[int32]bool{}
			}
			newlyDeleted[ev.U] = true
		default:
			return fmt.Errorf("serve: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	s.admitN = n
	for v := range newlyDeleted {
		s.deleted[v] = true
	}
	return nil
}

// drive is the background driver loop: hand admitted events to the engine
// (at most MaxEventsPerStep per step), take one RC step, repeat; block
// when converged with nothing admitted; on Close, drain everything,
// converge, publish the final view, and checkpoint.
//
// The loop is hardened against engine failure: a panicking or erroring
// step triggers a restart from the last checkpoint (Config.CheckpointPath)
// — events applied since that checkpoint are lost and counted in
// Counters.EventsLost, the availability/at-most-once trade the hardened
// path makes. Without a restorable checkpoint the driver dies: admission
// stops with ErrClosed, reads keep serving the last published View, and
// /healthz turns 503.
func (s *Server) drive() {
	defer close(s.driverDone)
	for {
		e := s.engine()
		// The engine applies one queued change event per RC step; take new
		// admitted work only once its internal queue has drained, so event
		// order (joins before the edges that reference them) is preserved.
		if e.QueuedEvents() == 0 {
			evs, closing := s.take(e.Converged())
			if closing {
				s.finish(evs)
				return
			}
			s.ingest(evs)
		}
		if err := s.safeStep(e); err != nil {
			if rerr := s.restart(err); rerr != nil {
				s.die(rerr)
				return
			}
			continue
		}
		s.counters.EngineQueued.Store(int64(e.QueuedEvents()))
		s.maybeCheckpoint(e)
		if d := s.cfg.StepDelay; d > 0 {
			time.Sleep(d)
		}
	}
}

// engine returns the current engine (it is swapped by restart; driver
// goroutine and tests read it through here).
func (s *Server) engine() *core.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng
}

// safeStep takes one RC step with a panic guard, surfacing both panics and
// the engine's own unrecoverable errors as step failures.
func (s *Server) safeStep(e *core.Engine) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: engine panic: %v", r)
		}
	}()
	if s.failNextStep.CompareAndSwap(true, false) {
		return errInducedFailure
	}
	e.Step()
	return e.Err()
}

// errInducedFailure is the test hook's step failure (see failNextStep).
var errInducedFailure = fmt.Errorf("serve: induced step failure (test hook)")

// maybeCheckpoint writes a periodic checkpoint every CheckpointEvery
// successful steps (atomic temp-file + rename). Steps where the engine
// cannot checkpoint (queued events, crashed processors) are skipped and
// retried on the next one.
func (s *Server) maybeCheckpoint(e *core.Engine) {
	if s.cfg.CheckpointPath == "" || s.cfg.CheckpointEvery <= 0 {
		return
	}
	s.sinceCheckpoint++
	if s.sinceCheckpoint < s.cfg.CheckpointEvery || e.QueuedEvents() > 0 {
		return
	}
	if err := s.writeCheckpoint(s.cfg.CheckpointPath); err != nil {
		return // e.g. a processor is down; retry next step
	}
	s.sinceCheckpoint = 0
	s.counters.CheckpointsWritten.Add(1)
	if l := s.cfg.Log; l != nil {
		l.Info("checkpoint written", "path", s.cfg.CheckpointPath,
			"step", int(e.Metrics().RCSteps))
	}
}

// restart recovers from a failed step: the engine is rebuilt from the last
// checkpoint and the serving layer resynchronizes to it. Everything the
// dead engine had not durably checkpointed — its internal change queue and
// the whole admission queue (their vertex IDs were assigned against the
// lost state) — is dropped and counted in EventsLost.
func (s *Server) restart(cause error) error {
	path := s.cfg.CheckpointPath
	if path == "" {
		return fmt.Errorf("serve: engine failed with no checkpoint configured: %w", cause)
	}
	lost := int64(s.eng.QueuedEvents())
	ne, err := core.RestoreFile(path, s.eng.Options())
	if err != nil {
		return fmt.Errorf("serve: restoring checkpoint after engine failure (%v): %w", cause, err)
	}
	// Rebase the rendered engine counters so scrapes never observe a
	// backwards step. The delta is computed against the last *published*
	// metrics (what scrapers could have seen), not the dead engine's live
	// ones: rendered values stay constant through the swap and resume
	// climbing from there.
	s.metrics.rebase(s.store.load().Metrics, ne.Metrics())
	s.mu.Lock()
	lost += int64(len(s.pending))
	s.pending = nil
	n := ne.Graph().NumVertices()
	s.admitN = n
	s.nextID = int32(n)
	s.deleted = map[int32]bool{}
	for v := int32(0); int(v) < n; v++ {
		if !ne.Alive(v) {
			s.deleted[v] = true
		}
	}
	s.eng = ne
	s.cond.Broadcast() // space freed for blocked admitters
	s.mu.Unlock()
	s.counters.EventsLost.Add(lost)
	s.counters.PendingEvents.Store(0)
	s.counters.EngineQueued.Store(0)
	s.counters.EngineRestarts.Add(1)
	ne.SetStepHook(s.onStep)
	s.publish()
	if l := s.cfg.Log; l != nil {
		l.Warn("engine restarted from checkpoint", "cause", cause.Error(),
			"checkpoint", path, "events_lost", lost,
			"restored_step", int(ne.Metrics().RCSteps))
	}
	return nil
}

// die is the unrecoverable path: record the error, stop admission, and let
// reads keep serving the last published View.
func (s *Server) die(err error) {
	if l := s.cfg.Log; l != nil {
		l.Error("driver died; serving last published view read-only", "cause", err.Error())
	}
	s.mu.Lock()
	s.closed = true
	s.dead = true
	s.closeErr = err
	s.cond.Broadcast()
	s.mu.Unlock()
}

// take removes up to MaxEventsPerStep admitted events, blocking while the
// engine is converged and nothing is admitted (the idle state). When the
// server is closing it returns every remaining event and closing=true.
func (s *Server) take(converged bool) (evs []stream.Event, closing bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// converged cannot go stale while waiting: the driver is the only
	// goroutine that mutates the engine.
	for !s.closed && len(s.pending) == 0 && converged {
		s.cond.Wait()
	}
	n := len(s.pending)
	if s.closed {
		evs, s.pending = s.pending, nil
		closing = true
	} else {
		if n > s.cfg.MaxEventsPerStep {
			n = s.cfg.MaxEventsPerStep
		}
		evs = append([]stream.Event(nil), s.pending[:n]...)
		s.pending = s.pending[n:]
	}
	s.counters.PendingEvents.Store(int64(len(s.pending)))
	if len(evs) > 0 {
		s.cond.Broadcast() // space freed for blocked admitters
	}
	return evs, closing
}

// ingest hands one window of admitted events to the engine's change queue.
func (s *Server) ingest(evs []stream.Event) {
	if len(evs) == 0 {
		return
	}
	if err := stream.QueueWindow(s.eng, evs, &s.nextID); err != nil {
		// Admission validation makes this unreachable in practice; count
		// and keep serving rather than tearing the driver down.
		s.counters.EventsDropped.Add(int64(len(evs)))
		return
	}
	s.counters.EventsIngested.Add(int64(len(evs)))
}

// finish is the graceful-shutdown path: drain the last admitted events,
// step the engine until its change queue is empty, converge, force a final
// publish, and checkpoint.
func (s *Server) finish(evs []stream.Event) {
	e := s.eng
	s.ingest(evs)
	for e.QueuedEvents() > 0 {
		e.Step()
	}
	e.Run()
	s.counters.EngineQueued.Store(0)
	s.publish()
	if p := s.cfg.CheckpointPath; p != "" {
		if s.closeErr = s.writeCheckpoint(p); s.closeErr == nil {
			s.counters.CheckpointsWritten.Add(1)
		}
	}
}

// onStep is the engine step hook (runs on the driver goroutine, at the end
// of every RC step): publish every PublishEvery steps, and always on
// convergence so the exact state becomes visible immediately.
func (s *Server) onStep(st core.StepStats) {
	s.metrics.observeStep(st)
	s.sincePublish++
	if s.sincePublish >= s.cfg.PublishEvery || st.ConvergedAfter {
		s.publish()
	}
}

// publish captures an engine snapshot, builds the top-k index, and swaps
// the new immutable View in atomically. Driver goroutine only.
func (s *Server) publish() {
	snap := s.eng.Snapshot()
	g := s.eng.Graph()
	s.version++
	s.sincePublish = 0
	v := &View{
		Version:    s.version,
		Step:       snap.Step,
		Converged:  snap.Converged,
		Vertices:   g.NumVertices(),
		Edges:      g.NumEdges(),
		QueueDepth: int(s.counters.PendingEvents.Load()) + s.eng.QueuedEvents(),
		Published:  time.Now(),
		Snap:       snap,
		Metrics:    s.eng.Metrics(),
		topk:       snap.TopK(s.cfg.TopKIndex),
	}
	s.store.publish(v)
	s.counters.Publishes.Add(1)
}
