package serve

import (
	"sync/atomic"
	"time"

	"anytime/internal/core"
)

// View is one published, immutable, versioned snapshot of the
// computation: the engine's anytime closeness estimates plus serving
// metadata. Readers obtain the latest View from Server.View (an atomic
// pointer load) and may hold it as long as they like — the driver never
// mutates a published View, it only swaps in a successor.
type View struct {
	// Version increases by one per publication (first View is 1), so
	// readers can assert monotonic progress.
	Version uint64
	// Step is the engine RC-step count at capture time.
	Step int
	// Converged reports whether the snapshot is exact (no pending updates
	// and no queued changes at capture time).
	Converged bool
	// Vertices and Edges describe the engine graph at capture time.
	Vertices, Edges int
	// QueueDepth is the number of admitted-but-unapplied events at capture
	// time (admission queue plus the engine's internal change queue).
	QueueDepth int
	// Published is the wall-clock publication time.
	Published time.Time
	// Snap holds the per-vertex centrality estimates.
	Snap core.Snapshot
	// Metrics is the engine cost-counter snapshot at capture time.
	Metrics core.Metrics

	topk []int // precomputed top-Config.TopKIndex closeness index
}

// TopK returns the IDs of the k highest-closeness vertices in descending
// order. Within the precomputed index size this is a slice of the index
// (O(1)); larger k falls back to a heap selection over the immutable
// snapshot. The result must not be mutated.
func (v *View) TopK(k int) []int {
	if k <= 0 {
		return nil
	}
	if k <= len(v.topk) {
		return v.topk[:k:k]
	}
	return v.Snap.TopK(k)
}

// store is the single-writer multi-reader publication point: an atomic
// pointer swap, so readers never lock and never block the driver.
type store struct {
	p atomic.Pointer[View]
}

func (s *store) publish(v *View) { s.p.Store(v) }
func (s *store) load() *View     { return s.p.Load() }
