package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"anytime/internal/core"
	"anytime/internal/fault"
	"anytime/internal/stream"
)

func fastClient(base string) *Client {
	return &Client{
		BaseURL:   base,
		Timeout:   2 * time.Second,
		RetryBase: time.Millisecond,
		rng:       func() float64 { return 0 },
	}
}

// TestClientRetriesGetOn5xx: reads retry transport-level and 5xx failures
// with backoff until the server recovers.
func TestClientRetriesGetOn5xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(TopKResponse{K: 1, Results: []TopKEntry{{Vertex: 3}}})
	}))
	defer ts.Close()
	resp, err := fastClient(ts.URL).TopK(context.Background(), 1)
	if err != nil {
		t.Fatalf("TopK after flaky responses: %v", err)
	}
	if resp.Results[0].Vertex != 3 {
		t.Fatalf("unexpected payload: %+v", resp)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

// TestClientRetryBudgetExhausted: a persistently failing GET surfaces the
// last error after MaxRetries+1 attempts.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	c.MaxRetries = 2
	if _, err := c.Snapshot(context.Background()); err == nil {
		t.Fatal("expected error from persistently failing server")
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}
}

// TestClientPostRetriesOnlyOnBackpressure: POST /v1/events retries a 429
// (safe: the server rejected the batch) but never a 5xx (the server may
// have applied it).
func TestClientPostRetriesOnlyOnBackpressure(t *testing.T) {
	evs := []stream.Event{{Kind: stream.AddEdge, U: 0, V: 1, W: 1}}

	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, "full", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(EventsResponse{Admitted: 1})
	}))
	defer ts.Close()
	if _, err := fastClient(ts.URL).PostEvents(context.Background(), evs); err != nil {
		t.Fatalf("PostEvents after one 429: %v", err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}

	var hits5 atomic.Int64
	ts5 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits5.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts5.Close()
	if _, err := fastClient(ts5.URL).PostEvents(context.Background(), evs); err == nil {
		t.Fatal("expected error from 500 on POST")
	}
	if got := hits5.Load(); got != 1 {
		t.Fatalf("non-idempotent POST was retried: %d requests", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServerRestartsEngineFromCheckpoint: a failing RC step must not kill
// the serving layer — the driver restores the engine from the periodic
// checkpoint, counts the lost events, and keeps serving and admitting.
func TestServerRestartsEngineFromCheckpoint(t *testing.T) {
	base := testBase(t, 80, 3)
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	srv, err := New(testEngine(t, base, 4, 3), Config{
		CheckpointPath:  path,
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Drive some work through so a periodic checkpoint lands.
	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 1, V: 40, W: 1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "periodic checkpoint", func() bool { return srv.Counters().CheckpointsWritten.Load() >= 1 })

	srv.failNextStep.Store(true)
	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 2, V: 50, W: 2}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "engine restart", func() bool { return srv.Counters().EngineRestarts.Load() == 1 })

	if err := srv.DriverErr(); err != nil {
		t.Fatalf("driver reported dead after successful restart: %v", err)
	}
	if lost := srv.Counters().EventsLost.Load(); lost < 1 {
		t.Fatalf("restart lost %d events, want >= 1", lost)
	}

	// The restarted engine must keep serving and admitting.
	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 3, V: 60, W: 1}}); err != nil {
		t.Fatalf("admission after restart: %v", err)
	}
	waitFor(t, "post-restart convergence", func() bool {
		v := srv.View()
		return v.Converged && v.QueueDepth == 0
	})
	h := httptest.NewServer(srv.Handler())
	defer h.Close()
	status, err := fastClient(h.URL).Healthz(context.Background())
	if err != nil || status != "ok" {
		t.Fatalf("healthz after restart: status=%q err=%v", status, err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close after restart: %v", err)
	}
}

// TestServerDriverDeathWithoutCheckpoint: with no checkpoint to restart
// from, a failing step kills the driver — admission stops with ErrClosed,
// /healthz turns 503, and reads still serve the last published View.
func TestServerDriverDeathWithoutCheckpoint(t *testing.T) {
	base := testBase(t, 60, 5)
	srv, err := New(testEngine(t, base, 4, 5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.failNextStep.Store(true)
	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 0, V: 30, W: 1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "driver death", func() bool { return srv.DriverErr() != nil })

	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 1, V: 31, W: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("admission after driver death: %v, want ErrClosed", err)
	}
	if v := srv.View(); v == nil {
		t.Fatal("reads must keep serving the last View after driver death")
	}

	h := httptest.NewServer(srv.Handler())
	defer h.Close()
	resp, err := http.Get(h.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status = %d, want 503", resp.StatusCode)
	}
	var body struct{ Status, Error string }
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "dead" || !strings.Contains(body.Error, "induced") {
		t.Fatalf("healthz body = %+v", body)
	}
	if err := srv.Close(); err == nil {
		t.Fatal("Close after driver death must surface the cause")
	}
}

// TestHealthzReportsDegraded: while a crashed processor serves shard-
// restored values, /healthz and /v1/snapshot must say so.
func TestHealthzReportsDegraded(t *testing.T) {
	base := testBase(t, 60, 9)
	opts := core.NewOptions()
	opts.P = 4
	opts.Seed = 9
	opts.Faults = &fault.Plan{Seed: 1, Crashes: []fault.Crash{{Proc: 1, Step: 0, DownFor: 50}}}
	e, err := core.New(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.Step() // crash fires at the step-0 boundary
	if !e.Degraded() {
		t.Fatal("engine not degraded after scheduled crash")
	}
	// newServer publishes the initial (degraded) View without a driver.
	srv, err := newServer(e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := httptest.NewServer(srv.Handler())
	defer h.Close()
	status, err := fastClient(h.URL).Healthz(context.Background())
	if err != nil || status != "degraded" {
		t.Fatalf("healthz = %q, %v; want \"degraded\"", status, err)
	}
	meta, err := fastClient(h.URL).Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Degraded || len(meta.DownProcs) != 1 || meta.DownProcs[0] != 1 {
		t.Fatalf("snapshot meta degraded=%v down=%v", meta.Degraded, meta.DownProcs)
	}
}
