package serve

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"anytime/internal/core"
	"anytime/internal/obs"
)

// This file builds the server's Prometheus registry: the serving counters,
// engine cost totals (kept monotone across driver restarts by rebasing),
// per-processor load gauges, the live load-imbalance gauge (the paper's
// Fig. 5 metric, per RC step), and per-route HTTP latency histograms.

// engineTotals is the subset of core.Metrics exported as Prometheus
// counters. Engine metrics reset when the driver restarts from a
// checkpoint, so the registry renders base + view totals, where base
// accumulates what each dead engine had counted beyond its replacement.
type engineTotals struct {
	rcSteps       float64
	virtualSec    float64
	ddOps         float64
	iaOps         float64
	rcOps         float64
	changeOps     float64
	commMessages  float64
	commBytes     float64
	commResends   float64
	commDropped   float64
	commFailed    float64
	crashes       float64
	recoveries    float64
	shardsWritten float64
	shardBytes    float64
}

func totalsOf(m core.Metrics) engineTotals {
	return engineTotals{
		rcSteps:       float64(m.RCSteps),
		virtualSec:    m.VirtualTime.Seconds(),
		ddOps:         float64(m.DDOps),
		iaOps:         float64(m.IAOps),
		rcOps:         float64(m.RCOps),
		changeOps:     float64(m.ChangeOps),
		commMessages:  float64(m.Comm.Messages),
		commBytes:     float64(m.Comm.Bytes),
		commResends:   float64(m.Comm.Resends),
		commDropped:   float64(m.Comm.Dropped),
		commFailed:    float64(m.Comm.Failed),
		crashes:       float64(m.Crashes),
		recoveries:    float64(m.Recoveries),
		shardsWritten: float64(m.ShardsWritten),
		shardBytes:    float64(m.ShardBytes),
	}
}

func (t engineTotals) sub(o engineTotals) engineTotals {
	return engineTotals{
		rcSteps:       t.rcSteps - o.rcSteps,
		virtualSec:    t.virtualSec - o.virtualSec,
		ddOps:         t.ddOps - o.ddOps,
		iaOps:         t.iaOps - o.iaOps,
		rcOps:         t.rcOps - o.rcOps,
		changeOps:     t.changeOps - o.changeOps,
		commMessages:  t.commMessages - o.commMessages,
		commBytes:     t.commBytes - o.commBytes,
		commResends:   t.commResends - o.commResends,
		commDropped:   t.commDropped - o.commDropped,
		commFailed:    t.commFailed - o.commFailed,
		crashes:       t.crashes - o.crashes,
		recoveries:    t.recoveries - o.recoveries,
		shardsWritten: t.shardsWritten - o.shardsWritten,
		shardBytes:    t.shardBytes - o.shardBytes,
	}
}

func (t engineTotals) add(o engineTotals) engineTotals {
	return engineTotals{
		rcSteps:       t.rcSteps + o.rcSteps,
		virtualSec:    t.virtualSec + o.virtualSec,
		ddOps:         t.ddOps + o.ddOps,
		iaOps:         t.iaOps + o.iaOps,
		rcOps:         t.rcOps + o.rcOps,
		changeOps:     t.changeOps + o.changeOps,
		commMessages:  t.commMessages + o.commMessages,
		commBytes:     t.commBytes + o.commBytes,
		commResends:   t.commResends + o.commResends,
		commDropped:   t.commDropped + o.commDropped,
		commFailed:    t.commFailed + o.commFailed,
		crashes:       t.crashes + o.crashes,
		recoveries:    t.recoveries + o.recoveries,
		shardsWritten: t.shardsWritten + o.shardsWritten,
		shardBytes:    t.shardBytes + o.shardBytes,
	}
}

// serverMetrics owns the registry and the gauges the driver updates.
type serverMetrics struct {
	reg *obs.Registry

	// base rebases engine totals across restarts: rendered counter = base +
	// latest published View's totals. Written by restart() on the driver
	// goroutine, read by scrapes.
	mu   sync.Mutex
	base engineTotals

	// Step-quality gauges, updated by onStep from StepStats.
	imbalance       *obs.Gauge
	stepRows        *obs.Gauge
	stepDirty       *obs.Gauge
	stepConverged   *obs.Gauge
	stepDirtyFrac   *obs.Gauge
	stepBoundGap    *obs.Gauge
	stepWidth       *obs.Gauge
	frontierDensity *obs.Gauge
	maskedOps       *obs.Gauge

	// Per-processor gauges, indexed by processor.
	procRows     []*obs.Gauge
	procDirty    []*obs.Gauge
	procBoundary []*obs.Gauge
	procOps      []*obs.Gauge
	procBusy     []*obs.Gauge

	httpLatency map[string]*obs.Histogram
}

// newServerMetrics wires the registry for a server with P processors.
func newServerMetrics(s *Server, p int) *serverMetrics {
	m := &serverMetrics{reg: obs.NewRegistry(), httpLatency: map[string]*obs.Histogram{}}
	reg := m.reg
	c := &s.counters

	reg.RegisterCounter(&c.QueriesServed, "aa_queries_served_total",
		"Read queries answered (closeness, top-k, snapshot metadata).", "")
	reg.RegisterCounter(&c.EventsAdmitted, "aa_events_admitted_total",
		"Dynamic events accepted into the admission queue.", "")
	reg.RegisterCounter(&c.EventsRejectedBackpressure, "aa_events_rejected_total",
		"Dynamic events refused from the admission queue, by cause.",
		obs.Labels("reason", "backpressure"))
	reg.RegisterCounter(&c.EventsRejectedInvalid, "aa_events_rejected_total",
		"Dynamic events refused from the admission queue, by cause.",
		obs.Labels("reason", "invalid"))
	reg.RegisterCounter(&c.EventsIngested, "aa_events_ingested_total",
		"Admitted events handed to the engine's change queue.", "")
	reg.RegisterCounter(&c.EventsDropped, "aa_events_dropped_total",
		"Admitted events the engine refused (normally zero).", "")
	reg.RegisterCounter(&c.EventsLost, "aa_events_lost_total",
		"Events dropped by engine restarts (applied or admitted after the restored checkpoint).", "")
	reg.RegisterCounter(&c.Publishes, "aa_publishes_total",
		"View publications (equals the latest snapshot version).", "")
	reg.RegisterCounter(&c.EngineRestarts, "aa_engine_restarts_total",
		"Driver recoveries from a failed RC step via checkpoint restore.", "")
	reg.RegisterCounter(&c.CheckpointsWritten, "aa_checkpoints_written_total",
		"Periodic and shutdown checkpoints written.", "")

	reg.GaugeFunc("aa_pending_events",
		"Events in the admission queue.", "",
		func() float64 { return float64(c.PendingEvents.Load()) })
	reg.GaugeFunc("aa_engine_queued_events",
		"Events in the engine's internal change queue.", "",
		func() float64 { return float64(c.EngineQueued.Load()) })
	reg.GaugeFunc("aa_queue_depth",
		"Total ingestion backlog: admission queue plus engine change queue.", "",
		func() float64 { return float64(c.QueueDepth()) })

	view := func() *View { return s.store.load() }
	reg.GaugeFunc("aa_snapshot_version", "Version of the latest published View.", "",
		func() float64 {
			if v := view(); v != nil {
				return float64(v.Version)
			}
			return 0
		})
	reg.GaugeFunc("aa_snapshot_converged", "1 when the latest View is exact, else 0.", "",
		func() float64 {
			if v := view(); v != nil && v.Converged {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("aa_graph_vertices", "Vertices in the latest published View.", "",
		func() float64 {
			if v := view(); v != nil {
				return float64(v.Vertices)
			}
			return 0
		})
	reg.GaugeFunc("aa_graph_edges", "Edges in the latest published View.", "",
		func() float64 {
			if v := view(); v != nil {
				return float64(v.Edges)
			}
			return 0
		})

	// Engine totals, rebased so restarts never step a counter backwards.
	totals := func() engineTotals {
		m.mu.Lock()
		base := m.base
		m.mu.Unlock()
		if v := view(); v != nil {
			return base.add(totalsOf(v.Metrics))
		}
		return base
	}
	engCounter := func(name, help, labels string, pick func(engineTotals) float64) {
		reg.CounterFunc(name, help, labels, func() float64 { return pick(totals()) })
	}
	engCounter("aa_engine_rc_steps_total",
		"Recombination steps performed across engine generations.", "",
		func(t engineTotals) float64 { return t.rcSteps })
	engCounter("aa_engine_virtual_seconds_total",
		"Simulated LogP cluster time elapsed, in seconds.", "",
		func(t engineTotals) float64 { return t.virtualSec })
	opsHelp := "Relaxation/heap operations, by engine phase."
	engCounter("aa_engine_ops_total", opsHelp, obs.Labels("phase", "dd"),
		func(t engineTotals) float64 { return t.ddOps })
	engCounter("aa_engine_ops_total", opsHelp, obs.Labels("phase", "ia"),
		func(t engineTotals) float64 { return t.iaOps })
	engCounter("aa_engine_ops_total", opsHelp, obs.Labels("phase", "rc"),
		func(t engineTotals) float64 { return t.rcOps })
	engCounter("aa_engine_ops_total", opsHelp, obs.Labels("phase", "change"),
		func(t engineTotals) float64 { return t.changeOps })
	engCounter("aa_comm_messages_total",
		"Logical messages exchanged on the simulated cluster.", "",
		func(t engineTotals) float64 { return t.commMessages })
	engCounter("aa_comm_bytes_total",
		"Payload bytes exchanged on the simulated cluster.", "",
		func(t engineTotals) float64 { return t.commBytes })
	engCounter("aa_comm_resends_total",
		"Retransmissions after injected drops/corruption.", "",
		func(t engineTotals) float64 { return t.commResends })
	engCounter("aa_comm_dropped_total",
		"Delivery attempts lost in the injected-fault network.", "",
		func(t engineTotals) float64 { return t.commDropped })
	engCounter("aa_comm_failed_total",
		"Messages abandoned after the resend budget.", "",
		func(t engineTotals) float64 { return t.commFailed })
	engCounter("aa_engine_crashes_total",
		"Scheduled processor crashes applied.", "",
		func(t engineTotals) float64 { return t.crashes })
	engCounter("aa_engine_recoveries_total",
		"Processor rejoin protocols completed.", "",
		func(t engineTotals) float64 { return t.recoveries })
	engCounter("aa_engine_shards_written_total",
		"Recovery shards serialized.", "",
		func(t engineTotals) float64 { return t.shardsWritten })
	engCounter("aa_engine_shard_bytes_total",
		"Total bytes of recovery shards written.", "",
		func(t engineTotals) float64 { return t.shardBytes })

	// Convergence-quality telemetry of the most recent RC step.
	m.imbalance = reg.Gauge("aa_step_imbalance",
		"Per-processor busy-time imbalance (max/mean) of the last RC step; 1.0 is perfectly balanced.", "")
	m.imbalance.Set(1)
	m.stepRows = reg.Gauge("aa_step_rows",
		"DV rows across all processors after the last RC step.", "")
	m.stepDirty = reg.Gauge("aa_step_dirty_rows",
		"Rows still carrying un-propagated content after the last RC step.", "")
	m.stepConverged = reg.Gauge("aa_step_converged_rows",
		"Rows with no un-propagated content after the last RC step.", "")
	m.stepDirtyFrac = reg.Gauge("aa_step_dirty_fraction",
		"DirtyRows/TotalRows after the last RC step — the row-granular convergence gap of the anytime solution.", "")
	m.stepBoundGap = reg.Gauge("aa_step_bound_gap",
		"Fraction of all DV cells still inside a change frontier after the last RC step — 0 at an exact fixpoint.", "")
	m.stepWidth = reg.Gauge("aa_step_max_delta_width",
		"Widest boundary delta shipped in the last RC step, in columns.", "")
	m.frontierDensity = reg.Gauge("aa_frontier_density",
		"Set change-frontier bits / total DV cells after the last RC step — the fraction the masked min-plus kernels' ~25% density cutover is judged against.", "")
	m.maskedOps = reg.Gauge("aa_step_masked_ops",
		"Relax/refine operations performed through frontier-masked sweeps in the last RC step.", "")

	m.procRows = make([]*obs.Gauge, p)
	m.procDirty = make([]*obs.Gauge, p)
	m.procBoundary = make([]*obs.Gauge, p)
	m.procOps = make([]*obs.Gauge, p)
	m.procBusy = make([]*obs.Gauge, p)
	for i := 0; i < p; i++ {
		l := obs.Labels("proc", strconv.Itoa(i))
		m.procRows[i] = reg.Gauge("aa_proc_rows", "DV rows owned by the processor.", l)
		m.procDirty[i] = reg.Gauge("aa_proc_dirty_rows", "Dirty rows on the processor after the last RC step.", l)
		m.procBoundary[i] = reg.Gauge("aa_proc_boundary_rows", "Local-boundary vertices on the processor.", l)
		m.procOps[i] = reg.Gauge("aa_proc_relax_ops", "Relax/refine operations by the processor in the last RC step.", l)
		m.procBusy[i] = reg.Gauge("aa_proc_busy_seconds", "Virtual busy time accrued by the processor in the last RC step.", l)
	}
	return m
}

// observeStep publishes one step's convergence telemetry (driver goroutine).
func (m *serverMetrics) observeStep(st core.StepStats) {
	m.imbalance.Set(st.Imbalance)
	m.stepRows.SetInt(int64(st.TotalRows))
	m.stepDirty.SetInt(int64(st.DirtyRows))
	m.stepConverged.SetInt(int64(st.TotalRows - st.DirtyRows))
	if st.TotalRows > 0 {
		m.stepDirtyFrac.Set(float64(st.DirtyRows) / float64(st.TotalRows))
	} else {
		m.stepDirtyFrac.Set(0)
	}
	m.stepBoundGap.Set(st.FrontierDensity)
	m.stepWidth.SetInt(int64(st.MaxDeltaWidth))
	m.frontierDensity.Set(st.FrontierDensity)
	m.maskedOps.SetInt(st.MaskedOps)
	for i := range m.procRows {
		if i >= len(st.ProcRows) {
			break
		}
		m.procRows[i].SetInt(int64(st.ProcRows[i]))
		m.procDirty[i].SetInt(int64(st.ProcDirty[i]))
		m.procBoundary[i].SetInt(int64(st.ProcBoundary[i]))
		m.procOps[i].SetInt(st.ProcRelaxOps[i])
		m.procBusy[i].Set(st.ProcBusy[i].Seconds())
	}
}

// rebase folds a dead engine's totals beyond its replacement's into the
// base, so the rendered engine counters stay monotone across a restart.
func (m *serverMetrics) rebase(dead, restored core.Metrics) {
	d := totalsOf(dead).sub(totalsOf(restored))
	m.mu.Lock()
	m.base = m.base.add(d)
	m.mu.Unlock()
}

// latency returns the request-latency histogram for a route, creating it on
// first use (Handler construction time, single-goroutine).
func (m *serverMetrics) latency(route string) *obs.Histogram {
	h, ok := m.httpLatency[route]
	if !ok {
		h = m.reg.Histogram("aa_http_request_seconds",
			"HTTP request latency by route.",
			obs.Labels("route", route), obs.DefaultLatencyBounds)
		m.httpLatency[route] = h
	}
	return h
}

// instrument wraps a handler with its route's latency histogram.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.latency(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
	}
}

// Registry exposes the server's metrics registry (for embedding the
// exposition into a larger process or scraping it in tests).
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }
