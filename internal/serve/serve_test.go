package serve

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anytime/internal/centrality"
	"anytime/internal/core"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/stream"
)

func testBase(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, 2, gen.Weights{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	gen.Connectify(g, seed)
	return g
}

func testEngine(t testing.TB, g *graph.Graph, p int, seed int64) *core.Engine {
	t.Helper()
	opts := core.NewOptions()
	opts.P = p
	opts.Seed = seed
	opts.Strategy = core.AutoPS
	e, err := core.New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestConcurrentReadersDuringLiveIngestion is the serving subsystem's
// core contract, run under -race: 10 reader goroutines hammer the
// published View (top-k and point closeness) while the driver ingests a
// generated growth-with-churn stream; snapshot versions must be monotonic
// per reader, every view internally consistent, and the final converged
// closeness must match a from-scratch sequential oracle on the grown
// graph.
func TestConcurrentReadersDuringLiveIngestion(t *testing.T) {
	const seed = 7
	base := testBase(t, 220, seed)
	st, err := stream.Generate(base, stream.GenConfig{Ticks: 60, JoinsPerTick: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	oracleGraph, err := stream.GrownGraph(base, st)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(testEngine(t, base, 4, seed), Config{
		PublishEvery:  1,
		QueueCapacity: 128,
		TopKIndex:     16,
		AdmitWait:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const readers = 10
	var (
		done    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for i := 0; !done.Load(); i++ {
				v := srv.View()
				if v.Version < lastVersion {
					t.Errorf("snapshot version went backwards: %d after %d", v.Version, lastVersion)
					return
				}
				lastVersion = v.Version
				k := 5
				if i%7 == 0 {
					k = len(v.topk) + 10 // past the precomputed index
				}
				top := v.TopK(k)
				for j := 1; j < len(top); j++ {
					a, b := v.Snap.Closeness[top[j-1]], v.Snap.Closeness[top[j]]
					if a < b {
						t.Errorf("top-k not descending at rank %d: %g < %g", j, a, b)
						return
					}
				}
				if len(top) > 0 {
					best := top[0]
					if v.Snap.Closeness[best] < 0 || best >= v.Vertices {
						t.Errorf("top vertex %d invalid for view of %d vertices", best, v.Vertices)
						return
					}
				}
				queries.Add(1)
			}
		}()
	}

	for _, window := range st.Window(5) {
		for {
			err := srv.Admit(window)
			if errors.Is(err, ErrBackpressure) {
				time.Sleep(time.Millisecond)
				continue
			}
			if err != nil {
				t.Fatalf("admit: %v", err)
			}
			break
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	done.Store(true)
	wg.Wait()

	final := srv.View()
	if !final.Converged {
		t.Fatal("final view not converged after Close")
	}
	if final.Vertices != st.FinalN() {
		t.Fatalf("final view has %d vertices, stream grows to %d", final.Vertices, st.FinalN())
	}
	if final.Version < 2 {
		t.Fatalf("only %d publications during ingestion", final.Version)
	}
	if q := queries.Load(); q < int64(readers) {
		t.Fatalf("readers only completed %d queries", q)
	}

	want := centrality.Closeness(oracleGraph)
	for v := range want {
		if math.Abs(final.Snap.Closeness[v]-want[v]) > 1e-12 {
			t.Fatalf("vertex %d: closeness %g, oracle %g", v, final.Snap.Closeness[v], want[v])
		}
	}
}

// TestBackpressure slows the driver to a crawl and floods it: Admit must
// fail fast with ErrBackpressure instead of queueing unboundedly, and
// everything admitted must still be applied by Close.
func TestBackpressure(t *testing.T) {
	base := testBase(t, 50, 3)
	n0 := base.NumVertices()
	srv, err := New(testEngine(t, base, 2, 3), Config{
		QueueCapacity:    8,
		AdmitWait:        time.Millisecond,
		MaxEventsPerStep: 1,
		StepDelay:        20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	admitted, rejected := 0, 0
	next := int32(n0)
	for i := 0; i < 100; i++ {
		ev := stream.Event{Kind: stream.AddVertex, U: next}
		switch err := srv.Admit([]stream.Event{ev}); {
		case err == nil:
			admitted++
			next++
		case errors.Is(err, ErrBackpressure):
			rejected++
		default:
			t.Fatalf("admit: %v", err)
		}
	}
	if rejected == 0 {
		t.Fatal("no backpressure from a flooded queue with a throttled driver")
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	final := srv.View()
	if final.Vertices != n0+admitted {
		t.Fatalf("final graph has %d vertices, want %d base + %d admitted", final.Vertices, n0, admitted)
	}
	c := srv.Counters()
	if got := c.EventsAdmitted.Load(); got != int64(admitted) {
		t.Fatalf("EventsAdmitted = %d, want %d", got, admitted)
	}
	if got := c.EventsRejectedBackpressure.Load(); got != int64(rejected) {
		t.Fatalf("EventsRejectedBackpressure = %d, want %d", got, rejected)
	}
	if got := c.EventsRejectedInvalid.Load(); got != 0 {
		t.Fatalf("EventsRejectedInvalid = %d, want 0 (all rejections were backpressure)", got)
	}
	if got := c.EventsRejected(); got != int64(rejected) {
		t.Fatalf("EventsRejected() = %d, want %d", got, rejected)
	}
	if got := c.EventsIngested.Load(); got != int64(admitted) {
		t.Fatalf("EventsIngested = %d, want %d", got, admitted)
	}
}

// TestAdmitValidation: invalid batches are rejected atomically and leave
// the admitted shape untouched; Admit after Close fails with ErrClosed.
func TestAdmitValidation(t *testing.T) {
	base := testBase(t, 40, 5)
	n := int32(base.NumVertices())
	srv, err := New(testEngine(t, base, 2, 5), Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]stream.Event{
		{{Kind: stream.AddVertex, U: n + 5}},                                                     // non-dense ID
		{{Kind: stream.AddEdge, U: 1, V: 1, W: 1}},                                               // self-loop
		{{Kind: stream.AddEdge, U: 0, V: 10 * n, W: 1}},                                          // out of range
		{{Kind: stream.AddEdge, U: 0, V: 1, W: 0}},                                               // non-positive weight
		{{Kind: stream.DelVertex, U: -1}},                                                        // negative
		{{Kind: stream.Kind(99), U: 0}},                                                          // unknown kind
		{{Kind: stream.AddVertex, U: n}, {Kind: stream.AddEdge, U: int32(n), V: int32(n), W: 1}}, // valid then invalid: must reject both
	}
	for i, evs := range bad {
		if err := srv.Admit(evs); err == nil {
			t.Fatalf("bad batch %d admitted", i)
		}
	}
	// The rejected batches must not have advanced the expected next ID.
	if err := srv.Admit([]stream.Event{{Kind: stream.AddVertex, U: n}}); err != nil {
		t.Fatalf("valid join after rejected batches: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Admit([]stream.Event{{Kind: stream.AddVertex, U: n + 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Admit after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCheckpointOnClose: graceful shutdown writes a checkpoint that
// restores into an engine with the grown graph and the exact converged
// distances.
func TestCheckpointOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	base := testBase(t, 80, 9)
	st, err := stream.Generate(base, stream.GenConfig{Ticks: 30, JoinsPerTick: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(testEngine(t, base, 2, 9), Config{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range st.Window(5) {
		if err := srv.Admit(window); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	defer f.Close()
	opts := core.NewOptions()
	opts.P = 2
	opts.Seed = 9
	restored, err := core.Restore(f, opts)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !restored.Converged() {
		t.Fatal("restored engine not converged")
	}
	final := srv.View()
	got := restored.Snapshot()
	if got.Step != final.Step {
		t.Fatalf("restored at step %d, server closed at %d", got.Step, final.Step)
	}
	for v := range final.Snap.Closeness {
		if got.Closeness[v] != final.Snap.Closeness[v] {
			t.Fatalf("vertex %d: restored closeness %g != served %g", v, got.Closeness[v], final.Snap.Closeness[v])
		}
	}
}

// TestPublishEvery: with K > 1 the driver publishes fewer views than RC
// steps, but convergence still forces a final exact publish.
func TestPublishEvery(t *testing.T) {
	base := testBase(t, 60, 4)
	srv, err := New(testEngine(t, base, 2, 4), Config{PublishEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	var evs []stream.Event
	next := int32(base.NumVertices())
	for i := 0; i < 12; i++ {
		evs = append(evs,
			stream.Event{Kind: stream.AddVertex, U: next},
			stream.Event{Kind: stream.AddEdge, U: next, V: int32(i), W: 1})
		next++
	}
	if err := srv.Admit(evs); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	final := srv.View()
	if !final.Converged {
		t.Fatal("final view not converged")
	}
	steps := final.Metrics.RCSteps
	if int(final.Version) > steps/2+2 {
		t.Fatalf("PublishEvery=4 published %d views over %d steps", final.Version, steps)
	}
	if final.Vertices != int(next) {
		t.Fatalf("final view has %d vertices, want %d", final.Vertices, next)
	}
}
