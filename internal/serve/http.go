package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"anytime/internal/graph"
	"anytime/internal/stream"
)

// The HTTP/JSON API (stdlib only):
//
//	GET  /healthz                 liveness probe
//	GET  /metrics                 Prometheus text exposition
//	GET  /v1/snapshot             latest View metadata (no scores)
//	GET  /v1/topk?k=K             top-K closeness vertices
//	GET  /v1/closeness/{vertex}   one vertex's centrality estimates
//	POST /v1/events               admit dynamic events (EventsRequest)
//
// Reads are served from the latest published View and never block the
// driver. POST /v1/events returns 202 on admission, 429 under
// backpressure (with Retry-After), 400 on invalid events, and 503 once
// the server is closing.

// EventJSON is the wire form of one dynamic event: kind is the stream
// text-format name (addv, adde, setw, dele, delv); u, v, w are used as the
// kind requires.
type EventJSON struct {
	Kind string       `json:"kind"`
	U    int32        `json:"u"`
	V    int32        `json:"v,omitempty"`
	W    graph.Weight `json:"w,omitempty"`
}

// EventsRequest is the POST /v1/events body.
type EventsRequest struct {
	Events []EventJSON `json:"events"`
}

// EventsResponse acknowledges an admitted batch.
type EventsResponse struct {
	Admitted   int   `json:"admitted"`
	QueueDepth int64 `json:"queue_depth"`
}

// SnapshotMeta is the GET /v1/snapshot response: View metadata without the
// per-vertex score vectors.
type SnapshotMeta struct {
	Version       uint64 `json:"version"`
	Step          int    `json:"step"`
	Converged     bool   `json:"converged"`
	Vertices      int    `json:"vertices"`
	Edges         int    `json:"edges"`
	QueueDepth    int    `json:"queue_depth"`
	RCSteps       int    `json:"rc_steps"`
	VirtualTimeNS int64  `json:"virtual_time_ns"`
	PublishedUnix int64  `json:"published_unix_ns"`
	// Degraded mirrors the engine snapshot's degraded flag: a processor
	// crash restored older shard state and reconvergence is pending, so
	// the anytime monotonicity guarantee is suspended.
	Degraded bool `json:"degraded,omitempty"`
	// DownProcs lists crashed processors at capture time.
	DownProcs []int `json:"down_procs,omitempty"`
}

// TopKEntry is one ranked vertex of a TopKResponse.
type TopKEntry struct {
	Vertex    int     `json:"vertex"`
	Closeness float64 `json:"closeness"`
}

// TopKResponse is the GET /v1/topk response.
type TopKResponse struct {
	Version   uint64      `json:"version"`
	Step      int         `json:"step"`
	Converged bool        `json:"converged"`
	K         int         `json:"k"`
	Results   []TopKEntry `json:"results"`
}

// ClosenessResponse is the GET /v1/closeness/{vertex} response.
type ClosenessResponse struct {
	Vertex       int     `json:"vertex"`
	Closeness    float64 `json:"closeness"`
	Harmonic     float64 `json:"harmonic"`
	Reachable    int     `json:"reachable"`
	Eccentricity int32   `json:"eccentricity"` // -1 when unknown/unreachable
	Version      uint64  `json:"version"`
	Step         int     `json:"step"`
	Converged    bool    `json:"converged"`
}

// ToWire converts stream events to their JSON wire form.
func ToWire(evs []stream.Event) []EventJSON {
	out := make([]EventJSON, len(evs))
	for i, ev := range evs {
		out[i] = EventJSON{Kind: ev.Kind.String(), U: ev.U, V: ev.V, W: ev.W}
	}
	return out
}

// FromWire converts JSON wire events back to stream events.
func FromWire(evs []EventJSON) ([]stream.Event, error) {
	out := make([]stream.Event, len(evs))
	for i, ev := range evs {
		k, err := stream.ParseKind(ev.Kind)
		if err != nil {
			return nil, fmt.Errorf("serve: event %d: %w", i, err)
		}
		out[i] = stream.Event{Kind: k, U: ev.U, V: ev.V, W: ev.W}
	}
	return out, nil
}

// Handler returns the HTTP API over this server. Mount it on any
// http.Server; shut that server down before calling Close so in-flight
// requests drain against a live store.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/snapshot", s.instrument("snapshot", s.handleSnapshot))
	mux.HandleFunc("GET /v1/topk", s.instrument("topk", s.handleTopK))
	mux.HandleFunc("GET /v1/closeness/{vertex}", s.instrument("closeness", s.handleCloseness))
	mux.HandleFunc("POST /v1/events", s.instrument("events", s.handleEvents))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// handleHealthz is the hardened health probe: 503 with status "dead" when
// the background driver died unrecoverably (reads still serve the last
// View), 200 with status "degraded" while the engine serves values
// restored from recovery shards (a crashed processor has not reconverged),
// and 200 "ok" otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if err := s.DriverErr(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "dead", "error": err.Error()})
		return
	}
	status := "ok"
	if s.View().Snap.Degraded {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

// meta converts a View into its wire metadata.
func meta(v *View) SnapshotMeta {
	return SnapshotMeta{
		Version:       v.Version,
		Step:          v.Step,
		Converged:     v.Converged,
		Vertices:      v.Vertices,
		Edges:         v.Edges,
		QueueDepth:    v.QueueDepth,
		RCSteps:       v.Metrics.RCSteps,
		VirtualTimeNS: int64(v.Metrics.VirtualTime),
		PublishedUnix: v.Published.UnixNano(),
		Degraded:      v.Snap.Degraded,
		DownProcs:     v.Snap.DownProcs,
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	s.counters.QueriesServed.Add(1)
	writeJSON(w, http.StatusOK, meta(s.View()))
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		var err error
		if k, err = strconv.Atoi(q); err != nil || k <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid k %q", q))
			return
		}
	}
	s.counters.QueriesServed.Add(1)
	v := s.View()
	top := v.TopK(k)
	resp := TopKResponse{
		Version:   v.Version,
		Step:      v.Step,
		Converged: v.Converged,
		K:         len(top),
		Results:   make([]TopKEntry, len(top)),
	}
	for i, vertex := range top {
		resp.Results[i] = TopKEntry{Vertex: vertex, Closeness: v.Snap.Closeness[vertex]}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCloseness(w http.ResponseWriter, r *http.Request) {
	vertex, err := strconv.Atoi(r.PathValue("vertex"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid vertex %q", r.PathValue("vertex")))
		return
	}
	v := s.View()
	if vertex < 0 || vertex >= len(v.Snap.Closeness) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("vertex %d outside graph of %d", vertex, len(v.Snap.Closeness)))
		return
	}
	s.counters.QueriesServed.Add(1)
	ecc := int32(-1)
	if e := v.Snap.Eccentricity[vertex]; e != graph.InfDist {
		ecc = e
	}
	writeJSON(w, http.StatusOK, ClosenessResponse{
		Vertex:       vertex,
		Closeness:    v.Snap.Closeness[vertex],
		Harmonic:     v.Snap.Harmonic[vertex],
		Reachable:    v.Snap.Reachable[vertex],
		Eccentricity: ecc,
		Version:      v.Version,
		Step:         v.Step,
		Converged:    v.Converged,
	})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 16<<20)
	var req EventsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding events: %v", err))
		return
	}
	evs, err := FromWire(req.Events)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	switch err := s.Admit(evs); {
	case errors.Is(err, ErrBackpressure):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, EventsResponse{
			Admitted:   len(evs),
			QueueDepth: s.counters.QueueDepth(),
		})
	}
}

// handleMetrics serves the Prometheus text exposition: serving counters,
// engine cost totals (monotone across restarts), per-processor load gauges
// including the step load-imbalance gauge, and per-route latency
// histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WriteTo(w)
}
