// Package serve is the live query-serving layer over the anytime-anywhere
// engine: it owns an Engine on a background driver goroutine and exposes
// the computation to concurrent readers while the graph keeps changing.
//
// The driver loop interleaves recombination steps with draining a bounded
// admission queue of dynamic events (vertex joins with their edges, edge
// additions/deletions, weight changes, vertex departures). After every RC
// step — or every Config.PublishEvery steps — it publishes an immutable
// versioned View via an atomic pointer swap: readers never take a lock and
// never block the driver, and every View carries a precomputed top-k
// closeness index plus metadata (version, RC step, converged flag, queue
// depth, engine metrics).
//
// This is exactly what the paper's anytime property buys: every RC step
// yields a usable, monotonically improving solution, so queries can be
// answered from the latest converged-enough snapshot while ingestion
// continues. Handler exposes the HTTP/JSON API; Admit and View are the
// in-process equivalents.
package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"anytime/internal/core"
	"anytime/internal/stream"
)

// ErrBackpressure is returned by Admit when the admission queue stayed
// full for Config.AdmitWait: ingestion is outrunning recombination and the
// producer must slow down (HTTP clients see 429).
var ErrBackpressure = errors.New("serve: admission queue full")

// ErrClosed is returned by Admit after Close has begun (HTTP clients see
// 503).
var ErrClosed = errors.New("serve: server closed")

// Config tunes the serving subsystem.
type Config struct {
	// PublishEvery publishes a new View every K RC steps (default 1:
	// publish after every step). Convergence always forces a publish so
	// the final exact state is visible regardless of K.
	PublishEvery int
	// QueueCapacity bounds the admission queue, in events (default 4096).
	// When full, Admit blocks up to AdmitWait and then fails with
	// ErrBackpressure. A batch larger than the whole capacity is admitted
	// only when the queue is empty, so oversized batches degrade to
	// one-at-a-time instead of deadlocking.
	QueueCapacity int
	// AdmitWait is how long Admit blocks for space before giving up with
	// ErrBackpressure (default 1s).
	AdmitWait time.Duration
	// MaxEventsPerStep bounds how many admitted events the driver hands to
	// the engine between two RC steps (default 256), so a flood of events
	// cannot starve queries of fresh snapshots.
	MaxEventsPerStep int
	// TopKIndex is the size of the top-k closeness index precomputed at
	// publish time (default 64). Queries with k within the index are O(k);
	// larger k falls back to a heap selection over the immutable snapshot.
	TopKIndex int
	// CheckpointPath, when set, makes Close write an engine checkpoint
	// (atomically, via temp file + fsync + rename) after draining and
	// converging, and is where the driver restarts a crashed engine from.
	CheckpointPath string
	// CheckpointEvery, with CheckpointPath set, writes a periodic
	// checkpoint every K successful RC steps (0: only at Close). The
	// fresher the checkpoint, the fewer events a driver restart loses.
	CheckpointEvery int
	// StepDelay inserts an artificial pause after every RC step —
	// a throttle for demos and for deterministic backpressure tests.
	StepDelay time.Duration
	// Log, when set, receives structured driver lifecycle events (engine
	// restarts, driver death, checkpoints) with step/version attributes.
	// Nil disables logging; the driver hot path never touches it then.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.PublishEvery <= 0 {
		c.PublishEvery = 1
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 4096
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = time.Second
	}
	if c.MaxEventsPerStep <= 0 {
		c.MaxEventsPerStep = 256
	}
	if c.TopKIndex <= 0 {
		c.TopKIndex = 64
	}
	return c
}

// Server owns an engine on a background driver goroutine and serves
// versioned snapshots to concurrent readers. Create with New, read with
// View (or the HTTP Handler), feed with Admit (or POST /v1/events), stop
// with Close.
type Server struct {
	cfg      Config
	eng      *core.Engine
	store    store
	counters Counters
	metrics  *serverMetrics

	mu      sync.Mutex
	cond    *sync.Cond
	pending []stream.Event // admitted, not yet handed to the engine
	closed  bool
	dead    bool           // driver died unrecoverably (closeErr holds the cause)
	admitN  int            // vertex count after all admitted events apply
	deleted map[int32]bool // vertices deleted (engine past + admitted)

	// driver-goroutine-only state
	nextID          int32 // next global ID a stream join receives
	version         uint64
	sincePublish    int
	sinceCheckpoint int

	// failNextStep makes the next safeStep fail — the test hook behind the
	// crash-recovery and driver-death tests.
	failNextStep atomic.Bool

	driverDone chan struct{}
	closeErr   error
}

// New wraps an engine (freshly built or restored from a checkpoint) in a
// serving layer and starts the background driver. Ownership of the engine
// transfers to the Server: the caller must not call any engine method
// afterwards. An initial View (version 1) is published before New returns,
// so View never returns nil.
func New(e *core.Engine, cfg Config) (*Server, error) {
	s, err := newServer(e, cfg)
	if err != nil {
		return nil, err
	}
	go s.drive()
	return s, nil
}

// newServer builds the server and publishes the initial View without
// starting the driver (benchmarks exercise publication and the read path
// in isolation through this).
func newServer(e *core.Engine, cfg Config) (*Server, error) {
	if e == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	s := &Server{
		cfg:        cfg.withDefaults(),
		eng:        e,
		deleted:    map[int32]bool{},
		driverDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	n := e.Graph().NumVertices()
	s.admitN = n
	s.nextID = int32(n)
	for v := int32(0); int(v) < n; v++ {
		if !e.Alive(v) {
			s.deleted[v] = true
		}
	}
	s.metrics = newServerMetrics(s, e.Options().P)
	e.SetStepHook(s.onStep)
	s.publish()
	return s, nil
}

// Counters returns the server's atomic counters (live; see /metrics for
// the rendered form).
func (s *Server) Counters() *Counters { return &s.counters }

// View returns the latest published snapshot. It never blocks, never
// returns nil, and the result is immutable — safe to read from any number
// of goroutines while the driver keeps publishing.
func (s *Server) View() *View { return s.store.load() }

// Close stops admission (subsequent Admit fails with ErrClosed), lets the
// driver drain every admitted event into the engine, converges it, forces
// a final publish, writes the checkpoint if configured, and waits for the
// driver to exit. Safe to call more than once. In an HTTP deployment,
// shut the http.Server down first so in-flight requests drain against the
// still-live store, then Close the serving layer.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.driverDone
	return s.closeErr
}

// writeCheckpoint writes the engine checkpoint atomically (temp file in
// the target directory, fsync, rename over the destination).
func (s *Server) writeCheckpoint(path string) error {
	if err := s.eng.WriteCheckpointFile(path); err != nil {
		return fmt.Errorf("serve: writing checkpoint: %w", err)
	}
	return nil
}

// DriverErr reports the error that killed the background driver, or nil
// while it is running (or after a clean Close). While non-nil the server
// rejects admission and serves reads from the last published View.
func (s *Server) DriverErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return s.closeErr
	}
	return nil
}
