package serve

import (
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"anytime/internal/obs"
	"anytime/internal/stream"
)

// scrape fetches /metrics through the real handler stack and parses the
// Prometheus exposition.
func scrape(t *testing.T, srv *Server) map[string]float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	m, err := obs.ParseText(rec.Body)
	if err != nil {
		t.Fatalf("parsing exposition: %v\n%s", err, rec.Body.String())
	}
	return m
}

// TestMetricsPrometheusExposition: GET /metrics serves parseable Prometheus
// text carrying the serving counters, the per-processor load gauges with
// proc labels, the step load-imbalance gauge, and per-route latency
// histograms.
func TestMetricsPrometheusExposition(t *testing.T) {
	const p = 3
	srv, err := New(testEngine(t, testBase(t, 60, 7), p, 7), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 1, V: 30, W: 2}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "convergence", func() bool { return srv.View().Converged && srv.View().QueueDepth == 0 })

	// One instrumented read so a latency histogram has a sample.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/topk?k=3", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /v1/topk = %d", rec.Code)
	}

	m := scrape(t, srv)
	for _, key := range []string{
		"aa_events_admitted_total",
		`aa_events_rejected_total{reason="backpressure"}`,
		`aa_events_rejected_total{reason="invalid"}`,
		"aa_queue_depth",
		"aa_pending_events",
		"aa_engine_queued_events",
		"aa_snapshot_version",
		"aa_snapshot_converged",
		"aa_engine_rc_steps_total",
		"aa_engine_virtual_seconds_total",
		`aa_engine_ops_total{phase="rc"}`,
		"aa_comm_messages_total",
		"aa_step_imbalance",
		"aa_step_rows",
		"aa_step_dirty_rows",
		`aa_http_request_seconds_count{route="topk"}`,
		`aa_http_request_seconds_bucket{route="topk",le="+Inf"}`,
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("exposition missing %q", key)
		}
	}
	for i := 0; i < p; i++ {
		for _, fam := range []string{"aa_proc_rows", "aa_proc_dirty_rows", "aa_proc_boundary_rows", "aa_proc_relax_ops", "aa_proc_busy_seconds"} {
			key := fam + `{proc="` + string(rune('0'+i)) + `"}`
			if _, ok := m[key]; !ok {
				t.Errorf("exposition missing %q", key)
			}
		}
	}
	if v := m["aa_step_imbalance"]; v < 1 {
		t.Errorf("aa_step_imbalance = %v, want >= 1 (max/mean)", v)
	}
	if m["aa_events_admitted_total"] != 1 {
		t.Errorf("aa_events_admitted_total = %v, want 1", m["aa_events_admitted_total"])
	}
	if m[`aa_http_request_seconds_count{route="topk"}`] < 1 {
		t.Error("topk latency histogram recorded no samples")
	}
	if m["aa_step_rows"] <= 0 || m["aa_step_rows"] != sumProc(m, "aa_proc_rows", p) {
		t.Errorf("aa_step_rows = %v, per-proc sum = %v", m["aa_step_rows"], sumProc(m, "aa_proc_rows", p))
	}
}

func sumProc(m map[string]float64, fam string, p int) float64 {
	var s float64
	for i := 0; i < p; i++ {
		s += m[fam+`{proc="`+string(rune('0'+i))+`"}`]
	}
	return s
}

// TestMetricsMonotoneAcrossRestart: the engine totals rendered on /metrics
// must never step backwards, even when an induced step failure makes the
// driver throw the engine away and restore an older checkpoint (whose own
// metrics reset). Runs under -race via `make race`.
func TestMetricsMonotoneAcrossRestart(t *testing.T) {
	base := testBase(t, 80, 11)
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	srv, err := New(testEngine(t, base, 4, 11), Config{
		CheckpointPath:  path,
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	monotone := []string{
		"aa_engine_rc_steps_total",
		"aa_engine_virtual_seconds_total",
		`aa_engine_ops_total{phase="rc"}`,
		"aa_comm_messages_total",
		"aa_comm_bytes_total",
	}
	last := map[string]float64{}
	check := func(when string) {
		t.Helper()
		m := scrape(t, srv)
		for _, key := range monotone {
			if m[key] < last[key] {
				t.Fatalf("%s went backwards %s: %v -> %v", key, when, last[key], m[key])
			}
			last[key] = m[key]
		}
	}

	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 1, V: 40, W: 1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "periodic checkpoint", func() bool { return srv.Counters().CheckpointsWritten.Load() >= 1 })
	check("before restart")

	// Concurrent scrapes race the restart itself.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		}
	}()

	srv.failNextStep.Store(true)
	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 2, V: 50, W: 2}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "engine restart", func() bool { return srv.Counters().EngineRestarts.Load() == 1 })
	<-done
	check("across restart")

	// Post-restart progress climbs from the rebased totals.
	if err := srv.Admit([]stream.Event{{Kind: stream.AddEdge, U: 3, V: 60, W: 1}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-restart convergence", func() bool {
		v := srv.View()
		return v.Converged && v.QueueDepth == 0
	})
	check("after restart")
	if m := scrape(t, srv); m["aa_engine_restarts_total"] != 1 {
		t.Fatalf("aa_engine_restarts_total = %v, want 1", m["aa_engine_restarts_total"])
	}
}
