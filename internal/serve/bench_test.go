package serve

import (
	"testing"

	"anytime/internal/core"
	"anytime/internal/gen"
)

func benchServer(b *testing.B, n int) *Server {
	b.Helper()
	g, err := gen.BarabasiAlbert(n, 2, gen.Weights{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen.Connectify(g, 1)
	opts := core.NewOptions()
	opts.P = 4
	e, err := core.New(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	e.Run()
	// no driver: publication and the read path benched in isolation
	s, err := newServer(e, Config{TopKIndex: 64})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSnapshotPublish pins the cost of one publication: gathering the
// engine snapshot, building the top-k index, and the atomic swap. This is
// the driver-side overhead added per PublishEvery RC steps; later PRs must
// not regress it silently.
func BenchmarkSnapshotPublish(b *testing.B) {
	s := benchServer(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.publish()
	}
}

// BenchmarkTopKQuery pins the read path: atomic view load plus top-k index
// lookup, the per-query cost every HTTP top-k request pays.
func BenchmarkTopKQuery(b *testing.B) {
	s := benchServer(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink int
		for pb.Next() {
			top := s.View().TopK(10)
			sink += top[0]
		}
		_ = sink
	})
}

// BenchmarkTopKQueryBeyondIndex pins the fallback path: a query wider than
// the precomputed index heap-selects over the immutable snapshot.
func BenchmarkTopKQueryBeyondIndex(b *testing.B) {
	s := benchServer(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var sink int
		for pb.Next() {
			top := s.View().TopK(200)
			sink += top[0]
		}
		_ = sink
	})
}
