package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anytime/internal/stream"
)

func newTestServer(t *testing.T) (*Server, *Client, func()) {
	t.Helper()
	base := testBase(t, 60, 13)
	srv, err := New(testEngine(t, base, 2, 13), Config{TopKIndex: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	c := &Client{BaseURL: ts.URL, HTTPClient: ts.Client()}
	return srv, c, func() {
		ts.Close()
		srv.Close()
	}
}

func TestHTTPEndpoints(t *testing.T) {
	srv, c, shutdown := newTestServer(t)
	defer shutdown()
	ctx := context.Background()

	// healthz
	resp, err := c.HTTPClient.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// snapshot metadata
	m0, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m0.Version < 1 || m0.Vertices != 60 {
		t.Fatalf("snapshot meta = %+v", m0)
	}

	// topk: within and beyond the index, descending
	tk, err := c.TopK(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tk.K != 5 || len(tk.Results) != 5 {
		t.Fatalf("topk = %+v", tk)
	}
	for i := 1; i < len(tk.Results); i++ {
		if tk.Results[i-1].Closeness < tk.Results[i].Closeness {
			t.Fatalf("topk not descending: %+v", tk.Results)
		}
	}
	big, err := c.TopK(ctx, 1000) // k > n clamps to n
	if err != nil {
		t.Fatal(err)
	}
	if big.K != 60 {
		t.Fatalf("clamped topk K = %d, want 60", big.K)
	}

	// closeness of the top vertex agrees between endpoints
	cl, err := c.Closeness(ctx, tk.Results[0].Vertex)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Closeness != tk.Results[0].Closeness {
		t.Fatalf("closeness %g != topk %g", cl.Closeness, tk.Results[0].Closeness)
	}
	if cl.Eccentricity <= 0 {
		t.Fatalf("eccentricity %d on a connected graph", cl.Eccentricity)
	}

	// error paths
	for path, want := range map[string]int{
		"/v1/topk?k=0":        http.StatusBadRequest,
		"/v1/topk?k=bogus":    http.StatusBadRequest,
		"/v1/closeness/bogus": http.StatusBadRequest,
		"/v1/closeness/99999": http.StatusNotFound,
		"/v1/closeness/-1":    http.StatusNotFound,
	} {
		resp, err := c.HTTPClient.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// POST invalid JSON and invalid events
	resp, err = c.HTTPClient.Post(c.BaseURL+"/v1/events", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed POST = %d", resp.StatusCode)
	}
	if _, err := c.PostEvents(ctx, []stream.Event{{Kind: stream.AddVertex, U: 999}}); err == nil {
		t.Fatal("non-dense join admitted over HTTP")
	}

	// POST a valid batch: one join with an anchor edge, then wait for it
	// to be ingested and visible in a later snapshot version.
	ack, err := c.PostEvents(ctx, []stream.Event{
		{Kind: stream.AddVertex, U: 60},
		{Kind: stream.AddEdge, U: 60, V: 0, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Admitted != 2 {
		t.Fatalf("admitted %d events, want 2", ack.Admitted)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, err := c.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Vertices == 61 && m.Converged {
			if m.Version <= m0.Version {
				t.Fatalf("version did not advance: %d -> %d", m0.Version, m.Version)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("join never became visible: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// metrics: required keys present and sane
	mm, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"aa_snapshot_version", "aa_engine_rc_steps_total", "aa_queue_depth",
		"aa_queries_served_total", "aa_events_admitted_total", "aa_publishes_total",
		"aa_step_imbalance", `aa_proc_rows{proc="0"}`,
		`aa_events_rejected_total{reason="backpressure"}`,
		`aa_events_rejected_total{reason="invalid"}`,
	} {
		if _, ok := mm[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, mm)
		}
	}
	if mm["aa_queries_served_total"] == 0 || mm["aa_events_admitted_total"] != 2 || mm["aa_snapshot_version"] < 2 {
		t.Fatalf("metrics = %v", mm)
	}

	// graceful close: reads keep working against the last view, admission
	// turns into 503 (ErrClosed through the client).
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopK(ctx, 3); err != nil {
		t.Fatalf("read after close: %v", err)
	}
	_, err = c.PostEvents(ctx, []stream.Event{{Kind: stream.AddVertex, U: 61}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("PostEvents after close = %v, want ErrClosed", err)
	}
}
