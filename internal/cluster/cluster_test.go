package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"anytime/internal/logp"
	"anytime/internal/obs"
)

func testMachine(t *testing.T, p int, serialized bool, maxMsg int) *Machine {
	t.Helper()
	m, err := New(Config{
		Model:       logp.Model{L: 100, O: 10, G: 1, P: p, Compute: 1},
		Serialized:  serialized,
		MaxMsgBytes: maxMsg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Model: logp.Model{P: 0}}); err == nil {
		t.Fatal("P=0 should fail")
	}
	if _, err := New(Config{Model: logp.GigabitCluster(2), MaxMsgBytes: -1}); err == nil {
		t.Fatal("negative MaxMsgBytes should fail")
	}
}

func TestParallelRunsEveryProcessor(t *testing.T) {
	m := testMachine(t, 8, true, 0)
	var mask int64
	m.Parallel(func(p int) {
		atomic.AddInt64(&mask, 1<<uint(p))
	})
	if mask != (1<<8)-1 {
		t.Fatalf("mask = %b", mask)
	}
	if m.Stats().Steps != 1 {
		t.Fatalf("steps = %d", m.Stats().Steps)
	}
}

func TestChargeAndBarrier(t *testing.T) {
	m := testMachine(t, 3, true, 0)
	m.Charge(0, 100)
	m.Charge(1, 250)
	if m.VirtualTime() != 250 {
		t.Fatalf("virtual = %v", m.VirtualTime())
	}
	max := m.Barrier()
	if max != 250 {
		t.Fatalf("barrier = %v", max)
	}
	m.ChargeDuration(2, 5*time.Nanosecond)
	if m.VirtualTime() != 255 {
		t.Fatalf("after barrier+charge = %v", m.VirtualTime())
	}
}

// The personalized all-to-all must deliver every message exactly once and
// keep local messages free.
func TestExchangeDelivery(t *testing.T) {
	P := 4
	m := testMachine(t, P, true, 0)
	outbox := make([][]Message, P)
	for p := 0; p < P; p++ {
		for q := 0; q < P; q++ {
			outbox[p] = append(outbox[p], Message{
				To: q, Tag: TagControl, Bytes: 4, Payload: p*10 + q,
			})
		}
	}
	inbox, err := m.Exchange(outbox)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < P; q++ {
		if len(inbox[q]) != P {
			t.Fatalf("processor %d received %d messages", q, len(inbox[q]))
		}
		seen := map[int]bool{}
		for _, msg := range inbox[q] {
			if msg.To != q {
				t.Fatalf("misrouted message %+v", msg)
			}
			if msg.Payload.(int) != msg.From*10+q {
				t.Fatalf("payload corrupted: %+v", msg)
			}
			if seen[msg.From] {
				t.Fatalf("duplicate from %d", msg.From)
			}
			seen[msg.From] = true
		}
	}
	st := m.Stats()
	// P*(P-1) remote messages; local ones are free
	if st.Messages != int64(P*(P-1)) {
		t.Fatalf("messages = %d", st.Messages)
	}
	if st.Bytes != int64(P*(P-1)*4) {
		t.Fatalf("bytes = %d", st.Bytes)
	}
}

func TestExchangeDeterministicOrder(t *testing.T) {
	P := 5
	run := func() []int {
		m := testMachine(t, P, true, 0)
		outbox := make([][]Message, P)
		for p := 0; p < P; p++ {
			for q := 0; q < P; q++ {
				if q != p {
					outbox[p] = append(outbox[p], Message{To: q, Bytes: 1, Payload: p})
				}
			}
		}
		inbox, err := m.Exchange(outbox)
		if err != nil {
			t.Fatal(err)
		}
		var order []int
		for _, msg := range inbox[0] {
			order = append(order, msg.From)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs: %v vs %v", a, b)
		}
	}
}

// Serialized accounting must charge strictly more virtual time than
// round-parallel accounting for the same traffic.
func TestSerializedCostsMore(t *testing.T) {
	traffic := func(m *Machine) time.Duration {
		P := m.P()
		outbox := make([][]Message, P)
		for p := 0; p < P; p++ {
			for q := 0; q < P; q++ {
				if q != p {
					outbox[p] = append(outbox[p], Message{To: q, Bytes: 1000})
				}
			}
		}
		if _, err := m.Exchange(outbox); err != nil {
			t.Fatal(err)
		}
		return m.VirtualTime()
	}
	ser := traffic(testMachine(t, 6, true, 0))
	par := traffic(testMachine(t, 6, false, 0))
	if ser <= par {
		t.Fatalf("serialized %v not above parallel %v", ser, par)
	}
}

// Bounded message size must increase the accounted chunk count but not the
// logical message count.
func TestMaxMsgBytesChunking(t *testing.T) {
	m := testMachine(t, 2, true, 100)
	outbox := make([][]Message, 2)
	outbox[0] = []Message{{To: 1, Bytes: 950}}
	if _, err := m.Exchange(outbox); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Messages != 1 {
		t.Fatalf("messages = %d", st.Messages)
	}
	if st.Chunks != 10 {
		t.Fatalf("chunks = %d, want 10", st.Chunks)
	}
}

func TestBroadcast(t *testing.T) {
	m := testMachine(t, 8, true, 0)
	out, err := m.Broadcast(3, Message{Tag: TagNewVertexRow, Bytes: 64, Payload: "row"})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 8; q++ {
		if q == 3 {
			if len(out[q]) != 0 {
				t.Fatal("root should not receive its own broadcast")
			}
			continue
		}
		if len(out[q]) != 1 || out[q][0].From != 3 || out[q][0].Payload.(string) != "row" {
			t.Fatalf("broadcast to %d wrong: %+v", q, out[q])
		}
	}
	st := m.Stats()
	if st.Broadcasts != 1 || st.Messages != 7 {
		t.Fatalf("stats = %+v", st)
	}
	// binomial tree over 8 procs: 3 rounds
	wantRound := time.Duration(1)*(10+100+10) + 64*1
	if m.VirtualTime() != 3*wantRound {
		t.Fatalf("virtual = %v, want %v", m.VirtualTime(), 3*wantRound)
	}
}

func TestResetClocks(t *testing.T) {
	m := testMachine(t, 2, true, 0)
	m.Charge(0, 1000)
	m.ResetClocks()
	if m.VirtualTime() != 0 {
		t.Fatalf("virtual = %v after reset", m.VirtualTime())
	}
}

func TestExchangeErrorsOnBadDestination(t *testing.T) {
	m := testMachine(t, 2, true, 0)
	inbox, err := m.Exchange([][]Message{{{To: 5}}, nil})
	if err == nil {
		t.Fatal("expected an error for an out-of-range destination")
	}
	if inbox != nil {
		t.Fatal("a failed exchange must deliver nothing")
	}
	if _, err := m.Exchange([][]Message{{{To: -1}}, nil}); err == nil {
		t.Fatal("expected an error for a negative destination")
	}
}

func TestBroadcastErrorsOnBadRoot(t *testing.T) {
	m := testMachine(t, 2, true, 0)
	if _, err := m.Broadcast(2, Message{Tag: TagControl}); err == nil {
		t.Fatal("expected an error for an out-of-range root")
	}
	if _, err := m.Broadcast(-1, Message{Tag: TagControl}); err == nil {
		t.Fatal("expected an error for a negative root")
	}
}

func TestPerTagAccounting(t *testing.T) {
	m := testMachine(t, 3, true, 0)
	outbox := make([][]Message, 3)
	outbox[0] = []Message{
		{To: 1, Tag: TagBoundaryDV, Bytes: 100},
		{To: 2, Tag: TagMigrateRows, Bytes: 50},
	}
	if _, err := m.Exchange(outbox); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Broadcast(1, Message{Tag: TagNewVertexRow, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.ByTag[TagBoundaryDV].Bytes != 100 || st.ByTag[TagBoundaryDV].Messages != 1 {
		t.Fatalf("boundary tag stats = %+v", st.ByTag[TagBoundaryDV])
	}
	if st.ByTag[TagMigrateRows].Bytes != 50 {
		t.Fatalf("migrate tag stats = %+v", st.ByTag[TagMigrateRows])
	}
	if st.ByTag[TagNewVertexRow].Messages != 2 || st.ByTag[TagNewVertexRow].Bytes != 20 {
		t.Fatalf("broadcast tag stats = %+v", st.ByTag[TagNewVertexRow])
	}
	total := int64(0)
	for _, ts := range st.ByTag {
		total += ts.Bytes
	}
	if total != st.Bytes {
		t.Fatalf("tag bytes %d != total %d", total, st.Bytes)
	}
}

// scriptHook is a test FaultHook that replays a fixed fate sequence for
// boundary-DV attempts (then delivers), with a configurable down set.
type scriptHook struct {
	fates  []Fate
	next   int
	budget int
	down   map[int]bool
}

func (h *scriptHook) Fate(xid int64, from, to, msgIndex, attempt int, tag Tag) Fate {
	if tag != TagBoundaryDV || h.next >= len(h.fates) {
		return FateDeliver
	}
	f := h.fates[h.next]
	h.next++
	return f
}

func (h *scriptHook) Down(p int) bool { return h.down[p] }

func (h *scriptHook) ResendBudget() int {
	if h.budget <= 0 {
		return 8
	}
	return h.budget
}

func faultMachine(t *testing.T, p int, hook FaultHook) *Machine {
	t.Helper()
	m, err := New(Config{
		Model:      logp.Model{L: 100, O: 10, G: 1, P: p, Compute: 1},
		Serialized: true,
		Fault:      hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func boundaryOutbox(p int) [][]Message {
	outbox := make([][]Message, p)
	outbox[0] = []Message{{To: 1, Tag: TagBoundaryDV, Bytes: 40, Payload: "dv"}}
	return outbox
}

// A dropped attempt must cost a full message slot and be retransmitted.
func TestFaultDropRetriesAndCharges(t *testing.T) {
	hook := &scriptHook{fates: []Fate{FateDrop, FateDrop, FateDeliver}}
	m := faultMachine(t, 2, hook)
	inbox, err := m.Exchange(boundaryOutbox(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox[1]) != 1 {
		t.Fatalf("delivered %d copies, want 1", len(inbox[1]))
	}
	st := m.Stats()
	if st.Dropped != 2 || st.Resends != 2 || st.Messages != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// 3 attempts at (o+L+o) + bytes*G each
	perAttempt := time.Duration(1)*(10+100+10) + 40*1
	if m.VirtualTime() != 3*perAttempt {
		t.Fatalf("virtual = %v, want %v", m.VirtualTime(), 3*perAttempt)
	}
}

// A duplicated message must arrive twice (receivers are idempotent).
func TestFaultDuplicateDeliversTwice(t *testing.T) {
	hook := &scriptHook{fates: []Fate{FateDuplicate}}
	m := faultMachine(t, 2, hook)
	inbox, err := m.Exchange(boundaryOutbox(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox[1]) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(inbox[1]))
	}
	st := m.Stats()
	if st.Duplicated != 1 || st.Messages != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// A delayed message must miss its exchange, count as in flight, and arrive
// at the start of the next one.
func TestFaultDelayDefersToNextExchange(t *testing.T) {
	hook := &scriptHook{fates: []Fate{FateDelay}}
	m := faultMachine(t, 2, hook)
	inbox, err := m.Exchange(boundaryOutbox(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox[1]) != 0 {
		t.Fatal("delayed message arrived early")
	}
	if m.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", m.InFlight())
	}
	inbox, err = m.Exchange(make([][]Message, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox[1]) != 1 || inbox[1][0].Payload.(string) != "dv" {
		t.Fatalf("delayed message not released: %+v", inbox[1])
	}
	if m.InFlight() != 0 {
		t.Fatalf("InFlight = %d after release", m.InFlight())
	}
}

// Exhausting the resend budget must abandon the message and surface it
// through TakeFailed.
func TestFaultBudgetExhaustionSurfacesFailure(t *testing.T) {
	hook := &scriptHook{fates: []Fate{FateDrop, FateCorrupt, FateDrop}, budget: 3}
	m := faultMachine(t, 2, hook)
	inbox, err := m.Exchange(boundaryOutbox(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox[1]) != 0 {
		t.Fatal("abandoned message was delivered")
	}
	st := m.Stats()
	if st.Failed != 1 || st.Dropped != 2 || st.Corrupted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	failed := m.TakeFailed()
	if len(failed) != 1 || failed[0].From != 0 || failed[0].To != 1 {
		t.Fatalf("TakeFailed = %+v", failed)
	}
	if len(m.TakeFailed()) != 0 {
		t.Fatal("TakeFailed did not drain")
	}
}

// Boundary traffic to a down processor is lost without retries; reliable
// tags still deliver (the engine never sends them to down processors).
func TestFaultDownReceiverDropsBoundaryOnly(t *testing.T) {
	hook := &scriptHook{down: map[int]bool{1: true}}
	m := faultMachine(t, 3, hook)
	outbox := make([][]Message, 3)
	outbox[0] = []Message{
		{To: 1, Tag: TagBoundaryDV, Bytes: 8},
		{To: 2, Tag: TagBoundaryDV, Bytes: 8},
	}
	inbox, err := m.Exchange(outbox)
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox[1]) != 0 {
		t.Fatal("down processor received boundary traffic")
	}
	if len(inbox[2]) != 1 {
		t.Fatal("up processor missed its message")
	}
	if st := m.Stats(); st.DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d, want 1", st.DroppedDown)
	}
}

// With a hook that always delivers, stats and costs must be bit-identical
// to the no-hook machine (the zero-fault plan property at cluster level).
func TestFaultZeroPlanBitIdentical(t *testing.T) {
	run := func(hook FaultHook) (Stats, time.Duration) {
		m, err := New(Config{
			Model:      logp.Model{L: 100, O: 10, G: 1, P: 4, Compute: 1},
			Serialized: true,
			Fault:      hook,
		})
		if err != nil {
			t.Fatal(err)
		}
		outbox := make([][]Message, 4)
		for p := 0; p < 4; p++ {
			for q := 0; q < 4; q++ {
				if q != p {
					outbox[p] = append(outbox[p], Message{To: q, Tag: TagBoundaryDV, Bytes: 100})
				}
			}
		}
		if _, err := m.Exchange(outbox); err != nil {
			t.Fatal(err)
		}
		return m.Stats(), m.VirtualTime()
	}
	plain, vtPlain := run(nil)
	hooked, vtHooked := run(&scriptHook{})
	if plain != hooked {
		t.Fatalf("stats differ:\nplain  %+v\nhooked %+v", plain, hooked)
	}
	if vtPlain != vtHooked {
		t.Fatalf("virtual time differs: %v vs %v", vtPlain, vtHooked)
	}
}

// TestBusyTimeImbalanceFixture is the hand-computed two-processor fixture
// behind the load-imbalance gauge: processor 0 is charged 300µs of work,
// processor 1 gets 100µs, so busy time splits 300/100 (mean 200, max 300 →
// imbalance 1.5) while the barrier synchronizes both wall clocks to 300µs
// without counting the idle wait as busy.
func TestBusyTimeImbalanceFixture(t *testing.T) {
	m := testMachine(t, 2, true, 0)
	m.Parallel(func(p int) {
		if p == 0 {
			m.ChargeDuration(0, 300*time.Microsecond)
		} else {
			m.ChargeDuration(1, 100*time.Microsecond)
		}
	})
	m.Barrier()
	if b0, b1 := m.BusyTime(0), m.BusyTime(1); b0 != 300*time.Microsecond || b1 != 100*time.Microsecond {
		t.Fatalf("busy times = %v, %v; want 300µs, 100µs", b0, b1)
	}
	if t0, t1 := m.ProcTime(0), m.ProcTime(1); t0 != 300*time.Microsecond || t1 != t0 {
		t.Fatalf("clocks after barrier = %v, %v; want both 300µs", t0, t1)
	}
	if got := obs.Imbalance([]time.Duration{m.BusyTime(0), m.BusyTime(1)}); got != 1.5 {
		t.Fatalf("imbalance = %v, want 1.5", got)
	}
}

// A boundary-tagged broadcast must route every per-destination copy through
// the same fate/ack accounting as Exchange: fates are consulted per copy,
// retries are counted and charged on top of the tree cost, and deliveries
// land in per-processor inboxes.
func TestBroadcastBoundaryTagFaultAccounting(t *testing.T) {
	hook := &scriptHook{fates: []Fate{FateDrop, FateDeliver, FateDeliver, FateDeliver}}
	m := faultMachine(t, 4, hook)
	out, err := m.Broadcast(0, Message{Tag: TagBoundaryDV, Bytes: 40, Payload: "dv"})
	if err != nil {
		t.Fatal(err)
	}
	for q := 1; q < 4; q++ {
		if len(out[q]) != 1 {
			t.Fatalf("processor %d got %d copies, want 1", q, len(out[q]))
		}
	}
	st := m.Stats()
	if st.Broadcasts != 1 || st.Messages != 3 || st.Dropped != 1 || st.Resends != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// ceil(log2 4) = 2 tree rounds at one message slot each, plus one extra
	// attempt for the dropped copy.
	perAttempt := time.Duration(1)*(10+100+10) + 40*1
	if want := 3 * perAttempt; m.VirtualTime() != want {
		t.Fatalf("virtual = %v, want %v", m.VirtualTime(), want)
	}
}

// A broadcast copy that exhausts its resend budget must surface through
// TakeFailed like any abandoned exchange message.
func TestBroadcastBudgetExhaustionSurfacesFailure(t *testing.T) {
	hook := &scriptHook{fates: []Fate{FateDrop, FateDrop}, budget: 2}
	m := faultMachine(t, 2, hook)
	out, err := m.Broadcast(0, Message{Tag: TagBoundaryDV, Bytes: 40, Payload: "dv"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[1]) != 0 {
		t.Fatal("abandoned broadcast copy was delivered")
	}
	st := m.Stats()
	if st.Failed != 1 || st.Dropped != 2 {
		t.Fatalf("stats = %+v", st)
	}
	failed := m.TakeFailed()
	if len(failed) != 1 || failed[0].From != 0 || failed[0].To != 1 || failed[0].Tag != TagBoundaryDV {
		t.Fatalf("TakeFailed = %+v", failed)
	}
}

// Reliable-plane broadcasts (control, row migration) must not consult the
// fault hook at all, and their per-copy accounting must match the historic
// bulk accounting.
func TestBroadcastReliableTagsBypassFaults(t *testing.T) {
	hook := &scriptHook{fates: []Fate{FateDrop, FateDrop, FateDrop}}
	m := faultMachine(t, 4, hook)
	out, err := m.Broadcast(1, Message{Tag: TagControl, Bytes: 8, Payload: "go"})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		want := 1
		if q == 1 {
			want = 0
		}
		if len(out[q]) != want {
			t.Fatalf("processor %d got %d copies, want %d", q, len(out[q]), want)
		}
	}
	st := m.Stats()
	if st.Dropped != 0 || st.Resends != 0 || st.Messages != 3 || st.Bytes != 24 {
		t.Fatalf("stats = %+v", st)
	}
	if hook.next != 0 {
		t.Fatalf("fault hook consulted %d times for a control broadcast", hook.next)
	}
}
