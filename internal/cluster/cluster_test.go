package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"anytime/internal/logp"
)

func testMachine(t *testing.T, p int, serialized bool, maxMsg int) *Machine {
	t.Helper()
	m, err := New(Config{
		Model:       logp.Model{L: 100, O: 10, G: 1, P: p, Compute: 1},
		Serialized:  serialized,
		MaxMsgBytes: maxMsg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Model: logp.Model{P: 0}}); err == nil {
		t.Fatal("P=0 should fail")
	}
	if _, err := New(Config{Model: logp.GigabitCluster(2), MaxMsgBytes: -1}); err == nil {
		t.Fatal("negative MaxMsgBytes should fail")
	}
}

func TestParallelRunsEveryProcessor(t *testing.T) {
	m := testMachine(t, 8, true, 0)
	var mask int64
	m.Parallel(func(p int) {
		atomic.AddInt64(&mask, 1<<uint(p))
	})
	if mask != (1<<8)-1 {
		t.Fatalf("mask = %b", mask)
	}
	if m.Stats().Steps != 1 {
		t.Fatalf("steps = %d", m.Stats().Steps)
	}
}

func TestChargeAndBarrier(t *testing.T) {
	m := testMachine(t, 3, true, 0)
	m.Charge(0, 100)
	m.Charge(1, 250)
	if m.VirtualTime() != 250 {
		t.Fatalf("virtual = %v", m.VirtualTime())
	}
	max := m.Barrier()
	if max != 250 {
		t.Fatalf("barrier = %v", max)
	}
	m.ChargeDuration(2, 5*time.Nanosecond)
	if m.VirtualTime() != 255 {
		t.Fatalf("after barrier+charge = %v", m.VirtualTime())
	}
}

// The personalized all-to-all must deliver every message exactly once and
// keep local messages free.
func TestExchangeDelivery(t *testing.T) {
	P := 4
	m := testMachine(t, P, true, 0)
	outbox := make([][]Message, P)
	for p := 0; p < P; p++ {
		for q := 0; q < P; q++ {
			outbox[p] = append(outbox[p], Message{
				To: q, Tag: TagControl, Bytes: 4, Payload: p*10 + q,
			})
		}
	}
	inbox := m.Exchange(outbox)
	for q := 0; q < P; q++ {
		if len(inbox[q]) != P {
			t.Fatalf("processor %d received %d messages", q, len(inbox[q]))
		}
		seen := map[int]bool{}
		for _, msg := range inbox[q] {
			if msg.To != q {
				t.Fatalf("misrouted message %+v", msg)
			}
			if msg.Payload.(int) != msg.From*10+q {
				t.Fatalf("payload corrupted: %+v", msg)
			}
			if seen[msg.From] {
				t.Fatalf("duplicate from %d", msg.From)
			}
			seen[msg.From] = true
		}
	}
	st := m.Stats()
	// P*(P-1) remote messages; local ones are free
	if st.Messages != int64(P*(P-1)) {
		t.Fatalf("messages = %d", st.Messages)
	}
	if st.Bytes != int64(P*(P-1)*4) {
		t.Fatalf("bytes = %d", st.Bytes)
	}
}

func TestExchangeDeterministicOrder(t *testing.T) {
	P := 5
	run := func() []int {
		m := testMachine(t, P, true, 0)
		outbox := make([][]Message, P)
		for p := 0; p < P; p++ {
			for q := 0; q < P; q++ {
				if q != p {
					outbox[p] = append(outbox[p], Message{To: q, Bytes: 1, Payload: p})
				}
			}
		}
		inbox := m.Exchange(outbox)
		var order []int
		for _, msg := range inbox[0] {
			order = append(order, msg.From)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs: %v vs %v", a, b)
		}
	}
}

// Serialized accounting must charge strictly more virtual time than
// round-parallel accounting for the same traffic.
func TestSerializedCostsMore(t *testing.T) {
	traffic := func(m *Machine) time.Duration {
		P := m.P()
		outbox := make([][]Message, P)
		for p := 0; p < P; p++ {
			for q := 0; q < P; q++ {
				if q != p {
					outbox[p] = append(outbox[p], Message{To: q, Bytes: 1000})
				}
			}
		}
		m.Exchange(outbox)
		return m.VirtualTime()
	}
	ser := traffic(testMachine(t, 6, true, 0))
	par := traffic(testMachine(t, 6, false, 0))
	if ser <= par {
		t.Fatalf("serialized %v not above parallel %v", ser, par)
	}
}

// Bounded message size must increase the accounted chunk count but not the
// logical message count.
func TestMaxMsgBytesChunking(t *testing.T) {
	m := testMachine(t, 2, true, 100)
	outbox := make([][]Message, 2)
	outbox[0] = []Message{{To: 1, Bytes: 950}}
	m.Exchange(outbox)
	st := m.Stats()
	if st.Messages != 1 {
		t.Fatalf("messages = %d", st.Messages)
	}
	if st.Chunks != 10 {
		t.Fatalf("chunks = %d, want 10", st.Chunks)
	}
}

func TestBroadcast(t *testing.T) {
	m := testMachine(t, 8, true, 0)
	out := m.Broadcast(3, Message{Tag: TagNewVertexRow, Bytes: 64, Payload: "row"})
	for q := 0; q < 8; q++ {
		if q == 3 {
			if len(out[q]) != 0 {
				t.Fatal("root should not receive its own broadcast")
			}
			continue
		}
		if len(out[q]) != 1 || out[q][0].From != 3 || out[q][0].Payload.(string) != "row" {
			t.Fatalf("broadcast to %d wrong: %+v", q, out[q])
		}
	}
	st := m.Stats()
	if st.Broadcasts != 1 || st.Messages != 7 {
		t.Fatalf("stats = %+v", st)
	}
	// binomial tree over 8 procs: 3 rounds
	wantRound := time.Duration(1)*(10+100+10) + 64*1
	if m.VirtualTime() != 3*wantRound {
		t.Fatalf("virtual = %v, want %v", m.VirtualTime(), 3*wantRound)
	}
}

func TestResetClocks(t *testing.T) {
	m := testMachine(t, 2, true, 0)
	m.Charge(0, 1000)
	m.ResetClocks()
	if m.VirtualTime() != 0 {
		t.Fatalf("virtual = %v after reset", m.VirtualTime())
	}
}

func TestExchangePanicsOnBadDestination(t *testing.T) {
	m := testMachine(t, 2, true, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Exchange([][]Message{{{To: 5}}, nil})
}

func TestPerTagAccounting(t *testing.T) {
	m := testMachine(t, 3, true, 0)
	outbox := make([][]Message, 3)
	outbox[0] = []Message{
		{To: 1, Tag: TagBoundaryDV, Bytes: 100},
		{To: 2, Tag: TagMigrateRows, Bytes: 50},
	}
	m.Exchange(outbox)
	m.Broadcast(1, Message{Tag: TagNewVertexRow, Bytes: 10})
	st := m.Stats()
	if st.ByTag[TagBoundaryDV].Bytes != 100 || st.ByTag[TagBoundaryDV].Messages != 1 {
		t.Fatalf("boundary tag stats = %+v", st.ByTag[TagBoundaryDV])
	}
	if st.ByTag[TagMigrateRows].Bytes != 50 {
		t.Fatalf("migrate tag stats = %+v", st.ByTag[TagMigrateRows])
	}
	if st.ByTag[TagNewVertexRow].Messages != 2 || st.ByTag[TagNewVertexRow].Bytes != 20 {
		t.Fatalf("broadcast tag stats = %+v", st.ByTag[TagNewVertexRow])
	}
	total := int64(0)
	for _, ts := range st.ByTag {
		total += ts.Bytes
	}
	if total != st.Bytes {
		t.Fatalf("tag bytes %d != total %d", total, st.Bytes)
	}
}
