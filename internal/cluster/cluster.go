// Package cluster simulates the paper's distributed-memory testbed inside
// one process. Each of the P "processors" runs as a goroutine over its own
// private state; messages move between per-processor mailboxes through the
// paper's flood-avoiding personalized all-to-all schedule and a binomial
// tree broadcast; and every message and unit of work is charged to a LogP
// virtual clock so cluster-scale runtimes can be reported alongside real
// wall-clock measurements.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"anytime/internal/logp"
	"anytime/internal/obs"
	"anytime/internal/transport"
)

// The message-plane vocabulary (tags, messages, delivery fates, the fault
// hook) is owned by internal/transport so that the simulator, the inproc
// backend, and the TCP backend all speak one wire contract. The aliases
// below keep the historical cluster.* names working for existing callers.

// Tag distinguishes message kinds in the mailboxes.
type Tag = transport.Tag

const (
	// TagBoundaryDV carries updated boundary distance vectors (RC phase).
	TagBoundaryDV = transport.TagBoundaryDV
	// TagNewVertexRow carries a new vertex's distance vector (vertex addition).
	TagNewVertexRow = transport.TagNewVertexRow
	// TagMigrateRows carries rows of vertices relocated by repartitioning.
	TagMigrateRows = transport.TagMigrateRows
	// TagControl carries small control/termination information.
	TagControl = transport.TagControl
)

// Message is one logical message between processors. Payload stays
// in-process (no serialization); Bytes is the accounted on-wire size and is
// what the LogP clock charges.
type Message = transport.Message

// TagStats are per-message-kind counters.
type TagStats struct {
	Messages int64
	Bytes    int64
}

// Fate is the outcome the fault layer assigns to one delivery attempt of a
// message on a lossy link.
type Fate = transport.Fate

const (
	// FateDeliver delivers the attempt normally.
	FateDeliver = transport.FateDeliver
	// FateDrop loses the attempt in the network; the sender's ack timeout
	// triggers a retransmission (bounded by ResendBudget).
	FateDrop = transport.FateDrop
	// FateDuplicate delivers the message twice (a spurious retransmission
	// after a lost ack). Receivers must be idempotent.
	FateDuplicate = transport.FateDuplicate
	// FateDelay holds the message in flight; it is delivered at the start
	// of the next Exchange instead of this one.
	FateDelay = transport.FateDelay
	// FateCorrupt flips bits on the wire; the receiver's transport checksum
	// detects it and nacks, triggering a retransmission like FateDrop.
	FateCorrupt = transport.FateCorrupt
)

// FaultHook is consulted by Exchange for every delivery attempt, making the
// simulated network lossy in a reproducible way. Implementations must be
// deterministic functions of their arguments (the engine's results must not
// depend on goroutine scheduling); internal/fault provides the seeded
// reference implementation.
//
// Fault injection applies to the boundary-DV data plane only: Exchange asks
// the hook for TagBoundaryDV messages, while migration/control traffic uses
// reliable delivery regardless of the hook (their loss would tear engine
// state rather than delay convergence, and real systems put them on a
// reliable channel). Broadcast runs each per-destination copy through the
// same per-message accounting as Exchange, so a boundary-tagged broadcast
// is subject to the same fates.
type FaultHook = transport.FaultHook

// NumTags is the number of message kinds tracked in Stats.ByTag.
const NumTags = transport.NumTags

// Stats aggregates communication counters for reports and the analysis
// benches. ByTag breaks traffic down by message kind (boundary DVs,
// vertex-addition row broadcasts, migration, control).
type Stats struct {
	Messages   int64 // logical messages
	Chunks     int64 // wire messages after MaxMsgBytes splitting
	Bytes      int64
	Broadcasts int64
	Barriers   int64
	Steps      int64
	ByTag      [NumTags]TagStats

	// Fault-injection counters (all zero on a perfect network).
	Resends     int64 // retransmissions after drops/corruption
	Dropped     int64 // attempts lost in the network
	Duplicated  int64 // messages delivered twice
	Delayed     int64 // messages deferred to the next exchange
	Corrupted   int64 // attempts rejected by the receiver's checksum
	Failed      int64 // messages abandoned after the resend budget
	DroppedDown int64 // boundary messages addressed to a crashed processor
}

// Config configures a Machine.
type Config struct {
	Model logp.Model
	// MaxMsgBytes is the paper's bounded message size m: larger payloads
	// are accounted as multiple wire messages. 0 = unbounded.
	MaxMsgBytes int
	// Serialized, when true (the paper's schedule), charges the all-to-all
	// exchange as if only one message traverses the network at a time
	// (O(P^2) message slots). When false, the P-1 disjoint-pair rounds are
	// charged in parallel per round.
	Serialized bool
	// Workers bounds the real goroutines used by Parallel (0 = P).
	Workers int
	// Fault, when non-nil, makes Exchange's boundary-DV data plane lossy:
	// every delivery attempt consults the hook, lost attempts are resent up
	// to the hook's budget with every attempt charged to the LogP clock,
	// and abandoned messages surface through TakeFailed. nil = the perfect
	// network (bit-identical to the pre-fault-layer path).
	Fault FaultHook
	// Obs, when non-nil, receives fault-retry spans (deliveries that needed
	// retransmission, were delayed in flight, or exhausted the resend
	// budget). nil = no tracing.
	Obs *obs.Tracer
}

// delayedMsg is a message held in flight by FateDelay until a later
// exchange.
type delayedMsg struct {
	release int64 // exchange number at which the message is delivered
	msg     Message
}

// Machine is the simulated cluster. All deliveries flow through a
// transport.Hub — the same in-process message plane backing the inproc
// Transport backend — so the simulator and the real-transport runner share
// one delivery fabric and one Message/Tag/Fate vocabulary.
type Machine struct {
	cfg     Config
	clocks  []*logp.Clock
	hub     *transport.Hub
	stats   Stats
	mu      sync.Mutex
	xid     int64        // exchange sequence number (fault determinism key)
	delayed []delayedMsg // in-flight messages deferred by FateDelay
	failed  []Message    // abandoned messages awaiting TakeFailed
}

// New creates a machine with the given configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxMsgBytes < 0 {
		return nil, fmt.Errorf("cluster: negative MaxMsgBytes")
	}
	m := &Machine{
		cfg:    cfg,
		clocks: make([]*logp.Clock, cfg.Model.P),
		hub:    transport.NewHub(cfg.Model.P),
	}
	for i := range m.clocks {
		m.clocks[i] = &logp.Clock{}
	}
	return m, nil
}

// Hub exposes the machine's delivery fabric (for transport-level metrics).
func (m *Machine) Hub() *transport.Hub { return m.hub }

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.Model.P }

// Model returns the LogP parameters.
func (m *Machine) Model() logp.Model { return m.cfg.Model }

// Stats returns a snapshot of the counters.
func (m *Machine) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// VirtualTime returns the maximum processor clock: the simulated elapsed
// time of the computation so far.
func (m *Machine) VirtualTime() time.Duration {
	var max time.Duration
	for _, c := range m.clocks {
		if c.Now() > max {
			max = c.Now()
		}
	}
	return max
}

// ProcTime returns processor p's current virtual clock. Safe from p's own
// Parallel body (each p owns its clock) and between super-steps.
func (m *Machine) ProcTime(p int) time.Duration { return m.clocks[p].Now() }

// BusyTime returns processor p's accumulated busy virtual time: explicit
// Charge/ChargeDuration advances, excluding barrier and message-wait idle
// jumps. Per-step deltas of this quantity feed the load-imbalance gauge.
func (m *Machine) BusyTime(p int) time.Duration { return m.clocks[p].Busy() }

// Charge adds `ops` abstract work units to processor p's clock. Safe for
// concurrent use from Parallel bodies (each p owns its clock).
func (m *Machine) Charge(p int, ops int64) {
	m.clocks[p].Advance(m.cfg.Model.Work(ops))
}

// ChargeDuration adds an explicit virtual duration to processor p's clock.
func (m *Machine) ChargeDuration(p int, d time.Duration) {
	m.clocks[p].Advance(d)
}

// Barrier synchronizes all clocks to the maximum (bulk-synchronous step
// boundary).
func (m *Machine) Barrier() time.Duration {
	m.mu.Lock()
	m.stats.Barriers++
	m.mu.Unlock()
	return logp.Barrier(m.clocks)
}

// Parallel runs body(p) for every processor concurrently and waits for all
// of them (a compute super-step). Bodies own disjoint state; they may call
// Charge(p, ...) for their own p only.
func (m *Machine) Parallel(body func(p int)) {
	m.mu.Lock()
	m.stats.Steps++
	m.mu.Unlock()
	workers := m.cfg.Workers
	if workers <= 0 || workers > m.P() {
		workers = m.P()
	}
	if workers == 1 {
		for p := 0; p < m.P(); p++ {
			body(p)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for p := 0; p < m.P(); p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			body(p)
		}(p)
	}
	wg.Wait()
}

// chunks returns the wire-message count for a payload size under the
// bounded-message-size schedule.
func (m *Machine) chunks(bytes int) int64 {
	if m.cfg.MaxMsgBytes <= 0 || bytes <= m.cfg.MaxMsgBytes {
		return 1
	}
	return int64((bytes + m.cfg.MaxMsgBytes - 1) / m.cfg.MaxMsgBytes)
}

// msgCost is the endpoint-to-endpoint virtual cost of one logical message:
// per chunk, sender overhead + wire latency + receiver overhead, plus the
// per-byte serialization gap.
func (m *Machine) msgCost(bytes int) time.Duration {
	md := m.cfg.Model
	ch := m.chunks(bytes)
	return time.Duration(ch)*(md.O+md.L+md.O) + time.Duration(bytes)*md.G
}

// Exchange performs the personalized all-to-all of one recombination step:
// outbox[p] holds processor p's outgoing messages (To must be a valid
// processor, From is overwritten). It returns inbox[q], the messages
// delivered to each processor, in deterministic (round, sender) order, and
// advances the virtual clocks according to the configured schedule. A
// message addressed outside [0, P) aborts the exchange with an error and
// delivers nothing.
//
// The schedule runs P-1 rounds; in round r, processor p sends its messages
// addressed to (p+r) mod P. With Serialized accounting (the paper's
// "only one message traverses the network at any time"), message slots are
// charged one after another globally; otherwise each round is charged as P
// concurrent pairwise transfers.
//
// With a FaultHook configured, each boundary-DV message runs the lossy-link
// protocol: attempts are charged to the clock until one is delivered,
// duplicated, or delayed, or the resend budget runs out (the message is
// then abandoned and reported via TakeFailed). Messages delayed by a
// previous exchange are delivered first, in their original order.
func (m *Machine) Exchange(outbox [][]Message) ([][]Message, error) {
	P := m.P()
	// Validate and index outgoing by (from, to) before anything is
	// delivered: an invalid destination must leave the hub untouched.
	byDest := make([][][]Message, P)
	var local []Message
	for p := 0; p < P; p++ {
		byDest[p] = make([][]Message, P)
		for i := range outbox[p] {
			msg := outbox[p][i]
			msg.From = p
			if msg.To < 0 || msg.To >= P {
				return nil, fmt.Errorf("cluster: message from processor %d to invalid processor %d", p, msg.To)
			}
			if msg.To == p {
				// local delivery, no network cost
				local = append(local, msg)
				continue
			}
			byDest[p][msg.To] = append(byDest[p][msg.To], msg)
		}
	}
	for _, msg := range local {
		m.hub.Deliver(msg)
	}
	m.xid++
	m.releaseDelayed()
	start := m.Barrier() // exchange begins when every processor arrives
	var serialClock time.Duration
	for r := 1; r < P; r++ {
		var roundMax time.Duration
		for p := 0; p < P; p++ {
			q := (p + r) % P
			msgs := byDest[p][q]
			if len(msgs) == 0 {
				continue
			}
			var cost time.Duration
			for mi, msg := range msgs {
				cost += m.transmit(msg, mi)
			}
			if m.cfg.Serialized {
				serialClock += cost
			} else if cost > roundMax {
				roundMax = cost
			}
		}
		if !m.cfg.Serialized {
			serialClock += roundMax
		}
	}
	for _, c := range m.clocks {
		c.AdvanceTo(start + serialClock)
	}
	inbox := make([][]Message, P)
	for q := 0; q < P; q++ {
		inbox[q] = m.hub.Collect(q)
	}
	return inbox, nil
}

// account records one delivered copy of msg in the counters.
func (m *Machine) account(msg Message) {
	m.mu.Lock()
	m.stats.Messages++
	m.stats.Chunks += m.chunks(msg.Bytes)
	m.stats.Bytes += int64(msg.Bytes)
	m.stats.ByTag[msg.Tag].Messages++
	m.stats.ByTag[msg.Tag].Bytes += int64(msg.Bytes)
	m.mu.Unlock()
}

// transmit moves one logical message across its link — delivering through
// the hub — and returns the virtual cost charged to the link's message
// slot. Without a fault hook it is a single delivered attempt. With one,
// boundary-DV messages run the ack/retry protocol; all other tags stay on
// the reliable plane.
func (m *Machine) transmit(msg Message, msgIndex int) time.Duration {
	base := m.msgCost(msg.Bytes)
	hook := m.cfg.Fault
	if hook == nil || msg.Tag != TagBoundaryDV {
		m.account(msg)
		m.hub.Deliver(msg)
		return base
	}
	if hook.Down(msg.To) {
		// Dead receiver: the send is charged (the sender cannot know), the
		// payload is lost, and the rejoin protocol re-ships later.
		m.mu.Lock()
		m.stats.DroppedDown++
		m.mu.Unlock()
		return base
	}
	budget := hook.ResendBudget()
	if budget < 1 {
		budget = 1
	}
	var cost time.Duration
	for attempt := 0; attempt < budget; attempt++ {
		cost += base
		if attempt > 0 {
			m.mu.Lock()
			m.stats.Resends++
			m.mu.Unlock()
		}
		switch hook.Fate(m.xid, msg.From, msg.To, msgIndex, attempt, msg.Tag) {
		case FateDeliver:
			m.account(msg)
			m.hub.Deliver(msg)
			m.recordRetry(msg, attempt+1, cost)
			return cost
		case FateDuplicate:
			// Lost ack: the retransmission delivers a second copy.
			cost += base
			m.account(msg)
			m.account(msg)
			m.mu.Lock()
			m.stats.Duplicated++
			m.mu.Unlock()
			m.hub.Deliver(msg)
			m.hub.Deliver(msg)
			m.recordRetry(msg, attempt+2, cost)
			return cost
		case FateDelay:
			// Held in flight; delivered at the start of the next exchange.
			m.mu.Lock()
			m.stats.Delayed++
			m.mu.Unlock()
			m.account(msg)
			m.delayed = append(m.delayed, delayedMsg{release: m.xid + 1, msg: msg})
			m.recordRetry(msg, attempt+1, cost)
			return cost
		case FateDrop:
			m.mu.Lock()
			m.stats.Dropped++
			m.mu.Unlock()
		case FateCorrupt:
			m.mu.Lock()
			m.stats.Corrupted++
			m.mu.Unlock()
		}
	}
	m.mu.Lock()
	m.stats.Failed++
	m.mu.Unlock()
	m.failed = append(m.failed, msg)
	m.recordRetry(msg, budget, cost)
	return cost
}

// recordRetry emits a fault-retry span for a lossy-link delivery that took
// more than one attempt (or was abandoned). Called from Exchange's single
// accounting goroutine, so reading the sender's clock is race-free.
func (m *Machine) recordRetry(msg Message, attempts int, cost time.Duration) {
	if m.cfg.Obs == nil || attempts <= 1 {
		return
	}
	m.cfg.Obs.Record(obs.Span{
		Kind:    obs.KindFaultRetry,
		Proc:    int32(msg.From),
		Step:    int32(m.xid),
		Wall:    m.cfg.Obs.Now(),
		Virt:    m.clocks[msg.From].Now(),
		VirtDur: cost,
		Value:   int64(attempts),
	})
}

// releaseDelayed delivers messages whose delay has elapsed into the hub
// (before this exchange's own traffic — they are older). Messages to a
// processor that crashed in the meantime are lost.
func (m *Machine) releaseDelayed() {
	if len(m.delayed) == 0 {
		return
	}
	keep := m.delayed[:0]
	for _, dm := range m.delayed {
		if dm.release > m.xid {
			keep = append(keep, dm)
			continue
		}
		if m.cfg.Fault != nil && m.cfg.Fault.Down(dm.msg.To) {
			m.mu.Lock()
			m.stats.DroppedDown++
			m.mu.Unlock()
			continue
		}
		m.hub.Deliver(dm.msg)
	}
	m.delayed = keep
}

// InFlight returns the number of delayed messages not yet delivered. The
// engine must not declare convergence while messages are in flight.
func (m *Machine) InFlight() int { return len(m.delayed) }

// TakeFailed returns the messages abandoned after the resend budget since
// the last call, and clears the list. The sender uses it to re-mark the
// affected rows for re-shipping.
func (m *Machine) TakeFailed() []Message {
	f := m.failed
	m.failed = nil
	return f
}

// Broadcast charges a binomial-tree broadcast of a payload of the given
// size from root to all other processors and returns the per-processor
// copies of the message. ceil(log2 P) rounds, each a point-to-point
// message cost. An out-of-range root is an error.
//
// Each per-destination copy goes through the same transmit path as
// Exchange, so counters and fault fates are accounted per message rather
// than in bulk. In practice broadcasts carry control/row tags, which ride
// the reliable plane regardless of the fault hook; a boundary-tagged
// broadcast is subject to the same per-copy fates as exchanged traffic,
// with retry costs added on top of the tree cost (retries serialize on the
// affected link) and abandoned copies surfacing through TakeFailed.
func (m *Machine) Broadcast(root int, msg Message) ([][]Message, error) {
	P := m.P()
	if root < 0 || root >= P {
		return nil, fmt.Errorf("cluster: broadcast from invalid processor %d", root)
	}
	msg.From = root
	rounds := 0
	for 1<<rounds < P {
		rounds++
	}
	start := m.Barrier()
	base := m.msgCost(msg.Bytes)
	cost := time.Duration(rounds) * base
	for q := 0; q < P; q++ {
		if q == root {
			continue
		}
		mq := msg
		mq.To = q
		if extra := m.transmit(mq, q) - base; extra > 0 {
			cost += extra
		}
	}
	for _, c := range m.clocks {
		c.AdvanceTo(start + cost)
	}
	m.mu.Lock()
	m.stats.Broadcasts++
	m.mu.Unlock()
	out := make([][]Message, P)
	for q := 0; q < P; q++ {
		out[q] = m.hub.Collect(q)
	}
	return out, nil
}

// ResetClocks zeroes all virtual clocks (used by the baseline-restart
// comparator between runs while keeping cumulative stats).
func (m *Machine) ResetClocks() {
	for i := range m.clocks {
		m.clocks[i] = &logp.Clock{}
	}
}

// Restore sets every clock to the given virtual time and replaces the
// counters — used when resuming from a checkpoint. Any in-flight or
// abandoned messages are discarded (checkpoints are taken at quiescent
// step boundaries).
func (m *Machine) Restore(virtual time.Duration, st Stats) {
	for _, c := range m.clocks {
		c.AdvanceTo(virtual)
	}
	m.delayed = nil
	m.failed = nil
	m.mu.Lock()
	m.stats = st
	m.mu.Unlock()
}
