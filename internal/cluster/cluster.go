// Package cluster simulates the paper's distributed-memory testbed inside
// one process. Each of the P "processors" runs as a goroutine over its own
// private state; messages move between per-processor mailboxes through the
// paper's flood-avoiding personalized all-to-all schedule and a binomial
// tree broadcast; and every message and unit of work is charged to a LogP
// virtual clock so cluster-scale runtimes can be reported alongside real
// wall-clock measurements.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"anytime/internal/logp"
)

// Tag distinguishes message kinds in the mailboxes.
type Tag uint8

const (
	// TagBoundaryDV carries updated boundary distance vectors (RC phase).
	TagBoundaryDV Tag = iota
	// TagNewVertexRow carries a new vertex's distance vector (vertex addition).
	TagNewVertexRow
	// TagMigrateRows carries rows of vertices relocated by repartitioning.
	TagMigrateRows
	// TagControl carries small control/termination information.
	TagControl
)

// Message is one logical message between processors. Payload stays
// in-process (no serialization); Bytes is the accounted on-wire size and is
// what the LogP clock charges.
type Message struct {
	From, To int
	Tag      Tag
	Bytes    int
	Payload  interface{}
}

// TagStats are per-message-kind counters.
type TagStats struct {
	Messages int64
	Bytes    int64
}

// NumTags is the number of message kinds tracked in Stats.ByTag.
const NumTags = int(TagControl) + 1

// Stats aggregates communication counters for reports and the analysis
// benches. ByTag breaks traffic down by message kind (boundary DVs,
// vertex-addition row broadcasts, migration, control).
type Stats struct {
	Messages   int64 // logical messages
	Chunks     int64 // wire messages after MaxMsgBytes splitting
	Bytes      int64
	Broadcasts int64
	Barriers   int64
	Steps      int64
	ByTag      [NumTags]TagStats
}

// Config configures a Machine.
type Config struct {
	Model logp.Model
	// MaxMsgBytes is the paper's bounded message size m: larger payloads
	// are accounted as multiple wire messages. 0 = unbounded.
	MaxMsgBytes int
	// Serialized, when true (the paper's schedule), charges the all-to-all
	// exchange as if only one message traverses the network at a time
	// (O(P^2) message slots). When false, the P-1 disjoint-pair rounds are
	// charged in parallel per round.
	Serialized bool
	// Workers bounds the real goroutines used by Parallel (0 = P).
	Workers int
}

// Machine is the simulated cluster.
type Machine struct {
	cfg    Config
	clocks []*logp.Clock
	stats  Stats
	mu     sync.Mutex
}

// New creates a machine with the given configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxMsgBytes < 0 {
		return nil, fmt.Errorf("cluster: negative MaxMsgBytes")
	}
	m := &Machine{cfg: cfg, clocks: make([]*logp.Clock, cfg.Model.P)}
	for i := range m.clocks {
		m.clocks[i] = &logp.Clock{}
	}
	return m, nil
}

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.Model.P }

// Model returns the LogP parameters.
func (m *Machine) Model() logp.Model { return m.cfg.Model }

// Stats returns a snapshot of the counters.
func (m *Machine) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// VirtualTime returns the maximum processor clock: the simulated elapsed
// time of the computation so far.
func (m *Machine) VirtualTime() time.Duration {
	var max time.Duration
	for _, c := range m.clocks {
		if c.Now() > max {
			max = c.Now()
		}
	}
	return max
}

// Charge adds `ops` abstract work units to processor p's clock. Safe for
// concurrent use from Parallel bodies (each p owns its clock).
func (m *Machine) Charge(p int, ops int64) {
	m.clocks[p].Advance(m.cfg.Model.Work(ops))
}

// ChargeDuration adds an explicit virtual duration to processor p's clock.
func (m *Machine) ChargeDuration(p int, d time.Duration) {
	m.clocks[p].Advance(d)
}

// Barrier synchronizes all clocks to the maximum (bulk-synchronous step
// boundary).
func (m *Machine) Barrier() time.Duration {
	m.mu.Lock()
	m.stats.Barriers++
	m.mu.Unlock()
	return logp.Barrier(m.clocks)
}

// Parallel runs body(p) for every processor concurrently and waits for all
// of them (a compute super-step). Bodies own disjoint state; they may call
// Charge(p, ...) for their own p only.
func (m *Machine) Parallel(body func(p int)) {
	m.mu.Lock()
	m.stats.Steps++
	m.mu.Unlock()
	workers := m.cfg.Workers
	if workers <= 0 || workers > m.P() {
		workers = m.P()
	}
	if workers == 1 {
		for p := 0; p < m.P(); p++ {
			body(p)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for p := 0; p < m.P(); p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			body(p)
		}(p)
	}
	wg.Wait()
}

// chunks returns the wire-message count for a payload size under the
// bounded-message-size schedule.
func (m *Machine) chunks(bytes int) int64 {
	if m.cfg.MaxMsgBytes <= 0 || bytes <= m.cfg.MaxMsgBytes {
		return 1
	}
	return int64((bytes + m.cfg.MaxMsgBytes - 1) / m.cfg.MaxMsgBytes)
}

// msgCost is the endpoint-to-endpoint virtual cost of one logical message:
// per chunk, sender overhead + wire latency + receiver overhead, plus the
// per-byte serialization gap.
func (m *Machine) msgCost(bytes int) time.Duration {
	md := m.cfg.Model
	ch := m.chunks(bytes)
	return time.Duration(ch)*(md.O+md.L+md.O) + time.Duration(bytes)*md.G
}

// Exchange performs the personalized all-to-all of one recombination step:
// outbox[p] holds processor p's outgoing messages (To must be a valid
// processor, From is overwritten). It returns inbox[q], the messages
// delivered to each processor, in deterministic (round, sender) order, and
// advances the virtual clocks according to the configured schedule.
//
// The schedule runs P-1 rounds; in round r, processor p sends its messages
// addressed to (p+r) mod P. With Serialized accounting (the paper's
// "only one message traverses the network at any time"), message slots are
// charged one after another globally; otherwise each round is charged as P
// concurrent pairwise transfers.
func (m *Machine) Exchange(outbox [][]Message) [][]Message {
	P := m.P()
	inbox := make([][]Message, P)
	// index outgoing by (from, to)
	byDest := make([][][]Message, P)
	for p := 0; p < P; p++ {
		byDest[p] = make([][]Message, P)
		for i := range outbox[p] {
			msg := outbox[p][i]
			msg.From = p
			if msg.To < 0 || msg.To >= P {
				panic(fmt.Sprintf("cluster: message to invalid processor %d", msg.To))
			}
			if msg.To == p {
				// local delivery, no network cost
				inbox[p] = append(inbox[p], msg)
				continue
			}
			byDest[p][msg.To] = append(byDest[p][msg.To], msg)
		}
	}
	start := m.Barrier() // exchange begins when every processor arrives
	var serialClock time.Duration
	for r := 1; r < P; r++ {
		var roundMax time.Duration
		for p := 0; p < P; p++ {
			q := (p + r) % P
			msgs := byDest[p][q]
			if len(msgs) == 0 {
				continue
			}
			var cost time.Duration
			var bytes int64
			for _, msg := range msgs {
				cost += m.msgCost(msg.Bytes)
				bytes += int64(msg.Bytes)
				m.mu.Lock()
				m.stats.Messages++
				m.stats.Chunks += m.chunks(msg.Bytes)
				m.stats.Bytes += int64(msg.Bytes)
				m.stats.ByTag[msg.Tag].Messages++
				m.stats.ByTag[msg.Tag].Bytes += int64(msg.Bytes)
				m.mu.Unlock()
				inbox[q] = append(inbox[q], msg)
			}
			if m.cfg.Serialized {
				serialClock += cost
			} else if cost > roundMax {
				roundMax = cost
			}
		}
		if !m.cfg.Serialized {
			serialClock += roundMax
		}
	}
	for _, c := range m.clocks {
		c.AdvanceTo(start + serialClock)
	}
	return inbox
}

// Broadcast charges a binomial-tree broadcast of a payload of the given
// size from root to all other processors and returns the per-processor
// copies of the message. ceil(log2 P) rounds, each a point-to-point
// message cost.
func (m *Machine) Broadcast(root int, msg Message) [][]Message {
	P := m.P()
	out := make([][]Message, P)
	msg.From = root
	for q := 0; q < P; q++ {
		if q != root {
			mq := msg
			mq.To = q
			out[q] = append(out[q], mq)
		}
	}
	rounds := 0
	for 1<<rounds < P {
		rounds++
	}
	start := m.Barrier()
	cost := time.Duration(rounds) * m.msgCost(msg.Bytes)
	for _, c := range m.clocks {
		c.AdvanceTo(start + cost)
	}
	m.mu.Lock()
	m.stats.Broadcasts++
	m.stats.Messages += int64(P - 1)
	m.stats.Chunks += int64(P-1) * m.chunks(msg.Bytes)
	m.stats.Bytes += int64(P-1) * int64(msg.Bytes)
	m.stats.ByTag[msg.Tag].Messages += int64(P - 1)
	m.stats.ByTag[msg.Tag].Bytes += int64(P-1) * int64(msg.Bytes)
	m.mu.Unlock()
	return out
}

// ResetClocks zeroes all virtual clocks (used by the baseline-restart
// comparator between runs while keeping cumulative stats).
func (m *Machine) ResetClocks() {
	for i := range m.clocks {
		m.clocks[i] = &logp.Clock{}
	}
}

// Restore sets every clock to the given virtual time and replaces the
// counters — used when resuming from a checkpoint.
func (m *Machine) Restore(virtual time.Duration, st Stats) {
	for _, c := range m.clocks {
		c.AdvanceTo(virtual)
	}
	m.mu.Lock()
	m.stats = st
	m.mu.Unlock()
}
