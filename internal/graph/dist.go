package graph

import "math"

// Dist is a shortest-path distance: a sum of edge weights, or InfDist when
// no path is known. Distances in the anytime-anywhere engine are always
// upper bounds that only decrease, so int32 with a saturating Inf is safe
// as long as true distances stay below InfDist (enforced by generators
// keeping weights small relative to n).
type Dist = int32

// InfDist is the "no known path" sentinel.
const InfDist Dist = math.MaxInt32

// AddDist adds two distances, saturating at InfDist.
func AddDist(a, b Dist) Dist {
	if a == InfDist || b == InfDist {
		return InfDist
	}
	s := int64(a) + int64(b)
	if s >= int64(InfDist) {
		return InfDist
	}
	return Dist(s)
}
