package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMETIS writes the graph in the METIS/Chaco graph format used across
// the graph-partitioning ecosystem the paper builds on (ParMETIS, METIS):
//
//	n m 1            (header; "1" = edge weights present)
//	v1 w1 v2 w2 ...  (one line per vertex, 1-based neighbor/weight pairs)
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d 1\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		var sb strings.Builder
		for i, a := range g.Neighbors(v) {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d %d", a.To+1, a.Weight)
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses the METIS graph format. Supported fmt codes: absent or
// "0" (no weights; unit edge weights assumed) and "1" / "001" (edge
// weights). Vertex weights (fmt "10"/"11") are not supported.
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			t := strings.TrimSpace(sc.Text())
			if t == "" && line > 1 {
				return "", true // blank vertex line: isolated vertex
			}
			if strings.HasPrefix(t, "%") {
				continue
			}
			return t, true
		}
		return "", false
	}
	header, ok := next()
	if !ok {
		return nil, fmt.Errorf("graph: empty METIS input")
	}
	fields := strings.Fields(header)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: METIS header %q needs n and m", header)
	}
	n, err1 := strconv.Atoi(fields[0])
	m, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil || n < 0 || m < 0 || n > MaxParseVertices {
		return nil, fmt.Errorf("graph: bad METIS header %q", header)
	}
	weighted := false
	if len(fields) >= 3 {
		switch strings.TrimLeft(fields[2], "0") {
		case "":
			weighted = false
		case "1":
			weighted = true
		default:
			return nil, fmt.Errorf("graph: unsupported METIS fmt %q (vertex weights not supported)", fields[2])
		}
	}
	g := New(n)
	for v := 0; v < n; v++ {
		t, ok := next()
		if !ok {
			return nil, fmt.Errorf("graph: METIS input ends at vertex %d of %d", v, n)
		}
		fs := strings.Fields(t)
		step := 1
		if weighted {
			step = 2
		}
		if len(fs)%step != 0 {
			return nil, fmt.Errorf("graph: METIS line %d has %d fields (weighted=%v)", line, len(fs), weighted)
		}
		for i := 0; i < len(fs); i += step {
			u, err := strconv.Atoi(fs[i])
			if err != nil || u < 1 || u > n {
				return nil, fmt.Errorf("graph: METIS line %d: bad neighbor %q", line, fs[i])
			}
			wt := int64(1)
			if weighted {
				wt, err = strconv.ParseInt(fs[i+1], 10, 32)
				if err != nil || wt <= 0 {
					return nil, fmt.Errorf("graph: METIS line %d: bad weight %q", line, fs[i+1])
				}
			}
			// each undirected edge appears twice; add it on the first sight
			if u-1 > v {
				if err := g.AddEdge(v, u-1, Weight(wt)); err != nil {
					return nil, fmt.Errorf("graph: METIS line %d: %w", line, err)
				}
			}
		}
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: METIS header declared %d edges, read %d", m, g.NumEdges())
	}
	return g, nil
}
