package graph

import (
	"fmt"
	"sort"
)

// Partition maps every vertex to a part (processor) in [0, K).
type Partition struct {
	Part []int32 // Part[v] = part of vertex v
	K    int     // number of parts
}

// NewPartition returns a partition of n vertices into k parts, all initially
// part 0.
func NewPartition(n, k int) *Partition {
	return &Partition{Part: make([]int32, n), K: k}
}

// Validate checks that all assignments are in range and the vertex count
// matches the graph.
func (p *Partition) Validate(g *Graph) error {
	if len(p.Part) != g.NumVertices() {
		return fmt.Errorf("partition: %d assignments for %d vertices", len(p.Part), g.NumVertices())
	}
	for v, pt := range p.Part {
		if int(pt) < 0 || int(pt) >= p.K {
			return fmt.Errorf("partition: vertex %d assigned to out-of-range part %d", v, pt)
		}
	}
	return nil
}

// Sizes returns the number of vertices in each part.
func (p *Partition) Sizes() []int {
	s := make([]int, p.K)
	for _, pt := range p.Part {
		s[pt]++
	}
	return s
}

// Extend appends assignments for newly added vertices.
func (p *Partition) Extend(parts []int32) {
	p.Part = append(p.Part, parts...)
}

// Clone returns a deep copy.
func (p *Partition) Clone() *Partition {
	return &Partition{Part: append([]int32(nil), p.Part...), K: p.K}
}

// EdgeCut returns the number of undirected edges whose endpoints are in
// different parts (total cut edges over the whole graph).
func EdgeCut(g *Graph, p *Partition) int {
	cut := 0
	g.ForEachEdge(func(u, v int, _ Weight) {
		if p.Part[u] != p.Part[v] {
			cut++
		}
	})
	return cut
}

// CutSizes returns, per part, the number of cut edges incident to that part.
// (A single cut edge contributes to two parts; this is the paper's
// "cut-size of a sub-graph".)
func CutSizes(g *Graph, p *Partition) []int {
	cs := make([]int, p.K)
	g.ForEachEdge(func(u, v int, _ Weight) {
		if pu, pv := p.Part[u], p.Part[v]; pu != pv {
			cs[pu]++
			cs[pv]++
		}
	})
	return cs
}

// Imbalance returns max(part size) * K / N, the standard load imbalance
// factor (1.0 = perfectly balanced). Returns 0 for an empty graph.
func Imbalance(g *Graph, p *Partition) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	max := 0
	for _, s := range p.Sizes() {
		if s > max {
			max = s
		}
	}
	return float64(max) * float64(p.K) / float64(n)
}

// Sub is the local sub-graph G_i = (V_i ∪ B_i, E_i) owned by one processor:
// its own ("local") vertices V_i, the external boundary vertices B_i
// (vertices of other parts adjacent to V_i), and every edge with at least
// one endpoint in V_i. Vertices keep their *global* IDs; adjacency is
// exposed through the parent graph, with membership masks here.
type Sub struct {
	Part          int32   // which part this sub-graph is
	Local         []int32 // sorted global IDs of local vertices V_i
	Boundary      []int32 // sorted global IDs of external boundary vertices B_i
	LocalBoundary []int32 // sorted global IDs of local vertices that have a cut edge
	// IsLocal[v] for global v: true iff v ∈ V_i. Sized to the full graph.
	IsLocal []bool
}

// ExtractSub builds the sub-graph structure for part `part` of partition p
// over graph g.
func ExtractSub(g *Graph, p *Partition, part int32) *Sub {
	n := g.NumVertices()
	s := &Sub{Part: part, IsLocal: make([]bool, n)}
	for v := 0; v < n; v++ {
		if p.Part[v] == part {
			s.IsLocal[v] = true
			s.Local = append(s.Local, int32(v))
		}
	}
	extSeen := make(map[int32]bool)
	for _, v := range s.Local {
		hasCut := false
		for _, a := range g.Neighbors(int(v)) {
			if p.Part[a.To] != part {
				hasCut = true
				if !extSeen[a.To] {
					extSeen[a.To] = true
					s.Boundary = append(s.Boundary, a.To)
				}
			}
		}
		if hasCut {
			s.LocalBoundary = append(s.LocalBoundary, v)
		}
	}
	sort.Slice(s.Boundary, func(i, j int) bool { return s.Boundary[i] < s.Boundary[j] })
	return s
}

// InSub reports whether global vertex v participates in the sub-graph
// (local or external boundary).
func (s *Sub) InSub(v int32) bool {
	if s.IsLocal[v] {
		return true
	}
	i := sort.Search(len(s.Boundary), func(i int) bool { return s.Boundary[i] >= v })
	return i < len(s.Boundary) && s.Boundary[i] == v
}
