package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(25, 60, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, g, got)
}

func TestPajekRoundTrip(t *testing.T) {
	g := randomGraph(25, 60, 6)
	var buf bytes.Buffer
	if err := WritePajek(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPajek(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, g, got)
}

func requireSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	want.ForEachEdge(func(u, v int, w Weight) {
		gw, ok := got.EdgeWeight(u, v)
		if !ok || gw != w {
			t.Fatalf("edge {%d,%d,w=%d} lost (got %d, %v)", u, v, w, gw, ok)
		}
	})
}

func TestQuickEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		g := randomGraph(n, m, seed)
		var buf bytes.Buffer
		if WriteEdgeList(&buf, g) != nil {
			return false
		}
		got, err := ReadEdgeList(&buf)
		if err != nil || got.NumEdges() != g.NumEdges() || got.NumVertices() != g.NumVertices() {
			return false
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"x y\n",                   // bad header
		"2 1\n0 0 1\n",            // self loop
		"2 1\n0 1 1\n0 1 1\n",     // duplicate (also wrong count)
		"2 2\n0 1 1\n",            // count mismatch
		"2 1\nnot an edge line\n", // junk
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestReadPajekLenient(t *testing.T) {
	// Pajek files in the wild repeat edges, use *Arcs, and include comments.
	in := `% a comment
*Vertices 4
1 "a"
2 "b"
3 "c"
4 "d"
*Arcs
1 2 3
2 1 3
*Edges
3 4
`
	g, err := ReadPajek(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	w, _ := g.EdgeWeight(0, 1)
	if w != 3 {
		t.Fatalf("weight = %d", w)
	}
	w, _ = g.EdgeWeight(2, 3)
	if w != 1 {
		t.Fatalf("default weight = %d", w)
	}
}

func TestReadPajekErrors(t *testing.T) {
	cases := []string{
		"*Edges\n1 2\n",            // edges before vertices
		"*Vertices x\n",            // bad count
		"*Vertices 2\n*Edges\n1\n", // truncated edge
		"stray line\n",             // content outside any section
	}
	for _, c := range cases {
		if _, err := ReadPajek(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}
