package graph

import (
	"testing"
	"testing/quick"
)

func ringGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)
	}
	return g
}

func TestPartitionValidate(t *testing.T) {
	g := ringGraph(6)
	p := NewPartition(6, 2)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	p.Part[3] = 5
	if err := p.Validate(g); err == nil {
		t.Fatal("out-of-range part should fail validation")
	}
	bad := NewPartition(4, 2)
	if err := bad.Validate(g); err == nil {
		t.Fatal("size mismatch should fail validation")
	}
}

func TestEdgeCutRing(t *testing.T) {
	g := ringGraph(8)
	p := NewPartition(8, 2)
	for v := 4; v < 8; v++ {
		p.Part[v] = 1
	}
	// contiguous halves of a ring: exactly 2 cut edges
	if cut := EdgeCut(g, p); cut != 2 {
		t.Fatalf("EdgeCut = %d, want 2", cut)
	}
	cs := CutSizes(g, p)
	if cs[0] != 2 || cs[1] != 2 {
		t.Fatalf("CutSizes = %v", cs)
	}
}

func TestImbalance(t *testing.T) {
	g := ringGraph(8)
	p := NewPartition(8, 2)
	if im := Imbalance(g, p); im != 2.0 { // all in part 0
		t.Fatalf("Imbalance = %g, want 2", im)
	}
	for v := 4; v < 8; v++ {
		p.Part[v] = 1
	}
	if im := Imbalance(g, p); im != 1.0 {
		t.Fatalf("Imbalance = %g, want 1", im)
	}
}

func TestExtractSub(t *testing.T) {
	g := ringGraph(6)
	p := NewPartition(6, 2)
	for v := 3; v < 6; v++ {
		p.Part[v] = 1
	}
	s0 := ExtractSub(g, p, 0)
	if len(s0.Local) != 3 {
		t.Fatalf("local = %v", s0.Local)
	}
	// part 0 = {0,1,2}; cut edges are {2,3} and {0,5}
	wantBoundary := []int32{3, 5}
	if len(s0.Boundary) != 2 || s0.Boundary[0] != wantBoundary[0] || s0.Boundary[1] != wantBoundary[1] {
		t.Fatalf("boundary = %v, want %v", s0.Boundary, wantBoundary)
	}
	wantLB := []int32{0, 2}
	if len(s0.LocalBoundary) != 2 || s0.LocalBoundary[0] != wantLB[0] || s0.LocalBoundary[1] != wantLB[1] {
		t.Fatalf("local boundary = %v, want %v", s0.LocalBoundary, wantLB)
	}
	if !s0.InSub(1) || !s0.InSub(3) || s0.InSub(4) {
		t.Fatal("InSub membership wrong")
	}
}

// Property: for random graphs and partitions, every part's Sub is
// consistent: locals are disjoint and cover V; every boundary vertex of
// part i is adjacent to a local vertex of part i and belongs elsewhere.
func TestQuickSubConsistency(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%25) + 4
		k := int(kRaw)%3 + 2
		m := 2 * n
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := randomGraph(n, m, seed)
		p := NewPartition(n, k)
		for v := range p.Part {
			p.Part[v] = int32(v % k)
		}
		covered := make([]bool, n)
		for part := 0; part < k; part++ {
			s := ExtractSub(g, p, int32(part))
			for _, v := range s.Local {
				if covered[v] {
					return false
				}
				covered[v] = true
			}
			for _, b := range s.Boundary {
				if p.Part[b] == int32(part) {
					return false
				}
				adj := false
				for _, a := range g.Neighbors(int(b)) {
					if p.Part[a.To] == int32(part) {
						adj = true
					}
				}
				if !adj {
					return false
				}
			}
			for _, v := range s.LocalBoundary {
				if p.Part[v] != int32(part) {
					return false
				}
			}
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionExtendAndClone(t *testing.T) {
	p := NewPartition(3, 4)
	p.Part[1] = 2
	c := p.Clone()
	p.Extend([]int32{3, 1})
	if len(p.Part) != 5 || p.Part[3] != 3 {
		t.Fatalf("Extend wrong: %v", p.Part)
	}
	if len(c.Part) != 3 {
		t.Fatal("clone affected by Extend")
	}
	sizes := p.Sizes()
	if sizes[0] != 2 || sizes[1] != 1 || sizes[2] != 1 || sizes[3] != 1 {
		t.Fatalf("Sizes = %v", sizes)
	}
}
