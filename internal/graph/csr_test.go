package graph

import (
	"testing"
	"testing/quick"
)

func TestCSRRoundTrip(t *testing.T) {
	g := randomGraph(30, 70, 8)
	c := ToCSR(g)
	if c.NumVertices() != 30 || c.NumArcs() != 140 {
		t.Fatalf("CSR shape %d/%d", c.NumVertices(), c.NumArcs())
	}
	back := c.ToGraph()
	requireSameGraph(t, g, back)
}

func TestCSRDegreesMatch(t *testing.T) {
	g := randomGraph(20, 50, 9)
	c := ToCSR(g)
	for v := 0; v < 20; v++ {
		if int(c.Degree(int32(v))) != g.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
	if c.TotalVWgt() != 20 {
		t.Fatalf("TotalVWgt = %d", c.TotalVWgt())
	}
}

func TestCSRNeighborsMatchAdjacency(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := n
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := randomGraph(n, m, seed)
		c := ToCSR(g)
		for v := 0; v < n; v++ {
			seen := map[int32]Weight{}
			c.Neighbors(int32(v), func(to int32, w Weight) { seen[to] = w })
			if len(seen) != g.Degree(v) {
				return false
			}
			for _, a := range g.Neighbors(v) {
				if seen[a.To] != a.Weight {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
