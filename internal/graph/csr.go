package graph

// CSR is a compressed sparse row (adjacency-array) snapshot of a Graph.
// It is immutable and cache-friendly; the multilevel partitioner and the
// Dijkstra kernels operate on CSR views.
type CSR struct {
	XAdj   []int32  // offsets, len N+1
	Adjncy []int32  // concatenated neighbor lists, len 2E
	AdjWgt []Weight // parallel edge weights, len 2E
	VWgt   []int32  // vertex weights (coarsening multiplicities), len N
}

// ToCSR converts g to CSR form with unit vertex weights.
func ToCSR(g *Graph) *CSR {
	n := g.NumVertices()
	c := &CSR{
		XAdj:   make([]int32, n+1),
		Adjncy: make([]int32, 0, 2*g.NumEdges()),
		AdjWgt: make([]Weight, 0, 2*g.NumEdges()),
		VWgt:   make([]int32, n),
	}
	for v := 0; v < n; v++ {
		c.VWgt[v] = 1
		for _, a := range g.Neighbors(v) {
			c.Adjncy = append(c.Adjncy, a.To)
			c.AdjWgt = append(c.AdjWgt, a.Weight)
		}
		c.XAdj[v+1] = int32(len(c.Adjncy))
	}
	return c
}

// NumVertices returns N.
func (c *CSR) NumVertices() int { return len(c.XAdj) - 1 }

// NumArcs returns 2E (directed arc count).
func (c *CSR) NumArcs() int { return len(c.Adjncy) }

// Degree returns the degree of v.
func (c *CSR) Degree(v int32) int32 { return c.XAdj[v+1] - c.XAdj[v] }

// Neighbors iterates over arcs of v, calling fn(to, weight).
func (c *CSR) Neighbors(v int32, fn func(to int32, w Weight)) {
	for i := c.XAdj[v]; i < c.XAdj[v+1]; i++ {
		fn(c.Adjncy[i], c.AdjWgt[i])
	}
}

// TotalVWgt returns the sum of vertex weights.
func (c *CSR) TotalVWgt() int64 {
	var s int64
	for _, w := range c.VWgt {
		s += int64(w)
	}
	return s
}

// ToGraph converts the CSR back to an adjacency-list Graph, dropping vertex
// weights. Each undirected edge is reconstructed once.
func (c *CSR) ToGraph() *Graph {
	n := c.NumVertices()
	g := New(n)
	for v := int32(0); v < int32(n); v++ {
		for i := c.XAdj[v]; i < c.XAdj[v+1]; i++ {
			if c.Adjncy[i] > v {
				g.addEdgeUnchecked(int(v), int(c.Adjncy[i]), c.AdjWgt[i])
			}
		}
	}
	return g
}
