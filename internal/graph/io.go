package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a simple text format:
//
//	<n> <m>
//	<u> <v> <w>        (one line per undirected edge, 0-based IDs)
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(u, v int, wt Weight) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "%d %d %d\n", u, v, wt)
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// MaxParseVertices caps the vertex count any of the text parsers will
// accept (guards against absurd headers allocating unbounded memory).
const MaxParseVertices = 1 << 24

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty edge list input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", sc.Text(), err)
	}
	if n < 0 || n > MaxParseVertices || m < 0 {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, m)
	}
	g := New(n)
	line := 1
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		var u, v int
		var wt int64
		if _, err := fmt.Sscanf(t, "%d %d %d", &u, &v, &wt); err != nil {
			return nil, fmt.Errorf("graph: line %d: %q: %w", line, t, err)
		}
		if err := g.AddEdge(u, v, Weight(wt)); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: header declared %d edges, read %d", m, g.NumEdges())
	}
	return g, nil
}

// WritePajek writes the graph in Pajek .net format (the tool the paper used
// to generate its scale-free inputs). Pajek vertex IDs are 1-based.
func WritePajek(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "*Vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if _, err := fmt.Fprintf(bw, "%d \"v%d\"\n", v+1, v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "*Edges"); err != nil {
		return err
	}
	var werr error
	g.ForEachEdge(func(u, v int, wt Weight) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "%d %d %d\n", u+1, v+1, wt)
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadPajek parses a (subset of the) Pajek .net format: a *Vertices section
// followed by *Edges (undirected) and/or *Arcs (treated as undirected here).
// Missing edge weights default to 1.
func ReadPajek(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	section := ""
	line := 0
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" || strings.HasPrefix(t, "%") {
			continue
		}
		lower := strings.ToLower(t)
		switch {
		case strings.HasPrefix(lower, "*vertices"):
			fields := strings.Fields(t)
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: pajek line %d: missing vertex count", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: pajek line %d: %w", line, err)
			}
			if n < 0 || n > MaxParseVertices {
				return nil, fmt.Errorf("graph: pajek line %d: implausible vertex count %d", line, n)
			}
			g = New(n)
			section = "vertices"
			continue
		case strings.HasPrefix(lower, "*edges"), strings.HasPrefix(lower, "*arcs"):
			section = "edges"
			continue
		case strings.HasPrefix(lower, "*"):
			section = "skip"
			continue
		}
		switch section {
		case "vertices", "skip":
			// vertex labels / unsupported sections: ignored
		case "edges":
			if g == nil {
				return nil, fmt.Errorf("graph: pajek line %d: edges before *Vertices", line)
			}
			fields := strings.Fields(t)
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: pajek line %d: bad edge %q", line, t)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: pajek line %d: bad edge %q", line, t)
			}
			wt := int64(1)
			if len(fields) >= 3 {
				var err error
				wt, err = strconv.ParseInt(fields[2], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graph: pajek line %d: bad weight %q", line, fields[2])
				}
			}
			if u == v || g.HasEdge(u-1, v-1) {
				continue // Pajek files may repeat edges or contain loops; skip
			}
			if err := g.AddEdge(u-1, v-1, Weight(wt)); err != nil {
				return nil, fmt.Errorf("graph: pajek line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("graph: pajek line %d: content outside any section", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: pajek input has no *Vertices section")
	}
	return g, nil
}
