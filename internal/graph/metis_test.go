package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	g := randomGraph(30, 70, 12)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGraph(t, g, got)
}

func TestMETISIsolatedVertices(t *testing.T) {
	g := New(4)
	g.MustAddEdge(1, 2, 5)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 4 || got.NumEdges() != 1 {
		t.Fatalf("shape %d/%d", got.NumVertices(), got.NumEdges())
	}
}

func TestReadMETISUnweighted(t *testing.T) {
	in := "% comment\n3 2\n2 3\n1\n1\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	w, _ := g.EdgeWeight(0, 1)
	if w != 1 {
		t.Fatalf("unweighted edge got weight %d", w)
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"x 2\n",                  // bad header
		"3 2 11\n2\n1\n\n",       // vertex weights unsupported
		"3 2 1\n2 5 3\n1 5\n1\n", // odd field count on weighted line
		"3 2\n9\n\n\n",           // neighbor out of range
		"3 5\n2 3\n1\n1\n",       // edge count mismatch
		"3 2\n2 3\n1\n",          // truncated
	}
	for _, c := range cases {
		if _, err := ReadMETIS(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}
