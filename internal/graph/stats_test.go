package graph

import (
	"testing"
)

func TestStatsWeightProfile(t *testing.T) {
	g := New(4)
	s := Stats(g)
	if !s.UnitWeights || s.MinWeight != 0 || s.MaxWeight != 0 || s.Vertices != 4 || s.Edges != 0 {
		t.Fatalf("edgeless stats = %+v", s)
	}
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	s = Stats(g)
	if !s.UnitWeights || s.MinWeight != 1 || s.MaxWeight != 1 || s.Edges != 2 {
		t.Fatalf("unit stats = %+v", s)
	}
	g.MustAddEdge(2, 3, 5)
	s = Stats(g)
	if s.UnitWeights || s.MinWeight != 1 || s.MaxWeight != 5 {
		t.Fatalf("mixed stats = %+v", s)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(7)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	// 5 and 6 isolated
	comp, k := ConnectedComponents(g)
	if k != 4 {
		t.Fatalf("components = %d, want 4", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if comp[3] != comp[4] {
		t.Fatal("3,4 should share a component")
	}
	if comp[5] == comp[6] {
		t.Fatal("isolated vertices must differ")
	}
	if IsConnected(g) {
		t.Fatal("graph is not connected")
	}
	if !IsConnected(ringGraph(5)) {
		t.Fatal("ring is connected")
	}
	if !IsConnected(New(0)) {
		t.Fatal("empty graph counts as connected")
	}
}

func TestLargestComponent(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(4, 5, 1)
	lc := LargestComponent(g)
	want := []int32{0, 1, 2}
	if len(lc) != 3 {
		t.Fatalf("largest = %v", lc)
	}
	for i := range want {
		if lc[i] != want[i] {
			t.Fatalf("largest = %v, want %v", lc, want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := ringGraph(6)
	sub, order := InducedSubgraph(g, []int32{0, 1, 2, 5})
	if sub.NumVertices() != 4 {
		t.Fatalf("sub has %d vertices", sub.NumVertices())
	}
	// ring edges inside {0,1,2,5}: {0,1},{1,2},{5,0}
	if sub.NumEdges() != 3 {
		t.Fatalf("sub has %d edges", sub.NumEdges())
	}
	if order[0] != 0 || order[3] != 5 {
		t.Fatalf("order = %v", order)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogramAndMean(t *testing.T) {
	g := ringGraph(5)
	h := DegreeHistogram(g)
	if len(h) != 3 || h[2] != 5 {
		t.Fatalf("histogram = %v", h)
	}
	if MeanDegree(g) != 2 {
		t.Fatalf("mean = %g", MeanDegree(g))
	}
	if MeanDegree(New(0)) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestPowerLawExponentDetectsHeavyTail(t *testing.T) {
	// star graph: one hub of degree n-1, leaves of degree 1
	n := 200
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, 1)
	}
	gamma := PowerLawExponent(g, 1)
	if gamma <= 1 || gamma > 5 {
		t.Fatalf("gamma = %g outside plausible range", gamma)
	}
	if PowerLawExponent(New(3), 1) != 0 {
		t.Fatal("edgeless graph should give 0")
	}
}
