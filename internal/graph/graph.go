// Package graph provides the weighted undirected graph representation used
// throughout the anytime-anywhere centrality engine: growable adjacency
// lists, sub-graph extraction with external boundary vertices, compressed
// (CSR) views for partitioning, and Pajek/edge-list I/O.
//
// Vertices are dense integer IDs in [0, N). Edges carry positive integer
// weights (shortest-path lengths are sums of weights). The graph is
// undirected: AddEdge(u, v, w) installs the arc in both adjacency lists.
package graph

import (
	"fmt"
	"sort"
)

// Weight is the type of edge weights. Weights must be positive; shortest
// path computations rely on non-negative edge costs.
type Weight = int32

// Arc is one directed half of an undirected edge: the target vertex and the
// edge weight.
type Arc struct {
	To     int32
	Weight Weight
}

// Graph is a weighted undirected graph over dense vertex IDs [0, N).
// The zero value is an empty graph ready for use.
//
// Graph is not safe for concurrent mutation; concurrent readers are safe
// once mutation has stopped.
type Graph struct {
	adj   [][]Arc
	edges int // number of undirected edges
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]Arc, n)}
}

// NumVertices returns the number of vertices N.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddVertex appends a new isolated vertex and returns its ID.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddVertices appends k new isolated vertices and returns the ID of the
// first one.
func (g *Graph) AddVertices(k int) int {
	first := len(g.adj)
	g.adj = append(g.adj, make([][]Arc, k)...)
	return first
}

// HasEdge reports whether an undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	// Probe the shorter adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, a := range g.adj[u] {
		if int(a.To) == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge {u, v} and whether it exists.
func (g *Graph) EdgeWeight(u, v int) (Weight, bool) {
	if u < 0 || u >= len(g.adj) {
		return 0, false
	}
	for _, a := range g.adj[u] {
		if int(a.To) == v {
			return a.Weight, true
		}
	}
	return 0, false
}

// AddEdge inserts the undirected edge {u, v} with weight w. It returns an
// error if the endpoints are out of range, equal (self-loop), the weight is
// not positive, or the edge already exists.
func (g *Graph) AddEdge(u, v int, w Weight) error {
	n := len(g.adj)
	switch {
	case u < 0 || u >= n || v < 0 || v >= n:
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
	case u == v:
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	case w <= 0:
		return fmt.Errorf("graph: non-positive weight %d on edge {%d,%d}", w, u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.addEdgeUnchecked(u, v, w)
	return nil
}

// MustAddEdge is AddEdge that panics on error; for tests and generators
// that construct edges known to be valid.
func (g *Graph) MustAddEdge(u, v int, w Weight) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// addEdgeUnchecked installs {u,v} without validation.
func (g *Graph) addEdgeUnchecked(u, v int, w Weight) {
	g.adj[u] = append(g.adj[u], Arc{To: int32(v), Weight: w})
	g.adj[v] = append(g.adj[v], Arc{To: int32(u), Weight: w})
	g.edges++
}

// RemoveEdge deletes the undirected edge {u, v}. It returns an error if the
// edge does not exist.
func (g *Graph) RemoveEdge(u, v int) error {
	if !g.removeArc(u, v) || !g.removeArc(v, u) {
		return fmt.Errorf("graph: edge {%d,%d} not present", u, v)
	}
	g.edges--
	return nil
}

func (g *Graph) removeArc(u, v int) bool {
	if u < 0 || u >= len(g.adj) {
		return false
	}
	l := g.adj[u]
	for i, a := range l {
		if int(a.To) == v {
			l[i] = l[len(l)-1]
			g.adj[u] = l[:len(l)-1]
			return true
		}
	}
	return false
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified; it is invalidated by mutation of u's
// edges.
func (g *Graph) Neighbors(u int) []Arc { return g.adj[u] }

// ForEachEdge calls fn(u, v, w) once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int, w Weight)) {
	for u, l := range g.adj {
		for _, a := range l {
			if int(a.To) > u {
				fn(u, int(a.To), a.Weight)
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Arc, len(g.adj)), edges: g.edges}
	for i, l := range g.adj {
		if len(l) > 0 {
			c.adj[i] = append([]Arc(nil), l...)
		}
	}
	return c
}

// SortAdjacency orders every adjacency list by target vertex ID. Useful for
// deterministic iteration and binary-search probes in tests.
func (g *Graph) SortAdjacency() {
	for _, l := range g.adj {
		sort.Slice(l, func(i, j int) bool { return l[i].To < l[j].To })
	}
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() int64 {
	var s int64
	g.ForEachEdge(func(_, _ int, w Weight) { s += int64(w) })
	return s
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	m := 0
	for _, l := range g.adj {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// Validate checks internal consistency: symmetric adjacency, no self loops,
// no duplicates, positive weights, and an edge count matching the lists.
func (g *Graph) Validate() error {
	count := 0
	for u, l := range g.adj {
		seen := make(map[int32]bool, len(l))
		for _, a := range l {
			if int(a.To) < 0 || int(a.To) >= len(g.adj) {
				return fmt.Errorf("graph: vertex %d has arc to out-of-range %d", u, a.To)
			}
			if int(a.To) == u {
				return fmt.Errorf("graph: self-loop on %d", u)
			}
			if seen[a.To] {
				return fmt.Errorf("graph: duplicate arc %d->%d", u, a.To)
			}
			seen[a.To] = true
			if a.Weight <= 0 {
				return fmt.Errorf("graph: non-positive weight on %d->%d", u, a.To)
			}
			w, ok := g.EdgeWeight(int(a.To), u)
			if !ok || w != a.Weight {
				return fmt.Errorf("graph: asymmetric edge %d<->%d", u, a.To)
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with %d arcs", g.edges, count)
	}
	return nil
}
