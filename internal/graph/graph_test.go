package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAddVertex(t *testing.T) {
	g := New(3)
	if g.NumVertices() != 3 || g.NumEdges() != 0 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if id := g.AddVertex(); id != 3 {
		t.Fatalf("AddVertex returned %d", id)
	}
	if first := g.AddVertices(4); first != 4 {
		t.Fatalf("AddVertices returned %d", first)
	}
	if g.NumVertices() != 8 {
		t.Fatalf("got %d vertices", g.NumVertices())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(4)
	cases := []struct {
		u, v int
		w    Weight
	}{
		{-1, 0, 1}, {0, 4, 1}, {1, 1, 1}, {0, 1, 0}, {0, 1, -2},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v, c.w); err == nil {
			t.Errorf("AddEdge(%d,%d,%d) should fail", c.u, c.v, c.w)
		}
	}
	if err := g.AddEdge(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0, 5); err == nil {
		t.Fatal("duplicate (reversed) edge should fail")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestEdgeSymmetry(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 4, 7)
	for _, pair := range [][2]int{{0, 1}, {1, 0}, {1, 4}, {4, 1}} {
		if !g.HasEdge(pair[0], pair[1]) {
			t.Fatalf("missing edge %v", pair)
		}
	}
	w, ok := g.EdgeWeight(4, 1)
	if !ok || w != 7 {
		t.Fatalf("EdgeWeight(4,1) = %d, %v", w, ok)
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d", g.Degree(1))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge still present")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if err := g.RemoveEdge(0, 1); err == nil {
		t.Fatal("double remove should fail")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForEachEdgeVisitsOncePerEdge(t *testing.T) {
	g := randomGraph(40, 120, 99)
	count := 0
	g.ForEachEdge(func(u, v int, w Weight) {
		if u >= v {
			t.Fatalf("ForEachEdge order violated: %d >= %d", u, v)
		}
		count++
	})
	if count != g.NumEdges() {
		t.Fatalf("visited %d, edges %d", count, g.NumEdges())
	}
}

func TestCloneIndependence(t *testing.T) {
	g := randomGraph(20, 40, 1)
	c := g.Clone()
	v := c.AddVertex()
	c.MustAddEdge(0, v, 9)
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("clone shares state")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// randomGraph builds a random simple graph for tests.
func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for g.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, Weight(1+rng.Intn(9)))
	}
	return g
}

// Property: any graph constructed through the public API validates, and
// Clone preserves every edge with its weight.
func TestQuickCloneRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		m := int(mRaw) % (n * (n - 1) / 2)
		g := randomGraph(n, m, seed)
		if g.Validate() != nil {
			return false
		}
		c := g.Clone()
		ok := true
		g.ForEachEdge(func(u, v int, w Weight) {
			cw, has := c.EdgeWeight(u, v)
			if !has || cw != w {
				ok = false
			}
		})
		return ok && c.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDegreeAndTotalWeight(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(0, 3, 4)
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if g.TotalWeight() != 9 {
		t.Fatalf("TotalWeight = %d", g.TotalWeight())
	}
}

func TestSortAdjacency(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 4, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(0, 1, 1)
	g.SortAdjacency()
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1].To >= nb[i].To {
			t.Fatal("adjacency not sorted")
		}
	}
}

func TestAddDistSaturates(t *testing.T) {
	if AddDist(InfDist, 5) != InfDist {
		t.Fatal("InfDist + x should stay InfDist")
	}
	if AddDist(5, InfDist) != InfDist {
		t.Fatal("x + InfDist should stay InfDist")
	}
	if AddDist(InfDist-1, InfDist-1) != InfDist {
		t.Fatal("overflow should saturate")
	}
	if AddDist(3, 4) != 7 {
		t.Fatal("plain add broken")
	}
}
