package graph

import (
	"math"
	"sort"
)

// GraphStats summarizes a graph's size and edge-weight profile.
type GraphStats struct {
	Vertices int
	Edges    int
	// MinWeight/MaxWeight span the edge weights (both 0 on an edgeless
	// graph).
	MinWeight Weight
	MaxWeight Weight
	// UnitWeights reports that every edge weighs exactly 1 (vacuously true
	// on an edgeless graph) — the condition under which Dijkstra
	// degenerates to BFS and the engine's IA phase drops the heap.
	UnitWeights bool
}

// Stats scans the graph once and returns its summary statistics.
func Stats(g *Graph) GraphStats {
	s := GraphStats{Vertices: g.NumVertices(), Edges: g.NumEdges(), UnitWeights: true}
	first := true
	g.ForEachEdge(func(u, v int, w Weight) {
		if first {
			s.MinWeight, s.MaxWeight = w, w
			first = false
		} else {
			if w < s.MinWeight {
				s.MinWeight = w
			}
			if w > s.MaxWeight {
				s.MaxWeight = w
			}
		}
		if w != 1 {
			s.UnitWeights = false
		}
	})
	return s
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func DegreeHistogram(g *Graph) []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		h[g.Degree(v)]++
	}
	return h
}

// MeanDegree returns the average vertex degree.
func MeanDegree(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// PowerLawExponent estimates the exponent gamma of a power-law degree
// distribution P(d) ~ d^-gamma via the Hill maximum-likelihood estimator
// over degrees >= dmin. Used by tests to confirm scale-free generators.
func PowerLawExponent(g *Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var sum float64
	var cnt int
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			cnt++
		}
	}
	if cnt == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(cnt)/sum
}

// ConnectedComponents labels vertices with component IDs (0-based, in order
// of discovery) and returns the labels plus the number of components.
func ConnectedComponents(g *Graph) ([]int32, int) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	next := int32(0)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range g.Neighbors(int(v)) {
				if comp[a.To] == -1 {
					comp[a.To] = next
					stack = append(stack, a.To)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph counts as connected).
func IsConnected(g *Graph) bool {
	if g.NumVertices() == 0 {
		return true
	}
	_, k := ConnectedComponents(g)
	return k == 1
}

// LargestComponent returns the vertex IDs of the largest connected
// component, sorted ascending.
func LargestComponent(g *Graph) []int32 {
	comp, k := ConnectedComponents(g)
	if k == 0 {
		return nil
	}
	sizes := make([]int, k)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	var out []int32
	for v, c := range comp {
		if int(c) == best {
			out = append(out, int32(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InducedSubgraph returns the subgraph induced by the given (sorted or
// unsorted, duplicate-free) vertex set, together with the mapping from new
// local IDs to the original global IDs.
func InducedSubgraph(g *Graph, verts []int32) (*Graph, []int32) {
	idx := make(map[int32]int32, len(verts))
	order := append([]int32(nil), verts...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for i, v := range order {
		idx[v] = int32(i)
	}
	sub := New(len(order))
	for i, v := range order {
		for _, a := range g.Neighbors(int(v)) {
			if j, ok := idx[a.To]; ok && j > int32(i) {
				sub.addEdgeUnchecked(i, int(j), a.Weight)
			}
		}
	}
	return sub, order
}
