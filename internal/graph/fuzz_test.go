package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: the parsers must never panic and, when they accept input,
// must produce a structurally valid graph whose re-serialization parses to
// the same shape.

func FuzzReadEdgeList(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteEdgeList(&buf, ringGraph(5))
	f.Add(buf.String())
	f.Add("3 1\n0 1 2\n")
	f.Add("")
	f.Add("1 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v", verr)
		}
		var out bytes.Buffer
		if werr := WriteEdgeList(&out, g); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		back, rerr := ReadEdgeList(&out)
		if rerr != nil {
			t.Fatalf("round trip: %v", rerr)
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}

func FuzzReadPajek(f *testing.F) {
	var buf bytes.Buffer
	_ = WritePajek(&buf, ringGraph(4))
	f.Add(buf.String())
	f.Add("*Vertices 2\n1 \"a\"\n2 \"b\"\n*Edges\n1 2 3\n")
	f.Add("*Arcs\n1 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadPajek(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v", verr)
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteMETIS(&buf, ringGraph(4))
	f.Add(buf.String())
	f.Add("2 1\n2\n1\n")
	f.Add("% c\n3 0 1\n\n\n\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v", verr)
		}
	})
}
