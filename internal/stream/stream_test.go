package stream

import (
	"bytes"
	"strings"
	"testing"

	"anytime/internal/core"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/sssp"
)

func baseGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, 2, gen.Weights{Min: 1, Max: 3}, seed)
	if err != nil {
		t.Fatal(err)
	}
	gen.Connectify(g, seed)
	return g
}

func TestGenerateValidStream(t *testing.T) {
	base := baseGraph(t, 80, 1)
	s, err := Generate(base, GenConfig{Ticks: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.BaseN != 80 {
		t.Fatalf("base = %d", s.BaseN)
	}
	if s.FinalN() <= 80 {
		t.Fatal("stream added no vertices")
	}
	kinds := map[Kind]int{}
	for _, ev := range s.Events {
		kinds[ev.Kind]++
	}
	for _, k := range []Kind{AddVertex, AddEdge, SetWeight, DelEdge} {
		if kinds[k] == 0 {
			t.Fatalf("no %s events generated: %v", k, kinds)
		}
	}
	// the base graph must be untouched
	if base.NumVertices() != 80 {
		t.Fatal("Generate mutated the base graph")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	base := baseGraph(t, 50, 2)
	a, err := Generate(base, GenConfig{Ticks: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(base, GenConfig{Ticks: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	base := baseGraph(t, 60, 3)
	s, err := Generate(base, GenConfig{Ticks: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseN != s.BaseN || len(got.Events) != len(s.Events) {
		t.Fatalf("shape: %d/%d vs %d/%d", got.BaseN, len(got.Events), s.BaseN, len(s.Events))
	}
	for i := range s.Events {
		if got.Events[i] != s.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got.Events[i], s.Events[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"nonsense\n",
		"base 2\n0 bogus 1\n",
		"base 2\n0 adde 0\n",                   // missing fields
		"base 2\n5 addv 7\n",                   // non-dense id
		"base 2\n5 adde 0 1 2\n1 adde 0 1 1\n", // time disorder
		"base 2\n0 adde 0 1 0\n",               // zero weight
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestWindowing(t *testing.T) {
	s := &Stream{BaseN: 3, Events: []Event{
		{Time: 0, Kind: AddVertex, U: 3},
		{Time: 1, Kind: AddEdge, U: 3, V: 0, W: 1},
		{Time: 5, Kind: AddEdge, U: 0, V: 1, W: 1},
		{Time: 11, Kind: DelEdge, U: 0, V: 1},
	}}
	w := s.Window(5)
	if len(w) != 3 {
		t.Fatalf("windows = %d", len(w))
	}
	if len(w[0]) != 2 || len(w[1]) != 1 || len(w[2]) != 1 {
		t.Fatalf("window sizes: %d %d %d", len(w[0]), len(w[1]), len(w[2]))
	}
	if len(s.Window(0)) == 0 { // width 0 falls back to 1
		t.Fatal("zero width broke windowing")
	}
	empty := &Stream{BaseN: 1}
	if empty.Window(5) != nil {
		t.Fatal("empty stream should have no windows")
	}
}

// Replaying a generated stream through the engine must land on exactly the
// oracle state of the fully-applied stream.
func TestReplayMatchesOracle(t *testing.T) {
	base := baseGraph(t, 70, 5)
	s, err := Generate(base, GenConfig{Ticks: 40, Seed: 5, VertexChurnRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.P = 4
	o.Seed = 5
	o.Strategy = core.AutoPS
	e, err := core.New(base, o)
	if err != nil {
		t.Fatal(err)
	}
	windows, err := Replay(e, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if windows == 0 {
		t.Fatal("no windows replayed")
	}
	if !e.Converged() {
		t.Fatal("engine not converged after replay")
	}
	want, err := GrownGraph(base, s)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Graph()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("graph shape %d/%d, want %d/%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	want.ForEachEdge(func(u, v int, w graph.Weight) {
		gw, ok := got.EdgeWeight(u, v)
		if !ok || gw != w {
			t.Fatalf("edge {%d,%d,w=%d} mismatch (got %d,%v)", u, v, w, gw, ok)
		}
	})
	// distances must equal the oracle on the final graph
	exact := sssp.APSP(want)
	dist := e.Distances()
	for v := range dist {
		if dist[v] == nil {
			continue // deleted
		}
		for u := range dist[v] {
			if !e.Alive(int32(u)) {
				continue
			}
			if dist[v][u] != exact[v][u] {
				t.Fatalf("dist[%d][%d] = %d, want %d", v, u, dist[v][u], exact[v][u])
			}
		}
	}
}

func TestReplayBaseMismatch(t *testing.T) {
	base := baseGraph(t, 30, 7)
	s, err := Generate(base, GenConfig{Ticks: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	other := baseGraph(t, 25, 8)
	o := core.NewOptions()
	o.P = 2
	e, err := core.New(other, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(e, s, 5); err == nil {
		t.Fatal("base mismatch accepted")
	}
}

// Regression: delete-then-re-add of the same edge within one window must
// preserve stream order (the edge exists at the end).
func TestReplayPreservesOrderWithinWindow(t *testing.T) {
	base := graph.New(4)
	base.MustAddEdge(0, 1, 2)
	base.MustAddEdge(1, 2, 1)
	base.MustAddEdge(2, 3, 1)
	base.MustAddEdge(3, 0, 1)
	s := &Stream{BaseN: 4, Events: []Event{
		{Time: 0, Kind: DelEdge, U: 0, V: 1},
		{Time: 0, Kind: AddEdge, U: 0, V: 1, W: 5}, // re-added, heavier
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	o := core.NewOptions()
	o.P = 2
	e, err := core.New(base, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(e, s, 10); err != nil {
		t.Fatal(err)
	}
	w, ok := e.Graph().EdgeWeight(0, 1)
	if !ok || w != 5 {
		t.Fatalf("edge {0,1} = %d,%v; want 5,true", w, ok)
	}
	want, _ := GrownGraph(base, s)
	exact := sssp.APSP(want)
	dist := e.Distances()
	for v := range dist {
		for u := range dist[v] {
			if dist[v][u] != exact[v][u] {
				t.Fatalf("dist[%d][%d] = %d, want %d", v, u, dist[v][u], exact[v][u])
			}
		}
	}
}
