// Package stream models the paper's motivating setting — a network that
// keeps changing while the analysis runs — as replayable, timestamped
// dynamic-graph event streams: vertices joining (with their edges), new
// relationships forming, weights drifting, edges and vertices departing.
// Streams can be generated synthetically (growth with churn), serialized
// to a line-oriented text format, and replayed into the engine in time
// windows, each window becoming one recombination-step change event.
package stream

import (
	"bufio"
	"fmt"
	"io"

	"anytime/internal/graph"
)

// Kind enumerates the dynamic event kinds.
type Kind uint8

const (
	// AddVertex introduces vertex U (IDs must be dense and increasing).
	AddVertex Kind = iota
	// AddEdge adds edge {U, V} with weight W. Either endpoint may be a
	// vertex introduced earlier in the stream.
	AddEdge
	// SetWeight changes the weight of existing edge {U, V} to W.
	SetWeight
	// DelEdge removes edge {U, V}.
	DelEdge
	// DelVertex removes vertex U with all incident edges.
	DelVertex
)

func (k Kind) String() string {
	switch k {
	case AddVertex:
		return "addv"
	case AddEdge:
		return "adde"
	case SetWeight:
		return "setw"
	case DelEdge:
		return "dele"
	case DelVertex:
		return "delv"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind parses the textual event-kind names used by the stream text
// format and the serving layer's JSON wire format.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "addv":
		return AddVertex, nil
	case "adde":
		return AddEdge, nil
	case "setw":
		return SetWeight, nil
	case "dele":
		return DelEdge, nil
	case "delv":
		return DelVertex, nil
	default:
		return 0, fmt.Errorf("stream: unknown event kind %q", s)
	}
}

// Event is one timestamped change.
type Event struct {
	Time int64 // logical timestamp, non-decreasing within a stream
	Kind Kind
	U, V int32
	W    graph.Weight
}

// Stream is an ordered sequence of events over a base graph of BaseN
// vertices (the graph that exists before the stream starts).
type Stream struct {
	BaseN  int
	Events []Event
}

// Validate checks ordering, ID density and reference validity by dry-run.
func (s *Stream) Validate() error {
	n := s.BaseN
	if n < 0 {
		return fmt.Errorf("stream: negative base size")
	}
	last := int64(-1 << 62)
	deleted := map[int32]bool{}
	for i, ev := range s.Events {
		if ev.Time < last {
			return fmt.Errorf("stream: event %d out of time order", i)
		}
		last = ev.Time
		switch ev.Kind {
		case AddVertex:
			if int(ev.U) != n {
				return fmt.Errorf("stream: event %d adds vertex %d, expected %d", i, ev.U, n)
			}
			n++
		case AddEdge, SetWeight:
			if err := checkPair(i, ev, n, deleted); err != nil {
				return err
			}
			if ev.W <= 0 {
				return fmt.Errorf("stream: event %d has non-positive weight", i)
			}
		case DelEdge:
			if err := checkPair(i, ev, n, deleted); err != nil {
				return err
			}
		case DelVertex:
			if int(ev.U) >= n || ev.U < 0 || deleted[ev.U] {
				return fmt.Errorf("stream: event %d deletes invalid vertex %d", i, ev.U)
			}
			deleted[ev.U] = true
		default:
			return fmt.Errorf("stream: event %d has unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

func checkPair(i int, ev Event, n int, deleted map[int32]bool) error {
	if ev.U < 0 || ev.V < 0 || int(ev.U) >= n || int(ev.V) >= n || ev.U == ev.V {
		return fmt.Errorf("stream: event %d references invalid pair {%d,%d}", i, ev.U, ev.V)
	}
	if deleted[ev.U] || deleted[ev.V] {
		return fmt.Errorf("stream: event %d references deleted vertex", i)
	}
	return nil
}

// FinalN returns the vertex count after the whole stream applies.
func (s *Stream) FinalN() int {
	n := s.BaseN
	for _, ev := range s.Events {
		if ev.Kind == AddVertex {
			n++
		}
	}
	return n
}

// Apply replays the whole stream onto a plain graph (the sequential
// oracle's view). g must have exactly BaseN vertices.
func (s *Stream) Apply(g *graph.Graph) error {
	if g.NumVertices() != s.BaseN {
		return fmt.Errorf("stream: graph has %d vertices, stream base is %d", g.NumVertices(), s.BaseN)
	}
	for i, ev := range s.Events {
		var err error
		switch ev.Kind {
		case AddVertex:
			g.AddVertex()
		case AddEdge:
			if !g.HasEdge(int(ev.U), int(ev.V)) {
				err = g.AddEdge(int(ev.U), int(ev.V), ev.W)
			}
		case SetWeight:
			if g.HasEdge(int(ev.U), int(ev.V)) {
				if err = g.RemoveEdge(int(ev.U), int(ev.V)); err == nil {
					err = g.AddEdge(int(ev.U), int(ev.V), ev.W)
				}
			}
		case DelEdge:
			if g.HasEdge(int(ev.U), int(ev.V)) {
				err = g.RemoveEdge(int(ev.U), int(ev.V))
			}
		case DelVertex:
			for _, a := range append([]graph.Arc(nil), g.Neighbors(int(ev.U))...) {
				if err = g.RemoveEdge(int(ev.U), int(a.To)); err != nil {
					break
				}
			}
		}
		if err != nil {
			return fmt.Errorf("stream: applying event %d (%s): %w", i, ev.Kind, err)
		}
	}
	return nil
}

// Write serializes the stream as text:
//
//	base <BaseN>
//	<time> <kind> <u> [<v> <w>]
func Write(w io.Writer, s *Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "base %d\n", s.BaseN); err != nil {
		return err
	}
	for _, ev := range s.Events {
		var err error
		switch ev.Kind {
		case AddVertex:
			_, err = fmt.Fprintf(bw, "%d %s %d\n", ev.Time, ev.Kind, ev.U)
		case DelVertex:
			_, err = fmt.Fprintf(bw, "%d %s %d\n", ev.Time, ev.Kind, ev.U)
		case DelEdge:
			_, err = fmt.Fprintf(bw, "%d %s %d %d\n", ev.Time, ev.Kind, ev.U, ev.V)
		default:
			_, err = fmt.Fprintf(bw, "%d %s %d %d %d\n", ev.Time, ev.Kind, ev.U, ev.V, ev.W)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format written by Write and validates the stream.
func Read(r io.Reader) (*Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("stream: empty input")
	}
	s := &Stream{}
	if _, err := fmt.Sscanf(sc.Text(), "base %d", &s.BaseN); err != nil {
		return nil, fmt.Errorf("stream: bad header %q: %w", sc.Text(), err)
	}
	if s.BaseN < 0 || s.BaseN > graph.MaxParseVertices {
		return nil, fmt.Errorf("stream: implausible base size %d", s.BaseN)
	}
	line := 1
	for sc.Scan() {
		line++
		t := sc.Text()
		if len(t) == 0 || t[0] == '#' {
			continue
		}
		var ts int64
		var kindStr string
		if _, err := fmt.Sscanf(t, "%d %s", &ts, &kindStr); err != nil {
			return nil, fmt.Errorf("stream: line %d: %q: %w", line, t, err)
		}
		k, err := ParseKind(kindStr)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", line, err)
		}
		ev := Event{Time: ts, Kind: k}
		switch k {
		case AddVertex, DelVertex:
			if _, err := fmt.Sscanf(t, "%d %s %d", &ts, &kindStr, &ev.U); err != nil {
				return nil, fmt.Errorf("stream: line %d: %w", line, err)
			}
		case DelEdge:
			if _, err := fmt.Sscanf(t, "%d %s %d %d", &ts, &kindStr, &ev.U, &ev.V); err != nil {
				return nil, fmt.Errorf("stream: line %d: %w", line, err)
			}
		default:
			var w int64
			if _, err := fmt.Sscanf(t, "%d %s %d %d %d", &ts, &kindStr, &ev.U, &ev.V, &w); err != nil {
				return nil, fmt.Errorf("stream: line %d: %w", line, err)
			}
			ev.W = graph.Weight(w)
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Window groups events into half-open time windows of the given width,
// preserving order. Empty windows are skipped; each returned slice is a
// sub-slice of Events.
func (s *Stream) Window(width int64) [][]Event {
	if len(s.Events) == 0 {
		return nil
	}
	if width <= 0 {
		width = 1
	}
	var out [][]Event
	start := 0
	bucket := s.Events[0].Time / width
	for i, ev := range s.Events {
		b := ev.Time / width
		if b != bucket {
			out = append(out, s.Events[start:i])
			start = i
			bucket = b
		}
	}
	out = append(out, s.Events[start:])
	return out
}
