package stream

import (
	"bytes"
	"strings"
	"testing"
)

// The stream parser must never panic, and accepted streams must validate
// and round-trip.
func FuzzRead(f *testing.F) {
	f.Add("base 3\n0 addv 3\n0 adde 3 0 2\n1 setw 3 0 1\n2 dele 3 0\n3 delv 3\n")
	f.Add("base 0\n")
	f.Add("")
	f.Add("base 2\n0 adde 0 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted invalid stream: %v", verr)
		}
		var buf bytes.Buffer
		if werr := Write(&buf, s); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip: %v", rerr)
		}
		if len(back.Events) != len(s.Events) || back.BaseN != s.BaseN {
			t.Fatal("round trip changed the stream")
		}
	})
}
