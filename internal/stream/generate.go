package stream

import (
	"fmt"
	"math"
	"math/rand"

	"anytime/internal/graph"
)

// GenConfig parameterizes synthetic stream generation: a growth-with-churn
// process over a base graph, mirroring the evolving social networks of the
// paper's introduction.
type GenConfig struct {
	// Ticks is the number of logical time steps (default 100).
	Ticks int
	// JoinsPerTick is the expected number of new vertices per tick
	// (default 1). Each joiner attaches preferentially with AttachEdges
	// edges.
	JoinsPerTick float64
	// AttachEdges per joining vertex (default 2).
	AttachEdges int
	// NewEdgeRate is the expected number of new edges between existing
	// vertices per tick (default 0.5).
	NewEdgeRate float64
	// RewireRate is the expected number of weight changes per tick
	// (default 0.2).
	RewireRate float64
	// ChurnRate is the expected number of edge deletions per tick
	// (default 0.1); VertexChurnRate the expected vertex departures
	// (default 0.02).
	ChurnRate       float64
	VertexChurnRate float64
	// MaxWeight bounds random edge weights (default 4).
	MaxWeight graph.Weight
	Seed      int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Ticks == 0 {
		c.Ticks = 100
	}
	if c.JoinsPerTick == 0 {
		c.JoinsPerTick = 1
	}
	if c.AttachEdges == 0 {
		c.AttachEdges = 2
	}
	if c.NewEdgeRate == 0 {
		c.NewEdgeRate = 0.5
	}
	if c.RewireRate == 0 {
		c.RewireRate = 0.2
	}
	if c.ChurnRate == 0 {
		c.ChurnRate = 0.1
	}
	if c.VertexChurnRate == 0 {
		c.VertexChurnRate = 0.02
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 4
	}
	return c
}

// Generate produces a validated synthetic stream over the given base
// graph. The base graph is not modified; generation tracks a private
// shadow copy to keep every event valid (no dangling references, no
// duplicate edges).
func Generate(base *graph.Graph, cfg GenConfig) (*Stream, error) {
	cfg = cfg.withDefaults()
	if base.NumVertices() == 0 {
		return nil, fmt.Errorf("stream: empty base graph")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	shadow := base.Clone()
	alive := make([]bool, shadow.NumVertices())
	for i := range alive {
		alive[i] = true
	}
	s := &Stream{BaseN: base.NumVertices()}
	emit := func(ev Event) { s.Events = append(s.Events, ev) }

	// degree-proportional sampling list over the shadow graph
	pickPreferential := func() int32 {
		// rebuild lazily: acceptable at stream-generation scale
		var targets []int32
		for v := 0; v < shadow.NumVertices(); v++ {
			if !alive[v] {
				continue
			}
			d := shadow.Degree(v) + 1 // +1 keeps isolated vertices reachable
			for i := 0; i < d; i++ {
				targets = append(targets, int32(v))
			}
		}
		return targets[rng.Intn(len(targets))]
	}
	poisson := func(mean float64) int {
		// Knuth's algorithm; the means here are small
		limit := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= limit || k > 50 {
				return k
			}
			k++
		}
	}
	weight := func() graph.Weight { return 1 + graph.Weight(rng.Intn(int(cfg.MaxWeight))) }
	randomEdge := func() (int32, int32, bool) {
		// reservoir-sample one live edge
		var eu, ev int32
		cnt := 0
		shadow.ForEachEdge(func(u, v int, _ graph.Weight) {
			if !alive[u] || !alive[v] {
				return
			}
			cnt++
			if rng.Intn(cnt) == 0 {
				eu, ev = int32(u), int32(v)
			}
		})
		return eu, ev, cnt > 0
	}

	for tick := 0; tick < cfg.Ticks; tick++ {
		t := int64(tick)
		for j := poisson(cfg.JoinsPerTick); j > 0; j-- {
			nv := int32(shadow.AddVertex())
			alive = append(alive, true)
			emit(Event{Time: t, Kind: AddVertex, U: nv})
			for e := 0; e < cfg.AttachEdges; e++ {
				tgt := pickPreferential()
				if tgt == nv || shadow.HasEdge(int(nv), int(tgt)) {
					continue
				}
				w := weight()
				shadow.MustAddEdge(int(nv), int(tgt), w)
				emit(Event{Time: t, Kind: AddEdge, U: nv, V: tgt, W: w})
			}
		}
		for j := poisson(cfg.NewEdgeRate); j > 0; j-- {
			u, v := pickPreferential(), pickPreferential()
			if u == v || shadow.HasEdge(int(u), int(v)) {
				continue
			}
			w := weight()
			shadow.MustAddEdge(int(u), int(v), w)
			emit(Event{Time: t, Kind: AddEdge, U: u, V: v, W: w})
		}
		for j := poisson(cfg.RewireRate); j > 0; j-- {
			if u, v, ok := randomEdge(); ok {
				w := weight()
				if err := shadow.RemoveEdge(int(u), int(v)); err == nil {
					shadow.MustAddEdge(int(u), int(v), w)
					emit(Event{Time: t, Kind: SetWeight, U: u, V: v, W: w})
				}
			}
		}
		for j := poisson(cfg.ChurnRate); j > 0; j-- {
			if u, v, ok := randomEdge(); ok {
				if err := shadow.RemoveEdge(int(u), int(v)); err == nil {
					emit(Event{Time: t, Kind: DelEdge, U: u, V: v})
				}
			}
		}
		for j := poisson(cfg.VertexChurnRate); j > 0; j-- {
			v := pickPreferential()
			// keep the base population: only churn stream-added vertices
			if int(v) < s.BaseN {
				continue
			}
			for _, a := range append([]graph.Arc(nil), shadow.Neighbors(int(v))...) {
				if err := shadow.RemoveEdge(int(v), int(a.To)); err != nil {
					return nil, err
				}
			}
			alive[v] = false
			emit(Event{Time: t, Kind: DelVertex, U: v})
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("stream: generated stream invalid: %w", err)
	}
	return s, nil
}
