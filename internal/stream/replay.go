package stream

import (
	"fmt"

	"anytime/internal/change"
	"anytime/internal/core"
	"anytime/internal/graph"
)

// Replay drives an engine from a stream: events are grouped into time
// windows of the given width; each window is converted into an ordered
// sequence of engine change events (one vertex batch for the window's
// joins and their edges, plus edge/weight/deletion operations in stream
// order) and queued, followed by one recombination step; a final Run
// converges the engine. The engine must have been built over the stream's
// base graph.
//
// Returns the number of windows replayed.
func Replay(e *core.Engine, s *Stream, window int64) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	windows := s.Window(window)
	nextID := int32(e.Graph().NumVertices())
	if int(nextID) != s.BaseN {
		return 0, fmt.Errorf("stream: engine graph has %d vertices, stream base is %d",
			nextID, s.BaseN)
	}
	for wi, evs := range windows {
		if err := QueueWindow(e, evs, &nextID); err != nil {
			return wi, fmt.Errorf("stream: window %d: %w", wi, err)
		}
		e.Step()
	}
	e.Run()
	return len(windows), nil
}

// QueueWindow converts one window of events into engine change events and
// queues them, preserving stream order: the window's vertex additions form
// one batch anchored at the first join (edges among new vertices become
// internal edges, edges to existing vertices external ones); operations on
// pre-existing vertices stay separate events in their original order,
// coalescing consecutive runs of the same kind. nextID is the global ID the
// next stream join will receive; it is advanced past the window's joins.
// Replay uses it per time window; the serving driver uses it to feed
// admitted live events into the engine between RC steps.
func QueueWindow(e *core.Engine, evs []Event, nextID *int32) error {
	firstNew := *nextID
	var ordered []change.Event
	var batch *change.VertexBatch

	isNew := func(v int32) bool { return v >= firstNew && batch != nil }
	local := func(v int32) int32 { return v - firstNew }
	last := func() *change.Event {
		if len(ordered) == 0 {
			return nil
		}
		return &ordered[len(ordered)-1]
	}

	for _, ev := range evs {
		switch ev.Kind {
		case AddVertex:
			if ev.U != *nextID {
				return fmt.Errorf("non-dense vertex id %d (expected %d)", ev.U, *nextID)
			}
			if batch == nil {
				batch = &change.VertexBatch{}
				ordered = append(ordered, change.Event{Batch: batch})
			}
			batch.NumVertices++
			*nextID++
		case AddEdge:
			switch {
			case isNew(ev.U) && isNew(ev.V):
				batch.Internal = append(batch.Internal, change.InternalEdge{
					A: local(ev.U), B: local(ev.V), Weight: ev.W,
				})
			case isNew(ev.U):
				batch.External = append(batch.External, change.ExternalEdge{
					New: local(ev.U), Existing: ev.V, Weight: ev.W,
				})
			case isNew(ev.V):
				batch.External = append(batch.External, change.ExternalEdge{
					New: local(ev.V), Existing: ev.U, Weight: ev.W,
				})
			default:
				if l := last(); l != nil && l.EdgeAdds != nil {
					l.EdgeAdds = append(l.EdgeAdds, change.EdgeAdd{U: ev.U, V: ev.V, Weight: ev.W})
				} else {
					ordered = append(ordered, change.Event{
						EdgeAdds: []change.EdgeAdd{{U: ev.U, V: ev.V, Weight: ev.W}},
					})
				}
			}
		case SetWeight:
			if l := last(); l != nil && l.WeightChanges != nil {
				l.WeightChanges = append(l.WeightChanges, change.EdgeWeight{U: ev.U, V: ev.V, Weight: ev.W})
			} else {
				ordered = append(ordered, change.Event{
					WeightChanges: []change.EdgeWeight{{U: ev.U, V: ev.V, Weight: ev.W}},
				})
			}
		case DelEdge:
			if l := last(); l != nil && l.EdgeDels != nil {
				l.EdgeDels = append(l.EdgeDels, change.EdgeDel{U: ev.U, V: ev.V})
			} else {
				ordered = append(ordered, change.Event{
					EdgeDels: []change.EdgeDel{{U: ev.U, V: ev.V}},
				})
			}
		case DelVertex:
			ordered = append(ordered, change.Event{VertexDel: &change.VertexDel{V: ev.U}})
		}
	}
	for _, evq := range ordered {
		var err error
		switch {
		case evq.Batch != nil:
			err = e.QueueBatch(evq.Batch)
		case evq.EdgeAdds != nil:
			err = e.QueueEdgeAdds(evq.EdgeAdds...)
		case evq.WeightChanges != nil:
			err = e.QueueEdgeWeightChanges(evq.WeightChanges...)
		case evq.EdgeDels != nil:
			err = e.QueueEdgeDels(evq.EdgeDels...)
		case evq.VertexDel != nil:
			err = e.QueueVertexDel(evq.VertexDel.V)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// GrownGraph returns the base graph grown by the full stream (the oracle's
// final view), leaving base untouched.
func GrownGraph(base *graph.Graph, s *Stream) (*graph.Graph, error) {
	g := base.Clone()
	if err := s.Apply(g); err != nil {
		return nil, err
	}
	return g, nil
}
