package core

import (
	"testing"

	"anytime/internal/change"
	"anytime/internal/gen"
)

// dynamicScenario drives an engine through the dynamic events the RC worker
// pool must survive: static convergence, a vertex batch, edge deletions
// (the IA-reset path), and an explicit rebalance (row migration).
func dynamicScenario(t *testing.T, workers int) *Engine {
	return dynamicScenarioTile(t, workers, 0) // 0 = default tile size
}

func dynamicScenarioTile(t *testing.T, workers, tile int) *Engine {
	return dynamicScenarioMask(t, workers, tile, false)
}

func dynamicScenarioMask(t *testing.T, workers, tile int, noMask bool) *Engine {
	t.Helper()
	g := testGraph(t, 120, 21)
	o := defaultTestOptions(4, 21)
	o.Workers = workers
	o.TileSize = tile
	o.NoFrontierMask = noMask
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()

	b, err := gen.PreferentialBatch(e.Graph(), 10, 2, 1, gen.Weights{Min: 1, Max: 4}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()

	// delete two edges incident to vertex 0 (they exist: BA graphs connect
	// every vertex, and deleting a missing edge would be a silent no-op)
	nbr := e.Graph().Neighbors(0)
	if len(nbr) < 2 {
		t.Fatalf("vertex 0 has %d neighbors", len(nbr))
	}
	dels := []change.EdgeDel{
		{U: 0, V: nbr[0].To},
		{U: 0, V: nbr[1].To},
	}
	if err := e.QueueEdgeDels(dels...); err != nil {
		t.Fatal(err)
	}
	e.Run()

	e.QueueRebalance()
	e.Run()

	if !e.Converged() {
		t.Fatalf("workers=%d: not converged", workers)
	}
	return e
}

// Worker-count invariance: the per-processor worker pool must not change
// results — converged distances and closeness are bit-identical for every
// worker count, and match the sequential oracle. Runs under the -race gate.
func TestWorkerCountInvariance(t *testing.T) {
	ref := dynamicScenario(t, 1)
	requireExact(t, ref)
	refDist := ref.Distances()
	refSnap := ref.Snapshot()
	for _, w := range []int{2, 4, 8} {
		e := dynamicScenario(t, w)
		dist := e.Distances()
		if len(dist) != len(refDist) {
			t.Fatalf("workers=%d: %d rows, want %d", w, len(dist), len(refDist))
		}
		for v := range dist {
			if (dist[v] == nil) != (refDist[v] == nil) {
				t.Fatalf("workers=%d: row presence differs at %d", w, v)
			}
			for u := range dist[v] {
				if dist[v][u] != refDist[v][u] {
					t.Fatalf("workers=%d: dist[%d][%d] = %d, want %d",
						w, v, u, dist[v][u], refDist[v][u])
				}
			}
		}
		snap := e.Snapshot()
		for v := range snap.Closeness {
			if snap.Closeness[v] != refSnap.Closeness[v] {
				t.Fatalf("workers=%d: closeness[%d] = %g, want %g",
					w, v, snap.Closeness[v], refSnap.Closeness[v])
			}
		}
	}
}

// Tile-size and mask invariance: the blocked-refinement tile edge and the
// frontier-mask knob are pure scheduling choices — converged distances and
// closeness must be bit-identical across tile sizes (including a tile
// spanning every row, i.e. untiled), worker counts, and masked-vs-full
// sweeps, and match the sequential oracle. The masked kernels only skip
// compositions the frontier proves non-improving, so every cell of this
// matrix lands on the same numbers. Runs under the -race gate.
func TestTileSizeInvariance(t *testing.T) {
	ref := dynamicScenarioMask(t, 1, 8, false)
	requireExact(t, ref)
	refDist := ref.Distances()
	refSnap := ref.Snapshot()
	for _, tile := range []int{8, 32, 64, 1 << 30 /* full: one tile spans all rows */} {
		for _, w := range []int{1, 4} {
			for _, noMask := range []bool{false, true} {
				if tile == 8 && w == 1 && !noMask {
					continue // the reference run
				}
				e := dynamicScenarioMask(t, w, tile, noMask)
				dist := e.Distances()
				for v := range dist {
					if (dist[v] == nil) != (refDist[v] == nil) {
						t.Fatalf("tile=%d workers=%d noMask=%v: row presence differs at %d", tile, w, noMask, v)
					}
					for u := range dist[v] {
						if dist[v][u] != refDist[v][u] {
							t.Fatalf("tile=%d workers=%d noMask=%v: dist[%d][%d] = %d, want %d",
								tile, w, noMask, v, u, dist[v][u], refDist[v][u])
						}
					}
				}
				snap := e.Snapshot()
				for v := range snap.Closeness {
					if snap.Closeness[v] != refSnap.Closeness[v] {
						t.Fatalf("tile=%d workers=%d noMask=%v: closeness[%d] = %g, want %g",
							tile, w, noMask, v, snap.Closeness[v], refSnap.Closeness[v])
					}
				}
			}
		}
	}
}

func TestQueueEdgeDelsValidation(t *testing.T) {
	g := testGraph(t, 40, 5)
	e, err := New(g, defaultTestOptions(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	bad := []change.EdgeDel{
		{U: -1, V: 2},  // negative endpoint
		{U: 0, V: 40},  // out of range
		{U: 7, V: 7},   // self-loop
		{U: 0, V: 999}, // far out of range
	}
	for _, d := range bad {
		if err := e.QueueEdgeDels(d); err == nil {
			t.Errorf("deletion {%d,%d}: expected error", d.U, d.V)
		}
	}
	if e.QueuedEvents() != 0 {
		t.Fatalf("invalid deletions were queued: %d events", e.QueuedEvents())
	}
	// a batch of invalid deletions must be rejected atomically
	if err := e.QueueEdgeDels(change.EdgeDel{U: 0, V: 1}, change.EdgeDel{U: 3, V: 3}); err == nil {
		t.Error("batch with a self-loop: expected error")
	}
	if e.QueuedEvents() != 0 {
		t.Fatal("partially valid batch was queued")
	}
	// deletions may reference vertices of still-queued batches
	if err := e.QueueBatch(&change.VertexBatch{NumVertices: 3}); err != nil {
		t.Fatal(err)
	}
	if err := e.QueueEdgeDels(change.EdgeDel{U: 1, V: 41}); err != nil {
		t.Errorf("deletion naming a queued vertex: %v", err)
	}
	if err := e.QueueEdgeDels(change.EdgeDel{U: 1, V: 43}); err == nil {
		t.Error("deletion beyond the queued batch: expected error")
	}
}

// Delta shipping must converge to the same (exact) distances as the
// ship-everything ablation while moving fewer bytes, and the step history
// must record which shipped rows were full-width.
func TestDeltaShippingMatchesShipAll(t *testing.T) {
	run := func(shipAll bool) *Engine {
		g := testGraph(t, 150, 9)
		o := defaultTestOptions(4, 9)
		o.ShipAllBoundary = shipAll
		e, err := New(g, o)
		if err != nil {
			t.Fatal(err)
		}
		e.Run()
		b, err := gen.PreferentialBatch(e.Graph(), 8, 2, 1, gen.Weights{Min: 1, Max: 4}, 13)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.QueueBatch(b); err != nil {
			t.Fatal(err)
		}
		e.Run()
		if !e.Converged() {
			t.Fatal("not converged")
		}
		return e
	}
	delta := run(false)
	shipAll := run(true)
	requireExact(t, delta)
	requireExact(t, shipAll)

	bytesOf := func(e *Engine) (total int64, fullRows, rows int) {
		for _, s := range e.History() {
			total += s.Bytes
			fullRows += s.FullRowsShipped
			rows += s.RowsShipped
		}
		return
	}
	dBytes, dFull, dRows := bytesOf(delta)
	aBytes, aFull, aRows := bytesOf(shipAll)
	if dBytes >= aBytes {
		t.Errorf("delta shipping moved %d bytes, ship-all %d", dBytes, aBytes)
	}
	if dFull >= dRows {
		t.Errorf("delta run shipped no windows: %d of %d rows full", dFull, dRows)
	}
	if aFull != aRows {
		t.Errorf("ship-all run recorded %d of %d rows full", aFull, aRows)
	}

	// The first step after IA ships every boundary row in full (fresh rows
	// have unknown change extent).
	first := delta.History()[0]
	if first.RowsShipped == 0 || first.FullRowsShipped != first.RowsShipped {
		t.Errorf("first step shipped %d/%d full rows, want all",
			first.FullRowsShipped, first.RowsShipped)
	}
}

// The relax phase's virtual-time charge divides by the worker count (the
// paper's per-node OpenMP threads); more workers must never slow the
// simulated clock.
func TestWorkerChargeAccounting(t *testing.T) {
	times := make(map[int]int64)
	for _, w := range []int{1, 4} {
		g := testGraph(t, 100, 17)
		o := defaultTestOptions(4, 17)
		o.Workers = w
		e, err := New(g, o)
		if err != nil {
			t.Fatal(err)
		}
		e.Run()
		times[w] = int64(e.Metrics().VirtualTime)
	}
	if times[4] >= times[1] {
		t.Errorf("virtual time with 4 workers (%d) not below 1 worker (%d)",
			times[4], times[1])
	}
}

func TestSplitBlocksCoverage(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for w := 1; w <= 4; w++ {
			b := splitBlocks(n, w)
			if len(b) != w+1 || b[0] != 0 || b[w] != n {
				t.Fatalf("splitBlocks(%d,%d) = %v", n, w, b)
			}
			covered := 0
			for k := 0; k < w; k++ {
				if b[k] > b[k+1] {
					t.Fatalf("splitBlocks(%d,%d) not monotone: %v", n, w, b)
				}
				covered += b[k+1] - b[k]
			}
			if covered != n {
				t.Fatalf("splitBlocks(%d,%d) covers %d", n, w, covered)
			}
		}
	}
}

// Convergence is the anchor of the masked skip rule: once the engine
// reports converged, every row's change frontier must be cleared (the new
// epoch starts empty), and the step history must carry the frontier
// telemetry — masked work when masking is on, none when it is off.
func TestFrontierClearedAtConvergence(t *testing.T) {
	g := testGraph(t, 120, 23)
	e, err := New(g, defaultTestOptions(4, 23))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	// A cold start is all-FAll rows (unknown extent), so the masked path
	// only engages after the first convergence clears the epoch and a
	// dynamic change leaves a sparse frontier behind.
	b, err := gen.PreferentialBatch(e.Graph(), 10, 2, 1, gen.Weights{Min: 1, Max: 4}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.Converged() {
		t.Fatal("not converged")
	}
	for pid, p := range e.procs {
		for _, r := range p.table.Rows() {
			if r.FAll {
				t.Fatalf("proc %d row %d still FAll after convergence", pid, r.Owner)
			}
			if r.F.Any() {
				t.Fatalf("proc %d row %d has frontier bits after convergence", pid, r.Owner)
			}
		}
	}
	var masked int64
	for _, s := range e.History() {
		masked += s.MaskedOps
		if s.FrontierDensity < 0 || s.FrontierDensity > 1 {
			t.Fatalf("step %d: frontier density %g out of range", s.Step, s.FrontierDensity)
		}
	}
	if masked == 0 {
		t.Fatal("no masked ops recorded across the run")
	}

	o := defaultTestOptions(4, 23)
	o.NoFrontierMask = true
	eo, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	eo.Run()
	for _, s := range eo.History() {
		if s.MaskedOps != 0 {
			t.Fatalf("step %d: masked ops %d with masking disabled", s.Step, s.MaskedOps)
		}
	}
}
