package core

import "time"

// TraceEvent is one entry of the engine's execution trace, delivered to
// Options.Trace when set. Events are emitted from the coordinating
// goroutine only (never from inside processor goroutines), in execution
// order.
type TraceEvent struct {
	// Kind is one of "dd", "ia", "rc-step", "change", "converged",
	// "checkpoint", "restore".
	Kind string
	// Step is the RC step counter at emission time.
	Step int
	// Detail is a human-readable summary (counts, strategy names).
	Detail string
	// Virtual is the simulated cluster time at emission.
	Virtual time.Duration
}

// Tracer receives engine trace events. Implementations must be fast; the
// engine calls them synchronously.
type Tracer func(TraceEvent)

// trace emits an event if tracing is enabled.
func (e *Engine) trace(kind, detail string) {
	if e.opts.Trace == nil {
		return
	}
	e.opts.Trace(TraceEvent{
		Kind:    kind,
		Step:    e.step,
		Detail:  detail,
		Virtual: e.mach.VirtualTime(),
	})
}
