package core

import (
	"fmt"
	"time"

	"anytime/internal/obs"
)

// TraceEvent is one entry of the engine's execution trace, delivered to
// Options.Trace when set. Events are emitted from the coordinating
// goroutine only (never from inside processor goroutines), in execution
// order.
type TraceEvent struct {
	// Kind is one of "dd", "ia", "rc-step", "change", "converged",
	// "checkpoint", "restore".
	Kind string
	// Step is the RC step counter at emission time.
	Step int
	// Detail is a human-readable summary (counts, strategy names).
	Detail string
	// Virtual is the simulated cluster time at emission.
	Virtual time.Duration
}

// Tracer receives engine trace events. Implementations must be fast; the
// engine calls them synchronously.
type Tracer func(TraceEvent)

// trace emits an event if tracing is enabled.
func (e *Engine) trace(kind, detail string) {
	if e.opts.Trace == nil {
		return
	}
	e.opts.Trace(TraceEvent{
		Kind:    kind,
		Step:    e.step,
		Detail:  detail,
		Virtual: e.mach.VirtualTime(),
	})
}

// tracef is the lazy formatting variant of trace: the format arguments are
// only evaluated when a tracer is installed, so hot-path call sites cost one
// branch (and zero allocations) when tracing is off.
func (e *Engine) tracef(kind, format string, args ...interface{}) {
	if e.opts.Trace == nil {
		return
	}
	e.trace(kind, fmt.Sprintf(format, args...))
}

// spanMark captures the start of an obs span: a wall offset from the
// tracer's epoch and a virtual-clock reading. The zero value is what a
// disabled tracer produces, and the record helpers ignore it then — so
// instrumented code paths pay a nil check and nothing else when disabled.
type spanMark struct {
	wall, virt time.Duration
}

// mark opens an engine-wide span (virtual clock = cluster max).
func (e *Engine) mark() spanMark {
	if e.opts.Obs == nil {
		return spanMark{}
	}
	return spanMark{wall: e.opts.Obs.Now(), virt: e.mach.VirtualTime()}
}

// span closes an engine-wide span opened by mark.
func (e *Engine) span(k obs.Kind, m spanMark, value int64) {
	tr := e.opts.Obs
	if tr == nil {
		return
	}
	tr.Record(obs.Span{
		Kind:    k,
		Proc:    -1,
		Step:    int32(e.step),
		Wall:    m.wall,
		WallDur: tr.Now() - m.wall,
		Virt:    m.virt,
		VirtDur: e.mach.VirtualTime() - m.virt,
		Value:   value,
	})
}

// spanProcMark closes a span opened with mark (engine-wide clocks) but tags
// it with a processor — for coordinator-run events about one processor,
// such as crashes and rejoins.
func (e *Engine) spanProcMark(k obs.Kind, pid int, m spanMark, value int64) {
	tr := e.opts.Obs
	if tr == nil {
		return
	}
	tr.Record(obs.Span{
		Kind:    k,
		Proc:    int32(pid),
		Step:    int32(e.step),
		Wall:    m.wall,
		WallDur: tr.Now() - m.wall,
		Virt:    m.virt,
		VirtDur: e.mach.VirtualTime() - m.virt,
		Value:   value,
	})
}

// markProc opens a per-processor span (virtual clock = processor pid's).
// Safe from pid's own Parallel body: each processor owns its clock.
func (e *Engine) markProc(pid int) spanMark {
	if e.opts.Obs == nil {
		return spanMark{}
	}
	return spanMark{wall: e.opts.Obs.Now(), virt: e.mach.ProcTime(pid)}
}

// spanProc closes a per-processor span opened by markProc.
func (e *Engine) spanProc(k obs.Kind, pid int, m spanMark, value int64) {
	tr := e.opts.Obs
	if tr == nil {
		return
	}
	tr.Record(obs.Span{
		Kind:    k,
		Proc:    int32(pid),
		Step:    int32(e.step),
		Wall:    m.wall,
		WallDur: tr.Now() - m.wall,
		Virt:    m.virt,
		VirtDur: e.mach.ProcTime(pid) - m.virt,
		Value:   value,
	})
}
