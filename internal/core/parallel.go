package core

import (
	"sync"

	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/kernel"
	"anytime/internal/obs"
)

// This file is the per-processor worker pool of the RC phase: the paper's
// testbed is a hybrid MPI+OpenMP cluster, so each simulated processor
// (goroutine) fans its relax work across opts.Workers worker goroutines —
// the second parallelism layer next to the P-way processor parallelism of
// cluster.Machine.Parallel.
//
// The refine pass is tiled blocked Floyd–Warshall (Venkataraman et al.,
// JEA 2003): pivots are grouped into tiles of opts.TileSize consecutive
// arena rows, and each round splits into
//
//   - phase A (diagonal): the tile's own rows are refined through the
//     tile's active pivots, one pivot at a time in index order. This runs
//     serially — inside the phaser's advance critical section, while the
//     other workers are parked — because tile rows both read and write
//     each other.
//   - phase B (remainder): every row outside the tile is relaxed through
//     the round's active pivots via kernel.MinPlusTile, streaming the
//     pivot rows straight out of the flat dv.Matrix arena. Rows are
//     partitioned into contiguous per-worker blocks, one writer per row;
//     tile rows are read-only during this phase, so no barrier is needed
//     within a round.
//
// That is one barrier per *tile round* instead of the per-pivot barrier a
// naive parallel Floyd–Warshall needs — O(n/B) rounds instead of O(n).
//
// Parallelization preserves the serial semantics exactly, so for a fixed
// tile size, converged distances and every intermediate step are
// bit-identical for any worker count:
//
//   - External relaxation partitions the local rows into contiguous
//     blocks, one writer per row. Deltas are processed in fixed-size
//     chunks (rows outer, chunk deltas inner in delivery order), which
//     keeps each row's relaxation sequence identical to the serial inbox
//     walk while the working set of delta rows stays cache-resident.
//   - The round schedule (which tile, which pivots) is computed only by
//     the phaser leader in the advance critical section, so every worker
//     agrees on it even though `changed` evolves during the pass; phase B
//     applies the round's pivots in the same index order for every row no
//     matter which worker owns the row.
//   - stepOps moves to per-worker scratch merged after the join (phase-A
//     ops accumulate under the phaser lock); `changed` is written at
//     per-worker disjoint row indices.
//
// Across tile sizes the converged state is likewise identical — tiling
// reorders which pivot contributions a row sees first within a step, but
// the converged distances are the unique exact APSP solution — which the
// tile-invariance tests pin.

// phaser is a cyclic barrier for the worker pool: await parks until all n
// workers arrive; the last arrival runs advance before the group is
// released. The mutex ordering makes each worker's writes before await
// visible to every worker after it.
type phaser struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func newPhaser(n int) *phaser {
	ph := &phaser{n: n}
	ph.cond.L = &ph.mu
	return ph
}

func (ph *phaser) await(advance func()) {
	ph.mu.Lock()
	ph.count++
	if ph.count == ph.n {
		if advance != nil {
			advance()
		}
		ph.count = 0
		ph.gen++
		ph.cond.Broadcast()
		ph.mu.Unlock()
		return
	}
	gen := ph.gen
	for gen == ph.gen {
		ph.cond.Wait()
	}
	ph.mu.Unlock()
}

// splitBlocks returns w+1 boundaries splitting [0, n) into w near-equal
// contiguous blocks.
func splitBlocks(n, w int) []int {
	b := make([]int, w+1)
	for k := 0; k <= w; k++ {
		b[k] = k * n / w
	}
	return b
}

// refineRound is one tile round's schedule, computed by the phaser leader
// (or inline when w == 1): the pivot tile's row range and the active
// pivots inside it, as arena row indices plus their owners' global IDs.
// tLo < 0 signals that the pass is over.
type refineRound struct {
	tLo, tHi int
	offs     []int32 // active pivot row indices (arena slots, ascending)
	owners   []int32 // owners[i] = global vertex of pivot offs[i]
	// masks[i] is pivot offs[i]'s frontier bitmask, or nil to force a full
	// sweep through that pivot (masking disabled, ship-all row, or frontier
	// density past the cutover). Decided once by the leader in advanceRound
	// and shared read-only by every phase-B worker; the Bitset is a live
	// view of the pivot row's frontier, whose bits only accumulate, so
	// phase B sees at least the bits present at decision time.
	masks []kernel.Bitset
}

// maskDensityCut is the frontier-density cutover: a pivot whose frontier
// covers more than 1/maskDensityCut of the row width is swept with the
// full-row BCE'd kernel instead — dense early passes keep the streaming
// loop, sparse late passes skip untouched columns entirely.
const maskDensityCut = 4 // mask only below 25% density

// pivotMask returns the frontier mask to use for pivot row pr, or nil when
// a full sweep is required (masking off, unknown change extent, or density
// above the cutover).
func (p *proc) pivotMask(pr *dv.Row) kernel.Bitset {
	if p.maskOff || pr.FAll {
		return nil
	}
	if pr.F.OnesCount()*maskDensityCut > p.table.Cols() {
		return nil
	}
	return pr.F
}

// extMasks decides, once per relax phase, which received deltas' sweeps
// may be frontier-masked: delta i gets its shipped frontier words unless
// masking is off, the sender's change extent was unknown (no words), the
// window is not 64-aligned (bit positions would not line up), or the
// window's frontier is past the density cutover (streaming the full window
// is cheaper than bit-peeling). The per-row decision — whether the
// receiving row's own distance to the sender moved — stays in the inner
// loop, exactly like the pivot-tile kernel's rec.Get(owner) check.
func (p *proc) extMasks(ext []*dv.Delta) []kernel.Bitset {
	if p.maskOff {
		return nil
	}
	ms := make([]kernel.Bitset, len(ext))
	any := false
	for i, br := range ext {
		m := br.F
		if m == nil || br.Lo&63 != 0 {
			continue
		}
		if m.OnesCount()*maskDensityCut > len(br.D) {
			continue
		}
		ms[i] = m
		any = true
	}
	if !any {
		return nil
	}
	return ms
}

// relaxStep runs one processor's relax phase — external-delta relaxation
// followed (optionally) by tiled local refinement — across w worker
// goroutines, returning the total relax ops. w == 1 runs inline with no
// pool. tile is the pivot-tile edge (and external-relax delta chunk size).
func (p *proc) relaxStep(ext []*dv.Delta, refine bool, w, tile int) int64 {
	n := p.table.Len()
	if w > n {
		w = n
	}
	if tile < 1 {
		tile = 1
	}
	p.stepMaskedOps = 0
	extM := p.extMasks(ext)
	if w <= 1 {
		ops, em := p.relaxExternalBlock(ext, extM, 0, n, tile)
		p.stepMaskedOps += em
		if refine {
			ops += p.refineTiled(tile)
		}
		return ops
	}
	bounds := splitBlocks(n, w)
	ops := make([]int64, w)
	masked := make([]int64, w)
	ph := newPhaser(w)
	var (
		round        refineRound
		from         int
		phaseA       int64 // leader-run advance ops, serialized by the phaser lock
		phaseAMasked int64
	)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := bounds[k], bounds[k+1]
			o, mk := p.relaxExternalBlock(ext, extM, lo, hi, tile)
			if refine {
				for {
					// Barrier: the remainder phase reads rows of every
					// block, so all prior-round (and external-relax) writes
					// must be complete; the leader refines the next diagonal
					// tile and publishes the round schedule.
					ph.await(func() {
						ao, am := p.advanceRound(&round, from, tile)
						phaseA += ao
						phaseAMasked += am
						if round.tLo >= 0 {
							from = round.tHi
						}
					})
					if round.tLo < 0 {
						break
					}
					bo, bm := p.phaseB(&round, lo, hi)
					o += bo
					mk += bm
				}
			}
			ops[k] = o
			masked[k] = mk
		}(k)
	}
	wg.Wait()
	total := phaseA
	p.stepMaskedOps += phaseAMasked
	for k, o := range ops {
		total += o
		p.stepMaskedOps += masked[k]
	}
	return total
}

// relaxExternalBlock relaxes local rows [lo, hi) against every received
// boundary delta, in delivery order: for a delta of row b covering columns
// [b.Lo, b.Lo+len(b.D)),
//
//	D(u, t) = min(D(u, t), D(u, b) + D_b(t)).
//
// Deltas are walked in chunks of `tile` so the chunk's delta payloads stay
// cache-resident across the row sweep; within a row, chunk order preserves
// the global delivery order exactly, so results are independent of tile.
//
// masks (from extMasks; may be nil) carries the deltas' shipped frontier
// words: when delta b has one and row u's own distance to b is unchanged
// since the last convergence (u.F bit b clear, no FAll), the sweep visits
// only b's changed columns — the skipped ones hold their convergence-time
// values, so the composition through an unchanged u.D[b] is provably
// non-improving (see internal/kernel/masked.go). Improvements are recorded
// into u's frontier either way — the exact (sparser) form of OR-ing the
// received window in. Returns total ops and the masked-visit subtotal.
func (p *proc) relaxExternalBlock(ext []*dv.Delta, masks []kernel.Bitset, lo, hi, tile int) (int64, int64) {
	rows := p.table.Rows()
	var ops, maskedOps int64
	for base := 0; base < len(ext); base += tile {
		chunk := ext[base:]
		if len(chunk) > tile {
			chunk = chunk[:tile]
		}
		for i := lo; i < hi; i++ {
			u := rows[i]
			uD := u.D
			uNH := u.NH
			rec := u.F
			if p.maskOff {
				rec = nil
			}
			for ci, br := range chunk {
				b := br.Owner
				d := uD[b]
				if d == graph.InfDist {
					continue
				}
				off := int(br.Lo)
				if off >= len(uD) {
					continue
				}
				var mask kernel.Bitset
				if masks != nil {
					mask = masks[base+ci]
				}
				// nhb: first hop toward b; improved paths to t go that way.
				var clo, chi int
				if mask != nil && !u.FAll && !u.F.Get(int(b)) {
					var visited int
					clo, chi, visited = kernel.MinPlusHopsMasked(uD[off:], uNH[off:], br.D, d, uNH[b], mask, rec, off)
					ops += int64(visited)
					maskedOps += int64(visited)
				} else {
					clo, chi = kernel.MinPlusHopsRec(uD[off:], uNH[off:], br.D, d, uNH[b], rec, off)
					ops += int64(len(br.D))
				}
				if clo < chi {
					u.MarkChanged(off+clo, off+chi)
					p.changed[i] = true
				}
			}
		}
	}
	return ops, maskedOps
}

// nextPivot returns the first row index >= from that local refinement must
// pivot — a row that changed this step or entered it with un-propagated
// (dirty) content — or -1 when the pass is over. Single forward scan, as in
// the serial pass.
func (p *proc) nextPivot(from int) int {
	for wi := from; wi < len(p.changed); wi++ {
		if p.changed[wi] || p.pivot[wi] {
			return wi
		}
	}
	return -1
}

// advanceRound computes the next tile round starting the pivot scan at
// `from` (a tile boundary) and runs phase A: the diagonal refinement of
// the tile's own rows through its active pivots, one pivot at a time in
// index order, re-checking activity at visit time exactly like the serial
// forward scan. Rows activated behind the scan cursor are picked up by the
// next refine pass, as before. Each pivot's mask decision is made here —
// once, serially — and published in r.masks so phase B seeds its sweeps
// from the same frontier the diagonal pass used (and extended). Returns
// the phase-A op count and its masked-visit subtotal; r.tLo is set to -1
// when no active pivot remains.
func (p *proc) advanceRound(r *refineRound, from, tile int) (int64, int64) {
	wi := p.nextPivot(from)
	if wi < 0 {
		r.tLo = -1
		return 0, 0
	}
	var tm obs.Span
	if p.tr != nil {
		tm = obs.Span{Kind: obs.KindRCRefineTile, Proc: int32(p.id), Step: p.curStep, Wall: p.tr.Now()}
	}
	n := p.table.Len()
	r.tLo = (wi / tile) * tile // tiles align to a fixed grid
	r.tHi = r.tLo + tile
	if r.tHi > n {
		r.tHi = n
	}
	r.offs = r.offs[:0]
	r.owners = r.owners[:0]
	r.masks = r.masks[:0]
	rows := p.table.Rows()
	var ops, masked int64
	for w := wi; w < r.tHi; w++ {
		if !p.changed[w] && !p.pivot[w] {
			continue
		}
		pr := rows[w]
		mask := p.pivotMask(pr)
		for ui := r.tLo; ui < r.tHi; ui++ {
			if ui == w {
				continue
			}
			u := rows[ui]
			d := u.D[pr.Owner]
			if d == graph.InfDist {
				continue
			}
			var clo, chi int
			if mask != nil && !u.FAll && !u.F.Get(int(pr.Owner)) {
				var visited int
				clo, chi, visited = kernel.MinPlusHopsMasked(u.D, u.NH, pr.D, d, u.NH[pr.Owner], mask, u.F, 0)
				ops += int64(visited)
				masked += int64(visited)
			} else {
				rec := u.F
				if p.maskOff {
					rec = nil
				}
				clo, chi = kernel.MinPlusHopsRec(u.D, u.NH, pr.D, d, u.NH[pr.Owner], rec, 0)
				ops += int64(len(pr.D))
			}
			if clo < chi {
				u.MarkChanged(clo, chi)
				p.changed[ui] = true
			}
		}
		r.offs = append(r.offs, int32(w))
		r.owners = append(r.owners, pr.Owner)
		r.masks = append(r.masks, mask)
	}
	if p.tr != nil {
		// Tile-round spans are wall-only: the LogP charge for the refine
		// work lands at relax-phase granularity, not per round.
		tm.WallDur = p.tr.Now() - tm.Wall
		tm.Value = int64(len(r.offs))
		p.tr.Record(tm)
	}
	return ops, masked
}

// phaseB relaxes the rows [lo, hi) outside the round's tile through the
// round's active pivots (Floyd–Warshall-style):
//
//	D(u, t) = min(D(u, t), D(u, w) + D_w(t))  for each pivot w in order.
//
// The pivot rows are streamed out of the arena; they are never written
// here, so workers only need the one barrier that opened the round.
func (p *proc) phaseB(r *refineRound, lo, hi int) (int64, int64) {
	rows := p.table.Rows()
	arena, stride := p.table.Arena()
	var ops, masked int64
	for ui := lo; ui < hi; ui++ {
		if ui >= r.tLo && ui < r.tHi {
			continue
		}
		u := rows[ui]
		var clo, chi int
		var o int64
		if p.maskOff {
			clo, chi, o = kernel.MinPlusTile(u.D, u.NH, arena, stride, r.offs, r.owners)
		} else {
			var m int64
			clo, chi, o, m = kernel.MinPlusTileMasked(u.D, u.NH, arena, stride, r.offs, r.owners, r.masks, u.F, u.FAll)
			masked += m
		}
		ops += o
		if clo < chi {
			u.MarkChanged(clo, chi)
			p.changed[ui] = true
		}
	}
	return ops, masked
}

// refineTiled is the w == 1 pass: the identical tile-round schedule run
// inline, so worker counts cannot change results.
func (p *proc) refineTiled(tile int) int64 {
	var r refineRound
	var ops int64
	from := 0
	for {
		ao, am := p.advanceRound(&r, from, tile)
		ops += ao
		p.stepMaskedOps += am
		if r.tLo < 0 {
			return ops
		}
		bo, bm := p.phaseB(&r, 0, p.table.Len())
		ops += bo
		p.stepMaskedOps += bm
		from = r.tHi
	}
}
