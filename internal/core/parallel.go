package core

import (
	"sync"

	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/kernel"
	"anytime/internal/obs"
)

// This file is the per-processor worker pool of the RC phase: the paper's
// testbed is a hybrid MPI+OpenMP cluster, so each simulated processor
// (goroutine) fans its relax work across opts.Workers worker goroutines —
// the second parallelism layer next to the P-way processor parallelism of
// cluster.Machine.Parallel.
//
// The refine pass is tiled blocked Floyd–Warshall (Venkataraman et al.,
// JEA 2003): pivots are grouped into tiles of opts.TileSize consecutive
// arena rows, and each round splits into
//
//   - phase A (diagonal): the tile's own rows are refined through the
//     tile's active pivots, one pivot at a time in index order. This runs
//     serially — inside the phaser's advance critical section, while the
//     other workers are parked — because tile rows both read and write
//     each other.
//   - phase B (remainder): every row outside the tile is relaxed through
//     the round's active pivots via kernel.MinPlusTile, streaming the
//     pivot rows straight out of the flat dv.Matrix arena. Rows are
//     partitioned into contiguous per-worker blocks, one writer per row;
//     tile rows are read-only during this phase, so no barrier is needed
//     within a round.
//
// That is one barrier per *tile round* instead of the per-pivot barrier a
// naive parallel Floyd–Warshall needs — O(n/B) rounds instead of O(n).
//
// Parallelization preserves the serial semantics exactly, so for a fixed
// tile size, converged distances and every intermediate step are
// bit-identical for any worker count:
//
//   - External relaxation partitions the local rows into contiguous
//     blocks, one writer per row. Deltas are processed in fixed-size
//     chunks (rows outer, chunk deltas inner in delivery order), which
//     keeps each row's relaxation sequence identical to the serial inbox
//     walk while the working set of delta rows stays cache-resident.
//   - The round schedule (which tile, which pivots) is computed only by
//     the phaser leader in the advance critical section, so every worker
//     agrees on it even though `changed` evolves during the pass; phase B
//     applies the round's pivots in the same index order for every row no
//     matter which worker owns the row.
//   - stepOps moves to per-worker scratch merged after the join (phase-A
//     ops accumulate under the phaser lock); `changed` is written at
//     per-worker disjoint row indices.
//
// Across tile sizes the converged state is likewise identical — tiling
// reorders which pivot contributions a row sees first within a step, but
// the converged distances are the unique exact APSP solution — which the
// tile-invariance tests pin.

// phaser is a cyclic barrier for the worker pool: await parks until all n
// workers arrive; the last arrival runs advance before the group is
// released. The mutex ordering makes each worker's writes before await
// visible to every worker after it.
type phaser struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func newPhaser(n int) *phaser {
	ph := &phaser{n: n}
	ph.cond.L = &ph.mu
	return ph
}

func (ph *phaser) await(advance func()) {
	ph.mu.Lock()
	ph.count++
	if ph.count == ph.n {
		if advance != nil {
			advance()
		}
		ph.count = 0
		ph.gen++
		ph.cond.Broadcast()
		ph.mu.Unlock()
		return
	}
	gen := ph.gen
	for gen == ph.gen {
		ph.cond.Wait()
	}
	ph.mu.Unlock()
}

// splitBlocks returns w+1 boundaries splitting [0, n) into w near-equal
// contiguous blocks.
func splitBlocks(n, w int) []int {
	b := make([]int, w+1)
	for k := 0; k <= w; k++ {
		b[k] = k * n / w
	}
	return b
}

// refineRound is one tile round's schedule, computed by the phaser leader
// (or inline when w == 1): the pivot tile's row range and the active
// pivots inside it, as arena row indices plus their owners' global IDs.
// tLo < 0 signals that the pass is over.
type refineRound struct {
	tLo, tHi int
	offs     []int32 // active pivot row indices (arena slots, ascending)
	owners   []int32 // owners[i] = global vertex of pivot offs[i]
}

// relaxStep runs one processor's relax phase — external-delta relaxation
// followed (optionally) by tiled local refinement — across w worker
// goroutines, returning the total relax ops. w == 1 runs inline with no
// pool. tile is the pivot-tile edge (and external-relax delta chunk size).
func (p *proc) relaxStep(ext []*dv.Delta, refine bool, w, tile int) int64 {
	n := p.table.Len()
	if w > n {
		w = n
	}
	if tile < 1 {
		tile = 1
	}
	if w <= 1 {
		ops := p.relaxExternalBlock(ext, 0, n, tile)
		if refine {
			ops += p.refineTiled(tile)
		}
		return ops
	}
	bounds := splitBlocks(n, w)
	ops := make([]int64, w)
	ph := newPhaser(w)
	var (
		round  refineRound
		from   int
		phaseA int64 // leader-run advance ops, serialized by the phaser lock
	)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := bounds[k], bounds[k+1]
			o := p.relaxExternalBlock(ext, lo, hi, tile)
			if refine {
				for {
					// Barrier: the remainder phase reads rows of every
					// block, so all prior-round (and external-relax) writes
					// must be complete; the leader refines the next diagonal
					// tile and publishes the round schedule.
					ph.await(func() {
						phaseA += p.advanceRound(&round, from, tile)
						if round.tLo >= 0 {
							from = round.tHi
						}
					})
					if round.tLo < 0 {
						break
					}
					o += p.phaseB(&round, lo, hi)
				}
			}
			ops[k] = o
		}(k)
	}
	wg.Wait()
	total := phaseA
	for _, o := range ops {
		total += o
	}
	return total
}

// relaxExternalBlock relaxes local rows [lo, hi) against every received
// boundary delta, in delivery order: for a delta of row b covering columns
// [b.Lo, b.Lo+len(b.D)),
//
//	D(u, t) = min(D(u, t), D(u, b) + D_b(t)).
//
// Deltas are walked in chunks of `tile` so the chunk's delta payloads stay
// cache-resident across the row sweep; within a row, chunk order preserves
// the global delivery order exactly, so results are independent of tile.
func (p *proc) relaxExternalBlock(ext []*dv.Delta, lo, hi, tile int) int64 {
	rows := p.table.Rows()
	var ops int64
	for base := 0; base < len(ext); base += tile {
		chunk := ext[base:]
		if len(chunk) > tile {
			chunk = chunk[:tile]
		}
		for i := lo; i < hi; i++ {
			u := rows[i]
			uD := u.D
			uNH := u.NH
			for _, br := range chunk {
				b := br.Owner
				d := uD[b]
				if d == graph.InfDist {
					continue
				}
				off := int(br.Lo)
				if off >= len(uD) {
					continue
				}
				// nhb: first hop toward b; improved paths to t go that way
				clo, chi := kernel.MinPlusHops(uD[off:], uNH[off:], br.D, d, uNH[b])
				ops += int64(len(br.D))
				if clo < chi {
					u.MarkChanged(off+clo, off+chi)
					p.changed[i] = true
				}
			}
		}
	}
	return ops
}

// nextPivot returns the first row index >= from that local refinement must
// pivot — a row that changed this step or entered it with un-propagated
// (dirty) content — or -1 when the pass is over. Single forward scan, as in
// the serial pass.
func (p *proc) nextPivot(from int) int {
	for wi := from; wi < len(p.changed); wi++ {
		if p.changed[wi] || p.pivot[wi] {
			return wi
		}
	}
	return -1
}

// advanceRound computes the next tile round starting the pivot scan at
// `from` (a tile boundary) and runs phase A: the diagonal refinement of
// the tile's own rows through its active pivots, one pivot at a time in
// index order, re-checking activity at visit time exactly like the serial
// forward scan. Rows activated behind the scan cursor are picked up by the
// next refine pass, as before. Returns the phase-A op count; r.tLo is set
// to -1 when no active pivot remains.
func (p *proc) advanceRound(r *refineRound, from, tile int) int64 {
	wi := p.nextPivot(from)
	if wi < 0 {
		r.tLo = -1
		return 0
	}
	var tm obs.Span
	if p.tr != nil {
		tm = obs.Span{Kind: obs.KindRCRefineTile, Proc: int32(p.id), Step: p.curStep, Wall: p.tr.Now()}
	}
	n := p.table.Len()
	r.tLo = (wi / tile) * tile // tiles align to a fixed grid
	r.tHi = r.tLo + tile
	if r.tHi > n {
		r.tHi = n
	}
	r.offs = r.offs[:0]
	r.owners = r.owners[:0]
	rows := p.table.Rows()
	var ops int64
	for w := wi; w < r.tHi; w++ {
		if !p.changed[w] && !p.pivot[w] {
			continue
		}
		pr := rows[w]
		for ui := r.tLo; ui < r.tHi; ui++ {
			if ui == w {
				continue
			}
			u := rows[ui]
			d := u.D[pr.Owner]
			if d == graph.InfDist {
				continue
			}
			clo, chi := kernel.MinPlusHops(u.D, u.NH, pr.D, d, u.NH[pr.Owner])
			ops += int64(len(pr.D))
			if clo < chi {
				u.MarkChanged(clo, chi)
				p.changed[ui] = true
			}
		}
		r.offs = append(r.offs, int32(w))
		r.owners = append(r.owners, pr.Owner)
	}
	if p.tr != nil {
		// Tile-round spans are wall-only: the LogP charge for the refine
		// work lands at relax-phase granularity, not per round.
		tm.WallDur = p.tr.Now() - tm.Wall
		tm.Value = int64(len(r.offs))
		p.tr.Record(tm)
	}
	return ops
}

// phaseB relaxes the rows [lo, hi) outside the round's tile through the
// round's active pivots (Floyd–Warshall-style):
//
//	D(u, t) = min(D(u, t), D(u, w) + D_w(t))  for each pivot w in order.
//
// The pivot rows are streamed out of the arena; they are never written
// here, so workers only need the one barrier that opened the round.
func (p *proc) phaseB(r *refineRound, lo, hi int) int64 {
	rows := p.table.Rows()
	arena, stride := p.table.Arena()
	var ops int64
	for ui := lo; ui < hi; ui++ {
		if ui >= r.tLo && ui < r.tHi {
			continue
		}
		u := rows[ui]
		clo, chi, o := kernel.MinPlusTile(u.D, u.NH, arena, stride, r.offs, r.owners)
		ops += o
		if clo < chi {
			u.MarkChanged(clo, chi)
			p.changed[ui] = true
		}
	}
	return ops
}

// refineTiled is the w == 1 pass: the identical tile-round schedule run
// inline, so worker counts cannot change results.
func (p *proc) refineTiled(tile int) int64 {
	var r refineRound
	var ops int64
	from := 0
	for {
		ops += p.advanceRound(&r, from, tile)
		if r.tLo < 0 {
			return ops
		}
		ops += p.phaseB(&r, 0, p.table.Len())
		from = r.tHi
	}
}
