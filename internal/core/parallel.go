package core

import (
	"sync"

	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/kernel"
)

// This file is the per-processor worker pool of the RC phase: the paper's
// testbed is a hybrid MPI+OpenMP cluster, so each simulated processor
// (goroutine) fans its relax work across opts.Workers worker goroutines —
// the second parallelism layer next to the P-way processor parallelism of
// cluster.Machine.Parallel.
//
// Parallelization preserves the serial semantics exactly, so converged
// distances (and every intermediate step) are bit-identical for any worker
// count:
//
//   - External relaxation partitions the local rows into contiguous
//     blocks, one writer per row. Swapping the loop nest (per row, relax
//     against every received delta in delivery order) keeps each row's
//     relaxation sequence identical to the serial inbox walk.
//   - Local refinement parallelizes the inner row loop per pivot; a
//     barrier between pivots preserves the Floyd–Warshall dependency
//     structure. The pivot row itself is skipped by every worker, so wD is
//     never written while read. The next pivot is chosen by the last
//     worker to arrive at the barrier — a critical section while all
//     other workers are parked — so every worker agrees on the pivot
//     sequence even though `changed` evolves during the pass.
//   - stepOps moves to per-worker scratch merged after the join; `changed`
//     is written at per-worker disjoint row indices.

// phaser is a cyclic barrier for the worker pool: await parks until all n
// workers arrive; the last arrival runs advance before the group is
// released. The mutex ordering makes each worker's writes before await
// visible to every worker after it.
type phaser struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	gen   uint64
}

func newPhaser(n int) *phaser {
	ph := &phaser{n: n}
	ph.cond.L = &ph.mu
	return ph
}

func (ph *phaser) await(advance func()) {
	ph.mu.Lock()
	ph.count++
	if ph.count == ph.n {
		if advance != nil {
			advance()
		}
		ph.count = 0
		ph.gen++
		ph.cond.Broadcast()
		ph.mu.Unlock()
		return
	}
	gen := ph.gen
	for gen == ph.gen {
		ph.cond.Wait()
	}
	ph.mu.Unlock()
}

// splitBlocks returns w+1 boundaries splitting [0, n) into w near-equal
// contiguous blocks.
func splitBlocks(n, w int) []int {
	b := make([]int, w+1)
	for k := 0; k <= w; k++ {
		b[k] = k * n / w
	}
	return b
}

// relaxStep runs one processor's relax phase — external-delta relaxation
// followed (optionally) by local refinement — across w worker goroutines,
// returning the total relax ops. w == 1 runs inline with no pool.
func (p *proc) relaxStep(ext []*dv.Delta, refine bool, w int) int64 {
	n := p.table.Len()
	if w > n {
		w = n
	}
	if w <= 1 {
		ops := p.relaxExternalBlock(ext, 0, n)
		if refine {
			ops += p.refineSerial()
		}
		return ops
	}
	bounds := splitBlocks(n, w)
	ops := make([]int64, w)
	ph := newPhaser(w)
	cur := 0 // shared pivot cursor, advanced only inside ph.await
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := bounds[k], bounds[k+1]
			o := p.relaxExternalBlock(ext, lo, hi)
			if refine {
				// Barrier: refinement reads rows of every block, so all
				// external relaxation must be complete; the leader picks
				// the first pivot.
				ph.await(func() { cur = p.nextPivot(0) })
				for {
					wi := cur
					if wi < 0 {
						break
					}
					o += p.refineBlock(wi, lo, hi)
					ph.await(func() { cur = p.nextPivot(wi + 1) })
				}
			}
			ops[k] = o
		}(k)
	}
	wg.Wait()
	var total int64
	for _, o := range ops {
		total += o
	}
	return total
}

// relaxExternalBlock relaxes local rows [lo, hi) against every received
// boundary delta, in delivery order: for a delta of row b covering columns
// [b.Lo, b.Lo+len(b.D)),
//
//	D(u, t) = min(D(u, t), D(u, b) + D_b(t)).
func (p *proc) relaxExternalBlock(ext []*dv.Delta, lo, hi int) int64 {
	rows := p.table.Rows()
	var ops int64
	for i := lo; i < hi; i++ {
		u := rows[i]
		uD := u.D
		uNH := u.NH
		for _, br := range ext {
			b := br.Owner
			d := uD[b]
			if d == graph.InfDist {
				continue
			}
			off := int(br.Lo)
			if off >= len(uD) {
				continue
			}
			// nhb: first hop toward b; improved paths to t go that way
			clo, chi := kernel.MinPlusHops(uD[off:], uNH[off:], br.D, d, uNH[b])
			ops += int64(len(br.D))
			if clo < chi {
				u.MarkChanged(off+clo, off+chi)
				p.changed[i] = true
			}
		}
	}
	return ops
}

// nextPivot returns the first row index >= from that local refinement must
// pivot — a row that changed this step or entered it with un-propagated
// (dirty) content — or -1 when the pass is over. Single forward scan, as in
// the serial pass.
func (p *proc) nextPivot(from int) int {
	for wi := from; wi < len(p.changed); wi++ {
		if p.changed[wi] || p.pivot[wi] {
			return wi
		}
	}
	return -1
}

// refineBlock relaxes local rows [lo, hi) through pivot row wi
// (Floyd–Warshall-style): D(u, t) = min(D(u, t), D(u, w) + D_w(t)).
func (p *proc) refineBlock(wi, lo, hi int) int64 {
	rows := p.table.Rows()
	w := rows[wi]
	wD := w.D
	wOwner := w.Owner
	var ops int64
	for ui := lo; ui < hi; ui++ {
		if ui == wi {
			continue
		}
		u := rows[ui]
		d := u.D[wOwner]
		if d == graph.InfDist {
			continue
		}
		clo, chi := kernel.MinPlusHops(u.D, u.NH, wD, d, u.NH[wOwner])
		ops += int64(len(wD))
		if clo < chi {
			u.MarkChanged(clo, chi)
			p.changed[ui] = true
		}
	}
	return ops
}

// refineSerial is the w == 1 pivot loop.
func (p *proc) refineSerial() int64 {
	n := p.table.Len()
	var ops int64
	for wi := 0; wi < n; wi++ {
		if !p.changed[wi] && !p.pivot[wi] {
			continue
		}
		ops += p.refineBlock(wi, 0, n)
	}
	return ops
}
