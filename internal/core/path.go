package core

import (
	"fmt"

	"anytime/internal/graph"
)

// Path reconstructs a shortest path from u to t (inclusive of both
// endpoints) from the distance-vector routing tables the recombination
// phase maintains: each row stores, per target, the neighbor its best
// known path leaves through. Once the engine has converged the result is
// an exact shortest path whose length equals the DV distance; before
// convergence the routing tables may still be inconsistent, in which case
// an error is returned.
func (e *Engine) Path(u, t int32) ([]int32, error) {
	n := int32(e.g.NumVertices())
	if u < 0 || u >= n || t < 0 || t >= n {
		return nil, fmt.Errorf("core: path endpoints {%d,%d} out of range [0,%d)", u, t, n)
	}
	if !e.Alive(u) || !e.Alive(t) {
		return nil, fmt.Errorf("core: path endpoint deleted")
	}
	if u == t {
		return []int32{u}, nil
	}
	path := []int32{u}
	var total graph.Dist
	cur := u
	for range e.alive {
		row := e.procs[e.part.Part[cur]].table.Row(cur)
		if row == nil {
			return nil, fmt.Errorf("core: no DV row for vertex %d", cur)
		}
		nh := row.NH[t]
		if nh < 0 {
			return nil, fmt.Errorf("core: no known path %d -> %d (next hop unknown at %d)", u, t, cur)
		}
		w, ok := e.g.EdgeWeight(int(cur), int(nh))
		if !ok {
			return nil, fmt.Errorf("core: routing table at %d names non-neighbor %d", cur, nh)
		}
		total += w
		path = append(path, nh)
		if nh == t {
			// sanity: the walked length must match the DV distance once
			// converged
			if e.Converged() {
				if d := e.procs[e.part.Part[u]].table.Row(u).D[t]; d != total {
					return nil, fmt.Errorf("core: path length %d disagrees with DV distance %d", total, d)
				}
			}
			return path, nil
		}
		cur = nh
	}
	return nil, fmt.Errorf("core: routing loop reconstructing %d -> %d (engine not converged?)", u, t)
}
