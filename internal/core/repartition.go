package core

import (
	"sort"

	"anytime/internal/change"
	"anytime/internal/cluster"
	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/partition"
)

// applyRepartition is Repartition-S: for large batches, instead of the
// immediate per-edge DV updates, the whole grown graph is repartitioned
// with the cut-optimizing partitioner. Existing partial results are NOT
// discarded — rows are migrated to their new owners (the anytime reuse) —
// but they are also not updated against the new vertices; the following RC
// steps absorb the new information, at the cost of extra steps.
//
// Part labels of the new partition are matched to the old ones by maximum
// overlap, so only genuinely relocated vertices migrate. After migration,
// the rows marked dirty (and therefore re-shipped) are exactly the ones
// whose information flow the repartition disturbed:
//
//   - rows of new vertices (fresh information),
//   - rows whose direct-edge re-seed changed them (adjacent to new edges),
//   - migrated rows (their new processor's neighbors never saw them), and
//   - rows of neighbors of migrated or new vertices (the migrated/new rows
//     must re-receive them).
//
// Everything else was already propagated under the old assignment and
// remains valid; the dirty cascade plus the forced local refinement close
// the remaining compositions (see Engine.forceRefine).
func (e *Engine) applyRepartition(b *change.VertexBatch) {
	cutBefore := graph.EdgeCut(e.g, e.part)
	oldPart := e.part.Part // still sized for the old vertex set

	// 1. Grow the topology: vertices and edges only, no DV updates.
	first := e.g.AddVertices(b.NumVertices)
	for i := 0; i < b.NumVertices; i++ {
		e.alive = append(e.alive, true)
		e.streamMap = append(e.streamMap, int32(first+i))
	}
	for _, ed := range e.resolveEdges(b, first) {
		if e.g.HasEdge(ed.u, ed.v) {
			continue
		}
		if err := e.g.AddEdge(ed.u, ed.v, ed.w); err != nil {
			panic(err)
		}
		e.metrics.EdgesAdded++
	}
	e.metrics.VerticesAdded += b.NumVertices

	// 2. Repartition the entire graph. The default is adaptive
	// repartitioning (the ParMETIS-adaptive analogue): seed the new
	// vertices by neighbor affinity and refine the old assignment, so only
	// genuinely relocated vertices migrate. With FullRepartition the DD
	// partitioner runs from scratch and the part labels are matched to the
	// old assignment by maximum overlap.
	var newPart *graph.Partition
	var rerr error
	if e.opts.FullRepartition {
		newPart, rerr = e.opts.Partitioner.Partition(e.g, e.opts.P)
		if rerr == nil && newPart.Validate(e.g) == nil {
			matchPartLabels(oldPart, newPart)
		}
	} else {
		seed := partition.AffinityExtend(e.g, append([]int32(nil), oldPart...), e.opts.P, first)
		newPart, rerr = partition.Adaptive{Seed: e.opts.Seed}.Refine(e.g, seed, e.opts.P)
	}
	if rerr != nil || newPart.Validate(e.g) != nil {
		// Partitioning failure would leave the engine stateless; fall back
		// to keeping the old assignment and placing new vertices round
		// robin, which is always valid.
		newPart = &graph.Partition{Part: append(append([]int32(nil), oldPart...),
			make([]int32, b.NumVertices)...), K: e.opts.P}
		for i := 0; i < b.NumVertices; i++ {
			newPart.Part[first+i] = int32((e.rrNext + i) % e.opts.P)
		}
		e.rrNext = (e.rrNext + b.NumVertices) % e.opts.P
	}
	ops := partitionOps(e.g.NumVertices(), e.g.NumEdges())
	e.metrics.ChangeOps += ops
	e.chargeAll(ops / int64(e.opts.P)) // parallel repartitioner
	e.metrics.Repartitions++

	// 3. Widen every table for the new columns, then migrate rows of
	// existing vertices whose owner changed, through the communication
	// schedule (partial-result redistribution).
	for _, p := range e.procs {
		p.table.ExtendCols(b.NumVertices)
	}
	rowBytes := 4*e.g.NumVertices() + 8
	outbox := make([][]cluster.Message, e.opts.P)
	migrated := make([]bool, e.g.NumVertices())
	migCount := 0
	for v := 0; v < first; v++ {
		from, to := oldPart[v], newPart.Part[v]
		if from == to {
			continue
		}
		r := e.procs[from].table.RemoveRow(int32(v))
		if r == nil {
			continue // deleted vertex
		}
		migrated[v] = true
		migCount++
		outbox[from] = append(outbox[from], cluster.Message{
			To:      int(to),
			Tag:     cluster.TagMigrateRows,
			Bytes:   rowBytes,
			Payload: r,
		})
	}
	inbox, xerr := e.mach.Exchange(outbox)
	if xerr != nil {
		e.fail(xerr)
		return
	}
	for pid, msgs := range inbox {
		for _, msg := range msgs {
			switch msg.Tag {
			case cluster.TagMigrateRows:
				e.procs[pid].table.AdoptRow(msg.Payload.(*dv.Row))
			case cluster.TagBoundaryDV:
				// A boundary delta delayed by the lossy network releases at
				// the next exchange — which can be this migration exchange.
				// Treat it as a failed delivery: re-mark the sender's rows
				// for a full re-ship (migrated rows are marked ship-all
				// below regardless).
				p := e.procs[msg.From]
				for _, d := range msg.Payload.([]*dv.Delta) {
					if r := p.table.Row(d.Owner); r != nil {
						r.MarkShipAll()
						p.hasUpdate = true
					}
				}
			}
		}
	}
	e.metrics.RowsMigrated += migCount

	// 4. Install the new partition and rebuild sub-graph structures.
	e.part = newPart
	for _, p := range e.procs {
		p.sub.IsLocal = make([]bool, e.g.NumVertices()) // rebuilt below
	}
	e.rebuildSubs()

	// nearDisturbed[v]: v neighbors a migrated or new vertex, so v's row
	// must be re-shipped for the disturbed rows to re-receive it.
	nearDisturbed := make([]bool, e.g.NumVertices())
	markNeighbors := func(v int) {
		for _, a := range e.g.Neighbors(v) {
			nearDisturbed[a.To] = true
		}
	}
	for v := 0; v < first; v++ {
		if migrated[v] {
			markNeighbors(v)
		}
	}
	for v := first; v < e.g.NumVertices(); v++ {
		markNeighbors(v)
	}

	// 5. New vertices get fresh rows seeded by local Dijkstra (the IA
	// algorithm applied to just the new rows); existing rows are re-seeded
	// with their direct edges so the new topology enters the relaxation
	// closure; the disturbed rows become dirty.
	e.mach.Parallel(func(pid int) {
		p := e.procs[pid]
		var newRows []*dv.Row
		for _, v := range p.sub.Local {
			if int(v) >= first {
				newRows = append(newRows, p.table.AddRow(v))
			}
		}
		sources := make([]int32, len(newRows))
		slices := make([][]graph.Dist, len(newRows))
		hops := make([][]int32, len(newRows))
		for i, r := range newRows {
			sources[i] = r.Owner
			slices[i] = r.D
			hops[i] = r.NH
		}
		ops := e.multiSource(sources, slices, hops, p.sub.IsLocal)
		for _, r := range p.table.Rows() {
			for _, a := range e.g.Neighbors(int(r.Owner)) {
				r.RelaxVia(a.To, a.Weight, a.To) // marks dirty on improvement
				ops++
			}
			if migrated[r.Owner] || nearDisturbed[r.Owner] {
				// Full ship: the receiving side may never have seen any
				// version of a migrated or disturbance-adjacent row.
				r.MarkShipAll()
			}
		}
		e.mach.Charge(pid, ops/int64(e.opts.Workers))
		addOps(&e.metrics.ChangeOps, ops)
	})
	e.mach.Barrier()

	e.metrics.NewCutEdges += graph.EdgeCut(e.g, e.part) - cutBefore
	e.forceRefine = true
	e.converged = false
}

// matchPartLabels permutes newPart's labels to maximize vertex overlap
// with oldPart (greedy maximum matching on the overlap counts), so that
// repartitioning migrates only genuinely relocated vertices rather than
// arbitrarily relabeled ones.
func matchPartLabels(oldPart []int32, newPart *graph.Partition) {
	k := newPart.K
	overlap := make([][]int64, k) // overlap[new][old]
	for i := range overlap {
		overlap[i] = make([]int64, k)
	}
	for v, op := range oldPart {
		overlap[newPart.Part[v]][op]++
	}
	type cand struct {
		newL, oldL int
		count      int64
	}
	cands := make([]cand, 0, k*k)
	for nl := 0; nl < k; nl++ {
		for ol := 0; ol < k; ol++ {
			if overlap[nl][ol] > 0 {
				cands = append(cands, cand{nl, ol, overlap[nl][ol]})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].count != cands[b].count {
			return cands[a].count > cands[b].count
		}
		if cands[a].newL != cands[b].newL {
			return cands[a].newL < cands[b].newL
		}
		return cands[a].oldL < cands[b].oldL
	})
	perm := make([]int32, k)
	for i := range perm {
		perm[i] = -1
	}
	usedOld := make([]bool, k)
	for _, c := range cands {
		if perm[c.newL] != -1 || usedOld[c.oldL] {
			continue
		}
		perm[c.newL] = int32(c.oldL)
		usedOld[c.oldL] = true
	}
	next := 0
	for nl := range perm {
		if perm[nl] != -1 {
			continue
		}
		for usedOld[next] {
			next++
		}
		perm[nl] = int32(next)
		usedOld[next] = true
	}
	for v := range newPart.Part {
		newPart.Part[v] = perm[newPart.Part[v]]
	}
}
