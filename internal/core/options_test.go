package core

import (
	"testing"

	"anytime/internal/logp"
	"anytime/internal/partition"
)

func TestNewOptionsDefaults(t *testing.T) {
	o := NewOptions()
	if o.P != 8 || o.Workers != 2 || o.MaxMsgBytes != 64<<10 || o.MaxRCSteps != 10_000 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Partitioner == nil || o.BatchPartitioner == nil {
		t.Fatal("partitioners not defaulted")
	}
	if o.Model.P != 8 || o.Model.Validate() != nil {
		t.Fatalf("model: %+v", o.Model)
	}
	if o.AutoThreshold != 0.05 {
		t.Fatalf("auto threshold: %g", o.AutoThreshold)
	}
	if o.NoLocalRefine || o.ShipAllBoundary || o.ParallelComm {
		t.Fatal("ablation flags must default off")
	}
}

func TestOptionsCustomModelPreserved(t *testing.T) {
	o := Options{P: 4, Model: logp.Model{L: 1, O: 1, G: 1, P: 99, Compute: 1}}
	o = o.withDefaults()
	if o.Model.P != 4 {
		t.Fatalf("Model.P must follow P: %+v", o.Model)
	}
	if o.Model.L != 1 {
		t.Fatal("custom latency lost")
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		RoundRobinPS: "RoundRobin-PS",
		CutEdgePS:    "CutEdge-PS",
		RepartitionS: "Repartition-S",
		AutoPS:       "Auto-PS",
		Strategy(9):  "Strategy(9)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("%d -> %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestCustomPartitionerFlowsToDD(t *testing.T) {
	g := testGraph(t, 60, 163)
	o := defaultTestOptions(3, 163)
	o.Partitioner = partition.Blocked{}
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	// Blocked assigns contiguous ranges: vertex 0 must be in part 0
	if e.Partition().Part[0] != 0 {
		t.Fatal("custom partitioner not used")
	}
	e.Run()
	requireExact(t, e)
}
