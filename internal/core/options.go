// Package core implements the paper's primary contribution: the anytime
// anywhere closeness-centrality engine for large dynamic graphs with
// efficient vertex additions.
//
// The engine runs the three phases of the anytime-anywhere methodology:
//
//   - Domain Decomposition (DD): a cut-minimizing k-way partition assigns
//     each vertex to one of P simulated processors.
//   - Initial Approximation (IA): each processor computes all-pairs
//     shortest paths over its local sub-graph (local vertices plus external
//     boundary vertices) with multithreaded Dijkstra.
//   - Recombination (RC): iterative steps in which processors exchange the
//     distance vectors (DVs) of their updated boundary vertices over a
//     personalized all-to-all schedule, relax local DVs against them
//     (distance-vector-routing style), optionally run a local
//     Floyd–Warshall-style refinement, and finally incorporate queued
//     dynamic changes — until no processor has updates left.
//
// Dynamic vertex additions are absorbed with one of three strategies:
// RoundRobin-PS, CutEdge-PS, or Repartition-S; a baseline-restart
// comparator recomputes from scratch on every change.
package core

import (
	"fmt"

	"anytime/internal/cluster"
	"anytime/internal/fault"
	"anytime/internal/logp"
	"anytime/internal/obs"
	"anytime/internal/partition"
)

// Strategy selects how dynamic vertex additions are assigned to
// processors.
type Strategy int

const (
	// RoundRobinPS distributes new vertices over processors in a circular
	// fashion: minimal overhead, ignores relationships among new vertices.
	RoundRobinPS Strategy = iota
	// CutEdgePS treats the batch of new vertices and the edges among them
	// as an independent graph, partitions it with a serial cut-optimizing
	// partitioner, and maps the parts onto processors to minimize the new
	// cut edges created.
	CutEdgePS
	// RepartitionS repartitions the entire grown graph, migrating existing
	// partial results to their new owners instead of recomputing them, and
	// lets subsequent RC steps absorb the new vertices.
	RepartitionS
	// AutoPS operationalizes the paper's conclusion that no single
	// strategy wins everywhere: batches below AutoThreshold (as a fraction
	// of the current graph) use CutEdge-PS, larger ones Repartition-S.
	AutoPS
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case RoundRobinPS:
		return "RoundRobin-PS"
	case CutEdgePS:
		return "CutEdge-PS"
	case RepartitionS:
		return "Repartition-S"
	case AutoPS:
		return "Auto-PS"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures an Engine.
type Options struct {
	// P is the number of simulated processors (default 8).
	P int
	// Partitioner performs the DD phase and Repartition-S (default
	// multilevel k-way, the ParMETIS stand-in).
	Partitioner partition.Partitioner
	// BatchPartitioner partitions the new-vertex graph for CutEdge-PS
	// (default multilevel k-way, the serial-METIS stand-in).
	BatchPartitioner partition.Partitioner
	// Strategy selects the vertex-addition processor-assignment strategy
	// (default RoundRobinPS).
	Strategy Strategy
	// Workers is the number of worker goroutines per processor — the
	// paper's per-node (OpenMP-style) multithreading layered under the
	// P-way processor parallelism. It drives the IA-phase Dijkstra pool
	// and the RC-phase relax/refine pool, and divides the per-step
	// wall-clock charge of both phases (default 2).
	Workers int
	// TileSize is the pivot-tile edge of the blocked Floyd–Warshall local
	// refinement: pivots are processed in tiles of this many consecutive
	// arena rows, with one worker barrier per tile round instead of per
	// pivot, and the external-relax pass walks received deltas in chunks of
	// the same size. Converged results are identical for every tile size;
	// the default (32) keeps a tile's pivot rows L1/L2-resident for the
	// graph sizes the benchmarks exercise.
	TileSize int
	// NoLocalRefine disables the Floyd–Warshall-style local refinement
	// recombination strategy (ablation; the refinement is on by default).
	NoLocalRefine bool
	// NoFrontierMask disables the frontier-masked min-plus kernels,
	// restoring the full-row sweeps on every pass (ablation; masking is on
	// by default). Results are bit-identical either way — masks only skip
	// provably non-improving columns — so this knob trades work for
	// nothing and exists for the invariance matrix and benchmarks.
	NoFrontierMask bool
	// ShipAllBoundary ships every boundary DV every step instead of only
	// the ones updated since the previous RC step (ablation; dirty-only
	// shipping is the default).
	ShipAllBoundary bool
	// Model holds the LogP parameters of the simulated cluster. Model.P is
	// overridden by P. Zero value = logp.GigabitCluster.
	Model logp.Model
	// MaxMsgBytes bounds a single wire message (the paper's m); larger
	// payloads are accounted as multiple messages. 0 = 64 KiB.
	MaxMsgBytes int
	// ParallelComm charges the all-to-all as P-1 rounds of concurrent
	// disjoint pairs instead of the paper's one-message-at-a-time
	// flood-avoiding schedule (ablation; serialized is the default).
	ParallelComm bool
	// NaiveBatchMapping makes CutEdge-PS map batch part j to processor j
	// instead of the greedy affinity matching (ablation).
	NaiveBatchMapping bool
	// AutoThreshold is the batch-size fraction (of the current vertex
	// count) at which AutoPS switches from CutEdge-PS to Repartition-S
	// (default 0.05, the measured crossover region; see EXPERIMENTS.md).
	AutoThreshold float64
	// FullRepartition makes Repartition-S partition the grown graph from
	// scratch (with part labels matched to the old assignment by overlap)
	// instead of the default adaptive refinement seeded from the old
	// assignment. From-scratch repartitioning migrates far more rows
	// (ablation).
	FullRepartition bool
	// Faults, when set, installs a deterministic fault-injection plan:
	// seeded message chaos on the boundary-DV data plane and scheduled
	// processor crashes with shard-based recovery (see internal/fault).
	// It also enables per-processor recovery shards every ShardEvery
	// steps. nil = perfect network, no shards — the pre-fault-layer path.
	Faults *fault.Plan
	// ShardEvery is the recovery-shard cadence in RC steps when Faults is
	// set: each processor serializes its DV table every K steps, and a
	// crashed processor restarts from its last shard (default 4).
	ShardEvery int
	// Trace, when set, receives engine execution events (phase
	// transitions, RC steps, change applications) for observability.
	Trace Tracer
	// Obs, when set, records structured phase-level spans (DD, per-
	// processor IA/ship/relax, refine tile rounds, checkpoint and shard
	// writes, crashes, rejoins, fault retries) into the tracer's ring
	// buffer, carrying both wall time and the LogP virtual clock. nil
	// disables tracing at branch-only cost (see internal/obs).
	Obs *obs.Tracer
	// Seed drives every randomized component (default 1).
	Seed int64
	// MaxRCSteps bounds Run (safety net; default 10_000).
	MaxRCSteps int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.P == 0 {
		o.P = 8
	}
	if o.Partitioner == nil {
		o.Partitioner = partition.Multilevel{Seed: o.Seed}
	}
	if o.BatchPartitioner == nil {
		o.BatchPartitioner = partition.Multilevel{Seed: o.Seed + 1}
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.TileSize <= 0 {
		o.TileSize = 32
	}
	if o.Model.P == 0 && o.Model.L == 0 && o.Model.O == 0 && o.Model.G == 0 {
		o.Model = logp.GigabitCluster(o.P)
	}
	o.Model.P = o.P
	if o.MaxMsgBytes == 0 {
		o.MaxMsgBytes = 64 << 10
	}
	if o.MaxRCSteps == 0 {
		o.MaxRCSteps = 10_000
	}
	if o.ShardEvery <= 0 {
		o.ShardEvery = 4
	}
	if o.AutoThreshold == 0 {
		o.AutoThreshold = 0.05
	}
	return o
}

// NewOptions returns Options with all defaults applied, as a starting
// point for callers who want to tweak individual knobs.
func NewOptions() Options {
	return Options{Seed: 1}.withDefaults()
}

func (o Options) clusterConfig() cluster.Config {
	return cluster.Config{
		Model:       o.Model,
		MaxMsgBytes: o.MaxMsgBytes,
		Serialized:  !o.ParallelComm,
		Obs:         o.Obs,
	}
}
