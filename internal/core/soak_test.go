package core

import (
	"math/rand"
	"testing"

	"anytime/internal/change"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/sssp"
)

// TestSoakMixedOperations drives a long randomized sequence of every
// dynamic operation kind — vertex batches under rotating strategies, edge
// additions, weight changes, edge and vertex deletions, checkpoints —
// verifying exactness against the oracle after each convergence. This is
// the engine's end-to-end robustness net.
func TestSoakMixedOperations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2026))
	g := testGraph(t, 100, 2026)
	o := defaultTestOptions(4, 2026)
	o.Strategy = AutoPS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)

	aliveVertex := func() int32 {
		for {
			v := int32(rng.Intn(e.Graph().NumVertices()))
			if e.Alive(v) {
				return v
			}
		}
	}
	for round := 0; round < 25; round++ {
		op := rng.Intn(6)
		switch op {
		case 0, 1: // vertex batch (community or preferential)
			k := 3 + rng.Intn(12)
			var b *change.VertexBatch
			var err error
			if op == 0 && k >= 2 {
				b, err = gen.CommunityBatch(e.Graph(), k, 1.3, gen.Weights{Min: 1, Max: 4}, rng.Int63())
			} else {
				b, err = gen.PreferentialBatch(e.Graph(), k, 2, 1, gen.Weights{Min: 1, Max: 4}, rng.Int63())
			}
			if err != nil {
				t.Fatalf("round %d: batch gen: %v", round, err)
			}
			if err := e.QueueBatch(b); err != nil {
				t.Fatalf("round %d: queue: %v", round, err)
			}
		case 2: // edge addition between existing vertices
			u, v := aliveVertex(), aliveVertex()
			if u == v || e.Graph().HasEdge(int(u), int(v)) {
				continue
			}
			if err := e.QueueEdgeAdds(change.EdgeAdd{U: u, V: v, Weight: graph.Weight(1 + rng.Intn(4))}); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case 3: // weight change on a random existing edge
			var eu, ev int32 = -1, -1
			e.Graph().ForEachEdge(func(u, v int, _ graph.Weight) {
				if rng.Intn(20) == 0 && eu == -1 {
					eu, ev = int32(u), int32(v)
				}
			})
			if eu == -1 {
				continue
			}
			if err := e.QueueEdgeWeightChanges(change.EdgeWeight{U: eu, V: ev, Weight: graph.Weight(1 + rng.Intn(6))}); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case 4: // edge deletion (skip bridges implicitly: deletion of any edge is fine)
			var eu, ev int32 = -1, -1
			e.Graph().ForEachEdge(func(u, v int, _ graph.Weight) {
				if rng.Intn(30) == 0 && eu == -1 {
					eu, ev = int32(u), int32(v)
				}
			})
			if eu == -1 {
				continue
			}
			if err := e.QueueEdgeDels(change.EdgeDel{U: eu, V: ev}); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case 5: // vertex deletion
			if err := e.QueueVertexDel(aliveVertex()); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		// sometimes inject mid-analysis, sometimes after convergence
		if rng.Intn(2) == 0 {
			e.Step()
		}
		e.Run()
		if !e.Converged() {
			t.Fatalf("round %d: not converged", round)
		}
		requireExact(t, e)
	}
	// final sanity: snapshot consistent with the oracle
	snap := e.Snapshot()
	exact := sssp.APSP(e.Graph())
	for v := 0; v < e.Graph().NumVertices(); v++ {
		if !e.Alive(int32(v)) {
			continue
		}
		var sum int64
		for u, d := range exact[v] {
			if u != v && d != graph.InfDist {
				sum += int64(d)
			}
		}
		want := 0.0
		if sum > 0 {
			want = 1 / float64(sum)
		}
		if diff := snap.Closeness[v] - want; diff > 1e-15 || diff < -1e-15 {
			t.Fatalf("final closeness[%d] = %g, want %g", v, snap.Closeness[v], want)
		}
	}
	t.Logf("soak finished: %d vertices, %d edges, %d RC steps, %d repartitions",
		e.Graph().NumVertices(), e.Graph().NumEdges(), e.StepsTaken(), e.Metrics().Repartitions)
}
