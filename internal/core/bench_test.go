package core

import (
	"bytes"
	"testing"
	"time"

	"anytime/internal/change"
	"anytime/internal/cluster"
	"anytime/internal/dv"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/obs"
)

// ---------------------------------------------------------------------------
// Pre-PR reference path: a faithful copy of the serial RC implementation this
// PR replaced — full-row snapshots grouped through per-row maps, and fused
// relax/refine loops without bounds-check-elimination hints or workers. Kept
// test-only as the baseline the BenchmarkRCRelaxPhase* results are measured
// against.
// ---------------------------------------------------------------------------

func (e *Engine) prePRShipBoundary() [][]cluster.Message {
	P := e.opts.P
	outbox := make([][]cluster.Message, P)
	e.mach.Parallel(func(pid int) {
		p := e.procs[pid]
		var ops int64
		groups := make(map[int][]*dv.Row)
		for _, v := range p.sub.LocalBoundary {
			r := p.table.Row(v)
			if r == nil {
				continue
			}
			if !r.Dirty && !e.opts.ShipAllBoundary {
				continue
			}
			var snap *dv.Row
			seen := map[int32]bool{}
			for _, a := range e.g.Neighbors(int(v)) {
				q := e.part.Part[a.To]
				if int(q) == pid || seen[q] {
					continue
				}
				seen[q] = true
				if snap == nil {
					snap = dv.CopyRow(r)
					ops += int64(len(r.D))
				}
				groups[int(q)] = append(groups[int(q)], snap)
			}
		}
		for q, rows := range groups {
			outbox[pid] = append(outbox[pid], cluster.Message{
				To:      q,
				Tag:     cluster.TagBoundaryDV,
				Bytes:   len(rows) * p.table.RowBytes(),
				Payload: rows,
			})
		}
		e.mach.Charge(pid, ops)
	})
	return outbox
}

func (p *proc) prePRRelaxViaExternal(br *dv.Row) {
	b := br.Owner
	bd := br.D
	for i, u := range p.table.Rows() {
		d := u.D[b]
		if d == graph.InfDist {
			continue
		}
		uD := u.D
		uNH := u.NH
		nhb := uNH[b]
		rowChanged := false
		for t, bt := range bd {
			if bt == graph.InfDist {
				continue
			}
			if nd := d + bt; nd < uD[t] {
				uD[t] = nd
				uNH[t] = nhb
				rowChanged = true
			}
		}
		p.stepOps += int64(len(bd))
		if rowChanged {
			u.Dirty = true
			p.changed[i] = true
		}
	}
}

func (p *proc) prePRLocalRefine() {
	rows := p.table.Rows()
	for wi := range rows {
		if !p.changed[wi] && !p.pivot[wi] {
			continue
		}
		w := rows[wi]
		wD := w.D
		wOwner := w.Owner
		for ui, u := range rows {
			if ui == wi {
				continue
			}
			d := u.D[wOwner]
			if d == graph.InfDist {
				continue
			}
			uD := u.D
			uNH := u.NH
			nhw := uNH[wOwner]
			rowChanged := false
			for t, wt := range wD {
				if wt == graph.InfDist {
					continue
				}
				if nd := d + wt; nd < uD[t] {
					uD[t] = nd
					uNH[t] = nhw
					rowChanged = true
				}
			}
			p.stepOps += int64(len(wD))
			if rowChanged {
				u.Dirty = true
				p.changed[ui] = true
			}
		}
	}
}

func (e *Engine) prePRRelaxAll(inbox [][]cluster.Message) {
	refine := !e.opts.NoLocalRefine || e.forceRefine
	e.mach.Parallel(func(pid int) {
		p := e.procs[pid]
		p.stepOps = 0
		rows := p.table.Rows()
		p.changed = resizeBools(p.changed, len(rows))
		p.pivot = resizeBools(p.pivot, len(rows))
		p.startDirty = resizeBools(p.startDirty, len(rows))
		for i, r := range rows {
			p.startDirty[i] = r.Dirty
			p.pivot[i] = refine && r.Dirty
		}
		for _, msg := range inbox[pid] {
			if msg.Tag != cluster.TagBoundaryDV {
				continue
			}
			for _, br := range msg.Payload.([]*dv.Row) {
				p.prePRRelaxViaExternal(br)
			}
		}
		if refine {
			p.prePRLocalRefine()
		}
		for i, r := range rows {
			if p.startDirty[i] && !p.changed[i] {
				r.ClearDirty()
			}
		}
		p.hasUpdate = false
		for _, v := range p.sub.LocalBoundary {
			if r := p.table.Row(v); r != nil && r.Dirty {
				p.hasUpdate = true
				break
			}
		}
		e.mach.Charge(pid, p.stepOps)
		addOps(&e.metrics.RCOps, p.stepOps)
	})
	e.mach.Barrier()
}

// prePRStep mirrors Engine.Step over the reference path (no history/hooks),
// additionally returning the number of boundary rows shipped.
func (e *Engine) prePRStep() (cont bool, rows int) {
	if e.Converged() {
		return false, 0
	}
	outbox := e.prePRShipBoundary()
	for _, msgs := range outbox {
		for _, msg := range msgs {
			rows += len(msg.Payload.([]*dv.Row))
		}
	}
	inbox, err := e.mach.Exchange(outbox)
	if err != nil {
		panic(err)
	}
	e.prePRRelaxAll(inbox)
	e.converged = e.reduceConvergence()
	if len(e.queue) > 0 {
		ev := e.queue[0]
		e.queue = e.queue[1:]
		e.applyEvent(ev)
	}
	e.step++
	return !e.Converged(), rows
}

// ---------------------------------------------------------------------------
// RC relax-phase benchmarks: virtual Fig. 4 scale (n=400 Barabási–Albert
// m=3, P=4) with a 16-vertex batch injected into a converged engine. Each
// iteration restores the converged pre-injection state from an in-memory
// checkpoint (untimed), applies the batch (untimed), then times the RC
// relax cascade to re-convergence.
// ---------------------------------------------------------------------------

const (
	benchRCN     = 400
	benchRCP     = 4
	benchRCBatch = 16
	// benchRCSparse is the sparse-change batch: 4 vertices on n=400 leave
	// ≤1% of the columns dirty, the regime the frontier masks target.
	benchRCSparse = 4
)

func rcBenchSetup(b *testing.B, workers, batchSize int, noMask bool) (ckpt []byte, opts Options, batch *change.VertexBatch) {
	b.Helper()
	g, err := gen.BarabasiAlbert(benchRCN, 3, gen.Weights{Min: 1, Max: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen.Connectify(g, 1)
	opts = NewOptions()
	opts.P = benchRCP
	opts.Workers = workers
	opts.Seed = 1
	opts.NoFrontierMask = noMask
	e, err := New(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	e.Run()
	if !e.Converged() {
		b.Fatal("setup engine did not converge")
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		b.Fatal(err)
	}
	batch, err = gen.PreferentialBatch(e.Graph(), batchSize, 2, 1, gen.Weights{Min: 1, Max: 4}, 42)
	if err != nil {
		b.Fatal(err)
	}
	return buf.Bytes(), opts, batch
}

func benchRCRelaxPhase(b *testing.B, workers, batchSize int, noMask, prePR bool) {
	ckpt, opts, batch := rcBenchSetup(b, workers, batchSize, noMask)
	var steps, rows, shipBytes, relaxOps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := Restore(bytes.NewReader(ckpt), opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.QueueBatch(batch); err != nil {
			b.Fatal(err)
		}
		// The engine restores converged, so this first step ships nothing
		// and applies the batch at its end (untimed change-incorporation
		// work, identical on both paths).
		if prePR {
			e.prePRStep()
		} else {
			e.Step()
		}
		m0 := e.Metrics()
		h0 := len(e.History())
		b.StartTimer()
		if prePR {
			for {
				cont, r := e.prePRStep()
				rows += int64(r)
				if !cont {
					break
				}
			}
		} else {
			for e.Step() {
			}
		}
		b.StopTimer()
		m1 := e.Metrics()
		steps += int64(m1.RCSteps - m0.RCSteps)
		for _, s := range e.History()[h0:] {
			rows += int64(s.RowsShipped)
		}
		shipBytes += m1.Comm.ByTag[cluster.TagBoundaryDV].Bytes - m0.Comm.ByTag[cluster.TagBoundaryDV].Bytes
		relaxOps += m1.RCOps - m0.RCOps
		b.StartTimer()
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(steps)/n, "steps/op")
	b.ReportMetric(float64(relaxOps)/n, "relaxops/op")
	b.ReportMetric(float64(shipBytes)/n, "shipbytes/op")
	if steps > 0 {
		b.ReportMetric(float64(rows)/float64(steps), "rowsshipped/step")
	}
}

// BenchmarkRCRelaxPhasePrePRSerial is the baseline: the pre-PR serial path.
func BenchmarkRCRelaxPhasePrePRSerial(b *testing.B) {
	benchRCRelaxPhase(b, 1, benchRCBatch, false, true)
}

func BenchmarkRCRelaxPhaseWorkers1(b *testing.B) {
	benchRCRelaxPhase(b, 1, benchRCBatch, false, false)
}

func BenchmarkRCRelaxPhaseWorkers4(b *testing.B) {
	benchRCRelaxPhase(b, 4, benchRCBatch, false, false)
}

// benchRCRelaxSparseEdges is the frontier masks' target regime: a batch of
// benchRCSparse shortcut edges (weight 1 between far-apart existing
// vertices) queued into a converged engine. The immediate-update scans
// record exactly which columns each row improved at, so the reconvergence
// steps pivot rows whose frontiers are sparse — nearly every pivot column
// is provably non-improving and the masked sweeps skip it. The NoMask twin
// runs the identical workload with full-row sweeps; the pair is the masked
// win, measured.
func benchRCRelaxSparseEdges(b *testing.B, noMask bool) {
	ckpt, opts, _ := rcBenchSetup(b, 1, benchRCSparse, noMask)
	e, err := Restore(bytes.NewReader(ckpt), opts)
	if err != nil {
		b.Fatal(err)
	}
	// Deterministic shortcut picks: the first benchRCSparse non-adjacent
	// pairs at distance >= 8, no vertex reused, scanned in index order.
	// Each edge weighs one less than the current distance, so it improves
	// every affected row by exactly 1 — a genuinely sparse disturbance
	// (few columns per row change) rather than a topology rewrite.
	ds := e.Distances()
	used := make([]bool, benchRCN)
	var adds []change.EdgeAdd
	for u := 0; u < benchRCN && len(adds) < benchRCSparse; u++ {
		if used[u] || ds[u] == nil {
			continue
		}
		for v := u + 1; v < benchRCN; v++ {
			if used[v] || ds[u][v] == graph.InfDist || ds[u][v] < 8 || e.Graph().HasEdge(u, v) {
				continue
			}
			adds = append(adds, change.EdgeAdd{U: int32(u), V: int32(v), Weight: ds[u][v] - 1})
			used[u], used[v] = true, true
			break
		}
	}
	if len(adds) < benchRCSparse {
		b.Fatalf("found only %d shortcut pairs", len(adds))
	}
	var steps, relaxOps, maskedOps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e, err := Restore(bytes.NewReader(ckpt), opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.QueueEdgeAdds(adds...); err != nil {
			b.Fatal(err)
		}
		// The engine restores converged, so this first step ships nothing
		// and applies the edge batch at its end — the immediate-update
		// scans, identical on both paths, stay untimed; the timed region is
		// the pure relax/refine reconvergence cascade where the masked
		// sweeps engage.
		if !e.Step() {
			b.Fatal("expected reconvergence work after the edge batch")
		}
		m0 := e.Metrics()
		h0 := len(e.History())
		b.StartTimer()
		for e.Step() {
		}
		b.StopTimer()
		m1 := e.Metrics()
		steps += int64(m1.RCSteps - m0.RCSteps)
		relaxOps += m1.RCOps - m0.RCOps
		for _, s := range e.History()[h0:] {
			maskedOps += s.MaskedOps
		}
		b.StartTimer()
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(steps)/n, "steps/op")
	b.ReportMetric(float64(relaxOps)/n, "relaxops/op")
	b.ReportMetric(float64(maskedOps)/n, "maskedops/op")
}

func BenchmarkRCRelaxPhaseSparse(b *testing.B)       { benchRCRelaxSparseEdges(b, false) }
func BenchmarkRCRelaxPhaseSparseNoMask(b *testing.B) { benchRCRelaxSparseEdges(b, true) }

// ---------------------------------------------------------------------------
// Refine-phase benchmarks: the tiled blocked-Floyd–Warshall pass in
// isolation. A converged engine's rows are all marked changed, so every
// pivot is active and the pass streams the full O((n/P)² · n) relax work —
// but, being converged, no distance improves, so iterations are identical
// and nothing needs restoring. Processors run one after another: the number
// measures how one processor's refine scales across its worker pool.
// ---------------------------------------------------------------------------

func benchRCRefinePhase(b *testing.B, workers, tile int, prePR bool) {
	g, err := gen.BarabasiAlbert(benchRCN, 3, gen.Weights{Min: 1, Max: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen.Connectify(g, 1)
	opts := NewOptions()
	opts.P = benchRCP
	opts.Seed = 1
	opts.Workers = workers
	if tile > 0 {
		opts.TileSize = tile
	}
	e, err := New(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	e.Run()
	if !e.Converged() {
		b.Fatal("setup engine did not converge")
	}
	var relaxOps int64
	var virt float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		relaxOps = 0
		var worst time.Duration
		for _, p := range e.procs {
			rows := p.table.Rows()
			p.changed = resizeBools(p.changed, len(rows))
			p.pivot = resizeBools(p.pivot, len(rows))
			for j := range p.changed {
				p.changed[j] = true
			}
			// Dense epoch: the converged engine cleared every frontier, which
			// would let the masked kernels skip the whole pass. Marking FAll
			// forces the full-row sweeps, so this benchmark keeps measuring
			// the dense/early-pass streaming path the 15% gate protects.
			for _, r := range rows {
				r.FAll = true
			}
			var ops int64
			if prePR {
				p.stepOps = 0
				p.prePRLocalRefine()
				ops = p.stepOps
			} else {
				ops = p.relaxStep(nil, true, workers, e.opts.TileSize)
			}
			relaxOps += ops
			// The engine's LogP charge for the relax phase: ops divided
			// across the per-processor worker pool, slowest processor
			// setting the simulated clock (see relaxAll).
			if d := e.mach.Model().Work(ops / int64(workers)); d > worst {
				worst = d
			}
		}
		virt += worst.Seconds() * 1000
	}
	b.StopTimer()
	b.ReportMetric(float64(relaxOps), "relaxops/op")
	b.ReportMetric(virt/float64(b.N), "virt-ms/op")
}

// BenchmarkRCRefinePhasePrePR is the pre-PR fused serial refine loop over
// the same workload.
func BenchmarkRCRefinePhasePrePR(b *testing.B) { benchRCRefinePhase(b, 1, 0, true) }

func BenchmarkRCRefinePhaseWorkers1(b *testing.B) { benchRCRefinePhase(b, 1, 0, false) }

func BenchmarkRCRefinePhaseWorkers4(b *testing.B) { benchRCRefinePhase(b, 4, 0, false) }

// BenchmarkRCRefinePhaseUntiledWorkers4 spans all rows with one tile: phase
// A (serial) covers everything, so this isolates what the tiling itself
// buys the parallel pass.
func BenchmarkRCRefinePhaseUntiledWorkers4(b *testing.B) {
	benchRCRefinePhase(b, 4, 1<<30, false)
}

// ---------------------------------------------------------------------------
// Boundary-shipping benchmarks: steady-state ship of every boundary row with
// a 32-column pending window. Comparing allocs/op against the pre-PR path
// shows the per-row map and per-step group allocations are gone (what
// remains is the unavoidable one snapshot slice per shipped row).
// ---------------------------------------------------------------------------

var benchOutboxSink [][]cluster.Message

func benchShipBoundary(b *testing.B, prePR bool) {
	g, err := gen.BarabasiAlbert(benchRCN, 3, gen.Weights{Min: 1, Max: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen.Connectify(g, 1)
	opts := NewOptions()
	opts.P = benchRCP
	opts.Seed = 1
	e, err := New(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range e.procs {
			for _, v := range p.sub.LocalBoundary {
				if r := p.table.Row(v); r != nil {
					r.MarkChanged(64, 96)
				}
			}
		}
		if prePR {
			benchOutboxSink = e.prePRShipBoundary()
		} else {
			benchOutboxSink = e.shipBoundary()
		}
	}
}

func BenchmarkRCShipBoundary(b *testing.B) { benchShipBoundary(b, false) }

func BenchmarkRCShipBoundaryPrePR(b *testing.B) { benchShipBoundary(b, true) }

// ---------------------------------------------------------------------------
// Traced RC benchmark: the Workers1 relax cascade with the obs tracer (and
// phase-span recording) enabled. bench-compare holds it within the 15% gate
// of its committed baseline, pinning the cost of the observability layer on
// the instrumented hot path.
// ---------------------------------------------------------------------------

func BenchmarkRCStepTraced(b *testing.B) {
	ckpt, opts, batch := rcBenchSetup(b, 1, benchRCBatch, false)
	opts.Obs = obs.NewTracer(obs.DefaultCapacity)
	var steps, spans int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts.Obs.Reset()
		e, err := Restore(bytes.NewReader(ckpt), opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.QueueBatch(batch); err != nil {
			b.Fatal(err)
		}
		e.Step() // untimed change incorporation, as in the untraced rows
		m0 := e.Metrics()
		b.StartTimer()
		for e.Step() {
		}
		b.StopTimer()
		steps += int64(e.Metrics().RCSteps - m0.RCSteps)
		spans += int64(opts.Obs.Len()) + opts.Obs.Dropped()
		b.StartTimer()
	}
	b.StopTimer()
	if spans == 0 {
		b.Fatal("traced run recorded no spans")
	}
	n := float64(b.N)
	b.ReportMetric(float64(steps)/n, "steps/op")
	b.ReportMetric(float64(spans)/n, "spans/op")
}
