package core

import (
	"fmt"

	"anytime/internal/change"
	"anytime/internal/dv"
	"anytime/internal/graph"
)

// Dynamic events over the multi-process runner. Rank 0 owns the event
// intake and ships each step's accepted events to every live rank inside
// the data exchange; every rank then applies the identical event list at
// the identical step boundary, so the graphs, partitions, and round-robin
// assignment cursors evolve in lockstep without any extra coordination.
// The EventLog records the applied journal: a rank that was down while
// events were applied replays the journal from the base graph when it
// rejoins, deterministically re-deriving the exact same topology and
// partition the survivors hold (verified by the partition checksum in the
// rejoin-go payload).

// EventLog tracks the deterministic dynamic-event state of one rank: the
// round-robin placement cursor, the stream map resolving cross-batch
// pending edges, and the journal of applied events.
type EventLog struct {
	p         int
	rrNext    int
	streamMap []int32
	journal   []change.Event
}

// NewEventLog creates the event state for a P-rank runner.
func NewEventLog(p int) *EventLog { return &EventLog{p: p} }

// Journal returns the applied events in application order.
func (l *EventLog) Journal() []change.Event { return l.journal }

// appliedEvent reports what one event did to the graph, for the caller's
// table-level follow-up.
type appliedEvent struct {
	first  int     // first global ID of the batch's new vertices (batch only)
	count  int     // new vertices added
	assign []int32 // rank of each new vertex
	edges  []resolvedEdge
}

// apply mutates the graph and partition for one event and advances the
// journal. Only vertex batches and edge additions are supported across
// processes; the non-monotone kinds (deletions, weight increases) need the
// engine's reset path and stay single-process.
func (l *EventLog) apply(g *graph.Graph, part *graph.Partition, ev change.Event) (appliedEvent, error) {
	var ae appliedEvent
	switch {
	case ev.Batch != nil:
		b := ev.Batch
		if err := b.Validate(g.NumVertices()); err != nil {
			return ae, err
		}
		for _, ed := range b.Pending {
			if int(ed.EarlierBatchVertex) >= len(l.streamMap) {
				return ae, fmt.Errorf("core: pending edge references stream vertex %d of %d", ed.EarlierBatchVertex, len(l.streamMap))
			}
		}
		first := g.AddVertices(b.NumVertices)
		assign := make([]int32, b.NumVertices)
		for i := range assign {
			assign[i] = int32((l.rrNext + i) % l.p)
		}
		if b.NumVertices > 0 {
			l.rrNext = (l.rrNext + b.NumVertices) % l.p
		}
		part.Extend(assign)
		for i := 0; i < b.NumVertices; i++ {
			l.streamMap = append(l.streamMap, int32(first+i))
		}
		ae = appliedEvent{first: first, count: b.NumVertices, assign: assign}
		for _, ed := range b.Internal {
			ae.edges = append(ae.edges, resolvedEdge{first + int(ed.A), first + int(ed.B), ed.Weight})
		}
		for _, ed := range b.External {
			ae.edges = append(ae.edges, resolvedEdge{first + int(ed.New), int(ed.Existing), ed.Weight})
		}
		for _, ed := range b.Pending {
			ae.edges = append(ae.edges, resolvedEdge{first + int(ed.New), int(l.streamMap[ed.EarlierBatchVertex]), ed.Weight})
		}
	case ev.EdgeAdds != nil:
		n := g.NumVertices()
		for _, ed := range ev.EdgeAdds {
			if ed.U < 0 || int(ed.U) >= n || ed.V < 0 || int(ed.V) >= n || ed.U == ed.V || ed.Weight <= 0 {
				return ae, fmt.Errorf("core: invalid edge addition {%d,%d,%d} on graph of %d", ed.U, ed.V, ed.Weight, n)
			}
			ae.edges = append(ae.edges, resolvedEdge{int(ed.U), int(ed.V), ed.Weight})
		}
	default:
		return ae, fmt.Errorf("core: event kind not supported across processes (deletions/weight changes/rebalance are single-process)")
	}
	// Insert only the genuinely new edges, and report exactly those back:
	// a re-added existing edge (whatever its weight) is a no-op — the graph
	// keeps the original weight, so seeding rows with the event's weight
	// would fabricate a connection the graph does not have.
	kept := ae.edges[:0]
	for _, ed := range ae.edges {
		if g.HasEdge(ed.u, ed.v) {
			continue
		}
		if err := g.AddEdge(ed.u, ed.v, ed.w); err != nil {
			return ae, err
		}
		kept = append(kept, ed)
	}
	ae.edges = kept
	l.journal = append(l.journal, ev)
	return ae, nil
}

// Replay re-derives the graph and partition evolution of a journal — the
// rejoin path: a returning rank applies the journal it missed to the base
// graph and provably arrives at the survivors' exact topology, because
// every mutation is a deterministic function of (base state, journal).
func (l *EventLog) Replay(g *graph.Graph, part *graph.Partition, journal []change.Event) error {
	for i, ev := range journal {
		if _, err := l.apply(g, part, ev); err != nil {
			return fmt.Errorf("core: journal replay event %d: %w", i, err)
		}
	}
	return nil
}

// ApplyEvents applies one step's event list to this rank: the graph and
// partition advance through the log, the DV table grows columns for the
// new vertices, the rank adds rows for the new vertices it owns (born
// dirty and ship-all), and every *owned* endpoint row of a new edge is
// re-seeded with the direct edge and marked for a full re-ship — the
// engine's edge-addition invariant (every live edge represented in its
// endpoints' rows) that makes the min-plus fixed point exact. The sub-graph
// view is rebuilt afterwards. Every live rank must call this with the same
// events at the same step boundary.
func (rs *RankState) ApplyEvents(log *EventLog, evs []change.Event) error {
	if len(evs) == 0 {
		return nil
	}
	p := rs.p
	me := int32(p.id)
	for _, ev := range evs {
		ae, err := log.apply(rs.g, rs.part, ev)
		if err != nil {
			return err
		}
		if ae.count > 0 {
			p.table.ExtendCols(ae.count)
			for i := 0; i < ae.count; i++ {
				if ae.assign[i] == me {
					p.table.AddRow(int32(ae.first + i))
				}
			}
		}
		for _, ed := range ae.edges {
			if r := p.table.Row(int32(ed.u)); r != nil {
				r.RelaxVia(int32(ed.v), graph.Dist(ed.w), int32(ed.v))
				r.MarkShipAll()
			}
			if r := p.table.Row(int32(ed.v)); r != nil {
				r.RelaxVia(int32(ed.u), graph.Dist(ed.w), int32(ed.u))
				r.MarkShipAll()
			}
		}
	}
	p.sub = graph.ExtractSub(rs.g, rs.part, me)
	rs.refreshHasUpdate()
	return nil
}

// refreshHasUpdate rescans the local boundary for dirty rows — the
// convergence vote after a topology change must see the new work.
func (rs *RankState) refreshHasUpdate() {
	p := rs.p
	p.hasUpdate = false
	for _, v := range p.sub.LocalBoundary {
		if r := p.table.Row(v); r != nil && r.Dirty {
			p.hasUpdate = true
			break
		}
	}
}

// Sub returns the rank's current sub-graph view (rebuilt by ApplyEvents).
func (rs *RankState) Sub() *graph.Sub { return rs.p.sub }

// MarkAllShipAll marks every row of the table for a full re-ship — the
// rejoiner's re-entry move: its restored rows must re-reach every
// neighbor, whatever the shard lost.
func (rs *RankState) MarkAllShipAll() {
	for _, r := range rs.p.table.Rows() {
		r.MarkShipAll()
	}
	rs.p.hasUpdate = rs.p.table.Len() > 0
}

// MarkRejoinShipAll is the survivors' half of the rejoin protocol: every
// local-boundary row adjacent to the rejoined rank's part is marked for a
// full re-ship, so the restored rows re-receive everything they missed —
// the same migration pattern Engine.rejoin uses, whose dirty cascade
// provably reconverges the engine to the sequential oracle.
func (rs *RankState) MarkRejoinShipAll(pid int32) {
	p := rs.p
	for _, v := range p.sub.LocalBoundary {
		r := p.table.Row(v)
		if r == nil {
			continue
		}
		for _, a := range rs.g.Neighbors(int(v)) {
			if rs.part.Part[a.To] == pid {
				r.MarkShipAll()
				p.hasUpdate = true
				break
			}
		}
	}
}

// ReseedDirectEdges re-seeds every row's incident direct edges — the
// restore-from-shard soundness repair shared with Engine.restoreShard: an
// edge added after the shard was written is represented in neither
// endpoint's restored row, and row-composition relaxation can never
// rediscover a direct edge on its own.
func ReseedDirectEdges(t *dv.Matrix, g *graph.Graph) {
	for _, row := range t.Rows() {
		for _, a := range g.Neighbors(int(row.Owner)) {
			row.RelaxVia(a.To, a.Weight, a.To)
		}
	}
}
