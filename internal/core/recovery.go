package core

import (
	"bytes"
	"fmt"
	"hash/crc32"

	"anytime/internal/dv"
	"anytime/internal/fault"
	"anytime/internal/obs"
)

// Crash recovery (the paper's stated fault-tolerance future work, realized
// over the simulated cluster).
//
// With Options.Faults set, every processor serializes its DV table into an
// in-memory recovery shard — the stand-in for its local checkpoint disk —
// every ShardEvery RC steps. A scheduled crash replaces the processor's
// table with its last shard at the step boundary (everything since the
// shard is lost); while down, the processor ships nothing, relaxes nothing,
// and the cluster drops boundary traffic addressed to it. Dynamic changes
// applied during the downtime mutate the restored table like a journaled
// replay, so the upper-bound invariant is preserved: shard distances are
// older and therefore no smaller than current ones, except across the
// non-monotone reset paths (deletions, weight increases), after which
// resetDVs rewrites every shard from the fresh tables.
//
// The rejoin protocol is the row-migration pattern of applyRepartition
// applied to the crash: every restored row ships in full (its neighbors
// must re-relax against whatever the shard lost), every other processor's
// boundary row adjacent to the crashed part ships in full (the restored
// rows must re-receive them), and local refinement is forced so the dirty
// cascade closes the remaining compositions. The engine therefore
// reconverges to the exact sequential oracle — the chaos soak pins this.

// shardMagic versions the recovery-shard encoding: a CRC32-guarded subset
// of the AACKPT checkpoint row encoding, one processor's table only.
const shardMagic = "AASHRD01"

// ErrCorruptShard reports a recovery shard whose CRC32 trailer does not
// match its payload.
var ErrCorruptShard = fmt.Errorf("core: recovery shard CRC mismatch")

// initFaults wires the fault injector into a freshly built engine.
func (e *Engine) initFaults(inj *fault.Injector) {
	e.inj = inj
	if inj == nil {
		return
	}
	e.rejoinAt = make([]int, e.opts.P)
	for i := range e.rejoinAt {
		e.rejoinAt[i] = -1
	}
	e.shards = make([][]byte, e.opts.P)
}

// down reports whether processor p is currently crashed.
func (e *Engine) down(p int) bool { return e.inj != nil && e.inj.Down(p) }

// anyDown reports whether any processor is currently crashed.
func (e *Engine) anyDown() bool { return e.inj != nil && e.inj.AnyDown() }

// EncodeShard serializes one DV table as a recovery shard: magic, the RC
// step it captures, width, rows (owner, dirty, pending window, distances,
// next hops), ResizeCopies, and a CRC32-IEEE trailer over everything after
// the magic. The format (AASHRD01) is shared by the in-process simulator's
// in-memory shards and the multi-process runner's on-disk shard files.
func EncodeShard(t *dv.Matrix, step int) []byte {
	var buf bytes.Buffer
	buf.WriteString(shardMagic)
	enc := &binWriter{w: &buf}
	n := t.Cols()
	rows := t.Rows()
	enc.i64(int64(step))
	enc.i64(int64(n))
	enc.i64(int64(len(rows)))
	for _, r := range rows {
		enc.i32(r.Owner)
		enc.bool(r.Dirty)
		all, lo, hi := r.PendingState()
		enc.bool(all)
		enc.i32(lo)
		enc.i32(hi)
		for _, d := range r.D[:n] {
			enc.i32(d)
		}
		for _, h := range r.NH[:n] {
			enc.i32(h)
		}
	}
	enc.i64(t.ResizeCopies)
	sum := crc32.ChecksumIEEE(buf.Bytes()[len(shardMagic):])
	enc.i64(int64(sum))
	return buf.Bytes()
}

// DecodeShard parses a recovery shard into a width-n matrix, keeping only
// the rows keep accepts (rows deleted or migrated away since the shard was
// written are skipped; a nil keep keeps everything). Columns added since
// the shard stay at InfDist. It returns the matrix and the RC step the
// shard captured. The caller owns the soundness repair that must follow a
// restore: re-seeding every row's incident direct edges (see the comment
// in restoreShard).
func DecodeShard(blob []byte, n int, keep func(owner int32) bool) (*dv.Matrix, int, error) {
	if len(blob) < len(shardMagic)+8 {
		return nil, 0, fmt.Errorf("core: recovery shard truncated (%d bytes)", len(blob))
	}
	if string(blob[:len(shardMagic)]) != shardMagic {
		return nil, 0, fmt.Errorf("core: not a recovery shard (magic %q)", blob[:len(shardMagic)])
	}
	payload := blob[len(shardMagic) : len(blob)-8]
	var sumBuf binReader
	sumBuf.r = bytes.NewReader(blob[len(blob)-8:])
	if crc32.ChecksumIEEE(payload) != uint32(sumBuf.i64()) {
		return nil, 0, ErrCorruptShard
	}
	dec := &binReader{r: bytes.NewReader(payload)}
	step := int(dec.i64())
	w := int(dec.i64())
	rowCount := int(dec.i64())
	if dec.err != nil || w < 0 || w > n || rowCount < 0 || rowCount > w {
		return nil, 0, fmt.Errorf("core: corrupt recovery shard header")
	}
	t := dv.NewMatrix(n)
	for i := 0; i < rowCount; i++ {
		owner := dec.i32()
		dirty := dec.bool()
		all := dec.bool()
		lo, hi := dec.i32(), dec.i32()
		_, _, _, _ = dirty, all, lo, hi // superseded: rejoin re-marks ship-all
		if dec.err != nil || owner < 0 || int(owner) >= w {
			return nil, 0, fmt.Errorf("core: corrupt recovery shard row %d", i)
		}
		if keep != nil && !keep(owner) {
			for j := 0; j < 2*w; j++ {
				dec.i32()
			}
			continue
		}
		row := t.AddRow(owner)
		for j := 0; j < w; j++ {
			row.D[j] = dec.i32()
		}
		for j := 0; j < w; j++ {
			row.NH[j] = dec.i32()
		}
		if dec.err != nil || row.D[owner] != 0 {
			return nil, 0, fmt.Errorf("core: corrupt recovery shard row %d", owner)
		}
	}
	t.ResizeCopies = dec.i64()
	if dec.err != nil {
		return nil, 0, fmt.Errorf("core: corrupt recovery shard: %w", dec.err)
	}
	return t, step, nil
}

// writeShards serializes every processor's table into its recovery shard,
// charging the serialization to each processor's LogP clock (the simulated
// local checkpoint-disk write). No-op without fault injection. Shards of
// down processors are rewritten too: their tables evolve with the journaled
// replay of dynamic changes, and resetDVs relies on the rewrite to
// invalidate stale pre-reset state everywhere.
func (e *Engine) writeShards() {
	if e.inj == nil {
		return
	}
	e.mach.Parallel(func(pid int) {
		wm := e.markProc(pid)
		p := e.procs[pid]
		shard := EncodeShard(p.table, e.step)
		e.shards[pid] = shard
		e.mach.Charge(pid, int64(len(shard)))
		addOps(&e.metrics.ShardBytes, int64(len(shard)))
		e.spanProc(obs.KindShardWrite, pid, wm, int64(len(shard)))
	})
	e.mach.Barrier()
	e.metrics.ShardsWritten += e.opts.P
}

// restoreShard replaces processor pid's table with its last recovery shard,
// reconciled against the current graph: shard rows still locally owned and
// alive are installed (columns added since the shard stay at InfDist);
// current local vertices missing from the shard (added or migrated in
// during the shard interval) get fresh rows re-seeded with their direct
// edges. Every resulting value is a valid upper bound, so the min-plus
// relaxation reconverges from it.
func (e *Engine) restoreShard(pid int) error {
	shard := e.shards[pid]
	if len(shard) == 0 {
		return fmt.Errorf("core: processor %d has no recovery shard", pid)
	}
	p := e.procs[pid]
	t, _, err := DecodeShard(shard, e.g.NumVertices(), func(owner int32) bool {
		// Deleted or migrated away since the shard: skip its values.
		return e.alive[owner] && e.part.Part[owner] == int32(pid)
	})
	if err != nil {
		return fmt.Errorf("core: processor %d: %w", pid, err)
	}
	// Local vertices with no shard row: added or migrated in after the
	// shard was written. They get fresh (all-InfDist) rows here and are
	// seeded below with everything else.
	for _, v := range p.sub.Local {
		if e.alive[v] && !t.Has(v) {
			t.AddRow(v)
		}
	}
	// Re-seed every row's incident direct edges (the IA seed). This is
	// what makes restore-from-shard sound: an edge added after the shard
	// was written is represented in neither endpoint's restored row, and
	// row-composition relaxation can never rediscover a direct edge on
	// its own — relaxing through row v requires a finite D[v] first.
	// Exactness of the min-plus fixed point needs every live edge
	// represented in its endpoints' rows; one-hop re-seeding restores
	// that invariant, and each seed is a valid upper bound.
	var ops int64
	for _, row := range t.Rows() {
		for _, a := range e.g.Neighbors(int(row.Owner)) {
			row.RelaxVia(a.To, a.Weight, a.To)
			ops++
		}
	}
	e.mach.Charge(pid, ops)
	p.table = t
	return nil
}

// applyFaultSchedule runs at the start of every RC step: due rejoins are
// processed first, then crashes scheduled for this step.
func (e *Engine) applyFaultSchedule() {
	if e.inj == nil {
		return
	}
	for p, at := range e.rejoinAt {
		if at >= 0 && e.step >= at {
			e.rejoin(p)
		}
	}
	for _, c := range e.inj.CrashesAt(e.step) {
		e.crash(c)
	}
}

// crash fails a processor at a step boundary: its in-memory state since the
// last recovery shard is lost, the shard is reloaded (the reboot-and-read
// cost charged to its clock), and the processor stops participating until
// its rejoin step. Snapshots turn degraded: the restored rows serve older —
// but still valid upper-bound — distances until reconvergence.
func (e *Engine) crash(c fault.Crash) {
	pid := c.Proc
	km := e.mark()
	if err := e.restoreShard(pid); err != nil {
		e.fail(err)
		return
	}
	downFor := c.DownFor
	if downFor <= 0 {
		downFor = 1
	}
	rejoin := e.step + downFor
	if e.down(pid) {
		// Crashing again while already down only extends the outage.
		if rejoin > e.rejoinAt[pid] {
			e.rejoinAt[pid] = rejoin
		}
		return
	}
	e.inj.SetDown(pid, true)
	e.rejoinAt[pid] = rejoin
	e.mach.Charge(pid, int64(len(e.shards[pid]))) // reboot: reload the shard
	e.degraded = true
	e.converged = false
	e.metrics.Crashes++
	e.spanProcMark(obs.KindCrash, pid, km, int64(downFor))
	e.tracef("crash", "processor %d down at step %d for %d steps (shard restored)", pid, e.step, downFor)
}

// rejoin brings a crashed processor back: all its rows are marked for a
// full re-ship (their receivers must re-relax against the restored values
// and whatever improves from here), every other processor's boundary row
// adjacent to the crashed part is marked for a full re-ship (the restored
// rows must re-receive what they missed), and local refinement is forced —
// the applyRepartition migration pattern, whose dirty cascade provably
// reconverges the engine to the sequential oracle.
func (e *Engine) rejoin(pid int) {
	jm := e.mark()
	e.inj.SetDown(pid, false)
	e.rejoinAt[pid] = -1
	e.mach.Parallel(func(q int) {
		p := e.procs[q]
		var ops int64
		if q == pid {
			for _, r := range p.table.Rows() {
				r.MarkShipAll()
				ops++
			}
			p.hasUpdate = p.table.Len() > 0
		} else {
			for _, v := range p.sub.LocalBoundary {
				r := p.table.Row(v)
				if r == nil {
					continue
				}
				adjacent := false
				for _, a := range e.g.Neighbors(int(v)) {
					ops++
					if e.part.Part[a.To] == int32(pid) {
						adjacent = true
						break
					}
				}
				if adjacent {
					r.MarkShipAll()
					p.hasUpdate = true
				}
			}
		}
		e.mach.Charge(q, ops)
	})
	e.mach.Barrier()
	e.forceRefine = true
	e.converged = false
	e.metrics.Recoveries++
	e.spanProcMark(obs.KindRejoin, pid, jm, 0)
	e.tracef("rejoin", "processor %d back at step %d, boundary re-ship scheduled", pid, e.step)
}

// handleFailedDeliveries re-marks the rows of boundary messages the lossy
// network abandoned (resend budget exhausted) for a full re-ship. The
// sender cleared their pending windows when it shipped them, so without the
// re-mark the receivers would never see the lost updates. It runs after
// relaxAll so the marks survive the end-of-step dirty clearing.
func (e *Engine) handleFailedDeliveries() {
	if e.inj == nil {
		return
	}
	for _, msg := range e.mach.TakeFailed() {
		p := e.procs[msg.From]
		for _, d := range msg.Payload.([]*dv.Delta) {
			if r := p.table.Row(d.Owner); r != nil {
				r.MarkShipAll()
				p.hasUpdate = true
			}
		}
	}
}
