package core

import (
	"testing"

	"anytime/internal/change"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/partition"
	"anytime/internal/sssp"
)

// testGraph builds a connected scale-free graph for engine tests.
func testGraph(t testing.TB, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, 2, gen.Weights{Min: 1, Max: 4}, seed)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	gen.Connectify(g, seed)
	return g
}

// requireExact verifies the engine's converged distances against the
// sequential Dijkstra oracle on the engine's own (possibly mutated) graph.
func requireExact(t *testing.T, e *Engine) {
	t.Helper()
	want := sssp.APSP(e.Graph())
	got := e.Distances()
	n := e.Graph().NumVertices()
	for v := 0; v < n; v++ {
		if got[v] == nil {
			if e.Alive(int32(v)) {
				t.Fatalf("vertex %d: no DV row", v)
			}
			continue
		}
		for u := 0; u < n; u++ {
			if !e.Alive(int32(u)) {
				continue
			}
			if got[v][u] != want[v][u] {
				t.Fatalf("dist[%d][%d] = %d, want %d", v, u, got[v][u], want[v][u])
			}
		}
	}
}

func defaultTestOptions(p int, seed int64) Options {
	o := NewOptions()
	o.P = p
	o.Seed = seed
	o.Workers = 2
	return o
}

// Unit-weight graphs take the heap-free BFS fast path in the IA phase. The
// switch must be invisible in results (exact distances), and the
// dynamic-change funnel must re-detect eligibility: adding a non-unit edge
// turns it off, deleting that edge turns it back on — staying exact
// throughout.
func TestUnitWeightBFSFastPath(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 2, gen.Weights{Min: 1, Max: 1}, 19)
	if err != nil {
		t.Fatal(err)
	}
	gen.Connectify(g, 19)
	e, err := New(g, defaultTestOptions(4, 19))
	if err != nil {
		t.Fatal(err)
	}
	if !e.unitWeight {
		t.Fatal("unit-weight graph not detected")
	}
	e.Run()
	requireExact(t, e)

	// a batch of unit-weight vertices keeps the fast path on (its IA sweep
	// runs BFS) and stays exact
	b, err := gen.PreferentialBatch(e.Graph(), 10, 2, 1, gen.Weights{Min: 1, Max: 1}, 23)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.unitWeight {
		t.Fatal("unit-weight batch disabled the fast path")
	}
	requireExact(t, e)

	// a weight-3 edge disqualifies the graph; Dijkstra takes over
	if err := e.QueueEdgeAdds(change.EdgeAdd{U: 0, V: 50, Weight: 3}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if e.unitWeight {
		t.Fatal("non-unit edge did not disable the fast path")
	}
	requireExact(t, e)

	// deleting it makes the graph unit-weight again
	if err := e.QueueEdgeDels(change.EdgeDel{U: 0, V: 50}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.unitWeight {
		t.Fatal("fast path did not re-enable after deletion")
	}
	requireExact(t, e)
}

func TestStaticConvergence(t *testing.T) {
	g := testGraph(t, 150, 7)
	e, err := New(g, defaultTestOptions(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	steps := e.Run()
	if !e.Converged() {
		t.Fatalf("not converged after %d steps", steps)
	}
	requireExact(t, e)
}

func TestStaticConvergenceAcrossPartitioners(t *testing.T) {
	g := testGraph(t, 120, 11)
	parts := []partition.Partitioner{
		partition.RoundRobin{},
		partition.Blocked{},
		partition.Random{Seed: 3},
		partition.Greedy{Seed: 3},
		partition.Multilevel{Seed: 3},
	}
	for _, p := range parts {
		t.Run(p.Name(), func(t *testing.T) {
			o := defaultTestOptions(5, 11)
			o.Partitioner = p
			e, err := New(g, o)
			if err != nil {
				t.Fatal(err)
			}
			e.Run()
			requireExact(t, e)
		})
	}
}

func TestStaticConvergenceP1(t *testing.T) {
	g := testGraph(t, 60, 3)
	o := defaultTestOptions(1, 3)
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	steps := e.Run()
	// With one processor the IA phase is already exact; one step detects it.
	if steps > 2 {
		t.Fatalf("P=1 took %d steps", steps)
	}
	requireExact(t, e)
}

func TestStaticNoLocalRefine(t *testing.T) {
	g := testGraph(t, 100, 5)
	o := defaultTestOptions(4, 5)
	o.NoLocalRefine = true
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
}

func TestStaticShipAllBoundary(t *testing.T) {
	g := testGraph(t, 100, 6)
	o := defaultTestOptions(4, 6)
	o.ShipAllBoundary = true
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
}

func vertexAdditionTest(t *testing.T, strat Strategy) {
	g := testGraph(t, 120, 13)
	o := defaultTestOptions(4, 13)
	o.Strategy = strat
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	b, err := gen.CommunityBatch(g, 24, 1.5, gen.Weights{Min: 1, Max: 3}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.Converged() {
		t.Fatal("not converged after batch")
	}
	if e.Graph().NumVertices() != 120+24 {
		t.Fatalf("graph has %d vertices", e.Graph().NumVertices())
	}
	requireExact(t, e)
	m := e.Metrics()
	if m.VerticesAdded != 24 {
		t.Fatalf("VerticesAdded = %d", m.VerticesAdded)
	}
	if m.EdgesAdded == 0 {
		t.Fatal("no edges recorded")
	}
}

func TestVertexAdditionRoundRobinPS(t *testing.T) { vertexAdditionTest(t, RoundRobinPS) }
func TestVertexAdditionCutEdgePS(t *testing.T)    { vertexAdditionTest(t, CutEdgePS) }
func TestVertexAdditionRepartitionS(t *testing.T) { vertexAdditionTest(t, RepartitionS) }

// Additions injected mid-computation (before convergence) must still
// converge to the exact result — the anywhere property.
func TestVertexAdditionMidComputation(t *testing.T) {
	for _, strat := range []Strategy{RoundRobinPS, CutEdgePS, RepartitionS} {
		t.Run(strat.String(), func(t *testing.T) {
			g := testGraph(t, 100, 17)
			o := defaultTestOptions(4, 17)
			o.Strategy = strat
			e, err := New(g, o)
			if err != nil {
				t.Fatal(err)
			}
			e.Step() // RC0 only
			b, err := gen.PreferentialBatch(g, 15, 2, 1, gen.Weights{Min: 1, Max: 3}, 17)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.QueueBatch(b); err != nil {
				t.Fatal(err)
			}
			e.Run()
			requireExact(t, e)
		})
	}
}

// A stream of split batches with cross-batch (pending) edges must resolve
// and converge (the incremental-additions scenario, Fig. 8).
func TestIncrementalSplitBatches(t *testing.T) {
	for _, strat := range []Strategy{RoundRobinPS, CutEdgePS, RepartitionS} {
		t.Run(strat.String(), func(t *testing.T) {
			g := testGraph(t, 90, 19)
			o := defaultTestOptions(3, 19)
			o.Strategy = strat
			e, err := New(g, o)
			if err != nil {
				t.Fatal(err)
			}
			full, err := gen.CommunityBatch(g, 30, 1.2, gen.Weights{Min: 1, Max: 2}, 19)
			if err != nil {
				t.Fatal(err)
			}
			for _, part := range gen.SplitBatch(full, 5) {
				if err := e.QueueBatch(part); err != nil {
					t.Fatal(err)
				}
				e.Step()
			}
			e.Run()
			if e.Graph().NumVertices() != 90+30 {
				t.Fatalf("graph has %d vertices", e.Graph().NumVertices())
			}
			requireExact(t, e)
		})
	}
}

func TestAnytimeMonotonicHarmonic(t *testing.T) {
	g := testGraph(t, 150, 23)
	e, err := New(g, defaultTestOptions(6, 23))
	if err != nil {
		t.Fatal(err)
	}
	prev := e.Snapshot()
	for i := 0; i < 100 && !e.Converged(); i++ {
		e.Step()
		cur := e.Snapshot()
		for v := range cur.Harmonic {
			if cur.Harmonic[v]+1e-12 < prev.Harmonic[v] {
				t.Fatalf("step %d: harmonic closeness of %d decreased: %g -> %g",
					cur.Step, v, prev.Harmonic[v], cur.Harmonic[v])
			}
		}
		prev = cur
	}
	if !e.Converged() {
		t.Fatal("did not converge")
	}
}

// Distances must be valid upper bounds at every intermediate step.
func TestAnytimeUpperBounds(t *testing.T) {
	g := testGraph(t, 100, 29)
	e, err := New(g, defaultTestOptions(4, 29))
	if err != nil {
		t.Fatal(err)
	}
	exact := sssp.APSP(g)
	for i := 0; i < 100 && !e.Converged(); i++ {
		got := e.Distances()
		for v := range got {
			for u, d := range got[v] {
				if d < exact[v][u] {
					t.Fatalf("step %d: dist[%d][%d]=%d below exact %d", i, v, u, d, exact[v][u])
				}
			}
		}
		e.Step()
	}
}

func TestEdgeAdditionsAndDeletions(t *testing.T) {
	g := testGraph(t, 80, 31)
	e, err := New(g, defaultTestOptions(4, 31))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	// add a shortcut edge between two far vertices
	if err := e.QueueEdgeAdds(change.EdgeAdd{U: 3, V: 77, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
	// then delete it again
	if err := e.QueueEdgeDels(change.EdgeDel{U: 3, V: 77}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
}

func TestVertexDeletion(t *testing.T) {
	g := testGraph(t, 80, 37)
	e, err := New(g, defaultTestOptions(4, 37))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.QueueVertexDel(10); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if e.Alive(10) {
		t.Fatal("vertex 10 still alive")
	}
	if e.Graph().Degree(10) != 0 {
		t.Fatal("vertex 10 still has edges")
	}
	requireExact(t, e)
	snap := e.Snapshot()
	if snap.Closeness[10] != 0 {
		t.Fatalf("deleted vertex has closeness %g", snap.Closeness[10])
	}
}

func TestBaselineRestartMatches(t *testing.T) {
	g := testGraph(t, 80, 41)
	o := defaultTestOptions(4, 41)
	r, err := NewRestart(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	b, err := gen.PreferentialBatch(g, 12, 2, 1, gen.Weights{Min: 1, Max: 2}, 41)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	rd, ed := r.Distances(), e.Distances()
	for v := range rd {
		for u := range rd[v] {
			if rd[v][u] != ed[v][u] {
				t.Fatalf("restart vs engine mismatch at [%d][%d]: %d vs %d", v, u, rd[v][u], ed[v][u])
			}
		}
	}
	// the baseline must be more expensive in virtual time
	if r.Metrics().VirtualTime <= e.Metrics().VirtualTime {
		t.Logf("warning: restart virtual time %v not above engine %v (tiny instance)",
			r.Metrics().VirtualTime, e.Metrics().VirtualTime)
	}
}

func TestSnapshotMatchesOracleCloseness(t *testing.T) {
	g := testGraph(t, 70, 43)
	e, err := New(g, defaultTestOptions(4, 43))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	snap := e.Snapshot()
	exact := sssp.APSP(g)
	for v := 0; v < g.NumVertices(); v++ {
		var sum int64
		for u, d := range exact[v] {
			if u != v && d != graph.InfDist {
				sum += int64(d)
			}
		}
		want := 0.0
		if sum > 0 {
			want = 1 / float64(sum)
		}
		if diff := snap.Closeness[v] - want; diff > 1e-15 || diff < -1e-15 {
			t.Fatalf("closeness[%d] = %g, want %g", v, snap.Closeness[v], want)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	g := testGraph(t, 20, 47)
	if _, err := New(g, Options{P: 40}); err == nil {
		t.Fatal("expected error for P > n")
	}
	e, err := New(g, defaultTestOptions(2, 47))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(&change.VertexBatch{NumVertices: -1}); err == nil {
		t.Fatal("expected error for negative batch")
	}
	if err := e.QueueEdgeAdds(change.EdgeAdd{U: 0, V: 0, Weight: 1}); err == nil {
		t.Fatal("expected error for self-loop")
	}
	if err := e.QueueVertexDel(99); err == nil {
		t.Fatal("expected error for out-of-range deletion")
	}
}

func TestMetricsAccounting(t *testing.T) {
	g := testGraph(t, 100, 53)
	o := defaultTestOptions(4, 53)
	o.Strategy = CutEdgePS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	m0 := e.Metrics()
	if m0.IAOps == 0 || m0.RCOps == 0 || m0.Comm.Messages == 0 || m0.VirtualTime == 0 {
		t.Fatalf("missing counters: %+v", m0)
	}
	b, err := gen.CommunityBatch(g, 16, 1.5, gen.Weights{Min: 1, Max: 2}, 53)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	m1 := e.Metrics()
	if m1.ChangeOps == 0 {
		t.Fatal("no change ops recorded")
	}
	if m1.NewCutEdges < 0 {
		t.Fatalf("negative new cut edges for CutEdge-PS: %d", m1.NewCutEdges)
	}
	if len(m1.ProcVertices) != 4 || len(m1.ProcCutSizes) != 4 {
		t.Fatalf("load metrics not refreshed: %+v", m1)
	}
	total := 0
	for _, s := range m1.ProcVertices {
		total += s
	}
	if total != e.Graph().NumVertices() {
		t.Fatalf("proc vertices sum %d != %d", total, e.Graph().NumVertices())
	}
}

// Repeated repartitions injected mid-analysis, including with the
// local-refine ablation flag set (the engine must force refinement on for
// Repartition-S), must stay exact. This stresses the reduced dirty-set
// logic after partial-result migration.
func TestRepartitionStress(t *testing.T) {
	g := testGraph(t, 110, 61)
	o := defaultTestOptions(4, 61)
	o.Strategy = RepartitionS
	o.NoLocalRefine = true // must be overridden internally for exactness
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		b, err := gen.CommunityBatch(e.Graph(), 18, 1.3, gen.Weights{Min: 1, Max: 3}, int64(61+round))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.QueueBatch(b); err != nil {
			t.Fatal(err)
		}
		e.Step() // inject while not converged
		e.Step()
	}
	e.Run()
	requireExact(t, e)
	m := e.Metrics()
	if m.Repartitions != 3 {
		t.Fatalf("repartitions = %d", m.Repartitions)
	}
}

// Label matching must keep migration bounded: repartitioning after a small
// addition should not relocate the majority of the graph.
func TestRepartitionLabelMatching(t *testing.T) {
	g := testGraph(t, 200, 67)
	o := defaultTestOptions(4, 67)
	o.Strategy = RepartitionS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	b, err := gen.PreferentialBatch(g, 10, 2, 1, gen.Weights{}, 67)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
	if m := e.Metrics(); m.RowsMigrated > 150 {
		t.Fatalf("label matching ineffective: %d of 200 rows migrated", m.RowsMigrated)
	}
}

func TestMatchPartLabelsIdentity(t *testing.T) {
	old := []int32{0, 0, 1, 1, 2, 2}
	// new partition identical up to a label permutation (0<->2)
	p := &graph.Partition{Part: []int32{2, 2, 1, 1, 0, 0}, K: 3}
	matchPartLabels(old, p)
	for v := range old {
		if p.Part[v] != old[v] {
			t.Fatalf("label matching failed: %v vs %v", p.Part, old)
		}
	}
}
