package core

import (
	"fmt"
	"testing"

	"anytime/internal/change"
	"anytime/internal/fault"
)

// chaosWorkload queues the dynamic changes used by the chaos tests: a
// vertex batch and an edge-addition event, so every run takes several RC
// steps and exercises the anywhere path while faults are firing. Additions
// only: distance bounds stay monotone, so snapshot monotonicity is
// assertable outside degraded windows.
func chaosWorkload(t *testing.T, e *Engine) {
	t.Helper()
	n := e.Graph().NumVertices()
	b := &change.VertexBatch{NumVertices: 4}
	for i := 0; i < 4; i++ {
		b.External = append(b.External, change.ExternalEdge{
			New: int32(i), Existing: int32((i * 13) % n), Weight: 1 + int32(i%3),
		})
	}
	b.Internal = append(b.Internal, change.InternalEdge{A: 0, B: 3, Weight: 2})
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := e.QueueEdgeAdds(change.EdgeAdd{U: 1, V: int32(n / 2), Weight: 1}); err != nil {
		t.Fatal(err)
	}
}

// probeSteps measures how many RC steps the fault-free engine needs for
// the chaos workload, so crash schedules can target early/mid/late timing.
func probeSteps(t *testing.T, n int, p int, seed int64) int {
	t.Helper()
	e, err := New(testGraph(t, n, seed), defaultTestOptions(p, seed))
	if err != nil {
		t.Fatal(err)
	}
	chaosWorkload(t, e)
	steps := e.Run()
	if !e.Converged() {
		t.Fatalf("probe did not converge in %d steps", steps)
	}
	return e.StepsTaken()
}

// TestChaosSoak is the acceptance sweep: ≥3 crash timings × ≥4 message-
// fault mixes, every plan reconverging exactly to the sequential Dijkstra
// oracle, with anytime-snapshot monotonicity holding outside degraded
// windows. Run it under -race (`make chaos`).
func TestChaosSoak(t *testing.T) {
	const n, P = 80, 4
	const seed = 21
	total := probeSteps(t, n, P, seed)
	if total < 4 {
		t.Fatalf("probe run too short (%d steps) for crash scheduling", total)
	}
	timings := map[string]int{
		"early": 1,
		"mid":   total / 2,
		"late":  total - 1,
	}
	mixes := map[string]fault.Plan{
		"drop":    {Seed: 101, DropRate: 0.10},
		"dup":     {Seed: 102, DuplicateRate: 0.10},
		"delay":   {Seed: 103, DelayRate: 0.10},
		"mixture": {Seed: 104, DropRate: 0.05, DuplicateRate: 0.05, DelayRate: 0.05, CorruptRate: 0.05},
	}
	for tn, step := range timings {
		for mn, plan := range mixes {
			plan := plan
			plan.Crashes = []fault.Crash{{Proc: (step + 1) % P, Step: step, DownFor: 2}}
			t.Run(fmt.Sprintf("%s-crash/%s", tn, mn), func(t *testing.T) {
				opts := defaultTestOptions(P, seed)
				opts.Faults = &plan
				opts.ShardEvery = 3
				e, err := New(testGraph(t, n, seed), opts)
				if err != nil {
					t.Fatal(err)
				}
				type obs struct {
					degraded bool
					harmonic []float64
				}
				var seen []obs
				e.SetStepHook(func(StepStats) {
					s := e.Snapshot()
					seen = append(seen, obs{s.Degraded, s.Harmonic})
				})
				chaosWorkload(t, e)
				steps := e.Run()
				if err := e.Err(); err != nil {
					t.Fatalf("engine error after %d steps: %v", steps, err)
				}
				if !e.Converged() {
					t.Fatalf("not converged after %d steps", steps)
				}
				requireExact(t, e)
				m := e.Metrics()
				if m.Crashes < 1 || m.Recoveries < 1 {
					t.Fatalf("crash schedule did not fire: crashes=%d recoveries=%d", m.Crashes, m.Recoveries)
				}
				if e.Degraded() {
					t.Fatal("engine still degraded after reconvergence")
				}
				if final := e.Snapshot(); final.Degraded || len(final.DownProcs) != 0 {
					t.Fatalf("final snapshot degraded=%v down=%v", final.Degraded, final.DownProcs)
				}
				sawDegraded := false
				for i := 1; i < len(seen); i++ {
					prev, cur := seen[i-1], seen[i]
					sawDegraded = sawDegraded || cur.degraded
					if prev.degraded || cur.degraded {
						continue // monotonicity is suspended while degraded
					}
					w := len(prev.harmonic)
					if len(cur.harmonic) < w {
						w = len(cur.harmonic)
					}
					for v := 0; v < w; v++ {
						if cur.harmonic[v] < prev.harmonic[v]-1e-9 {
							t.Fatalf("step %d: harmonic[%d] regressed %.12f -> %.12f outside a degraded window",
								i, v, prev.harmonic[v], cur.harmonic[v])
						}
					}
				}
				if !sawDegraded {
					t.Fatal("no degraded snapshot observed despite a scheduled crash")
				}
			})
		}
	}
}

// TestChaosZeroPlanBitIdentical pins the zero-fault plan to the
// pre-fault-layer path: identical distances, snapshots, and communication
// traffic. Virtual time is allowed to differ only by the recovery-shard
// writes the fault layer adds (the measured cost of resilience).
func TestChaosZeroPlanBitIdentical(t *testing.T) {
	const n, P, seed = 70, 4, 9
	run := func(withFaults bool) *Engine {
		opts := defaultTestOptions(P, seed)
		if withFaults {
			opts.Faults = &fault.Plan{Seed: 55} // all rates zero, no crashes
		}
		e, err := New(testGraph(t, n, seed), opts)
		if err != nil {
			t.Fatal(err)
		}
		chaosWorkload(t, e)
		e.Run()
		if !e.Converged() {
			t.Fatal("not converged")
		}
		return e
	}
	plain, faulted := run(false), run(true)
	dp, df := plain.Distances(), faulted.Distances()
	for v := range dp {
		for u := range dp[v] {
			if dp[v][u] != df[v][u] {
				t.Fatalf("dist[%d][%d] differs: %d vs %d", v, u, dp[v][u], df[v][u])
			}
		}
	}
	if plain.StepsTaken() != faulted.StepsTaken() {
		t.Fatalf("steps differ: %d vs %d", plain.StepsTaken(), faulted.StepsTaken())
	}
	mp, mf := plain.Metrics(), faulted.Metrics()
	if mp.Comm.Messages != mf.Comm.Messages || mp.Comm.Bytes != mf.Comm.Bytes ||
		mp.Comm.Chunks != mf.Comm.Chunks || mp.Comm.Broadcasts != mf.Comm.Broadcasts {
		t.Fatalf("comm differs:\nplain   %+v\nfaulted %+v", mp.Comm, mf.Comm)
	}
	if mf.Comm.Resends != 0 || mf.Comm.Dropped != 0 || mf.Comm.Failed != 0 {
		t.Fatalf("zero plan injected faults: %+v", mf.Comm)
	}
	if mf.ShardsWritten == 0 || mf.ShardBytes == 0 {
		t.Fatal("fault layer wrote no recovery shards")
	}
	if mf.VirtualTime < mp.VirtualTime {
		t.Fatalf("shard writes cannot reduce virtual time: %v < %v", mf.VirtualTime, mp.VirtualTime)
	}
}

// TestChaosDegradedLifecycle scripts one crash and watches the degraded
// flag: absent before the crash, set with the crashed processor listed
// while down, and cleared by reconvergence.
func TestChaosDegradedLifecycle(t *testing.T) {
	const n, P, seed = 60, 4, 5
	plan := &fault.Plan{Seed: 7, Crashes: []fault.Crash{{Proc: 2, Step: 1, DownFor: 2}}}
	opts := defaultTestOptions(P, seed)
	opts.Faults = plan
	opts.ShardEvery = 2
	e, err := New(testGraph(t, n, seed), opts)
	if err != nil {
		t.Fatal(err)
	}
	chaosWorkload(t, e)
	if s := e.Snapshot(); s.Degraded || len(s.DownProcs) != 0 {
		t.Fatalf("pre-crash snapshot already degraded: %+v", s.DownProcs)
	}
	var sawDown bool
	e.SetStepHook(func(st StepStats) {
		s := e.Snapshot()
		if len(s.DownProcs) > 0 {
			sawDown = true
			if !s.Degraded {
				t.Errorf("step %d: processor down but snapshot not degraded", st.Step)
			}
			if s.DownProcs[0] != 2 {
				t.Errorf("step %d: down = %v, want [2]", st.Step, s.DownProcs)
			}
		}
	})
	e.Run()
	if !e.Converged() || e.Err() != nil {
		t.Fatalf("converged=%v err=%v", e.Converged(), e.Err())
	}
	if !sawDown {
		t.Fatal("never observed the processor down")
	}
	requireExact(t, e)
	m := e.Metrics()
	if m.Crashes != 1 || m.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", m.Crashes, m.Recoveries)
	}
	if e.Snapshot().Degraded {
		t.Fatal("snapshot still degraded after reconvergence")
	}
}

// TestChaosCorruptShardFails flips a byte in a recovery shard: the crash
// restore must refuse it with a clear error instead of resurrecting a
// silently wrong table.
func TestChaosCorruptShardFails(t *testing.T) {
	const n, P, seed = 50, 4, 3
	plan := &fault.Plan{Crashes: []fault.Crash{{Proc: 1, Step: 1, DownFor: 1}}}
	opts := defaultTestOptions(P, seed)
	opts.Faults = plan
	e, err := New(testGraph(t, n, seed), opts)
	if err != nil {
		t.Fatal(err)
	}
	chaosWorkload(t, e)
	e.shards[1][len(e.shards[1])/2] ^= 0x40 // bit-flip mid-shard
	e.Run()
	if e.Err() == nil {
		t.Fatal("corrupt shard restored without error")
	}
	if e.Step() {
		t.Fatal("failed engine kept stepping")
	}
}

// TestChaosRepeatedCrashesSameProc crashes the same processor twice with
// message loss active and still requires oracle-exact reconvergence.
func TestChaosRepeatedCrashesSameProc(t *testing.T) {
	const n, P, seed = 70, 4, 13
	plan := &fault.Plan{
		Seed:     31,
		DropRate: 0.05,
		Crashes: []fault.Crash{
			{Proc: 0, Step: 1, DownFor: 1},
			{Proc: 0, Step: 4, DownFor: 2},
		},
	}
	opts := defaultTestOptions(P, seed)
	opts.Faults = plan
	opts.ShardEvery = 2
	e, err := New(testGraph(t, n, seed), opts)
	if err != nil {
		t.Fatal(err)
	}
	chaosWorkload(t, e)
	e.Run()
	if !e.Converged() || e.Err() != nil {
		t.Fatalf("converged=%v err=%v", e.Converged(), e.Err())
	}
	requireExact(t, e)
	if m := e.Metrics(); m.Crashes != 2 || m.Recoveries != 2 {
		t.Fatalf("crashes=%d recoveries=%d, want 2/2", m.Crashes, m.Recoveries)
	}
}
