package core

import "time"

// StepStats records what one recombination step did — the raw material for
// convergence plots and for diagnosing dynamic-change absorption.
type StepStats struct {
	// Step is the RC step index (0-based).
	Step int
	// BoundaryMessages is the number of boundary-DV messages shipped.
	BoundaryMessages int
	// RowsShipped is the number of distinct dirty boundary rows shipped.
	RowsShipped int
	// FullRowsShipped counts shipped rows that carried their entire width
	// (fresh, migrated, or disturbed rows); the remainder were delta
	// windows covering only the columns changed since the last ship.
	FullRowsShipped int
	// Bytes is the boundary-DV payload shipped this step.
	Bytes int64
	// RelaxOps is the relax/refine work performed this step.
	RelaxOps int64
	// Virtual is the cumulative simulated time after the step.
	Virtual time.Duration
	// ConvergedAfter reports whether the step ended converged (before any
	// queued change applied).
	ConvergedAfter bool
	// ChangeApplied names the dynamic change incorporated at the end of
	// the step ("" if none).
	ChangeApplied string

	// Convergence-quality telemetry: cheap anytime-quality proxies computed
	// every step (the live counterpart of the paper's Fig. 4 trajectories).
	// All per-proc slices are indexed by processor and freshly allocated per
	// step; a crashed processor reports its row count with zero dirty rows
	// and zero relax ops.

	// TotalRows is the number of DV rows across all processors.
	TotalRows int
	// DirtyRows counts rows still carrying un-propagated content after the
	// step; TotalRows - DirtyRows is the rows-converged quality proxy.
	DirtyRows int
	// MaxDeltaWidth is the widest boundary delta shipped this step (columns)
	// — the maximum residual update still moving through the cluster.
	MaxDeltaWidth int
	// ProcRows is the per-processor DV row count.
	ProcRows []int
	// ProcDirty is the per-processor dirty row count after the step.
	ProcDirty []int
	// ProcBoundary is the per-processor local-boundary vertex count.
	ProcBoundary []int
	// ProcRelaxOps is the per-processor relax/refine work of the step.
	ProcRelaxOps []int64
	// ProcBusy is the per-processor virtual *busy* time accrued during the
	// step (explicit LogP charges; barrier idling excluded).
	ProcBusy []time.Duration
	// Imbalance is max/mean over ProcBusy — the paper's Fig. 5 load-balance
	// metric, live per step. 1.0 is perfectly balanced.
	Imbalance float64

	// Frontier telemetry (the masked min-plus kernels, DESIGN.md §14).

	// FrontierWords is the number of nonzero frontier bitmask words across
	// all rows after the step (FAll rows count as fully set).
	FrontierWords int
	// MaskedOps is the subset of RelaxOps performed through masked sweeps —
	// columns actually visited under a frontier mask. Zero when masking is
	// disabled or every pass fell back to full sweeps.
	MaskedOps int64
	// FrontierDensity is set frontier bits / total DV cells after the step:
	// the quantity the ~25% density cutover is judged against, averaged over
	// the whole table.
	FrontierDensity float64
}

// History returns a copy of the per-step statistics recorded so far. The
// copy is safe to hold across further Step calls (the engine keeps
// appending to its own log); the per-proc slices inside each entry are
// shared and must be treated as read-only.
func (e *Engine) History() []StepStats {
	return append([]StepStats(nil), e.history...)
}

// AppendHistory appends the recorded per-step statistics to dst and returns
// the extended slice — the allocation-conscious variant of History for
// callers polling in a loop.
func (e *Engine) AppendHistory(dst []StepStats) []StepStats {
	return append(dst, e.history...)
}

// recordStep appends one step's statistics (called at the end of Step).
func (e *Engine) recordStep(s StepStats) {
	e.history = append(e.history, s)
}
