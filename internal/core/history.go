package core

import "time"

// StepStats records what one recombination step did — the raw material for
// convergence plots and for diagnosing dynamic-change absorption.
type StepStats struct {
	// Step is the RC step index (0-based).
	Step int
	// BoundaryMessages is the number of boundary-DV messages shipped.
	BoundaryMessages int
	// RowsShipped is the number of distinct dirty boundary rows shipped.
	RowsShipped int
	// FullRowsShipped counts shipped rows that carried their entire width
	// (fresh, migrated, or disturbed rows); the remainder were delta
	// windows covering only the columns changed since the last ship.
	FullRowsShipped int
	// Bytes is the boundary-DV payload shipped this step.
	Bytes int64
	// RelaxOps is the relax/refine work performed this step.
	RelaxOps int64
	// Virtual is the cumulative simulated time after the step.
	Virtual time.Duration
	// ConvergedAfter reports whether the step ended converged (before any
	// queued change applied).
	ConvergedAfter bool
	// ChangeApplied names the dynamic change incorporated at the end of
	// the step ("" if none).
	ChangeApplied string
}

// History returns the per-step statistics recorded so far. The slice is
// owned by the engine; callers must not modify it.
func (e *Engine) History() []StepStats { return e.history }

// recordStep appends one step's statistics (called at the end of Step).
func (e *Engine) recordStep(s StepStats) {
	e.history = append(e.history, s)
}
