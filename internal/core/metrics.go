package core

import (
	"time"

	"anytime/internal/cluster"
)

// Metrics aggregates the engine's cost counters. VirtualTime is the LogP
// simulated-cluster time (the quantity the paper plots in minutes);
// WallTime is the real elapsed time of the in-process simulation.
type Metrics struct {
	RCSteps     int           // recombination steps performed
	VirtualTime time.Duration // LogP virtual elapsed time
	WallTime    time.Duration // real elapsed time inside the engine

	Comm cluster.Stats // message/byte counters

	// Work counters, in abstract relaxation/heap operations, per phase.
	DDOps     int64 // domain decomposition (partitioning) work
	IAOps     int64 // initial approximation Dijkstra work
	RCOps     int64 // recombination relax/refine work
	ChangeOps int64 // dynamic-change incorporation work

	// Dynamic-change accounting.
	VerticesAdded int   // vertices added dynamically
	EdgesAdded    int   // edges added dynamically
	NewCutEdges   int   // net cut edges created by dynamic changes
	Repartitions  int   // Repartition-S invocations
	RowsMigrated  int   // DV rows relocated by repartitioning
	ResizeCopies  int64 // element copies from DV column extension

	// Fault-tolerance accounting (all zero without Options.Faults).
	Crashes       int   // scheduled processor crashes applied
	Recoveries    int   // rejoin protocols completed
	ShardsWritten int   // recovery shards serialized
	ShardBytes    int64 // total bytes of recovery shards written

	// Per-processor load after the most recent change (vertex counts and
	// cut sizes), for the load-balance analyses.
	ProcVertices []int
	ProcCutSizes []int
}

// add merges o's counters into m (used by the restart comparator to
// accumulate over repeated runs).
func (m *Metrics) add(o Metrics) {
	m.RCSteps += o.RCSteps
	m.VirtualTime += o.VirtualTime
	m.WallTime += o.WallTime
	m.Comm.Messages += o.Comm.Messages
	m.Comm.Chunks += o.Comm.Chunks
	m.Comm.Bytes += o.Comm.Bytes
	m.Comm.Broadcasts += o.Comm.Broadcasts
	m.Comm.Barriers += o.Comm.Barriers
	m.Comm.Steps += o.Comm.Steps
	m.DDOps += o.DDOps
	m.IAOps += o.IAOps
	m.RCOps += o.RCOps
	m.ChangeOps += o.ChangeOps
	m.VerticesAdded += o.VerticesAdded
	m.EdgesAdded += o.EdgesAdded
	m.NewCutEdges += o.NewCutEdges
	m.Repartitions += o.Repartitions
	m.RowsMigrated += o.RowsMigrated
	m.ResizeCopies += o.ResizeCopies
	m.Crashes += o.Crashes
	m.Recoveries += o.Recoveries
	m.ShardsWritten += o.ShardsWritten
	m.ShardBytes += o.ShardBytes
	m.ProcVertices = o.ProcVertices
	m.ProcCutSizes = o.ProcCutSizes
}
