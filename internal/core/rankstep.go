package core

import (
	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/transport"
)

// RankState is the single-rank facade over the RC phase for the
// multi-process runner (internal/rank): one OS process owns one rank and
// drives ship → exchange → relax over a Transport, reusing the exact
// per-processor relax/refine machinery the in-process Engine runs — the
// tiled blocked Floyd–Warshall pass, the delta-window shipping protocol,
// and the failed-delivery re-mark — so converged distances are identical
// across deployment shapes.
type RankState struct {
	g    *graph.Graph
	part *graph.Partition
	p    *proc

	refine  bool
	workers int
	tile    int

	// shipping scratch, mirroring Engine.shipBoundary
	shipSeen   []int64
	shipStamp  int64
	shipGroups [][]*dv.Delta
}

// NewRankState builds the RC-phase state of rank id over its sub-graph.
// The table must hold one row per live local vertex (the IA result).
// workers <= 0 and tile <= 0 pick the Options defaults.
func NewRankState(id int, g *graph.Graph, part *graph.Partition, sub *graph.Sub, table *dv.Matrix, refine bool, workers, tile int) *RankState {
	if workers <= 0 {
		workers = 2
	}
	if tile <= 0 {
		tile = 32
	}
	P := part.K
	return &RankState{
		g:          g,
		part:       part,
		p:          &proc{id: id, sub: sub, table: table},
		refine:     refine,
		workers:    workers,
		tile:       tile,
		shipSeen:   make([]int64, P),
		shipGroups: make([][]*dv.Delta, P),
	}
}

// Table returns the rank's DV matrix.
func (rs *RankState) Table() *dv.Matrix { return rs.p.table }

// ShipDeltas builds this step's outgoing boundary-DV messages: for every
// dirty local-boundary row, one delta snapshot per adjacent part (the
// changed column window only), exactly as Engine.shipBoundary does. The
// returned groups are indexed by destination rank (nil = nothing to send);
// ops is the snapshot cost. The payload slices are freshly allocated each
// step: over a real transport the frames encode immediately, but a fault
// wrapper may hold a delayed message across the step boundary.
func (rs *RankState) ShipDeltas() (groups [][]*dv.Delta, ops int64) {
	p := rs.p
	for q := range rs.shipGroups {
		rs.shipGroups[q] = nil
	}
	for _, v := range p.sub.LocalBoundary {
		r := p.table.Row(v)
		if r == nil {
			continue // deleted vertex
		}
		if !r.Dirty {
			continue
		}
		rs.shipStamp++
		var snap *dv.Delta
		for _, a := range rs.g.Neighbors(int(v)) {
			q := rs.part.Part[a.To]
			if int(q) == p.id || rs.shipSeen[q] == rs.shipStamp {
				continue
			}
			rs.shipSeen[q] = rs.shipStamp
			if snap == nil {
				snap = r.ShipDelta()
				ops += int64(len(snap.D))
			}
			rs.shipGroups[q] = append(rs.shipGroups[q], snap)
		}
		if snap != nil {
			r.ClearPending()
		}
	}
	return rs.shipGroups, ops
}

// RelaxPhase applies the received external boundary deltas (in inbox
// order) and runs the local refinement pass, mirroring the per-processor
// body of Engine.relaxAll: rows that entered the step dirty are pivoted,
// then their dirty mark clears unless they changed again. It returns the
// relax op count; HasUpdate reports whether boundary rows remain dirty.
func (rs *RankState) RelaxPhase(ext []*dv.Delta) int64 {
	p := rs.p
	rows := p.table.Rows()
	p.changed = resizeBools(p.changed, len(rows))
	p.pivot = resizeBools(p.pivot, len(rows))
	p.startDirty = resizeBools(p.startDirty, len(rows))
	for i, r := range rows {
		p.startDirty[i] = r.Dirty
		p.pivot[i] = rs.refine && r.Dirty
	}
	ops := p.relaxStep(ext, rs.refine, rs.workers, rs.tile)
	for i, r := range rows {
		if p.startDirty[i] && !p.changed[i] {
			r.ClearDirty()
		}
	}
	p.hasUpdate = false
	for _, v := range p.sub.LocalBoundary {
		if r := p.table.Row(v); r != nil && r.Dirty {
			p.hasUpdate = true
			break
		}
	}
	return ops
}

// HasUpdate reports whether the last RelaxPhase left a local-boundary row
// dirty — this rank's vote against convergence.
func (rs *RankState) HasUpdate() bool { return rs.p.hasUpdate }

// ClearFrontiers resets every row's change-frontier bitmask (and FAll
// marks). The runner calls it when the coordinator's decision broadcast
// carries the clean-fixpoint bit: the cluster reached an exact converged
// fixpoint with every rank alive, the anchor state from which the masked
// min-plus skip rule is provably sound. Clearing at the broadcast-decided
// boundary keeps frontier epochs — and masked sweeps — identical on every
// rank.
func (rs *RankState) ClearFrontiers() { rs.p.table.ClearFrontiers() }

// ReMarkFailed re-marks the rows of boundary messages the transport could
// not deliver (real send failures or injected faults that exhausted the
// resend budget) for a full re-ship — the single recovery path shared with
// Engine.handleFailedDeliveries. Call it after RelaxPhase so the marks
// survive the end-of-step dirty clearing.
func (rs *RankState) ReMarkFailed(failed []transport.Message) {
	for _, msg := range failed {
		deltas, ok := msg.Payload.([]*dv.Delta)
		if !ok {
			continue
		}
		for _, d := range deltas {
			if r := rs.p.table.Row(d.Owner); r != nil {
				r.MarkShipAll()
				rs.p.hasUpdate = true
			}
		}
	}
}
