package core

import (
	"fmt"

	"anytime/internal/change"
	"anytime/internal/graph"
)

// Restart is the paper's baseline comparator: a static analysis that has no
// anytime or anywhere property, so every dynamic change forces a full
// recomputation (DD + IA + RC from scratch on the updated graph). Its
// metrics accumulate across restarts, which is what Fig. 4 and Fig. 8 plot
// against the anytime-anywhere engine.
type Restart struct {
	opts      Options
	g         *graph.Graph
	engine    *Engine
	streamMap []int32
	metrics   Metrics
}

// NewRestart builds the baseline over a snapshot of g and runs the first
// full computation.
func NewRestart(g *graph.Graph, opts Options) (*Restart, error) {
	r := &Restart{opts: opts.withDefaults(), g: g.Clone()}
	if err := r.recompute(); err != nil {
		return nil, err
	}
	return r, nil
}

// recompute runs a complete static analysis on the current graph.
func (r *Restart) recompute() error {
	e, err := New(r.g, r.opts)
	if err != nil {
		return err
	}
	e.Run()
	r.engine = e
	r.metrics.add(e.Metrics())
	return nil
}

// ApplyBatch incorporates a vertex-addition batch by mutating the graph
// and restarting the analysis from scratch.
func (r *Restart) ApplyBatch(b *change.VertexBatch) error {
	if err := b.Validate(r.g.NumVertices()); err != nil {
		return err
	}
	first := r.g.AddVertices(b.NumVertices)
	for i := 0; i < b.NumVertices; i++ {
		r.streamMap = append(r.streamMap, int32(first+i))
	}
	add := func(u, v int, w graph.Weight) {
		if u != v && !r.g.HasEdge(u, v) {
			r.g.MustAddEdge(u, v, w)
		}
	}
	for _, ed := range b.Internal {
		add(first+int(ed.A), first+int(ed.B), ed.Weight)
	}
	for _, ed := range b.External {
		add(first+int(ed.New), int(ed.Existing), ed.Weight)
	}
	for _, ed := range b.Pending {
		if int(ed.EarlierBatchVertex) >= len(r.streamMap) {
			return fmt.Errorf("core: pending edge references unknown stream vertex %d", ed.EarlierBatchVertex)
		}
		add(first+int(ed.New), int(r.streamMap[ed.EarlierBatchVertex]), ed.Weight)
	}
	return r.recompute()
}

// Snapshot returns the result of the most recent full computation.
func (r *Restart) Snapshot() Snapshot { return r.engine.Snapshot() }

// Distances returns the distance matrix of the most recent computation.
func (r *Restart) Distances() [][]graph.Dist { return r.engine.Distances() }

// Metrics returns the counters accumulated over every restart.
func (r *Restart) Metrics() Metrics { return r.metrics }

// Graph returns the baseline's current graph (mutations applied).
func (r *Restart) Graph() *graph.Graph { return r.g }
