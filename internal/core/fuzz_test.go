package core

import (
	"bytes"
	"testing"
)

// Restore must never panic on malformed checkpoints, and must reject any
// mutation that breaks structural invariants (or, if the mutation only
// touches payload values, still produce a structurally valid engine).
func FuzzRestore(f *testing.F) {
	g := testGraph(f, 30, 211)
	e, err := New(g, defaultTestOptions(2, 211))
	if err != nil {
		f.Fatal(err)
	}
	e.Run()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(checkpointMagic))
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Restore(bytes.NewReader(data), defaultTestOptions(2, 211))
		if err != nil {
			return
		}
		// whatever was accepted must be usable
		if verr := r.Graph().Validate(); verr != nil {
			t.Fatalf("restored invalid graph: %v", verr)
		}
		_ = r.Snapshot()
		r.Run()
	})
}
