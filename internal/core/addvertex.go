package core

import (
	"sort"

	"anytime/internal/change"
	"anytime/internal/graph"
)

// applyBatch incorporates one dynamic vertex-addition batch using the
// configured processor-assignment strategy (the paper's Fig. 2/3
// recombination strategy: read changes → processor placement → vertex
// addition).
func (e *Engine) applyBatch(b *change.VertexBatch) {
	strat := e.opts.Strategy
	if strat == AutoPS {
		// the paper's Fig. 5/6 insight as a policy: incremental updates for
		// small batches, repartition-with-result-reuse for large ones
		if float64(b.NumVertices) >= e.opts.AutoThreshold*float64(e.g.NumVertices()) {
			strat = RepartitionS
		} else {
			strat = CutEdgePS
		}
	}
	if strat == RepartitionS {
		e.applyRepartition(b)
		return
	}
	assign := e.assignProcessors(b, strat)
	first := e.growGraph(b, assign)
	// Owner processors create rows for their new vertices (D[v]=0, rest ∞).
	for i := 0; i < b.NumVertices; i++ {
		v := int32(first + i)
		e.procs[assign[i]].table.AddRow(v)
	}
	// Edge additions: each new edge broadcasts its endpoint rows and
	// relaxes every processor's local rows against them (the anytime
	// anywhere edge-addition algorithm the vertex addition builds on).
	for _, ed := range e.resolveEdges(b, first) {
		e.applyEdgeAdd(ed.u, ed.v, ed.w, true)
	}
	e.afterTopologyChange()
	e.metrics.VerticesAdded += b.NumVertices
}

type resolvedEdge struct {
	u, v int
	w    graph.Weight
}

// resolveEdges converts a batch's edge lists to global vertex IDs, given
// the first global ID assigned to the batch. Pending edges resolve through
// the stream map.
func (e *Engine) resolveEdges(b *change.VertexBatch, first int) []resolvedEdge {
	out := make([]resolvedEdge, 0, b.NumEdges())
	for _, ed := range b.Internal {
		out = append(out, resolvedEdge{first + int(ed.A), first + int(ed.B), ed.Weight})
	}
	for _, ed := range b.External {
		out = append(out, resolvedEdge{first + int(ed.New), int(ed.Existing), ed.Weight})
	}
	for _, ed := range b.Pending {
		out = append(out, resolvedEdge{first + int(ed.New), int(e.streamMap[ed.EarlierBatchVertex]), ed.Weight})
	}
	return out
}

// growGraph adds the batch's vertices to the graph, the partition, the
// per-processor masks and DV tables (column extension with amortized
// doubling), and the stream map. Edges are NOT added here.
func (e *Engine) growGraph(b *change.VertexBatch, assign []int32) int {
	first := e.g.AddVertices(b.NumVertices)
	e.part.Extend(assign)
	for i := 0; i < b.NumVertices; i++ {
		e.alive = append(e.alive, true)
		e.streamMap = append(e.streamMap, int32(first+i))
	}
	for _, p := range e.procs {
		// extend the local mask; membership is set by rebuildSubs later,
		// but IsLocal must be sized for immediate use
		mask := make([]bool, e.g.NumVertices())
		copy(mask, p.sub.IsLocal)
		p.sub.IsLocal = mask
		p.table.ExtendCols(b.NumVertices)
	}
	for i := 0; i < b.NumVertices; i++ {
		e.procs[assign[i]].sub.IsLocal[first+i] = true
	}
	return first
}

// assignProcessors runs the resolved processor-assignment strategy over a
// batch and returns the processor of each new vertex.
func (e *Engine) assignProcessors(b *change.VertexBatch, strat Strategy) []int32 {
	switch strat {
	case CutEdgePS:
		return e.assignCutEdge(b)
	default:
		return e.assignRoundRobin(b)
	}
}

// assignRoundRobin is RoundRobin-PS: new vertices go to processors in a
// circular fashion. O(k) work, no communication.
func (e *Engine) assignRoundRobin(b *change.VertexBatch) []int32 {
	assign := make([]int32, b.NumVertices)
	for i := range assign {
		assign[i] = int32((e.rrNext + i) % e.opts.P)
	}
	e.rrNext = (e.rrNext + b.NumVertices) % e.opts.P
	e.metrics.ChangeOps += int64(b.NumVertices)
	e.chargeAll(int64(b.NumVertices) / int64(e.opts.P))
	return assign
}

// assignCutEdge is CutEdge-PS: the new vertices and the edges among them
// form an independent graph that is partitioned with the serial
// cut-optimizing partitioner (the METIS stand-in); the resulting parts are
// then mapped onto distinct processors to maximize affinity with the
// existing endpoints of the batch's external edges (minimizing the new cut
// edges), with processor load as the tie-breaker.
func (e *Engine) assignCutEdge(b *change.VertexBatch) []int32 {
	P := e.opts.P
	bg := b.BatchGraph()
	k := P
	if k > bg.NumVertices() {
		k = bg.NumVertices()
	}
	part, err := e.opts.BatchPartitioner.Partition(bg, k)
	if err != nil {
		// degenerate batch: fall back to round robin
		return e.assignRoundRobin(b)
	}
	// In the paper every processor computes the batch partition redundantly
	// and the best one is kept, so each processor is charged the full
	// serial partitioning cost.
	ops := partitionOps(bg.NumVertices(), bg.NumEdges())
	e.metrics.ChangeOps += ops
	e.chargeAll(ops)

	// affinity[j][p]: external+pending edges from part j into processor p
	aff := make([][]int64, k)
	for j := range aff {
		aff[j] = make([]int64, P)
	}
	for _, ed := range b.External {
		aff[part.Part[ed.New]][e.part.Part[ed.Existing]]++
	}
	for _, ed := range b.Pending {
		g := e.streamMap[ed.EarlierBatchVertex]
		aff[part.Part[ed.New]][e.part.Part[g]]++
	}
	var procOf []int32
	if e.opts.NaiveBatchMapping {
		procOf = make([]int32, k)
		for j := range procOf {
			procOf[j] = int32(j % P)
		}
	} else {
		procOf = e.mapPartsToProcs(aff)
	}

	assign := make([]int32, b.NumVertices)
	for i := range assign {
		assign[i] = procOf[part.Part[i]]
	}
	return assign
}

// mapPartsToProcs greedily matches batch parts to distinct processors in
// decreasing affinity order; leftovers go to the least-loaded processors.
func (e *Engine) mapPartsToProcs(aff [][]int64) []int32 {
	P := e.opts.P
	k := len(aff)
	type cand struct {
		part, proc int
		score      int64
	}
	var cands []cand
	for j := 0; j < k; j++ {
		for p := 0; p < P; p++ {
			if aff[j][p] > 0 {
				cands = append(cands, cand{j, p, aff[j][p]})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		if cands[a].part != cands[b].part {
			return cands[a].part < cands[b].part
		}
		return cands[a].proc < cands[b].proc
	})
	procOf := make([]int32, k)
	for j := range procOf {
		procOf[j] = -1
	}
	usedProc := make([]bool, P)
	for _, c := range cands {
		if procOf[c.part] != -1 || usedProc[c.proc] {
			continue
		}
		procOf[c.part] = int32(c.proc)
		usedProc[c.proc] = true
	}
	// parts with no (remaining) affinity: least-loaded unused processor
	// first, then least-loaded overall
	load := e.part.Sizes()
	for j := range procOf {
		if procOf[j] != -1 {
			continue
		}
		best, bestLoad, bestUnused := -1, 0, false
		for p := 0; p < P; p++ {
			unused := !usedProc[p]
			if best == -1 || (unused && !bestUnused) ||
				(unused == bestUnused && load[p] < bestLoad) {
				best, bestLoad, bestUnused = p, load[p], unused
			}
		}
		procOf[j] = int32(best)
		usedProc[best] = true
	}
	return procOf
}
