package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"anytime/internal/cluster"
	"anytime/internal/dv"
	"anytime/internal/fault"
	"anytime/internal/graph"
	"anytime/internal/kernel"
	"anytime/internal/obs"
)

// Checkpointing addresses the paper's stated future work on fault
// tolerance: the complete engine state — graph, partition, every
// processor's distance vectors, dirty marks, and cost counters — can be
// written at any RC-step boundary and restored into a fresh engine, which
// then continues exactly where the checkpoint was taken (bit-identical
// distances and deterministic continuation for the same Options).
//
// The format is a versioned little-endian binary stream; it is
// self-contained except for the Options (function values and interfaces
// are not serializable), which the caller supplies again at Restore and
// which must use the same P.

const (
	// checkpointMagic is the current format (v6): the v5 arena layout plus
	// each row's change-frontier state — an FAll flag and, when the row's
	// frontier is tracked precisely, its bitmask words — appended per
	// table, so a restored engine resumes masked min-plus sweeps without a
	// conservative full-frontier epoch.
	checkpointMagic = "AACKPT06"
	// checkpointMagicV5 is the previous format: CRC-guarded with
	// arena-style row layout (all headers, then every distance row back to
	// back, then every next-hop row), no frontier section. Still readable;
	// restored rows keep the conservative full frontier.
	checkpointMagicV5 = "AACKPT05"
	// checkpointMagicV4 is the older CRC-guarded format with
	// interleaved per-row encoding, still readable.
	checkpointMagicV4 = "AACKPT04"
	// checkpointMagicV3 is the legacy unguarded format, still readable.
	checkpointMagicV3 = "AACKPT03"
)

// ErrCorruptCheckpoint reports a checkpoint whose CRC32 trailer does not
// match its payload: the file was truncated or bit-flipped and must not be
// restored.
var ErrCorruptCheckpoint = errors.New("core: corrupt checkpoint (CRC32 mismatch)")

// WriteCheckpoint serializes the engine state. It fails if dynamic change
// events are still queued (checkpoint at event boundaries: call after
// Step/Run, before queueing more changes), if a processor is crashed (wait
// for the rejoin), or if the engine has an unrecoverable error.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	if e.err != nil {
		return fmt.Errorf("core: checkpoint of a failed engine: %w", e.err)
	}
	if e.anyDown() {
		return fmt.Errorf("core: checkpoint with processors %v down; wait for the rejoin", e.DownProcs())
	}
	if len(e.queue) > 0 {
		return fmt.Errorf("core: checkpoint with %d queued events; drain the queue first", len(e.queue))
	}
	wm := e.mark()
	var buf bytes.Buffer
	enc := &binWriter{w: &buf}
	e.encodePayload(enc)
	if enc.err != nil {
		return enc.err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if _, err := bw.Write(buf.Bytes()); err != nil {
		return err
	}
	tail := &binWriter{w: bw}
	tail.i64(int64(crc32.ChecksumIEEE(buf.Bytes())))
	if tail.err != nil {
		return tail.err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	e.span(obs.KindCheckpointWrite, wm, int64(buf.Len()))
	return nil
}

// encodePayload writes everything between the magic and the CRC trailer.
func (e *Engine) encodePayload(enc *binWriter) { e.encodePayloadVersion(enc, 6) }

// encodePayloadVersion writes the payload in the current (v6) or a legacy
// (v3/v4/v5) layout — the legacy paths only so tests can author old
// streams and pin the compatibility reader.
func (e *Engine) encodePayloadVersion(enc *binWriter, version int) {
	n := e.g.NumVertices()
	enc.i64(int64(n))
	enc.i64(int64(e.g.NumEdges()))
	e.g.ForEachEdge(func(u, v int, wt graph.Weight) {
		enc.i32(int32(u))
		enc.i32(int32(v))
		enc.i32(wt)
	})
	for _, a := range e.alive {
		enc.bool(a)
	}
	enc.i64(int64(e.opts.P))
	enc.i64(int64(e.step))
	enc.bool(e.converged)
	enc.bool(e.forceRefine)
	enc.i64(int64(e.rrNext))
	for _, p := range e.part.Part {
		enc.i32(p)
	}
	enc.i64(int64(len(e.streamMap)))
	for _, v := range e.streamMap {
		enc.i32(v)
	}
	for _, p := range e.procs {
		rows := p.table.Rows()
		enc.i64(int64(len(rows)))
		if version >= 5 {
			// Arena layout: headers first, then the distance rows back to
			// back, then the next-hop rows — three linear streams.
			for _, r := range rows {
				enc.i32(r.Owner)
				enc.bool(r.Dirty)
				all, lo, hi := r.PendingState()
				enc.bool(all)
				enc.i32(lo)
				enc.i32(hi)
			}
			for _, r := range rows {
				for _, d := range r.D[:n] {
					enc.i32(d)
				}
			}
			for _, r := range rows {
				for _, h := range r.NH[:n] {
					enc.i32(h)
				}
			}
			if version >= 6 {
				// Change-frontier section: FAll flag per row, then the
				// bitmask words of precisely-tracked rows. A masking-disabled
				// engine has not maintained the bits, so its rows persist as
				// FAll — the restored engine re-tracks from a conservative
				// full frontier instead of trusting stale masks.
				for _, r := range rows {
					all := r.FAll || e.opts.NoFrontierMask
					enc.bool(all)
					if all {
						continue
					}
					for _, w := range r.F {
						enc.i64(int64(w))
					}
				}
			}
		} else {
			for _, r := range rows {
				enc.i32(r.Owner)
				enc.bool(r.Dirty)
				all, lo, hi := r.PendingState()
				enc.bool(all)
				enc.i32(lo)
				enc.i32(hi)
				for _, d := range r.D[:n] {
					enc.i32(d)
				}
				for _, h := range r.NH[:n] {
					enc.i32(h)
				}
			}
		}
		enc.i64(p.table.ResizeCopies)
	}
	e.writeMetrics(enc, version >= 4)
}

// writeMetrics serializes the cost counters; v4+ appends the
// fault-injection and recovery counters the v3 format predates.
func (e *Engine) writeMetrics(enc *binWriter, v4 bool) {
	m := e.metrics
	st := e.mach.Stats()
	vals := []int64{
		int64(e.mach.VirtualTime()), int64(m.WallTime),
		st.Messages, st.Chunks, st.Bytes, st.Broadcasts, st.Barriers, st.Steps,
		m.DDOps, m.IAOps, m.RCOps, m.ChangeOps,
		int64(m.VerticesAdded), int64(m.EdgesAdded), int64(m.NewCutEdges),
		int64(m.Repartitions), int64(m.RowsMigrated),
	}
	for _, v := range vals {
		enc.i64(v)
	}
	for _, ts := range st.ByTag {
		enc.i64(ts.Messages)
		enc.i64(ts.Bytes)
	}
	if !v4 {
		return
	}
	for _, v := range []int64{
		st.Resends, st.Dropped, st.Duplicated, st.Delayed, st.Corrupted,
		st.Failed, st.DroppedDown,
		int64(m.Crashes), int64(m.Recoveries), int64(m.ShardsWritten), m.ShardBytes,
	} {
		enc.i64(v)
	}
	enc.bool(e.degraded)
}

// Restore reconstructs an engine from a checkpoint — current (AACKPT06,
// CRC32-verified before any decoding: a flipped byte yields
// ErrCorruptCheckpoint, never a silently wrong engine), the previous
// CRC-guarded AACKPT05/AACKPT04, or legacy AACKPT03 (unguarded). opts
// must use the same P as the checkpointed engine; the partitioners and
// LogP model may differ (they affect only future events and accounting).
func Restore(r io.Reader, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	var rm spanMark
	if opts.Obs != nil {
		rm.wall = opts.Obs.Now()
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	var dec *binReader
	version := 0
	switch string(magic) {
	case checkpointMagic:
		version = 6
	case checkpointMagicV5:
		version = 5
	case checkpointMagicV4:
		version = 4
	case checkpointMagicV3:
		version = 3
		dec = &binReader{r: br}
	default:
		return nil, fmt.Errorf("core: not an engine checkpoint (magic %q)", magic)
	}
	if version >= 4 {
		payload, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading checkpoint payload: %w", err)
		}
		if len(payload) < 8 {
			return nil, ErrCorruptCheckpoint
		}
		body, tail := payload[:len(payload)-8], payload[len(payload)-8:]
		if binary.LittleEndian.Uint64(tail) != uint64(crc32.ChecksumIEEE(body)) {
			return nil, ErrCorruptCheckpoint
		}
		dec = &binReader{r: bytes.NewReader(body)}
	}
	n := int(dec.i64())
	m := int(dec.i64())
	if dec.err != nil || n < 0 || m < 0 || n > graph.MaxParseVertices ||
		int64(m) > int64(n)*int64(n-1)/2 {
		return nil, fmt.Errorf("core: corrupt checkpoint header")
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v, wt := dec.i32(), dec.i32(), dec.i32()
		if dec.err != nil {
			return nil, fmt.Errorf("core: corrupt checkpoint edges: %w", dec.err)
		}
		if err := g.AddEdge(int(u), int(v), wt); err != nil {
			return nil, fmt.Errorf("core: corrupt checkpoint edge: %w", err)
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = dec.bool()
	}
	p := int(dec.i64())
	if p != opts.P {
		return nil, fmt.Errorf("core: checkpoint has P=%d, options have P=%d", p, opts.P)
	}
	cfg := opts.clusterConfig()
	var inj *fault.Injector
	if opts.Faults != nil {
		var ferr error
		if inj, ferr = fault.NewInjector(*opts.Faults, opts.P); ferr != nil {
			return nil, ferr
		}
		cfg.Fault = inj
	}
	mach, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{opts: opts, g: g, mach: mach, alive: alive}
	e.initFaults(inj)
	e.step = int(dec.i64())
	e.converged = dec.bool()
	e.forceRefine = dec.bool()
	e.rrNext = int(dec.i64())
	part := &graph.Partition{Part: make([]int32, n), K: p}
	for i := range part.Part {
		part.Part[i] = dec.i32()
	}
	if dec.err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint partition: %w", dec.err)
	}
	if err := part.Validate(g); err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint partition: %w", err)
	}
	e.part = part
	sm := int(dec.i64())
	if dec.err != nil || sm < 0 || sm > n {
		return nil, fmt.Errorf("core: corrupt checkpoint stream map")
	}
	e.streamMap = make([]int32, sm)
	for i := range e.streamMap {
		e.streamMap[i] = dec.i32()
	}
	e.procs = make([]*proc, p)
	for pid := 0; pid < p; pid++ {
		sub := graph.ExtractSub(g, part, int32(pid))
		t := dv.NewMatrix(n)
		rows := int(dec.i64())
		if dec.err != nil || rows < 0 || rows > n {
			return nil, fmt.Errorf("core: corrupt checkpoint table %d", pid)
		}
		readHeader := func() (*dv.Row, error) {
			owner := dec.i32()
			dirty := dec.bool()
			pendAll := dec.bool()
			pendLo, pendHi := dec.i32(), dec.i32()
			if dec.err != nil || owner < 0 || int(owner) >= n {
				return nil, fmt.Errorf("core: corrupt checkpoint row in table %d", pid)
			}
			if pendLo < 0 || pendLo > pendHi || int(pendHi) > n {
				return nil, fmt.Errorf("core: corrupt checkpoint pending window in table %d", pid)
			}
			if part.Part[owner] != int32(pid) {
				return nil, fmt.Errorf("core: checkpoint row %d not owned by processor %d", owner, pid)
			}
			row := t.AddRow(owner)
			row.Dirty = dirty
			row.SetPendingState(pendAll, pendLo, pendHi)
			return row, nil
		}
		fillD := func(row *dv.Row) error {
			for j := 0; j < n; j++ {
				row.D[j] = dec.i32()
			}
			if dec.err == nil && row.D[row.Owner] != 0 {
				return fmt.Errorf("core: checkpoint row %d has nonzero self distance", row.Owner)
			}
			return nil
		}
		fillNH := func(row *dv.Row) {
			for j := 0; j < n; j++ {
				row.NH[j] = dec.i32()
			}
		}
		if version >= 5 {
			// Arena layout: all headers, then all D rows, then all NH rows.
			for i := 0; i < rows; i++ {
				if _, err := readHeader(); err != nil {
					return nil, err
				}
			}
			for _, row := range t.Rows() {
				if err := fillD(row); err != nil {
					return nil, err
				}
			}
			for _, row := range t.Rows() {
				fillNH(row)
			}
			if version >= 6 {
				// Frontier section. Rows flagged FAll keep the conservative
				// full frontier AddRow installed; the rest restore their
				// exact bitmask words. Legacy streams (v3-v5) predate the
				// section and fall through to FAll for every row — the only
				// sound default for state checkpointed mid-convergence.
				words := kernel.BitsetWords(n)
				for _, row := range t.Rows() {
					if dec.bool() {
						continue
					}
					row.FAll = false
					for wi := 0; wi < words; wi++ {
						row.F[wi] = uint64(dec.i64())
					}
					if tail := uint(n & 63); tail != 0 {
						// bits at or above the column count must stay zero
						row.F[words-1] &= 1<<tail - 1
					}
				}
				if dec.err != nil {
					return nil, fmt.Errorf("core: corrupt checkpoint frontier in table %d", pid)
				}
			}
		} else {
			for i := 0; i < rows; i++ {
				row, err := readHeader()
				if err != nil {
					return nil, err
				}
				if err := fillD(row); err != nil {
					return nil, err
				}
				fillNH(row)
			}
		}
		t.ResizeCopies = dec.i64()
		e.procs[pid] = &proc{id: pid, sub: sub, table: t, tr: opts.Obs, maskOff: opts.NoFrontierMask}
	}
	e.readMetrics(dec, version >= 4)
	if dec.err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint: %w", dec.err)
	}
	// sanity: every alive vertex has exactly one row
	seen := 0
	for _, pr := range e.procs {
		seen += pr.table.Len()
	}
	want := 0
	for _, a := range alive {
		if a {
			want++
		}
	}
	if seen != want {
		return nil, fmt.Errorf("core: checkpoint has %d rows for %d alive vertices", seen, want)
	}
	e.refreshWeightProfile()
	e.refreshLoadMetrics()
	e.writeShards() // fresh recovery shards (no-op without Options.Faults)
	e.span(obs.KindCheckpointRestore, rm, int64(n))
	return e, nil
}

func (e *Engine) readMetrics(dec *binReader, v4 bool) {
	virtual := dec.i64()
	e.metrics.WallTime = time.Duration(dec.i64())
	restored := cluster.Stats{
		Messages: dec.i64(), Chunks: dec.i64(), Bytes: dec.i64(),
		Broadcasts: dec.i64(), Barriers: dec.i64(), Steps: dec.i64(),
	}
	e.metrics.DDOps = dec.i64()
	e.metrics.IAOps = dec.i64()
	e.metrics.RCOps = dec.i64()
	e.metrics.ChangeOps = dec.i64()
	e.metrics.VerticesAdded = int(dec.i64())
	e.metrics.EdgesAdded = int(dec.i64())
	e.metrics.NewCutEdges = int(dec.i64())
	e.metrics.Repartitions = int(dec.i64())
	e.metrics.RowsMigrated = int(dec.i64())
	for i := range restored.ByTag {
		restored.ByTag[i].Messages = dec.i64()
		restored.ByTag[i].Bytes = dec.i64()
	}
	if v4 {
		restored.Resends = dec.i64()
		restored.Dropped = dec.i64()
		restored.Duplicated = dec.i64()
		restored.Delayed = dec.i64()
		restored.Corrupted = dec.i64()
		restored.Failed = dec.i64()
		restored.DroppedDown = dec.i64()
		e.metrics.Crashes = int(dec.i64())
		e.metrics.Recoveries = int(dec.i64())
		e.metrics.ShardsWritten = int(dec.i64())
		e.metrics.ShardBytes = dec.i64()
		e.degraded = dec.bool()
	}
	if dec.err == nil {
		e.mach.Restore(time.Duration(virtual), restored)
	}
}

// WriteCheckpointFile writes a checkpoint to path atomically: the bytes go
// to a temporary file in the same directory, which is fsynced and then
// renamed over path. A crash at any point leaves either the previous
// checkpoint or the complete new one — never a torn file.
func (e *Engine) WriteCheckpointFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := e.WriteCheckpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// RestoreFile reconstructs an engine from a checkpoint file written by
// WriteCheckpointFile (or any WriteCheckpoint output on disk).
func RestoreFile(path string, opts Options) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f, opts)
}

// binWriter/binReader are little-endian encoders with sticky errors.
type binWriter struct {
	w   io.Writer
	buf [8]byte
	err error
}

func (b *binWriter) i32(v int32) {
	if b.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(b.buf[:4], uint32(v))
	_, b.err = b.w.Write(b.buf[:4])
}

func (b *binWriter) i64(v int64) {
	if b.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(b.buf[:8], uint64(v))
	_, b.err = b.w.Write(b.buf[:8])
}

func (b *binWriter) bool(v bool) {
	if v {
		b.i32(1)
	} else {
		b.i32(0)
	}
}

type binReader struct {
	r   io.Reader
	buf [8]byte
	err error
}

func (b *binReader) i32() int32 {
	if b.err != nil {
		return 0
	}
	if _, b.err = io.ReadFull(b.r, b.buf[:4]); b.err != nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(b.buf[:4]))
}

func (b *binReader) i64() int64 {
	if b.err != nil {
		return 0
	}
	if _, b.err = io.ReadFull(b.r, b.buf[:8]); b.err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b.buf[:8]))
}

func (b *binReader) bool() bool { return b.i32() != 0 }
