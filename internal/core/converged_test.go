package core

import (
	"testing"

	"anytime/internal/gen"
)

// NewConverged must hand back an engine that is already at the exact
// global fixpoint: converged, oracle-exact, every row clean with an empty
// frontier (the anchor epoch the masked kernels measure against), and a
// Step that finds nothing to do.
func TestNewConvergedWarmStart(t *testing.T) {
	g := testGraph(t, 300, 7)
	e, err := NewConverged(g, defaultTestOptions(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Converged() {
		t.Fatal("NewConverged engine does not report converged")
	}
	requireExact(t, e)
	for _, p := range e.procs {
		for _, r := range p.table.Rows() {
			if r.Dirty {
				t.Fatalf("row %d dirty after converged construction", r.Owner)
			}
			if r.FAll || r.F.Any() {
				t.Fatalf("row %d frontier not clear after converged construction", r.Owner)
			}
		}
	}
	if e.Step() {
		t.Fatal("Step found work on a converged warm start")
	}

	// The warm start must be a legitimate convergence epoch: absorbing a
	// vertex batch from it reconverges to the exact answer, with the masked
	// relax path active (this is exactly the paper-scale measurement flow).
	b, err := gen.PreferentialBatch(e.Graph(), 8, 2, 1, gen.Weights{Min: 1, Max: 4}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	if e.Run() == 0 {
		t.Fatal("batch absorption took no steps")
	}
	if !e.Converged() {
		t.Fatal("engine did not reconverge after the batch")
	}
	requireExact(t, e)
}

// The converged warm start must agree with the cold path not just on
// distances but on the downstream dynamic behaviour: the same queued batch
// absorbed by a cold-started (New + Run) engine and a warm-started one
// yields bit-identical distance tables.
func TestNewConvergedMatchesColdStart(t *testing.T) {
	mk := func(warm bool) *Engine {
		g := testGraph(t, 240, 13)
		opts := defaultTestOptions(4, 13)
		var e *Engine
		var err error
		if warm {
			e, err = NewConverged(g, opts)
		} else {
			e, err = New(g, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		e.Run()
		b, err := gen.PreferentialBatch(e.Graph(), 6, 2, 1, gen.Weights{Min: 1, Max: 4}, 29)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.QueueBatch(b); err != nil {
			t.Fatal(err)
		}
		e.Run()
		if !e.Converged() {
			t.Fatal("engine did not converge")
		}
		return e
	}
	cold, warm := mk(false), mk(true)
	cd, wd := cold.Distances(), warm.Distances()
	for v := range cd {
		if cd[v] == nil || wd[v] == nil {
			t.Fatalf("vertex %d: missing row (cold=%v warm=%v)", v, cd[v] == nil, wd[v] == nil)
		}
		for u := range cd[v] {
			if cd[v][u] != wd[v][u] {
				t.Fatalf("dist[%d][%d]: cold %d, warm %d", v, u, cd[v][u], wd[v][u])
			}
		}
	}
}
