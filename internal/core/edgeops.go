package core

import (
	"anytime/internal/change"
	"anytime/internal/cluster"
	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/kernel"
)

// applyEdgeAdd incorporates one new edge {u,v} (Fig. 3 lines 19-44): the
// rows of both endpoints are tree-broadcast, and — if the edge actually
// shortens the u-v distance — every processor relaxes its local rows
// through the new edge in both directions:
//
//	D(x,t) = min(D(x,t), D(x,u)+w+D_v(t), D(x,v)+w+D_u(t))
//
// dynamicCut, when true, counts a created cut edge into the metrics.
func (e *Engine) applyEdgeAdd(u, v int, w graph.Weight, dynamicCut bool) {
	if e.g.HasEdge(u, v) {
		// keep the better weight; a heavier duplicate is a no-op
		if old, _ := e.g.EdgeWeight(u, v); w >= old {
			return
		}
		if err := e.g.RemoveEdge(u, v); err != nil {
			panic(err)
		}
	}
	if err := e.g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
	e.metrics.EdgesAdded++
	if dynamicCut && e.part.Part[u] != e.part.Part[v] {
		e.metrics.NewCutEdges++
	}
	ownerU := int(e.part.Part[u])
	ownerV := int(e.part.Part[v])
	rowU := e.procs[ownerU].table.Row(int32(u))
	rowV := e.procs[ownerV].table.Row(int32(v))
	if rowU == nil || rowV == nil {
		// deleted endpoint: topology recorded, DV reset handles the rest
		return
	}
	// The edge's endpoints are the only vertices whose part-adjacency the
	// new edge can change: each may now border a part that has never seen
	// any version of its row, so their next ship carries the full row.
	// Every other row keeps its delta window (its receivers are unchanged).
	// The frontier survives: every endpoint-row change below goes through a
	// recorded relax scan, so the change extent stays exactly tracked and
	// receivers can still mask their sweeps.
	rowU.MarkShipFull()
	rowV.MarkShipFull()
	// Fig. 3 line 26: only edges that improve the endpoint distance
	// trigger the update pass.
	improves := graph.AddDist(rowU.D[int32(v)], 0) > w
	snapU := dv.CopyRow(rowU)
	snapV := dv.CopyRow(rowV)
	bytes := 4*e.g.NumVertices() + 8
	if _, err := e.mach.Broadcast(ownerU, cluster.Message{Tag: cluster.TagNewVertexRow, Bytes: bytes}); err != nil {
		e.fail(err)
		return
	}
	if _, err := e.mach.Broadcast(ownerV, cluster.Message{Tag: cluster.TagNewVertexRow, Bytes: bytes}); err != nil {
		e.fail(err)
		return
	}
	if !improves {
		return
	}
	ui, vi := int32(u), int32(v)
	e.mach.Parallel(func(pid int) {
		p := e.procs[pid]
		var ops int64
		for _, x := range p.table.Rows() {
			ops += relaxViaEdge(x, ui, vi, w, snapU.D, snapV.D)
		}
		e.mach.Charge(pid, ops)
		addOps(&e.metrics.ChangeOps, ops)
	})
	e.mach.Barrier()
}

// relaxViaEdge performs the Fig. 3 lines 27-33 scan for one local row x
// against a new edge {u,v,w}: every target t is tested against the two
// compositions through the edge,
//
//	D(x,t) = min(D(x,t), D(x,u)+w+D_v(t), D(x,v)+w+D_u(t)),
//
// using the broadcast snapshots of the endpoint rows. The full scan (not a
// pruned one) is the paper's immediate-update cost — the very overhead
// that makes Repartition-S preferable for large batches. Returns the
// operation count.
func relaxViaEdge(x *dv.Row, u, v int32, w graph.Weight, du, dvv []graph.Dist) int64 {
	xu := graph.AddDist(x.D[u], w) // prefix x → u → v
	xv := graph.AddDist(x.D[v], w) // prefix x → v → u
	if xu == graph.InfDist && xv == graph.InfDist {
		return 2
	}
	// first hops of the two prefixes (the new edge itself when x is an
	// endpoint)
	nhu := v
	if x.Owner != u {
		nhu = x.NH[u]
	}
	nhv := u
	if x.Owner != v {
		nhv = x.NH[v]
	}
	// Snapshots may be narrower than x.D if columns were extended after
	// they were taken; the missing tail is InfDist.
	n := len(x.D)
	if len(du) < n {
		n = len(du)
	}
	if len(dvv) < n {
		n = len(dvv)
	}
	xD, xNH := x.D[:n], x.NH[:n]
	// Two kernel passes over the two compositions. Equivalent to the fused
	// per-target min: every applied update is a strict decrease, and the
	// second pass compares against the first pass's result. Improvements
	// land in x's frontier so later masked sweeps see them.
	if xu != graph.InfDist {
		if lo, hi := kernel.MinPlusHopsRec(xD, xNH, dvv[:n], xu, nhu, x.F, 0); lo < hi {
			x.MarkChanged(lo, hi)
		}
	}
	if xv != graph.InfDist {
		if lo, hi := kernel.MinPlusHopsRec(xD, xNH, du[:n], xv, nhv, x.F, 0); lo < hi {
			x.MarkChanged(lo, hi)
		}
	}
	return 2 * int64(n)
}

// afterTopologyChange rebuilds the per-processor boundary structures from
// the mutated graph. The rows the change disturbed are already marked for
// shipping at the mutation sites: applyEdgeAdd marks the edge endpoints
// ship-all (the only rows whose receiver set a new edge can extend) and
// window-marks every row the relax pass improved; deletion paths rebuild
// the tables outright (every fresh row ships in full).
func (e *Engine) afterTopologyChange() {
	e.rebuildSubs()
	e.converged = false
}

// rebuildSubs re-extracts every processor's sub-graph structure (local,
// boundary, and local-boundary sets) after a topology or partition change.
func (e *Engine) rebuildSubs() {
	e.mach.Parallel(func(pid int) {
		e.procs[pid].sub = graph.ExtractSub(e.g, e.part, int32(pid))
	})
}

// applyEdgeDels incorporates dynamic edge deletions. Deletions invalidate
// the monotone upper-bound invariant (previously computed shortest paths
// may have used the deleted edges), so the engine falls back to the
// anytime property at a coarser granularity: it keeps the partition (DD is
// reused) and recomputes the IA phase, after which RC steps reconverge.
// This mirrors the role of the paper's companion edge-deletion work.
func (e *Engine) applyEdgeDels(dels []change.EdgeDel) {
	removed := 0
	for _, d := range dels {
		if err := e.g.RemoveEdge(int(d.U), int(d.V)); err == nil {
			removed++
		}
	}
	if removed == 0 {
		return
	}
	e.resetDVs()
}

// applyVertexDel incorporates a dynamic vertex deletion (the paper's
// future work): all incident edges are removed, the vertex's row is
// dropped, and its column decays to InfDist after the DV reset. The vertex
// ID remains allocated (tombstone) and is excluded from centrality.
func (e *Engine) applyVertexDel(v int32) {
	if int(v) >= len(e.alive) || !e.alive[v] {
		return
	}
	for _, a := range append([]graph.Arc(nil), e.g.Neighbors(int(v))...) {
		if err := e.g.RemoveEdge(int(v), int(a.To)); err != nil {
			panic(err)
		}
	}
	e.alive[v] = false
	owner := e.procs[e.part.Part[v]]
	owner.table.RemoveRow(v)
	e.resetDVs()
}

// resetDVs drops all distance state and recomputes the IA phase over the
// current topology, reusing the existing partition (anytime reuse of the
// DD phase). All boundary rows become dirty, so the following RC steps
// rebuild the global solution.
func (e *Engine) resetDVs() {
	e.rebuildSubs()
	e.mach.Parallel(func(pid int) {
		p := e.procs[pid]
		t := dv.NewMatrix(e.g.NumVertices())
		for _, v := range p.sub.Local {
			if e.alive[v] {
				t.AddRow(v)
			}
		}
		t.ResizeCopies = p.table.ResizeCopies
		p.table = t
	})
	e.initialApproximation()
	// The reset invalidated the monotone upper-bound invariant for any
	// older state: stale recovery shards could restore distances through
	// now-deleted edges, so every shard is rewritten from the fresh tables.
	e.writeShards()
	e.forceRefine = true
	e.converged = false
}

// applyWeightChanges incorporates dynamic edge-weight changes. A decrease
// behaves exactly like an edge addition with a better weight: the
// incremental immediate-update scan applies and RC steps re-converge. An
// increase (or a change to a non-existent edge) breaks the monotone
// upper-bound invariant, so — like deletions — the engine reuses the
// partition but recomputes the IA phase.
func (e *Engine) applyWeightChanges(chs []change.EdgeWeight) {
	needReset := false
	for _, c := range chs {
		old, ok := e.g.EdgeWeight(int(c.U), int(c.V))
		switch {
		case !ok || c.Weight > old:
			if ok {
				if err := e.g.RemoveEdge(int(c.U), int(c.V)); err != nil {
					panic(err)
				}
			}
			if err := e.g.AddEdge(int(c.U), int(c.V), c.Weight); err != nil {
				panic(err)
			}
			needReset = true
		case c.Weight < old:
			e.applyEdgeAdd(int(c.U), int(c.V), c.Weight, false)
		default:
			// unchanged weight: nothing to do
		}
	}
	if needReset {
		e.resetDVs()
		return
	}
	e.afterTopologyChange()
}
