package core

import (
	"bytes"
	"testing"

	"anytime/internal/gen"
)

// Checkpoint mid-run, restore, continue: the resumed engine must follow
// the identical trajectory (distances, steps, metrics) as the original.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	g := testGraph(t, 120, 101)
	o := defaultTestOptions(4, 101)
	o.Strategy = CutEdgePS

	// reference run, uninterrupted
	ref, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.CommunityBatch(g, 20, 1.5, gen.Weights{Min: 1, Max: 3}, 101)
	if err != nil {
		t.Fatal(err)
	}
	ref.Step()
	ref.Step()
	if err := ref.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	ref.Run()

	// interrupted run: checkpoint after two steps, restore, continue
	e1, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e1.Step()
	e1.Step()
	var buf bytes.Buffer
	if err := e1.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if e2.StepsTaken() != 2 {
		t.Fatalf("restored step count = %d", e2.StepsTaken())
	}
	if err := e2.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e2.Run()

	requireExact(t, e2)
	rd, ed := ref.Distances(), e2.Distances()
	for v := range rd {
		for u := range rd[v] {
			if rd[v][u] != ed[v][u] {
				t.Fatalf("resumed run diverged at [%d][%d]", v, u)
			}
		}
	}
	rm, em := ref.Metrics(), e2.Metrics()
	if rm.RCSteps != em.RCSteps || rm.VirtualTime != em.VirtualTime ||
		rm.Comm.Messages != em.Comm.Messages {
		t.Fatalf("resumed metrics diverged: %+v vs %+v", rm, em)
	}
}

func TestCheckpointAfterDynamicChanges(t *testing.T) {
	g := testGraph(t, 90, 103)
	o := defaultTestOptions(3, 103)
	o.Strategy = RepartitionS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.PreferentialBatch(g, 12, 2, 1, gen.Weights{}, 103)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, r)
	if r.Graph().NumVertices() != 102 {
		t.Fatalf("restored graph has %d vertices", r.Graph().NumVertices())
	}
	m := r.Metrics()
	if m.VerticesAdded != 12 || m.Repartitions != 1 {
		t.Fatalf("restored metrics lost history: %+v", m)
	}
	// the restored engine keeps absorbing changes
	b2, err := gen.PreferentialBatch(r.Graph(), 8, 2, 1, gen.Weights{}, 104)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.QueueBatch(b2); err != nil {
		t.Fatal(err)
	}
	r.Run()
	requireExact(t, r)
}

func TestCheckpointRejectsQueuedEvents(t *testing.T) {
	g := testGraph(t, 60, 107)
	e, err := New(g, defaultTestOptions(3, 107))
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.PreferentialBatch(g, 5, 2, 0, gen.Weights{}, 107)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err == nil {
		t.Fatal("checkpoint with queued events should fail")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	o := defaultTestOptions(2, 1)
	cases := [][]byte{
		nil,
		[]byte("not a checkpoint"),
		[]byte(checkpointMagic), // truncated after magic
	}
	for i, c := range cases {
		if _, err := Restore(bytes.NewReader(c), o); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// valid checkpoint, wrong P
	g := testGraph(t, 40, 109)
	e, err := New(g, defaultTestOptions(2, 109))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	wrongP := defaultTestOptions(3, 109)
	if _, err := Restore(bytes.NewReader(buf.Bytes()), wrongP); err == nil {
		t.Fatal("P mismatch accepted")
	}
	// corrupt a byte in the middle
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/3] ^= 0xff
	if _, err := Restore(bytes.NewReader(data), defaultTestOptions(2, 109)); err == nil {
		t.Log("bit flip not detected structurally (acceptable if it hit a distance value)")
	}
}

func TestCheckpointWithDeletedVertex(t *testing.T) {
	g := testGraph(t, 70, 113)
	o := defaultTestOptions(3, 113)
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.QueueVertexDel(5); err != nil {
		t.Fatal(err)
	}
	e.Run()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Alive(5) {
		t.Fatal("restored engine resurrected deleted vertex")
	}
	requireExact(t, r)
}
