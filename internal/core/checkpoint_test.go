package core

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"anytime/internal/change"
	"anytime/internal/fault"
	"anytime/internal/gen"
)

// Checkpoint mid-run, restore, continue: the resumed engine must follow
// the identical trajectory (distances, steps, metrics) as the original.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	g := testGraph(t, 120, 101)
	o := defaultTestOptions(4, 101)
	o.Strategy = CutEdgePS

	// reference run, uninterrupted
	ref, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.CommunityBatch(g, 20, 1.5, gen.Weights{Min: 1, Max: 3}, 101)
	if err != nil {
		t.Fatal(err)
	}
	ref.Step()
	ref.Step()
	if err := ref.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	ref.Run()

	// interrupted run: checkpoint after two steps, restore, continue
	e1, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e1.Step()
	e1.Step()
	var buf bytes.Buffer
	if err := e1.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if e2.StepsTaken() != 2 {
		t.Fatalf("restored step count = %d", e2.StepsTaken())
	}
	if err := e2.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e2.Run()

	requireExact(t, e2)
	rd, ed := ref.Distances(), e2.Distances()
	for v := range rd {
		for u := range rd[v] {
			if rd[v][u] != ed[v][u] {
				t.Fatalf("resumed run diverged at [%d][%d]", v, u)
			}
		}
	}
	rm, em := ref.Metrics(), e2.Metrics()
	if rm.RCSteps != em.RCSteps || rm.VirtualTime != em.VirtualTime ||
		rm.Comm.Messages != em.Comm.Messages {
		t.Fatalf("resumed metrics diverged: %+v vs %+v", rm, em)
	}
}

func TestCheckpointAfterDynamicChanges(t *testing.T) {
	g := testGraph(t, 90, 103)
	o := defaultTestOptions(3, 103)
	o.Strategy = RepartitionS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.PreferentialBatch(g, 12, 2, 1, gen.Weights{}, 103)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	requireExact(t, r)
	if r.Graph().NumVertices() != 102 {
		t.Fatalf("restored graph has %d vertices", r.Graph().NumVertices())
	}
	m := r.Metrics()
	if m.VerticesAdded != 12 || m.Repartitions != 1 {
		t.Fatalf("restored metrics lost history: %+v", m)
	}
	// the restored engine keeps absorbing changes
	b2, err := gen.PreferentialBatch(r.Graph(), 8, 2, 1, gen.Weights{}, 104)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.QueueBatch(b2); err != nil {
		t.Fatal(err)
	}
	r.Run()
	requireExact(t, r)
}

func TestCheckpointRejectsQueuedEvents(t *testing.T) {
	g := testGraph(t, 60, 107)
	e, err := New(g, defaultTestOptions(3, 107))
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.PreferentialBatch(g, 5, 2, 0, gen.Weights{}, 107)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err == nil {
		t.Fatal("checkpoint with queued events should fail")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	o := defaultTestOptions(2, 1)
	cases := [][]byte{
		nil,
		[]byte("not a checkpoint"),
		[]byte(checkpointMagic), // truncated after magic
	}
	for i, c := range cases {
		if _, err := Restore(bytes.NewReader(c), o); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// valid checkpoint, wrong P
	g := testGraph(t, 40, 109)
	e, err := New(g, defaultTestOptions(2, 109))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	wrongP := defaultTestOptions(3, 109)
	if _, err := Restore(bytes.NewReader(buf.Bytes()), wrongP); err == nil {
		t.Fatal("P mismatch accepted")
	}
	// corrupt a byte in the middle
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/3] ^= 0xff
	if _, err := Restore(bytes.NewReader(data), defaultTestOptions(2, 109)); err == nil {
		t.Log("bit flip not detected structurally (acceptable if it hit a distance value)")
	}
}

func TestCheckpointWithDeletedVertex(t *testing.T) {
	g := testGraph(t, 70, 113)
	o := defaultTestOptions(3, 113)
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.QueueVertexDel(5); err != nil {
		t.Fatal(err)
	}
	e.Run()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Alive(5) {
		t.Fatal("restored engine resurrected deleted vertex")
	}
	requireExact(t, r)
}

// writeCheckpointV3 authors a legacy AACKPT03 stream (no CRC trailer, no
// fault counters) so the compatibility read path stays pinned.
func writeCheckpointV3(t *testing.T, e *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(checkpointMagicV3)
	enc := &binWriter{w: &buf}
	e.encodePayloadVersion(enc, 3)
	if enc.err != nil {
		t.Fatal(enc.err)
	}
	return buf.Bytes()
}

// writeCheckpointV4 authors a legacy AACKPT04 stream (CRC trailer, fault
// counters, interleaved per-row layout) so that compatibility path stays
// pinned too.
func writeCheckpointV4(t *testing.T, e *Engine) []byte {
	t.Helper()
	var payload bytes.Buffer
	enc := &binWriter{w: &payload}
	e.encodePayloadVersion(enc, 4)
	if enc.err != nil {
		t.Fatal(enc.err)
	}
	var buf bytes.Buffer
	buf.WriteString(checkpointMagicV4)
	buf.Write(payload.Bytes())
	tail := &binWriter{w: &buf}
	tail.i64(int64(crc32.ChecksumIEEE(payload.Bytes())))
	if tail.err != nil {
		t.Fatal(tail.err)
	}
	return buf.Bytes()
}

func checkpointTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(testGraph(t, 60, 17), defaultTestOptions(4, 17))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.Converged() {
		t.Fatal("engine did not converge")
	}
	return e
}

// TestCheckpointCorruptionDetected flips single bytes across an AACKPT04
// stream: every corruption must surface as ErrCorruptCheckpoint — never a
// silently wrong engine — and truncation must fail too.
func TestCheckpointCorruptionDetected(t *testing.T) {
	e := checkpointTestEngine(t)
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := Restore(bytes.NewReader(good), e.Options()); err != nil {
		t.Fatalf("pristine checkpoint failed to restore: %v", err)
	}
	for _, off := range []int{len(checkpointMagic), len(good) / 3, len(good) / 2, len(good) - 9, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x01
		_, err := Restore(bytes.NewReader(bad), e.Options())
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("flip at offset %d: got %v, want ErrCorruptCheckpoint", off, err)
		}
	}
	_, err := Restore(bytes.NewReader(good[:len(good)-20]), e.Options())
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("truncated checkpoint: got %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCheckpointLegacyV3Read pins the compatibility path: an unguarded
// AACKPT03 stream still restores, distances intact.
func TestCheckpointLegacyV3Read(t *testing.T) {
	e := checkpointTestEngine(t)
	v3 := writeCheckpointV3(t, e)
	r, err := Restore(bytes.NewReader(v3), e.Options())
	if err != nil {
		t.Fatalf("legacy v3 restore: %v", err)
	}
	requireExact(t, r)
	od, rd := e.Distances(), r.Distances()
	for v := range od {
		for u := range od[v] {
			if od[v][u] != rd[v][u] {
				t.Fatalf("v3 restore diverged at [%d][%d]", v, u)
			}
		}
	}
	if r.StepsTaken() != e.StepsTaken() {
		t.Fatalf("v3 restore steps = %d, want %d", r.StepsTaken(), e.StepsTaken())
	}
}

// TestCheckpointLegacyV4Read pins the previous CRC-guarded format: an
// AACKPT04 stream with the interleaved per-row layout still restores,
// distances intact, and its corruption detection still works.
func TestCheckpointLegacyV4Read(t *testing.T) {
	e := checkpointTestEngine(t)
	v4 := writeCheckpointV4(t, e)
	r, err := Restore(bytes.NewReader(v4), e.Options())
	if err != nil {
		t.Fatalf("legacy v4 restore: %v", err)
	}
	requireExact(t, r)
	od, rd := e.Distances(), r.Distances()
	for v := range od {
		for u := range od[v] {
			if od[v][u] != rd[v][u] {
				t.Fatalf("v4 restore diverged at [%d][%d]", v, u)
			}
		}
	}
	if r.StepsTaken() != e.StepsTaken() {
		t.Fatalf("v4 restore steps = %d, want %d", r.StepsTaken(), e.StepsTaken())
	}
	bad := append([]byte(nil), v4...)
	bad[len(bad)/2] ^= 0x01
	if _, err := Restore(bytes.NewReader(bad), e.Options()); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("corrupt v4: got %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCheckpointFileAtomic covers the atomic write path: a successful
// write restores; a failed write leaves the previous checkpoint intact and
// no temp litter; a torn (truncated) file is refused by the CRC.
func TestCheckpointFileAtomic(t *testing.T) {
	e := checkpointTestEngine(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "engine.ckpt")
	if err := e.WriteCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreFile(path, e.Options()); err != nil {
		t.Fatalf("restore from file: %v", err)
	}
	prev, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A writer that dies mid-checkpoint (here: the engine refuses because
	// events are queued) must not touch the existing file or leave temps.
	if err := e.QueueEdgeAdds(change.EdgeAdd{U: 0, V: 5, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteCheckpointFile(path); err == nil {
		t.Fatal("checkpoint with queued events unexpectedly succeeded")
	}
	e.Run() // drain the queue for later writes
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prev, cur) {
		t.Fatal("failed write modified the existing checkpoint")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "engine.ckpt" {
		names := make([]string, len(ents))
		for i, en := range ents {
			names[i] = en.Name()
		}
		t.Fatalf("temp litter after failed write: %v", names)
	}

	// A torn file — as a crash between write and rename could never
	// produce at path, but a crashed direct writer could — fails the CRC.
	if err := os.WriteFile(path, prev[:len(prev)-16], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreFile(path, e.Options()); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("torn checkpoint file: got %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCheckpointRoundTripsFaultState pins the v4 extension: fault counters,
// recovery metrics, and the degraded flag survive a checkpoint round trip.
func TestCheckpointRoundTripsFaultState(t *testing.T) {
	opts := defaultTestOptions(4, 11)
	opts.Faults = &fault.Plan{
		Seed:     3,
		DropRate: 0.05,
		Crashes:  []fault.Crash{{Proc: 1, Step: 1, DownFor: 1}},
	}
	opts.ShardEvery = 2
	e, err := New(testGraph(t, 60, 11), opts)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !e.Converged() || e.Err() != nil {
		t.Fatalf("converged=%v err=%v", e.Converged(), e.Err())
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	om, rm := e.Metrics(), r.Metrics()
	if om.Crashes != rm.Crashes || om.Recoveries != rm.Recoveries ||
		om.Comm.Dropped != rm.Comm.Dropped || om.Comm.Resends != rm.Comm.Resends {
		t.Fatalf("fault state diverged: %+v vs %+v", om, rm)
	}
	if r.Degraded() != e.Degraded() {
		t.Fatalf("degraded flag diverged: %v vs %v", r.Degraded(), e.Degraded())
	}
	requireExact(t, r)
}

// writeCheckpointV5 authors a legacy AACKPT05 stream (arena row layout, no
// frontier section) so that compatibility path stays pinned too.
func writeCheckpointV5(t *testing.T, e *Engine) []byte {
	t.Helper()
	var payload bytes.Buffer
	enc := &binWriter{w: &payload}
	e.encodePayloadVersion(enc, 5)
	if enc.err != nil {
		t.Fatal(enc.err)
	}
	var buf bytes.Buffer
	buf.WriteString(checkpointMagicV5)
	buf.Write(payload.Bytes())
	tail := &binWriter{w: &buf}
	tail.i64(int64(crc32.ChecksumIEEE(payload.Bytes())))
	if tail.err != nil {
		t.Fatal(tail.err)
	}
	return buf.Bytes()
}

// TestCheckpointLegacyV5Read pins the pre-frontier format: an AACKPT05
// stream still restores with distances intact, its corruption detection
// still works, and — because the stream carries no frontier state — every
// restored row starts from the conservative full frontier (FAll), the only
// sound epoch for masks of unknown provenance.
func TestCheckpointLegacyV5Read(t *testing.T) {
	e := checkpointTestEngine(t)
	v5 := writeCheckpointV5(t, e)
	r, err := Restore(bytes.NewReader(v5), e.Options())
	if err != nil {
		t.Fatalf("legacy v5 restore: %v", err)
	}
	requireExact(t, r)
	od, rd := e.Distances(), r.Distances()
	for v := range od {
		for u := range od[v] {
			if od[v][u] != rd[v][u] {
				t.Fatalf("v5 restore diverged at [%d][%d]", v, u)
			}
		}
	}
	if r.StepsTaken() != e.StepsTaken() {
		t.Fatalf("v5 restore steps = %d, want %d", r.StepsTaken(), e.StepsTaken())
	}
	for _, p := range r.procs {
		for _, row := range p.table.Rows() {
			if !row.FAll {
				t.Fatalf("v5-restored row %d lost the conservative full frontier", row.Owner)
			}
		}
	}
	bad := append([]byte(nil), v5...)
	bad[len(bad)/2] ^= 0x01
	if _, err := Restore(bytes.NewReader(bad), e.Options()); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("corrupt v5: got %v, want ErrCorruptCheckpoint", err)
	}
}

// TestCheckpointFrontierRoundTrip pins the v6 extension: mid-convergence
// frontier state — FAll flags and exact bitmask words — survives a
// checkpoint round trip, and a masking-disabled writer (whose bits were
// never maintained) persists every row as FAll.
func TestCheckpointFrontierRoundTrip(t *testing.T) {
	g := testGraph(t, 60, 19)
	o := defaultTestOptions(4, 19)
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Step() // mid-convergence: frontiers carry real bits
	e.Step()
	if e.Converged() {
		t.Skip("engine converged in two steps; no mid-convergence state to pin")
	}
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(bytes.NewReader(buf.Bytes()), o)
	if err != nil {
		t.Fatal(err)
	}
	for pid, p := range e.procs {
		rows := p.table.Rows()
		rrows := r.procs[pid].table.Rows()
		if len(rows) != len(rrows) {
			t.Fatalf("proc %d row count diverged", pid)
		}
		for i, row := range rows {
			rrow := rrows[i]
			if row.FAll != rrow.FAll {
				t.Fatalf("proc %d row %d: FAll %v restored as %v", pid, row.Owner, row.FAll, rrow.FAll)
			}
			if row.FAll {
				continue
			}
			for wi := range row.F {
				if row.F[wi] != rrow.F[wi] {
					t.Fatalf("proc %d row %d: frontier word %d diverged", pid, row.Owner, wi)
				}
			}
		}
	}
	r.Run()
	requireExact(t, r)

	// A masking-disabled engine never maintained its bits: its checkpoint
	// must persist every row as FAll, so a masking-enabled restore cannot
	// trust stale masks.
	om := o
	om.NoFrontierMask = true
	em, err := New(g, om)
	if err != nil {
		t.Fatal(err)
	}
	em.Step()
	buf.Reset()
	if err := em.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rm, err := Restore(bytes.NewReader(buf.Bytes()), o) // masking back on
	if err != nil {
		t.Fatal(err)
	}
	for pid, p := range rm.procs {
		for _, row := range p.table.Rows() {
			if !row.FAll {
				t.Fatalf("proc %d row %d: maskless checkpoint restored without FAll", pid, row.Owner)
			}
		}
	}
	rm.Run()
	requireExact(t, rm)
}
