package core

import (
	"anytime/internal/centrality"
	"anytime/internal/graph"
)

// Snapshot is the engine's current (anytime) view of the centrality
// computation. Before convergence the distances are upper bounds, so
// Closeness entries are lower bounds that improve monotonically with every
// RC step; after convergence they are exact.
type Snapshot struct {
	// Step is the RC step count at capture time.
	Step int
	// Converged reports whether the snapshot is exact.
	Converged bool
	// Closeness[v] = 1 / Σ_t d(v,t) over reachable t ≠ v (the paper's
	// definition); 0 for vertices with no known finite distance and for
	// deleted vertices.
	Closeness []float64
	// Harmonic[v] = Σ_t 1/d(v,t): the harmonic variant, whose estimates
	// are monotonically non-decreasing across RC steps.
	Harmonic []float64
	// Reachable[v] is the number of vertices with a known finite distance
	// from v (excluding v).
	Reachable []int
	// Eccentricity[v] is the largest known finite distance from v
	// (InfDist for isolated/deleted vertices). Before convergence this is
	// a lower bound on the true eccentricity restricted to currently
	// reachable targets.
	Eccentricity []graph.Dist
	// Degraded reports that a processor crash restored state from an older
	// recovery shard and the engine has not reconverged since: estimates
	// for the affected rows may have regressed relative to earlier
	// snapshots (the anytime monotonicity guarantee is suspended until the
	// flag clears). Always false without fault injection.
	Degraded bool
	// DownProcs lists the processors crashed at capture time (nil when all
	// are up). Their rows serve the values recovered from their shards.
	DownProcs []int
}

// TopK returns the IDs of the k highest-closeness vertices in descending
// order (ties broken by lower ID). k <= 0 yields an empty result and
// k > n is clamped. Before convergence the ranking reflects the current
// anytime lower bounds.
func (s Snapshot) TopK(k int) []int { return centrality.TopK(s.Closeness, k) }

// Radius returns the minimum finite eccentricity (InfDist if none).
func (s Snapshot) Radius() graph.Dist {
	r := graph.InfDist
	for _, e := range s.Eccentricity {
		if e != graph.InfDist && e < r {
			r = e
		}
	}
	return r
}

// Diameter returns the maximum finite eccentricity (InfDist if none). At
// convergence on a connected graph this is the exact graph diameter.
func (s Snapshot) Diameter() graph.Dist {
	d := graph.Dist(-1)
	for _, e := range s.Eccentricity {
		if e != graph.InfDist && e > d {
			d = e
		}
	}
	if d < 0 {
		return graph.InfDist
	}
	return d
}

// Snapshot gathers the current closeness estimates from all processors
// (the anytime interrupt point).
func (e *Engine) Snapshot() Snapshot {
	n := e.g.NumVertices()
	s := Snapshot{
		Step:         e.step,
		Converged:    e.Converged(),
		Closeness:    make([]float64, n),
		Harmonic:     make([]float64, n),
		Reachable:    make([]int, n),
		Eccentricity: make([]graph.Dist, n),
		Degraded:     e.degraded,
		DownProcs:    e.DownProcs(),
	}
	for i := range s.Eccentricity {
		s.Eccentricity[i] = graph.InfDist
	}
	for _, p := range e.procs {
		for _, r := range p.table.Rows() {
			var sum int64
			var harm float64
			cnt := 0
			ecc := graph.Dist(-1)
			for t, d := range r.D {
				if d == graph.InfDist || int32(t) == r.Owner {
					continue
				}
				sum += int64(d)
				harm += 1 / float64(d)
				cnt++
				if d > ecc {
					ecc = d
				}
			}
			v := r.Owner
			if sum > 0 {
				s.Closeness[v] = 1 / float64(sum)
			}
			s.Harmonic[v] = harm
			s.Reachable[v] = cnt
			if ecc >= 0 {
				s.Eccentricity[v] = ecc
			}
		}
	}
	return s
}

// Distances gathers the full distance matrix from all processors: row v is
// vertex v's DV (nil for deleted vertices). Intended for verification and
// small-scale inspection; the matrix is Θ(n²).
func (e *Engine) Distances() [][]graph.Dist {
	out := make([][]graph.Dist, e.g.NumVertices())
	for _, p := range e.procs {
		for _, r := range p.table.Rows() {
			out[r.Owner] = append([]graph.Dist(nil), r.D...)
		}
	}
	return out
}

// Alive reports whether vertex v is currently part of the analysis (false
// after dynamic deletion).
func (e *Engine) Alive(v int32) bool {
	return int(v) < len(e.alive) && e.alive[v]
}
