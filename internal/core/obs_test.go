package core

import (
	"sync/atomic"
	"testing"

	"anytime/internal/gen"
	"anytime/internal/obs"
)

func obsTestEngine(t *testing.T, n, p int, tr *obs.Tracer) *Engine {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, 2, gen.Weights{Min: 1, Max: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	gen.Connectify(g, 5)
	opts := NewOptions()
	opts.P = p
	opts.Seed = 5
	opts.Obs = tr
	e, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineSpansRecorded: a traced run emits the span taxonomy — one DD
// span, per-processor IA spans, and ship/relax/refine-tile/step spans per
// RC step — with sane processors and non-negative durations.
func TestEngineSpansRecorded(t *testing.T) {
	const p = 3
	tr := obs.NewTracer(obs.DefaultCapacity)
	e := obsTestEngine(t, 80, p, tr)
	e.Run()
	if !e.Converged() {
		t.Fatal("engine did not converge")
	}
	b, err := gen.PreferentialBatch(e.Graph(), 4, 2, 1, gen.Weights{Min: 1, Max: 4}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()

	counts := map[obs.Kind]int{}
	for _, s := range tr.Spans() {
		counts[s.Kind]++
		if s.Proc < -1 || int(s.Proc) >= p {
			t.Fatalf("span %v has processor %d outside [-1, %d)", s.Kind, s.Proc, p)
		}
		if s.WallDur < 0 || s.VirtDur < 0 {
			t.Fatalf("span %v has negative duration: wall %v, virt %v", s.Kind, s.WallDur, s.VirtDur)
		}
		switch s.Kind {
		case obs.KindDD, obs.KindRCStep, obs.KindChange:
			if s.Proc != -1 {
				t.Fatalf("engine-wide span %v tagged with processor %d", s.Kind, s.Proc)
			}
		case obs.KindIA, obs.KindRCShip, obs.KindRCRelax, obs.KindRCRefineTile:
			if s.Proc < 0 {
				t.Fatalf("per-processor span %v missing processor", s.Kind)
			}
		}
	}
	steps := e.StepsTaken()
	if counts[obs.KindDD] != 1 {
		t.Errorf("DD spans = %d, want 1", counts[obs.KindDD])
	}
	if counts[obs.KindIA] != p {
		t.Errorf("IA spans = %d, want %d (one per processor)", counts[obs.KindIA], p)
	}
	if counts[obs.KindRCStep] != steps {
		t.Errorf("RC-step spans = %d, want %d (StepsTaken)", counts[obs.KindRCStep], steps)
	}
	if counts[obs.KindRCShip] == 0 || counts[obs.KindRCRelax] == 0 || counts[obs.KindRCRefineTile] == 0 {
		t.Errorf("missing RC phase spans: ship %d, relax %d, refine-tile %d",
			counts[obs.KindRCShip], counts[obs.KindRCRelax], counts[obs.KindRCRefineTile])
	}
	if counts[obs.KindChange] == 0 {
		t.Error("no change spans after a queued batch")
	}
}

// TestStepTelemetry: every recorded step carries consistent per-processor
// convergence telemetry, and the converged tail reports zero dirty rows.
func TestStepTelemetry(t *testing.T) {
	const p = 3
	e := obsTestEngine(t, 60, p, nil)
	e.Run()
	hist := e.History()
	if len(hist) == 0 {
		t.Fatal("no history recorded")
	}
	alive := 0
	for v := int32(0); int(v) < e.Graph().NumVertices(); v++ {
		if e.Alive(v) {
			alive++
		}
	}
	for _, st := range hist {
		if len(st.ProcRows) != p || len(st.ProcDirty) != p || len(st.ProcBoundary) != p ||
			len(st.ProcRelaxOps) != p || len(st.ProcBusy) != p {
			t.Fatalf("step %d: per-proc slices have lengths %d/%d/%d/%d/%d, want %d",
				st.Step, len(st.ProcRows), len(st.ProcDirty), len(st.ProcBoundary),
				len(st.ProcRelaxOps), len(st.ProcBusy), p)
		}
		rows, dirty := 0, 0
		for i := 0; i < p; i++ {
			rows += st.ProcRows[i]
			dirty += st.ProcDirty[i]
			if st.ProcBusy[i] < 0 {
				t.Fatalf("step %d: negative busy time on processor %d", st.Step, i)
			}
		}
		if rows != st.TotalRows || dirty != st.DirtyRows {
			t.Fatalf("step %d: totals %d/%d don't match per-proc sums %d/%d",
				st.Step, st.TotalRows, st.DirtyRows, rows, dirty)
		}
		if st.Imbalance < 1 {
			t.Fatalf("step %d: imbalance %v < 1", st.Step, st.Imbalance)
		}
	}
	final := hist[len(hist)-1]
	if final.TotalRows != alive {
		t.Fatalf("final TotalRows = %d, want %d live vertices", final.TotalRows, alive)
	}
	if !final.ConvergedAfter || final.DirtyRows != 0 {
		t.Fatalf("final step: converged=%v dirty=%d, want converged with 0 dirty rows",
			final.ConvergedAfter, final.DirtyRows)
	}
}

// TestHistoryReturnsCopy: mutating the returned slice must not corrupt the
// engine's own log (the aliasing bug this API change fixed).
func TestHistoryReturnsCopy(t *testing.T) {
	e := obsTestEngine(t, 40, 2, nil)
	e.Run()
	h := e.History()
	if len(h) == 0 {
		t.Fatal("no history")
	}
	want := h[0].Step
	h[0].Step = -999
	if got := e.History()[0].Step; got != want {
		t.Fatalf("mutating History() result leaked into the engine: step %d, want %d", got, want)
	}
	dst := make([]StepStats, 0, len(h))
	if got := e.AppendHistory(dst); len(got) != len(h) {
		t.Fatalf("AppendHistory returned %d entries, want %d", len(got), len(h))
	}
}

// TestSetStepHookSwapDuringRun: SetStepHook is safe to call while the
// driver goroutine steps the engine (exercised under -race via make race).
func TestSetStepHookSwapDuringRun(t *testing.T) {
	e := obsTestEngine(t, 80, 2, nil)
	var calls atomic.Int64
	stop := make(chan struct{})
	swapped := make(chan struct{})
	go func() {
		defer close(swapped)
		fn := func(StepStats) { calls.Add(1) }
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				e.SetStepHook(fn)
			} else {
				e.SetStepHook(nil)
			}
		}
	}()
	for e.Step() {
	}
	close(stop)
	<-swapped
	if !e.Converged() {
		t.Fatal("engine did not converge under hook churn")
	}
}

// TestNilObsZeroAllocSpanHelpers: with no tracer configured, the span
// helpers on the instrumented paths are branch-only — zero allocations.
func TestNilObsZeroAllocSpanHelpers(t *testing.T) {
	e := obsTestEngine(t, 40, 2, nil)
	e.Run()
	if avg := testing.AllocsPerRun(200, func() {
		m := e.mark()
		e.span(obs.KindRCStep, m, 1)
		pm := e.markProc(0)
		e.spanProc(obs.KindRCRelax, 0, pm, 1)
		e.spanProcMark(obs.KindCrash, 0, m, 0)
	}); avg != 0 {
		t.Fatalf("disabled span helpers allocate %v per run, want 0", avg)
	}
}
