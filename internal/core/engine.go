package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"anytime/internal/change"
	"anytime/internal/cluster"
	"anytime/internal/dv"
	"anytime/internal/fault"
	"anytime/internal/graph"
	"anytime/internal/obs"
	"anytime/internal/sssp"
)

// proc is the per-processor private state: the local sub-graph membership,
// the DV table for locally owned vertices, and per-step scratch.
type proc struct {
	id    int
	sub   *graph.Sub
	table *dv.Matrix

	// per-step scratch, owned by this processor's goroutine
	changed    []bool // parallel to table.Rows(): row improved this step
	pivot      []bool // rows dirty at step start: un-propagated content
	startDirty []bool
	stepOps    int64
	// stepMaskedOps is the subset of stepOps performed through masked
	// sweeps (columns actually visited under a frontier mask).
	stepMaskedOps int64
	stepRows      int  // row count observed by the last relax phase
	stepDirty     int  // rows still dirty after the last relax phase
	hasUpdate     bool // a local-boundary row is dirty after this step
	// maskOff mirrors Options.NoFrontierMask: full-row sweeps everywhere.
	maskOff bool

	// observability: the engine's span tracer (nil = disabled) and the RC
	// step counter at the start of the current relax phase, for the tile-
	// round spans emitted from inside the worker pool (parallel.go).
	tr      *obs.Tracer
	curStep int32

	// boundary-shipping scratch, reused across steps: shipSeen is a stamp
	// array over destination parts (shipSeen[q] == shipStamp means part q
	// already gets this row), shipGroups collects each destination's
	// deltas.
	shipSeen   []int64
	shipStamp  int64
	shipGroups [][]*dv.Delta
}

// Engine is the anytime-anywhere closeness-centrality engine.
//
// Typical use:
//
//	e, _ := core.New(g, core.NewOptions())
//	e.Run()                    // RC steps to convergence (anytime: Step())
//	e.QueueBatch(batch)        // dynamic vertex additions, anywhere
//	e.Run()                    // absorb and re-converge
//	snap := e.Snapshot()       // closeness estimates at any point
type Engine struct {
	opts Options
	g    *graph.Graph
	part *graph.Partition
	mach *cluster.Machine

	procs []*proc
	alive []bool // false for dynamically deleted vertices

	queue     []change.Event
	streamMap []int32 // stream-local new-vertex index -> global ID
	rrNext    int     // RoundRobin-PS cursor

	step        int
	converged   bool
	forceRefine bool // set once a change requires local pivoting for exactness
	unitWeight  bool // every live edge weighs 1: IA runs BFS instead of Dijkstra
	globalIA    bool // NewConverged: IA sweeps the whole graph (exact warm start)

	// Fault-injection and recovery state (nil/empty without Options.Faults).
	inj      *fault.Injector
	rejoinAt []int    // per processor: step at which it rejoins (-1 = up)
	shards   [][]byte // per processor: last recovery shard (see recovery.go)
	degraded bool     // a crash occurred and the engine has not reconverged
	err      error    // first unrecoverable error; the engine refuses to step

	metrics  Metrics
	history  []StepStats
	stepHook atomic.Pointer[func(StepStats)]
	prevBusy []time.Duration // per-proc busy time at step start (telemetry)
}

// New builds the engine over a snapshot of g: runs the DD phase
// (partitioning) and the IA phase (local APSP). The input graph is cloned;
// later mutations of g are not observed.
func New(g *graph.Graph, opts Options) (*Engine, error) {
	return newEngine(g, opts, false)
}

// NewConverged builds an engine whose DV state is already the exact APSP
// of g: the IA phase searches the whole graph per local row instead of
// stopping at the sub-graph boundary, so no RC steps are needed — rows
// start clean, frontiers cleared, and the engine reports converged. This
// oracle-seeded warm start is what makes paper-scale (n=50,000) dynamic-
// absorption measurements feasible on one machine: the multi-step static
// convergence is replaced by n global single-source searches, and the
// measured quantity — the reconvergence cascade after a change batch —
// only depends on the converged state, which is identical either way.
func NewConverged(g *graph.Graph, opts Options) (*Engine, error) {
	return newEngine(g, opts, true)
}

func newEngine(g *graph.Graph, opts Options, globalIA bool) (*Engine, error) {
	opts = opts.withDefaults()
	if g.NumVertices() < opts.P {
		return nil, fmt.Errorf("core: %d vertices < P=%d", g.NumVertices(), opts.P)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input graph: %w", err)
	}
	cfg := opts.clusterConfig()
	var inj *fault.Injector
	if opts.Faults != nil {
		var ferr error
		if inj, ferr = fault.NewInjector(*opts.Faults, opts.P); ferr != nil {
			return nil, ferr
		}
		cfg.Fault = inj
	}
	mach, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opts:  opts,
		g:     g.Clone(),
		mach:  mach,
		alive: make([]bool, g.NumVertices()),
	}
	e.initFaults(inj)
	for i := range e.alive {
		e.alive[i] = true
	}
	// Repartition-S relies on local-refinement pivoting for exactness
	// after partial-result migration (see applyRepartition), so it is
	// forced on for the strategies that may repartition, regardless of the
	// ablation flag.
	e.forceRefine = opts.Strategy == RepartitionS || opts.Strategy == AutoPS
	e.globalIA = globalIA
	e.refreshWeightProfile()
	start := time.Now()
	if err := e.domainDecomposition(); err != nil {
		return nil, err
	}
	e.initialApproximation()
	if globalIA {
		// The unmasked IA sweeps already computed the global fixpoint, so
		// the first RC step would ship every row only to improve nothing.
		// Mark the state as what it is — a clean converged epoch: nothing
		// pending to ship, frontiers empty (the anchor the masked kernels
		// measure "changed since" against).
		for _, p := range e.procs {
			p.table.ClearDirty()
			p.table.ClearFrontiers()
		}
		e.converged = true
	}
	e.writeShards() // initial recovery shards (no-op without Options.Faults)
	e.metrics.WallTime += time.Since(start)
	e.metrics.VirtualTime = e.mach.VirtualTime()
	e.refreshLoadMetrics()
	return e, nil
}

// domainDecomposition runs the DD phase: partition the graph and build the
// per-processor sub-graph state.
func (e *Engine) domainDecomposition() error {
	dm := e.mark()
	part, err := e.opts.Partitioner.Partition(e.g, e.opts.P)
	if err != nil {
		return fmt.Errorf("core: DD partitioning: %w", err)
	}
	if err := part.Validate(e.g); err != nil {
		return fmt.Errorf("core: DD partition invalid: %w", err)
	}
	e.part = part
	ops := partitionOps(e.g.NumVertices(), e.g.NumEdges())
	e.metrics.DDOps += ops
	// ParMETIS-style parallel partitioning: the work divides over P.
	e.chargeAll(ops / int64(e.opts.P))
	e.buildProcs()
	e.span(obs.KindDD, dm, ops)
	e.tracef("dd", "%s: cut=%d imbalance=%.3f",
		e.opts.Partitioner.Name(), graph.EdgeCut(e.g, e.part), graph.Imbalance(e.g, e.part))
	return nil
}

// buildProcs (re)creates the per-processor sub-graph state and fresh DV
// tables with one row per local vertex.
func (e *Engine) buildProcs() {
	n := e.g.NumVertices()
	e.procs = make([]*proc, e.opts.P)
	for p := 0; p < e.opts.P; p++ {
		sub := graph.ExtractSub(e.g, e.part, int32(p))
		t := dv.NewMatrix(n)
		for _, v := range sub.Local {
			if e.alive[v] {
				t.AddRow(v)
			}
		}
		e.procs[p] = &proc{id: p, sub: sub, table: t, tr: e.opts.Obs, maskOff: e.opts.NoFrontierMask}
	}
}

// initialApproximation runs the IA phase: every processor computes APSP
// over its local sub-graph (multithreaded Dijkstra), producing the first
// partial results.
func (e *Engine) initialApproximation() {
	e.mach.Parallel(func(pid int) {
		im := e.markProc(pid)
		p := e.procs[pid]
		rows := p.table.Rows()
		sources := make([]int32, len(rows))
		slices := make([][]graph.Dist, len(rows))
		hops := make([][]int32, len(rows))
		for i, r := range rows {
			sources[i] = r.Owner
			slices[i] = r.D
			hops[i] = r.NH
		}
		// A nil mask turns the per-row sweep into a full single-source
		// search: with fresh (all-Inf) rows that is the exact global answer.
		// It must happen on fresh rows — Dijkstra/BFS never re-expands an
		// entry that already holds a finite (stale-but-correct) distance,
		// so re-sweeping a local-IA table would NOT repair it.
		mask := p.sub.IsLocal
		if e.globalIA {
			mask = nil
		}
		ops := e.multiSource(sources, slices, hops, mask)
		// The paper's multithreaded IA: wall time divides over the worker
		// threads of the processor.
		e.mach.Charge(pid, ops/int64(e.opts.Workers))
		addOps(&e.metrics.IAOps, ops)
		e.spanProc(obs.KindIA, pid, im, ops)
	})
	e.mach.Barrier()
	e.converged = false
	e.tracef("ia", "local APSP over %d processors", e.opts.P)
}

// multiSource is the IA sweep dispatcher: unit-weight graphs (detected at
// construction and re-checked after every dynamic change) degenerate
// Dijkstra to plain BFS, dropping the heap entirely.
func (e *Engine) multiSource(sources []int32, dist [][]graph.Dist, hops [][]int32, mask []bool) int64 {
	if e.unitWeight {
		return sssp.MultiSourceHopsBFS(e.g, sources, dist, hops, mask, e.opts.Workers)
	}
	return sssp.MultiSourceHops(e.g, sources, dist, hops, mask, e.opts.Workers)
}

// refreshWeightProfile re-detects the unit-weight fast-path eligibility
// from the current topology (an O(m) scan, negligible next to a relax
// phase).
func (e *Engine) refreshWeightProfile() {
	e.unitWeight = graph.Stats(e.g).UnitWeights
}

// partitionOps approximates the work of one multilevel partitioning run
// (coarsening levels over O(n + 2m) each).
func partitionOps(n, m int) int64 {
	levels := bits.Len(uint(n/200) + 1)
	if levels < 1 {
		levels = 1
	}
	return int64(n+2*m) * int64(levels) * 4
}

func (e *Engine) chargeAll(ops int64) {
	for p := 0; p < e.opts.P; p++ {
		e.mach.Charge(p, ops)
	}
	e.mach.Barrier()
}

// Converged reports whether all updates have been propagated and no
// dynamic changes are pending: the DV state equals exact APSP.
func (e *Engine) Converged() bool { return e.converged && len(e.queue) == 0 }

// Err returns the first unrecoverable error the engine hit (an invalid
// communication schedule, typically indicating internal corruption), or
// nil. After a non-nil Err the engine refuses to step; restore a
// checkpoint into a fresh engine to continue.
func (e *Engine) Err() error { return e.err }

// fail records the first unrecoverable error.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.trace("error", err.Error())
}

// Options returns the engine's options with defaults applied — what a
// supervisor needs to Restore a checkpoint of this engine.
func (e *Engine) Options() Options { return e.opts }

// Degraded reports whether a processor crash has occurred that the engine
// has not yet fully reconverged from: anytime snapshots may be serving
// values restored from an older recovery shard. It clears on the first
// convergence with every processor up.
func (e *Engine) Degraded() bool { return e.degraded }

// DownProcs returns the processors currently crashed (nil when all are up).
func (e *Engine) DownProcs() []int {
	if e.inj == nil {
		return nil
	}
	var out []int
	for p := 0; p < e.opts.P; p++ {
		if e.inj.Down(p) {
			out = append(out, p)
		}
	}
	return out
}

// StepsTaken returns the number of RC steps performed so far.
func (e *Engine) StepsTaken() int { return e.step }

// QueuedEvents returns the number of dynamic-change events admitted via
// the Queue* methods that no Step has incorporated yet (one event is
// applied at the end of each RC step).
func (e *Engine) QueuedEvents() int { return len(e.queue) }

// SetStepHook installs fn to be invoked at the end of every RC step with
// that step's statistics — the publication point for serving layers that
// capture a Snapshot after each step regardless of whether the engine is
// driven by Step or Run. Pass nil to remove the hook. The hook runs on the
// goroutine calling Step; it must not call Step, Run, or the Queue*
// methods. Installing or swapping the hook is safe concurrently with a
// running Step/Run (an atomic swap): a step in flight invokes whichever
// hook it loads at its publication point.
func (e *Engine) SetStepHook(fn func(StepStats)) {
	if fn == nil {
		e.stepHook.Store(nil)
		return
	}
	e.stepHook.Store(&fn)
}

// Graph returns the engine's current graph (reflecting applied dynamic
// changes). The caller must not mutate it.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Partition returns the current vertex-to-processor assignment. The caller
// must not mutate it.
func (e *Engine) Partition() *graph.Partition { return e.part }

// Metrics returns a snapshot of the engine's cost counters.
func (e *Engine) Metrics() Metrics {
	m := e.metrics
	m.Comm = e.mach.Stats()
	m.VirtualTime = e.mach.VirtualTime()
	m.RCSteps = e.step
	var rc int64
	for _, p := range e.procs {
		rc += p.table.ResizeCopies
	}
	m.ResizeCopies = rc
	return m
}

// QueueBatch schedules a dynamic vertex-addition batch; it is incorporated
// at the end of the next RC step (the paper's anywhere property).
func (e *Engine) QueueBatch(b *change.VertexBatch) error {
	if err := b.Validate(e.pendingNumVertices()); err != nil {
		return err
	}
	e.queue = append(e.queue, change.Event{Batch: b})
	return nil
}

// pendingNumVertices is the vertex count after all queued batches apply
// (so a queued batch may reference vertices of earlier queued batches via
// External edges).
func (e *Engine) pendingNumVertices() int {
	n := e.g.NumVertices()
	for _, ev := range e.queue {
		if ev.Batch != nil {
			n += ev.Batch.NumVertices
		}
	}
	return n
}

// QueueEdgeAdds schedules dynamic edge additions between existing vertices.
func (e *Engine) QueueEdgeAdds(adds ...change.EdgeAdd) error {
	n := e.pendingNumVertices()
	for _, a := range adds {
		if int(a.U) >= n || int(a.V) >= n || a.U < 0 || a.V < 0 || a.U == a.V || a.Weight <= 0 {
			return fmt.Errorf("core: invalid edge addition {%d,%d,w=%d}", a.U, a.V, a.Weight)
		}
	}
	e.queue = append(e.queue, change.Event{EdgeAdds: adds})
	return nil
}

// QueueEdgeDels schedules dynamic edge deletions. Deleting an edge that
// does not exist when the event applies is a no-op, but the endpoints must
// name distinct (possibly still-queued) vertices.
func (e *Engine) QueueEdgeDels(dels ...change.EdgeDel) error {
	n := e.pendingNumVertices()
	for _, d := range dels {
		if int(d.U) >= n || int(d.V) >= n || d.U < 0 || d.V < 0 || d.U == d.V {
			return fmt.Errorf("core: invalid edge deletion {%d,%d}", d.U, d.V)
		}
	}
	e.queue = append(e.queue, change.Event{EdgeDels: dels})
	return nil
}

// QueueEdgeWeightChanges schedules dynamic edge-weight changes. Decreases
// are absorbed incrementally; increases fall back to the IA-reset path.
func (e *Engine) QueueEdgeWeightChanges(chs ...change.EdgeWeight) error {
	n := e.pendingNumVertices()
	for _, c := range chs {
		if int(c.U) >= n || int(c.V) >= n || c.U < 0 || c.V < 0 || c.U == c.V || c.Weight <= 0 {
			return fmt.Errorf("core: invalid weight change {%d,%d,w=%d}", c.U, c.V, c.Weight)
		}
	}
	e.queue = append(e.queue, change.Event{WeightChanges: chs})
	return nil
}

// QueueVertexDel schedules a dynamic vertex deletion (extension beyond the
// paper: its stated future work).
func (e *Engine) QueueVertexDel(v int32) error {
	if int(v) >= e.pendingNumVertices() || v < 0 {
		return fmt.Errorf("core: vertex %d out of range", v)
	}
	e.queue = append(e.queue, change.Event{VertexDel: &change.VertexDel{V: v}})
	return nil
}

// QueueRebalance schedules an explicit load-rebalancing pass (the paper's
// rebalancing future work): the vertex assignment is adaptively refined
// and relocated rows migrate with their partial results, exactly as in
// Repartition-S but with no new vertices.
func (e *Engine) QueueRebalance() {
	e.queue = append(e.queue, change.Event{Rebalance: &change.Rebalance{}})
}

// Step performs one recombination step:
//
//  1. every processor ships its updated boundary DVs to the neighboring
//     processors (personalized all-to-all, bounded message size),
//  2. received external-boundary DVs relax the local DVs
//     (distance-vector-routing style), optionally followed by the local
//     Floyd–Warshall-style refinement strategy,
//  3. a convergence reduction determines whether updates remain,
//  4. queued dynamic changes are incorporated.
//
// It returns false once the engine is converged and no changes are pending,
// or when an unrecoverable error occurred (see Err).
func (e *Engine) Step() bool {
	if e.err != nil || e.Converged() {
		return false
	}
	start := time.Now()
	sm := e.mark()
	rcOpsBefore := e.metrics.RCOps
	commBefore := e.mach.Stats()
	e.snapshotBusy()
	e.applyFaultSchedule()
	outbox := e.shipBoundary()
	shipped, rowsShipped, fullRows, maxDelta := 0, 0, 0, 0
	width := e.g.NumVertices()
	for _, msgs := range outbox {
		shipped += len(msgs)
		for _, msg := range msgs {
			deltas := msg.Payload.([]*dv.Delta)
			rowsShipped += len(deltas)
			for _, d := range deltas {
				if d.Lo == 0 && len(d.D) == width {
					fullRows++
				}
				if len(d.D) > maxDelta {
					maxDelta = len(d.D)
				}
			}
		}
	}
	inbox, xerr := e.mach.Exchange(outbox)
	if xerr != nil {
		e.fail(xerr)
		return false
	}
	e.relaxAll(inbox)
	e.handleFailedDeliveries()
	e.converged = e.reduceConvergence()
	if e.converged && !e.anyDown() {
		e.degraded = false
	}
	if e.opts.Trace != nil {
		e.tracef("rc-step", "%d boundary-DV messages, converged=%v", shipped, e.converged)
	}
	stats := StepStats{
		Step:             e.step,
		BoundaryMessages: shipped,
		RowsShipped:      rowsShipped,
		FullRowsShipped:  fullRows,
		Bytes:            e.mach.Stats().Bytes - commBefore.Bytes,
		RelaxOps:         e.metrics.RCOps - rcOpsBefore,
		ConvergedAfter:   e.converged,
		MaxDeltaWidth:    maxDelta,
	}
	e.gatherStepTelemetry(&stats)
	if e.converged {
		// A clean global convergence is an exact fixpoint of the relaxation
		// system (reduceConvergence already refused while any processor was
		// down or messages were in flight): re-anchor the masked kernels'
		// skip rule by clearing every row's dirty frontier, before any
		// queued change perturbs the state again.
		e.clearFrontiers()
	}
	if len(e.queue) > 0 {
		ev := e.queue[0]
		e.queue = e.queue[1:]
		stats.ChangeApplied = describeEvent(ev)
		e.applyEvent(ev)
	}
	if e.inj != nil && (e.step+1)%e.opts.ShardEvery == 0 {
		e.writeShards()
	}
	stats.Virtual = e.mach.VirtualTime()
	e.recordStep(stats)
	e.span(obs.KindRCStep, sm, int64(rowsShipped))
	e.step++
	e.metrics.WallTime += time.Since(start)
	if h := e.stepHook.Load(); h != nil {
		(*h)(stats)
	}
	if e.Converged() {
		e.trace("converged", "no more updates in any processor")
		return false
	}
	return true
}

// snapshotBusy records every processor's busy virtual time at step start, so
// gatherStepTelemetry can report per-step busy deltas.
func (e *Engine) snapshotBusy() {
	if e.prevBusy == nil {
		e.prevBusy = make([]time.Duration, e.opts.P)
	}
	for p := 0; p < e.opts.P; p++ {
		e.prevBusy[p] = e.mach.BusyTime(p)
	}
}

// gatherStepTelemetry fills the convergence-quality fields of one step's
// StepStats from the per-processor scratch the relax phase left behind.
// Runs on the coordinating goroutine after relaxAll's barrier.
func (e *Engine) gatherStepTelemetry(stats *StepStats) {
	P := e.opts.P
	stats.ProcRows = make([]int, P)
	stats.ProcDirty = make([]int, P)
	stats.ProcBoundary = make([]int, P)
	stats.ProcRelaxOps = make([]int64, P)
	stats.ProcBusy = make([]time.Duration, P)
	var fbits, cells int64
	for i, p := range e.procs {
		stats.ProcRows[i] = p.stepRows
		stats.ProcDirty[i] = p.stepDirty
		stats.ProcBoundary[i] = len(p.sub.LocalBoundary)
		stats.ProcRelaxOps[i] = p.stepOps
		stats.ProcBusy[i] = e.mach.BusyTime(i) - e.prevBusy[i]
		stats.TotalRows += p.stepRows
		stats.DirtyRows += p.stepDirty
		stats.MaskedOps += p.stepMaskedOps
		w, b := p.table.FrontierStats()
		stats.FrontierWords += w
		fbits += b
		cells += int64(p.table.Len()) * int64(p.table.Cols())
	}
	if cells > 0 {
		stats.FrontierDensity = float64(fbits) / float64(cells)
	}
	stats.Imbalance = obs.Imbalance(stats.ProcBusy)
	if e.opts.Obs != nil && stats.MaskedOps > 0 {
		// Zero-duration marker span: Value carries the step's masked-op
		// count so aatrace summaries surface how much work the frontier
		// masks let through.
		e.opts.Obs.Record(obs.Span{
			Kind:  obs.KindRCFrontier,
			Proc:  -1,
			Step:  int32(e.step),
			Wall:  e.opts.Obs.Now(),
			Virt:  e.mach.VirtualTime(),
			Value: stats.MaskedOps,
		})
	}
}

// clearFrontiers resets every processor's row frontiers at a clean global
// convergence — the fixpoint the masked kernels' soundness argument is
// anchored to.
func (e *Engine) clearFrontiers() {
	for _, p := range e.procs {
		p.table.ClearFrontiers()
	}
}

// describeEvent names a change event for the step history.
func describeEvent(ev change.Event) string {
	switch {
	case ev.Batch != nil:
		return fmt.Sprintf("vertex-batch(%d)", ev.Batch.NumVertices)
	case len(ev.EdgeAdds) > 0:
		return fmt.Sprintf("edge-adds(%d)", len(ev.EdgeAdds))
	case len(ev.EdgeDels) > 0:
		return fmt.Sprintf("edge-dels(%d)", len(ev.EdgeDels))
	case len(ev.WeightChanges) > 0:
		return fmt.Sprintf("weight-changes(%d)", len(ev.WeightChanges))
	case ev.VertexDel != nil:
		return fmt.Sprintf("vertex-del(%d)", ev.VertexDel.V)
	case ev.Rebalance != nil:
		return "rebalance"
	default:
		return "unknown"
	}
}

// Run performs RC steps until convergence (or MaxRCSteps, or an
// unrecoverable error — see Err). It returns the number of steps taken in
// this call.
func (e *Engine) Run() int {
	steps := 0
	for e.err == nil && !e.Converged() && steps < e.opts.MaxRCSteps {
		e.Step()
		steps++
	}
	return steps
}

// shipBoundary builds the per-processor outboxes of (dirty) local-boundary
// DV updates, grouped into one message per destination processor. Rows
// ship as deltas: only the column window changed since the row's last ship
// travels, with a full-row fallback for rows whose change extent is
// unknown (fresh, migrated, or topology-disturbed rows) and for the
// ship-all-boundary ablation. The per-proc stamp array and delta groups
// are reused across steps so the hot path does not allocate per row.
func (e *Engine) shipBoundary() [][]cluster.Message {
	P := e.opts.P
	outbox := make([][]cluster.Message, P)
	e.mach.Parallel(func(pid int) {
		if e.down(pid) {
			return // crashed processor: ships nothing until it rejoins
		}
		shm := e.markProc(pid)
		p := e.procs[pid]
		if len(p.shipSeen) < P {
			p.shipSeen = make([]int64, P)
			p.shipGroups = make([][]*dv.Delta, P)
			p.shipStamp = 0
		}
		for q := range p.shipGroups {
			if e.inj != nil {
				// The lossy network can hold a message payload across the
				// step boundary (a delayed delivery releases at the NEXT
				// exchange, after this truncation); the backing array must
				// not be reused while such a message may still alias it.
				p.shipGroups[q] = nil
				continue
			}
			// Truncate, keeping capacity: the previous step's payloads were
			// consumed by relaxAll within that step, so the backing arrays
			// are free for reuse.
			p.shipGroups[q] = p.shipGroups[q][:0]
		}
		var ops int64
		for _, v := range p.sub.LocalBoundary {
			r := p.table.Row(v)
			if r == nil {
				continue // deleted vertex
			}
			if !r.Dirty && !e.opts.ShipAllBoundary {
				continue
			}
			// one snapshot shipped to every adjacent part; the dirty mark
			// clears at the end of relaxAll (unless the row changes again),
			// the pending window clears here, once the snapshot is taken
			p.shipStamp++
			var snap *dv.Delta
			for _, a := range e.g.Neighbors(int(v)) {
				q := e.part.Part[a.To]
				if int(q) == pid || p.shipSeen[q] == p.shipStamp {
					continue
				}
				p.shipSeen[q] = p.shipStamp
				if snap == nil {
					if e.opts.ShipAllBoundary {
						snap = r.FullDelta()
					} else {
						snap = r.ShipDelta()
					}
					if p.maskOff {
						// MinPlusHopsRec ran with rec == nil here, so the
						// row's frontier bits are stale — never ship them.
						snap.F = nil
					}
					ops += int64(len(snap.D))
				}
				p.shipGroups[q] = append(p.shipGroups[q], snap)
			}
			if snap != nil {
				r.ClearPending()
			}
		}
		for q, deltas := range p.shipGroups {
			if len(deltas) == 0 {
				continue
			}
			bytes := 0
			for _, d := range deltas {
				bytes += d.WireBytes()
			}
			outbox[pid] = append(outbox[pid], cluster.Message{
				To:      q,
				Tag:     cluster.TagBoundaryDV,
				Bytes:   bytes,
				Payload: deltas,
			})
		}
		e.mach.Charge(pid, ops)
		e.spanProc(obs.KindRCShip, pid, shm, ops)
	})
	return outbox
}

// relaxAll applies the received boundary deltas on every processor and
// runs the recombination strategy (local refinement), fanning the relax
// work across opts.Workers goroutines per processor (see parallel.go).
// Rows that entered the step dirty carry un-propagated content (just
// shipped, or freshly disturbed by a dynamic change — including *interior*
// rows such as a new vertex with no cut edge, which are never shipped):
// with refinement enabled they are pivoted through the local rows, after
// which their dirty mark is cleared unless they changed again.
func (e *Engine) relaxAll(inbox [][]cluster.Message) {
	refine := !e.opts.NoLocalRefine || e.forceRefine
	workers := e.opts.Workers
	if workers < 1 {
		workers = 1
	}
	e.mach.Parallel(func(pid int) {
		if e.down(pid) {
			// Crashed processor: no relax work until it rejoins. Zero the
			// telemetry scratch so the step's stats do not re-report the
			// last pre-crash phase.
			p := e.procs[pid]
			p.stepOps = 0
			p.stepMaskedOps = 0
			p.stepRows = p.table.Len()
			p.stepDirty = 0
			return
		}
		rm := e.markProc(pid)
		p := e.procs[pid]
		p.curStep = int32(e.step)
		rows := p.table.Rows()
		p.changed = resizeBools(p.changed, len(rows))
		p.pivot = resizeBools(p.pivot, len(rows))
		p.startDirty = resizeBools(p.startDirty, len(rows))
		for i, r := range rows {
			p.startDirty[i] = r.Dirty
			p.pivot[i] = refine && r.Dirty
		}
		// flatten the received boundary deltas in delivery order
		var ext []*dv.Delta
		for _, msg := range inbox[pid] {
			if msg.Tag != cluster.TagBoundaryDV {
				continue
			}
			ext = append(ext, msg.Payload.([]*dv.Delta)...)
		}
		p.stepOps = p.relaxStep(ext, refine, workers, e.opts.TileSize)
		// startDirty rows were shipped (boundary) and/or locally pivoted:
		// their content is propagated; keep the mark only if they changed
		// again this step. The same pass counts the rows left dirty — the
		// per-step convergence-quality telemetry.
		dirty := 0
		for i, r := range rows {
			if p.startDirty[i] && !p.changed[i] {
				r.ClearDirty()
			}
			if r.Dirty {
				dirty++
			}
		}
		p.stepRows = len(rows)
		p.stepDirty = dirty
		p.hasUpdate = false
		for _, v := range p.sub.LocalBoundary {
			if r := p.table.Row(v); r != nil && r.Dirty {
				p.hasUpdate = true
				break
			}
		}
		// The paper's OpenMP accounting: the relax wall-cost of the step
		// divides over the processor's worker threads.
		e.mach.Charge(pid, p.stepOps/int64(workers))
		addOps(&e.metrics.RCOps, p.stepOps)
		e.spanProc(obs.KindRCRelax, pid, rm, p.stepOps)
	})
	e.mach.Barrier()
}

// resizeBools returns a false-filled bool slice of length n, reusing the
// capacity of b.
func resizeBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// reduceConvergence performs the "no more updates in any processor"
// reduction, charging an allreduce over the tree.
func (e *Engine) reduceConvergence() bool {
	rounds := 0
	for 1<<rounds < e.opts.P {
		rounds++
	}
	// up + down sweep of one tiny message per round
	md := e.mach.Model()
	e.mach.Barrier()
	for p := 0; p < e.opts.P; p++ {
		e.mach.ChargeDuration(p, time.Duration(2*rounds)*(md.O+md.L+md.O))
	}
	e.mach.Barrier()
	// A crashed processor has un-reshipped state and delayed messages carry
	// undelivered updates: neither situation can be convergence.
	if e.anyDown() || e.mach.InFlight() > 0 {
		return false
	}
	for _, p := range e.procs {
		if p.hasUpdate {
			return false
		}
	}
	return true
}

// applyEvent incorporates one dynamic change event (end of an RC step).
func (e *Engine) applyEvent(ev change.Event) {
	cm := e.mark()
	defer e.span(obs.KindChange, cm, 0)
	switch {
	case ev.Batch != nil:
		e.tracef("change", "%s: +%d vertices, %d edges",
			e.opts.Strategy, ev.Batch.NumVertices, ev.Batch.NumEdges())
		e.applyBatch(ev.Batch)
	case len(ev.EdgeAdds) > 0:
		for _, a := range ev.EdgeAdds {
			e.applyEdgeAdd(int(a.U), int(a.V), a.Weight, true)
		}
		e.afterTopologyChange()
	case len(ev.EdgeDels) > 0:
		e.applyEdgeDels(ev.EdgeDels)
	case len(ev.WeightChanges) > 0:
		e.applyWeightChanges(ev.WeightChanges)
	case ev.VertexDel != nil:
		e.applyVertexDel(ev.VertexDel.V)
	case ev.Rebalance != nil:
		e.trace("change", "rebalance")
		e.applyRepartition(&change.VertexBatch{})
	}
	e.converged = false
	e.refreshWeightProfile()
	e.refreshLoadMetrics()
}

// refreshLoadMetrics recomputes the per-processor load snapshot.
func (e *Engine) refreshLoadMetrics() {
	e.metrics.ProcVertices = e.part.Sizes()
	e.metrics.ProcCutSizes = graph.CutSizes(e.g, e.part)
}

// addOps accumulates a work counter from inside Parallel bodies, which run
// concurrently, so the add must be atomic.
func addOps(dst *int64, v int64) {
	atomic.AddInt64(dst, v)
}
