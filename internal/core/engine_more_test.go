package core

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"

	"anytime/internal/change"
	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/sssp"
)

// Engine runs must be fully deterministic for a fixed seed even though
// processors execute as concurrent goroutines (they own disjoint state and
// message order is schedule-defined).
func TestEngineDeterministic(t *testing.T) {
	run := func() ([][]graph.Dist, Metrics) {
		g := testGraph(t, 130, 71)
		o := defaultTestOptions(4, 71)
		o.Strategy = CutEdgePS
		e, err := New(g, o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := gen.CommunityBatch(g, 20, 1.5, gen.Weights{Min: 1, Max: 2}, 71)
		if err != nil {
			t.Fatal(err)
		}
		e.Step()
		if err := e.QueueBatch(b); err != nil {
			t.Fatal(err)
		}
		e.Run()
		return e.Distances(), e.Metrics()
	}
	d1, m1 := run()
	d2, m2 := run()
	for v := range d1 {
		for u := range d1[v] {
			if d1[v][u] != d2[v][u] {
				t.Fatalf("nondeterministic distance at [%d][%d]", v, u)
			}
		}
	}
	if m1.RCSteps != m2.RCSteps || m1.Comm.Messages != m2.Comm.Messages ||
		m1.VirtualTime != m2.VirtualTime || m1.NewCutEdges != m2.NewCutEdges {
		t.Fatalf("nondeterministic metrics: %+v vs %+v", m1, m2)
	}
}

// Property: on random small graphs with random dynamic batches, every
// strategy converges to the sequential oracle.
func TestQuickEngineMatchesOracle(t *testing.T) {
	f := func(seed int64, pRaw, kRaw, stratRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(40)
		p := int(pRaw)%4 + 1
		k := int(kRaw)%12 + 2
		strat := Strategy(int(stratRaw) % 3)
		g, err := gen.BarabasiAlbert(n, 2, gen.Weights{Min: 1, Max: 5}, seed)
		if err != nil {
			return false
		}
		gen.Connectify(g, seed)
		o := defaultTestOptions(p, seed)
		o.Strategy = strat
		e, err := New(g, o)
		if err != nil {
			return false
		}
		b, err := gen.PreferentialBatch(g, k, 2, 1, gen.Weights{Min: 1, Max: 3}, seed)
		if err != nil {
			return false
		}
		if rng.Intn(2) == 0 {
			e.Step()
		}
		if e.QueueBatch(b) != nil {
			return false
		}
		e.Run()
		want := sssp.APSP(e.Graph())
		got := e.Distances()
		for v := range got {
			for u := range got[v] {
				if got[v][u] != want[v][u] {
					return false
				}
			}
		}
		return true
	}
	count := 20
	if v := os.Getenv("ANYTIME_QUICK_SOAK"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			count = n
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// failingPartitioner errors on graphs above a size threshold, exercising
// the Repartition-S fallback path.
type failingPartitioner struct{ threshold int }

func (failingPartitioner) Name() string { return "failing" }

func (f failingPartitioner) Partition(g *graph.Graph, k int) (*graph.Partition, error) {
	if g.NumVertices() > f.threshold {
		return nil, errors.New("injected partitioner failure")
	}
	p := graph.NewPartition(g.NumVertices(), k)
	for v := range p.Part {
		p.Part[v] = int32(v % k)
	}
	return p, nil
}

func TestRepartitionFallbackOnPartitionerFailure(t *testing.T) {
	g := testGraph(t, 90, 73)
	o := defaultTestOptions(3, 73)
	o.Strategy = RepartitionS
	o.Partitioner = failingPartitioner{threshold: 95} // DD works, repartition fails
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	b, err := gen.PreferentialBatch(g, 10, 2, 1, gen.Weights{}, 73)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run() // must fall back to round-robin placement and stay exact
	requireExact(t, e)
}

// Back-to-back queued events of different kinds must apply in order and
// stay exact.
func TestMixedEventQueue(t *testing.T) {
	g := testGraph(t, 90, 79)
	o := defaultTestOptions(4, 79)
	o.Strategy = CutEdgePS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := gen.PreferentialBatch(g, 8, 2, 1, gen.Weights{Min: 1, Max: 2}, 79)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b1); err != nil {
		t.Fatal(err)
	}
	if err := e.QueueEdgeAdds(
		change.EdgeAdd{U: 5, V: 60, Weight: 2},
		change.EdgeAdd{U: 7, V: 55, Weight: 1},
	); err != nil {
		t.Fatal(err)
	}
	if err := e.QueueVertexDel(30); err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
	if e.Graph().NumVertices() != 98 {
		t.Fatalf("vertices = %d", e.Graph().NumVertices())
	}
	if e.Alive(30) {
		t.Fatal("vertex 30 should be deleted")
	}
}

// A batch that references vertices of an earlier *queued* (not yet
// applied) batch through External edges must validate and apply.
func TestQueuedBatchChaining(t *testing.T) {
	g := testGraph(t, 60, 83)
	e, err := New(g, defaultTestOptions(3, 83))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := gen.PreferentialBatch(g, 5, 2, 0, gen.Weights{}, 83)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b1); err != nil {
		t.Fatal(err)
	}
	// b2 anchors on vertex 62, which only exists once b1 applies
	b2 := &change.VertexBatch{NumVertices: 2}
	b2.External = append(b2.External,
		change.ExternalEdge{New: 0, Existing: 62, Weight: 1},
		change.ExternalEdge{New: 1, Existing: 62, Weight: 2})
	if err := e.QueueBatch(b2); err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
	if e.Graph().NumVertices() != 67 {
		t.Fatalf("vertices = %d", e.Graph().NumVertices())
	}
}

// Convergence with zero queued work: Run on a converged engine is a no-op.
func TestRunIdempotentAfterConvergence(t *testing.T) {
	g := testGraph(t, 60, 89)
	e, err := New(g, defaultTestOptions(3, 89))
	if err != nil {
		t.Fatal(err)
	}
	first := e.Run()
	if first == 0 {
		t.Fatal("first run did no steps")
	}
	if again := e.Run(); again != 0 {
		t.Fatalf("converged engine ran %d more steps", again)
	}
	steps := e.StepsTaken()
	if e.Step() {
		t.Fatal("Step on converged engine reported pending work")
	}
	if e.StepsTaken() != steps {
		t.Fatal("Step on converged engine advanced the counter")
	}
}

func TestWeightChanges(t *testing.T) {
	g := testGraph(t, 80, 97)
	e, err := New(g, defaultTestOptions(4, 97))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	// pick an existing edge and decrease its weight
	var eu, ev int32
	var ew graph.Weight
	g.ForEachEdge(func(u, v int, w graph.Weight) {
		if w > 1 && eu == ev {
			eu, ev, ew = int32(u), int32(v), w
		}
	})
	if eu == ev {
		t.Skip("no weighted edge found")
	}
	if err := e.QueueEdgeWeightChanges(change.EdgeWeight{U: eu, V: ev, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
	// now increase it back above the original
	if err := e.QueueEdgeWeightChanges(change.EdgeWeight{U: eu, V: ev, Weight: ew + 3}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	requireExact(t, e)
	if w, _ := e.Graph().EdgeWeight(int(eu), int(ev)); w != ew+3 {
		t.Fatalf("weight = %d, want %d", w, ew+3)
	}
	// invalid requests are rejected
	if err := e.QueueEdgeWeightChanges(change.EdgeWeight{U: 0, V: 0, Weight: 1}); err == nil {
		t.Fatal("self-loop weight change should fail")
	}
	if err := e.QueueEdgeWeightChanges(change.EdgeWeight{U: 0, V: 1, Weight: 0}); err == nil {
		t.Fatal("zero weight should fail")
	}
}

func TestSnapshotEccentricityAndDiameter(t *testing.T) {
	// path 0-1-2-3-4: diameter 4, radius 2
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	e, err := New(g, defaultTestOptions(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	snap := e.Snapshot()
	if snap.Diameter() != 4 {
		t.Fatalf("diameter = %d", snap.Diameter())
	}
	if snap.Radius() != 2 {
		t.Fatalf("radius = %d", snap.Radius())
	}
	if snap.Eccentricity[0] != 4 || snap.Eccentricity[2] != 2 {
		t.Fatalf("eccentricity = %v", snap.Eccentricity)
	}
}

func TestTraceEvents(t *testing.T) {
	g := testGraph(t, 80, 127)
	o := defaultTestOptions(3, 127)
	var events []TraceEvent
	o.Trace = func(ev TraceEvent) { events = append(events, ev) }
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.PreferentialBatch(g, 6, 2, 0, gen.Weights{}, 127)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	kinds := map[string]int{}
	lastVirtual := int64(-1)
	for _, ev := range events {
		kinds[ev.Kind]++
		if int64(ev.Virtual) < lastVirtual {
			t.Fatalf("virtual time went backwards at %+v", ev)
		}
		lastVirtual = int64(ev.Virtual)
	}
	for _, want := range []string{"dd", "ia", "rc-step", "change", "converged"} {
		if kinds[want] == 0 {
			t.Fatalf("missing %q events: %v", want, kinds)
		}
	}
	if kinds["dd"] != 1 || kinds["ia"] != 1 || kinds["converged"] != 1 {
		t.Fatalf("unexpected event multiplicity: %v", kinds)
	}
	if kinds["rc-step"] != e.StepsTaken() {
		t.Fatalf("rc-step events %d != steps %d", kinds["rc-step"], e.StepsTaken())
	}
}

// AutoPS must pick CutEdge-PS for small batches and Repartition-S for
// large ones, staying exact either way.
func TestAutoStrategy(t *testing.T) {
	g := testGraph(t, 100, 131)
	o := defaultTestOptions(4, 131)
	o.Strategy = AutoPS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	small, err := gen.PreferentialBatch(g, 3, 2, 0, gen.Weights{}, 131)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(small); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if m := e.Metrics(); m.Repartitions != 0 {
		t.Fatalf("small batch triggered repartition: %+v", m)
	}
	big, err := gen.CommunityBatch(e.Graph(), 30, 1.5, gen.Weights{}, 131)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(big); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if m := e.Metrics(); m.Repartitions != 1 {
		t.Fatalf("large batch did not repartition: %+v", m)
	}
	requireExact(t, e)
}

// Reconstructed paths must be real paths whose lengths equal the exact
// distances, for every pair, including after dynamic changes.
func TestPathReconstruction(t *testing.T) {
	g := testGraph(t, 90, 137)
	o := defaultTestOptions(4, 137)
	o.Strategy = CutEdgePS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.CommunityBatch(g, 15, 1.5, gen.Weights{Min: 1, Max: 3}, 137)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	exact := sssp.APSP(e.Graph())
	n := e.Graph().NumVertices()
	for u := 0; u < n; u += 7 {
		for v := 0; v < n; v += 5 {
			path, err := e.Path(int32(u), int32(v))
			if exact[u][v] == graph.InfDist {
				if err == nil {
					t.Fatalf("path %d->%d should not exist", u, v)
				}
				continue
			}
			if err != nil {
				t.Fatalf("path %d->%d: %v", u, v, err)
			}
			var total graph.Dist
			for i := 1; i < len(path); i++ {
				w, ok := e.Graph().EdgeWeight(int(path[i-1]), int(path[i]))
				if !ok {
					t.Fatalf("path %d->%d uses non-edge {%d,%d}", u, v, path[i-1], path[i])
				}
				total += w
			}
			if total != exact[u][v] {
				t.Fatalf("path %d->%d length %d, want %d (path %v)", u, v, total, exact[u][v], path)
			}
			if path[0] != int32(u) || path[len(path)-1] != int32(v) {
				t.Fatalf("path endpoints wrong: %v", path)
			}
		}
	}
}

// Paths must survive repartitioning and checkpoints.
func TestPathAfterRepartitionAndRestore(t *testing.T) {
	g := testGraph(t, 80, 139)
	o := defaultTestOptions(3, 139)
	o.Strategy = RepartitionS
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.CommunityBatch(g, 20, 1.3, gen.Weights{Min: 1, Max: 2}, 139)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	var buf bytes.Buffer
	if err := e.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	exact := sssp.APSP(r.Graph())
	for u := 0; u < r.Graph().NumVertices(); u += 11 {
		path, err := r.Path(int32(u), 95) // a dynamically added vertex
		if err != nil {
			t.Fatalf("path %d->95: %v", u, err)
		}
		var total graph.Dist
		for i := 1; i < len(path); i++ {
			w, _ := r.Graph().EdgeWeight(int(path[i-1]), int(path[i]))
			total += w
		}
		if total != exact[u][95] {
			t.Fatalf("restored path %d->95 length %d, want %d", u, total, exact[u][95])
		}
	}
}

func TestPathErrors(t *testing.T) {
	g := testGraph(t, 40, 149)
	e, err := New(g, defaultTestOptions(2, 149))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := e.Path(-1, 3); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if _, err := e.Path(0, 99); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	p, err := e.Path(7, 7)
	if err != nil || len(p) != 1 || p[0] != 7 {
		t.Fatalf("self path = %v, %v", p, err)
	}
	if err := e.QueueVertexDel(3); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := e.Path(0, 3); err == nil {
		t.Fatal("path to deleted vertex accepted")
	}
}

// Rebalancing after deletions skew the load must restore balance, migrate
// rows, and stay exact — the paper's rebalancing future work.
func TestQueueRebalance(t *testing.T) {
	g := testGraph(t, 120, 151)
	o := defaultTestOptions(4, 151)
	e, err := New(g, o)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	// delete a swath of one processor's vertices to skew the load
	part := e.Partition()
	victim := part.Part[0]
	deleted := 0
	for v := 0; v < 120 && deleted < 18; v++ {
		if part.Part[v] == victim {
			if err := e.QueueVertexDel(int32(v)); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
	}
	e.Run()
	requireExact(t, e)
	sizesBefore := e.Metrics().ProcVertices
	spreadBefore := spread(sizesBefore)

	e.QueueRebalance()
	e.Run()
	requireExact(t, e)
	m := e.Metrics()
	if m.Repartitions != 1 {
		t.Fatalf("rebalance did not run: %+v", m)
	}
	if spreadAfter := spread(m.ProcVertices); spreadAfter > spreadBefore {
		t.Fatalf("rebalance worsened spread: %d -> %d (%v -> %v)",
			spreadBefore, spreadAfter, sizesBefore, m.ProcVertices)
	}
	if e.Graph().NumVertices() != 120 {
		t.Fatalf("rebalance changed the vertex count: %d", e.Graph().NumVertices())
	}
}

func spread(sizes []int) int {
	min, max := sizes[0], sizes[0]
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	return max - min
}

func TestStepHistory(t *testing.T) {
	g := testGraph(t, 80, 157)
	e, err := New(g, defaultTestOptions(3, 157))
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.PreferentialBatch(g, 6, 2, 0, gen.Weights{}, 157)
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if err := e.QueueBatch(b); err != nil {
		t.Fatal(err)
	}
	e.Run()
	h := e.History()
	if len(h) != e.StepsTaken() {
		t.Fatalf("history %d entries, %d steps", len(h), e.StepsTaken())
	}
	if h[0].BoundaryMessages == 0 || h[0].RowsShipped == 0 || h[0].Bytes == 0 {
		t.Fatalf("first step recorded nothing: %+v", h[0])
	}
	sawBatch := false
	lastVirtual := int64(-1)
	for i, st := range h {
		if st.Step != i {
			t.Fatalf("step index mismatch at %d: %+v", i, st)
		}
		if int64(st.Virtual) < lastVirtual {
			t.Fatalf("virtual time regressed at step %d", i)
		}
		lastVirtual = int64(st.Virtual)
		if st.ChangeApplied == "vertex-batch(6)" {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Fatalf("batch application not recorded: %+v", h)
	}
	if !h[len(h)-1].ConvergedAfter {
		t.Fatal("final step not marked converged")
	}
}

// Paths between different components must be reported as nonexistent.
func TestPathDisconnected(t *testing.T) {
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	e, err := New(g, defaultTestOptions(2, 167))
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if _, err := e.Path(0, 5); err == nil {
		t.Fatal("cross-component path accepted")
	}
	p, err := e.Path(3, 5)
	if err != nil || len(p) != 3 {
		t.Fatalf("within-component path = %v, %v", p, err)
	}
}
