package clique

import (
	"math/rand"
	"sort"
	"testing"

	"anytime/internal/gen"
	"anytime/internal/graph"
)

func collect(g *graph.Graph) [][]int32 {
	var out [][]int32
	EnumerateMaximal(g, func(c []int32) bool {
		out = append(out, append([]int32(nil), c...))
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func TestEnumerateTrianglePlusTail(t *testing.T) {
	// triangle 0-1-2 with tail 2-3
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)
	got := collect(g)
	want := [][]int32{{0, 1, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("cliques = %v", got)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("cliques = %v, want %v", got, want)
			}
		}
	}
}

func TestEnumerateCompleteGraph(t *testing.T) {
	g := graph.New(6)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	count, done := EnumerateMaximal(g, func([]int32) bool { return true })
	if !done || count != 1 {
		t.Fatalf("K6 should have exactly 1 maximal clique, got %d", count)
	}
	mc := MaxClique(g)
	if len(mc) != 6 {
		t.Fatalf("max clique size = %d", len(mc))
	}
}

func TestEnumerateEdgeless(t *testing.T) {
	g := graph.New(3)
	got := collect(g)
	// each isolated vertex is a maximal clique of size 1
	if len(got) != 3 {
		t.Fatalf("cliques = %v", got)
	}
	if n, done := EnumerateMaximal(graph.New(0), func([]int32) bool { return true }); n != 0 || !done {
		t.Fatal("empty graph should yield nothing")
	}
}

// Every reported clique must actually be a clique and maximal; the count
// must match a brute-force enumeration on small random graphs.
func TestEnumerateAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) != 0 {
					g.MustAddEdge(u, v, 1)
				}
			}
		}
		adj := make([][]bool, n)
		for u := 0; u < n; u++ {
			adj[u] = make([]bool, n)
			for _, a := range g.Neighbors(u) {
				adj[u][a.To] = true
			}
		}
		isClique := func(set []int) bool {
			for i := 0; i < len(set); i++ {
				for j := i + 1; j < len(set); j++ {
					if !adj[set[i]][set[j]] {
						return false
					}
				}
			}
			return true
		}
		// brute force over all subsets
		brute := 0
		for mask := 1; mask < 1<<n; mask++ {
			var set []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					set = append(set, v)
				}
			}
			if !isClique(set) {
				continue
			}
			maximal := true
			for v := 0; v < n && maximal; v++ {
				if mask&(1<<v) != 0 {
					continue
				}
				ok := true
				for _, u := range set {
					if !adj[v][u] {
						ok = false
						break
					}
				}
				if ok {
					maximal = false
				}
			}
			if maximal {
				brute++
			}
		}
		count := 0
		EnumerateMaximal(g, func(c []int32) bool {
			set := make([]int, len(c))
			for i, v := range c {
				set[i] = int(v)
			}
			if !isClique(set) {
				t.Fatalf("trial %d: reported non-clique %v", trial, c)
			}
			count++
			return true
		})
		if count != brute {
			t.Fatalf("trial %d: enumerated %d cliques, brute force %d", trial, count, brute)
		}
	}
}

// The anytime property: the visitor can stop the enumeration early and
// the count reflects exactly what was delivered.
func TestEnumerateInterrupt(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 3, gen.Weights{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	total, done := EnumerateMaximal(g, func([]int32) bool { return true })
	if !done || total < 10 {
		t.Fatalf("expected many cliques, got %d", total)
	}
	limit := total / 2
	seen := 0
	n, done := EnumerateMaximal(g, func([]int32) bool {
		seen++
		return seen < limit
	})
	if done {
		t.Fatal("enumeration should have been interrupted")
	}
	if n != limit || seen != limit {
		t.Fatalf("interrupted at %d, reported %d, want %d", seen, n, limit)
	}
}

func TestDegeneracy(t *testing.T) {
	// a tree has degeneracy 1
	tree := graph.New(6)
	for v := 1; v < 6; v++ {
		tree.MustAddEdge(v, (v-1)/2, 1)
	}
	if d := Degeneracy(tree); d != 1 {
		t.Fatalf("tree degeneracy = %d", d)
	}
	// K5 has degeneracy 4
	k5 := graph.New(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			k5.MustAddEdge(u, v, 1)
		}
	}
	if d := Degeneracy(k5); d != 4 {
		t.Fatalf("K5 degeneracy = %d", d)
	}
}

func TestDegeneracyOrderIsPermutation(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 2, gen.Weights{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	order := DegeneracyOrder(g)
	if len(order) != 200 {
		t.Fatalf("order covers %d vertices", len(order))
	}
	seen := make([]bool, 200)
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d repeated", v)
		}
		seen[v] = true
	}
}

// BA graphs with attachment m contain K_{m+1}: MaxClique must find at
// least that.
func TestMaxCliqueOnScaleFree(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, gen.Weights{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if mc := MaxClique(g); len(mc) < 4 {
		t.Fatalf("max clique %v smaller than the seed clique", mc)
	}
}
