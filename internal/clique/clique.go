// Package clique implements anytime maximal clique enumeration, the other
// SNA analysis of the anytime-anywhere methodology's lineage (Pan &
// Santos, SMC 2008): Bron–Kerbosch with pivoting and degeneracy ordering,
// streaming each maximal clique to a callback as soon as it is found —
// interrupt at any point and the cliques reported so far form a valid
// partial enumeration.
package clique

import (
	"sort"

	"anytime/internal/graph"
)

// Visitor receives one maximal clique (sorted ascending; the slice is
// reused — copy it to retain). Returning false stops the enumeration (the
// anytime interrupt).
type Visitor func(clique []int32) bool

// EnumerateMaximal streams every maximal clique of g to visit, using
// Bron–Kerbosch with pivoting over a degeneracy vertex ordering (the
// standard output-efficient variant). It returns the number of cliques
// reported and whether the enumeration ran to completion (false if the
// visitor stopped it).
func EnumerateMaximal(g *graph.Graph, visit Visitor) (int, bool) {
	n := g.NumVertices()
	if n == 0 {
		return 0, true
	}
	adj := buildAdjSets(g)
	order := DegeneracyOrder(g)
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	e := &enum{g: g, adj: adj, visit: visit}
	for _, v := range order {
		// P = later neighbors, X = earlier neighbors (w.r.t. the ordering)
		var p, x []int32
		for _, a := range g.Neighbors(int(v)) {
			if pos[a.To] > pos[v] {
				p = append(p, a.To)
			} else {
				x = append(x, a.To)
			}
		}
		e.r = append(e.r[:0], v)
		if !e.expand(p, x) {
			return e.count, false
		}
	}
	return e.count, true
}

type enum struct {
	g     *graph.Graph
	adj   []map[int32]bool
	visit Visitor
	r     []int32
	count int
	out   []int32 // scratch for the sorted clique handed to the visitor
}

// expand is the recursive Bron–Kerbosch step with pivoting. Returns false
// if the visitor stopped the enumeration.
func (e *enum) expand(p, x []int32) bool {
	if len(p) == 0 && len(x) == 0 {
		e.count++
		e.out = append(e.out[:0], e.r...)
		sort.Slice(e.out, func(i, j int) bool { return e.out[i] < e.out[j] })
		return e.visit(e.out)
	}
	// pivot: vertex of P ∪ X with the most neighbors in P
	pivot, best := int32(-1), -1
	consider := func(u int32) {
		cnt := 0
		for _, w := range p {
			if e.adj[u][w] {
				cnt++
			}
		}
		if cnt > best {
			pivot, best = u, cnt
		}
	}
	for _, u := range p {
		consider(u)
	}
	for _, u := range x {
		consider(u)
	}
	// candidates: P minus neighbors of the pivot
	var cands []int32
	for _, u := range p {
		if !e.adj[pivot][u] {
			cands = append(cands, u)
		}
	}
	pSet := append([]int32(nil), p...)
	xSet := append([]int32(nil), x...)
	for _, u := range cands {
		var np, nx []int32
		for _, w := range pSet {
			if e.adj[u][w] {
				np = append(np, w)
			}
		}
		for _, w := range xSet {
			if e.adj[u][w] {
				nx = append(nx, w)
			}
		}
		e.r = append(e.r, u)
		ok := e.expand(np, nx)
		e.r = e.r[:len(e.r)-1]
		if !ok {
			return false
		}
		// move u from P to X
		for i, w := range pSet {
			if w == u {
				pSet = append(pSet[:i], pSet[i+1:]...)
				break
			}
		}
		xSet = append(xSet, u)
	}
	return true
}

func buildAdjSets(g *graph.Graph) []map[int32]bool {
	adj := make([]map[int32]bool, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		m := make(map[int32]bool, g.Degree(v))
		for _, a := range g.Neighbors(v) {
			m[a.To] = true
		}
		adj[v] = m
	}
	return adj
}

// DegeneracyOrder returns a vertex ordering by repeated minimum-degree
// removal (the degeneracy ordering), which bounds the Bron–Kerbosch
// recursion width by the graph's degeneracy.
func DegeneracyOrder(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	order := make([]int32, 0, n)
	cur := 0
	for len(order) < n {
		for cur < len(buckets) && len(buckets[cur]) == 0 {
			cur++
		}
		if cur >= len(buckets) {
			break
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		for _, a := range g.Neighbors(int(v)) {
			if !removed[a.To] {
				deg[a.To]--
				buckets[deg[a.To]] = append(buckets[deg[a.To]], a.To)
				if deg[a.To] < cur {
					cur = deg[a.To]
				}
			}
		}
	}
	return order
}

// Degeneracy returns the graph degeneracy (the largest minimum degree of
// any subgraph), a standard sparsity measure for social networks.
func Degeneracy(g *graph.Graph) int {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	removed := make([]bool, n)
	degeneracy := 0
	for k := 0; k < n; k++ {
		min, minV := -1, -1
		for v := 0; v < n; v++ {
			if !removed[v] && (min == -1 || deg[v] < min) {
				min, minV = deg[v], v
			}
		}
		if minV == -1 {
			break
		}
		if min > degeneracy {
			degeneracy = min
		}
		removed[minV] = true
		for _, a := range g.Neighbors(minV) {
			if !removed[a.To] {
				deg[a.To]--
			}
		}
	}
	return degeneracy
}

// MaxClique returns one maximum clique (largest size) by full enumeration.
// Exponential in the worst case; intended for the moderate, sparse social
// graphs this library targets.
func MaxClique(g *graph.Graph) []int32 {
	var best []int32
	EnumerateMaximal(g, func(c []int32) bool {
		if len(c) > len(best) {
			best = append(best[:0], c...)
		}
		return true
	})
	return best
}
