package dv

import (
	"testing"
	"testing/quick"

	"anytime/internal/graph"
)

func TestAddRowInitialState(t *testing.T) {
	tb := NewMatrix(4)
	r := tb.AddRow(2)
	if r.Owner != 2 || !r.Dirty {
		t.Fatalf("row = %+v", r)
	}
	for i, d := range r.D {
		want := graph.InfDist
		if i == 2 {
			want = 0
		}
		if d != want {
			t.Fatalf("D[%d] = %d", i, d)
		}
	}
	if tb.Len() != 1 || !tb.Has(2) || tb.Has(1) {
		t.Fatal("membership wrong")
	}
}

func TestAddRowPanics(t *testing.T) {
	tb := NewMatrix(3)
	tb.AddRow(1)
	assertPanic(t, func() { tb.AddRow(1) }, "duplicate row")
	assertPanic(t, func() { tb.AddRow(7) }, "out-of-range row")
}

func assertPanic(t *testing.T, f func(), msg string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", msg)
		}
	}()
	f()
}

func TestRelax(t *testing.T) {
	tb := NewMatrix(3)
	r := tb.AddRow(0)
	r.Dirty = false
	if !r.Relax(1, 5) || r.D[1] != 5 || !r.Dirty {
		t.Fatal("first relax should apply")
	}
	r.Dirty = false
	if r.Relax(1, 7) {
		t.Fatal("worse relax should be ignored")
	}
	if r.Dirty {
		t.Fatal("ignored relax must not dirty the row")
	}
	if !r.Relax(1, 2) || r.D[1] != 2 {
		t.Fatal("better relax should apply")
	}
}

func TestExtendColsPreservesAndFills(t *testing.T) {
	tb := NewMatrix(2)
	r := tb.AddRow(0)
	r.D[1] = 9
	tb.ExtendCols(3)
	if tb.Cols() != 5 {
		t.Fatalf("cols = %d", tb.Cols())
	}
	if len(r.D) != 5 || r.D[1] != 9 {
		t.Fatalf("row lost data: %v", r.D)
	}
	for i := 2; i < 5; i++ {
		if r.D[i] != graph.InfDist {
			t.Fatalf("new column %d = %d", i, r.D[i])
		}
	}
	if tb.ResizeCopies == 0 {
		t.Fatal("resize copies not tracked")
	}
	tb.ExtendCols(0)
	if tb.Cols() != 5 {
		t.Fatal("ExtendCols(0) must be a no-op")
	}
}

// Property: interleaved AddRow/ExtendCols keeps every row at the table
// width with the self-distance zero, all-new columns InfDist, and resize
// cost within the amortized-doubling bound (total copies bounded by a
// small multiple of the final volume).
func TestQuickExtendAmortized(t *testing.T) {
	f := func(steps []uint8) bool {
		tb := NewMatrix(1)
		tb.AddRow(0)
		for _, s := range steps {
			k := int(s%7) + 1
			tb.ExtendCols(k)
			if s%3 == 0 {
				// the freshly added column ID has no row yet
				tb.AddRow(int32(tb.Cols() - 1))
			}
		}
		for _, r := range tb.Rows() {
			if len(r.D) != tb.Cols() {
				return false
			}
			if r.D[r.Owner] != 0 {
				return false
			}
		}
		volume := int64(tb.Len() * tb.Cols())
		return tb.ResizeCopies <= 4*volume+64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveAndAdoptRow(t *testing.T) {
	a := NewMatrix(4)
	b := NewMatrix(4)
	r0 := a.AddRow(0)
	a.AddRow(1)
	r0.D[3] = 7
	got := a.RemoveRow(0)
	if got != r0 || a.Has(0) || a.Len() != 1 {
		t.Fatal("remove failed")
	}
	if a.RemoveRow(0) != nil {
		t.Fatal("double remove should return nil")
	}
	b.AdoptRow(got)
	if !b.Has(0) || b.Row(0).D[3] != 7 {
		t.Fatal("adopt lost data")
	}
	assertPanic(t, func() { b.AdoptRow(got) }, "duplicate adopt")
}

func TestAdoptRowWidens(t *testing.T) {
	a := NewMatrix(2)
	a.AddRow(1)
	r := a.RemoveRow(1)
	b := NewMatrix(5)
	b.AdoptRow(r)
	if len(b.Row(1).D) != 5 {
		t.Fatalf("adopted row width %d", len(b.Row(1).D))
	}
	for i := 2; i < 5; i++ {
		if b.Row(1).D[i] != graph.InfDist {
			t.Fatal("widened tail must be InfDist")
		}
	}
}

// The refine phase streams pivot tiles straight out of the arena, so the
// row-at-slot-i invariant (Rows()[i] views arena[i*stride:]) must survive
// every mutation: adds, removes (swap-with-last), adoption, and column
// extension through both the in-place and the re-layout path.
func TestArenaRowSlotInvariant(t *testing.T) {
	check := func(m *Matrix) {
		t.Helper()
		arena, stride := m.Arena()
		for i, r := range m.Rows() {
			if len(r.D) != m.Cols() {
				t.Fatalf("row %d width %d, want %d", i, len(r.D), m.Cols())
			}
			for c, d := range r.D {
				if arena[i*stride+c] != d {
					t.Fatalf("row %d col %d: view %d != arena %d", i, c, d, arena[i*stride+c])
				}
			}
			if r.D[r.Owner] != 0 {
				t.Fatalf("row %d self-distance %d", i, r.D[r.Owner])
			}
		}
	}
	m := NewMatrix(3)
	for v := int32(0); v < 3; v++ {
		m.AddRow(v)
	}
	m.Row(0).Relax(2, 7)
	check(m)
	m.ExtendCols(2) // forces a stride re-layout (3 -> >=5)
	check(m)
	if m.Row(0).D[2] != 7 {
		t.Fatal("re-layout lost data")
	}
	m.AddRow(4)
	m.ExtendCols(1) // fits the doubled stride: in-place fill
	check(m)
	m.RemoveRow(0) // swap-with-last moves row 4 into slot 0
	check(m)
	if m.Row(4) == nil || m.Rows()[0].Owner != 4 {
		t.Fatal("swap-with-last broke indexing")
	}
	det := NewMatrix(6)
	det.AddRow(3)
	det.Row(3).Relax(5, 9)
	det.AdoptRow(m.RemoveRow(4))
	check(det)
	check(m)
}

// Removed rows detach onto private backing: mutating them must not write
// through to the matrix (whose slot is reused by the swapped-in row), and
// vice versa.
func TestRemoveRowDetaches(t *testing.T) {
	m := NewMatrix(4)
	m.AddRow(0)
	m.AddRow(1)
	r := m.RemoveRow(0)
	r.D[2] = 42
	if m.Row(1).D[2] == 42 {
		t.Fatal("detached row still aliases the arena")
	}
	m.Row(1).Relax(3, 5)
	if r.D[3] == 5 {
		t.Fatal("arena write leaked into the detached row")
	}
}

func TestAdoptAttachedRowPanics(t *testing.T) {
	a := NewMatrix(2)
	r := a.AddRow(0)
	b := NewMatrix(2)
	assertPanic(t, func() { b.AdoptRow(r) }, "adopt attached row")
}

// Views must survive arena slot growth triggered by row appends: slices
// captured before an AddRow would otherwise dangle on the old backing.
func TestViewsRepointedAfterSlotGrowth(t *testing.T) {
	m := NewMatrix(3)
	r0 := m.AddRow(0)
	for v := int32(1); v < 3; v++ {
		m.AddRow(v) // forces at least one slot-capacity doubling
	}
	r0.Relax(2, 6)
	arena, stride := m.Arena()
	if arena[0*stride+2] != 6 {
		t.Fatal("row 0 view detached from arena after slot growth")
	}
}

func TestDirtyRowsAndClear(t *testing.T) {
	tb := NewMatrix(3)
	tb.AddRow(0)
	tb.AddRow(1)
	if len(tb.DirtyRows()) != 2 {
		t.Fatal("fresh rows must be dirty")
	}
	tb.ClearDirty()
	if len(tb.DirtyRows()) != 0 {
		t.Fatal("clear failed")
	}
	tb.Row(1).Relax(0, 4)
	dr := tb.DirtyRows()
	if len(dr) != 1 || dr[0].Owner != 1 {
		t.Fatalf("dirty rows = %v", dr)
	}
}

func TestRowBytesAndCopyRow(t *testing.T) {
	tb := NewMatrix(10)
	if tb.RowBytes() != 48 {
		t.Fatalf("RowBytes = %d", tb.RowBytes())
	}
	r := tb.AddRow(3)
	c := CopyRow(r)
	c.D[0] = 1
	if r.D[0] == 1 {
		t.Fatal("CopyRow aliases the original")
	}
	if c.Owner != 3 {
		t.Fatal("owner lost")
	}
	// Snapshots carry distances only: no next hops, and never the sender's
	// dirty bookkeeping.
	if c.NH != nil || c.Dirty {
		t.Fatalf("CopyRow leaked processor-local state: %+v", c)
	}
}

func TestPendingWindowLifecycle(t *testing.T) {
	tb := NewMatrix(8)
	r := tb.AddRow(2)
	// Fresh rows ship in full.
	if all, _, _ := r.PendingState(); !all {
		t.Fatal("fresh row must be marked ship-all")
	}
	d := r.ShipDelta()
	if d.Lo != 0 || len(d.D) != 8 {
		t.Fatalf("fresh delta = lo=%d len=%d, want full row", d.Lo, len(d.D))
	}
	r.ClearPending()
	r.ClearDirty()
	r.ClearFrontier() // anchor a clean epoch: deltas now carry frontier words

	// Point relaxations accumulate into one window. The shipped window
	// rounds its start down to a 64-column boundary (here: 0) so the
	// attached frontier words line up with window offsets.
	r.Relax(5, 9)
	r.Relax(3, 4)
	if !r.Dirty {
		t.Fatal("relax must dirty the row")
	}
	d = r.ShipDelta()
	if d.Lo != 0 || len(d.D) != 6 {
		t.Fatalf("delta = lo=%d len=%d, want word-aligned window [0,6)", d.Lo, len(d.D))
	}
	if d.D[3] != 4 || d.D[5] != 9 {
		t.Fatalf("delta columns wrong: %v", d.D)
	}
	if len(d.F) != 1 || !d.F.Get(3) || !d.F.Get(5) || d.F.Get(4) {
		t.Fatalf("delta frontier wrong: %v", d.F)
	}
	if d.WireBytes() != 4*6+8*1+16 {
		t.Fatalf("WireBytes = %d", d.WireBytes())
	}
	// Delta snapshots must not alias the row.
	d.D[3] = 1
	d.F[0] = 0
	if r.D[3] == 1 || !r.F.Get(3) {
		t.Fatal("ShipDelta aliases the row")
	}

	// After shipping, the window resets; new changes start a fresh window.
	r.ClearPending()
	r.MarkChanged(6, 7)
	d = r.ShipDelta()
	if d.Lo != 0 || len(d.D) != 7 {
		t.Fatalf("post-ship delta = lo=%d len=%d, want word-aligned window [0,7)", d.Lo, len(d.D))
	}

	// MarkShipAll overrides any window, and the unknown change extent
	// means no frontier words travel.
	r.MarkShipAll()
	if d := r.ShipDelta(); d.Lo != 0 || len(d.D) != 8 || d.F != nil {
		t.Fatal("MarkShipAll must force a full-row delta without frontier words")
	}

	// Dirty with an empty window (e.g. a restored pre-delta checkpoint)
	// falls back to a full ship.
	r.ClearDirty()
	r.Dirty = true
	if d := r.ShipDelta(); d.Lo != 0 || len(d.D) != 8 {
		t.Fatal("dirty row with empty window must ship in full")
	}
}

func TestMarkChangedUnionsWindows(t *testing.T) {
	tb := NewMatrix(10)
	r := tb.AddRow(0)
	r.ClearDirty()
	r.MarkChanged(4, 6)
	r.MarkChanged(2, 5)
	r.MarkChanged(8, 9)
	d := r.ShipDelta()
	if d.Lo != 0 || len(d.D) != 9 {
		t.Fatalf("union window = [%d,%d), want word-aligned [0,9)", d.Lo, int(d.Lo)+len(d.D))
	}
	// Empty marks are no-ops.
	r.ClearDirty()
	r.MarkChanged(5, 5)
	if r.Dirty {
		t.Fatal("empty MarkChanged must not dirty the row")
	}
}

// A window past the first word must round its start down to the word
// boundary, and the shipped frontier words must be the row's words over
// exactly that range, so window-relative bit positions address the right
// columns.
func TestShipDeltaFrontierAlignment(t *testing.T) {
	tb := NewMatrix(130)
	r := tb.AddRow(1)
	r.ClearDirty()
	r.ClearFrontier()
	r.Relax(70, 9)
	r.Relax(100, 4)
	d := r.ShipDelta()
	if d.Lo != 64 || len(d.D) != 101-64 {
		t.Fatalf("delta = lo=%d len=%d, want word-aligned window [64,101)", d.Lo, len(d.D))
	}
	if d.D[70-64] != 9 || d.D[100-64] != 4 {
		t.Fatalf("delta columns wrong: %v", d.D)
	}
	if len(d.F) != 1 || !d.F.Get(70-64) || !d.F.Get(100-64) || d.F.OnesCount() != 2 {
		t.Fatalf("delta frontier wrong: %v", d.F)
	}
	// FullDelta over a clean-epoch row carries the whole frontier.
	fd := r.FullDelta()
	if fd.Lo != 0 || len(fd.D) != 130 || len(fd.F) != 3 {
		t.Fatalf("full delta = lo=%d len=%d fwords=%d", fd.Lo, len(fd.D), len(fd.F))
	}
	if !fd.F.Get(70) || !fd.F.Get(100) || fd.F.OnesCount() != 2 {
		t.Fatalf("full-delta frontier wrong: %v", fd.F)
	}
}
