// Package dv implements the distance-vector (DV) state each processor
// maintains in the anytime-anywhere engine: one row per locally owned
// vertex holding current shortest-distance upper bounds to every vertex of
// the (growing) graph. Rows support the paper's amortized-doubling column
// extension for dynamic vertex additions and dirty tracking so that only
// *updated* boundary DVs are shipped during recombination.
package dv

import (
	"fmt"

	"anytime/internal/graph"
)

// Row is the distance vector of one vertex: D[t] is the best known
// distance from the row's owner to global vertex t (InfDist = none known).
// NH[t] is the distance-vector-routing next hop: the neighbor of Owner on
// the path realizing D[t] (-1 = unknown; NH[Owner] = Owner). Next hops
// enable shortest-path reconstruction across processors once the engine
// has converged.
type Row struct {
	Owner int32
	D     []graph.Dist
	NH    []int32
	// Dirty marks the row as changed since it was last shipped to
	// neighboring processors.
	Dirty bool
}

// Relax lowers D[t] to d if d is an improvement, marking the row dirty.
// The next hop for t becomes unknown. Reports whether an update happened.
func (r *Row) Relax(t int32, d graph.Dist) bool {
	return r.RelaxVia(t, d, -1)
}

// RelaxVia lowers D[t] to d if d is an improvement, recording nh as the
// next hop toward t. Reports whether an update happened.
func (r *Row) RelaxVia(t int32, d graph.Dist, nh int32) bool {
	if d < r.D[t] {
		r.D[t] = d
		r.NH[t] = nh
		r.Dirty = true
		return true
	}
	return false
}

// Table is the per-processor DV store.
type Table struct {
	cols  int
	rows  []*Row
	index map[int32]int // global vertex ID -> position in rows
	// ResizeCopies counts element copies performed by column-extension
	// reallocations (the paper's O(n+k) amortized DV-resize cost term).
	ResizeCopies int64
}

// NewTable creates an empty table whose rows span `cols` global vertices.
func NewTable(cols int) *Table {
	return &Table{cols: cols, index: make(map[int32]int)}
}

// Cols returns the current logical row width (number of global vertices).
func (t *Table) Cols() int { return t.cols }

// Len returns the number of rows (locally owned vertices).
func (t *Table) Len() int { return len(t.rows) }

// Rows returns the rows in insertion order. The slice is owned by the
// table; callers must not reorder it.
func (t *Table) Rows() []*Row { return t.rows }

// Has reports whether a row for global vertex v exists.
func (t *Table) Has(v int32) bool {
	_, ok := t.index[v]
	return ok
}

// Row returns the row of global vertex v, or nil if not owned here.
func (t *Table) Row(v int32) *Row {
	if i, ok := t.index[v]; ok {
		return t.rows[i]
	}
	return nil
}

// AddRow inserts a fresh row for global vertex v: all InfDist except
// D[v] = 0. Panics if the row exists or v is outside the current width.
func (t *Table) AddRow(v int32) *Row {
	if _, ok := t.index[v]; ok {
		panic(fmt.Sprintf("dv: duplicate row for vertex %d", v))
	}
	if int(v) >= t.cols {
		panic(fmt.Sprintf("dv: vertex %d outside width %d", v, t.cols))
	}
	d := make([]graph.Dist, t.cols)
	nh := make([]int32, t.cols)
	for i := range d {
		d[i] = graph.InfDist
		nh[i] = -1
	}
	d[v] = 0
	nh[v] = v
	r := &Row{Owner: v, D: d, NH: nh, Dirty: true}
	t.index[v] = len(t.rows)
	t.rows = append(t.rows, r)
	return r
}

// RemoveRow deletes the row of v (repartitioning migrates rows between
// processors; vertex deletion drops them). Returns the removed row or nil.
func (t *Table) RemoveRow(v int32) *Row {
	i, ok := t.index[v]
	if !ok {
		return nil
	}
	r := t.rows[i]
	last := len(t.rows) - 1
	t.rows[i] = t.rows[last]
	t.index[t.rows[i].Owner] = i
	t.rows = t.rows[:last]
	delete(t.index, v)
	return r
}

// AdoptRow installs an existing row (migrated from another processor). Its
// width is extended to the table's width if needed.
func (t *Table) AdoptRow(r *Row) {
	if _, ok := t.index[r.Owner]; ok {
		panic(fmt.Sprintf("dv: duplicate adopted row for vertex %d", r.Owner))
	}
	if len(r.D) < t.cols {
		k := t.cols - len(r.D)
		r.D = t.extendSlice(r.D, k)
		r.NH = extendHops(r.NH, k)
	}
	t.index[r.Owner] = len(t.rows)
	t.rows = append(t.rows, r)
}

// ExtendCols widens every row by k new columns initialized to InfDist,
// using append's amortized doubling (the paper assumes vector size doubles
// on resize, for an O(n+k) amortized cost, which is tracked in
// ResizeCopies).
func (t *Table) ExtendCols(k int) {
	if k <= 0 {
		return
	}
	t.cols += k
	for _, r := range t.rows {
		r.D = t.extendSlice(r.D, k)
		r.NH = extendHops(r.NH, k)
	}
}

func extendHops(nh []int32, k int) []int32 {
	for i := 0; i < k; i++ {
		nh = append(nh, -1)
	}
	return nh
}

func (t *Table) extendSlice(d []graph.Dist, k int) []graph.Dist {
	oldCap := cap(d)
	for i := 0; i < k; i++ {
		d = append(d, graph.InfDist)
	}
	if cap(d) != oldCap {
		t.ResizeCopies += int64(len(d) - k)
	}
	return d
}

// DirtyRows returns the rows currently marked dirty, in insertion order.
func (t *Table) DirtyRows() []*Row {
	var out []*Row
	for _, r := range t.rows {
		if r.Dirty {
			out = append(out, r)
		}
	}
	return out
}

// ClearDirty resets all dirty marks (after shipping).
func (t *Table) ClearDirty() {
	for _, r := range t.rows {
		r.Dirty = false
	}
}

// RowBytes returns the accounted wire size of one full row of the current
// width: 4 bytes per distance plus an 8-byte header (owner + length).
// Next hops are processor-local routing state and are never shipped, so
// they do not contribute.
func (t *Table) RowBytes() int { return 4*t.cols + 8 }

// CopyRow returns a deep copy of row r's shippable content (distances;
// next hops are processor-local and are not copied) for snapshots that
// must not alias mutable state.
func CopyRow(r *Row) *Row {
	return &Row{Owner: r.Owner, D: append([]graph.Dist(nil), r.D...), Dirty: r.Dirty}
}
