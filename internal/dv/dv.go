// Package dv implements the distance-vector (DV) state each processor
// maintains in the anytime-anywhere engine: one row per locally owned
// vertex holding current shortest-distance upper bounds to every vertex of
// the (growing) graph. Rows are views into one flat row-major arena per
// processor, so the recombination refine phase streams over contiguous
// memory; the paper's amortized-doubling column extension for dynamic
// vertex additions is preserved as amortized-doubling of the arena stride.
// Dirty tracking ensures only *updated* boundary DVs are shipped during
// recombination.
package dv

import (
	"fmt"

	"anytime/internal/graph"
	"anytime/internal/kernel"
)

// Row is the distance vector of one vertex: D[t] is the best known
// distance from the row's owner to global vertex t (InfDist = none known).
// NH[t] is the distance-vector-routing next hop: the neighbor of Owner on
// the path realizing D[t] (-1 = unknown; NH[Owner] = Owner). Next hops
// enable shortest-path reconstruction across processors once the engine
// has converged.
//
// While a row is attached to a Matrix, D and NH alias the matrix arena;
// RemoveRow detaches them onto private backing so migrated rows stay valid
// after the slot is reused.
type Row struct {
	Owner int32
	D     []graph.Dist
	NH    []int32
	// Dirty marks the row as changed since it was last shipped to
	// neighboring processors.
	Dirty bool

	// F is the row's dirty frontier: bit t set means D[t] changed since the
	// last clean global convergence. The masked min-plus kernels consult it
	// to skip provably non-improving columns (see internal/kernel/masked.go)
	// and record into it as they relax. FAll marks the whole row changed
	// with unknown extent — fresh, migrated, restored, or reset rows — and
	// forces full sweeps both when the row pivots and when it is relaxed.
	// Unlike the pending ship window, the frontier survives ClearPending/
	// ClearDirty: it resets only at a clean global convergence
	// (ClearFrontier), because that is the fixpoint the masking soundness
	// argument is anchored to.
	F    kernel.Bitset
	FAll bool

	// pendLo/pendHi delimit the half-open window of columns changed since
	// the row was last shipped; pendAll forces a full-row ship when the
	// extent of the pending changes is unknown (fresh, migrated, restored,
	// or topology-disturbed rows). Maintained by MarkChanged/MarkShipAll,
	// consumed by ShipDelta, reset by ClearPending.
	pendLo, pendHi int32
	pendAll        bool

	mx *Matrix // non-nil while D/NH alias mx's arena
}

// Relax lowers D[t] to d if d is an improvement, marking the row dirty.
// The next hop for t becomes unknown. Reports whether an update happened.
func (r *Row) Relax(t int32, d graph.Dist) bool {
	return r.RelaxVia(t, d, -1)
}

// RelaxVia lowers D[t] to d if d is an improvement, recording nh as the
// next hop toward t. Reports whether an update happened.
func (r *Row) RelaxVia(t int32, d graph.Dist, nh int32) bool {
	if d < r.D[t] {
		r.D[t] = d
		r.NH[t] = nh
		if r.F != nil {
			r.F.Set(int(t))
		}
		r.MarkChanged(int(t), int(t)+1)
		return true
	}
	return false
}

// MarkChanged records that columns [lo, hi) changed since the last ship,
// marking the row dirty and widening the pending delta window.
func (r *Row) MarkChanged(lo, hi int) {
	if lo >= hi {
		return
	}
	r.Dirty = true
	if r.pendLo >= r.pendHi {
		r.pendLo, r.pendHi = int32(lo), int32(hi)
		return
	}
	if int32(lo) < r.pendLo {
		r.pendLo = int32(lo)
	}
	if int32(hi) > r.pendHi {
		r.pendHi = int32(hi)
	}
}

// MarkShipAll marks the row dirty with unknown change extent, forcing the
// next ship to carry the full row. Used for rows whose receivers may never
// have seen any version of them: fresh rows, migrated rows, rows disturbed
// by topology changes, and rows restored from a pre-delta checkpoint.
func (r *Row) MarkShipAll() {
	r.Dirty = true
	r.pendAll = true
	// Unknown change extent also invalidates the frontier: receivers and
	// masked sweeps must treat every column as potentially changed.
	r.FAll = true
}

// MarkShipFull forces the next ship to carry the full row while keeping
// the frontier intact. For rows whose receiver set may have grown (an
// edge-add endpoint now bordering a part that never saw the row) but whose
// every change went through a recorded relax path: new receivers need the
// full values, yet the masking skip rule stays sound for them too — it is
// anchored to the last clean convergence, a global fixpoint property that
// does not depend on which versions a receiver has seen.
func (r *Row) MarkShipFull() {
	r.Dirty = true
	r.pendAll = true
}

// ClearFrontier resets the row's dirty frontier. Called only at a clean
// global convergence, the fixpoint that re-anchors the masked kernels'
// skip rule.
func (r *Row) ClearFrontier() {
	for i := range r.F {
		r.F[i] = 0
	}
	r.FAll = false
}

// ClearPending resets the pending delta window after the row's snapshot
// has been shipped. The dirty mark clears separately — at the end of the
// relax phase, unless the row changed again.
func (r *Row) ClearPending() {
	r.pendLo, r.pendHi = 0, 0
	r.pendAll = false
}

// ClearDirty clears the dirty mark together with the pending window (the
// row's content is fully propagated).
func (r *Row) ClearDirty() {
	r.Dirty = false
	r.ClearPending()
}

// PendingState exposes the raw pending-window fields for checkpointing.
func (r *Row) PendingState() (all bool, lo, hi int32) {
	return r.pendAll, r.pendLo, r.pendHi
}

// SetPendingState restores the raw pending-window fields from a
// checkpoint.
func (r *Row) SetPendingState(all bool, lo, hi int32) {
	r.pendAll, r.pendLo, r.pendHi = all, lo, hi
}

// Matrix is the per-processor DV store. All rows share one flat row-major
// arena: the row at position i views d[i*stride : i*stride+cols] (and nh
// likewise), so consecutive rows are contiguous in memory and the refine
// phase can stream pivot tiles straight out of the arena (see
// internal/kernel.MinPlusTile). stride (>= cols) is the allocated column
// capacity per row slot: column extension first fills the slack
// [cols, stride) in place and re-lays the arena with a doubled stride only
// when the slack runs out — the paper's amortized-doubling O(n+k) resize,
// with element copies tracked in ResizeCopies.
type Matrix struct {
	cols   int
	stride int
	d      []graph.Dist // len == slot capacity * stride
	nh     []int32
	// fw backs the rows' frontier bitmasks at wstride words per slot
	// (wstride = BitsetWords(stride), so in-place column extension never
	// re-lays the words). Bits at or beyond cols are kept zero — Set is
	// only ever called on valid columns and slots are zeroed on (re)use —
	// which lets relayouts and width growth copy words verbatim.
	fw      []uint64
	wstride int
	rows    []*Row
	index   map[int32]int // global vertex ID -> position in rows
	// ResizeCopies counts element copies performed by column-extension
	// reallocations (the paper's O(n+k) amortized DV-resize cost term).
	ResizeCopies int64
}

// NewMatrix creates an empty matrix whose rows span `cols` global vertices.
func NewMatrix(cols int) *Matrix {
	stride := cols
	if stride < 1 {
		stride = 1
	}
	return &Matrix{cols: cols, stride: stride, wstride: kernel.BitsetWords(stride), index: make(map[int32]int)}
}

// Cols returns the current logical row width (number of global vertices).
func (m *Matrix) Cols() int { return m.cols }

// Len returns the number of rows (locally owned vertices).
func (m *Matrix) Len() int { return len(m.rows) }

// Rows returns the rows in slot order: Rows()[i] views arena columns
// [i*stride, i*stride+cols). The slice is owned by the matrix; callers
// must not reorder it.
func (m *Matrix) Rows() []*Row { return m.rows }

// Arena exposes the flat distance arena and the row stride. The row at
// position i occupies arena[i*stride : i*stride+Cols()]. The backing array
// is invalidated by AddRow/AdoptRow/RemoveRow/ExtendCols; callers use it
// only within one relax phase.
func (m *Matrix) Arena() ([]graph.Dist, int) { return m.d, m.stride }

// Has reports whether a row for global vertex v exists.
func (m *Matrix) Has(v int32) bool {
	_, ok := m.index[v]
	return ok
}

// Row returns the row of global vertex v, or nil if not owned here.
func (m *Matrix) Row(v int32) *Row {
	if i, ok := m.index[v]; ok {
		return m.rows[i]
	}
	return nil
}

// view re-points row i's D/NH slices at its arena slot. The capacity is
// clamped to the slot so an accidental append can never bleed into the
// next row.
func (m *Matrix) view(i int) {
	base := i * m.stride
	r := m.rows[i]
	r.D = m.d[base : base+m.cols : base+m.stride]
	r.NH = m.nh[base : base+m.cols : base+m.stride]
	wbase := i * m.wstride
	r.F = kernel.Bitset(m.fw[wbase : wbase+kernel.BitsetWords(m.cols) : wbase+m.wstride])
}

// ensureSlots grows the arena to hold at least `need` row slots, moving
// the existing rows (one contiguous copy) and re-pointing their views.
// Slot growth is row-count doubling, not the paper's column-resize term,
// so it does not count toward ResizeCopies.
func (m *Matrix) ensureSlots(need int) {
	if need*m.stride <= len(m.d) {
		return
	}
	newCap := 2 * (len(m.d) / m.stride)
	if newCap < need {
		newCap = need
	}
	if newCap < 4 {
		newCap = 4
	}
	d := make([]graph.Dist, newCap*m.stride)
	nh := make([]int32, newCap*m.stride)
	fw := make([]uint64, newCap*m.wstride)
	copy(d, m.d)
	copy(nh, m.nh)
	copy(fw, m.fw)
	m.d, m.nh, m.fw = d, nh, fw
	for i := range m.rows {
		m.view(i)
	}
}

// fillSlot initializes columns [lo, cols) of slot i to the fresh-row
// state (InfDist / unknown next hop), clearing any stale data left by a
// previously removed row.
func (m *Matrix) fillSlot(i, lo int) {
	base := i * m.stride
	for c := lo; c < m.cols; c++ {
		m.d[base+c] = graph.InfDist
		m.nh[base+c] = -1
	}
}

// fillSlotWords zeroes slot i's frontier words, clearing any stale bits
// left by a previously removed row.
func (m *Matrix) fillSlotWords(i int) {
	wbase := i * m.wstride
	fw := m.fw[wbase : wbase+m.wstride]
	for w := range fw {
		fw[w] = 0
	}
}

// AddRow inserts a fresh row for global vertex v: all InfDist except
// D[v] = 0. Panics if the row exists or v is outside the current width.
func (m *Matrix) AddRow(v int32) *Row {
	if _, ok := m.index[v]; ok {
		panic(fmt.Sprintf("dv: duplicate row for vertex %d", v))
	}
	if int(v) >= m.cols {
		panic(fmt.Sprintf("dv: vertex %d outside width %d", v, m.cols))
	}
	i := len(m.rows)
	m.ensureSlots(i + 1)
	m.fillSlot(i, 0)
	m.fillSlotWords(i)
	base := i * m.stride
	m.d[base+int(v)] = 0
	m.nh[base+int(v)] = v
	r := &Row{Owner: v, mx: m}
	m.index[v] = i
	m.rows = append(m.rows, r)
	m.view(i)
	r.MarkShipAll() // fresh content: first ship carries the whole row
	return r
}

// RemoveRow deletes the row of v (repartitioning migrates rows between
// processors; vertex deletion drops them). The removed row is detached
// onto private backing — it stays valid and mutation-isolated from the
// matrix — and the freed slot is filled by the last row so the arena stays
// dense. Returns the removed row or nil.
func (m *Matrix) RemoveRow(v int32) *Row {
	i, ok := m.index[v]
	if !ok {
		return nil
	}
	r := m.rows[i]
	d := make([]graph.Dist, m.cols)
	nh := make([]int32, m.cols)
	fw := make(kernel.Bitset, kernel.BitsetWords(m.cols))
	copy(d, r.D)
	copy(nh, r.NH)
	copy(fw, r.F)
	r.D, r.NH, r.F, r.mx = d, nh, fw, nil

	last := len(m.rows) - 1
	if i != last {
		srcBase := last * m.stride
		dstBase := i * m.stride
		copy(m.d[dstBase:dstBase+m.cols], m.d[srcBase:srcBase+m.cols])
		copy(m.nh[dstBase:dstBase+m.cols], m.nh[srcBase:srcBase+m.cols])
		wSrc := last * m.wstride
		wDst := i * m.wstride
		copy(m.fw[wDst:wDst+m.wstride], m.fw[wSrc:wSrc+m.wstride])
		m.rows[i] = m.rows[last]
		m.index[m.rows[i].Owner] = i
		m.view(i)
	}
	m.rows = m.rows[:last]
	delete(m.index, v)
	return r
}

// AdoptRow installs a detached row (migrated from another processor),
// copying its content into the next arena slot. Its width is extended to
// the matrix's width if needed. Panics if the row is still attached to a
// matrix or a row for its owner already exists.
func (m *Matrix) AdoptRow(r *Row) {
	if _, ok := m.index[r.Owner]; ok {
		panic(fmt.Sprintf("dv: duplicate adopted row for vertex %d", r.Owner))
	}
	if r.mx != nil {
		panic(fmt.Sprintf("dv: adopting row %d still attached to a matrix", r.Owner))
	}
	i := len(m.rows)
	m.ensureSlots(i + 1)
	base := i * m.stride
	n := len(r.D)
	if n > m.cols {
		n = m.cols
	}
	copy(m.d[base:base+n], r.D[:n])
	copy(m.nh[base:base+n], r.NH[:n])
	m.fillSlot(i, n)
	m.fillSlotWords(i)
	wbase := i * m.wstride
	words := kernel.BitsetWords(m.cols)
	copy(m.fw[wbase:wbase+words], r.F)
	if tail := uint(m.cols & 63); tail != 0 {
		// keep bits at/above cols zero even if the adopted row was wider
		m.fw[wbase+words-1] &= 1<<tail - 1
	}
	r.mx = m
	m.index[r.Owner] = i
	m.rows = append(m.rows, r)
	m.view(i)
}

// ExtendCols widens every row by k new columns initialized to InfDist.
// While the new width fits the arena stride the slack is filled in place
// (zero copies); otherwise the arena is re-laid with a doubled stride (the
// paper assumes vector size doubles on resize, for an O(n+k) amortized
// cost, which is tracked in ResizeCopies).
func (m *Matrix) ExtendCols(k int) {
	if k <= 0 {
		return
	}
	old := m.cols
	m.cols += k
	if m.cols <= m.stride {
		for i := range m.rows {
			m.fillSlot(i, old)
			m.view(i)
		}
		return
	}
	newStride := 2 * m.stride
	if newStride < m.cols {
		newStride = m.cols
	}
	slotCap := len(m.d) / m.stride
	if slotCap < len(m.rows) {
		slotCap = len(m.rows)
	}
	newWstride := kernel.BitsetWords(newStride)
	d := make([]graph.Dist, slotCap*newStride)
	nh := make([]int32, slotCap*newStride)
	fw := make([]uint64, slotCap*newWstride)
	for i := range m.rows {
		copy(d[i*newStride:], m.d[i*m.stride:i*m.stride+old])
		copy(nh[i*newStride:], m.nh[i*m.stride:i*m.stride+old])
		// frontier bits at/above old cols are zero, so whole words move
		copy(fw[i*newWstride:], m.fw[i*m.wstride:(i+1)*m.wstride])
		m.ResizeCopies += int64(old)
	}
	m.d, m.nh, m.fw = d, nh, fw
	m.stride, m.wstride = newStride, newWstride
	for i := range m.rows {
		m.fillSlot(i, old)
		m.view(i)
	}
}

// DirtyRows returns the rows currently marked dirty, in slot order.
func (m *Matrix) DirtyRows() []*Row {
	var out []*Row
	for _, r := range m.rows {
		if r.Dirty {
			out = append(out, r)
		}
	}
	return out
}

// ClearDirty resets all dirty marks and pending windows (after shipping).
func (m *Matrix) ClearDirty() {
	for _, r := range m.rows {
		r.ClearDirty()
	}
}

// ClearFrontiers resets every attached row's dirty frontier in one arena
// sweep. Called at a clean global convergence — the fixpoint that
// re-anchors the masked kernels' skip rule.
func (m *Matrix) ClearFrontiers() {
	for w := range m.fw {
		m.fw[w] = 0
	}
	for _, r := range m.rows {
		r.FAll = false
	}
}

// FrontierStats scans the frontier arena and returns the number of nonzero
// frontier words and total set bits across all rows; FAll rows count as
// fully set. Feeds the per-step FrontierWords/FrontierDensity telemetry.
func (m *Matrix) FrontierStats() (words int, bits int64) {
	for _, r := range m.rows {
		if r.FAll {
			words += len(r.F)
			bits += int64(m.cols)
			continue
		}
		words += r.F.NonzeroWords()
		bits += int64(r.F.OnesCount())
	}
	return words, bits
}

// RowBytes returns the accounted wire size of one full row of the current
// width: 4 bytes per distance plus an 8-byte header (owner + length).
// Next hops are processor-local routing state and are never shipped, so
// they do not contribute.
func (m *Matrix) RowBytes() int { return 4*m.cols + 8 }

// CopyRow returns a deep copy of row r's shippable content — distances
// only. Next hops are processor-local routing state and the dirty/pending
// marks are the sender's bookkeeping, so neither travels with a snapshot.
func CopyRow(r *Row) *Row {
	return &Row{Owner: r.Owner, D: append([]graph.Dist(nil), r.D...)}
}

// Delta is the wire form of one boundary-row update: the columns
// [Lo, Lo+len(D)) of Owner's distance vector that changed since the row
// was last shipped. Like CopyRow snapshots, deltas carry distances only.
// A full-row ship is simply a delta with Lo == 0 spanning the whole row.
//
// F, when non-nil, is a snapshot of the sender row's change frontier over
// the window: bit t set means column Lo+t changed since the last clean
// global convergence. Lo is always 64-aligned when F travels, so F is a
// verbatim word-slice of the sender's frontier and bit positions line up
// with window offsets. Receivers whose own distance to Owner is likewise
// unchanged may soundly restrict their relax sweep to the set bits (see
// internal/kernel/masked.go); F == nil means the change extent is unknown
// (ship-all rows, masking disabled) and forces a full-window sweep.
type Delta struct {
	Owner int32
	Lo    int32
	D     []graph.Dist
	F     kernel.Bitset
}

// WireBytes is the accounted on-wire size of the delta: 4 bytes per
// distance, 8 per frontier word, plus a 16-byte header (owner, lo,
// distance count, frontier word count).
func (d *Delta) WireBytes() int { return 4*len(d.D) + 8*len(d.F) + 16 }

// frontierWindow snapshots the row's frontier words covering columns
// [lo, hi), or nil when the change extent is unknown. lo must be
// 64-aligned so the word slice's bit positions line up with window
// offsets. The words are copied: in-process exchange hands the Delta to
// receivers that read it while the sender's frontier keeps accumulating.
func (r *Row) frontierWindow(lo, hi int) kernel.Bitset {
	if r.FAll || len(r.F) == 0 {
		return nil
	}
	wlo, whi := lo>>6, (hi+63)>>6
	if whi > len(r.F) {
		whi = len(r.F)
	}
	if wlo >= whi {
		return nil
	}
	return append(kernel.Bitset(nil), r.F[wlo:whi]...)
}

// ShipDelta snapshots the row's pending-change window as a Delta. Rows
// whose change extent is unknown (MarkShipAll) — and, defensively, dirty
// rows with an empty window — snapshot the full row. The window start is
// rounded down to a 64-column boundary (at most 63 extra unchanged
// columns) so the attached frontier words slice straight out of the row's
// bitmask. The pending window is not cleared here; the caller does that
// via ClearPending once the delta is actually sent.
func (r *Row) ShipDelta() *Delta {
	if r.pendAll || r.pendLo >= r.pendHi {
		return r.FullDelta()
	}
	lo, hi := int(r.pendLo), int(r.pendHi)
	if hi > len(r.D) {
		hi = len(r.D) // defensive: widths only grow, but never read past the row
	}
	lo &^= 63
	return &Delta{Owner: r.Owner, Lo: int32(lo), D: append([]graph.Dist(nil), r.D[lo:hi]...), F: r.frontierWindow(lo, hi)}
}

// FullDelta snapshots the entire row as a Delta (fresh or migrated rows,
// and the ship-all-boundary ablation).
func (r *Row) FullDelta() *Delta {
	return &Delta{Owner: r.Owner, D: append([]graph.Dist(nil), r.D...), F: r.frontierWindow(0, len(r.D))}
}
