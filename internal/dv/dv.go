// Package dv implements the distance-vector (DV) state each processor
// maintains in the anytime-anywhere engine: one row per locally owned
// vertex holding current shortest-distance upper bounds to every vertex of
// the (growing) graph. Rows support the paper's amortized-doubling column
// extension for dynamic vertex additions and dirty tracking so that only
// *updated* boundary DVs are shipped during recombination.
package dv

import (
	"fmt"

	"anytime/internal/graph"
)

// Row is the distance vector of one vertex: D[t] is the best known
// distance from the row's owner to global vertex t (InfDist = none known).
// NH[t] is the distance-vector-routing next hop: the neighbor of Owner on
// the path realizing D[t] (-1 = unknown; NH[Owner] = Owner). Next hops
// enable shortest-path reconstruction across processors once the engine
// has converged.
type Row struct {
	Owner int32
	D     []graph.Dist
	NH    []int32
	// Dirty marks the row as changed since it was last shipped to
	// neighboring processors.
	Dirty bool

	// pendLo/pendHi delimit the half-open window of columns changed since
	// the row was last shipped; pendAll forces a full-row ship when the
	// extent of the pending changes is unknown (fresh, migrated, restored,
	// or topology-disturbed rows). Maintained by MarkChanged/MarkShipAll,
	// consumed by ShipDelta, reset by ClearPending.
	pendLo, pendHi int32
	pendAll        bool
}

// Relax lowers D[t] to d if d is an improvement, marking the row dirty.
// The next hop for t becomes unknown. Reports whether an update happened.
func (r *Row) Relax(t int32, d graph.Dist) bool {
	return r.RelaxVia(t, d, -1)
}

// RelaxVia lowers D[t] to d if d is an improvement, recording nh as the
// next hop toward t. Reports whether an update happened.
func (r *Row) RelaxVia(t int32, d graph.Dist, nh int32) bool {
	if d < r.D[t] {
		r.D[t] = d
		r.NH[t] = nh
		r.MarkChanged(int(t), int(t)+1)
		return true
	}
	return false
}

// MarkChanged records that columns [lo, hi) changed since the last ship,
// marking the row dirty and widening the pending delta window.
func (r *Row) MarkChanged(lo, hi int) {
	if lo >= hi {
		return
	}
	r.Dirty = true
	if r.pendLo >= r.pendHi {
		r.pendLo, r.pendHi = int32(lo), int32(hi)
		return
	}
	if int32(lo) < r.pendLo {
		r.pendLo = int32(lo)
	}
	if int32(hi) > r.pendHi {
		r.pendHi = int32(hi)
	}
}

// MarkShipAll marks the row dirty with unknown change extent, forcing the
// next ship to carry the full row. Used for rows whose receivers may never
// have seen any version of them: fresh rows, migrated rows, rows disturbed
// by topology changes, and rows restored from a pre-delta checkpoint.
func (r *Row) MarkShipAll() {
	r.Dirty = true
	r.pendAll = true
}

// ClearPending resets the pending delta window after the row's snapshot
// has been shipped. The dirty mark clears separately — at the end of the
// relax phase, unless the row changed again.
func (r *Row) ClearPending() {
	r.pendLo, r.pendHi = 0, 0
	r.pendAll = false
}

// ClearDirty clears the dirty mark together with the pending window (the
// row's content is fully propagated).
func (r *Row) ClearDirty() {
	r.Dirty = false
	r.ClearPending()
}

// PendingState exposes the raw pending-window fields for checkpointing.
func (r *Row) PendingState() (all bool, lo, hi int32) {
	return r.pendAll, r.pendLo, r.pendHi
}

// SetPendingState restores the raw pending-window fields from a
// checkpoint.
func (r *Row) SetPendingState(all bool, lo, hi int32) {
	r.pendAll, r.pendLo, r.pendHi = all, lo, hi
}

// Table is the per-processor DV store.
type Table struct {
	cols  int
	rows  []*Row
	index map[int32]int // global vertex ID -> position in rows
	// ResizeCopies counts element copies performed by column-extension
	// reallocations (the paper's O(n+k) amortized DV-resize cost term).
	ResizeCopies int64
}

// NewTable creates an empty table whose rows span `cols` global vertices.
func NewTable(cols int) *Table {
	return &Table{cols: cols, index: make(map[int32]int)}
}

// Cols returns the current logical row width (number of global vertices).
func (t *Table) Cols() int { return t.cols }

// Len returns the number of rows (locally owned vertices).
func (t *Table) Len() int { return len(t.rows) }

// Rows returns the rows in insertion order. The slice is owned by the
// table; callers must not reorder it.
func (t *Table) Rows() []*Row { return t.rows }

// Has reports whether a row for global vertex v exists.
func (t *Table) Has(v int32) bool {
	_, ok := t.index[v]
	return ok
}

// Row returns the row of global vertex v, or nil if not owned here.
func (t *Table) Row(v int32) *Row {
	if i, ok := t.index[v]; ok {
		return t.rows[i]
	}
	return nil
}

// AddRow inserts a fresh row for global vertex v: all InfDist except
// D[v] = 0. Panics if the row exists or v is outside the current width.
func (t *Table) AddRow(v int32) *Row {
	if _, ok := t.index[v]; ok {
		panic(fmt.Sprintf("dv: duplicate row for vertex %d", v))
	}
	if int(v) >= t.cols {
		panic(fmt.Sprintf("dv: vertex %d outside width %d", v, t.cols))
	}
	d := make([]graph.Dist, t.cols)
	nh := make([]int32, t.cols)
	for i := range d {
		d[i] = graph.InfDist
		nh[i] = -1
	}
	d[v] = 0
	nh[v] = v
	r := &Row{Owner: v, D: d, NH: nh}
	r.MarkShipAll() // fresh content: first ship carries the whole row
	t.index[v] = len(t.rows)
	t.rows = append(t.rows, r)
	return r
}

// RemoveRow deletes the row of v (repartitioning migrates rows between
// processors; vertex deletion drops them). Returns the removed row or nil.
func (t *Table) RemoveRow(v int32) *Row {
	i, ok := t.index[v]
	if !ok {
		return nil
	}
	r := t.rows[i]
	last := len(t.rows) - 1
	t.rows[i] = t.rows[last]
	t.index[t.rows[i].Owner] = i
	t.rows = t.rows[:last]
	delete(t.index, v)
	return r
}

// AdoptRow installs an existing row (migrated from another processor). Its
// width is extended to the table's width if needed.
func (t *Table) AdoptRow(r *Row) {
	if _, ok := t.index[r.Owner]; ok {
		panic(fmt.Sprintf("dv: duplicate adopted row for vertex %d", r.Owner))
	}
	if len(r.D) < t.cols {
		k := t.cols - len(r.D)
		r.D = t.extendSlice(r.D, k)
		r.NH = extendHops(r.NH, k)
	}
	t.index[r.Owner] = len(t.rows)
	t.rows = append(t.rows, r)
}

// ExtendCols widens every row by k new columns initialized to InfDist,
// using append's amortized doubling (the paper assumes vector size doubles
// on resize, for an O(n+k) amortized cost, which is tracked in
// ResizeCopies).
func (t *Table) ExtendCols(k int) {
	if k <= 0 {
		return
	}
	t.cols += k
	for _, r := range t.rows {
		r.D = t.extendSlice(r.D, k)
		r.NH = extendHops(r.NH, k)
	}
}

func extendHops(nh []int32, k int) []int32 {
	for i := 0; i < k; i++ {
		nh = append(nh, -1)
	}
	return nh
}

func (t *Table) extendSlice(d []graph.Dist, k int) []graph.Dist {
	oldCap := cap(d)
	for i := 0; i < k; i++ {
		d = append(d, graph.InfDist)
	}
	if cap(d) != oldCap {
		t.ResizeCopies += int64(len(d) - k)
	}
	return d
}

// DirtyRows returns the rows currently marked dirty, in insertion order.
func (t *Table) DirtyRows() []*Row {
	var out []*Row
	for _, r := range t.rows {
		if r.Dirty {
			out = append(out, r)
		}
	}
	return out
}

// ClearDirty resets all dirty marks and pending windows (after shipping).
func (t *Table) ClearDirty() {
	for _, r := range t.rows {
		r.ClearDirty()
	}
}

// RowBytes returns the accounted wire size of one full row of the current
// width: 4 bytes per distance plus an 8-byte header (owner + length).
// Next hops are processor-local routing state and are never shipped, so
// they do not contribute.
func (t *Table) RowBytes() int { return 4*t.cols + 8 }

// CopyRow returns a deep copy of row r's shippable content — distances
// only. Next hops are processor-local routing state and the dirty/pending
// marks are the sender's bookkeeping, so neither travels with a snapshot.
func CopyRow(r *Row) *Row {
	return &Row{Owner: r.Owner, D: append([]graph.Dist(nil), r.D...)}
}

// Delta is the wire form of one boundary-row update: the columns
// [Lo, Lo+len(D)) of Owner's distance vector that changed since the row
// was last shipped. Like CopyRow snapshots, deltas carry distances only.
// A full-row ship is simply a delta with Lo == 0 spanning the whole row.
type Delta struct {
	Owner int32
	Lo    int32
	D     []graph.Dist
}

// WireBytes is the accounted on-wire size of the delta: 4 bytes per
// distance plus a 12-byte header (owner, lo, length).
func (d *Delta) WireBytes() int { return 4*len(d.D) + 12 }

// ShipDelta snapshots the row's pending-change window as a Delta. Rows
// whose change extent is unknown (MarkShipAll) — and, defensively, dirty
// rows with an empty window — snapshot the full row. The pending window is
// not cleared here; the caller does that via ClearPending once the delta
// is actually sent.
func (r *Row) ShipDelta() *Delta {
	if r.pendAll || r.pendLo >= r.pendHi {
		return r.FullDelta()
	}
	lo, hi := int(r.pendLo), int(r.pendHi)
	if hi > len(r.D) {
		hi = len(r.D) // defensive: widths only grow, but never read past the row
	}
	return &Delta{Owner: r.Owner, Lo: int32(lo), D: append([]graph.Dist(nil), r.D[lo:hi]...)}
}

// FullDelta snapshots the entire row as a Delta (fresh or migrated rows,
// and the ship-all-boundary ablation).
func (r *Row) FullDelta() *Delta {
	return &Delta{Owner: r.Owner, D: append([]graph.Dist(nil), r.D...)}
}
