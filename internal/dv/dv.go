// Package dv implements the distance-vector (DV) state each processor
// maintains in the anytime-anywhere engine: one row per locally owned
// vertex holding current shortest-distance upper bounds to every vertex of
// the (growing) graph. Rows are views into one flat row-major arena per
// processor, so the recombination refine phase streams over contiguous
// memory; the paper's amortized-doubling column extension for dynamic
// vertex additions is preserved as amortized-doubling of the arena stride.
// Dirty tracking ensures only *updated* boundary DVs are shipped during
// recombination.
package dv

import (
	"fmt"

	"anytime/internal/graph"
)

// Row is the distance vector of one vertex: D[t] is the best known
// distance from the row's owner to global vertex t (InfDist = none known).
// NH[t] is the distance-vector-routing next hop: the neighbor of Owner on
// the path realizing D[t] (-1 = unknown; NH[Owner] = Owner). Next hops
// enable shortest-path reconstruction across processors once the engine
// has converged.
//
// While a row is attached to a Matrix, D and NH alias the matrix arena;
// RemoveRow detaches them onto private backing so migrated rows stay valid
// after the slot is reused.
type Row struct {
	Owner int32
	D     []graph.Dist
	NH    []int32
	// Dirty marks the row as changed since it was last shipped to
	// neighboring processors.
	Dirty bool

	// pendLo/pendHi delimit the half-open window of columns changed since
	// the row was last shipped; pendAll forces a full-row ship when the
	// extent of the pending changes is unknown (fresh, migrated, restored,
	// or topology-disturbed rows). Maintained by MarkChanged/MarkShipAll,
	// consumed by ShipDelta, reset by ClearPending.
	pendLo, pendHi int32
	pendAll        bool

	mx *Matrix // non-nil while D/NH alias mx's arena
}

// Relax lowers D[t] to d if d is an improvement, marking the row dirty.
// The next hop for t becomes unknown. Reports whether an update happened.
func (r *Row) Relax(t int32, d graph.Dist) bool {
	return r.RelaxVia(t, d, -1)
}

// RelaxVia lowers D[t] to d if d is an improvement, recording nh as the
// next hop toward t. Reports whether an update happened.
func (r *Row) RelaxVia(t int32, d graph.Dist, nh int32) bool {
	if d < r.D[t] {
		r.D[t] = d
		r.NH[t] = nh
		r.MarkChanged(int(t), int(t)+1)
		return true
	}
	return false
}

// MarkChanged records that columns [lo, hi) changed since the last ship,
// marking the row dirty and widening the pending delta window.
func (r *Row) MarkChanged(lo, hi int) {
	if lo >= hi {
		return
	}
	r.Dirty = true
	if r.pendLo >= r.pendHi {
		r.pendLo, r.pendHi = int32(lo), int32(hi)
		return
	}
	if int32(lo) < r.pendLo {
		r.pendLo = int32(lo)
	}
	if int32(hi) > r.pendHi {
		r.pendHi = int32(hi)
	}
}

// MarkShipAll marks the row dirty with unknown change extent, forcing the
// next ship to carry the full row. Used for rows whose receivers may never
// have seen any version of them: fresh rows, migrated rows, rows disturbed
// by topology changes, and rows restored from a pre-delta checkpoint.
func (r *Row) MarkShipAll() {
	r.Dirty = true
	r.pendAll = true
}

// ClearPending resets the pending delta window after the row's snapshot
// has been shipped. The dirty mark clears separately — at the end of the
// relax phase, unless the row changed again.
func (r *Row) ClearPending() {
	r.pendLo, r.pendHi = 0, 0
	r.pendAll = false
}

// ClearDirty clears the dirty mark together with the pending window (the
// row's content is fully propagated).
func (r *Row) ClearDirty() {
	r.Dirty = false
	r.ClearPending()
}

// PendingState exposes the raw pending-window fields for checkpointing.
func (r *Row) PendingState() (all bool, lo, hi int32) {
	return r.pendAll, r.pendLo, r.pendHi
}

// SetPendingState restores the raw pending-window fields from a
// checkpoint.
func (r *Row) SetPendingState(all bool, lo, hi int32) {
	r.pendAll, r.pendLo, r.pendHi = all, lo, hi
}

// Matrix is the per-processor DV store. All rows share one flat row-major
// arena: the row at position i views d[i*stride : i*stride+cols] (and nh
// likewise), so consecutive rows are contiguous in memory and the refine
// phase can stream pivot tiles straight out of the arena (see
// internal/kernel.MinPlusTile). stride (>= cols) is the allocated column
// capacity per row slot: column extension first fills the slack
// [cols, stride) in place and re-lays the arena with a doubled stride only
// when the slack runs out — the paper's amortized-doubling O(n+k) resize,
// with element copies tracked in ResizeCopies.
type Matrix struct {
	cols   int
	stride int
	d      []graph.Dist // len == slot capacity * stride
	nh     []int32
	rows   []*Row
	index  map[int32]int // global vertex ID -> position in rows
	// ResizeCopies counts element copies performed by column-extension
	// reallocations (the paper's O(n+k) amortized DV-resize cost term).
	ResizeCopies int64
}

// NewMatrix creates an empty matrix whose rows span `cols` global vertices.
func NewMatrix(cols int) *Matrix {
	stride := cols
	if stride < 1 {
		stride = 1
	}
	return &Matrix{cols: cols, stride: stride, index: make(map[int32]int)}
}

// Cols returns the current logical row width (number of global vertices).
func (m *Matrix) Cols() int { return m.cols }

// Len returns the number of rows (locally owned vertices).
func (m *Matrix) Len() int { return len(m.rows) }

// Rows returns the rows in slot order: Rows()[i] views arena columns
// [i*stride, i*stride+cols). The slice is owned by the matrix; callers
// must not reorder it.
func (m *Matrix) Rows() []*Row { return m.rows }

// Arena exposes the flat distance arena and the row stride. The row at
// position i occupies arena[i*stride : i*stride+Cols()]. The backing array
// is invalidated by AddRow/AdoptRow/RemoveRow/ExtendCols; callers use it
// only within one relax phase.
func (m *Matrix) Arena() ([]graph.Dist, int) { return m.d, m.stride }

// Has reports whether a row for global vertex v exists.
func (m *Matrix) Has(v int32) bool {
	_, ok := m.index[v]
	return ok
}

// Row returns the row of global vertex v, or nil if not owned here.
func (m *Matrix) Row(v int32) *Row {
	if i, ok := m.index[v]; ok {
		return m.rows[i]
	}
	return nil
}

// view re-points row i's D/NH slices at its arena slot. The capacity is
// clamped to the slot so an accidental append can never bleed into the
// next row.
func (m *Matrix) view(i int) {
	base := i * m.stride
	r := m.rows[i]
	r.D = m.d[base : base+m.cols : base+m.stride]
	r.NH = m.nh[base : base+m.cols : base+m.stride]
}

// ensureSlots grows the arena to hold at least `need` row slots, moving
// the existing rows (one contiguous copy) and re-pointing their views.
// Slot growth is row-count doubling, not the paper's column-resize term,
// so it does not count toward ResizeCopies.
func (m *Matrix) ensureSlots(need int) {
	if need*m.stride <= len(m.d) {
		return
	}
	newCap := 2 * (len(m.d) / m.stride)
	if newCap < need {
		newCap = need
	}
	if newCap < 4 {
		newCap = 4
	}
	d := make([]graph.Dist, newCap*m.stride)
	nh := make([]int32, newCap*m.stride)
	copy(d, m.d)
	copy(nh, m.nh)
	m.d, m.nh = d, nh
	for i := range m.rows {
		m.view(i)
	}
}

// fillSlot initializes columns [lo, cols) of slot i to the fresh-row
// state (InfDist / unknown next hop), clearing any stale data left by a
// previously removed row.
func (m *Matrix) fillSlot(i, lo int) {
	base := i * m.stride
	for c := lo; c < m.cols; c++ {
		m.d[base+c] = graph.InfDist
		m.nh[base+c] = -1
	}
}

// AddRow inserts a fresh row for global vertex v: all InfDist except
// D[v] = 0. Panics if the row exists or v is outside the current width.
func (m *Matrix) AddRow(v int32) *Row {
	if _, ok := m.index[v]; ok {
		panic(fmt.Sprintf("dv: duplicate row for vertex %d", v))
	}
	if int(v) >= m.cols {
		panic(fmt.Sprintf("dv: vertex %d outside width %d", v, m.cols))
	}
	i := len(m.rows)
	m.ensureSlots(i + 1)
	m.fillSlot(i, 0)
	base := i * m.stride
	m.d[base+int(v)] = 0
	m.nh[base+int(v)] = v
	r := &Row{Owner: v, mx: m}
	m.index[v] = i
	m.rows = append(m.rows, r)
	m.view(i)
	r.MarkShipAll() // fresh content: first ship carries the whole row
	return r
}

// RemoveRow deletes the row of v (repartitioning migrates rows between
// processors; vertex deletion drops them). The removed row is detached
// onto private backing — it stays valid and mutation-isolated from the
// matrix — and the freed slot is filled by the last row so the arena stays
// dense. Returns the removed row or nil.
func (m *Matrix) RemoveRow(v int32) *Row {
	i, ok := m.index[v]
	if !ok {
		return nil
	}
	r := m.rows[i]
	d := make([]graph.Dist, m.cols)
	nh := make([]int32, m.cols)
	copy(d, r.D)
	copy(nh, r.NH)
	r.D, r.NH, r.mx = d, nh, nil

	last := len(m.rows) - 1
	if i != last {
		srcBase := last * m.stride
		dstBase := i * m.stride
		copy(m.d[dstBase:dstBase+m.cols], m.d[srcBase:srcBase+m.cols])
		copy(m.nh[dstBase:dstBase+m.cols], m.nh[srcBase:srcBase+m.cols])
		m.rows[i] = m.rows[last]
		m.index[m.rows[i].Owner] = i
		m.view(i)
	}
	m.rows = m.rows[:last]
	delete(m.index, v)
	return r
}

// AdoptRow installs a detached row (migrated from another processor),
// copying its content into the next arena slot. Its width is extended to
// the matrix's width if needed. Panics if the row is still attached to a
// matrix or a row for its owner already exists.
func (m *Matrix) AdoptRow(r *Row) {
	if _, ok := m.index[r.Owner]; ok {
		panic(fmt.Sprintf("dv: duplicate adopted row for vertex %d", r.Owner))
	}
	if r.mx != nil {
		panic(fmt.Sprintf("dv: adopting row %d still attached to a matrix", r.Owner))
	}
	i := len(m.rows)
	m.ensureSlots(i + 1)
	base := i * m.stride
	n := len(r.D)
	if n > m.cols {
		n = m.cols
	}
	copy(m.d[base:base+n], r.D[:n])
	copy(m.nh[base:base+n], r.NH[:n])
	m.fillSlot(i, n)
	r.mx = m
	m.index[r.Owner] = i
	m.rows = append(m.rows, r)
	m.view(i)
}

// ExtendCols widens every row by k new columns initialized to InfDist.
// While the new width fits the arena stride the slack is filled in place
// (zero copies); otherwise the arena is re-laid with a doubled stride (the
// paper assumes vector size doubles on resize, for an O(n+k) amortized
// cost, which is tracked in ResizeCopies).
func (m *Matrix) ExtendCols(k int) {
	if k <= 0 {
		return
	}
	old := m.cols
	m.cols += k
	if m.cols <= m.stride {
		for i := range m.rows {
			m.fillSlot(i, old)
			m.view(i)
		}
		return
	}
	newStride := 2 * m.stride
	if newStride < m.cols {
		newStride = m.cols
	}
	slotCap := len(m.d) / m.stride
	if slotCap < len(m.rows) {
		slotCap = len(m.rows)
	}
	d := make([]graph.Dist, slotCap*newStride)
	nh := make([]int32, slotCap*newStride)
	for i := range m.rows {
		copy(d[i*newStride:], m.d[i*m.stride:i*m.stride+old])
		copy(nh[i*newStride:], m.nh[i*m.stride:i*m.stride+old])
		m.ResizeCopies += int64(old)
	}
	m.d, m.nh, m.stride = d, nh, newStride
	for i := range m.rows {
		m.fillSlot(i, old)
		m.view(i)
	}
}

// DirtyRows returns the rows currently marked dirty, in slot order.
func (m *Matrix) DirtyRows() []*Row {
	var out []*Row
	for _, r := range m.rows {
		if r.Dirty {
			out = append(out, r)
		}
	}
	return out
}

// ClearDirty resets all dirty marks and pending windows (after shipping).
func (m *Matrix) ClearDirty() {
	for _, r := range m.rows {
		r.ClearDirty()
	}
}

// RowBytes returns the accounted wire size of one full row of the current
// width: 4 bytes per distance plus an 8-byte header (owner + length).
// Next hops are processor-local routing state and are never shipped, so
// they do not contribute.
func (m *Matrix) RowBytes() int { return 4*m.cols + 8 }

// CopyRow returns a deep copy of row r's shippable content — distances
// only. Next hops are processor-local routing state and the dirty/pending
// marks are the sender's bookkeeping, so neither travels with a snapshot.
func CopyRow(r *Row) *Row {
	return &Row{Owner: r.Owner, D: append([]graph.Dist(nil), r.D...)}
}

// Delta is the wire form of one boundary-row update: the columns
// [Lo, Lo+len(D)) of Owner's distance vector that changed since the row
// was last shipped. Like CopyRow snapshots, deltas carry distances only.
// A full-row ship is simply a delta with Lo == 0 spanning the whole row.
type Delta struct {
	Owner int32
	Lo    int32
	D     []graph.Dist
}

// WireBytes is the accounted on-wire size of the delta: 4 bytes per
// distance plus a 12-byte header (owner, lo, length).
func (d *Delta) WireBytes() int { return 4*len(d.D) + 12 }

// ShipDelta snapshots the row's pending-change window as a Delta. Rows
// whose change extent is unknown (MarkShipAll) — and, defensively, dirty
// rows with an empty window — snapshot the full row. The pending window is
// not cleared here; the caller does that via ClearPending once the delta
// is actually sent.
func (r *Row) ShipDelta() *Delta {
	if r.pendAll || r.pendLo >= r.pendHi {
		return r.FullDelta()
	}
	lo, hi := int(r.pendLo), int(r.pendHi)
	if hi > len(r.D) {
		hi = len(r.D) // defensive: widths only grow, but never read past the row
	}
	return &Delta{Owner: r.Owner, Lo: int32(lo), D: append([]graph.Dist(nil), r.D[lo:hi]...)}
}

// FullDelta snapshots the entire row as a Delta (fresh or migrated rows,
// and the ship-all-boundary ablation).
func (r *Row) FullDelta() *Delta {
	return &Delta{Owner: r.Owner, D: append([]graph.Dist(nil), r.D...)}
}
