package dv

import (
	"testing"

	"anytime/internal/kernel"
)

func TestFrontierRelaxViaRecordsBits(t *testing.T) {
	m := NewMatrix(10)
	r := m.AddRow(3)
	if !r.FAll {
		t.Fatal("fresh row must have FAll (unknown change extent)")
	}
	r.ClearFrontier()
	if r.FAll || r.F.Any() {
		t.Fatal("ClearFrontier left state behind")
	}
	if !r.RelaxVia(7, 5, 2) {
		t.Fatal("relax should improve")
	}
	if !r.F.Get(7) || r.F.OnesCount() != 1 {
		t.Fatalf("frontier bits wrong: %v", r.F)
	}
	// Non-improving relax records nothing.
	if r.RelaxVia(7, 9, 2) || r.F.OnesCount() != 1 {
		t.Fatal("non-improving relax touched the frontier")
	}
	r.MarkShipAll()
	if !r.FAll {
		t.Fatal("MarkShipAll must set FAll")
	}
	// ClearDirty (end of relax phase) must NOT clear the frontier — it
	// resets only at global convergence.
	r.ClearDirty()
	if !r.FAll || !r.F.Get(7) {
		t.Fatal("ClearDirty cleared the frontier")
	}
}

func TestFrontierSurvivesArenaMoves(t *testing.T) {
	m := NewMatrix(70) // >1 word per row
	for v := int32(0); v < 5; v++ {
		m.AddRow(v)
	}
	for _, r := range m.Rows() {
		r.ClearFrontier()
	}
	m.Row(2).RelaxVia(65, 9, 1)
	m.Row(4).RelaxVia(3, 9, 1)

	// RemoveRow detaches frontier onto private backing and the slot-swap
	// must carry the last row's words along.
	r2 := m.RemoveRow(2)
	if !r2.F.Get(65) || r2.F.OnesCount() != 1 {
		t.Fatalf("detached frontier lost bit 65: %v", r2.F)
	}
	if got := m.Row(4).F; !got.Get(3) || got.OnesCount() != 1 {
		t.Fatalf("slot-swapped row 4 frontier wrong: %v", got)
	}
	// Mutating the matrix after detach must not alias the removed row.
	m.Row(4).RelaxVia(60, 1, 1)
	if r2.F.Get(60) {
		t.Fatal("detached frontier aliases the arena")
	}

	// AdoptRow copies the private frontier back into the new arena.
	m2 := NewMatrix(70)
	m2.AddRow(10)
	m2.AdoptRow(r2)
	if got := m2.Row(2).F; !got.Get(65) || got.OnesCount() != 1 {
		t.Fatalf("adopted frontier wrong: %v", got)
	}
	if &m2.Row(2).F[0] != &m2.fw[1*m2.wstride] {
		t.Fatal("adopted frontier does not view the arena")
	}
}

func TestFrontierExtendCols(t *testing.T) {
	// In place: cols grows within the stride; new bits must read as zero.
	m := NewMatrix(100)
	r := m.AddRow(0)
	r.ClearFrontier()
	r.RelaxVia(99, 5, 0)
	m.ExtendCols(0) // no-op
	if !r.F.Get(99) {
		t.Fatal("no-op extend lost a bit")
	}

	// Relayout: force a stride doubling and check bits survive while new
	// columns stay clear.
	m.ExtendCols(60)
	r = m.Row(0)
	if !r.F.Get(99) || r.F.OnesCount() != 1 {
		t.Fatalf("relayout lost frontier bits: count=%d", r.F.OnesCount())
	}
	if len(r.F) != kernel.BitsetWords(160) {
		t.Fatalf("frontier view len %d, want %d", len(r.F), kernel.BitsetWords(160))
	}
	for c := 100; c < 160; c++ {
		if r.F.Get(c) {
			t.Fatalf("new column %d marked changed", c)
		}
	}
	r.RelaxVia(159, 2, 0)
	if !r.F.Get(159) {
		t.Fatal("cannot set bit in extended region")
	}
	if r.D[159] != 2 {
		t.Fatal("extended column distance wrong")
	}
}

func TestFrontierSlotReuseIsClean(t *testing.T) {
	m := NewMatrix(64)
	a := m.AddRow(1)
	a.ClearFrontier()
	a.RelaxVia(10, 3, 1)
	m.RemoveRow(1)
	// The freed slot is reused by the next AddRow; stale bits must not leak.
	b := m.AddRow(2)
	b.ClearFrontier()
	if b.F.Any() {
		t.Fatalf("reused slot leaked stale frontier bits: %v", b.F)
	}
}

func TestFrontierStats(t *testing.T) {
	m := NewMatrix(130)
	for v := int32(0); v < 3; v++ {
		m.AddRow(v)
	}
	// All rows fresh => FAll: full density.
	words, bits := m.FrontierStats()
	if bits != 3*130 || words != 3*kernel.BitsetWords(130) {
		t.Fatalf("FAll stats: words=%d bits=%d", words, bits)
	}
	m.ClearFrontiers()
	if words, bits = m.FrontierStats(); words != 0 || bits != 0 {
		t.Fatalf("cleared stats: words=%d bits=%d", words, bits)
	}
	m.Row(1).RelaxVia(5, 1, 0)
	m.Row(1).RelaxVia(128, 1, 0)
	if words, bits = m.FrontierStats(); words != 2 || bits != 2 {
		t.Fatalf("sparse stats: words=%d bits=%d", words, bits)
	}
}
