package transport

// The step-ID plane: cross-rank observability needs to know how far each
// peer has progressed through recombination without adding traffic. Both
// backends piggyback the reporter on machinery they already have — the TCP
// mesh stamps the sender's current RC step into the (previously unused)
// Seq field of every heartbeat frame, and the in-process hub keeps a
// shared step table — so a rank's metrics endpoint can export its peers'
// step positions (aa_rank_peer_step) and the cluster aggregator can
// compute step skew across real processes. Step IDs are observational
// only: nothing in the BSP collectives or the liveness protocol reads
// them.

// StepReporter is the optional step-observability surface of a Transport
// backend, discovered by type assertion like Liveness.
type StepReporter interface {
	// MarkStep records this rank's current RC step; the backend gossips it
	// to peers on its own schedule (TCP: the next heartbeat round).
	MarkStep(step int64)
	// PeerStep returns the most recent step heard from rank q (own step
	// for q == Rank(); 0 before anything was heard).
	PeerStep(q int) int64
}

// AsStepReporter discovers the step surface of a transport, unwrapping the
// fault layer like AsLiveness.
func AsStepReporter(t Transport) (StepReporter, bool) {
	for {
		if sr, ok := t.(StepReporter); ok {
			return sr, true
		}
		if l, ok := t.(*Lossy); ok {
			t = l.inner
			continue
		}
		return nil, false
	}
}
