package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The TCP backend moves length-prefixed binary frames. Layout (all
// little-endian):
//
//	offset  size  field
//	0       2     magic 0xAA7A
//	2       1     protocol version (1)
//	3       1     tag
//	4       1     payload kind (0 = raw bytes, 1 = dv.Delta list)
//	5       2     from rank (uint16)
//	7       2     to rank (uint16)
//	9       4     sequence number within the sender's current exchange
//	13      4     payload length n
//	17      n     payload
//	17+n    4     CRC32-IEEE over bytes [2, 17+n)
//
// The CRC trailer guards everything after the magic, so a bit flip
// anywhere in the header or payload is detected; the length prefix keeps
// the stream in sync, so a corrupt frame is rejected and skipped without
// tearing the connection.

const (
	frameMagic   = 0xAA7A
	frameVersion = 1
	headerLen    = 17
	trailerLen   = 4

	// payloadRaw marks an opaque []byte payload; payloadDeltas marks a
	// dv.Delta list encoded by appendDeltas; payloadEvents marks a
	// change.Event list encoded by appendEvents (the dynamic-graph event
	// stream shipped from rank 0 to every peer).
	payloadRaw    = 0
	payloadDeltas = 1
	payloadEvents = 2

	// DefaultMaxFrameBytes bounds one frame's payload; larger messages are
	// a protocol error (the engine's MaxMsgBytes chunking keeps payloads
	// far below this).
	DefaultMaxFrameBytes = 16 << 20
)

// Frame is one decoded wire frame.
type frame struct {
	Tag      Tag
	Kind     uint8
	From, To int
	Seq      uint32
	Body     []byte
}

// ErrCorruptFrame reports a frame whose CRC32 trailer does not match its
// contents: the frame is rejected and the stream continues at the next
// frame boundary.
var ErrCorruptFrame = errors.New("transport: frame CRC mismatch")

// ErrFrameTooLarge reports a frame whose payload exceeds the configured
// bound — treated as a protocol error (the stream cannot be trusted).
var ErrFrameTooLarge = errors.New("transport: frame exceeds size bound")

// appendFrame serializes f onto dst and returns the extended slice.
func appendFrame(dst []byte, f frame) []byte {
	start := len(dst)
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint16(hdr[0:], frameMagic)
	hdr[2] = frameVersion
	hdr[3] = byte(f.Tag)
	hdr[4] = f.Kind
	binary.LittleEndian.PutUint16(hdr[5:], uint16(f.From))
	binary.LittleEndian.PutUint16(hdr[7:], uint16(f.To))
	binary.LittleEndian.PutUint32(hdr[9:], f.Seq)
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(f.Body)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Body...)
	sum := crc32.ChecksumIEEE(dst[start+2:])
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	return append(dst, tr[:]...)
}

// readFrame reads one frame from r. It returns ErrCorruptFrame for a CRC
// mismatch after consuming the whole frame (the caller may keep reading
// the stream), ErrFrameTooLarge for an oversized payload, and io.EOF /
// io.ErrUnexpectedEOF on a torn stream.
func readFrame(r io.Reader, maxBytes int) (frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if binary.LittleEndian.Uint16(hdr[0:]) != frameMagic {
		return frame{}, fmt.Errorf("transport: bad frame magic %#x", binary.LittleEndian.Uint16(hdr[0:]))
	}
	if hdr[2] != frameVersion {
		return frame{}, fmt.Errorf("transport: unsupported frame version %d", hdr[2])
	}
	n := int(binary.LittleEndian.Uint32(hdr[13:]))
	if maxBytes <= 0 {
		maxBytes = DefaultMaxFrameBytes
	}
	if n > maxBytes {
		return frame{}, ErrFrameTooLarge
	}
	body := make([]byte, n+trailerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	sum := crc32.ChecksumIEEE(hdr[2:])
	sum = crc32.Update(sum, crc32.IEEETable, body[:n])
	if sum != binary.LittleEndian.Uint32(body[n:]) {
		return frame{}, ErrCorruptFrame
	}
	return frame{
		Tag:  Tag(hdr[3]),
		Kind: hdr[4],
		From: int(binary.LittleEndian.Uint16(hdr[5:])),
		To:   int(binary.LittleEndian.Uint16(hdr[7:])),
		Seq:  binary.LittleEndian.Uint32(hdr[9:]),
		Body: body[:n:n],
	}, nil
}
