package transport

import "time"

// The liveness plane: both backends can detect a dead peer (real heartbeat
// timeouts over TCP, an explicit crash call in-process) and surface the
// death — and a later rejoin — to the runner without changing the core
// Transport interface. Liveness is an optional capability discovered by
// type assertion; the bulk-synchronous collectives keep working across a
// death by treating a down peer as contributing no traffic.
//
// Down is sticky: once a peer is marked down it stays down until the
// explicit rejoin handshake completes, even if its old connection flaps
// back to life. A restarted process re-enters the mesh in a *pending*
// state (links installed, no traffic) and is atomically integrated at a
// step boundary by the runner's consensus: every live rank reports its
// pending links in the convergence vote, rank 0 broadcasts the activation
// set in the decision, and every rank activates the link at the same
// exchange boundary — so the step-end marker streams stay aligned.

// LiveKind is the kind of a liveness transition.
type LiveKind uint8

const (
	// LiveDown reports a peer newly marked down (heartbeat timeout, or
	// reconnect budget exhausted).
	LiveDown LiveKind = iota
	// LiveRejoin reports a pending peer activated back into the plane.
	LiveRejoin
)

// LivenessEvent is one liveness transition observed by an endpoint.
type LivenessEvent struct {
	Rank int
	Kind LiveKind
}

// Liveness is the optional failure-detection surface of a Transport
// backend. Backends without liveness (or with it disabled) simply do not
// implement it.
type Liveness interface {
	// TakeLiveness returns the liveness transitions observed since the
	// last call and clears the list.
	TakeLiveness() []LivenessEvent
	// PeerDown reports whether rank q is currently considered down
	// (including pending-rejoin: a pending peer carries no traffic yet).
	PeerDown(q int) bool
	// PendingRejoin reports whether rank q has completed the rejoin
	// handshake and waits for activation.
	PendingRejoin(q int) bool
	// Activate integrates a pending peer into the plane at the current
	// exchange boundary. All live ranks must call it at the same boundary
	// (the runner's decision broadcast coordinates this). Idempotent.
	Activate(q int)
	// HeartbeatAge is the time since rank q was last heard from; zero for
	// self or when unknown.
	HeartbeatAge(q int) time.Duration
	// SendRejoinGo releases a pending-activated rejoiner into the step
	// loop, handing it the opaque go payload (the runner's state digest:
	// partition checksum plus the dynamic-event journal). Only the
	// coordinating rank calls it, after Activate.
	SendRejoinGo(q int, payload []byte) error
}

// RejoinWaiter is the rejoiner's side of the rejoin handshake: an endpoint
// created by RejoinTCP / RejoinInproc blocks here until the coordinator
// releases it.
type RejoinWaiter interface {
	// AwaitRejoinGo blocks until the coordinator's go signal arrives and
	// returns its payload.
	AwaitRejoinGo(timeout time.Duration) ([]byte, error)
}

// AsLiveness discovers the liveness surface of a transport, unwrapping the
// fault layer: the Lossy wrapper sits above the backend and does not carry
// liveness itself, but its backend might.
func AsLiveness(t Transport) (Liveness, bool) {
	for {
		if lv, ok := t.(Liveness); ok {
			return lv, true
		}
		if l, ok := t.(*Lossy); ok {
			t = l.inner
			continue
		}
		return nil, false
	}
}

// splitmix64 is the seeded mixer behind the jittered backoff (and the
// fault plane's fate schedule) — deterministic, dependency-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// jitterBackoff returns the pause before retry `attempt` (0-based):
// exponential growth from base, capped at cap_, scaled by a deterministic
// jitter factor in [0.5, 1.0) keyed on (seed, attempt). The jitter spreads
// a fleet of ranks redialing one restarted peer over half the window
// instead of thundering in lockstep.
func jitterBackoff(attempt int, base, cap_ time.Duration, seed uint64) time.Duration {
	d := base
	for i := 0; i < attempt && d < cap_; i++ {
		d *= 2
	}
	if d > cap_ {
		d = cap_
	}
	r := splitmix64(seed ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := 0.5 + 0.5*float64(r>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}
