package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Peer is one row of the static peer manifest: a rank and the TCP address
// it listens on.
type Peer struct {
	Rank int
	Addr string
}

// TCPOptions tunes the TCP backend. Zero values pick the defaults.
type TCPOptions struct {
	// MeshTimeout bounds the whole mesh setup: listening, dialing every
	// lower rank (with retries while peers are still starting), and
	// accepting every higher rank (default 30s).
	MeshTimeout time.Duration
	// DialTimeout bounds one dial attempt (default 3s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// ExchangeTimeout bounds the wait for the peers' step traffic in one
	// Exchange (default 60s). A peer that dies mid-run surfaces here.
	ExchangeTimeout time.Duration
	// ReconnectAttempts is the retry budget for redials after a link
	// failure (default 5); the acceptor side instead waits for the
	// dialer's redial.
	ReconnectAttempts int
	// ReconnectBackoff is the initial redial backoff; retries grow
	// exponentially from it with deterministic jitter in [0.5, 1.0) of the
	// window (capped at 1s), so a fleet of ranks redialing one restarted
	// peer spreads out instead of thundering in lockstep (default 50ms).
	ReconnectBackoff time.Duration
	// MaxFrameBytes bounds one frame's payload (default 16 MiB).
	MaxFrameBytes int
	// HeartbeatInterval enables the liveness plane: every active link
	// carries a heartbeat frame this often, and the endpoint implements
	// the Liveness interface. 0 disables liveness (legacy behavior: a
	// peer death surfaces as an Exchange error).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence after which a peer is marked down
	// (default 4x HeartbeatInterval). Down is sticky: only the rejoin
	// handshake revives the link.
	HeartbeatTimeout time.Duration
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...interface{})
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.MeshTimeout <= 0 {
		o.MeshTimeout = 30 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.ExchangeTimeout <= 0 {
		o.ExchangeTimeout = 60 * time.Second
	}
	if o.ReconnectAttempts <= 0 {
		o.ReconnectAttempts = 5
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 50 * time.Millisecond
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if o.HeartbeatInterval > 0 && o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 4 * o.HeartbeatInterval
	}
	return o
}

// maxBackoff caps one jittered redial pause.
const maxBackoff = time.Second

// Link lifecycle states. Active links carry step traffic; a down link is
// skipped by every collective (its peer contributes nothing); a pending
// link has completed the rejoin handshake and waits for the runner's
// consensus to activate it at an agreed exchange boundary.
const (
	linkActive int32 = iota
	linkDown
	linkPending
)

// TCP is the real-network Transport backend: a full mesh of stdlib TCP
// connections between N OS processes. Rank i dials every lower rank and
// accepts from every higher rank, so each pair shares exactly one
// connection. Exchange frames each BSP step with per-link step-end
// markers: TCP's per-link FIFO guarantees a peer's data frames for step k
// arrive before its k-th marker, so the inbox is complete when every
// peer's marker is in — no global clock needed.
//
// With HeartbeatInterval set the endpoint also implements Liveness: every
// link carries periodic heartbeats, a silent or unreachable peer is marked
// down (sticky), collectives continue without it, and a restarted process
// re-enters through RejoinTCP's pending handshake.
type TCP struct {
	rank  int
	peers []Peer
	opts  TCPOptions
	live  bool // liveness plane enabled

	ln     net.Listener
	links  []*tcpLink // by rank; links[rank] == nil
	ctr    counters
	xid    uint64
	failed []Message
	closed atomic.Bool
	wg     sync.WaitGroup

	hbStop   chan struct{}
	hbPaused atomic.Bool  // test hook: stop sending heartbeats, keep receiving
	step     atomic.Int64 // this rank's RC step, gossiped in heartbeat Seq

	lmu    sync.Mutex
	events []LivenessEvent

	goCh chan []byte // rejoiner side: the coordinator's go signal
}

// tcpLink is the connection state for one peer.
type tcpLink struct {
	t      *TCP
	peer   int
	dialer bool // this side re-establishes the link after failures

	mu   sync.Mutex // guards conn/w and the write path
	conn net.Conn
	w    *bufio.Writer
	gen  int // bumped on every (re)connect

	state     atomic.Int32 // linkActive / linkDown / linkPending (transitions under rmu)
	lastHeard atomic.Int64 // UnixNano of the last frame from this peer
	peerStep  atomic.Int64 // last RC step heard in this peer's heartbeats

	rmu   sync.Mutex
	rcond *sync.Cond
	items []tcpItem // decoded frames in arrival order
}

// tcpItem is one received frame: a data message or a step-end marker.
type tcpItem struct {
	marker bool
	xid    uint32
	msg    Message
}

func newTCPEndpoint(peers []Peer, rank int, opts TCPOptions) (*TCP, error) {
	if len(peers) < 2 {
		return nil, fmt.Errorf("transport: tcp mesh needs >= 2 peers, got %d", len(peers))
	}
	if rank < 0 || rank >= len(peers) {
		return nil, fmt.Errorf("transport: rank %d outside manifest of %d peers", rank, len(peers))
	}
	for i, p := range peers {
		if p.Rank != i {
			return nil, fmt.Errorf("transport: manifest rank %d at position %d (must be sorted, dense)", p.Rank, i)
		}
	}
	opts = opts.withDefaults()
	t := &TCP{rank: rank, peers: peers, opts: opts, live: opts.HeartbeatInterval > 0, links: make([]*tcpLink, len(peers))}
	for q := range peers {
		if q == rank {
			continue
		}
		l := &tcpLink{t: t, peer: q, dialer: q < rank}
		l.rcond = sync.NewCond(&l.rmu)
		t.links[q] = l
	}
	ln, err := net.Listen("tcp", peers[rank].Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, peers[rank].Addr, err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// NewTCP joins the mesh described by the manifest as the given rank: it
// listens on peers[rank].Addr, dials every lower rank (retrying while
// those processes are still starting), accepts every higher rank, and
// returns once all Size()-1 links are up.
func NewTCP(peers []Peer, rank int, opts TCPOptions) (*TCP, error) {
	t, err := newTCPEndpoint(peers, rank, opts)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(t.opts.MeshTimeout)
	var dialErr error
	var dialWG sync.WaitGroup
	var dialMu sync.Mutex
	for q := 0; q < rank; q++ {
		dialWG.Add(1)
		go func(q int) {
			defer dialWG.Done()
			if err := t.links[q].dial(deadline, tagHandshake); err != nil {
				dialMu.Lock()
				if dialErr == nil {
					dialErr = err
				}
				dialMu.Unlock()
			}
		}(q)
	}
	dialWG.Wait()
	if dialErr != nil {
		t.Close()
		return nil, dialErr
	}
	// Wait for every higher rank to dial in.
	for q := rank + 1; q < len(peers); q++ {
		if err := t.links[q].waitConnected(deadline); err != nil {
			t.Close()
			return nil, err
		}
	}
	t.startHeartbeat()
	return t, nil
}

// RejoinTCP re-enters an existing mesh as a restarted rank: it listens on
// its manifest address again and dials *every* peer (the dial asymmetry of
// the initial mesh does not apply — the survivors' old connections to this
// rank are gone) with the rejoin handshake, which the survivors install in
// the pending state. The caller must then block in AwaitRejoinGo until the
// coordinator activates the rank at a step boundary and releases it with
// the go payload. Requires HeartbeatInterval (the liveness plane).
func RejoinTCP(peers []Peer, rank int, opts TCPOptions) (*TCP, error) {
	if opts.HeartbeatInterval <= 0 {
		return nil, fmt.Errorf("transport: rejoin requires HeartbeatInterval (the liveness plane)")
	}
	t, err := newTCPEndpoint(peers, rank, opts)
	if err != nil {
		return nil, err
	}
	t.goCh = make(chan []byte, 1)
	deadline := time.Now().Add(t.opts.MeshTimeout)
	var dialErr error
	var dialWG sync.WaitGroup
	var dialMu sync.Mutex
	for q := range peers {
		if q == rank {
			continue
		}
		l := t.links[q]
		l.dialer = true // the rejoiner repairs every link from now on
		dialWG.Add(1)
		go func(l *tcpLink) {
			defer dialWG.Done()
			if err := l.dial(deadline, tagRejoin); err != nil {
				dialMu.Lock()
				if dialErr == nil {
					dialErr = err
				}
				dialMu.Unlock()
			}
		}(l)
	}
	dialWG.Wait()
	if dialErr != nil {
		t.Close()
		return nil, dialErr
	}
	t.startHeartbeat()
	return t, nil
}

// AwaitRejoinGo implements RejoinWaiter: block until the coordinator's
// tagRejoinGo frame arrives and return its payload.
func (t *TCP) AwaitRejoinGo(timeout time.Duration) ([]byte, error) {
	if t.goCh == nil {
		return nil, fmt.Errorf("transport: endpoint was not created with RejoinTCP")
	}
	if timeout <= 0 {
		timeout = t.opts.MeshTimeout
	}
	select {
	case payload := <-t.goCh:
		return payload, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("transport: rank %d not released into the mesh within %v", t.rank, timeout)
	}
}

// Addr returns the listener's actual address (useful when the manifest
// used port 0).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCP) Size() int { return len(t.peers) }

func (t *TCP) logf(format string, args ...interface{}) {
	if t.opts.Logf != nil {
		t.opts.Logf(format, args...)
	}
}

// pushEvent queues one liveness transition for TakeLiveness.
func (t *TCP) pushEvent(ev LivenessEvent) {
	t.lmu.Lock()
	t.events = append(t.events, ev)
	t.lmu.Unlock()
}

// TakeLiveness implements Liveness.
func (t *TCP) TakeLiveness() []LivenessEvent {
	t.lmu.Lock()
	evs := t.events
	t.events = nil
	t.lmu.Unlock()
	return evs
}

// PeerDown implements Liveness: a pending peer is still down (it carries
// no step traffic until activated).
func (t *TCP) PeerDown(q int) bool {
	if q == t.rank || q < 0 || q >= len(t.links) {
		return false
	}
	return t.links[q].state.Load() != linkActive
}

// PendingRejoin implements Liveness.
func (t *TCP) PendingRejoin(q int) bool {
	if q == t.rank || q < 0 || q >= len(t.links) {
		return false
	}
	return t.links[q].state.Load() == linkPending
}

// Activate implements Liveness: flip a pending link to active. All live
// ranks must do this at the same exchange boundary; the link's marker
// stream then starts at the next Exchange on both sides. Idempotent.
func (t *TCP) Activate(q int) {
	if q == t.rank || q < 0 || q >= len(t.links) {
		return
	}
	l := t.links[q]
	l.rmu.Lock()
	pending := l.state.Load() == linkPending
	if pending {
		l.state.Store(linkActive)
	}
	l.rmu.Unlock()
	if pending {
		t.pushEvent(LivenessEvent{Rank: q, Kind: LiveRejoin})
		l.rcond.Broadcast()
	}
}

// HeartbeatAge implements Liveness.
func (t *TCP) HeartbeatAge(q int) time.Duration {
	if q == t.rank || q < 0 || q >= len(t.links) {
		return 0
	}
	last := t.links[q].lastHeard.Load()
	if last == 0 {
		return 0
	}
	return time.Since(time.Unix(0, last))
}

// MarkStep implements StepReporter: the step rides the Seq field of every
// subsequent heartbeat frame, so peers learn it within one heartbeat
// interval at zero extra traffic.
func (t *TCP) MarkStep(step int64) { t.step.Store(step) }

// PeerStep implements StepReporter.
func (t *TCP) PeerStep(q int) int64 {
	if q == t.rank {
		return t.step.Load()
	}
	if q < 0 || q >= len(t.links) || t.links[q] == nil {
		return 0
	}
	return t.links[q].peerStep.Load()
}

// SendRejoinGo implements Liveness: release an activated rejoiner into the
// step loop with the opaque go payload.
func (t *TCP) SendRejoinGo(q int, payload []byte) error {
	if q == t.rank || q < 0 || q >= len(t.links) {
		return fmt.Errorf("transport: rejoin-go to invalid rank %d", q)
	}
	buf := appendFrame(make([]byte, 0, headerLen+len(payload)+trailerLen),
		frame{Tag: tagRejoinGo, Kind: payloadRaw, From: t.rank, To: q, Body: payload})
	return t.links[q].send(buf)
}

// startHeartbeat launches the liveness loop: send a heartbeat on every
// connected link each interval, and mark links silent past the timeout
// down. No-op when the liveness plane is disabled.
func (t *TCP) startHeartbeat() {
	if !t.live || t.hbStop != nil {
		return
	}
	t.hbStop = make(chan struct{})
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		ticker := time.NewTicker(t.opts.HeartbeatInterval)
		defer ticker.Stop()
		for {
			select {
			case <-t.hbStop:
				return
			case <-ticker.C:
			}
			for q, l := range t.links {
				if l == nil || l.state.Load() == linkDown {
					continue
				}
				if !t.hbPaused.Load() {
					l.sendHeartbeat(q)
				}
				last := l.lastHeard.Load()
				if last != 0 && time.Since(time.Unix(0, last)) > t.opts.HeartbeatTimeout {
					l.markDown(fmt.Sprintf("silent for %v", t.opts.HeartbeatTimeout))
				}
			}
		}
	}()
}

// sendHeartbeat writes one keepalive frame; a failed write just drops the
// connection (the reader's repair path or the peer's timeout takes over).
func (l *tcpLink) sendHeartbeat(q int) {
	// Seq carries the sender's RC step (unused otherwise on heartbeats):
	// free step-ID gossip for the observability plane.
	hb := appendFrame(nil, frame{Tag: tagHeartbeat, From: l.t.rank, To: q, Seq: uint32(l.t.step.Load())})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return
	}
	l.conn.SetWriteDeadline(time.Now().Add(l.t.opts.WriteTimeout))
	_, err := l.w.Write(hb)
	if err == nil {
		err = l.w.Flush()
	}
	l.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		l.conn.Close()
	} else {
		l.t.ctr.framesSent.Add(1)
	}
}

// markDown makes the link's peer down: sticky until a rejoin handshake.
// Queued items are stale (a dead peer's partial step) and are discarded;
// waiting collectives wake and skip the peer.
func (l *tcpLink) markDown(reason string) {
	l.rmu.Lock()
	if l.state.Load() == linkDown {
		l.rmu.Unlock()
		return
	}
	l.state.Store(linkDown)
	l.items = nil
	l.rmu.Unlock()
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn, l.w = nil, nil
	}
	l.mu.Unlock()
	l.rcond.Broadcast()
	if l.t.live {
		l.t.pushEvent(LivenessEvent{Rank: l.peer, Kind: LiveDown})
	}
	l.t.logf("transport: rank %d marks rank %d down (%s)", l.t.rank, l.peer, reason)
}

// acceptLoop installs inbound connections onto their links for the whole
// life of the endpoint — a later inbound connection from a known higher
// rank replaces the existing one (the dialer's reconnect), and a rejoin
// handshake from any rank re-installs its link in the pending state.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.handshakeInbound(conn)
	}
}

// readHandshake reads exactly one empty-body frame off the raw connection
// (handshake frames are fixed-size), avoiding any buffered read-ahead that
// would swallow bytes of the frames that follow.
func readHandshake(conn net.Conn, maxBytes int) (frame, error) {
	buf := make([]byte, headerLen+trailerLen)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return frame{}, err
	}
	return readFrame(bytes.NewReader(buf), maxBytes)
}

// handshakeInbound reads the dialer's handshake, replies, and installs the
// connection on the peer's link. A plain handshake is only valid from a
// higher rank on a live link (the initial mesh and its reconnects); a
// rejoin handshake is valid from any rank and parks the link in the
// pending state until the runner activates it.
func (t *TCP) handshakeInbound(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(t.opts.DialTimeout))
	f, err := readHandshake(conn, t.opts.MaxFrameBytes)
	if err != nil || (f.Tag != tagHandshake && f.Tag != tagRejoin) || f.To != t.rank {
		t.logf("transport: rank %d rejecting inbound connection: %v", t.rank, err)
		conn.Close()
		return
	}
	peer := f.From
	if peer == t.rank || peer < 0 || peer >= len(t.peers) {
		t.logf("transport: rank %d rejecting handshake from invalid rank %d", t.rank, peer)
		conn.Close()
		return
	}
	l := t.links[peer]
	if f.Tag == tagHandshake {
		if peer <= t.rank {
			t.logf("transport: rank %d rejecting handshake from lower rank %d", t.rank, peer)
			conn.Close()
			return
		}
		if t.live && l.state.Load() == linkDown {
			// Down is sticky: a flapping old connection must not silently
			// revive the link — only the rejoin protocol does.
			t.logf("transport: rank %d rejecting plain handshake from down rank %d", t.rank, peer)
			conn.Close()
			return
		}
	}
	reply := appendFrame(nil, frame{Tag: f.Tag, From: t.rank, To: peer, Seq: frameVersion})
	if _, err := conn.Write(reply); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if f.Tag == tagRejoin {
		l.installPending(conn)
		return
	}
	l.install(conn)
}

// installPending installs a rejoined peer's connection: the link's old
// life ends (if the death was never noticed locally, it is marked down
// now, so the runner's liveness view agrees with the rejoin), the queue is
// cleared, and the link parks in pending until Activate.
func (l *tcpLink) installPending(conn net.Conn) {
	if l.state.Load() != linkDown {
		// The peer restarted faster than our failure detector: its old
		// connection is dead even if we never noticed.
		l.markDown("peer restarted")
	}
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
	}
	l.conn = conn
	l.w = bufio.NewWriterSize(conn, 64<<10)
	l.gen++
	gen := l.gen
	l.mu.Unlock()
	l.rmu.Lock()
	l.state.Store(linkPending)
	l.items = nil
	l.rmu.Unlock()
	l.lastHeard.Store(time.Now().UnixNano())
	l.t.ctr.reconnects.Add(1)
	l.rcond.Broadcast()
	l.t.wg.Add(1)
	go l.readLoop(conn, gen)
	l.t.logf("transport: rank %d holds rejoined rank %d pending activation", l.t.rank, l.peer)
}

// dial establishes the link to a peer, retrying with jittered backoff
// until the deadline while the peer process may still be starting. hs is
// the handshake tag: tagHandshake for the initial mesh, tagRejoin when
// re-entering as a restarted rank.
func (l *tcpLink) dial(deadline time.Time, hs Tag) error {
	t := l.t
	seed := uint64(t.rank)<<32 | uint64(l.peer)
	for attempt := 0; ; attempt++ {
		if t.closed.Load() {
			return fmt.Errorf("transport: endpoint closed while dialing rank %d", l.peer)
		}
		conn, err := l.dialOnce(hs)
		if err == nil {
			l.install(conn)
			return nil
		}
		if attempt > 0 {
			t.ctr.retryAttempts.Add(1)
		}
		pause := jitterBackoff(attempt, t.opts.ReconnectBackoff, maxBackoff, seed)
		if time.Now().Add(pause).After(deadline) {
			return fmt.Errorf("transport: rank %d could not reach rank %d at %s: %w",
				t.rank, l.peer, t.peers[l.peer].Addr, err)
		}
		time.Sleep(pause)
	}
}

// dialOnce performs one dial + handshake round trip.
func (l *tcpLink) dialOnce(hs Tag) (net.Conn, error) {
	t := l.t
	conn, err := net.DialTimeout("tcp", t.peers[l.peer].Addr, t.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(t.opts.DialTimeout))
	buf := appendFrame(nil, frame{Tag: hs, From: t.rank, To: l.peer, Seq: frameVersion})
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := readHandshake(conn, t.opts.MaxFrameBytes)
	if err != nil || f.Tag != hs || f.From != l.peer {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("transport: bad handshake reply (tag %d from %d)", f.Tag, f.From)
		}
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return conn, nil
}

// install replaces the link's connection (counting a reconnect if one
// existed) and starts its reader. Installing revives a link the legacy
// (no-liveness) path had marked down; with liveness, down links only
// revive through installPending + Activate.
func (l *tcpLink) install(conn net.Conn) {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.t.ctr.reconnects.Add(1)
	}
	l.conn = conn
	l.w = bufio.NewWriterSize(conn, 64<<10)
	l.gen++
	gen := l.gen
	l.mu.Unlock()
	if !l.t.live {
		l.rmu.Lock()
		l.state.Store(linkActive)
		l.rmu.Unlock()
	}
	l.lastHeard.Store(time.Now().UnixNano())
	l.rcond.Broadcast()
	l.t.wg.Add(1)
	go l.readLoop(conn, gen)
}

// waitConnected blocks until the link has a connection or the deadline
// passes.
func (l *tcpLink) waitConnected(deadline time.Time) error {
	for {
		l.mu.Lock()
		ok := l.conn != nil
		l.mu.Unlock()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: rank %d never heard from rank %d", l.t.rank, l.peer)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readLoop decodes frames from one connection until it fails or is
// replaced. Corrupt frames are counted and skipped (the length prefix
// keeps the stream in sync); a read error marks the link for repair.
func (l *tcpLink) readLoop(conn net.Conn, gen int) {
	defer l.t.wg.Done()
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		f, err := readFrame(r, l.t.opts.MaxFrameBytes)
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				l.t.ctr.crcErrors.Add(1)
				continue
			}
			l.readerGone(conn, gen, err)
			return
		}
		l.t.ctr.framesRecv.Add(1)
		l.lastHeard.Store(time.Now().UnixNano())
		switch f.Tag {
		case tagHeartbeat:
			l.peerStep.Store(int64(f.Seq))
			continue
		case tagRejoinGo:
			if l.t.goCh != nil {
				select {
				case l.t.goCh <- f.Body:
				default:
				}
			}
			continue
		case tagStepEnd:
			l.push(tcpItem{marker: true, xid: f.Seq})
			continue
		}
		payload, perr := decodePayload(f.Kind, f.Body)
		if perr != nil {
			// A frame that passed CRC but fails payload decoding is a
			// protocol bug or an in-flight corruption the CRC missed;
			// reject it like a corrupt frame.
			l.t.ctr.crcErrors.Add(1)
			l.t.logf("transport: rank %d dropping undecodable frame from %d: %v", l.t.rank, f.From, perr)
			continue
		}
		l.t.ctr.msgsRecv.Add(1)
		l.t.ctr.bytesRecv.Add(int64(len(f.Body)))
		l.push(tcpItem{msg: Message{From: f.From, To: f.To, Tag: f.Tag, Bytes: len(f.Body), Payload: payload}})
	}
}

// readerGone handles a failed connection: the dialer side redials with
// jittered backoff under the retry budget; the acceptor side waits for the
// dialer's new connection (or, with liveness, the heartbeat timeout). If
// the endpoint is closing, or the budget runs out, the link goes down so
// waiting receivers move on.
func (l *tcpLink) readerGone(conn net.Conn, gen int, err error) {
	t := l.t
	l.mu.Lock()
	stale := l.gen != gen // already replaced by a newer connection
	l.mu.Unlock()
	if stale || t.closed.Load() {
		return
	}
	if err != io.EOF {
		t.logf("transport: rank %d link to %d failed: %v", t.rank, l.peer, err)
	}
	conn.Close()
	if l.state.Load() != linkActive {
		return // already down or pending a rejoin; nothing to repair
	}
	if !l.dialer {
		// The dialer redials; nothing to do but wait. With liveness the
		// heartbeat timeout marks the link down if the peer never returns;
		// without, receivers keep waiting under the Exchange timeout.
		return
	}
	seed := uint64(t.rank)<<32 | uint64(l.peer) | 1<<63
	for attempt := 0; attempt < t.opts.ReconnectAttempts; attempt++ {
		if t.closed.Load() || l.state.Load() != linkActive {
			return
		}
		t.ctr.retryAttempts.Add(1)
		time.Sleep(jitterBackoff(attempt, t.opts.ReconnectBackoff, maxBackoff, seed))
		c, derr := l.dialOnce(tagHandshake)
		if derr == nil {
			t.ctr.reconnects.Add(1)
			l.installReconnected(c)
			return
		}
	}
	l.markDown("reconnect budget exhausted")
}

// installReconnected swaps in a redialed connection without double-counting
// the reconnect (the caller counted it).
func (l *tcpLink) installReconnected(conn net.Conn) {
	l.mu.Lock()
	l.conn = conn
	l.w = bufio.NewWriterSize(conn, 64<<10)
	l.gen++
	gen := l.gen
	l.mu.Unlock()
	if !l.t.live {
		l.rmu.Lock()
		l.state.Store(linkActive)
		l.rmu.Unlock()
	}
	l.lastHeard.Store(time.Now().UnixNano())
	l.rcond.Broadcast()
	l.t.wg.Add(1)
	go l.readLoop(conn, gen)
}

// push appends one received item and wakes the collector. Items are
// dropped while the link is not active: a down peer's leftovers are stale,
// and a pending rejoiner sends no step traffic before activation anyway.
func (l *tcpLink) push(it tcpItem) {
	l.rmu.Lock()
	if l.state.Load() == linkDown {
		l.rmu.Unlock()
		return
	}
	l.items = append(l.items, it)
	l.rmu.Unlock()
	l.rcond.Broadcast()
}

// send writes one encoded frame with the write deadline, redialing with
// jittered backoff on failure (dialer side) or waiting briefly for the
// peer's redial (acceptor side). Reports whether the frame was written.
func (l *tcpLink) send(buf []byte) error {
	t := l.t
	deadline := time.Now().Add(t.opts.ExchangeTimeout)
	seed := uint64(t.rank)<<32 | uint64(l.peer) | 1<<62
	for attempt := 0; ; attempt++ {
		if t.live && l.state.Load() == linkDown {
			return fmt.Errorf("transport: rank %d is down", l.peer)
		}
		l.mu.Lock()
		conn, w := l.conn, l.w
		if conn != nil {
			conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
			_, err := w.Write(buf)
			if err == nil {
				err = w.Flush()
			}
			conn.SetWriteDeadline(time.Time{})
			if err == nil {
				l.mu.Unlock()
				t.ctr.framesSent.Add(1)
				return nil
			}
			// The write failed: drop the connection; the reader's repair
			// path (or our redial below) re-establishes it.
			conn.Close()
			if l.dialer {
				l.conn, l.w = nil, nil
			}
			l.mu.Unlock()
			t.logf("transport: rank %d write to %d failed: %v", t.rank, l.peer, err)
		} else {
			l.mu.Unlock()
		}
		if t.closed.Load() {
			return fmt.Errorf("transport: endpoint closed")
		}
		if attempt >= t.opts.ReconnectAttempts || time.Now().After(deadline) {
			return fmt.Errorf("transport: rank %d cannot reach rank %d after %d attempts", t.rank, l.peer, attempt)
		}
		t.ctr.retryAttempts.Add(1)
		if l.dialer {
			if c, err := l.dialOnce(tagHandshake); err == nil {
				t.ctr.reconnects.Add(1)
				l.installReconnected(c)
				continue
			}
		}
		time.Sleep(jitterBackoff(attempt, t.opts.ReconnectBackoff, maxBackoff, seed))
	}
}

// takeStep blocks until the link's next step-end marker arrives, then
// removes and returns the data messages queued before it (the peer's
// traffic for the current exchange). A link that goes down mid-wait
// contributes nothing: with liveness that is a normal skip (the runner
// handles the degraded step), without it is an error.
func (l *tcpLink) takeStep(deadline time.Time) ([]Message, error) {
	// A timer kicks the cond so the wait honors the deadline.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				l.rcond.Broadcast()
			}
		}
	}()
	l.rmu.Lock()
	defer l.rmu.Unlock()
	for {
		for i, it := range l.items {
			if it.marker {
				msgs := make([]Message, 0, i)
				for _, d := range l.items[:i] {
					msgs = append(msgs, d.msg)
				}
				l.items = append(l.items[:0], l.items[i+1:]...)
				return msgs, nil
			}
		}
		if l.t.closed.Load() {
			return nil, fmt.Errorf("transport: endpoint closed")
		}
		if l.state.Load() != linkActive {
			if l.t.live {
				return nil, nil // down or pending peer: no traffic this step
			}
			return nil, fmt.Errorf("transport: link to rank %d is down", l.peer)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: rank %d timed out waiting for rank %d's step traffic", l.t.rank, l.peer)
		}
		l.rcond.Wait()
	}
}

// Exchange implements Transport: send this rank's messages, mark the step
// end on every active link, and collect every active peer's step traffic.
// Messages to down (or pending) peers are reported through TakeFailed so
// the engine re-marks their rows, exactly like abandoned sends.
func (t *TCP) Exchange(out []Message) ([]Message, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("transport: exchange on closed endpoint")
	}
	t.xid++
	xid := uint32(t.xid)
	t.ctr.exchanges.Add(1)
	var local []Message
	seq := make([]uint32, len(t.peers))
	for i := range out {
		msg := out[i]
		msg.From = t.rank
		if err := validDest(msg, len(t.peers)); err != nil {
			return nil, err
		}
		if msg.To == t.rank {
			local = append(local, msg)
			continue
		}
		if t.live && t.links[msg.To].state.Load() != linkActive {
			t.ctr.sendFailures.Add(1)
			t.failed = append(t.failed, msg)
			continue
		}
		kind, body, err := encodePayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		buf := appendFrame(make([]byte, 0, headerLen+len(body)+trailerLen), frame{
			Tag: msg.Tag, Kind: kind, From: t.rank, To: msg.To, Seq: seq[msg.To], Body: body,
		})
		seq[msg.To]++
		if err := t.links[msg.To].send(buf); err != nil {
			// Real packet loss: surface through the same path as the fault
			// layer's abandoned messages so the engine re-marks the rows.
			t.ctr.sendFailures.Add(1)
			t.failed = append(t.failed, msg)
			t.logf("transport: rank %d abandoning %d-byte message to %d: %v", t.rank, msg.Bytes, msg.To, err)
			continue
		}
		t.ctr.msgsSent.Add(1)
		t.ctr.bytesSent.Add(int64(len(body)))
	}
	for q, l := range t.links {
		if l == nil || (t.live && l.state.Load() != linkActive) {
			continue
		}
		marker := appendFrame(nil, frame{Tag: tagStepEnd, From: t.rank, To: q, Seq: xid})
		if err := l.send(marker); err != nil {
			if t.live && l.state.Load() != linkActive {
				continue // went down while sending: skip it this step
			}
			return nil, fmt.Errorf("transport: step marker to rank %d: %w", q, err)
		}
	}
	deadline := time.Now().Add(t.opts.ExchangeTimeout)
	var in []Message
	for q := 0; q < len(t.peers); q++ {
		if q == t.rank {
			in = append(in, local...)
			continue
		}
		if t.live && t.links[q].state.Load() != linkActive {
			continue
		}
		msgs, err := t.links[q].takeStep(deadline)
		if err != nil {
			return nil, err
		}
		in = append(in, msgs...)
	}
	return in, nil
}

// Broadcast implements Transport over Exchange.
func (t *TCP) Broadcast(root int, msg Message) (*Message, error) {
	if t.rank == root {
		t.ctr.broadcasts.Add(1)
	}
	return broadcastVia(t, root, msg)
}

// Barrier implements Transport as an empty Exchange.
func (t *TCP) Barrier() error {
	t.ctr.barriers.Add(1)
	_, err := t.Exchange(nil)
	return err
}

// TakeFailed implements Transport. Failed messages survive Close: a
// shutdown must not silently drop undelivered deltas the caller has not
// collected yet.
func (t *TCP) TakeFailed() []Message {
	f := t.failed
	t.failed = nil
	return f
}

// InFlight implements Transport: the TCP backend holds nothing between
// exchanges.
func (t *TCP) InFlight() int { return 0 }

// Stats implements Transport.
func (t *TCP) Stats() Stats { return t.ctr.snapshot() }

// Close implements Transport.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	if t.hbStop != nil {
		close(t.hbStop)
	}
	t.ln.Close()
	for _, l := range t.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
		l.rcond.Broadcast()
	}
	t.wg.Wait()
	return nil
}
