package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Peer is one row of the static peer manifest: a rank and the TCP address
// it listens on.
type Peer struct {
	Rank int
	Addr string
}

// TCPOptions tunes the TCP backend. Zero values pick the defaults.
type TCPOptions struct {
	// MeshTimeout bounds the whole mesh setup: listening, dialing every
	// lower rank (with retries while peers are still starting), and
	// accepting every higher rank (default 30s).
	MeshTimeout time.Duration
	// DialTimeout bounds one dial attempt (default 3s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// ExchangeTimeout bounds the wait for the peers' step traffic in one
	// Exchange (default 60s). A peer that dies mid-run surfaces here.
	ExchangeTimeout time.Duration
	// ReconnectAttempts bounds the redials after a link failure
	// (default 5); the acceptor side instead waits for the dialer's redial.
	ReconnectAttempts int
	// ReconnectBackoff is the initial redial backoff, doubled per attempt
	// (default 50ms).
	ReconnectBackoff time.Duration
	// MaxFrameBytes bounds one frame's payload (default 16 MiB).
	MaxFrameBytes int
	// Logf, when set, receives connection lifecycle diagnostics.
	Logf func(format string, args ...interface{})
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.MeshTimeout <= 0 {
		o.MeshTimeout = 30 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.ExchangeTimeout <= 0 {
		o.ExchangeTimeout = 60 * time.Second
	}
	if o.ReconnectAttempts <= 0 {
		o.ReconnectAttempts = 5
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 50 * time.Millisecond
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	return o
}

// TCP is the real-network Transport backend: a full mesh of stdlib TCP
// connections between N OS processes. Rank i dials every lower rank and
// accepts from every higher rank, so each pair shares exactly one
// connection. Exchange frames each BSP step with per-link step-end
// markers: TCP's per-link FIFO guarantees a peer's data frames for step k
// arrive before its k-th marker, so the inbox is complete when every
// peer's marker is in — no global clock needed.
type TCP struct {
	rank  int
	peers []Peer
	opts  TCPOptions

	ln     net.Listener
	links  []*tcpLink // by rank; links[rank] == nil
	ctr    counters
	xid    uint64
	failed []Message
	closed atomic.Bool
	wg     sync.WaitGroup
}

// tcpLink is the connection state for one peer.
type tcpLink struct {
	t      *TCP
	peer   int
	dialer bool // this side re-establishes the link after failures

	mu   sync.Mutex // guards conn/w and the write path
	conn net.Conn
	w    *bufio.Writer
	gen  int // bumped on every (re)connect

	rmu   sync.Mutex
	rcond *sync.Cond
	items []tcpItem // decoded frames in arrival order
	dead  bool      // no conn and no prospect of repair
}

// tcpItem is one received frame: a data message or a step-end marker.
type tcpItem struct {
	marker bool
	xid    uint32
	msg    Message
}

// NewTCP joins the mesh described by the manifest as the given rank: it
// listens on peers[rank].Addr, dials every lower rank (retrying while
// those processes are still starting), accepts every higher rank, and
// returns once all Size()-1 links are up.
func NewTCP(peers []Peer, rank int, opts TCPOptions) (*TCP, error) {
	if len(peers) < 2 {
		return nil, fmt.Errorf("transport: tcp mesh needs >= 2 peers, got %d", len(peers))
	}
	if rank < 0 || rank >= len(peers) {
		return nil, fmt.Errorf("transport: rank %d outside manifest of %d peers", rank, len(peers))
	}
	for i, p := range peers {
		if p.Rank != i {
			return nil, fmt.Errorf("transport: manifest rank %d at position %d (must be sorted, dense)", p.Rank, i)
		}
	}
	t := &TCP{rank: rank, peers: peers, opts: opts.withDefaults(), links: make([]*tcpLink, len(peers))}
	for q := range peers {
		if q == rank {
			continue
		}
		l := &tcpLink{t: t, peer: q, dialer: q < rank}
		l.rcond = sync.NewCond(&l.rmu)
		t.links[q] = l
	}
	ln, err := net.Listen("tcp", peers[rank].Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d listen %s: %w", rank, peers[rank].Addr, err)
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()

	deadline := time.Now().Add(t.opts.MeshTimeout)
	var dialErr error
	var dialWG sync.WaitGroup
	var dialMu sync.Mutex
	for q := 0; q < rank; q++ {
		dialWG.Add(1)
		go func(q int) {
			defer dialWG.Done()
			if err := t.links[q].dial(deadline); err != nil {
				dialMu.Lock()
				if dialErr == nil {
					dialErr = err
				}
				dialMu.Unlock()
			}
		}(q)
	}
	dialWG.Wait()
	if dialErr != nil {
		t.Close()
		return nil, dialErr
	}
	// Wait for every higher rank to dial in.
	for q := rank + 1; q < len(peers); q++ {
		if err := t.links[q].waitConnected(deadline); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// Addr returns the listener's actual address (useful when the manifest
// used port 0).
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Rank implements Transport.
func (t *TCP) Rank() int { return t.rank }

// Size implements Transport.
func (t *TCP) Size() int { return len(t.peers) }

func (t *TCP) logf(format string, args ...interface{}) {
	if t.opts.Logf != nil {
		t.opts.Logf(format, args...)
	}
}

// acceptLoop installs inbound connections onto their links for the whole
// life of the endpoint — a later inbound connection from a known higher
// rank replaces the existing one (the dialer's reconnect).
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.handshakeInbound(conn)
	}
}

// readHandshake reads exactly one empty-body frame off the raw connection
// (handshake frames are fixed-size), avoiding any buffered read-ahead that
// would swallow bytes of the frames that follow.
func readHandshake(conn net.Conn, maxBytes int) (frame, error) {
	buf := make([]byte, headerLen+trailerLen)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return frame{}, err
	}
	return readFrame(bytes.NewReader(buf), maxBytes)
}

// handshakeInbound reads the dialer's handshake, replies, and installs the
// connection on the peer's link.
func (t *TCP) handshakeInbound(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(t.opts.DialTimeout))
	f, err := readHandshake(conn, t.opts.MaxFrameBytes)
	if err != nil || f.Tag != tagHandshake || f.To != t.rank {
		t.logf("transport: rank %d rejecting inbound connection: %v", t.rank, err)
		conn.Close()
		return
	}
	peer := f.From
	if peer <= t.rank || peer >= len(t.peers) {
		t.logf("transport: rank %d rejecting handshake from invalid rank %d", t.rank, peer)
		conn.Close()
		return
	}
	reply := appendFrame(nil, frame{Tag: tagHandshake, From: t.rank, To: peer, Seq: frameVersion})
	if _, err := conn.Write(reply); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	t.links[peer].install(conn)
}

// dial establishes the link to a lower rank, retrying until the deadline
// while the peer process may still be starting.
func (l *tcpLink) dial(deadline time.Time) error {
	t := l.t
	backoff := t.opts.ReconnectBackoff
	for {
		if t.closed.Load() {
			return fmt.Errorf("transport: endpoint closed while dialing rank %d", l.peer)
		}
		conn, err := l.dialOnce()
		if err == nil {
			l.install(conn)
			return nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("transport: rank %d could not reach rank %d at %s: %w",
				t.rank, l.peer, t.peers[l.peer].Addr, err)
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// dialOnce performs one dial + handshake round trip.
func (l *tcpLink) dialOnce() (net.Conn, error) {
	t := l.t
	conn, err := net.DialTimeout("tcp", t.peers[l.peer].Addr, t.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(t.opts.DialTimeout))
	hs := appendFrame(nil, frame{Tag: tagHandshake, From: t.rank, To: l.peer, Seq: frameVersion})
	if _, err := conn.Write(hs); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := readHandshake(conn, t.opts.MaxFrameBytes)
	if err != nil || f.Tag != tagHandshake || f.From != l.peer {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("transport: bad handshake reply (tag %d from %d)", f.Tag, f.From)
		}
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return conn, nil
}

// install replaces the link's connection (counting a reconnect if one
// existed) and starts its reader.
func (l *tcpLink) install(conn net.Conn) {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.t.ctr.reconnects.Add(1)
	}
	l.conn = conn
	l.w = bufio.NewWriterSize(conn, 64<<10)
	l.gen++
	gen := l.gen
	l.mu.Unlock()
	l.rmu.Lock()
	l.dead = false
	l.rmu.Unlock()
	l.rcond.Broadcast()
	l.t.wg.Add(1)
	go l.readLoop(conn, gen)
}

// waitConnected blocks until the link has a connection or the deadline
// passes.
func (l *tcpLink) waitConnected(deadline time.Time) error {
	for {
		l.mu.Lock()
		ok := l.conn != nil
		l.mu.Unlock()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: rank %d never heard from rank %d", l.t.rank, l.peer)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readLoop decodes frames from one connection until it fails or is
// replaced. Corrupt frames are counted and skipped (the length prefix
// keeps the stream in sync); a read error marks the link for repair.
func (l *tcpLink) readLoop(conn net.Conn, gen int) {
	defer l.t.wg.Done()
	r := bufio.NewReaderSize(conn, 64<<10)
	for {
		f, err := readFrame(r, l.t.opts.MaxFrameBytes)
		if err != nil {
			if errors.Is(err, ErrCorruptFrame) {
				l.t.ctr.crcErrors.Add(1)
				continue
			}
			l.readerGone(conn, gen, err)
			return
		}
		l.t.ctr.framesRecv.Add(1)
		if f.Tag == tagStepEnd {
			l.push(tcpItem{marker: true, xid: f.Seq})
			continue
		}
		payload, perr := decodePayload(f.Kind, f.Body)
		if perr != nil {
			// A frame that passed CRC but fails payload decoding is a
			// protocol bug or an in-flight corruption the CRC missed;
			// reject it like a corrupt frame.
			l.t.ctr.crcErrors.Add(1)
			l.t.logf("transport: rank %d dropping undecodable frame from %d: %v", l.t.rank, f.From, perr)
			continue
		}
		l.t.ctr.msgsRecv.Add(1)
		l.t.ctr.bytesRecv.Add(int64(len(f.Body)))
		l.push(tcpItem{msg: Message{From: f.From, To: f.To, Tag: f.Tag, Bytes: len(f.Body), Payload: payload}})
	}
}

// readerGone handles a failed connection: the dialer side redials with
// backoff; the acceptor side waits for the dialer's new connection. If the
// endpoint is closing, or redial fails, the link is marked dead so waiting
// receivers fail fast.
func (l *tcpLink) readerGone(conn net.Conn, gen int, err error) {
	t := l.t
	l.mu.Lock()
	stale := l.gen != gen // already replaced by a newer connection
	l.mu.Unlock()
	if stale || t.closed.Load() {
		return
	}
	if err != io.EOF {
		t.logf("transport: rank %d link to %d failed: %v", t.rank, l.peer, err)
	}
	conn.Close()
	if !l.dialer {
		// The dialer redials; nothing to do but wait. Receivers keep
		// waiting under the Exchange timeout.
		return
	}
	backoff := t.opts.ReconnectBackoff
	for attempt := 0; attempt < t.opts.ReconnectAttempts; attempt++ {
		if t.closed.Load() {
			return
		}
		time.Sleep(backoff)
		backoff *= 2
		c, derr := l.dialOnce()
		if derr == nil {
			t.ctr.reconnects.Add(1)
			l.installReconnected(c)
			return
		}
	}
	l.rmu.Lock()
	l.dead = true
	l.rmu.Unlock()
	l.rcond.Broadcast()
}

// installReconnected swaps in a redialed connection without double-counting
// the reconnect (the caller counted it).
func (l *tcpLink) installReconnected(conn net.Conn) {
	l.mu.Lock()
	l.conn = conn
	l.w = bufio.NewWriterSize(conn, 64<<10)
	l.gen++
	gen := l.gen
	l.mu.Unlock()
	l.rmu.Lock()
	l.dead = false
	l.rmu.Unlock()
	l.rcond.Broadcast()
	l.t.wg.Add(1)
	go l.readLoop(conn, gen)
}

// push appends one received item and wakes the collector.
func (l *tcpLink) push(it tcpItem) {
	l.rmu.Lock()
	l.items = append(l.items, it)
	l.rmu.Unlock()
	l.rcond.Broadcast()
}

// send writes one encoded frame with the write deadline, redialing with
// backoff on failure (dialer side) or waiting briefly for the peer's
// redial (acceptor side). Reports whether the frame was written.
func (l *tcpLink) send(buf []byte) error {
	t := l.t
	deadline := time.Now().Add(t.opts.ExchangeTimeout)
	backoff := t.opts.ReconnectBackoff
	for attempt := 0; ; attempt++ {
		l.mu.Lock()
		conn, w := l.conn, l.w
		if conn != nil {
			conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
			_, err := w.Write(buf)
			if err == nil {
				err = w.Flush()
			}
			conn.SetWriteDeadline(time.Time{})
			if err == nil {
				l.mu.Unlock()
				t.ctr.framesSent.Add(1)
				return nil
			}
			// The write failed: drop the connection; the reader's repair
			// path (or our redial below) re-establishes it.
			conn.Close()
			if l.dialer {
				l.conn, l.w = nil, nil
			}
			l.mu.Unlock()
			t.logf("transport: rank %d write to %d failed: %v", t.rank, l.peer, err)
		} else {
			l.mu.Unlock()
		}
		if t.closed.Load() {
			return fmt.Errorf("transport: endpoint closed")
		}
		if attempt >= t.opts.ReconnectAttempts || time.Now().After(deadline) {
			return fmt.Errorf("transport: rank %d cannot reach rank %d after %d attempts", t.rank, l.peer, attempt)
		}
		if l.dialer {
			if c, err := l.dialOnce(); err == nil {
				t.ctr.reconnects.Add(1)
				l.installReconnected(c)
				continue
			}
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// takeStep blocks until the link's next step-end marker arrives, then
// removes and returns the data messages queued before it (the peer's
// traffic for the current exchange).
func (l *tcpLink) takeStep(deadline time.Time) ([]Message, error) {
	// A timer kicks the cond so the wait honors the deadline.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				l.rcond.Broadcast()
			}
		}
	}()
	l.rmu.Lock()
	defer l.rmu.Unlock()
	for {
		for i, it := range l.items {
			if it.marker {
				msgs := make([]Message, 0, i)
				for _, d := range l.items[:i] {
					msgs = append(msgs, d.msg)
				}
				l.items = append(l.items[:0], l.items[i+1:]...)
				return msgs, nil
			}
		}
		if l.t.closed.Load() {
			return nil, fmt.Errorf("transport: endpoint closed")
		}
		if l.dead {
			return nil, fmt.Errorf("transport: link to rank %d is down", l.peer)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("transport: rank %d timed out waiting for rank %d's step traffic", l.t.rank, l.peer)
		}
		l.rcond.Wait()
	}
}

// Exchange implements Transport: send this rank's messages, mark the step
// end on every link, and collect every peer's step traffic.
func (t *TCP) Exchange(out []Message) ([]Message, error) {
	if t.closed.Load() {
		return nil, fmt.Errorf("transport: exchange on closed endpoint")
	}
	t.xid++
	xid := uint32(t.xid)
	t.ctr.exchanges.Add(1)
	var local []Message
	seq := make([]uint32, len(t.peers))
	for i := range out {
		msg := out[i]
		msg.From = t.rank
		if err := validDest(msg, len(t.peers)); err != nil {
			return nil, err
		}
		if msg.To == t.rank {
			local = append(local, msg)
			continue
		}
		kind, body, err := encodePayload(msg.Payload)
		if err != nil {
			return nil, err
		}
		buf := appendFrame(make([]byte, 0, headerLen+len(body)+trailerLen), frame{
			Tag: msg.Tag, Kind: kind, From: t.rank, To: msg.To, Seq: seq[msg.To], Body: body,
		})
		seq[msg.To]++
		if err := t.links[msg.To].send(buf); err != nil {
			// Real packet loss: surface through the same path as the fault
			// layer's abandoned messages so the engine re-marks the rows.
			t.ctr.sendFailures.Add(1)
			t.failed = append(t.failed, msg)
			t.logf("transport: rank %d abandoning %d-byte message to %d: %v", t.rank, msg.Bytes, msg.To, err)
			continue
		}
		t.ctr.msgsSent.Add(1)
		t.ctr.bytesSent.Add(int64(len(body)))
	}
	for q, l := range t.links {
		if l == nil {
			continue
		}
		marker := appendFrame(nil, frame{Tag: tagStepEnd, From: t.rank, To: q, Seq: xid})
		if err := l.send(marker); err != nil {
			return nil, fmt.Errorf("transport: step marker to rank %d: %w", q, err)
		}
	}
	deadline := time.Now().Add(t.opts.ExchangeTimeout)
	var in []Message
	for q := 0; q < len(t.peers); q++ {
		if q == t.rank {
			in = append(in, local...)
			continue
		}
		msgs, err := t.links[q].takeStep(deadline)
		if err != nil {
			return nil, err
		}
		in = append(in, msgs...)
	}
	return in, nil
}

// Broadcast implements Transport over Exchange.
func (t *TCP) Broadcast(root int, msg Message) (*Message, error) {
	if t.rank == root {
		t.ctr.broadcasts.Add(1)
	}
	return broadcastVia(t, root, msg)
}

// Barrier implements Transport as an empty Exchange.
func (t *TCP) Barrier() error {
	t.ctr.barriers.Add(1)
	_, err := t.Exchange(nil)
	return err
}

// TakeFailed implements Transport.
func (t *TCP) TakeFailed() []Message {
	f := t.failed
	t.failed = nil
	return f
}

// InFlight implements Transport: the TCP backend holds nothing between
// exchanges.
func (t *TCP) InFlight() int { return 0 }

// Stats implements Transport.
func (t *TCP) Stats() Stats { return t.ctr.snapshot() }

// Close implements Transport.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.ln.Close()
	for _, l := range t.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
		l.rcond.Broadcast()
	}
	t.wg.Wait()
	return nil
}
