package transport

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"anytime/internal/logp"
)

// Calibration holds measured LogP parameters for a transport: instead of
// guessing the virtual clock's o/g/L, the engine can measure real round
// trips over the actual message plane and charge those. The procedure is
// the classic LogP microbenchmark suite (Culler et al.):
//
//   - RTT_small: ping-pong of a small payload between ranks 0 and 1. One
//     direction costs o_send + L + o_recv.
//   - o (overhead): the incremental cost of a burst — a round trip that
//     carries K small messages instead of 1 costs (K-1) extra endpoint
//     handling on each side (latency pipelines away), so
//     o = (RTT_burst - RTT_small) / (2 (K-1)), attributing half of each
//     message's handling to each endpoint.
//   - g (gap per byte): ping-pong of a large payload; the extra time over
//     the small round trip is serialization, so
//     g = (RTT_large - RTT_small) / (2 * payload bytes).
//   - L (latency): what remains of the small round trip,
//     L = RTT_small/2 - 2o, clamped at zero.
//
// Medians over many rounds are used throughout: TCP round trips have a
// heavy tail (Nagle, scheduler, GC), and the LogP model wants the
// steady-state cost, not the worst case.
type Calibration struct {
	Samples    int           // ping-pong rounds per measurement
	SmallBytes int           // small-payload size
	LargeBytes int           // large-payload size
	BurstLen   int           // messages per burst round trip
	RTTSmall   time.Duration // median small round trip
	RTTLarge   time.Duration // median large round trip
	RTTBurst   time.Duration // median burst round trip
	O          time.Duration // per-message endpoint overhead
	G          time.Duration // per-byte gap (serialization cost)
	L          time.Duration // wire latency
}

// Model materializes the calibration as LogP parameters for a P-processor
// machine, keeping the default per-op compute cost.
func (c Calibration) Model(p int) logp.Model {
	m := logp.GigabitCluster(p)
	m.L, m.O, m.G = c.L, c.O, c.G
	return m
}

// SaveCalibration writes the calibration as JSON, so a measured
// interconnect model can be fed back into harness runs (aaexperiments
// -model) long after the cluster is gone.
func SaveCalibration(path string, c Calibration) error {
	blob, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadCalibration reads a calibration JSON written by SaveCalibration.
func LoadCalibration(path string) (Calibration, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Calibration{}, err
	}
	var c Calibration
	if err := json.Unmarshal(blob, &c); err != nil {
		return Calibration{}, fmt.Errorf("transport: calibration file %s: %w", path, err)
	}
	return c, nil
}

// String formats the calibration as a one-line report row.
func (c Calibration) String() string {
	return fmt.Sprintf("o=%v g=%v/B L=%v (RTT %dB=%v %dB=%v burst%d=%v, %d rounds)",
		c.O, c.G, c.L, c.SmallBytes, c.RTTSmall, c.LargeBytes, c.RTTLarge,
		c.BurstLen, c.RTTBurst, c.Samples)
}

// Calibrate measures o/g/L over the transport. It is a collective: every
// rank must call it. Ranks 0 and 1 ping-pong; the others participate in
// the exchanges with empty outboxes (their marker traffic is part of what
// a real RC step pays too). rounds <= 0 picks 32.
func Calibrate(t Transport, rounds int) (Calibration, error) {
	if t.Size() < 2 {
		return Calibration{}, fmt.Errorf("transport: calibration needs >= 2 ranks")
	}
	if rounds <= 0 {
		rounds = 32
	}
	const smallBytes = 16
	const burstLen = 32
	largeBytes := 256 << 10
	cal := Calibration{Samples: rounds, SmallBytes: smallBytes, LargeBytes: largeBytes, BurstLen: burstLen}

	var err error
	if cal.RTTSmall, err = pingPong(t, rounds, smallBytes, 1); err != nil {
		return cal, err
	}
	if cal.RTTBurst, err = pingPong(t, rounds, smallBytes, burstLen); err != nil {
		return cal, err
	}
	if cal.RTTLarge, err = pingPong(t, rounds, largeBytes, 1); err != nil {
		return cal, err
	}
	if extra := cal.RTTBurst - cal.RTTSmall; extra > 0 {
		cal.O = extra / time.Duration(2*(burstLen-1))
	}
	if extra := cal.RTTLarge - cal.RTTSmall; extra > 0 {
		// Round to the nearest nanosecond: per-byte gaps on fast links are
		// fractional, and truncation would report a free wire.
		denom := time.Duration(2 * largeBytes)
		cal.G = (extra + denom/2) / denom
	}
	if l := cal.RTTSmall/2 - 2*cal.O; l > 0 {
		cal.L = l
	}
	return cal, nil
}

// pingPong runs `rounds` round trips of `count` messages of `bytes`
// payload from rank 0 to rank 1, echoed back as one message, and returns
// the median round-trip time. Rank 0 measures; its median is broadcast so
// every rank returns the same number.
func pingPong(t Transport, rounds, bytes, count int) (time.Duration, error) {
	payload := make([]byte, bytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	rtts := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		var out []Message
		if t.Rank() == 0 {
			out = make([]Message, count)
			for i := range out {
				out[i] = Message{To: 1, Tag: TagControl, Bytes: bytes, Payload: payload}
			}
		}
		start := time.Now()
		in, err := t.Exchange(out)
		if err != nil {
			return 0, err
		}
		out = nil
		if t.Rank() == 1 {
			if len(in) < count {
				return 0, fmt.Errorf("transport: calibration echo rank got %d/%d pings", len(in), count)
			}
			out = []Message{{To: 0, Tag: TagControl, Bytes: bytes, Payload: payload}}
		}
		if _, err := t.Exchange(out); err != nil {
			return 0, err
		}
		if t.Rank() == 0 {
			rtts = append(rtts, time.Since(start))
		}
	}
	// Rank 0 computed the median; share it so every rank reports the same
	// calibration.
	buf := make([]byte, 8)
	if t.Rank() == 0 {
		putDuration(buf, median(rtts))
	}
	got, err := t.Broadcast(0, Message{Tag: TagControl, Bytes: len(buf), Payload: buf})
	if err != nil {
		return 0, err
	}
	if t.Rank() != 0 {
		buf = got.Payload.([]byte)
	}
	return getDuration(buf), nil
}

func putDuration(b []byte, d time.Duration) {
	v := uint64(d)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getDuration(b []byte) time.Duration {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return time.Duration(v)
}

func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
