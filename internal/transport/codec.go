package transport

import (
	"encoding/binary"
	"fmt"

	"anytime/internal/dv"
	"anytime/internal/graph"
)

// The delta payload codec realizes dv.Delta's accounted wire size as the
// actual bytes on the wire: each delta is a 12-byte header (owner, lo,
// count — int32 little-endian) followed by count 4-byte distances, which
// is exactly Delta.WireBytes(). A boundary-DV message's frame body is the
// concatenation of its deltas.

// EncodedDeltaBytes returns the encoded size of a delta list — the sum of
// the deltas' WireBytes.
func EncodedDeltaBytes(ds []*dv.Delta) int {
	n := 0
	for _, d := range ds {
		n += d.WireBytes()
	}
	return n
}

// appendDeltas serializes a delta list onto dst.
func appendDeltas(dst []byte, ds []*dv.Delta) []byte {
	var u [4]byte
	for _, d := range ds {
		binary.LittleEndian.PutUint32(u[:], uint32(d.Owner))
		dst = append(dst, u[:]...)
		binary.LittleEndian.PutUint32(u[:], uint32(d.Lo))
		dst = append(dst, u[:]...)
		binary.LittleEndian.PutUint32(u[:], uint32(len(d.D)))
		dst = append(dst, u[:]...)
		for _, x := range d.D {
			binary.LittleEndian.PutUint32(u[:], uint32(x))
			dst = append(dst, u[:]...)
		}
	}
	return dst
}

// decodeDeltas parses a frame body produced by appendDeltas. It rejects
// truncated bodies, negative headers, and windows that do not fit an
// int32 column range.
func decodeDeltas(body []byte) ([]*dv.Delta, error) {
	var out []*dv.Delta
	for len(body) > 0 {
		if len(body) < 12 {
			return nil, fmt.Errorf("transport: truncated delta header (%d bytes left)", len(body))
		}
		owner := int32(binary.LittleEndian.Uint32(body[0:]))
		lo := int32(binary.LittleEndian.Uint32(body[4:]))
		count := int32(binary.LittleEndian.Uint32(body[8:]))
		body = body[12:]
		if owner < 0 || lo < 0 || count < 0 || int64(lo)+int64(count) > int64(1)<<31-1 {
			return nil, fmt.Errorf("transport: invalid delta header owner=%d lo=%d count=%d", owner, lo, count)
		}
		if int64(len(body)) < int64(count)*4 {
			return nil, fmt.Errorf("transport: truncated delta body (%d distances claimed, %d bytes left)", count, len(body))
		}
		d := &dv.Delta{Owner: owner, Lo: lo, D: make([]graph.Dist, count)}
		for i := range d.D {
			d.D[i] = graph.Dist(binary.LittleEndian.Uint32(body[i*4:]))
		}
		body = body[count*4:]
		out = append(out, d)
	}
	return out, nil
}

// encodePayload turns a message payload into a frame body plus its kind
// byte. The TCP backend supports delta lists (the boundary-DV plane) and
// opaque bytes (control traffic); anything else is a caller bug.
func encodePayload(payload interface{}) (kind uint8, body []byte, err error) {
	switch p := payload.(type) {
	case nil:
		return payloadRaw, nil, nil
	case []byte:
		return payloadRaw, p, nil
	case []*dv.Delta:
		return payloadDeltas, appendDeltas(make([]byte, 0, EncodedDeltaBytes(p)), p), nil
	default:
		return 0, nil, fmt.Errorf("transport: payload type %T is not wire-encodable", payload)
	}
}

// decodePayload is the inverse of encodePayload.
func decodePayload(kind uint8, body []byte) (interface{}, error) {
	switch kind {
	case payloadRaw:
		return body, nil
	case payloadDeltas:
		ds, err := decodeDeltas(body)
		if err != nil {
			return nil, err
		}
		return ds, nil
	default:
		return nil, fmt.Errorf("transport: unknown payload kind %d", kind)
	}
}
