package transport

import (
	"encoding/binary"
	"fmt"

	"anytime/internal/change"
	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/kernel"
)

// The delta payload codec realizes dv.Delta's accounted wire size as the
// actual bytes on the wire: each delta is a 16-byte header (owner, lo,
// distance count, frontier word count — int32 little-endian) followed by
// count 4-byte distances and then the frontier words (8 bytes each), which
// is exactly Delta.WireBytes(). A boundary-DV message's frame body is the
// concatenation of its deltas.

// EncodedDeltaBytes returns the encoded size of a delta list — the sum of
// the deltas' WireBytes.
func EncodedDeltaBytes(ds []*dv.Delta) int {
	n := 0
	for _, d := range ds {
		n += d.WireBytes()
	}
	return n
}

// appendDeltas serializes a delta list onto dst.
func appendDeltas(dst []byte, ds []*dv.Delta) []byte {
	var u [8]byte
	for _, d := range ds {
		binary.LittleEndian.PutUint32(u[:4], uint32(d.Owner))
		dst = append(dst, u[:4]...)
		binary.LittleEndian.PutUint32(u[:4], uint32(d.Lo))
		dst = append(dst, u[:4]...)
		binary.LittleEndian.PutUint32(u[:4], uint32(len(d.D)))
		dst = append(dst, u[:4]...)
		binary.LittleEndian.PutUint32(u[:4], uint32(len(d.F)))
		dst = append(dst, u[:4]...)
		for _, x := range d.D {
			binary.LittleEndian.PutUint32(u[:4], uint32(x))
			dst = append(dst, u[:4]...)
		}
		for _, w := range d.F {
			binary.LittleEndian.PutUint64(u[:], w)
			dst = append(dst, u[:]...)
		}
	}
	return dst
}

// decodeDeltas parses a frame body produced by appendDeltas. It rejects
// truncated bodies, negative headers, windows that do not fit an int32
// column range, frontier sections wider than the window, and frontier
// sections on an unaligned window (bit positions would not line up with
// window offsets, so a masked sweep could skip live columns).
func decodeDeltas(body []byte) ([]*dv.Delta, error) {
	var out []*dv.Delta
	for len(body) > 0 {
		if len(body) < 16 {
			return nil, fmt.Errorf("transport: truncated delta header (%d bytes left)", len(body))
		}
		owner := int32(binary.LittleEndian.Uint32(body[0:]))
		lo := int32(binary.LittleEndian.Uint32(body[4:]))
		count := int32(binary.LittleEndian.Uint32(body[8:]))
		fwords := int32(binary.LittleEndian.Uint32(body[12:]))
		body = body[16:]
		if owner < 0 || lo < 0 || count < 0 || int64(lo)+int64(count) > int64(1)<<31-1 {
			return nil, fmt.Errorf("transport: invalid delta header owner=%d lo=%d count=%d", owner, lo, count)
		}
		if fwords < 0 || int64(fwords) > (int64(count)+63)>>6 || (fwords > 0 && lo&63 != 0) {
			return nil, fmt.Errorf("transport: invalid delta frontier lo=%d count=%d fwords=%d", lo, count, fwords)
		}
		if int64(len(body)) < int64(count)*4+int64(fwords)*8 {
			return nil, fmt.Errorf("transport: truncated delta body (%d distances + %d frontier words claimed, %d bytes left)", count, fwords, len(body))
		}
		d := &dv.Delta{Owner: owner, Lo: lo, D: make([]graph.Dist, count)}
		for i := range d.D {
			d.D[i] = graph.Dist(binary.LittleEndian.Uint32(body[i*4:]))
		}
		body = body[count*4:]
		if fwords > 0 {
			d.F = make(kernel.Bitset, fwords)
			for i := range d.F {
				d.F[i] = binary.LittleEndian.Uint64(body[i*8:])
			}
			body = body[fwords*8:]
		}
		out = append(out, d)
	}
	return out, nil
}

// The event payload codec ships dynamic-graph change descriptors between
// processes: a u32 event count, then per event a u8 kind byte (1 = vertex
// batch, 2 = edge additions) followed by the kind's body. Only the change
// kinds the cross-process runner applies are wire-encodable; the richer
// kinds (deletions, weight changes, rebalance) stay single-process until
// their distributed reset path exists.

const (
	wireEventBatch    = 1
	wireEventEdgeAdds = 2
)

func appendU32(dst []byte, v uint32) []byte {
	var u [4]byte
	binary.LittleEndian.PutUint32(u[:], v)
	return append(dst, u[:]...)
}

// appendEvents serializes an event list onto dst. Unsupported change kinds
// are an error: silently dropping part of an event stream would desynchronize
// the ranks' graphs.
func appendEvents(dst []byte, evs []change.Event) ([]byte, error) {
	dst = appendU32(dst, uint32(len(evs)))
	for i, ev := range evs {
		switch {
		case ev.Batch != nil:
			b := ev.Batch
			dst = append(dst, wireEventBatch)
			dst = appendU32(dst, uint32(b.NumVertices))
			dst = appendU32(dst, uint32(len(b.Internal)))
			for _, e := range b.Internal {
				dst = appendU32(dst, uint32(e.A))
				dst = appendU32(dst, uint32(e.B))
				dst = appendU32(dst, uint32(e.Weight))
			}
			dst = appendU32(dst, uint32(len(b.External)))
			for _, e := range b.External {
				dst = appendU32(dst, uint32(e.New))
				dst = appendU32(dst, uint32(e.Existing))
				dst = appendU32(dst, uint32(e.Weight))
			}
			dst = appendU32(dst, uint32(len(b.Pending)))
			for _, e := range b.Pending {
				dst = appendU32(dst, uint32(e.New))
				dst = appendU32(dst, uint32(e.EarlierBatchVertex))
				dst = appendU32(dst, uint32(e.Weight))
			}
		case ev.EdgeAdds != nil:
			dst = append(dst, wireEventEdgeAdds)
			dst = appendU32(dst, uint32(len(ev.EdgeAdds)))
			for _, e := range ev.EdgeAdds {
				dst = appendU32(dst, uint32(e.U))
				dst = appendU32(dst, uint32(e.V))
				dst = appendU32(dst, uint32(e.Weight))
			}
		default:
			return nil, fmt.Errorf("transport: event %d has no wire-encodable change kind", i)
		}
	}
	return dst, nil
}

// EncodeEvents serializes an event list with the wire codec — exposed so
// control payloads (the rejoin-go journal) can embed an event stream.
func EncodeEvents(evs []change.Event) ([]byte, error) { return appendEvents(nil, evs) }

// DecodeEvents is the inverse of EncodeEvents.
func DecodeEvents(body []byte) ([]change.Event, error) { return decodeEvents(body) }

// eventReader is a cursor over an encoded event body with sticky error
// handling.
type eventReader struct {
	body []byte
	err  error
}

func (r *eventReader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.body) < 1 {
		r.err = fmt.Errorf("transport: truncated event body")
		return 0
	}
	v := r.body[0]
	r.body = r.body[1:]
	return v
}

func (r *eventReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.body) < 4 {
		r.err = fmt.Errorf("transport: truncated event body")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.body)
	r.body = r.body[4:]
	return v
}

// count reads a list length and bounds it by the remaining bytes (elemBytes
// each) so a corrupt count cannot drive a huge allocation.
func (r *eventReader) count(elemBytes int) int {
	n := r.u32()
	if r.err == nil && int64(n)*int64(elemBytes) > int64(len(r.body)) {
		r.err = fmt.Errorf("transport: event list of %d elements exceeds %d remaining bytes", n, len(r.body))
		return 0
	}
	return int(n)
}

// decodeEvents parses a frame body produced by appendEvents.
func decodeEvents(body []byte) ([]change.Event, error) {
	r := &eventReader{body: body}
	n := r.count(1)
	evs := make([]change.Event, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		switch kind := r.u8(); kind {
		case wireEventBatch:
			b := &change.VertexBatch{NumVertices: int(r.u32())}
			for j, nIn := 0, r.count(12); j < nIn && r.err == nil; j++ {
				b.Internal = append(b.Internal, change.InternalEdge{
					A: int32(r.u32()), B: int32(r.u32()), Weight: graph.Weight(r.u32())})
			}
			for j, nEx := 0, r.count(12); j < nEx && r.err == nil; j++ {
				b.External = append(b.External, change.ExternalEdge{
					New: int32(r.u32()), Existing: int32(r.u32()), Weight: graph.Weight(r.u32())})
			}
			for j, nPe := 0, r.count(12); j < nPe && r.err == nil; j++ {
				b.Pending = append(b.Pending, change.PendingEdge{
					New: int32(r.u32()), EarlierBatchVertex: int32(r.u32()), Weight: graph.Weight(r.u32())})
			}
			evs = append(evs, change.Event{Batch: b})
		case wireEventEdgeAdds:
			nAdd := r.count(12)
			adds := make([]change.EdgeAdd, 0, nAdd)
			for j := 0; j < nAdd && r.err == nil; j++ {
				adds = append(adds, change.EdgeAdd{
					U: int32(r.u32()), V: int32(r.u32()), Weight: graph.Weight(r.u32())})
			}
			evs = append(evs, change.Event{EdgeAdds: adds})
		default:
			return nil, fmt.Errorf("transport: unknown wire event kind %d", kind)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.body) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after event list", len(r.body))
	}
	return evs, nil
}

// encodePayload turns a message payload into a frame body plus its kind
// byte. The TCP backend supports delta lists (the boundary-DV plane),
// dynamic-event lists, and opaque bytes (control traffic); anything else
// is a caller bug.
func encodePayload(payload interface{}) (kind uint8, body []byte, err error) {
	switch p := payload.(type) {
	case nil:
		return payloadRaw, nil, nil
	case []byte:
		return payloadRaw, p, nil
	case []*dv.Delta:
		return payloadDeltas, appendDeltas(make([]byte, 0, EncodedDeltaBytes(p)), p), nil
	case []change.Event:
		body, err := appendEvents(nil, p)
		if err != nil {
			return 0, nil, err
		}
		return payloadEvents, body, nil
	default:
		return 0, nil, fmt.Errorf("transport: payload type %T is not wire-encodable", payload)
	}
}

// decodePayload is the inverse of encodePayload.
func decodePayload(kind uint8, body []byte) (interface{}, error) {
	switch kind {
	case payloadRaw:
		return body, nil
	case payloadDeltas:
		ds, err := decodeDeltas(body)
		if err != nil {
			return nil, err
		}
		return ds, nil
	case payloadEvents:
		evs, err := decodeEvents(body)
		if err != nil {
			return nil, err
		}
		return evs, nil
	default:
		return nil, fmt.Errorf("transport: unknown payload kind %d", kind)
	}
}
