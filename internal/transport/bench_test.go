package transport

import (
	"sync"
	"testing"

	"anytime/internal/dv"
	"anytime/internal/graph"
)

// benchRoundTrip measures one boundary-DV round trip (rank 0 ships a
// delta window, rank 1 echoes it) — the unit cost every RC step pays per
// peer. Both ranks run the same number of collectives per iteration.
func benchRoundTrip(b *testing.B, ts []Transport, width int) {
	ds := []*dv.Delta{{Owner: 1, Lo: 0, D: make([]graph.Dist, width)}}
	for i := range ds[0].D {
		ds[0].D[i] = graph.Dist(i)
	}
	msg := Message{Tag: TagBoundaryDV, Bytes: EncodedDeltaBytes(ds), Payload: ds}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		echo := msg
		echo.To = 0
		for i := 0; i < b.N; i++ {
			if _, err := ts[1].Exchange(nil); err != nil {
				b.Error(err)
				return
			}
			if _, err := ts[1].Exchange([]Message{echo}); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	ping := msg
	ping.To = 1
	b.SetBytes(int64(2 * msg.Bytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ts[0].Exchange([]Message{ping}); err != nil {
			b.Fatal(err)
		}
		if _, err := ts[0].Exchange(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	wg.Wait()
}

func BenchmarkTransportRoundTripInproc(b *testing.B) {
	benchRoundTrip(b, asTransports(NewInprocGroup(2)), 256)
}

func BenchmarkTransportRoundTripTCP(b *testing.B) {
	benchRoundTrip(b, newTCPMesh(b, 2), 256)
}
