package transport

import (
	"strconv"

	"anytime/internal/obs"
)

// RegisterMetrics exposes a transport's counters on an obs Registry in
// Prometheus text form, under the aa_transport_* namespace. Metrics read
// live from the endpoint on every scrape; the backend label distinguishes
// multiple endpoints in one process (e.g. "tcp", "inproc").
func RegisterMetrics(reg *obs.Registry, t Transport, backend string) {
	labels := obs.Labels("backend", backend, "rank", strconv.Itoa(t.Rank()))
	counter := func(name, help string, read func(Stats) int64) {
		reg.CounterFunc("aa_transport_"+name, help, labels, func() float64 {
			return float64(read(t.Stats()))
		})
	}
	counter("messages_sent_total", "Messages handed to the transport for delivery.",
		func(s Stats) int64 { return s.MessagesSent })
	counter("messages_recv_total", "Messages delivered to this endpoint.",
		func(s Stats) int64 { return s.MessagesRecv })
	counter("bytes_sent_total", "Payload bytes sent (dv wire encoding).",
		func(s Stats) int64 { return s.BytesSent })
	counter("bytes_recv_total", "Payload bytes received.",
		func(s Stats) int64 { return s.BytesRecv })
	counter("frames_sent_total", "Wire frames written, including step-end markers (TCP).",
		func(s Stats) int64 { return s.FramesSent })
	counter("frames_recv_total", "Wire frames read and accepted.",
		func(s Stats) int64 { return s.FramesRecv })
	counter("exchanges_total", "Completed Exchange collectives.",
		func(s Stats) int64 { return s.Exchanges })
	counter("broadcasts_total", "Completed Broadcast collectives.",
		func(s Stats) int64 { return s.Broadcasts })
	counter("barriers_total", "Completed Barrier collectives.",
		func(s Stats) int64 { return s.Barriers })
	counter("reconnects_total", "Links re-established after a failure (TCP).",
		func(s Stats) int64 { return s.Reconnects })
	counter("crc_errors_total", "Frames rejected by the receiver CRC.",
		func(s Stats) int64 { return s.CRCErrors })
	counter("send_failures_total", "Messages abandoned after reconnect/resend budgets.",
		func(s Stats) int64 { return s.SendFailures })
	counter("retries_total", "Redial/rewrite attempts taken by the jittered backoff loops (TCP).",
		func(s Stats) int64 { return s.RetryAttempts })
	reg.GaugeFunc("aa_transport_in_flight", "Messages accepted but not yet delivered (delayed or queued).",
		labels, func() float64 { return float64(t.InFlight()) })
}
