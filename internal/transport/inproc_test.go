package transport

import (
	"fmt"
	"sync"
	"testing"

	"anytime/internal/dv"
	"anytime/internal/graph"
)

// runGroup drives one collective body per rank concurrently and returns
// the per-rank results, failing the test on any error.
func runGroup[T any](t testing.TB, ts []Transport, body func(tr Transport) (T, error)) []T {
	t.Helper()
	results := make([]T, len(ts))
	errs := make([]error, len(ts))
	var wg sync.WaitGroup
	for i, tr := range ts {
		wg.Add(1)
		go func(i int, tr Transport) {
			defer wg.Done()
			results[i], errs[i] = body(tr)
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return results
}

func asTransports(group []*Inproc) []Transport {
	ts := make([]Transport, len(group))
	for i, tr := range group {
		ts[i] = tr
	}
	return ts
}

// The Exchange contract: inboxes are ordered by (sender rank, send order),
// with self-addressed messages in the sender's own rank slot.
func TestInprocExchangeOrdering(t *testing.T) {
	const n = 3
	ts := asTransports(NewInprocGroup(n))
	inboxes := runGroup(t, ts, func(tr Transport) ([]Message, error) {
		r := tr.Rank()
		var out []Message
		for q := 0; q < n; q++ { // includes a self message
			for k := 0; k < 2; k++ {
				out = append(out, Message{To: q, Tag: TagControl, Bytes: 3, Payload: []byte{byte(r), byte(q), byte(k)}})
			}
		}
		return tr.Exchange(out)
	})
	for q, in := range inboxes {
		if len(in) != 2*n {
			t.Fatalf("rank %d got %d messages, want %d", q, len(in), 2*n)
		}
		for i, msg := range in {
			wantFrom, wantK := i/2, i%2
			b := msg.Payload.([]byte)
			if msg.From != wantFrom || int(b[0]) != wantFrom || int(b[1]) != q || int(b[2]) != wantK {
				t.Fatalf("rank %d slot %d: from=%d payload=%v (want from=%d k=%d)", q, i, msg.From, b, wantFrom, wantK)
			}
		}
	}
}

func TestInprocBroadcastAndBarrier(t *testing.T) {
	ts := asTransports(NewInprocGroup(4))
	got := runGroup(t, ts, func(tr Transport) (*Message, error) {
		msg, err := tr.Broadcast(2, Message{Tag: TagControl, Bytes: 5, Payload: []byte("hello")})
		if err != nil {
			return nil, err
		}
		return msg, tr.Barrier()
	})
	for r, msg := range got {
		if r == 2 {
			if msg != nil {
				t.Fatalf("root received its own broadcast: %+v", msg)
			}
			continue
		}
		if msg == nil || msg.From != 2 || string(msg.Payload.([]byte)) != "hello" {
			t.Fatalf("rank %d: broadcast copy %+v", r, msg)
		}
	}
	st := ts[0].Stats()
	if st.Broadcasts != 1 || st.Barriers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// An invalid destination errors on the offending rank without wedging the
// group (the collective still completes everywhere else).
func TestInprocInvalidDestination(t *testing.T) {
	ts := asTransports(NewInprocGroup(2))
	errs := runGroup(t, ts, func(tr Transport) (error, error) {
		var out []Message
		if tr.Rank() == 1 {
			out = []Message{{To: 5, Tag: TagControl}}
		}
		_, err := tr.Exchange(out)
		return err, nil
	})
	if errs[0] != nil {
		t.Fatalf("rank 0 errored: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("rank 1's invalid destination not rejected")
	}
}

// scripted fault hook for the Lossy wrapper (fates apply to boundary-DV
// messages only, consumed in fate order).
type scriptHook struct {
	mu     sync.Mutex
	fates  []Fate
	next   int
	budget int
	down   map[int]bool
}

func (h *scriptHook) Fate(xid int64, from, to, msgIndex, attempt int, tag Tag) Fate {
	h.mu.Lock()
	defer h.mu.Unlock()
	if tag != TagBoundaryDV || h.next >= len(h.fates) {
		return FateDeliver
	}
	f := h.fates[h.next]
	h.next++
	return f
}

func (h *scriptHook) Down(p int) bool { return h.down[p] }

func (h *scriptHook) ResendBudget() int {
	if h.budget <= 0 {
		return 8
	}
	return h.budget
}

func boundaryMsg(to int) Message {
	ds := []*dv.Delta{{Owner: 1, Lo: 0, D: []graph.Dist{3, graph.InfDist}}}
	return Message{To: to, Tag: TagBoundaryDV, Bytes: EncodedDeltaBytes(ds), Payload: ds}
}

// The fault plane above the transport: drops retry, delays defer to the
// next exchange (counting as in flight), budget exhaustion surfaces
// through TakeFailed — one recovery path with the backend's own failures.
func TestLossyFaultPlane(t *testing.T) {
	group := NewInprocGroup(2)
	hook := &scriptHook{fates: []Fate{FateDrop, FateDeliver, FateDelay, FateDrop, FateCorrupt}, budget: 2}
	ts := []Transport{WithFaults(group[0], hook), group[1]}

	// Step 1: drop + redeliver the first message; delay the second.
	in := runGroup(t, ts, func(tr Transport) ([]Message, error) {
		if tr.Rank() == 0 {
			return tr.Exchange([]Message{boundaryMsg(1), boundaryMsg(1)})
		}
		return tr.Exchange(nil)
	})
	if len(in[1]) != 1 {
		t.Fatalf("rank 1 got %d messages, want 1 (one delivered, one delayed)", len(in[1]))
	}
	if fl := ts[0].InFlight(); fl != 1 {
		t.Fatalf("InFlight = %d, want 1", fl)
	}
	// Step 2: the delayed message releases; the fresh message exhausts its
	// budget (drop, corrupt) and is abandoned.
	in = runGroup(t, ts, func(tr Transport) ([]Message, error) {
		if tr.Rank() == 0 {
			return tr.Exchange([]Message{boundaryMsg(1)})
		}
		return tr.Exchange(nil)
	})
	if len(in[1]) != 1 {
		t.Fatalf("rank 1 got %d messages, want 1 (the released delay)", len(in[1]))
	}
	if fl := ts[0].InFlight(); fl != 0 {
		t.Fatalf("InFlight = %d after release", fl)
	}
	failed := ts[0].TakeFailed()
	if len(failed) != 1 || failed[0].To != 1 || failed[0].Tag != TagBoundaryDV {
		t.Fatalf("TakeFailed = %+v", failed)
	}
	lossy := ts[0].(*Lossy)
	fs := lossy.FaultStats()
	if fs.Dropped != 2 || fs.Delayed != 1 || fs.Corrupted != 1 || fs.Resends != 2 {
		t.Fatalf("fault stats = %+v", fs)
	}
}

// WithFaults(t, nil) must be the identity.
func TestLossyNilHook(t *testing.T) {
	group := NewInprocGroup(2)
	if tr := WithFaults(group[0], nil); tr != Transport(group[0]) {
		t.Fatalf("nil hook wrapped: %T", tr)
	}
}

func TestCalibrateInproc(t *testing.T) {
	ts := asTransports(NewInprocGroup(2))
	cals := runGroup(t, ts, func(tr Transport) (Calibration, error) {
		return Calibrate(tr, 8)
	})
	if cals[0] != cals[1] {
		t.Fatalf("ranks disagree: %v vs %v", cals[0], cals[1])
	}
	c := cals[0]
	if c.RTTSmall <= 0 || c.RTTLarge <= 0 || c.RTTBurst <= 0 {
		t.Fatalf("non-positive round trips: %v", c)
	}
	if c.O < 0 || c.G < 0 || c.L < 0 {
		t.Fatalf("negative parameters: %v", c)
	}
	m := c.Model(4)
	if m.P != 4 || m.L != c.L || m.O != c.O || m.G != c.G {
		t.Fatalf("model = %+v from %v", m, c)
	}
	if c.String() == "" {
		t.Fatal("empty report row")
	}
}

// Inproc payloads travel by reference: the exact pointer arrives.
func TestInprocPayloadByReference(t *testing.T) {
	ts := asTransports(NewInprocGroup(2))
	ds := []*dv.Delta{{Owner: 4, Lo: 2, D: []graph.Dist{9}}}
	in := runGroup(t, ts, func(tr Transport) ([]Message, error) {
		if tr.Rank() == 0 {
			return tr.Exchange([]Message{{To: 1, Tag: TagBoundaryDV, Bytes: 16, Payload: ds}})
		}
		return tr.Exchange(nil)
	})
	if got := in[1][0].Payload.([]*dv.Delta); got[0] != ds[0] {
		t.Fatal("inproc payload was copied")
	}
}

func TestInprocClosedEndpointErrors(t *testing.T) {
	group := NewInprocGroup(1)
	tr := group[0]
	if _, err := tr.Exchange([]Message{{To: 0, Tag: TagControl}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Exchange(nil); err == nil {
		t.Fatal("exchange on closed endpoint succeeded")
	}
	if err := tr.Barrier(); err == nil {
		t.Fatal("barrier on closed endpoint succeeded")
	}
	_ = fmt.Sprintf("%v", tr.Stats()) // Stats stays safe after Close
}
