// Package transport is the pluggable message plane of the anytime-anywhere
// engine: the boundary-DV / ack / broadcast traffic that internal/cluster
// previously moved through in-process slices is abstracted behind a
// rank-addressed, bulk-synchronous Transport interface with two backends —
// an in-process hub (the default; bit-identical to the pre-transport
// engine) and a stdlib-TCP mesh that runs the same engine as N real OS
// processes, exchanging length-prefixed CRC-guarded binary frames whose
// boundary payloads are the dv.Delta wire format (dv.Delta.WireBytes is
// the actual byte count on the wire).
//
// The fault layer sits *above* the transport: the Lossy wrapper applies
// the same deterministic per-message fates internal/cluster injects, and
// both injected faults and real network failures surface through the same
// TakeFailed channel, so the engine has one recovery path (re-mark the
// affected rows for a full re-ship) regardless of backend.
package transport

import (
	"fmt"
	"sync/atomic"
)

// Tag distinguishes message kinds on the wire. The values mirror the
// cluster simulator's tags (internal/cluster aliases them), plus internal
// control tags used by the TCP framing.
type Tag uint8

const (
	// TagBoundaryDV carries updated boundary distance vectors (RC phase).
	TagBoundaryDV Tag = iota
	// TagNewVertexRow carries a new vertex's distance vector (vertex addition).
	TagNewVertexRow
	// TagMigrateRows carries rows of vertices relocated by repartitioning.
	TagMigrateRows
	// TagControl carries small control/termination information.
	TagControl

	// tagStepEnd marks the end of one rank's traffic for one Exchange (the
	// BSP step framing of the TCP backend; never surfaced to callers).
	tagStepEnd
	// tagHandshake opens a TCP link: it carries the dialer's rank and the
	// protocol version.
	tagHandshake
	// tagHeartbeat is the liveness plane's keepalive: sent every
	// HeartbeatInterval on every active link, consumed by the receiver's
	// last-heard clock, never queued as step traffic.
	tagHeartbeat
	// tagRejoin opens a link from a restarted process: accepted from any
	// rank (unlike tagHandshake) and installed in the pending state until
	// the runner's consensus activates it.
	tagRejoin
	// tagRejoinGo releases an activated rejoiner into the step loop; its
	// body is the coordinator's opaque go payload.
	tagRejoinGo
)

// NumTags is the number of public message kinds (internal framing tags
// excluded) — the size of per-tag stat arrays.
const NumTags = int(TagControl) + 1

// Message is one logical message between ranks. Payload stays in-process
// on the inproc backend (no serialization); on the TCP backend it must be
// a codec-known type ([]*dv.Delta or []byte) and is encoded into the
// frame body. Bytes is the accounted wire size; for delta payloads it
// equals the sum of the deltas' WireBytes, which the TCP frame body
// realizes exactly.
type Message struct {
	From, To int
	Tag      Tag
	Bytes    int
	Payload  interface{}
}

// Fate is the outcome the fault layer assigns to one delivery attempt of
// a message on a lossy link.
type Fate uint8

const (
	// FateDeliver delivers the attempt normally.
	FateDeliver Fate = iota
	// FateDrop loses the attempt in the network; the sender's ack timeout
	// triggers a retransmission (bounded by ResendBudget).
	FateDrop
	// FateDuplicate delivers the message twice (a spurious retransmission
	// after a lost ack). Receivers must be idempotent.
	FateDuplicate
	// FateDelay holds the message in flight; it is delivered at the start
	// of the next Exchange instead of this one.
	FateDelay
	// FateCorrupt flips bits on the wire; the receiver's frame CRC detects
	// it and nacks, triggering a retransmission like FateDrop.
	FateCorrupt
)

// FaultHook is consulted for every delivery attempt of a boundary-DV
// message, making the link lossy in a reproducible way. Implementations
// must be deterministic functions of their arguments; internal/fault
// provides the seeded reference implementation.
type FaultHook interface {
	// Fate returns the outcome of delivery attempt `attempt` (0-based) of
	// the msgIndex-th message from rank `from` to `to` within exchange
	// number xid.
	Fate(xid int64, from, to, msgIndex, attempt int, tag Tag) Fate
	// Down reports whether rank p is currently crashed. Boundary-DV
	// messages addressed to a down rank are dropped without retry.
	Down(p int) bool
	// ResendBudget is the maximum number of delivery attempts per message
	// (>= 1); exhausting it abandons the message, reported via TakeFailed.
	ResendBudget() int
}

// Transport is one rank's attachment to the message plane. All collective
// calls (Exchange, Broadcast, Barrier) must be made by every rank in the
// same order — the bulk-synchronous discipline of the recombination loop.
type Transport interface {
	// Rank is this endpoint's rank in [0, Size).
	Rank() int
	// Size is the number of ranks on the plane.
	Size() int
	// Exchange performs one bulk-synchronous communication step: out holds
	// this rank's outgoing messages (To must be a valid rank; From is
	// overwritten). It returns the messages addressed to this rank, in
	// deterministic (sender rank, send order) order, once every rank's
	// traffic for the step has arrived.
	Exchange(out []Message) ([]Message, error)
	// Broadcast delivers root's message to every other rank (collective:
	// non-roots pass their own rank in msg.From slot-free and receive the
	// copy, nil at the root). It rides the reliable plane.
	Broadcast(root int, msg Message) (*Message, error)
	// Barrier blocks until every rank has arrived.
	Barrier() error
	// TakeFailed returns the messages the plane could not deliver since
	// the last call — abandoned by the fault layer's resend budget or lost
	// to a real network failure after reconnect attempts — and clears the
	// list. The sender re-marks the affected rows for re-shipping.
	TakeFailed() []Message
	// InFlight reports messages accepted but not yet delivered (held by
	// the fault layer's delay fate). The engine must not declare
	// convergence while messages are in flight.
	InFlight() int
	// Stats returns a snapshot of the transport counters.
	Stats() Stats
	// Close tears the endpoint down. Collective calls after Close error.
	Close() error
}

// Stats aggregates transport counters. All fields are cumulative.
type Stats struct {
	MessagesSent  int64
	MessagesRecv  int64
	BytesSent     int64
	BytesRecv     int64
	FramesSent    int64 // wire frames, incl. step-end markers (TCP only)
	FramesRecv    int64
	Exchanges     int64
	Broadcasts    int64
	Barriers      int64
	Reconnects    int64 // links re-established after a failure (TCP only)
	CRCErrors     int64 // frames rejected by the receiver's CRC
	SendFailures  int64 // messages abandoned after reconnect/resend budgets
	RetryAttempts int64 // redial/rewrite attempts taken by the backoff loops (TCP only)
}

// counters is the atomic backing for Stats shared by the backends.
type counters struct {
	msgsSent, msgsRecv                  atomic.Int64
	bytesSent, bytesRecv                atomic.Int64
	framesSent, framesRecv              atomic.Int64
	exchanges, broadcasts, barriers     atomic.Int64
	reconnects, crcErrors, sendFailures atomic.Int64
	retryAttempts                       atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		MessagesSent:  c.msgsSent.Load(),
		MessagesRecv:  c.msgsRecv.Load(),
		BytesSent:     c.bytesSent.Load(),
		BytesRecv:     c.bytesRecv.Load(),
		FramesSent:    c.framesSent.Load(),
		FramesRecv:    c.framesRecv.Load(),
		Exchanges:     c.exchanges.Load(),
		Broadcasts:    c.broadcasts.Load(),
		Barriers:      c.barriers.Load(),
		Reconnects:    c.reconnects.Load(),
		CRCErrors:     c.crcErrors.Load(),
		SendFailures:  c.sendFailures.Load(),
		RetryAttempts: c.retryAttempts.Load(),
	}
}

// validDest checks a message destination against the plane size.
func validDest(msg Message, size int) error {
	if msg.To < 0 || msg.To >= size {
		return fmt.Errorf("transport: message to invalid rank %d (size %d)", msg.To, size)
	}
	return nil
}

// broadcastVia implements the Broadcast collective over Exchange: the root
// sends one copy per peer, everyone else sends nothing, and non-roots
// return the (single) received copy. Backends share it so broadcast
// ordering and failure semantics follow Exchange exactly.
func broadcastVia(t Transport, root int, msg Message) (*Message, error) {
	if root < 0 || root >= t.Size() {
		return nil, fmt.Errorf("transport: broadcast from invalid rank %d", root)
	}
	var out []Message
	if t.Rank() == root {
		for q := 0; q < t.Size(); q++ {
			if q == root {
				continue
			}
			mq := msg
			mq.From, mq.To = root, q
			out = append(out, mq)
		}
	}
	in, err := t.Exchange(out)
	if err != nil {
		return nil, err
	}
	if t.Rank() == root {
		return nil, nil
	}
	for i := range in {
		if in[i].From == root {
			return &in[i], nil
		}
	}
	return nil, fmt.Errorf("transport: rank %d missed broadcast from %d", t.Rank(), root)
}
