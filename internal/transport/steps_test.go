package transport

import (
	"testing"
	"time"
)

// TestTCPStepGossip checks the step-ID plane over real links: MarkStep on
// one endpoint must surface via PeerStep on its peers within a heartbeat
// interval, with zero extra frames beyond the existing keepalives.
func TestTCPStepGossip(t *testing.T) {
	ts, _, _ := newLiveMesh(t, 3, 10*time.Millisecond, time.Second)

	sr0, ok := AsStepReporter(Transport(ts[0]))
	if !ok {
		t.Fatal("TCP endpoint must implement StepReporter")
	}
	sr0.MarkStep(7)
	if got := sr0.PeerStep(0); got != 7 {
		t.Fatalf("own step = %d, want 7", got)
	}
	for _, q := range []int{1, 2} {
		q := q
		waitFor(t, 2*time.Second, "step gossip", func() bool {
			return ts[q].PeerStep(0) == 7
		})
	}

	ts[1].MarkStep(9)
	waitFor(t, 2*time.Second, "rank 1 step at rank 0", func() bool {
		return ts[0].PeerStep(1) == 9
	})
	// Out-of-range peers are harmless.
	if got := ts[0].PeerStep(99); got != 0 {
		t.Fatalf("PeerStep(99) = %d, want 0", got)
	}
}

// TestInprocStepTable checks the in-process backend's shared step table,
// including discovery through the Lossy fault wrapper.
func TestInprocStepTable(t *testing.T) {
	group := NewInprocGroup(3)
	lossy := &Lossy{inner: group[1]}
	sr, ok := AsStepReporter(Transport(lossy))
	if !ok {
		t.Fatal("AsStepReporter must unwrap Lossy to the inproc backend")
	}
	sr.MarkStep(4)
	if got := group[0].PeerStep(1); got != 4 {
		t.Fatalf("hub step table: rank 0 sees rank 1 at %d, want 4", got)
	}
	if got := group[2].PeerStep(2); got != 0 {
		t.Fatalf("unmarked rank must report 0, got %d", got)
	}
}
