package transport

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Hub is the single-process delivery fabric: per-rank mailboxes guarded by
// one mutex. It is the seam internal/cluster's simulator delivers through
// (preserving the order its serialized schedule establishes) and the
// substrate of the inproc Transport backend.
type Hub struct {
	mu    sync.Mutex
	boxes [][]hubMsg
	seq   []uint32 // per-sender sequence within the current step
	ctr   counters

	// Liveness plane (mirrors the TCP backend's): a rank aborted via
	// Inproc.Abort is down — sticky until RejoinInproc + Activate.
	live    []bool
	pending []bool
	events  [][]LivenessEvent // per-rank observation queues
	goCh    []chan []byte     // per-rank rejoin-go channels

	steps []int64 // per-rank step table (the inproc StepReporter plane)
}

type hubMsg struct {
	msg Message
	seq uint32
}

// NewHub creates a hub for n ranks.
func NewHub(n int) *Hub {
	h := &Hub{
		boxes:   make([][]hubMsg, n),
		seq:     make([]uint32, n),
		live:    make([]bool, n),
		pending: make([]bool, n),
		events:  make([][]LivenessEvent, n),
		goCh:    make([]chan []byte, n),
		steps:   make([]int64, n),
	}
	for i := range h.live {
		h.live[i] = true
	}
	return h
}

// Size returns the number of ranks.
func (h *Hub) Size() int { return len(h.boxes) }

// Deliver appends msg to its destination mailbox. Delivery order is the
// call order — the cluster simulator's serialized schedule is preserved
// exactly.
func (h *Hub) Deliver(msg Message) {
	h.mu.Lock()
	s := h.seq[msg.From]
	h.seq[msg.From]++
	h.boxes[msg.To] = append(h.boxes[msg.To], hubMsg{msg: msg, seq: s})
	h.ctr.msgsSent.Add(1)
	h.ctr.msgsRecv.Add(1)
	h.ctr.bytesSent.Add(int64(msg.Bytes))
	h.ctr.bytesRecv.Add(int64(msg.Bytes))
	h.mu.Unlock()
}

// Collect removes and returns rank's pending messages in delivery order.
func (h *Hub) Collect(rank int) []Message {
	h.mu.Lock()
	box := h.boxes[rank]
	h.boxes[rank] = nil
	h.mu.Unlock()
	if len(box) == 0 {
		return nil
	}
	out := make([]Message, len(box))
	for i, m := range box {
		out[i] = m.msg
	}
	return out
}

// collectSorted removes rank's pending messages ordered by (sender rank,
// send order) — the deterministic inbox order of the Transport contract,
// independent of the interleaving of concurrent senders.
func (h *Hub) collectSorted(rank int) []Message {
	h.mu.Lock()
	box := h.boxes[rank]
	h.boxes[rank] = nil
	h.mu.Unlock()
	sort.SliceStable(box, func(i, j int) bool {
		if box[i].msg.From != box[j].msg.From {
			return box[i].msg.From < box[j].msg.From
		}
		return box[i].seq < box[j].seq
	})
	out := make([]Message, len(box))
	for i, m := range box {
		out[i] = m.msg
	}
	return out
}

// Stats returns a snapshot of the hub counters.
func (h *Hub) Stats() Stats { return h.ctr.snapshot() }

// groupBarrier is a reusable cyclic barrier for n in-process ranks.
type groupBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newGroupBarrier(n int) *groupBarrier {
	b := &groupBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *groupBarrier) await() {
	b.mu.Lock()
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// leave removes one member from the barrier (a crashed rank). If every
// remaining member is already waiting, the generation releases — the
// survivors' collective completes without the dead rank.
func (b *groupBarrier) leave() {
	b.mu.Lock()
	b.n--
	if b.count == b.n && b.n > 0 {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// join adds one member back (an activated rejoiner).
func (b *groupBarrier) join() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// Inproc is the in-process Transport backend: n endpoints over one shared
// Hub, synchronized by a group barrier. It carries payloads by reference
// (no serialization), so an engine run over it is bit-identical to the
// pre-transport in-process engine. NewInprocGroup wires a full group; the
// endpoints are used from one goroutine each.
type Inproc struct {
	rank    int
	hub     *Hub
	barrier *groupBarrier
	closed  bool
	failed  []Message // messages addressed to down ranks
}

// NewInprocGroup creates n connected in-process endpoints.
func NewInprocGroup(n int) []*Inproc {
	hub := NewHub(n)
	bar := newGroupBarrier(n)
	group := make([]*Inproc, n)
	for i := range group {
		group[i] = &Inproc{rank: i, hub: hub, barrier: bar}
	}
	return group
}

// Rank implements Transport.
func (t *Inproc) Rank() int { return t.rank }

// Size implements Transport.
func (t *Inproc) Size() int { return t.hub.Size() }

// MarkStep implements StepReporter: in-process, the shared hub table *is*
// the gossip (peers see the step immediately instead of after a heartbeat
// interval — strictly fresher than TCP, same observational contract).
func (t *Inproc) MarkStep(step int64) {
	t.hub.mu.Lock()
	t.hub.steps[t.rank] = step
	t.hub.mu.Unlock()
}

// PeerStep implements StepReporter.
func (t *Inproc) PeerStep(q int) int64 {
	if q < 0 || q >= t.hub.Size() {
		return 0
	}
	t.hub.mu.Lock()
	defer t.hub.mu.Unlock()
	return t.hub.steps[q]
}

// Exchange implements Transport: deposit, barrier (all traffic in), sort
// and collect, barrier (all collected before the next step's deposits).
func (t *Inproc) Exchange(out []Message) ([]Message, error) {
	if t.closed {
		return nil, fmt.Errorf("transport: exchange on closed inproc endpoint %d", t.rank)
	}
	for i := range out {
		out[i].From = t.rank
		if err := validDest(out[i], t.Size()); err != nil {
			// The deposit barrier still must be honored or the group wedges;
			// peers see this rank contribute nothing.
			t.barrier.await()
			t.barrier.await()
			return nil, err
		}
	}
	for _, msg := range out {
		t.hub.mu.Lock()
		down := !t.hub.live[msg.To]
		t.hub.mu.Unlock()
		if down {
			t.hub.ctr.sendFailures.Add(1)
			t.failed = append(t.failed, msg)
			continue
		}
		t.hub.Deliver(msg)
	}
	if t.rank == 0 {
		t.hub.ctr.exchanges.Add(1)
	}
	t.barrier.await()
	in := t.hub.collectSorted(t.rank)
	t.barrier.await()
	return in, nil
}

// Broadcast implements Transport over Exchange.
func (t *Inproc) Broadcast(root int, msg Message) (*Message, error) {
	if t.rank == root {
		t.hub.ctr.broadcasts.Add(1)
	}
	return broadcastVia(t, root, msg)
}

// Barrier implements Transport.
func (t *Inproc) Barrier() error {
	if t.closed {
		return fmt.Errorf("transport: barrier on closed inproc endpoint %d", t.rank)
	}
	if t.rank == 0 {
		t.hub.ctr.barriers.Add(1)
	}
	t.barrier.await()
	return nil
}

// TakeFailed implements Transport: the hub never loses a message to a live
// rank, but messages addressed to a down rank surface here (the same
// channel real delivery failures use on the TCP backend).
func (t *Inproc) TakeFailed() []Message {
	f := t.failed
	t.failed = nil
	return f
}

// InFlight implements Transport.
func (t *Inproc) InFlight() int { return 0 }

// Stats implements Transport.
func (t *Inproc) Stats() Stats { return t.hub.Stats() }

// Close implements Transport. A closed endpoint no longer participates in
// collectives; closing is for teardown after the group is done.
func (t *Inproc) Close() error {
	t.closed = true
	return nil
}

// Abort simulates this rank crashing: it leaves the barrier group (so
// survivors' collectives complete without it), marks itself down on the
// hub, discards its stale inbox, and notifies every live peer. The
// endpoint is unusable afterwards; RejoinInproc creates its replacement.
// Call it between steps (the in-process analogue of SIGKILL is
// cooperative — a goroutine cannot be killed mid-collective).
func (t *Inproc) Abort() {
	h := t.hub
	h.mu.Lock()
	if !h.live[t.rank] {
		h.mu.Unlock()
		return
	}
	h.live[t.rank] = false
	h.boxes[t.rank] = nil
	for q := range h.live {
		if q != t.rank && h.live[q] {
			h.events[q] = append(h.events[q], LivenessEvent{Rank: t.rank, Kind: LiveDown})
		}
	}
	h.mu.Unlock()
	t.barrier.leave()
	t.closed = true
}

// RejoinInproc creates the replacement endpoint for a crashed rank, in the
// pending state: it carries no traffic and is outside the barrier group
// until every live rank activates it at an agreed step boundary, after
// which AwaitRejoinGo returns the coordinator's go payload and the rank
// re-enters the step loop. peer is any live endpoint of the group.
func RejoinInproc(peer *Inproc, rank int) *Inproc {
	h := peer.hub
	h.mu.Lock()
	h.pending[rank] = true
	h.boxes[rank] = nil
	h.goCh[rank] = make(chan []byte, 1)
	h.mu.Unlock()
	return &Inproc{rank: rank, hub: h, barrier: peer.barrier}
}

// TakeLiveness implements Liveness.
func (t *Inproc) TakeLiveness() []LivenessEvent {
	h := t.hub
	h.mu.Lock()
	evs := h.events[t.rank]
	h.events[t.rank] = nil
	h.mu.Unlock()
	return evs
}

// PeerDown implements Liveness (a pending rejoiner is still down — it
// carries no traffic until activated).
func (t *Inproc) PeerDown(q int) bool {
	if q == t.rank || q < 0 || q >= t.hub.Size() {
		return false
	}
	h := t.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.live[q]
}

// PendingRejoin implements Liveness.
func (t *Inproc) PendingRejoin(q int) bool {
	if q < 0 || q >= t.hub.Size() {
		return false
	}
	h := t.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pending[q]
}

// Activate implements Liveness: the first caller flips the pending rank
// live and rejoins it to the barrier group; every live rank observes the
// transition in its own event queue. Idempotent across callers.
func (t *Inproc) Activate(q int) {
	if q < 0 || q >= t.hub.Size() {
		return
	}
	h := t.hub
	h.mu.Lock()
	first := h.pending[q]
	if first {
		h.pending[q] = false
		h.live[q] = true
		for p := range h.live {
			if p != q && h.live[p] {
				h.events[p] = append(h.events[p], LivenessEvent{Rank: q, Kind: LiveRejoin})
			}
		}
	}
	h.mu.Unlock()
	if first {
		t.barrier.join()
	}
}

// HeartbeatAge implements Liveness: in-process peers are always fresh.
func (t *Inproc) HeartbeatAge(int) time.Duration { return 0 }

// SendRejoinGo implements Liveness.
func (t *Inproc) SendRejoinGo(q int, payload []byte) error {
	if q < 0 || q >= t.hub.Size() {
		return fmt.Errorf("transport: rejoin-go to invalid rank %d", q)
	}
	h := t.hub
	h.mu.Lock()
	ch := h.goCh[q]
	h.mu.Unlock()
	if ch == nil {
		return fmt.Errorf("transport: rank %d has no rejoin endpoint", q)
	}
	select {
	case ch <- payload:
	default:
	}
	return nil
}

// AwaitRejoinGo implements RejoinWaiter for an endpoint created by
// RejoinInproc.
func (t *Inproc) AwaitRejoinGo(timeout time.Duration) ([]byte, error) {
	h := t.hub
	h.mu.Lock()
	ch := h.goCh[t.rank]
	h.mu.Unlock()
	if ch == nil {
		return nil, fmt.Errorf("transport: endpoint was not created with RejoinInproc")
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	select {
	case payload := <-ch:
		return payload, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("transport: rank %d not released into the group within %v", t.rank, timeout)
	}
}
