package transport

import (
	"fmt"
	"sort"
	"sync"
)

// Hub is the single-process delivery fabric: per-rank mailboxes guarded by
// one mutex. It is the seam internal/cluster's simulator delivers through
// (preserving the order its serialized schedule establishes) and the
// substrate of the inproc Transport backend.
type Hub struct {
	mu    sync.Mutex
	boxes [][]hubMsg
	seq   []uint32 // per-sender sequence within the current step
	ctr   counters
}

type hubMsg struct {
	msg Message
	seq uint32
}

// NewHub creates a hub for n ranks.
func NewHub(n int) *Hub {
	return &Hub{boxes: make([][]hubMsg, n), seq: make([]uint32, n)}
}

// Size returns the number of ranks.
func (h *Hub) Size() int { return len(h.boxes) }

// Deliver appends msg to its destination mailbox. Delivery order is the
// call order — the cluster simulator's serialized schedule is preserved
// exactly.
func (h *Hub) Deliver(msg Message) {
	h.mu.Lock()
	s := h.seq[msg.From]
	h.seq[msg.From]++
	h.boxes[msg.To] = append(h.boxes[msg.To], hubMsg{msg: msg, seq: s})
	h.ctr.msgsSent.Add(1)
	h.ctr.msgsRecv.Add(1)
	h.ctr.bytesSent.Add(int64(msg.Bytes))
	h.ctr.bytesRecv.Add(int64(msg.Bytes))
	h.mu.Unlock()
}

// Collect removes and returns rank's pending messages in delivery order.
func (h *Hub) Collect(rank int) []Message {
	h.mu.Lock()
	box := h.boxes[rank]
	h.boxes[rank] = nil
	h.mu.Unlock()
	if len(box) == 0 {
		return nil
	}
	out := make([]Message, len(box))
	for i, m := range box {
		out[i] = m.msg
	}
	return out
}

// collectSorted removes rank's pending messages ordered by (sender rank,
// send order) — the deterministic inbox order of the Transport contract,
// independent of the interleaving of concurrent senders.
func (h *Hub) collectSorted(rank int) []Message {
	h.mu.Lock()
	box := h.boxes[rank]
	h.boxes[rank] = nil
	h.mu.Unlock()
	sort.SliceStable(box, func(i, j int) bool {
		if box[i].msg.From != box[j].msg.From {
			return box[i].msg.From < box[j].msg.From
		}
		return box[i].seq < box[j].seq
	})
	out := make([]Message, len(box))
	for i, m := range box {
		out[i] = m.msg
	}
	return out
}

// Stats returns a snapshot of the hub counters.
func (h *Hub) Stats() Stats { return h.ctr.snapshot() }

// groupBarrier is a reusable cyclic barrier for n in-process ranks.
type groupBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newGroupBarrier(n int) *groupBarrier {
	b := &groupBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *groupBarrier) await() {
	b.mu.Lock()
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Inproc is the in-process Transport backend: n endpoints over one shared
// Hub, synchronized by a group barrier. It carries payloads by reference
// (no serialization), so an engine run over it is bit-identical to the
// pre-transport in-process engine. NewInprocGroup wires a full group; the
// endpoints are used from one goroutine each.
type Inproc struct {
	rank    int
	hub     *Hub
	barrier *groupBarrier
	closed  bool
}

// NewInprocGroup creates n connected in-process endpoints.
func NewInprocGroup(n int) []*Inproc {
	hub := NewHub(n)
	bar := newGroupBarrier(n)
	group := make([]*Inproc, n)
	for i := range group {
		group[i] = &Inproc{rank: i, hub: hub, barrier: bar}
	}
	return group
}

// Rank implements Transport.
func (t *Inproc) Rank() int { return t.rank }

// Size implements Transport.
func (t *Inproc) Size() int { return t.hub.Size() }

// Exchange implements Transport: deposit, barrier (all traffic in), sort
// and collect, barrier (all collected before the next step's deposits).
func (t *Inproc) Exchange(out []Message) ([]Message, error) {
	if t.closed {
		return nil, fmt.Errorf("transport: exchange on closed inproc endpoint %d", t.rank)
	}
	for i := range out {
		out[i].From = t.rank
		if err := validDest(out[i], t.Size()); err != nil {
			// The deposit barrier still must be honored or the group wedges;
			// peers see this rank contribute nothing.
			t.barrier.await()
			t.barrier.await()
			return nil, err
		}
	}
	for _, msg := range out {
		t.hub.Deliver(msg)
	}
	if t.rank == 0 {
		t.hub.ctr.exchanges.Add(1)
	}
	t.barrier.await()
	in := t.hub.collectSorted(t.rank)
	t.barrier.await()
	return in, nil
}

// Broadcast implements Transport over Exchange.
func (t *Inproc) Broadcast(root int, msg Message) (*Message, error) {
	if t.rank == root {
		t.hub.ctr.broadcasts.Add(1)
	}
	return broadcastVia(t, root, msg)
}

// Barrier implements Transport.
func (t *Inproc) Barrier() error {
	if t.closed {
		return fmt.Errorf("transport: barrier on closed inproc endpoint %d", t.rank)
	}
	if t.rank == 0 {
		t.hub.ctr.barriers.Add(1)
	}
	t.barrier.await()
	return nil
}

// TakeFailed implements Transport: the in-process hub never loses a
// message.
func (t *Inproc) TakeFailed() []Message { return nil }

// InFlight implements Transport.
func (t *Inproc) InFlight() int { return 0 }

// Stats implements Transport.
func (t *Inproc) Stats() Stats { return t.hub.Stats() }

// Close implements Transport. A closed endpoint no longer participates in
// collectives; closing is for teardown after the group is done.
func (t *Inproc) Close() error {
	t.closed = true
	return nil
}
