package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"anytime/internal/dv"
	"anytime/internal/graph"
)

// freePorts reserves n distinct localhost ports by listening on :0 and
// closing; the small window before reuse is acceptable in tests.
func freePorts(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// newTCPMesh brings up an n-rank mesh inside this process (one endpoint
// per goroutine, real sockets on localhost).
func newTCPMesh(t testing.TB, n int) []Transport {
	t.Helper()
	addrs := freePorts(t, n)
	peers := make([]Peer, n)
	for i, a := range addrs {
		peers[i] = Peer{Rank: i, Addr: a}
	}
	ts := make([]Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := NewTCP(peers, i, TCPOptions{MeshTimeout: 10 * time.Second, ExchangeTimeout: 10 * time.Second})
			ts[i], errs[i] = tr, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d mesh setup: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts
}

// The TCP inbox must follow the same (sender rank, send order) contract as
// inproc, with boundary-DV payloads decoding back to equal delta lists.
func TestTCPExchangeParityWithInproc(t *testing.T) {
	const n = 3
	traffic := func(r int) []Message {
		var out []Message
		for q := 0; q < n; q++ {
			for k := 0; k < 2; k++ {
				ds := []*dv.Delta{{Owner: int32(10*r + q), Lo: int32(k), D: []graph.Dist{graph.Dist(r), graph.Dist(q), graph.InfDist}}}
				out = append(out, Message{To: q, Tag: TagBoundaryDV, Bytes: EncodedDeltaBytes(ds), Payload: ds})
			}
		}
		return out
	}
	collect := func(ts []Transport) [][]Message {
		return runGroup(t, ts, func(tr Transport) ([]Message, error) {
			return tr.Exchange(traffic(tr.Rank()))
		})
	}
	tcpIn := collect(newTCPMesh(t, n))
	inprocIn := collect(asTransports(NewInprocGroup(n)))
	for q := 0; q < n; q++ {
		if len(tcpIn[q]) != len(inprocIn[q]) {
			t.Fatalf("rank %d: tcp %d messages, inproc %d", q, len(tcpIn[q]), len(inprocIn[q]))
		}
		for i := range tcpIn[q] {
			a, b := tcpIn[q][i], inprocIn[q][i]
			if a.From != b.From || a.Tag != b.Tag {
				t.Fatalf("rank %d slot %d: tcp (from %d tag %d) vs inproc (from %d tag %d)",
					q, i, a.From, a.Tag, b.From, b.Tag)
			}
			da, db := a.Payload.([]*dv.Delta), b.Payload.([]*dv.Delta)
			if len(da) != len(db) {
				t.Fatalf("rank %d slot %d: %d vs %d deltas", q, i, len(da), len(db))
			}
			for j := range da {
				if da[j].Owner != db[j].Owner || da[j].Lo != db[j].Lo || len(da[j].D) != len(db[j].D) {
					t.Fatalf("rank %d slot %d delta %d: %+v vs %+v", q, i, j, da[j], db[j])
				}
				for c := range da[j].D {
					if da[j].D[c] != db[j].D[c] {
						t.Fatalf("rank %d slot %d delta %d col %d: %d vs %d", q, i, j, c, da[j].D[c], db[j].D[c])
					}
				}
			}
		}
	}
}

func TestTCPBroadcastAndStats(t *testing.T) {
	ts := newTCPMesh(t, 2)
	got := runGroup(t, ts, func(tr Transport) (*Message, error) {
		if err := tr.Barrier(); err != nil {
			return nil, err
		}
		return tr.Broadcast(0, Message{Tag: TagControl, Bytes: 4, Payload: []byte("ping")})
	})
	if got[0] != nil {
		t.Fatalf("root got %+v", got[0])
	}
	if got[1] == nil || string(got[1].Payload.([]byte)) != "ping" {
		t.Fatalf("rank 1 got %+v", got[1])
	}
	st0 := ts[0].Stats()
	if st0.FramesSent == 0 || st0.MessagesSent != 1 || st0.Broadcasts != 1 || st0.Barriers != 1 {
		t.Fatalf("rank 0 stats = %+v", st0)
	}
	st1 := ts[1].Stats()
	if st1.MessagesRecv != 1 || st1.BytesRecv != 4 || st1.CRCErrors != 0 {
		t.Fatalf("rank 1 stats = %+v", st1)
	}
}

// Killing the connection under the mesh must repair transparently: the
// dialer side redials with backoff and the next exchange completes.
func TestTCPReconnectAfterLinkFailure(t *testing.T) {
	ts := newTCPMesh(t, 2)
	runGroup(t, ts, func(tr Transport) (int, error) {
		_, err := tr.Exchange([]Message{{To: 1 - tr.Rank(), Tag: TagControl, Bytes: 1, Payload: []byte{1}}})
		return 0, err
	})
	// Sever the link from the acceptor side (rank 0 accepted rank 1's
	// dial); rank 1's reader redials.
	l := ts[0].(*TCP).links[1]
	l.mu.Lock()
	l.conn.Close()
	l.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ts[0].Stats().Reconnects+ts[1].Stats().Reconnects > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no reconnect observed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	in := runGroup(t, ts, func(tr Transport) ([]Message, error) {
		return tr.Exchange([]Message{{To: 1 - tr.Rank(), Tag: TagControl, Bytes: 1, Payload: []byte{2}}})
	})
	for r := 0; r < 2; r++ {
		if len(in[r]) != 1 || in[r][0].Payload.([]byte)[0] != 2 {
			t.Fatalf("rank %d after reconnect: %+v", r, in[r])
		}
	}
}

// A corrupt frame on the wire is counted, skipped, and the frames after it
// still deliver (the length prefix keeps the stream in sync).
func TestTCPReadLoopSkipsCorruptFrame(t *testing.T) {
	tt := &TCP{rank: 0, peers: []Peer{{0, ""}, {1, ""}}, opts: TCPOptions{}.withDefaults(), links: make([]*tcpLink, 2)}
	l := &tcpLink{t: tt, peer: 1}
	l.rcond = sync.NewCond(&l.rmu)
	tt.links[1] = l
	ours, theirs := net.Pipe()
	tt.wg.Add(1)
	go l.readLoop(ours, 0)

	corrupt := appendFrame(nil, frame{Tag: TagControl, From: 1, To: 0, Body: []byte("bad")})
	corrupt[len(corrupt)-1] ^= 0xFF
	good := appendFrame(nil, frame{Tag: TagControl, From: 1, To: 0, Seq: 1, Body: []byte("good")})
	marker := appendFrame(nil, frame{Tag: tagStepEnd, From: 1, To: 0, Seq: 1})
	go func() {
		theirs.Write(corrupt)
		theirs.Write(good)
		theirs.Write(marker)
	}()
	msgs, err := l.takeStep(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload.([]byte)) != "good" {
		t.Fatalf("messages = %+v", msgs)
	}
	if got := tt.ctr.crcErrors.Load(); got != 1 {
		t.Fatalf("crcErrors = %d, want 1", got)
	}
	tt.closed.Store(true)
	theirs.Close()
	ours.Close()
	tt.wg.Wait()
}

func TestTCPManifestValidation(t *testing.T) {
	if _, err := NewTCP([]Peer{{0, "x"}}, 0, TCPOptions{}); err == nil {
		t.Fatal("1-peer manifest accepted")
	}
	if _, err := NewTCP([]Peer{{0, "x"}, {1, "y"}}, 5, TCPOptions{}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := NewTCP([]Peer{{1, "x"}, {0, "y"}}, 0, TCPOptions{}); err == nil {
		t.Fatal("unsorted manifest accepted")
	}
}

func TestTCPCalibrate(t *testing.T) {
	ts := newTCPMesh(t, 2)
	cals := runGroup(t, ts, func(tr Transport) (Calibration, error) {
		return Calibrate(tr, 4)
	})
	if cals[0] != cals[1] {
		t.Fatalf("ranks disagree: %v vs %v", cals[0], cals[1])
	}
	if cals[0].RTTSmall <= 0 {
		t.Fatalf("calibration = %v", cals[0])
	}
}
