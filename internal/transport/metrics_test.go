package transport

import (
	"strings"
	"testing"

	"anytime/internal/obs"
)

func TestRegisterMetrics(t *testing.T) {
	ts := asTransports(NewInprocGroup(2))
	reg := obs.NewRegistry()
	RegisterMetrics(reg, ts[0], "inproc")

	runGroup(t, ts, func(tr Transport) (int, error) {
		if tr.Rank() == 0 {
			_, err := tr.Exchange([]Message{{To: 1, Tag: TagControl, Bytes: 3, Payload: []byte("abc")}})
			return 0, err
		}
		_, err := tr.Exchange(nil)
		return 0, err
	})

	text := reg.Render()
	for _, want := range []string{
		`aa_transport_exchanges_total{backend="inproc",rank="0"} 1`,
		`aa_transport_messages_sent_total{backend="inproc",rank="0"} 1`,
		`aa_transport_bytes_sent_total{backend="inproc",rank="0"} 3`,
		`aa_transport_in_flight{backend="inproc",rank="0"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered metrics missing %q:\n%s", want, text)
		}
	}
}
