package transport

import "sync/atomic"

// Lossy layers the deterministic fault plane *above* any Transport
// backend: every outgoing boundary-DV message consults the FaultHook for
// its fate, exactly as internal/cluster's simulated lossy links do, so an
// engine run over TCP can be subjected to the same seeded drop/dup/
// delay/corrupt chaos as the in-process simulator — and both injected
// faults and the backend's real delivery failures surface through one
// TakeFailed channel, driving one recovery path (re-mark the rows for a
// full re-ship).
//
// Corrupt fates are resolved sender-side: on a real wire the receiver's
// frame CRC would reject the frame and nack, so the observable effect —
// a detected loss followed by a resend — is identical, and it stays
// deterministic (the fate schedule, not the network, decides).
type Lossy struct {
	inner Transport
	hook  FaultHook

	xid     int64
	delayed []Message // held by FateDelay until the next Exchange
	failed  []Message // abandoned after the resend budget

	// Fault counters (atomic: Stats may race with an Exchange).
	resends, dropped, duplicated, delayedN, corrupted, droppedDown atomic.Int64
}

// LossyStats are the fault-plane counters of a Lossy transport.
type LossyStats struct {
	Resends     int64
	Dropped     int64
	Duplicated  int64
	Delayed     int64
	Corrupted   int64
	Failed      int64
	DroppedDown int64
}

// WithFaults wraps t with the seeded fault plane. A nil hook returns t
// unchanged.
func WithFaults(t Transport, hook FaultHook) Transport {
	if hook == nil {
		return t
	}
	return &Lossy{inner: t, hook: hook}
}

// Rank implements Transport.
func (l *Lossy) Rank() int { return l.inner.Rank() }

// Size implements Transport.
func (l *Lossy) Size() int { return l.inner.Size() }

// Exchange implements Transport: messages released from a previous delay
// go first (they are older), then this step's traffic filtered through
// the per-message fate schedule.
func (l *Lossy) Exchange(out []Message) ([]Message, error) {
	l.xid++
	send := make([]Message, 0, len(out)+len(l.delayed))
	for _, msg := range l.delayed {
		if l.hook.Down(msg.To) {
			l.droppedDown.Add(1)
			continue
		}
		send = append(send, msg)
	}
	l.delayed = l.delayed[:0]
	budget := l.hook.ResendBudget()
	if budget < 1 {
		budget = 1
	}
	for mi, msg := range out {
		msg.From = l.Rank()
		if msg.Tag != TagBoundaryDV || msg.To == msg.From {
			send = append(send, msg)
			continue
		}
		if l.hook.Down(msg.To) {
			l.droppedDown.Add(1)
			continue
		}
		delivered := false
		for attempt := 0; attempt < budget; attempt++ {
			if attempt > 0 {
				l.resends.Add(1)
			}
			switch l.hook.Fate(l.xid, msg.From, msg.To, mi, attempt, msg.Tag) {
			case FateDeliver:
				send = append(send, msg)
				delivered = true
			case FateDuplicate:
				l.duplicated.Add(1)
				send = append(send, msg, msg)
				delivered = true
			case FateDelay:
				l.delayedN.Add(1)
				l.delayed = append(l.delayed, msg)
				delivered = true
			case FateDrop:
				l.dropped.Add(1)
			case FateCorrupt:
				l.corrupted.Add(1)
			}
			if delivered {
				break
			}
		}
		if !delivered {
			l.failed = append(l.failed, msg)
		}
	}
	return l.inner.Exchange(send)
}

// Broadcast implements Transport: the broadcast plane is reliable (as in
// the simulator, fates only ever apply to TagBoundaryDV, which the hook
// itself enforces), so it passes through.
func (l *Lossy) Broadcast(root int, msg Message) (*Message, error) {
	return l.inner.Broadcast(root, msg)
}

// Barrier implements Transport.
func (l *Lossy) Barrier() error { return l.inner.Barrier() }

// TakeFailed implements Transport: fate-abandoned messages plus whatever
// the backend itself could not deliver.
func (l *Lossy) TakeFailed() []Message {
	f := append(l.failed, l.inner.TakeFailed()...)
	l.failed = nil
	return f
}

// InFlight implements Transport: delay-held messages count as in flight.
func (l *Lossy) InFlight() int { return len(l.delayed) + l.inner.InFlight() }

// Stats implements Transport (the backend's counters; fault counters are
// separate, see FaultStats).
func (l *Lossy) Stats() Stats { return l.inner.Stats() }

// FaultStats returns the fault-plane counters.
func (l *Lossy) FaultStats() LossyStats {
	return LossyStats{
		Resends:     l.resends.Load(),
		Dropped:     l.dropped.Load(),
		Duplicated:  l.duplicated.Load(),
		Delayed:     l.delayedN.Load(),
		Corrupted:   l.corrupted.Load(),
		Failed:      int64(len(l.failed)),
		DroppedDown: l.droppedDown.Load(),
	}
}

// Close implements Transport. Messages still held in flight by the delay
// fate are drained into the failed list first — a shutdown must not
// silently drop undelivered deltas; callers can still collect them with
// TakeFailed after Close.
func (l *Lossy) Close() error {
	l.failed = append(l.failed, l.delayed...)
	l.delayed = nil
	return l.inner.Close()
}
