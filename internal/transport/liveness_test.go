package transport

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"anytime/internal/change"
)

func TestJitterBackoffBoundedAndDeterministic(t *testing.T) {
	base, cap_ := 10*time.Millisecond, 200*time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		d := jitterBackoff(attempt, base, cap_, 42)
		full := base << attempt
		if full > cap_ || full <= 0 {
			full = cap_
		}
		if d < full/2 || d >= full {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, full/2, full)
		}
		if d != jitterBackoff(attempt, base, cap_, 42) {
			t.Fatalf("attempt %d: backoff not deterministic for a fixed seed", attempt)
		}
	}
	if jitterBackoff(3, base, cap_, 1) == jitterBackoff(3, base, cap_, 2) {
		t.Fatal("different seeds produced identical jitter (splitmix collapse)")
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	evs := []change.Event{
		{Batch: &change.VertexBatch{
			NumVertices: 3,
			Internal:    []change.InternalEdge{{A: 0, B: 2, Weight: 3}},
			External:    []change.ExternalEdge{{New: 1, Existing: 40, Weight: 1}, {New: 2, Existing: 7, Weight: 2}},
			Pending:     []change.PendingEdge{{New: 0, EarlierBatchVertex: 5, Weight: 4}},
		}},
		{EdgeAdds: []change.EdgeAdd{{U: 3, V: 9, Weight: 2}, {U: 1, V: 2, Weight: 1}}},
	}
	body, err := EncodeEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvents(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("decoded %d events, want %d", len(got), len(evs))
	}
	b, want := got[0].Batch, evs[0].Batch
	if b == nil || b.NumVertices != want.NumVertices ||
		len(b.Internal) != 1 || b.Internal[0] != want.Internal[0] ||
		len(b.External) != 2 || b.External[1] != want.External[1] ||
		len(b.Pending) != 1 || b.Pending[0] != want.Pending[0] {
		t.Fatalf("batch mismatch: %+v vs %+v", b, want)
	}
	if len(got[1].EdgeAdds) != 2 || got[1].EdgeAdds[0] != evs[1].EdgeAdds[0] || got[1].EdgeAdds[1] != evs[1].EdgeAdds[1] {
		t.Fatalf("edge-adds mismatch: %+v", got[1].EdgeAdds)
	}
}

func TestEventCodecRejectsUnsupportedAndCorrupt(t *testing.T) {
	if _, err := EncodeEvents([]change.Event{{EdgeDels: []change.EdgeDel{{U: 1, V: 2}}}}); err == nil {
		t.Fatal("encoding a deletion event should fail (not wire-encodable)")
	}
	body, err := EncodeEvents([]change.Event{{EdgeAdds: []change.EdgeAdd{{U: 1, V: 2, Weight: 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEvents(body[:len(body)-3]); err == nil {
		t.Fatal("truncated event body should be rejected")
	}
	if _, err := DecodeEvents(append(append([]byte(nil), body...), 0xFF)); err == nil {
		t.Fatal("trailing garbage should be rejected")
	}
	huge := []byte{4, 0, 0, 0} // claims 4 events, provides none
	if _, err := DecodeEvents(huge); err == nil {
		t.Fatal("overlong count should be rejected")
	}
}

// newLiveMesh brings up an n-rank heartbeat-enabled TCP mesh and returns
// the endpoints plus the peer table (needed to rejoin a rank later).
func newLiveMesh(t testing.TB, n int, interval, timeout time.Duration) ([]*TCP, []Peer, TCPOptions) {
	t.Helper()
	addrs := freePorts(t, n)
	peers := make([]Peer, n)
	for i, a := range addrs {
		peers[i] = Peer{Rank: i, Addr: a}
	}
	opts := TCPOptions{
		MeshTimeout: 10 * time.Second, ExchangeTimeout: 10 * time.Second,
		HeartbeatInterval: interval, HeartbeatTimeout: timeout,
		ReconnectAttempts: 2, ReconnectBackoff: 5 * time.Millisecond,
	}
	ts := make([]*TCP, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts[i], errs[i] = NewTCP(peers, i, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d mesh setup: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts, peers, opts
}

// waitFor polls a condition with a deadline — liveness transitions are
// asynchronous (heartbeat loops, accept loops).
func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A silent peer must be marked down after the heartbeat timeout, the death
// must surface exactly once as a LiveDown event, and the down state must be
// sticky: resumed heartbeats alone (no rejoin handshake) never revive it.
func TestTCPHeartbeatTimeoutIsSticky(t *testing.T) {
	ts, _, _ := newLiveMesh(t, 2, 20*time.Millisecond, 100*time.Millisecond)
	ts[1].hbPaused.Store(true)
	waitFor(t, 5*time.Second, "rank 0 to mark rank 1 down", func() bool { return ts[0].PeerDown(1) })
	waitFor(t, time.Second, "LiveDown event", func() bool {
		for _, ev := range ts[0].TakeLiveness() {
			if ev.Rank == 1 && ev.Kind == LiveDown {
				return true
			}
		}
		return false
	})
	if age := ts[0].HeartbeatAge(1); age < 100*time.Millisecond {
		t.Fatalf("heartbeat age %v below the timeout that fired", age)
	}
	// The flap: heartbeats resume, but a down link only revives through the
	// rejoin handshake.
	ts[1].hbPaused.Store(false)
	time.Sleep(300 * time.Millisecond)
	if !ts[0].PeerDown(1) {
		t.Fatal("down state not sticky: resumed heartbeats revived the link without a rejoin")
	}
	if evs := ts[0].TakeLiveness(); len(evs) != 0 {
		t.Fatalf("flapping produced %d extra liveness events: %+v", len(evs), evs)
	}
}

// Full TCP rejoin protocol: kill a rank, survivors detect it, a fresh
// process re-enters with RejoinTCP, every survivor sees it pending,
// activation revives the links, the go payload flows, and a three-way
// exchange works again.
func TestTCPRejoinHandshakeAndActivate(t *testing.T) {
	ts, peers, opts := newLiveMesh(t, 3, 20*time.Millisecond, 100*time.Millisecond)
	ts[2].Close()
	waitFor(t, 5*time.Second, "survivors to mark rank 2 down", func() bool {
		return ts[0].PeerDown(2) && ts[1].PeerDown(2)
	})

	// Survivors keep exchanging while rank 2 is down: sends to it fail over
	// to TakeFailed, the exchange itself succeeds. (Exchange is a
	// collective — both survivors run it concurrently.)
	var dwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		dwg.Add(1)
		go func(r int) {
			defer dwg.Done()
			if _, err := ts[r].Exchange([]Message{
				{To: 1 - r, Tag: TagControl, Bytes: 1, Payload: []byte{byte(r)}},
				{To: 2, Tag: TagControl, Bytes: 1, Payload: []byte{0xEE}},
			}); err != nil {
				t.Errorf("survivor %d degraded exchange: %v", r, err)
			}
		}(r)
	}
	dwg.Wait()
	for r := 0; r < 2; r++ {
		failed := ts[r].TakeFailed()
		if len(failed) != 1 || failed[0].To != 2 {
			t.Fatalf("survivor %d: want 1 failed message to rank 2, got %+v", r, failed)
		}
	}

	nt, err := RejoinTCP(peers, 2, opts)
	if err != nil {
		t.Fatalf("rejoin endpoint: %v", err)
	}
	defer nt.Close()
	waitFor(t, 5*time.Second, "survivors to see rank 2 pending", func() bool {
		return ts[0].PendingRejoin(2) && ts[1].PendingRejoin(2)
	})
	if !ts[0].PeerDown(2) {
		t.Fatal("pending rank must still read as down (carries no step traffic)")
	}
	ts[0].Activate(2)
	ts[1].Activate(2)
	if ts[0].PeerDown(2) || ts[1].PeerDown(2) {
		t.Fatal("activation did not revive the links")
	}
	want := []byte{0xAA, 7}
	if err := ts[0].SendRejoinGo(2, want); err != nil {
		t.Fatal(err)
	}
	got, err := nt.AwaitRejoinGo(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rejoin-go payload %x, want %x", got, want)
	}

	all := []*TCP{ts[0], ts[1], nt}
	var wg sync.WaitGroup
	ins := make([][]Message, 3)
	errs := make([]error, 3)
	for i, tr := range all {
		wg.Add(1)
		go func(i int, tr *TCP) {
			defer wg.Done()
			var out []Message
			for q := 0; q < 3; q++ {
				if q == tr.Rank() {
					continue
				}
				out = append(out, Message{To: q, Tag: TagControl, Bytes: 1, Payload: []byte{byte(tr.Rank())}})
			}
			ins[i], errs[i] = tr.Exchange(out)
		}(i, tr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("post-rejoin exchange on endpoint %d: %v", i, err)
		}
		if len(ins[i]) != 2 {
			t.Fatalf("endpoint %d received %d messages after rejoin, want 2", i, len(ins[i]))
		}
	}
}

// The in-process fabric mirrors the protocol: Abort surfaces LiveDown and
// failed sends, RejoinInproc + Activate + the go payload restore a full
// three-way group.
func TestInprocAbortRejoin(t *testing.T) {
	group := NewInprocGroup(3)
	group[2].Abort()
	group[2].Abort() // idempotent

	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if _, err := group[r].Exchange([]Message{
				{To: 1 - r, Tag: TagControl, Bytes: 1, Payload: []byte{1}},
				{To: 2, Tag: TagControl, Bytes: 1, Payload: []byte{2}},
			}); err != nil {
				t.Errorf("survivor %d: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if !group[r].PeerDown(2) {
			t.Fatalf("survivor %d does not see rank 2 down", r)
		}
		found := false
		for _, ev := range group[r].TakeLiveness() {
			found = found || (ev.Rank == 2 && ev.Kind == LiveDown)
		}
		if !found {
			t.Fatalf("survivor %d got no LiveDown event", r)
		}
		if failed := group[r].TakeFailed(); len(failed) != 1 || failed[0].To != 2 {
			t.Fatalf("survivor %d: want 1 failed message to rank 2, got %+v", r, failed)
		}
	}

	nt := RejoinInproc(group[0], 2)
	if !group[0].PendingRejoin(2) || !group[1].PendingRejoin(2) {
		t.Fatal("rejoined rank not pending on the hub")
	}
	group[0].Activate(2)
	group[1].Activate(2) // second activation is a no-op
	if group[0].PeerDown(2) {
		t.Fatal("activation did not mark rank 2 live")
	}
	rejoinEvents := 0
	for _, ev := range group[0].TakeLiveness() {
		if ev.Rank == 2 && ev.Kind == LiveRejoin {
			rejoinEvents++
		}
	}
	if rejoinEvents != 1 {
		t.Fatalf("want exactly 1 LiveRejoin on rank 0, got %d", rejoinEvents)
	}
	if err := group[0].SendRejoinGo(2, []byte{9}); err != nil {
		t.Fatal(err)
	}
	payload, err := nt.AwaitRejoinGo(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte{9}) {
		t.Fatalf("go payload %x", payload)
	}

	all := []*Inproc{group[0], group[1], nt}
	ins := make([][]Message, 3)
	for i, tr := range all {
		wg.Add(1)
		go func(i int, tr *Inproc) {
			defer wg.Done()
			var out []Message
			for q := 0; q < 3; q++ {
				if q != tr.Rank() {
					out = append(out, Message{To: q, Tag: TagControl, Bytes: 1, Payload: []byte{byte(tr.Rank())}})
				}
			}
			var err error
			ins[i], err = tr.Exchange(out)
			if err != nil {
				t.Errorf("post-rejoin exchange rank %d: %v", tr.Rank(), err)
			}
		}(i, tr)
	}
	wg.Wait()
	for i, in := range ins {
		if len(in) != 2 {
			t.Fatalf("endpoint %d received %d messages after rejoin, want 2", i, len(in))
		}
	}
}

// Failed messages must survive Close on both backends: shutdown cannot
// silently drop deltas the engine has not re-marked yet.
func TestTakeFailedPersistsAfterClose(t *testing.T) {
	ts, _, _ := newLiveMesh(t, 2, 20*time.Millisecond, 100*time.Millisecond)
	ts[1].hbPaused.Store(true)
	waitFor(t, 5*time.Second, "rank 0 to mark rank 1 down", func() bool { return ts[0].PeerDown(1) })
	if _, err := ts[0].Exchange([]Message{{To: 1, Tag: TagControl, Bytes: 1, Payload: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	ts[0].Close()
	failed := ts[0].TakeFailed()
	if len(failed) != 1 || failed[0].To != 1 {
		t.Fatalf("failed messages lost across Close: %+v", failed)
	}

	group := NewInprocGroup(2)
	group[1].Abort()
	if _, err := group[0].Exchange([]Message{{To: 1, Tag: TagControl, Bytes: 1, Payload: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	group[0].Close()
	if failed := group[0].TakeFailed(); len(failed) != 1 || failed[0].To != 1 {
		t.Fatalf("inproc failed messages lost across Close: %+v", failed)
	}
}

// Lossy's delay buffer must drain to TakeFailed on Close — an in-flight
// message at shutdown is a lost message the engine needs to know about.
func TestLossyCloseDrainsDelayed(t *testing.T) {
	group := NewInprocGroup(2)
	hook := &scriptHook{fates: []Fate{FateDelay}, budget: 1}
	a := WithFaults(group[0], hook)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := group[1].Exchange(nil); err != nil {
			t.Errorf("rank 1: %v", err)
		}
	}()
	if _, err := a.Exchange([]Message{boundaryMsg(1)}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n := a.InFlight(); n != 1 {
		t.Fatalf("want 1 delayed message in flight, got %d", n)
	}
	a.Close()
	failed := a.TakeFailed()
	if len(failed) != 1 || failed[0].To != 1 || failed[0].Tag != TagBoundaryDV {
		t.Fatalf("delayed message not drained to TakeFailed on Close: %+v", failed)
	}
	if a.InFlight() != 0 {
		t.Fatalf("in-flight not cleared after Close")
	}
}
