package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"anytime/internal/dv"
	"anytime/internal/graph"
)

func TestFrameRoundTrip(t *testing.T) {
	in := frame{Tag: TagBoundaryDV, Kind: payloadDeltas, From: 3, To: 7, Seq: 42, Body: []byte("payload bytes")}
	buf := appendFrame(nil, in)
	if len(buf) != headerLen+len(in.Body)+trailerLen {
		t.Fatalf("frame length %d, want %d", len(buf), headerLen+len(in.Body)+trailerLen)
	}
	out, err := readFrame(bytes.NewReader(buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Tag != in.Tag || out.Kind != in.Kind || out.From != in.From || out.To != in.To || out.Seq != in.Seq {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	if !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("body mismatch: %q vs %q", out.Body, in.Body)
	}
}

// Any single corrupted byte must be detected, and the corrupt frame must be
// consumed whole so the frame that follows still parses.
func TestFrameCorruptionDetectedAndSkipped(t *testing.T) {
	first := appendFrame(nil, frame{Tag: TagControl, From: 0, To: 1, Body: []byte("first")})
	second := appendFrame(nil, frame{Tag: TagControl, From: 0, To: 1, Seq: 1, Body: []byte("second")})
	for i := range first {
		stream := append([]byte(nil), first...)
		stream[i] ^= 0x40
		stream = append(stream, second...)
		r := bytes.NewReader(stream)
		if _, err := readFrame(r, 0); err == nil {
			t.Fatalf("flip at byte %d not detected", i)
		} else if errors.Is(err, ErrCorruptFrame) {
			// CRC-detected: the stream must still be in sync.
			f, err := readFrame(r, 0)
			if err != nil || !bytes.Equal(f.Body, []byte("second")) {
				t.Fatalf("flip at byte %d desynced the stream: %v", i, err)
			}
		}
		// Flips in the magic/length land on hard errors; that tears the
		// stream by design (the reader cannot trust the framing).
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	buf := appendFrame(nil, frame{Tag: TagControl, Body: make([]byte, 2048)})
	if _, err := readFrame(bytes.NewReader(buf), 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameTornStream(t *testing.T) {
	buf := appendFrame(nil, frame{Tag: TagControl, Body: []byte("abcdef")})
	if _, err := readFrame(bytes.NewReader(buf[:len(buf)-3]), 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func sampleDeltas() []*dv.Delta {
	return []*dv.Delta{
		{Owner: 0, Lo: 0, D: nil},                                     // empty window
		{Owner: 5, Lo: 3, D: []graph.Dist{1, 2, graph.InfDist}},       // partial window
		{Owner: 9, Lo: 0, D: []graph.Dist{0, 7, 7, 9, graph.InfDist}}, // full row
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	ds := sampleDeltas()
	enc := appendDeltas(nil, ds)
	if len(enc) != EncodedDeltaBytes(ds) {
		t.Fatalf("encoded %d bytes, accounted %d", len(enc), EncodedDeltaBytes(ds))
	}
	wire := 0
	for _, d := range ds {
		wire += d.WireBytes()
	}
	if len(enc) != wire {
		t.Fatalf("encoded %d bytes, WireBytes sum %d", len(enc), wire)
	}
	got, err := decodeDeltas(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("decoded %d deltas, want %d", len(got), len(ds))
	}
	for i, d := range ds {
		g := got[i]
		if g.Owner != d.Owner || g.Lo != d.Lo || len(g.D) != len(d.D) {
			t.Fatalf("delta %d header mismatch: %+v vs %+v", i, g, d)
		}
		for j := range d.D {
			if g.D[j] != d.D[j] {
				t.Fatalf("delta %d dist %d: %d vs %d", i, j, g.D[j], d.D[j])
			}
		}
	}
}

func TestDecodeDeltasRejectsTruncation(t *testing.T) {
	enc := appendDeltas(nil, sampleDeltas())
	for _, cut := range []int{1, 11, 13, len(enc) - 1} {
		if _, err := decodeDeltas(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d bytes not rejected", cut)
		}
	}
}

func TestEncodePayloadTypes(t *testing.T) {
	if kind, body, err := encodePayload(nil); err != nil || kind != payloadRaw || len(body) != 0 {
		t.Fatalf("nil payload: kind=%d body=%v err=%v", kind, body, err)
	}
	if kind, body, err := encodePayload([]byte("x")); err != nil || kind != payloadRaw || string(body) != "x" {
		t.Fatalf("byte payload: kind=%d body=%v err=%v", kind, body, err)
	}
	if kind, _, err := encodePayload(sampleDeltas()); err != nil || kind != payloadDeltas {
		t.Fatalf("delta payload: kind=%d err=%v", kind, err)
	}
	if _, _, err := encodePayload(42); err == nil {
		t.Fatal("int payload not rejected")
	}
	if _, err := decodePayload(99, nil); err == nil {
		t.Fatal("unknown payload kind not rejected")
	}
}
