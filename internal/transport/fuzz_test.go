package transport

import (
	"bytes"
	"errors"
	"testing"

	"anytime/internal/dv"
	"anytime/internal/graph"
	"anytime/internal/kernel"
)

// FuzzDeltaCodec fuzzes the boundary-DV wire codec end to end: arbitrary
// bytes must never panic the decoder, anything it accepts must re-encode
// to the identical bytes (the codec is a bijection on its valid range),
// and a framed encoding must be rejected whenever any byte is flipped.
// The seed corpus pins the interesting shapes: empty windows, full rows,
// max-width rows, infinite distances.
func FuzzDeltaCodec(f *testing.F) {
	seed := func(ds []*dv.Delta) { f.Add(appendDeltas(nil, ds)) }
	seed(nil)
	seed([]*dv.Delta{{Owner: 0, Lo: 0, D: nil}}) // empty window
	seed([]*dv.Delta{{Owner: 3, Lo: 1, D: []graph.Dist{5}}})
	seed([]*dv.Delta{{Owner: 2, Lo: 0, D: []graph.Dist{0, 1, 2, graph.InfDist}}}) // full row
	wide := &dv.Delta{Owner: 7, Lo: 0, D: make([]graph.Dist, 512)}                // max-width row
	for i := range wide.D {
		wide.D[i] = graph.Dist(i % 97)
	}
	seed([]*dv.Delta{wide, {Owner: 8, Lo: 511, D: []graph.Dist{graph.InfDist}}})
	masked := &dv.Delta{Owner: 4, Lo: 64, D: make([]graph.Dist, 70), F: kernel.Bitset{0xdeadbeef, 1}} // frontier words
	seed([]*dv.Delta{masked})
	f.Add([]byte{0x0c, 0x00, 0x00, 0x00}) // truncated header
	f.Add(bytes.Repeat([]byte{0xff}, 40)) // negative headers

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := decodeDeltas(data)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		// Accepted: the re-encoding must reproduce the input bytes exactly
		// and the accounted size must match.
		enc := appendDeltas(nil, ds)
		if !bytes.Equal(enc, data) {
			t.Fatalf("roundtrip mismatch: in %d bytes, out %d bytes", len(data), len(enc))
		}
		if EncodedDeltaBytes(ds) != len(enc) {
			t.Fatalf("EncodedDeltaBytes = %d, encoded %d", EncodedDeltaBytes(ds), len(enc))
		}
		for _, d := range ds {
			if d.WireBytes() != 16+4*len(d.D)+8*len(d.F) {
				t.Fatalf("WireBytes = %d for %d distances + %d frontier words", d.WireBytes(), len(d.D), len(d.F))
			}
		}
		// Frame the payload and verify corrupt-frame rejection: flipping a
		// byte under the CRC must surface an error, and a CRC-flagged frame
		// must leave the stream in sync.
		buf := appendFrame(nil, frame{Tag: TagBoundaryDV, Kind: payloadDeltas, From: 1, To: 2, Body: enc})
		if f2, err := readFrame(bytes.NewReader(buf), 0); err != nil {
			t.Fatalf("clean frame rejected: %v", err)
		} else if !bytes.Equal(f2.Body, enc) {
			t.Fatal("clean frame body mismatch")
		}
		if len(buf) == 0 {
			return
		}
		pos := 2 + len(data)%(len(buf)-2) // always under the CRC
		mut := append([]byte(nil), buf...)
		mut[pos] ^= 0x55
		next := appendFrame(nil, frame{Tag: tagStepEnd, From: 1, To: 2})
		r := bytes.NewReader(append(mut, next...))
		_, err = readFrame(r, 0)
		if err == nil {
			t.Fatalf("flip at byte %d of %d-byte frame not detected", pos, len(buf))
		}
		// A CRC-flagged frame leaves the stream in sync — provided the
		// length prefix itself was intact (a torn length legitimately
		// desyncs framing and surfaces as a hard error instead).
		if pos >= headerLen && errors.Is(err, ErrCorruptFrame) {
			if f3, err := readFrame(r, 0); err != nil || f3.Tag != tagStepEnd {
				t.Fatalf("stream desynced after corrupt frame: %v", err)
			}
		}
	})
}
