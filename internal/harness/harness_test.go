package harness

import (
	"bytes"
	"strings"
	"testing"
)

// quickConfig keeps test runtimes small while exercising every code path.
func quickConfig() Config {
	return Config{N: 320, P: 4, M: 2, Seed: 3, Quick: true, Workers: 2}
}

func TestFig4ShapeBaselineLoses(t *testing.T) {
	r, err := Fig4(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	anytimeS, restartS := r.Series[0], r.Series[1]
	for i := range anytimeS.Y {
		if anytimeS.Y[i] <= 0 || restartS.Y[i] <= 0 {
			t.Fatalf("non-positive time at %d", i)
		}
		if anytimeS.Y[i] >= restartS.Y[i] {
			t.Errorf("injection step %g: anytime %.4g not below restart %.4g",
				anytimeS.X[i], anytimeS.Y[i], restartS.Y[i])
		}
	}
}

func TestFig5SweepRuns(t *testing.T) {
	r, err := Fig5(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Y) != 3 {
			t.Fatalf("%s has %d points", s.Name, len(s.Y))
		}
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s has non-positive time", s.Name)
			}
		}
	}
}

func TestFig7CutEdgeOrdering(t *testing.T) {
	r, err := Fig7(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, s := range r.Series {
		byName[s.Name] = s.Y
	}
	rr := byName["RoundRobin-PS"]
	ce := byName["CutEdge-PS"]
	if rr == nil || ce == nil {
		t.Fatalf("missing series: %v", byName)
	}
	// the defining property of CutEdge-PS: fewer new cut edges than round
	// robin, at least at the largest batch size
	last := len(rr) - 1
	if ce[last] >= rr[last] {
		t.Errorf("CutEdge-PS cut edges %g not below RoundRobin-PS %g", ce[last], rr[last])
	}
}

func TestAnalysisBounds(t *testing.T) {
	r, err := AnalysisBounds(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	ratios := r.Series[2].Y
	for i, ratio := range ratios[:3] { // ops and bytes ratios
		if ratio <= 0 || ratio > 50 {
			t.Errorf("metric %d: measured/bound ratio %.3g implausible", i, ratio)
		}
	}
}

func TestFormat(t *testing.T) {
	r := &Result{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	if err := r.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FIGX", "demo", "a", "b", "10", "40", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	empty := &Result{ID: "e", Title: "none"}
	buf.Reset()
	if err := empty.Format(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty result should say so")
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"fig4", "FIG5", "fig6", "fig7", "fig8", "analysis"} {
		if ByID(id) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if ByID("fig9") != nil {
		t.Error("unknown id should return nil")
	}
}

func TestScaleBatch(t *testing.T) {
	c := Config{N: 50000}.withDefaults()
	if k := c.scaleBatch(512); k != 512 {
		t.Fatalf("identity scale got %d", k)
	}
	c = Config{N: 500}.withDefaults()
	if k := c.scaleBatch(512); k != 5 {
		t.Fatalf("scaled batch = %d, want 5", k)
	}
	if k := c.scaleBatch(10); k != 4 {
		t.Fatalf("minimum batch = %d, want 4", k)
	}
}

func TestAblationsRun(t *testing.T) {
	r, err := Ablations(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d", len(r.Series))
	}
	overhead := r.Series[0].Y
	if len(overhead) != 14 {
		t.Fatalf("variants = %d", len(overhead))
	}
	for i, y := range overhead {
		if y <= 0 {
			t.Fatalf("variant %d has non-positive overhead", i)
		}
	}
	// The fault layer with a zero-fault plan adds only shard-write time:
	// at least the baseline, and the chaos row costs more still (crash
	// recovery re-ships and retries on top).
	if overhead[12] < overhead[0]*0.95 {
		t.Errorf("zero-fault plan %.4g unexpectedly below fault-layer-off %.4g", overhead[12], overhead[0])
	}
	if overhead[13] < overhead[12] {
		t.Errorf("crash+drop %.4g below zero-fault plan %.4g", overhead[13], overhead[12])
	}
	// ship-all must cost at least as much as dirty-only (variant 2 vs 0)
	if overhead[2] < overhead[0]*0.95 {
		t.Errorf("ship-all %.4g unexpectedly below dirty-only %.4g", overhead[2], overhead[0])
	}
	// from-scratch repartition must migrate more rows than adaptive
	mig := r.Series[2].Y
	if mig[11] <= mig[10] {
		t.Errorf("from-scratch repartition migrated %g rows, adaptive %g", mig[11], mig[10])
	}
}

func TestFig6LateInjection(t *testing.T) {
	r, err := Fig6(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 || len(r.Series[0].Y) != 3 {
		t.Fatalf("shape: %+v", r.Series)
	}
	for _, s := range r.Series {
		for _, y := range s.Y {
			if y <= 0 {
				t.Fatalf("%s has non-positive overhead", s.Name)
			}
		}
	}
}

func TestFig8Incremental(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 stream test skipped in -short mode")
	}
	r, err := Fig8(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("series = %d", len(r.Series))
	}
	byName := map[string][]float64{}
	for _, s := range r.Series {
		byName[s.Name] = s.Y
	}
	restart := byName["BaselineRestart"]
	rr := byName["RoundRobin-PS"]
	if restart == nil || rr == nil {
		t.Fatalf("missing series: %v", byName)
	}
	for i := range restart {
		if restart[i] <= rr[i] {
			t.Errorf("total %g: restart %.4g not above RoundRobin-PS %.4g",
				r.Series[0].X[i], restart[i], rr[i])
		}
	}
}

func TestScaling(t *testing.T) {
	r, err := Scaling(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	times := r.Series[0].Y
	speedup := r.Series[1].Y
	if len(times) != 3 {
		t.Fatalf("points = %d", len(times))
	}
	// P=2 must beat P=1 (the work terms divide by P and dominate at this n)
	if times[1] >= times[0] {
		t.Errorf("P=2 time %.4g not below P=1 %.4g", times[1], times[0])
	}
	if speedup[0] != 1 {
		t.Errorf("speedup at P=1 is %g", speedup[0])
	}
}
