package harness

import (
	"fmt"
	"sync"
	"time"

	"anytime/internal/change"
	"anytime/internal/core"
	"anytime/internal/gen"
	"anytime/internal/graph"
)

func (c Config) engineOptions(strat core.Strategy) core.Options {
	o := core.NewOptions()
	o.P = c.P
	o.Seed = c.Seed
	o.Workers = c.Workers
	o.Strategy = strat
	o.Obs = c.Obs
	o.Model = c.Model // zero value falls back to the default gigabit model
	return o
}

// newEngine builds a converged-ready engine on a fresh copy of the base
// graph and advances it to the injection step.
func (c Config) newEngine(strat core.Strategy, injectStep int) (*core.Engine, error) {
	g, err := c.baseGraph()
	if err != nil {
		return nil, err
	}
	e, err := core.New(g, c.engineOptions(strat))
	if err != nil {
		return nil, err
	}
	for i := 0; i < injectStep && e.Step(); i++ {
	}
	return e, nil
}

var (
	staticMu    sync.Mutex
	staticCache = map[string]time.Duration{}
)

// staticVirtual returns the virtual time of a static (no changes) run to
// convergence for this configuration, memoized. The figures report dynamic
// *overhead*: total time of the run-with-changes minus this baseline,
// which is the quantity the paper plots for the anytime-anywhere engine.
func (c Config) staticVirtual() (time.Duration, error) {
	key := fmt.Sprintf("%+v", c)
	staticMu.Lock()
	if d, ok := staticCache[key]; ok {
		staticMu.Unlock()
		return d, nil
	}
	staticMu.Unlock()
	e, err := c.newEngine(core.RoundRobinPS, 0)
	if err != nil {
		return 0, err
	}
	e.Run()
	d := e.Metrics().VirtualTime
	staticMu.Lock()
	staticCache[key] = d
	staticMu.Unlock()
	return d, nil
}

// absorb measures the virtual-time *overhead* of absorbing one batch
// injected at the given RC step with the given strategy: the total time of
// the run with the change minus the static-run baseline. It also returns
// the final metrics.
func (c Config) absorb(strat core.Strategy, injectStep int, b *change.VertexBatch) (time.Duration, core.Metrics, error) {
	e, err := c.newEngine(strat, injectStep)
	if err != nil {
		return 0, core.Metrics{}, err
	}
	if err := e.QueueBatch(b); err != nil {
		return 0, core.Metrics{}, err
	}
	e.Run()
	after := e.Metrics()
	if !e.Converged() {
		return 0, core.Metrics{}, fmt.Errorf("harness: %s did not converge", strat)
	}
	t0, err := c.staticVirtual()
	if err != nil {
		return 0, core.Metrics{}, err
	}
	overhead := after.VirtualTime - t0
	if overhead < 0 {
		overhead = 0
	}
	return overhead, after, nil
}

// Fig4 reproduces "Baseline Restart vs. Anytime Anywhere": the cost of
// absorbing a 512-vertex addition (scaled) injected at RC steps 0, 4 and 8,
// for the anytime-anywhere engine with RoundRobin-PS against the
// restart-from-scratch baseline.
func Fig4(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	g, err := cfg.baseGraph()
	if err != nil {
		return nil, err
	}
	k := cfg.scaleBatch(512)
	batch, err := gen.PreferentialBatch(g, k, 2, 1, gen.Weights{}, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	steps := []int{0, 4, 8}
	if cfg.Quick {
		steps = []int{0, 4}
	}
	anytimeS := Series{Name: "AnytimeAnywhere(RR-PS)"}
	restartS := Series{Name: "BaselineRestart"}
	for _, s := range steps {
		dt, _, err := cfg.absorb(core.RoundRobinPS, s, batch)
		if err != nil {
			return nil, err
		}
		anytimeS.X = append(anytimeS.X, float64(s))
		anytimeS.Y = append(anytimeS.Y, Minutes(dt))

		// The baseline has no anytime state: its cost is one full
		// recomputation of the grown graph, independent of the injection
		// step.
		r, err := core.NewRestart(g, cfg.engineOptions(core.RoundRobinPS))
		if err != nil {
			return nil, err
		}
		before := r.Metrics().VirtualTime
		if err := r.ApplyBatch(batch); err != nil {
			return nil, err
		}
		restartS.X = append(restartS.X, float64(s))
		restartS.Y = append(restartS.Y, Minutes(r.Metrics().VirtualTime-before))
	}
	return &Result{
		ID:     "fig4",
		Title:  fmt.Sprintf("Baseline restart vs anytime anywhere, %d vertex additions, n=%d, P=%d", k, cfg.N, cfg.P),
		XLabel: "RC step of injection",
		YLabel: "virtual minutes of dynamic overhead",
		Series: []Series{anytimeS, restartS},
		Notes: []string{
			"paper shape: anytime-anywhere well below baseline restart at every injection step",
		},
	}, nil
}

// paperBatchSizes are the Fig. 5/6/7 sweep points on the paper's 50k graph.
func (c Config) sweepSizes() []int {
	sizes := []int{500, 1500, 3000, 4500, 6000}
	if c.Quick {
		sizes = []int{500, 3000, 6000}
	}
	out := make([]int, len(sizes))
	for i, s := range sizes {
		out[i] = c.scaleBatch(s)
	}
	return out
}

// sweepResult carries both the timing and cut-edge outcomes of one
// strategy sweep (Figs. 5/6 share it with Fig. 7).
type sweepResult struct {
	sizes []int
	// per strategy, per size
	minutes map[core.Strategy][]float64
	newCuts map[core.Strategy][]float64
}

var sweepStrategies = []core.Strategy{core.RepartitionS, core.CutEdgePS, core.RoundRobinPS}

var (
	sweepMu    sync.Mutex
	sweepCache = map[string]*sweepResult{}
)

// runSweep measures every strategy over the batch-size sweep with
// injection at the given step. Results are memoized per (config, step) so
// Fig. 5 and Fig. 7 share one run.
func runSweep(cfg Config, injectStep int) (*sweepResult, error) {
	key := fmt.Sprintf("%+v@%d", cfg, injectStep)
	sweepMu.Lock()
	if r, ok := sweepCache[key]; ok {
		sweepMu.Unlock()
		return r, nil
	}
	sweepMu.Unlock()

	g, err := cfg.baseGraph()
	if err != nil {
		return nil, err
	}
	res := &sweepResult{
		sizes:   cfg.sweepSizes(),
		minutes: map[core.Strategy][]float64{},
		newCuts: map[core.Strategy][]float64{},
	}
	for _, k := range res.sizes {
		batch, err := gen.CommunityBatch(g, k, 1.5, gen.Weights{}, cfg.Seed+int64(k))
		if err != nil {
			return nil, err
		}
		for _, strat := range sweepStrategies {
			dt, m, err := cfg.absorb(strat, injectStep, batch)
			if err != nil {
				return nil, err
			}
			res.minutes[strat] = append(res.minutes[strat], Minutes(dt))
			res.newCuts[strat] = append(res.newCuts[strat], float64(m.NewCutEdges))
		}
	}
	sweepMu.Lock()
	sweepCache[key] = res
	sweepMu.Unlock()
	return res, nil
}

func sweepFigure(cfg Config, id string, injectStep int) (*Result, error) {
	cfg = cfg.withDefaults()
	sw, err := runSweep(cfg, injectStep)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     id,
		Title:  fmt.Sprintf("Vertex additions at RC%d, n=%d, P=%d", injectStep, cfg.N, cfg.P),
		XLabel: "vertices added",
		YLabel: "virtual minutes of dynamic overhead",
		Notes: []string{
			"paper shape: RoundRobin-PS and CutEdge-PS win for small batches; Repartition-S wins for large ones",
		},
	}
	for _, strat := range sweepStrategies {
		s := Series{Name: strat.String()}
		for i, k := range sw.sizes {
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, sw.minutes[strat][i])
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// Fig5 reproduces "Vertex Additions at RC0": the strategy sweep with the
// batch injected at the start of the analysis.
func Fig5(cfg Config) (*Result, error) { return sweepFigure(cfg, "fig5", 0) }

// Fig6 reproduces "Vertex Additions at RC8": the sweep with late-stage
// injection.
func Fig6(cfg Config) (*Result, error) { return sweepFigure(cfg, "fig6", 8) }

// Fig7 reproduces "Number of New Cut-Edges": the cut edges created by each
// strategy over the same sweep as Fig. 5.
func Fig7(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sw, err := runSweep(cfg, 0)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     "fig7",
		Title:  fmt.Sprintf("New cut edges created by vertex additions, n=%d, P=%d", cfg.N, cfg.P),
		XLabel: "vertices added",
		YLabel: "new cut edges",
		Notes: []string{
			"paper shape: Repartition-S < CutEdge-PS < RoundRobin-PS, gap grows with batch size",
		},
	}
	for _, strat := range sweepStrategies {
		s := Series{Name: strat.String()}
		for i, k := range sw.sizes {
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, sw.newCuts[strat][i])
		}
		r.Series = append(r.Series, s)
	}
	return r, nil
}

// Fig8 reproduces "Incremental Vertex Additions": a total batch spread
// uniformly over 10 consecutive RC steps, for all three strategies plus
// the baseline restart; totals follow the paper's 512/1873/3830/5611.
func Fig8(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	totals := []int{512, 1873, 3830, 5611}
	if cfg.Quick {
		totals = []int{512, 1873}
	}
	const steps = 10
	g, err := cfg.baseGraph()
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:     "fig8",
		Title:  fmt.Sprintf("Incremental vertex additions over %d RC steps, n=%d, P=%d", steps, cfg.N, cfg.P),
		XLabel: "total vertices added",
		YLabel: "virtual minutes of dynamic overhead",
		Notes: []string{
			"paper shape: baseline restart worst by far; RR/CutEdge-PS best for small totals, Repartition-S for the largest",
		},
	}
	strategies := append([]core.Strategy(nil), sweepStrategies...)
	series := make([]Series, len(strategies)+1)
	series[0] = Series{Name: "BaselineRestart"}
	for i, s := range strategies {
		series[i+1] = Series{Name: s.String()}
	}
	for _, total := range totals {
		k := cfg.scaleBatch(total)
		full, err := gen.CommunityBatch(g, k, 1.5, gen.Weights{}, cfg.Seed+int64(total))
		if err != nil {
			return nil, err
		}
		parts := gen.SplitBatch(full, steps)

		// baseline: restart once per sub-batch
		rst, err := core.NewRestart(g, cfg.engineOptions(core.RoundRobinPS))
		if err != nil {
			return nil, err
		}
		before := rst.Metrics().VirtualTime
		for _, p := range parts {
			if err := rst.ApplyBatch(p); err != nil {
				return nil, err
			}
		}
		series[0].X = append(series[0].X, float64(k))
		series[0].Y = append(series[0].Y, Minutes(rst.Metrics().VirtualTime-before))

		static, err := cfg.staticVirtual()
		if err != nil {
			return nil, err
		}
		for i, strat := range strategies {
			e, err := cfg.newEngine(strat, 0)
			if err != nil {
				return nil, err
			}
			for _, p := range parts {
				if err := e.QueueBatch(p); err != nil {
					return nil, err
				}
				e.Step()
			}
			e.Run()
			if !e.Converged() {
				return nil, fmt.Errorf("harness: fig8 %s did not converge", strat)
			}
			overhead := e.Metrics().VirtualTime - static
			if overhead < 0 {
				overhead = 0
			}
			series[i+1].X = append(series[i+1].X, float64(k))
			series[i+1].Y = append(series[i+1].Y, Minutes(overhead))
		}
	}
	r.Series = series
	return r, nil
}

// AnalysisBounds checks the measured work/communication counters of a
// static run against the paper's LogP-model bounds (section IV):
//
//	IA:  O((n/P) · (n_sub log n_sub + E_sub)) per processor
//	RC:  per step O(P·c_max·n + n²/P) work and O(n·b) bytes shipped
//
// The reported ratio measured/predicted should be a modest constant.
func AnalysisBounds(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	g, err := cfg.baseGraph()
	if err != nil {
		return nil, err
	}
	e, err := core.New(g, cfg.engineOptions(core.RoundRobinPS))
	if err != nil {
		return nil, err
	}
	e.Run()
	m := e.Metrics()
	n := float64(g.NumVertices())
	p := float64(cfg.P)
	edges := float64(g.NumEdges())

	log2 := func(x float64) float64 {
		l := 0.0
		for x > 1 {
			x /= 2
			l++
		}
		return l
	}
	predIA := n / p * (n/p*log2(n/p) + 2*edges/p) * p // total over processors
	// boundary DV traffic: up to every vertex's row on the wire per step,
	// fanned out to up to P-1 adjacent parts, 4 bytes per entry
	predBytes := float64(m.RCSteps) * n * 4 * n * (p - 1) / p
	predRC := float64(m.RCSteps) * (n*n*n/p + n*n/p + n*p)

	type row struct {
		name                string
		measured, predicted float64
	}
	rows := []row{
		{"IA ops", float64(m.IAOps), predIA},
		{"RC ops", float64(m.RCOps), predRC},
		{"RC bytes", float64(m.Comm.Bytes), predBytes},
		{"RC steps", float64(m.RCSteps), p},
	}
	res := &Result{
		ID:     "analysis",
		Title:  fmt.Sprintf("Measured counters vs LogP-model bounds, n=%d, P=%d", cfg.N, cfg.P),
		XLabel: "metric #",
		YLabel: "value",
	}
	meas := Series{Name: "measured"}
	pred := Series{Name: "bound"}
	ratio := Series{Name: "measured/bound"}
	for i, rw := range rows {
		meas.X = append(meas.X, float64(i))
		meas.Y = append(meas.Y, rw.measured)
		pred.X = append(pred.X, float64(i))
		pred.Y = append(pred.Y, rw.predicted)
		ratio.X = append(ratio.X, float64(i))
		ratio.Y = append(ratio.Y, rw.measured/rw.predicted)
		res.Notes = append(res.Notes, fmt.Sprintf("metric %d = %s", i, rw.name))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("static edge cut: %d, imbalance %.3f",
			graph.EdgeCut(e.Graph(), e.Partition()),
			graph.Imbalance(e.Graph(), e.Partition())))
	res.Series = []Series{meas, pred, ratio}
	return res, nil
}
