package harness

import (
	"fmt"

	"anytime/internal/core"
	"anytime/internal/fault"
	"anytime/internal/gen"
	"anytime/internal/partition"
)

// Ablations measures the design choices DESIGN.md calls out, each as the
// virtual-time overhead of absorbing the same mid-size community batch at
// RC0 (plus the Fig. 7 cut-edge metric where relevant). One row per
// variant; lower is better.
func Ablations(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	g, err := cfg.baseGraph()
	if err != nil {
		return nil, err
	}
	k := cfg.scaleBatch(3000)
	batch, err := gen.CommunityBatch(g, k, 1.5, gen.Weights{}, cfg.Seed+999)
	if err != nil {
		return nil, err
	}

	type variant struct {
		name string
		opts core.Options
	}
	base := cfg.engineOptions(core.RoundRobinPS)
	with := func(name string, mutate func(*core.Options)) variant {
		o := base
		mutate(&o)
		return variant{name, o}
	}
	// Probe the fault-free baseline for its pre-batch step count, so the
	// crash variant can be scheduled early in the batch recombination.
	probe, err := buildEngine(cfg, base)
	if err != nil {
		return nil, err
	}
	probe.Run()
	// The batch may absorb in as few as two RC steps, so the crash must
	// land on the first of them to be inside the recombination at all.
	crashStep := probe.StepsTaken()
	variants := []variant{
		{"baseline (paper defaults)", base},
		with("no local refinement", func(o *core.Options) { o.NoLocalRefine = true }),
		with("ship all boundary DVs", func(o *core.Options) { o.ShipAllBoundary = true }),
		with("parallel-pairs comm", func(o *core.Options) { o.ParallelComm = true }),
		with("message cap 4 KiB", func(o *core.Options) { o.MaxMsgBytes = 4 << 10 }),
		with("message cap 1 MiB", func(o *core.Options) { o.MaxMsgBytes = 1 << 20 }),
		with("DD greedy-grow", func(o *core.Options) { o.Partitioner = partition.Greedy{Seed: cfg.Seed} }),
		with("DD round-robin", func(o *core.Options) { o.Partitioner = partition.RoundRobin{} }),
		with("CutEdge-PS greedy map", func(o *core.Options) { o.Strategy = core.CutEdgePS }),
		with("CutEdge-PS naive map", func(o *core.Options) {
			o.Strategy = core.CutEdgePS
			o.NaiveBatchMapping = true
		}),
		with("Repartition-S adaptive", func(o *core.Options) { o.Strategy = core.RepartitionS }),
		with("Repartition-S from-scratch", func(o *core.Options) {
			o.Strategy = core.RepartitionS
			o.FullRepartition = true
		}),
		// The cost of resilience: the fault layer with a zero-fault plan
		// charges only the periodic recovery-shard writes; the chaos row
		// adds a mid-recombination crash plus 5% message loss and measures
		// the recovery traffic on top.
		with("fault layer on, zero-fault plan", func(o *core.Options) {
			o.Faults = &fault.Plan{Seed: cfg.Seed}
		}),
		with("crash + 5% drop during batch", func(o *core.Options) {
			o.Faults = &fault.Plan{
				Seed:     cfg.Seed,
				DropRate: 0.05,
				Crashes:  []fault.Crash{{Proc: 1, Step: crashStep, DownFor: 2}},
			}
		}),
	}

	res := &Result{
		ID:     "ablations",
		Title:  fmt.Sprintf("Design-choice ablations, %d-vertex batch at RC0, n=%d, P=%d", k, cfg.N, cfg.P),
		XLabel: "variant #",
		YLabel: "value",
	}
	minutes := Series{Name: "overhead-min"}
	cuts := Series{Name: "new-cut-edges"}
	migrated := Series{Name: "rows-migrated"}
	for i, v := range variants {
		e, err := buildEngine(cfg, v.opts)
		if err != nil {
			return nil, err
		}
		e.Run()
		t0 := e.Metrics().VirtualTime
		if err := e.QueueBatch(batch); err != nil {
			return nil, err
		}
		e.Run()
		if !e.Converged() {
			return nil, fmt.Errorf("harness: ablation %q did not converge", v.name)
		}
		m := e.Metrics()
		minutes.X = append(minutes.X, float64(i))
		minutes.Y = append(minutes.Y, Minutes(m.VirtualTime-t0))
		cuts.X = append(cuts.X, float64(i))
		cuts.Y = append(cuts.Y, float64(m.NewCutEdges))
		migrated.X = append(migrated.X, float64(i))
		migrated.Y = append(migrated.Y, float64(m.RowsMigrated))
		note := fmt.Sprintf("variant %d = %s", i, v.name)
		if m.ShardsWritten > 0 {
			note += fmt.Sprintf(" (crashes=%d recoveries=%d shards=%d)", m.Crashes, m.Recoveries, m.ShardsWritten)
		}
		res.Notes = append(res.Notes, note)
	}
	res.Series = []Series{minutes, cuts, migrated}
	return res, nil
}

// buildEngine constructs an engine over a fresh copy of the base graph
// with explicit options.
func buildEngine(cfg Config, opts core.Options) (*core.Engine, error) {
	g, err := cfg.baseGraph()
	if err != nil {
		return nil, err
	}
	return core.New(g, opts)
}

// Scaling measures the simulated parallel speedup of the static analysis:
// virtual time to convergence as P grows (same graph, LogP model per P),
// the classic strong-scaling curve implied by the paper's runtime analysis
// (IA and refinement work divide by P; the serialized all-to-all grows
// with P, so speedup saturates).
func Scaling(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	// Strong scaling isolates the processor axis: one worker per node, so
	// the curve reflects P alone. (Per-node threading divides the compute
	// charge of every P equally and would only flatten the comparison.)
	cfg.Workers = 1
	g, err := cfg.baseGraph()
	if err != nil {
		return nil, err
	}
	ps := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		ps = []int{1, 2, 4}
	}
	times := Series{Name: "virtual-min"}
	speedup := Series{Name: "speedup-vs-P1"}
	var t1 float64
	for _, p := range ps {
		if p > g.NumVertices() {
			break
		}
		c := cfg
		c.P = p
		e, err := core.New(g.Clone(), c.engineOptions(core.RoundRobinPS))
		if err != nil {
			return nil, err
		}
		e.Run()
		if !e.Converged() {
			return nil, fmt.Errorf("harness: scaling run P=%d did not converge", p)
		}
		min := Minutes(e.Metrics().VirtualTime)
		if p == 1 {
			t1 = min
		}
		times.X = append(times.X, float64(p))
		times.Y = append(times.Y, min)
		speedup.X = append(speedup.X, float64(p))
		speedup.Y = append(speedup.Y, t1/min)
	}
	return &Result{
		ID:     "scaling",
		Title:  fmt.Sprintf("Strong scaling of the static analysis, n=%d", cfg.N),
		XLabel: "processors P",
		YLabel: "value",
		Series: []Series{times, speedup},
		Notes: []string{
			"speedup saturates as the serialized all-to-all grows with P (the paper's O(P²) schedule)",
		},
	}, nil
}
