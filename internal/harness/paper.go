package harness

import (
	"fmt"
	"time"

	"anytime/internal/core"
	"anytime/internal/gen"
)

// Paper runs the paper-scale configuration: the full n=50,000 / P=16
// testbed of the source paper's evaluation (not the laptop-scale shrink
// the other experiments default to), absorbing a sparse preferential-
// attachment vertex batch and recording the per-RC-step reconvergence
// trajectory — wall milliseconds, LogP-virtual milliseconds, and frontier
// density — the Fig. 4-shaped series at the original scale.
//
// The engine is oracle-seeded via core.NewConverged: the multi-step static
// convergence (hours of simulated RC work at this scale) is replaced by
// exact global IA sweeps, which produce the identical converged state the
// dynamic measurement starts from. Only the absorption cascade after the
// batch is the measured quantity.
//
// Paper is intentionally absent from All(): a single run allocates a
// ~50,000² distance matrix (~20 GB) and takes minutes of wall time. It is
// reachable via `aaexperiments -fig paper` (scale down with -n for a dry
// run) and the bench-paper Makefile target.
func Paper(cfg Config) (*Result, error) {
	// Paper-scale defaults: zero values mean the paper's testbed, not the
	// laptop shrink. An explicit -n/-p still overrides for dry runs.
	if cfg.N == 0 {
		cfg.N = 50000
	}
	if cfg.P == 0 {
		cfg.P = 16
	}
	cfg = cfg.withDefaults()
	g, err := cfg.baseGraph()
	if err != nil {
		return nil, err
	}
	build := time.Now()
	e, err := core.NewConverged(g, cfg.engineOptions(core.RoundRobinPS))
	if err != nil {
		return nil, err
	}
	warmWall := time.Since(build)
	warmVirt := e.Metrics().VirtualTime

	// The paper's sparse-growth regime: a 64-vertex batch on n=50,000 is
	// 0.128% of the graph — the case the frontier-masked kernels target.
	k := cfg.scaleBatch(64)
	batch, err := gen.PreferentialBatch(e.Graph(), k, 2, 1, gen.Weights{}, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	if err := e.QueueBatch(batch); err != nil {
		return nil, err
	}

	wall := Series{Name: "wall ms"}
	virt := Series{Name: "virtual ms"}
	dens := Series{Name: "frontier density"}
	absorbStart := time.Now()
	step := 0
	for !e.Converged() && e.Err() == nil {
		if step > 10*cfg.N {
			return nil, fmt.Errorf("harness: paper run did not converge in %d steps", step)
		}
		v0 := e.Metrics().VirtualTime
		t0 := time.Now()
		e.Step()
		x := float64(step)
		wall.X = append(wall.X, x)
		wall.Y = append(wall.Y, float64(time.Since(t0))/float64(time.Millisecond))
		virt.X = append(virt.X, x)
		virt.Y = append(virt.Y, float64(e.Metrics().VirtualTime-v0)/float64(time.Millisecond))
		d := 0.0
		if h := e.History(); len(h) > 0 {
			d = h[len(h)-1].FrontierDensity
		}
		dens.X = append(dens.X, x)
		dens.Y = append(dens.Y, d)
		step++
	}
	if err := e.Err(); err != nil {
		return nil, err
	}
	absorbWall := time.Since(absorbStart)
	absorbVirt := e.Metrics().VirtualTime - warmVirt

	var relaxOps, maskedOps int64
	for _, h := range e.History() {
		relaxOps += h.RelaxOps
		maskedOps += h.MaskedOps
	}
	maskedShare := 0.0
	if relaxOps > 0 {
		maskedShare = float64(maskedOps) / float64(relaxOps)
	}
	return &Result{
		ID:     "paper",
		Title:  fmt.Sprintf("Paper-scale absorption trajectory (n=%d, P=%d, batch=%d)", cfg.N, cfg.P, k),
		XLabel: "RC step",
		YLabel: "ms / density",
		Series: []Series{wall, virt, dens},
		Notes: []string{
			fmt.Sprintf("oracle-seeded warm start (core.NewConverged): %.1fs wall, %.1fs virtual — replaces the static convergence, identical converged state", warmWall.Seconds(), warmVirt.Seconds()),
			fmt.Sprintf("batch absorption: %d RC steps, %.1f ms wall, %.1f ms LogP-virtual", step, float64(absorbWall)/float64(time.Millisecond), float64(absorbVirt)/float64(time.Millisecond)),
			fmt.Sprintf("relax ops %d, masked share %.1f%% (frontier-masked kernels)", relaxOps, 100*maskedShare),
		},
	}, nil
}
