// Package harness defines and runs the reproduction experiments: one entry
// per table/figure of the paper's evaluation section (Figs. 4-8 plus the
// LogP analysis-bounds check), each regenerating the corresponding series
// as a text table. Scales are configurable; the default shrinks the
// paper's n=50,000 / P=16 testbed to a laptop-scale simulation while
// preserving batch-size *fractions*, which is what the comparative shapes
// depend on.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"anytime/internal/gen"
	"anytime/internal/graph"
	"anytime/internal/logp"
	"anytime/internal/obs"
)

// Config scales the experiments.
type Config struct {
	// N is the base graph size (paper: 50,000; default here 1,200).
	N int
	// P is the processor count (paper: 16; default 8).
	P int
	// M is the Barabási–Albert attachment degree (default 3).
	M int
	// Seed drives all generators and the engine.
	Seed int64
	// Quick shrinks sweeps for use in tests.
	Quick bool
	// Workers per processor in the IA phase (default 2).
	Workers int
	// Model overrides the simulated cluster's LogP parameters — e.g. a
	// calibration measured on the real TCP transport (aacluster -calibrate
	// -calibrate-out) fed back in, so the virtual clocks reflect measured
	// o/g/L instead of the default gigabit model. Zero value keeps the
	// default; Model.P is overridden by P either way.
	Model logp.Model
	// Obs, when set, receives phase-level spans from every engine the
	// experiments build (aaexperiments -trace writes them out as JSONL).
	Obs *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 1200
	}
	if c.P == 0 {
		c.P = 8
	}
	if c.M == 0 {
		c.M = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	return c
}

// scaleBatch converts one of the paper's batch sizes (on its n=50,000
// graph) to this configuration's graph size, keeping the fraction.
func (c Config) scaleBatch(paperSize int) int {
	k := paperSize * c.N / 50000
	if k < 4 {
		k = 4
	}
	return k
}

// baseGraph builds the experiment's scale-free input graph.
func (c Config) baseGraph() (*graph.Graph, error) {
	g, err := gen.BarabasiAlbert(c.N, c.M, gen.Weights{}, c.Seed)
	if err != nil {
		return nil, err
	}
	gen.Connectify(g, c.Seed)
	return g, nil
}

// Series is one line of a figure: a named sequence of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is one reproduced table/figure.
type Result struct {
	ID     string // e.g. "fig5"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Format renders the result as an aligned text table: one row per x value,
// one column per series.
func (r *Result) Format(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	if len(r.Series) == 0 {
		fmt.Fprintln(&b, "(no data)")
		_, err := io.WriteString(w, b.String())
		return err
	}
	// header
	fmt.Fprintf(&b, "%-24s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%22s", s.Name)
	}
	fmt.Fprintf(&b, "    [%s]\n", r.YLabel)
	for i := range r.Series[0].X {
		fmt.Fprintf(&b, "%-24.6g", r.Series[0].X[i])
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%22.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%22s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Minutes converts a virtual duration to fractional minutes (the paper's
// y-axis unit).
func Minutes(d time.Duration) float64 { return d.Minutes() }

// All runs every experiment in paper order, then the ablations.
func All(cfg Config) ([]*Result, error) {
	runs := []func(Config) (*Result, error){Fig4, Fig5, Fig6, Fig7, Fig8, AnalysisBounds, Ablations, Scaling}
	var out []*Result
	for _, f := range runs {
		r, err := f(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ByID returns the experiment runner for a figure id ("fig4".."fig8",
// "analysis"), or nil.
func ByID(id string) func(Config) (*Result, error) {
	switch strings.ToLower(id) {
	case "fig4":
		return Fig4
	case "fig5":
		return Fig5
	case "fig6":
		return Fig6
	case "fig7":
		return Fig7
	case "fig8":
		return Fig8
	case "analysis":
		return AnalysisBounds
	case "ablations":
		return Ablations
	case "scaling":
		return Scaling
	case "paper":
		// Paper-scale tier: NOT in All() — see the Paper doc comment.
		return Paper
	default:
		return nil
	}
}
