package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// rankTrace builds a synthetic per-rank trace: `steps` rc-step spans of
// `stepDur` each starting at `firstStep`, with the file's private wall
// epoch shifted by `skew` (each real process starts its tracer at a
// different instant — that skew is what MergeTraces must cancel).
func rankTrace(rank int32, firstStep, steps int32, stepDur, skew time.Duration) []Span {
	var out []Span
	for i := int32(0); i < steps; i++ {
		start := skew + time.Duration(i)*stepDur
		out = append(out,
			Span{Kind: KindRCShip, Proc: rank, Rank: rank, Step: firstStep + i, Wall: start, WallDur: stepDur / 4, Value: 100},
			Span{Kind: KindRCRelax, Proc: rank, Rank: rank, Step: firstStep + i, Wall: start + stepDur/4, WallDur: stepDur / 2},
			Span{Kind: KindRCStep, Proc: rank, Rank: rank, Step: firstStep + i, Wall: start, WallDur: stepDur},
		)
	}
	return out
}

// TestMergeTracesAlignsOnSteps checks that files with arbitrary epoch skew
// land on one timeline where every rank's step-K rc-step span starts at the
// same merged offset.
func TestMergeTracesAlignsOnSteps(t *testing.T) {
	ms := time.Millisecond
	files := [][]Span{
		rankTrace(0, 0, 4, 10*ms, 0),
		rankTrace(1, 0, 4, 10*ms, 700*ms), // same steps, wildly skewed epoch
		rankTrace(2, 0, 4, 10*ms, 330*ms),
	}
	merged := MergeTraces(files)
	if len(merged) != 3*4*3 {
		t.Fatalf("merged spans = %d, want 36", len(merged))
	}
	anchor := map[int32]time.Duration{}
	for _, s := range merged {
		if s.Kind != KindRCStep {
			continue
		}
		if w, ok := anchor[s.Step]; ok {
			if w != s.Wall {
				t.Errorf("step %d rc-step anchors diverge: %v vs %v (rank %d)", s.Step, w, s.Wall, s.Rank)
			}
		} else {
			anchor[s.Step] = s.Wall
		}
	}
	if merged[0].Wall != 0 {
		t.Errorf("merged timeline must start at 0, got %v", merged[0].Wall)
	}
}

// TestMergeTracesRejoinSegment models a SIGKILL→rejoin episode: rank 2's
// relaunched process produces a second trace file whose step counter was
// restored from the rejoin-go payload but whose wall epoch is fresh. The
// merge must place the rejoin segment at the survivors' wall position for
// those steps, reading as one timeline.
func TestMergeTracesRejoinSegment(t *testing.T) {
	ms := time.Millisecond
	survivor0 := rankTrace(0, 0, 8, 10*ms, 0)
	survivor1 := rankTrace(1, 0, 8, 10*ms, 250*ms)
	victim := rankTrace(2, 0, 3, 10*ms, 40*ms)     // killed after step 2
	rejoin := rankTrace(2, 5, 3, 10*ms, 2*1000*ms) // relaunched at step 5, fresh epoch
	merged := MergeTraces([][]Span{survivor0, survivor1, victim, rejoin})

	byStep := map[int32]time.Duration{}
	for _, s := range merged {
		if s.Kind == KindRCStep && s.Rank == 0 {
			byStep[s.Step] = s.Wall
		}
	}
	for _, s := range merged {
		if s.Kind != KindRCStep || s.Rank != 2 {
			continue
		}
		if want, ok := byStep[s.Step]; !ok || s.Wall != want {
			t.Errorf("rank 2 step %d at %v, survivor anchor %v", s.Step, s.Wall, want)
		}
	}
}

// TestMergeTracesDeterministic checks the satellite requirement: merging
// the same files in any argument order yields byte-identical Chrome output
// (same lane order, same span order).
func TestMergeTracesDeterministic(t *testing.T) {
	ms := time.Millisecond
	a := rankTrace(0, 0, 5, 10*ms, 0)
	b := rankTrace(1, 0, 5, 10*ms, 123*ms)
	c := rankTrace(2, 2, 3, 10*ms, 999*ms) // late joiner
	orders := [][][]Span{
		{a, b, c}, {c, b, a}, {b, c, a}, {c, a, b},
	}
	var first []byte
	for i, files := range orders {
		merged := MergeTraces(files)
		var buf bytes.Buffer
		if err := WriteChromeTraceByRank(&buf, merged, false); err != nil {
			t.Fatalf("chrome export: %v", err)
		}
		if i == 0 {
			first = append([]byte(nil), buf.Bytes()...)
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("order %d produced different merged trace", i)
		}
	}
	// Lane metadata: one process_name per rank.
	for _, rank := range []string{`"rank 0"`, `"rank 1"`, `"rank 2"`} {
		if !strings.Contains(string(first), rank) {
			t.Errorf("merged chrome trace missing lane %s", rank)
		}
	}
}

// TestMergeTracesJSONLRoundTrip checks rank survives the JSONL wire form,
// so per-rank files written by real processes carry the lane key.
func TestMergeTracesJSONLRoundTrip(t *testing.T) {
	spans := rankTrace(3, 0, 2, time.Millisecond, 0)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(spans) {
		t.Fatalf("spans = %d, want %d", len(got), len(spans))
	}
	for i := range got {
		if got[i] != spans[i] {
			t.Fatalf("span %d round-trip mismatch: %+v vs %+v", i, got[i], spans[i])
		}
	}
}
