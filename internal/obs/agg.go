package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Aggregator is the cluster half of the observability plane: it scrapes N
// per-rank /metrics endpoints, injects a rank label into every series, and
// republishes one merged exposition plus computed cross-rank series — the
// paper's Fig. 5 load imbalance measured across real OS processes, cluster
// liveness, anytime-quality rollups, and per-outage-episode degraded-step
// counters.
//
// A rank that is down mid-scrape is stale-marked, not dropped: its last
// good families keep being republished (so dashboards hold the final
// pre-crash state through an outage) with aa_cluster_scrape_stale{rank}=1
// flagging the staleness. The fetch function is pluggable so tests can
// drive the merge logic without HTTP.
type Aggregator struct {
	ranks   int
	fetch   func(ctx context.Context, rank int) (io.ReadCloser, error)
	timeout time.Duration

	mu            sync.Mutex
	last          []rankScrape
	episodes      []episodeState
	inOutage      bool
	degradedTotal float64 // cluster degraded-step total at the last scrape
}

// rankScrape is the retained state for one rank.
type rankScrape struct {
	fams  []TextFamily       // last good families, rank-labeled
	flat  map[string]float64 // flat view of fams for computed series
	ok    bool               // most recent scrape succeeded
	ever  bool               // at least one scrape ever succeeded
	stamp time.Time          // when fams were last refreshed
}

// episodeState tracks one outage episode: from the scrape where any rank
// first reported degraded mode to the scrape where none did. Degraded
// steps are attributed to the open episode as the delta of the cluster-sum
// aa_rank_degraded_steps_total against the episode's baseline.
type episodeState struct {
	baseline float64 // cluster degraded-step total when the episode opened
	steps    float64 // degraded steps attributed so far
	open     bool
}

// NewAggregator builds an aggregator over `ranks` endpoints. fetch returns
// the exposition body for one rank (an http.Get in production, a stub in
// tests); a nil timeout field defaults to 2s per rank.
func NewAggregator(ranks int, timeout time.Duration, fetch func(ctx context.Context, rank int) (io.ReadCloser, error)) *Aggregator {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Aggregator{
		ranks:   ranks,
		fetch:   fetch,
		timeout: timeout,
		last:    make([]rankScrape, ranks),
	}
}

// NewHTTPAggregator builds an aggregator that scrapes http://addr/metrics
// for each rank address (the obs ports from the mesh manifest).
func NewHTTPAggregator(addrs []string, timeout time.Duration) *Aggregator {
	client := &http.Client{}
	return NewAggregator(len(addrs), timeout, func(ctx context.Context, rank int) (io.ReadCloser, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addrs[rank]+"/metrics", nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("obs: rank %d scrape: %s", rank, resp.Status)
		}
		return resp.Body, nil
	})
}

// Scrape polls every rank concurrently, updates the retained per-rank
// state, and advances the outage-episode machine. Down ranks keep their
// last good series (stale-marked); ranks that never answered contribute
// nothing yet.
func (a *Aggregator) Scrape(ctx context.Context) {
	type result struct {
		rank int
		fams []TextFamily
		err  error
	}
	ch := make(chan result, a.ranks)
	for i := 0; i < a.ranks; i++ {
		go func(rank int) {
			sctx, cancel := context.WithTimeout(ctx, a.timeout)
			defer cancel()
			body, err := a.fetch(sctx, rank)
			if err != nil {
				ch <- result{rank: rank, err: err}
				return
			}
			fams, err := ParseFamilies(body)
			body.Close()
			ch <- result{rank: rank, fams: fams, err: err}
		}(i)
	}

	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := 0; i < a.ranks; i++ {
		res := <-ch
		rs := &a.last[res.rank]
		if res.err != nil {
			rs.ok = false
			continue
		}
		label := strconv.Itoa(res.rank)
		flat := map[string]float64{}
		for fi := range res.fams {
			for si := range res.fams[fi].Samples {
				s := &res.fams[fi].Samples[si]
				s.Labels = InjectLabel(s.Labels, "rank", label)
				flat[s.Key()] = s.Value
			}
		}
		rs.fams, rs.flat, rs.ok, rs.ever, rs.stamp = res.fams, flat, true, true, now
	}
	a.advanceEpisodes()
}

// rankSeries reads one rank's value for name{rank="i"<,labels>}.
func (a *Aggregator) rankSeries(rank int, name, labels string) (float64, bool) {
	rs := &a.last[rank]
	if !rs.ever {
		return 0, false
	}
	v, ok := rs.flat[name+InjectLabel(labels, "rank", strconv.Itoa(rank))]
	return v, ok
}

// advanceEpisodes runs the outage-episode state machine against the
// current retained state. Callers hold a.mu.
func (a *Aggregator) advanceEpisodes() {
	anyDegraded := false
	var clusterDegradedSteps float64
	for i := 0; i < a.ranks; i++ {
		if v, ok := a.rankSeries(i, "aa_rank_degraded", ""); ok && v != 0 {
			anyDegraded = true
		}
		if v, ok := a.rankSeries(i, "aa_rank_degraded_steps_total", ""); ok {
			clusterDegradedSteps += v
		}
	}
	if anyDegraded && !a.inOutage {
		// Steps counted since the previous scrape belong to this episode,
		// so the baseline is the total as of the last scrape, not now.
		a.episodes = append(a.episodes, episodeState{baseline: a.degradedTotal, open: true})
	}
	a.inOutage = anyDegraded
	if n := len(a.episodes); n > 0 && a.episodes[n-1].open {
		ep := &a.episodes[n-1]
		if d := clusterDegradedSteps - ep.baseline; d > ep.steps {
			ep.steps = d
		}
		if !anyDegraded {
			ep.open = false
		}
	}
	a.degradedTotal = clusterDegradedSteps
}

// WriteTo renders the merged exposition: computed cluster series first,
// then every rank's series in rank order. Safe to call concurrently with
// Scrape.
func (a *Aggregator) WriteTo(w io.Writer) (int64, error) {
	a.mu.Lock()
	computed := a.computedLocked()
	inputs := make([][]TextFamily, 0, a.ranks+1)
	inputs = append(inputs, computed)
	for i := range a.last {
		if a.last[i].ever {
			inputs = append(inputs, a.last[i].fams)
		}
	}
	merged := MergeFamilies(inputs...)
	a.mu.Unlock()

	cw := &countWriter{w: w}
	err := WriteFamilies(cw, merged)
	return cw.n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// computedLocked builds the cross-rank series. Callers hold a.mu.
func (a *Aggregator) computedLocked() []TextFamily {
	up := 0
	var busy []time.Duration
	var rows, dirty, converged, frontierBits, frontierWeighted float64
	var maxStep, minStep float64
	haveStep := false
	staleSamples := make([]TextSample, 0, a.ranks)
	for i := 0; i < a.ranks; i++ {
		rs := &a.last[i]
		if rs.ok {
			up++
		}
		stale := 0.0
		if !rs.ok && rs.ever {
			stale = 1
		}
		staleSamples = append(staleSamples, TextSample{
			Name:   "aa_cluster_scrape_stale",
			Labels: Labels("rank", strconv.Itoa(i)),
			Value:  stale,
		})
		if !rs.ever {
			continue
		}
		if v, ok := a.rankSeries(i, "aa_rank_step_busy_seconds", ""); ok {
			busy = append(busy, time.Duration(v*float64(time.Second)))
		}
		if v, ok := a.rankSeries(i, "aa_rank_step", ""); ok {
			if !haveStep || v > maxStep {
				maxStep = v
			}
			if !haveStep || v < minStep {
				minStep = v
			}
			haveStep = true
		}
		r, _ := a.rankSeries(i, "aa_rank_rows", "")
		rows += r
		if v, ok := a.rankSeries(i, "aa_rank_dirty_rows", ""); ok {
			dirty += v
		}
		if v, ok := a.rankSeries(i, "aa_rank_converged_rows", ""); ok {
			converged += v
		}
		if v, ok := a.rankSeries(i, "aa_rank_frontier_density", ""); ok {
			frontierBits += v * r
			frontierWeighted += r
		}
	}

	gauge := func(name, help string, samples ...TextSample) TextFamily {
		return TextFamily{Name: name, Help: help, Type: "gauge", Samples: samples}
	}
	one := func(name, help string, v float64) TextFamily {
		return gauge(name, help, TextSample{Name: name, Value: v})
	}

	fams := []TextFamily{
		one("aa_cluster_ranks_total", "Ranks in the mesh manifest.", float64(a.ranks)),
		one("aa_cluster_ranks_up", "Ranks that answered the most recent scrape.", float64(up)),
		gauge("aa_cluster_scrape_stale", "1 when the rank missed the last scrape and its series are republished from the last good state.", staleSamples...),
		one("aa_step_imbalance", "Paper Fig. 5 live: max/mean per-rank busy seconds of the latest RC step, measured across OS processes.", Imbalance(busy)),
	}
	if haveStep {
		fams = append(fams,
			one("aa_cluster_step", "Highest RC step any rank has reported.", maxStep),
			one("aa_cluster_step_skew", "Spread between the fastest and slowest rank's reported RC step.", maxStep-minStep),
		)
	}
	if rows > 0 {
		fams = append(fams,
			one("aa_cluster_rows", "Distance-matrix rows across all ranks.", rows),
			one("aa_cluster_dirty_rows", "Dirty (unconverged) rows across all ranks.", dirty),
			one("aa_cluster_dirty_fraction", "Cluster-wide dirty-row fraction: the anytime bound-quality proxy.", dirty/rows),
			one("aa_cluster_converged_rows", "Converged rows across all ranks.", converged),
		)
	}
	if frontierWeighted > 0 {
		fams = append(fams,
			one("aa_cluster_frontier_density", "Row-weighted mean frontier density across ranks.", frontierBits/frontierWeighted),
		)
	}

	epSamples := make([]TextSample, 0, len(a.episodes))
	for i, ep := range a.episodes {
		epSamples = append(epSamples, TextSample{
			Name:   "aa_cluster_episode_degraded_steps",
			Labels: Labels("episode", strconv.Itoa(i+1)),
			Value:  ep.steps,
		})
	}
	sort.SliceStable(epSamples, func(i, j int) bool { return epSamples[i].Labels < epSamples[j].Labels })
	fams = append(fams,
		one("aa_cluster_outage_episodes_total", "Outage episodes observed: scrapes where any rank entered degraded mode.", float64(len(a.episodes))),
	)
	if len(epSamples) > 0 {
		fams = append(fams, TextFamily{
			Name: "aa_cluster_episode_degraded_steps", Type: "gauge",
			Help:    "Degraded RC steps attributed to each outage episode (cluster sum).",
			Samples: epSamples,
		})
	}
	return fams
}

// ServeHTTP scrapes every rank and answers with the merged exposition —
// mount at /metrics on the aggregator port.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	a.Scrape(req.Context())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.WriteTo(w)
}
