package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file is the text-level half of the cluster observability plane:
// parsing a Prometheus exposition back into structured families, injecting
// a rank label into every series, and re-rendering the merged result. The
// aggregator in agg.go composes these to republish N per-rank /metrics
// endpoints as one.

// TextSample is one parsed sample line: a metric name, its rendered label
// set (`{a="b"}` or ""), and the value. For histograms the _bucket/_sum/
// _count suffix stays in Name — the merge is purely textual, so cumulative
// bucket semantics survive untouched.
type TextSample struct {
	Name   string
	Labels string
	Value  float64
}

// Key returns the full series key, name plus rendered labels.
func (s TextSample) Key() string { return s.Name + s.Labels }

// TextFamily is one metric family parsed from an exposition: the HELP/TYPE
// header plus every sample that followed it.
type TextFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []TextSample
}

// ParseFamilies parses a Prometheus text exposition (the format Registry
// WriteTo emits) preserving family structure, order, and HELP/TYPE
// metadata — the structured inverse of Render, where ParseText is the flat
// one. Samples whose name extends the most recent family header (histogram
// _bucket/_sum/_count series) are attached to that family; a sample with
// no preceding header starts an untyped family of its own.
func ParseFamilies(r io.Reader) ([]TextFamily, error) {
	var fams []TextFamily
	index := map[string]int{} // family name -> fams slot
	cur := -1                 // most recent family slot

	ensure := func(name string) int {
		if i, ok := index[name]; ok {
			return i
		}
		fams = append(fams, TextFamily{Name: name, Type: "untyped"})
		index[name] = len(fams) - 1
		return len(fams) - 1
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // bare comment
			}
			switch fields[1] {
			case "HELP":
				i := ensure(fields[2])
				if len(fields) == 4 {
					fams[i].Help = fields[3]
				}
				cur = i
			case "TYPE":
				i := ensure(fields[2])
				if len(fields) == 4 {
					fams[i].Type = fields[3]
				}
				cur = i
			}
			continue
		}
		// Sample line: value after the last space (label values may contain
		// spaces), labels between the first '{' and its closing '}'.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: unparseable metric line %q", line)
		}
		series := strings.TrimSpace(line[:sp])
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metric %q: %w", series, err)
		}
		name, labels := series, ""
		if b := strings.IndexByte(series, '{'); b >= 0 {
			name, labels = series[:b], series[b:]
		}
		// Attach to the open family when the sample belongs to it (exact
		// name, or a histogram-suffixed extension of it).
		slot := -1
		if cur >= 0 {
			fn := fams[cur].Name
			if name == fn || (strings.HasPrefix(name, fn) &&
				(name == fn+"_bucket" || name == fn+"_sum" || name == fn+"_count")) {
				slot = cur
			}
		}
		if slot < 0 {
			slot = ensure(name)
			cur = slot
		}
		fams[slot].Samples = append(fams[slot].Samples, TextSample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// InjectLabel returns the rendered label set with key="value" prepended,
// e.g. InjectLabel(`{le="0.1"}`, "rank", "2") == `{rank="2",le="0.1"}` and
// InjectLabel("", "rank", "2") == `{rank="2"}`. The aggregator uses it to
// namespace every scraped per-rank series. A label set that already binds
// the key (some rank series self-label with their rank) is returned
// unchanged — the source of truth is the exporting process.
func InjectLabel(labels, key, value string) string {
	if strings.HasPrefix(labels, "{"+key+`="`) || strings.Contains(labels, ","+key+`="`) {
		return labels
	}
	pair := key + `="` + escapeLabel(value) + `"`
	if labels == "" || labels == "{}" {
		return "{" + pair + "}"
	}
	return "{" + pair + "," + labels[1:]
}

// WriteFamilies renders families back into the Prometheus text exposition
// format, preserving order. The round-trip ParseFamilies -> WriteFamilies
// is stable, so merged output stays scrapeable by anything that accepted
// the per-rank originals.
func WriteFamilies(w io.Writer, fams []TextFamily) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" || f.Type != "untyped" {
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Type)
		}
		for _, s := range f.Samples {
			fmt.Fprintf(bw, "%s%s %s\n", s.Name, s.Labels, formatFloat(s.Value))
		}
	}
	return bw.Flush()
}

// MergeFamilies merges per-rank family lists into one exposition, keyed by
// family name in first-seen order. Inputs are expected to already carry
// distinguishing labels (see InjectLabel); samples are concatenated in
// input order, and the first non-empty HELP/TYPE wins.
func MergeFamilies(inputs ...[]TextFamily) []TextFamily {
	var out []TextFamily
	index := map[string]int{}
	for _, fams := range inputs {
		for _, f := range fams {
			i, ok := index[f.Name]
			if !ok {
				out = append(out, TextFamily{Name: f.Name, Help: f.Help, Type: f.Type})
				i = len(out) - 1
				index[f.Name] = i
			}
			if out[i].Help == "" {
				out[i].Help = f.Help
			}
			if out[i].Type == "untyped" && f.Type != "" {
				out[i].Type = f.Type
			}
			out[i].Samples = append(out[i].Samples, f.Samples...)
		}
	}
	return out
}
