package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerRingOrderAndDrop(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(Span{Kind: KindRCStep, Proc: -1, Step: int32(i)})
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := int32(i + 2); s.Step != want {
			t.Fatalf("span %d has step %d, want %d (oldest-first order)", i, s.Step, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: Len=%d Dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	tr.Record(Span{Kind: KindDD})
	tr.Reset()
	if tr.Now() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer methods not inert")
	}
}

// The disabled-tracer instrumentation path must be allocation-free: this is
// the contract that makes always-on instrumentation acceptable in the RC
// hot loop.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	s := Span{Kind: KindRCRelax, Proc: 1, Step: 7, Value: 42}
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			t.Fatal("unreachable")
		}
		tr.Record(s)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocates %.1f per op, want 0", allocs)
	}
}

// A live tracer's steady-state Record must not allocate either (the ring is
// preallocated).
func TestEnabledTracerZeroAllocRecord(t *testing.T) {
	tr := NewTracer(64)
	s := Span{Kind: KindRCRelax, Proc: 1, Step: 7}
	allocs := testing.AllocsPerRun(1000, func() { tr.Record(s) })
	if allocs != 0 {
		t.Fatalf("enabled tracer Record allocates %.1f per op, want 0", allocs)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("round trip %d -> %q -> %d/%v", k, name, back, ok)
		}
	}
	if _, ok := KindFromString("no-such-kind"); ok {
		t.Fatal("bogus kind resolved")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Span{
		{Kind: KindDD, Proc: -1, Step: 0, Wall: 5 * time.Microsecond, WallDur: time.Millisecond, Value: 3},
		{Kind: KindRCRelax, Proc: 2, Step: 9, Virt: time.Second, VirtDur: 250 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("span %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	spans := []Span{
		{Kind: KindRCStep, Proc: -1, Step: 1, Wall: time.Millisecond, WallDur: 2 * time.Millisecond, Virt: time.Second, VirtDur: time.Second},
		{Kind: KindRCRelax, Proc: 0, Step: 1, Wall: time.Millisecond, WallDur: time.Millisecond},
	}
	for _, virtual := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, spans, virtual); err != nil {
			t.Fatal(err)
		}
		var events []map[string]any
		if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
			t.Fatalf("virtual=%v: not valid JSON: %v\n%s", virtual, err, buf.String())
		}
		if len(events) != 2 {
			t.Fatalf("got %d events, want 2", len(events))
		}
		if events[0]["ph"] != "X" || events[0]["name"] != "rc-step" {
			t.Fatalf("unexpected first event: %v", events[0])
		}
		// Engine-wide span lands on tid 0, proc 0 on tid 1.
		if events[0]["tid"].(float64) != 0 || events[1]["tid"].(float64) != 1 {
			t.Fatalf("tid mapping wrong: %v / %v", events[0]["tid"], events[1]["tid"])
		}
		wantTS := 1000.0 // 1ms in µs
		if virtual {
			wantTS = 1e6 // 1s in µs
		}
		if got := events[0]["ts"].(float64); got != wantTS {
			t.Fatalf("virtual=%v ts = %v, want %v", virtual, got, wantTS)
		}
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		busy []time.Duration
		want float64
	}{
		{nil, 1},
		{[]time.Duration{0, 0}, 1},
		{[]time.Duration{100, 100}, 1},
		{[]time.Duration{300 * time.Microsecond, 100 * time.Microsecond}, 1.5},
		{[]time.Duration{4, 0, 0, 0}, 4},
	}
	for _, c := range cases {
		if got := Imbalance(c.busy); got != c.want {
			t.Fatalf("Imbalance(%v) = %v, want %v", c.busy, got, c.want)
		}
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("aa_events_total", "Events seen.", Labels("outcome", "admitted"))
	c.Add(5)
	r.Counter("aa_events_total", "Events seen.", Labels("outcome", "rejected")).Inc()
	g := r.Gauge("aa_queue_depth", "Pending events.", "")
	g.SetInt(3)
	r.GaugeFunc("aa_up", "Always one.", "", func() float64 { return 1 })
	h := r.Histogram("aa_latency_seconds", "Latency.", Labels("route", "topk"), []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	text := r.Render()
	for _, want := range []string{
		"# HELP aa_events_total Events seen.",
		"# TYPE aa_events_total counter",
		`aa_events_total{outcome="admitted"} 5`,
		`aa_events_total{outcome="rejected"} 1`,
		"# TYPE aa_queue_depth gauge",
		"aa_queue_depth 3",
		"aa_up 1",
		"# TYPE aa_latency_seconds histogram",
		`aa_latency_seconds_bucket{route="topk",le="0.01"} 1`,
		`aa_latency_seconds_bucket{route="topk",le="0.1"} 2`,
		`aa_latency_seconds_bucket{route="topk",le="+Inf"} 3`,
		`aa_latency_seconds_sum{route="topk"} 5.055`,
		`aa_latency_seconds_count{route="topk"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryHistogramNoLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("aa_step_seconds", "Step wall time.", "", []float64{1})
	h.Observe(0.5)
	text := r.Render()
	for _, want := range []string{
		`aa_step_seconds_bucket{le="1"} 1`,
		`aa_step_seconds_bucket{le="+Inf"} 1`,
		"aa_step_seconds_sum 0.5",
		"aa_step_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, text)
		}
	}
}

func TestLabelsEscaping(t *testing.T) {
	got := Labels("path", `a"b\c`)
	want := `{path="a\"b\\c"}`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
}
