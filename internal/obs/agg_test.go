package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// fakeRank is a scriptable per-rank exposition source: each Scrape serves
// the rank's current text, or an error when down.
type fakeRank struct {
	text string
	down bool
}

func fakeFetch(ranks []*fakeRank) func(ctx context.Context, rank int) (io.ReadCloser, error) {
	return func(_ context.Context, rank int) (io.ReadCloser, error) {
		r := ranks[rank]
		if r.down {
			return nil, errors.New("connection refused")
		}
		return io.NopCloser(strings.NewReader(r.text)), nil
	}
}

// rankText renders a minimal per-rank exposition with the quality gauges
// the aggregator consumes.
func rankText(rank int, step int, busy float64, rows, dirty int, degraded bool, degradedSteps int) string {
	d := 0
	if degraded {
		d = 1
	}
	return fmt.Sprintf(`# HELP aa_rank_step Current RC step.
# TYPE aa_rank_step gauge
aa_rank_step{rank="%d"} %d
# HELP aa_rank_step_busy_seconds Busy time of the last RC step.
# TYPE aa_rank_step_busy_seconds gauge
aa_rank_step_busy_seconds{rank="%d"} %g
# HELP aa_rank_rows Rows owned.
# TYPE aa_rank_rows gauge
aa_rank_rows{rank="%d"} %d
# HELP aa_rank_dirty_rows Dirty rows.
# TYPE aa_rank_dirty_rows gauge
aa_rank_dirty_rows{rank="%d"} %d
# HELP aa_rank_degraded In degraded mode.
# TYPE aa_rank_degraded gauge
aa_rank_degraded{rank="%d"} %d
# HELP aa_rank_degraded_steps_total Degraded steps.
# TYPE aa_rank_degraded_steps_total counter
aa_rank_degraded_steps_total{rank="%d"} %d
`, rank, step, rank, busy, rank, rows, rank, dirty, rank, d, rank, degradedSteps)
}

func scrapeMap(t *testing.T, a *Aggregator) map[string]float64 {
	t.Helper()
	a.Scrape(context.Background())
	var sb strings.Builder
	if _, err := a.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	m, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("merged exposition does not reparse: %v\n%s", err, sb.String())
	}
	return m
}

// TestAggregatorMergesAndComputes drives a healthy 3-rank scrape and checks
// the merged exposition carries every rank's series rank-labeled plus the
// computed cross-rank gauges.
func TestAggregatorMergesAndComputes(t *testing.T) {
	ranks := []*fakeRank{
		{text: rankText(0, 5, 0.10, 100, 40, false, 0)},
		{text: rankText(1, 5, 0.30, 100, 10, false, 0)},
		{text: rankText(2, 5, 0.20, 100, 10, false, 0)},
	}
	a := NewAggregator(3, 0, fakeFetch(ranks))
	m := scrapeMap(t, a)

	if got := m["aa_cluster_ranks_up"]; got != 3 {
		t.Errorf("ranks_up = %g, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if _, ok := m[fmt.Sprintf(`aa_rank_step{rank="%d"}`, i)]; !ok {
			t.Errorf("merged exposition missing rank %d series", i)
		}
	}
	// busy = {0.1, 0.3, 0.2}: max 0.3, mean 0.2 → imbalance 1.5.
	if got := m["aa_step_imbalance"]; got < 1.49 || got > 1.51 {
		t.Errorf("aa_step_imbalance = %g, want 1.5", got)
	}
	if got := m["aa_cluster_dirty_fraction"]; got != 0.2 {
		t.Errorf("dirty_fraction = %g, want 0.2", got)
	}
	if got := m["aa_cluster_step"]; got != 5 {
		t.Errorf("cluster_step = %g, want 5", got)
	}
}

// TestAggregatorRankDownMidScrape kills a rank between scrapes: its series
// must survive stale-marked at the last good values, ranks_up must drop,
// and the degraded episode the survivors report must open exactly one
// episode with its degraded-step count.
func TestAggregatorRankDownMidScrape(t *testing.T) {
	ranks := []*fakeRank{
		{text: rankText(0, 5, 0.1, 100, 0, false, 0)},
		{text: rankText(1, 5, 0.1, 100, 0, false, 0)},
		{text: rankText(2, 5, 0.1, 100, 0, false, 0)},
	}
	a := NewAggregator(3, 0, fakeFetch(ranks))
	m := scrapeMap(t, a)
	if m["aa_cluster_ranks_up"] != 3 || m[`aa_cluster_scrape_stale{rank="2"}`] != 0 {
		t.Fatalf("healthy scrape wrong: %v", m)
	}

	// Rank 2 dies; survivors enter degraded mode and keep stepping.
	ranks[2].down = true
	ranks[0].text = rankText(0, 8, 0.1, 100, 0, true, 3)
	ranks[1].text = rankText(1, 8, 0.1, 100, 0, true, 3)
	m = scrapeMap(t, a)

	if got := m["aa_cluster_ranks_up"]; got != 2 {
		t.Errorf("ranks_up = %g, want 2", got)
	}
	if got := m[`aa_cluster_scrape_stale{rank="2"}`]; got != 1 {
		t.Errorf("rank 2 not stale-marked: %g", got)
	}
	// Stale, not dropped: rank 2's last good series are still published.
	if got := m[`aa_rank_step{rank="2"}`]; got != 5 {
		t.Errorf("rank 2 last-good step = %g, want 5", got)
	}
	if got := m["aa_cluster_outage_episodes_total"]; got != 1 {
		t.Errorf("episodes = %g, want 1", got)
	}
	if got := m[`aa_cluster_episode_degraded_steps{episode="1"}`]; got != 6 {
		t.Errorf("episode 1 degraded steps = %g, want 6", got)
	}

	// Rank 2 rejoins clean: episode closes, stale mark clears, and a later
	// second outage opens episode 2 instead of extending episode 1.
	ranks[2].down = false
	ranks[2].text = rankText(2, 9, 0.1, 100, 0, false, 0)
	ranks[0].text = rankText(0, 9, 0.1, 100, 0, false, 4)
	ranks[1].text = rankText(1, 9, 0.1, 100, 0, false, 4)
	m = scrapeMap(t, a)
	if m["aa_cluster_ranks_up"] != 3 || m[`aa_cluster_scrape_stale{rank="2"}`] != 0 {
		t.Errorf("rejoin state wrong: up=%g stale=%g", m["aa_cluster_ranks_up"], m[`aa_cluster_scrape_stale{rank="2"}`])
	}
	if got := m[`aa_cluster_episode_degraded_steps{episode="1"}`]; got != 8 {
		t.Errorf("closed episode 1 degraded steps = %g, want 8", got)
	}

	ranks[1].text = rankText(1, 12, 0.1, 100, 0, true, 6)
	m = scrapeMap(t, a)
	if got := m["aa_cluster_outage_episodes_total"]; got != 2 {
		t.Errorf("episodes after second outage = %g, want 2", got)
	}
	if got := m[`aa_cluster_episode_degraded_steps{episode="2"}`]; got != 2 {
		t.Errorf("episode 2 degraded steps = %g, want 2", got)
	}
	if got := m[`aa_cluster_episode_degraded_steps{episode="1"}`]; got != 8 {
		t.Errorf("episode 1 must stay frozen: %g", got)
	}
}

// TestAggregatorNeverSeenRank checks a rank that never answered is counted
// down but contributes no phantom series.
func TestAggregatorNeverSeenRank(t *testing.T) {
	ranks := []*fakeRank{
		{text: rankText(0, 2, 0.1, 50, 5, false, 0)},
		{down: true},
	}
	a := NewAggregator(2, 0, fakeFetch(ranks))
	m := scrapeMap(t, a)
	if got := m["aa_cluster_ranks_up"]; got != 1 {
		t.Errorf("ranks_up = %g, want 1", got)
	}
	// Never-seen ranks are not stale (there is no last-good state to serve).
	if got := m[`aa_cluster_scrape_stale{rank="1"}`]; got != 0 {
		t.Errorf("never-seen rank marked stale: %g", got)
	}
	if _, ok := m[`aa_rank_step{rank="1"}`]; ok {
		t.Errorf("phantom series for never-seen rank")
	}
}
