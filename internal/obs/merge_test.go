package obs

import (
	"strings"
	"testing"
)

// buildRegistry assembles a registry exercising every family type with and
// without labels — the shapes the cluster merge path must survive.
func buildRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("aa_events_total", "Events.", "")
	c.Add(7)
	g := r.Gauge("aa_rank_step", "Step.", Labels("rank", "0"))
	g.SetInt(42)
	g2 := r.Gauge("aa_rank_step_busy_seconds", "Busy.", Labels("rank", "0"))
	g2.Set(0.125)
	h := r.Histogram("aa_latency_seconds", "Latency.", Labels("route", "topk"), []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2.5)
	return r
}

// TestParseTextRoundTrip checks ParseText is the exact flat inverse of
// Render for histograms and labeled series: every rendered sample line maps
// to one key with its value.
func TestParseTextRoundTrip(t *testing.T) {
	r := buildRegistry()
	text := r.Render()
	m, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	want := map[string]float64{
		"aa_events_total":                                   7,
		`aa_rank_step{rank="0"}`:                            42,
		`aa_rank_step_busy_seconds{rank="0"}`:               0.125,
		`aa_latency_seconds_bucket{route="topk",le="0.01"}`: 1,
		`aa_latency_seconds_bucket{route="topk",le="0.1"}`:  2,
		`aa_latency_seconds_bucket{route="topk",le="1"}`:    2,
		`aa_latency_seconds_bucket{route="topk",le="+Inf"}`: 3,
		`aa_latency_seconds_sum{route="topk"}`:              2.555,
		`aa_latency_seconds_count{route="topk"}`:            3,
	}
	if len(m) != len(want) {
		t.Fatalf("sample count = %d, want %d\n%s", len(m), len(want), text)
	}
	for k, v := range want {
		got, ok := m[k]
		if !ok {
			t.Fatalf("missing sample %q in\n%s", k, text)
		}
		if got != v {
			t.Errorf("%s = %g, want %g", k, got, v)
		}
	}
}

// TestParseFamiliesRoundTrip checks the structured parse → render loop is
// stable: parsing the rendered form again yields identical families, and
// histogram buckets stay attached to their family.
func TestParseFamiliesRoundTrip(t *testing.T) {
	r := buildRegistry()
	text := r.Render()
	fams, err := ParseFamilies(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseFamilies: %v", err)
	}
	if len(fams) != 4 {
		t.Fatalf("families = %d, want 4: %+v", len(fams), fams)
	}
	var hist *TextFamily
	for i := range fams {
		if fams[i].Name == "aa_latency_seconds" {
			hist = &fams[i]
		}
	}
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing or untyped: %+v", fams)
	}
	if len(hist.Samples) != 6 { // 4 buckets + sum + count
		t.Fatalf("histogram samples = %d, want 6: %+v", len(hist.Samples), hist.Samples)
	}

	var sb strings.Builder
	if err := WriteFamilies(&sb, fams); err != nil {
		t.Fatalf("WriteFamilies: %v", err)
	}
	again, err := ParseFamilies(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	var sb2 strings.Builder
	if err := WriteFamilies(&sb2, again); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if sb.String() != sb2.String() {
		t.Errorf("render not stable under round-trip:\n--- first\n%s\n--- second\n%s", sb.String(), sb2.String())
	}
}

func TestInjectLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", `{rank="2"}`},
		{`{le="0.1"}`, `{rank="2",le="0.1"}`},
		{`{route="topk",le="+Inf"}`, `{rank="2",route="topk",le="+Inf"}`},
		// Already rank-labeled series pass through unchanged.
		{`{rank="2"}`, `{rank="2"}`},
		{`{rank="0",peer="1"}`, `{rank="0",peer="1"}`},
		{`{peer="1",rank="0"}`, `{peer="1",rank="0"}`},
		// A label merely suffixed with the key is still injected.
		{`{peer_rank="1"}`, `{rank="2",peer_rank="1"}`},
	}
	for _, c := range cases {
		if got := InjectLabel(c.in, "rank", "2"); got != c.want {
			t.Errorf("InjectLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMergeFamiliesKeepsOrderAndHeaders(t *testing.T) {
	a := []TextFamily{
		{Name: "aa_x", Help: "X.", Type: "gauge", Samples: []TextSample{{Name: "aa_x", Labels: `{rank="0"}`, Value: 1}}},
	}
	b := []TextFamily{
		{Name: "aa_y", Help: "Y.", Type: "counter", Samples: []TextSample{{Name: "aa_y", Labels: `{rank="1"}`, Value: 2}}},
		{Name: "aa_x", Help: "X.", Type: "gauge", Samples: []TextSample{{Name: "aa_x", Labels: `{rank="1"}`, Value: 3}}},
	}
	m := MergeFamilies(a, b)
	if len(m) != 2 || m[0].Name != "aa_x" || m[1].Name != "aa_y" {
		t.Fatalf("merge order wrong: %+v", m)
	}
	if len(m[0].Samples) != 2 {
		t.Fatalf("aa_x samples = %d, want 2", len(m[0].Samples))
	}
	var sb strings.Builder
	WriteFamilies(&sb, m)
	out := sb.String()
	if strings.Count(out, "# TYPE aa_x gauge") != 1 {
		t.Errorf("merged exposition must emit one TYPE header per family:\n%s", out)
	}
	m2, err := ParseFamilies(strings.NewReader(out))
	if err != nil || len(m2) != 2 {
		t.Errorf("merged exposition must reparse cleanly: %v, %+v", err, m2)
	}
}
