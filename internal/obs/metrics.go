package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is usable, so
// counters embed directly in structs (serve.Counters keeps its field layout).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0; negative deltas are the
// caller's bug and are applied as-is to keep the hot path branch-free).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative-style buckets and keeps
// the running sum, rendered in the Prometheus histogram convention
// (_bucket{le=...}, _sum, _count). Bounds must be ascending; a +Inf bucket is
// implicit.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the overflow (+Inf) bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// DefaultLatencyBounds covers request latencies from 100µs to ~10s in
// roughly powers of ~3, in seconds.
var DefaultLatencyBounds = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metricType is the Prometheus TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// sample is one labeled series within a family. Exactly one of the value
// sources is set.
type sample struct {
	labels    string // rendered label set, e.g. `{proc="0"}`, or ""
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	counterFn func() float64
	hist      *Histogram
}

// family is one metric name with its HELP/TYPE header and series.
type family struct {
	name    string
	help    string
	typ     metricType
	samples []sample
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration happens at construction time; Render may
// be called concurrently with metric updates.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*family{}}
}

func (r *Registry) familyFor(name, help string, typ metricType) *family {
	f, ok := r.index[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.index[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	return f
}

// Labels renders a label set in registration order, e.g. Labels("proc", "0").
// Pairs must alternate name, value.
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: Labels needs name/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter registers (or extends) a counter family and returns a new counter
// for the given label set.
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.RegisterCounter(c, name, help, labels)
	return c
}

// RegisterCounter attaches an existing counter (e.g. a serve.Counters field)
// to the registry under name+labels.
func (r *Registry) RegisterCounter(c *Counter, name, help, labels string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeCounter)
	f.samples = append(f.samples, sample{labels: labels, counter: c})
}

// Gauge registers a gauge series and returns it.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(g, name, help, labels)
	return g
}

// RegisterGauge attaches an existing gauge to the registry.
func (r *Registry) RegisterGauge(g *Gauge, name, help, labels string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeGauge)
	f.samples = append(f.samples, sample{labels: labels, gauge: g})
}

// GaugeFunc registers a gauge whose value is pulled at render time. fn must
// be safe to call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeGauge)
	f.samples = append(f.samples, sample{labels: labels, gaugeFn: fn})
}

// CounterFunc registers a counter whose value is pulled at render time —
// for totals derived from another component's counters (e.g. engine metric
// snapshots rebased across restarts). fn must be safe to call from the
// scrape goroutine and must be monotone non-decreasing.
func (r *Registry) CounterFunc(name, help, labels string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeCounter)
	f.samples = append(f.samples, sample{labels: labels, counterFn: fn})
}

// Histogram registers a histogram series with the given bucket bounds.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, typeHistogram)
	f.samples = append(f.samples, sample{labels: labels, hist: h})
	return h
}

// WriteTo renders every family in the Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.samples {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.counter.Load())
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge.Load()))
			case s.gaugeFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.gaugeFn()))
			case s.counterFn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatFloat(s.counterFn()))
			case s.hist != nil:
				writeHistogram(&b, f.name, s.labels, s.hist)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Render returns the full exposition as a string.
func (r *Registry) Render() string {
	var sb strings.Builder
	r.WriteTo(&sb) // strings.Builder never errors
	return sb.String()
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	// Bucket label sets merge the series labels with le="...".
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	prefix := "{"
	if inner != "" {
		prefix = "{" + inner + ","
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%sle=\"%s\"} %d\n", name, prefix, formatFloat(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", name, prefix, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.Count())
}

// formatFloat renders floats the way Prometheus clients expect: integers
// without an exponent, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// ParseText parses a Prometheus text exposition (the format WriteTo emits)
// into a flat map keyed by the full sample name including any label set,
// e.g. `aa_proc_rows{proc="0"}`. Comment and blank lines are skipped;
// timestamps are not supported. The inverse of Render, for test scrapes and
// the stdlib-only serve client.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; label values may
		// contain spaces, so split from the right.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("obs: unparseable metric line %q", line)
		}
		name := strings.TrimSpace(line[:i])
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metric %q: %w", name, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
