package obs

import (
	"math"
	"sort"
	"time"
)

// MergeTraces merges per-rank JSONL traces (one span slice per file) into a
// single timeline. Each rank's tracer has its own wall epoch (process start),
// so raw Wall offsets are mutually meaningless; the BSP step discipline gives
// the alignment instead: every rank emits one rc-step span per RC step, and
// step K ends at the same barrier on every rank. MergeTraces therefore
// shifts each file so its rc-step anchors line up with the anchors already
// merged, anchored on the smallest shared step — which is exactly what makes
// a SIGKILL→degraded→rejoin episode read as one timeline: the rejoined
// process's trace (fresh epoch, step counter restored from the rejoin-go
// payload) lands at the survivor ranks' wall position for that step.
//
// The result is deterministic in content, not argument order: input files
// are processed in a canonical order derived from their spans (earliest
// anchor step, then lowest rank), and the merged output is sorted by
// (Wall, Rank, Proc, Step, Kind) with the timeline normalized to start at
// zero. Files with no rc-step anchor (a rank killed before its first step
// completed) merge unshifted relative to the normalized origin.
func MergeTraces(files [][]Span) []Span {
	type traceFile struct {
		spans   []Span
		anchors map[int32]time.Duration // step -> earliest rc-step span start
		minStep int32
		minRank int32
	}
	tfs := make([]traceFile, 0, len(files))
	for _, spans := range files {
		if len(spans) == 0 {
			continue
		}
		tf := traceFile{spans: spans, anchors: map[int32]time.Duration{}, minStep: math.MaxInt32, minRank: math.MaxInt32}
		for _, s := range spans {
			if s.Rank < tf.minRank {
				tf.minRank = s.Rank
			}
			if s.Kind != KindRCStep {
				continue
			}
			if w, ok := tf.anchors[s.Step]; !ok || s.Wall < w {
				tf.anchors[s.Step] = s.Wall
			}
			if s.Step < tf.minStep {
				tf.minStep = s.Step
			}
		}
		tfs = append(tfs, tf)
	}
	sort.SliceStable(tfs, func(i, j int) bool {
		if tfs[i].minStep != tfs[j].minStep {
			return tfs[i].minStep < tfs[j].minStep
		}
		return tfs[i].minRank < tfs[j].minRank
	})

	merged := map[int32]time.Duration{} // step -> merged-timeline anchor
	var out []Span
	for _, tf := range tfs {
		// Align on the smallest step this file shares with the merged
		// anchors; the first file (and anchorless files) shift by zero.
		var offset time.Duration
		bestStep := int32(math.MaxInt32)
		for step := range tf.anchors {
			if _, ok := merged[step]; ok && step < bestStep {
				bestStep = step
			}
		}
		if bestStep != math.MaxInt32 {
			offset = merged[bestStep] - tf.anchors[bestStep]
		}
		for step, w := range tf.anchors {
			if _, ok := merged[step]; !ok {
				merged[step] = w + offset
			}
		}
		for _, s := range tf.spans {
			s.Wall += offset
			out = append(out, s)
		}
	}

	// Normalize the merged timeline to start at zero and fix a canonical
	// span order so repeated merges of the same traces are byte-identical.
	var min time.Duration = math.MaxInt64
	for _, s := range out {
		if s.Wall < min {
			min = s.Wall
		}
	}
	for i := range out {
		out[i].Wall -= min
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Wall != b.Wall {
			return a.Wall < b.Wall
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		return a.Kind < b.Kind
	})
	return out
}
