// Package obs is the unified observability layer of the anytime-anywhere
// engine: structured phase-level tracing and a Prometheus-style metrics
// registry, both zero-dependency and zero-cost when disabled.
//
// Tracing records Spans — one per engine phase occurrence (DD, per-processor
// IA sweeps, RC ship/relax, refine tile rounds, checkpoint writes/restores,
// crashes, rejoins, fault retries) — into a fixed-capacity ring buffer. Every
// span carries both clocks the system runs on: the real wall clock of the
// in-process simulation and the LogP virtual clock of the simulated cluster
// (the quantity the paper plots). A nil *Tracer is a valid tracer: every
// method is nil-safe, so instrumentation compiles down to a pointer test on
// the disabled path and the steady-state enabled path allocates nothing (the
// ring is preallocated; old spans are overwritten once it wraps).
//
// Recorded traces export as JSONL (one span per line, replayable by
// cmd/aatrace) and as Chrome trace-event JSON loadable in chrome://tracing
// or https://ui.perfetto.dev (see export.go).
//
// The metrics side (metrics.go) is a registry of counters, gauges, pull-time
// gauge functions, and histograms rendered in the Prometheus text exposition
// format; internal/serve mounts it at GET /metrics.
package obs

import (
	"sync"
	"time"
)

// Kind identifies the engine phase a Span measures.
type Kind uint8

const (
	// KindDD is the domain-decomposition (partitioning) phase.
	KindDD Kind = iota
	// KindIA is one processor's initial-approximation local APSP sweep.
	KindIA
	// KindRCShip is one processor's boundary-DV shipping phase of an RC step.
	KindRCShip
	// KindRCRelax is one processor's relax phase of an RC step: external-delta
	// relaxation plus (when enabled) the tiled local refinement.
	KindRCRelax
	// KindRCRefineTile is one tile round of the blocked Floyd–Warshall local
	// refinement: the leader-run diagonal phase A (Value = active pivots).
	KindRCRefineTile
	// KindRCStep is one whole recombination step, engine-wide.
	KindRCStep
	// KindCheckpointWrite is a full engine checkpoint serialization.
	KindCheckpointWrite
	// KindCheckpointRestore is an engine reconstruction from a checkpoint.
	KindCheckpointRestore
	// KindShardWrite is one processor's recovery-shard serialization
	// (Value = shard bytes).
	KindShardWrite
	// KindCrash is a scheduled processor failure (Proc = the processor).
	KindCrash
	// KindRejoin is a crashed processor's rejoin protocol.
	KindRejoin
	// KindFaultRetry is a lossy-link delivery that needed retransmissions or
	// was abandoned (Value = attempts; Proc = the sender).
	KindFaultRetry
	// KindChange is the incorporation of one dynamic change event.
	KindChange
	// KindRCFrontier is a per-step marker span for the frontier-masked
	// kernels (Value = masked relax ops performed that step).
	KindRCFrontier
	// KindRCExchange is one rank's blocking boundary exchange of an RC step
	// in the multi-process runtime: the wait for every peer's deltas and
	// step-end markers (Value = messages received).
	KindRCExchange

	numKinds
)

var kindNames = [numKinds]string{
	KindDD:                "dd",
	KindIA:                "ia",
	KindRCShip:            "rc-ship",
	KindRCRelax:           "rc-relax",
	KindRCRefineTile:      "rc-refine-tile",
	KindRCStep:            "rc-step",
	KindCheckpointWrite:   "checkpoint-write",
	KindCheckpointRestore: "checkpoint-restore",
	KindShardWrite:        "shard-write",
	KindCrash:             "crash",
	KindRejoin:            "rejoin",
	KindFaultRetry:        "fault-retry",
	KindChange:            "change",
	KindRCFrontier:        "rc-frontier",
	KindRCExchange:        "rc-exchange",
}

// String returns the stable wire name of the kind (used by the JSONL
// exporter and cmd/aatrace).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString resolves a wire name back to its Kind.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Span is one recorded phase occurrence. Wall offsets are relative to the
// tracer's epoch (its creation time); Virt offsets are the simulated LogP
// cluster clock. Engine-wide spans use Proc == -1.
//
// Rank is the OS-process rank in the multi-process runtime (0 in the
// in-process engine, where process == rank 0). Together with Step it is
// the distributed-trace correlation key: cmd/aatrace aligns per-rank
// trace files on matching (Rank, Step) rc-step spans.
type Span struct {
	Kind    Kind
	Proc    int32 // processor, or -1 for engine-wide spans
	Rank    int32 // OS-process rank in the multi-process runtime
	Step    int32 // RC step counter at emission
	Wall    time.Duration
	WallDur time.Duration
	Virt    time.Duration
	VirtDur time.Duration
	Value   int64 // kind-specific magnitude (rows, bytes, pivots, attempts)
}

// Tracer records spans into a preallocated ring buffer. All methods are safe
// for concurrent use and nil-safe: a nil *Tracer records nothing, costing one
// branch per instrumentation point and zero allocations.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	buf   []Span
	next  int   // next write slot
	total int64 // spans ever recorded
}

// DefaultCapacity is the ring size NewTracer uses for capacity <= 0:
// enough for several thousand RC steps of per-processor spans.
const DefaultCapacity = 1 << 16

// NewTracer returns a tracer whose ring holds the most recent `capacity`
// spans (DefaultCapacity when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{epoch: time.Now(), buf: make([]Span, capacity)}
}

// Enabled reports whether spans are being recorded. Instrumentation sites
// use it to skip clock reads on the disabled path.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the wall-clock offset since the tracer's epoch (0 on a nil
// tracer).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Record stores one span. On a nil tracer it is a no-op; on a live tracer it
// writes into the preallocated ring (overwriting the oldest span once the
// ring wraps) and never allocates.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.next] = s
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of spans currently held (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total < int64(len(t.buf)) {
		return int(t.total)
	}
	return len(t.buf)
}

// Dropped returns how many spans the ring has overwritten (0 on nil).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total < int64(len(t.buf)) {
		return 0
	}
	return t.total - int64(len(t.buf))
}

// Spans returns a copy of the retained spans in recording order (oldest
// first). Nil tracer: nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total < int64(len(t.buf)) {
		return append([]Span(nil), t.buf[:t.next]...)
	}
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Reset drops every retained span, keeping the ring and the epoch.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.next, t.total = 0, 0
	t.mu.Unlock()
}

// Imbalance is the paper's Fig. 5 load-balance metric over one step's
// per-processor virtual busy times: max/mean. A perfectly balanced step is
// 1.0; an all-idle step reports 1.0 as well (trivially balanced).
func Imbalance(busy []time.Duration) float64 {
	if len(busy) == 0 {
		return 1
	}
	var max, sum time.Duration
	for _, b := range busy {
		if b > max {
			max = b
		}
		sum += b
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(busy))
	return float64(max) / mean
}
