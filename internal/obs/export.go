package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// spanJSON is the JSONL wire form of a Span. Durations are nanoseconds;
// the kind travels by name so traces stay readable and stable across
// Kind renumbering.
type spanJSON struct {
	Kind    string `json:"kind"`
	Proc    int32  `json:"proc"`
	Step    int32  `json:"step"`
	Wall    int64  `json:"wall_ns"`
	WallDur int64  `json:"wall_dur_ns"`
	Virt    int64  `json:"virt_ns"`
	VirtDur int64  `json:"virt_dur_ns"`
	Value   int64  `json:"value,omitempty"`
}

// WriteJSONL writes the spans one JSON object per line.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(spanJSON{
			Kind:    s.Kind.String(),
			Proc:    s.Proc,
			Step:    s.Step,
			Wall:    int64(s.Wall),
			WallDur: int64(s.WallDur),
			Virt:    int64(s.Virt),
			VirtDur: int64(s.VirtDur),
			Value:   s.Value,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into spans, skipping blank lines.
// Unknown kinds are an error: they indicate a trace from a newer build.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var sj spanJSON
		if err := json.Unmarshal(raw, &sj); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		k, ok := KindFromString(sj.Kind)
		if !ok {
			return nil, fmt.Errorf("line %d: unknown span kind %q", line, sj.Kind)
		}
		out = append(out, Span{
			Kind:    k,
			Proc:    sj.Proc,
			Step:    sj.Step,
			Wall:    time.Duration(sj.Wall),
			WallDur: time.Duration(sj.WallDur),
			Virt:    time.Duration(sj.Virt),
			VirtDur: time.Duration(sj.VirtDur),
			Value:   sj.Value,
		})
	}
	return out, sc.Err()
}

// chromeEvent is one Chrome trace-event ("X" complete event). Timestamps
// and durations are microseconds per the trace-event spec.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON array, loadable
// in chrome://tracing or Perfetto. Each processor becomes a thread (tid);
// engine-wide spans (Proc == -1) land on tid 0 alongside processor 0's lane
// offset by +1, i.e. tid = Proc+1 so the engine lane sorts first. When
// virtualClock is true the timeline is the LogP virtual clock (the paper's
// axis); otherwise it is wall time since the tracer epoch.
func WriteChromeTrace(w io.Writer, spans []Span, virtualClock bool) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i, s := range spans {
		ts, dur := s.Wall, s.WallDur
		if virtualClock {
			ts, dur = s.Virt, s.VirtDur
		}
		ev := chromeEvent{
			Name:  s.Kind.String(),
			Phase: "X",
			TS:    float64(ts) / float64(time.Microsecond),
			Dur:   float64(dur) / float64(time.Microsecond),
			PID:   1,
			TID:   int(s.Proc) + 1,
			Args: map[string]any{
				"step":  s.Step,
				"value": s.Value,
			},
		}
		if virtualClock {
			ev.Args["wall_us"] = float64(s.Wall) / float64(time.Microsecond)
		} else {
			ev.Args["virt_us"] = float64(s.Virt) / float64(time.Microsecond)
		}
		if i > 0 {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		if err := enc.Encode(ev); err != nil { // Encode appends the newline
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
