package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// spanJSON is the JSONL wire form of a Span. Durations are nanoseconds;
// the kind travels by name so traces stay readable and stable across
// Kind renumbering.
type spanJSON struct {
	Kind    string `json:"kind"`
	Proc    int32  `json:"proc"`
	Rank    int32  `json:"rank,omitempty"`
	Step    int32  `json:"step"`
	Wall    int64  `json:"wall_ns"`
	WallDur int64  `json:"wall_dur_ns"`
	Virt    int64  `json:"virt_ns"`
	VirtDur int64  `json:"virt_dur_ns"`
	Value   int64  `json:"value,omitempty"`
}

// WriteJSONL writes the spans one JSON object per line.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(spanJSON{
			Kind:    s.Kind.String(),
			Proc:    s.Proc,
			Rank:    s.Rank,
			Step:    s.Step,
			Wall:    int64(s.Wall),
			WallDur: int64(s.WallDur),
			Virt:    int64(s.Virt),
			VirtDur: int64(s.VirtDur),
			Value:   s.Value,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace back into spans, skipping blank lines.
// Unknown kinds are an error: they indicate a trace from a newer build.
func ReadJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var sj spanJSON
		if err := json.Unmarshal(raw, &sj); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		k, ok := KindFromString(sj.Kind)
		if !ok {
			return nil, fmt.Errorf("line %d: unknown span kind %q", line, sj.Kind)
		}
		out = append(out, Span{
			Kind:    k,
			Proc:    sj.Proc,
			Rank:    sj.Rank,
			Step:    sj.Step,
			Wall:    time.Duration(sj.Wall),
			WallDur: time.Duration(sj.WallDur),
			Virt:    time.Duration(sj.Virt),
			VirtDur: time.Duration(sj.VirtDur),
			Value:   sj.Value,
		})
	}
	return out, sc.Err()
}

// chromeEvent is one Chrome trace-event ("X" complete event). Timestamps
// and durations are microseconds per the trace-event spec.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON array, loadable
// in chrome://tracing or Perfetto. Each processor becomes a thread (tid);
// engine-wide spans (Proc == -1) land on tid 0 alongside processor 0's lane
// offset by +1, i.e. tid = Proc+1 so the engine lane sorts first. When
// virtualClock is true the timeline is the LogP virtual clock (the paper's
// axis); otherwise it is wall time since the tracer epoch.
func WriteChromeTrace(w io.Writer, spans []Span, virtualClock bool) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i, s := range spans {
		ts, dur := s.Wall, s.WallDur
		if virtualClock {
			ts, dur = s.Virt, s.VirtDur
		}
		ev := chromeEvent{
			Name:  s.Kind.String(),
			Phase: "X",
			TS:    float64(ts) / float64(time.Microsecond),
			Dur:   float64(dur) / float64(time.Microsecond),
			PID:   1,
			TID:   int(s.Proc) + 1,
			Args: map[string]any{
				"step":  s.Step,
				"value": s.Value,
			},
		}
		if virtualClock {
			ev.Args["wall_us"] = float64(s.Wall) / float64(time.Microsecond)
		} else {
			ev.Args["virt_us"] = float64(s.Virt) / float64(time.Microsecond)
		}
		if i > 0 {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		if err := enc.Encode(ev); err != nil { // Encode appends the newline
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONLFile writes the spans as JSONL to path atomically: the full
// file is staged at path+".tmp", fsynced, and renamed into place, mirroring
// the checkpoint/shard writers. A reader (or a supervisor collecting traces
// after SIGKILL) therefore always sees either the previous complete trace
// or the new one, never a torn file. Safe to call repeatedly — each call
// replaces the file with the full span set, so periodic flushing bounds
// how much a hard kill can lose without risking partial lines.
func WriteJSONLFile(path string, spans []Span) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteJSONL(f, spans); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// WriteChromeTraceByRank renders spans as a Chrome trace-event JSON array
// with one process lane per rank: pid = Rank+1 (named "rank N" via
// process_name metadata), tid = Proc+1 within the rank, so a merged
// multi-rank trace (see MergeTraces) reads as N aligned lanes in
// chrome://tracing or Perfetto. Clock semantics match WriteChromeTrace.
func WriteChromeTraceByRank(w io.Writer, spans []Span, virtualClock bool) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(ev) // Encode appends the newline
	}
	seen := map[int32]bool{}
	for _, s := range spans {
		if !seen[s.Rank] {
			seen[s.Rank] = true
			if err := emit(chromeEvent{
				Name:  "process_name",
				Phase: "M",
				PID:   int(s.Rank) + 1,
				Args:  map[string]any{"name": fmt.Sprintf("rank %d", s.Rank)},
			}); err != nil {
				return err
			}
		}
		ts, dur := s.Wall, s.WallDur
		if virtualClock {
			ts, dur = s.Virt, s.VirtDur
		}
		if err := emit(chromeEvent{
			Name:  s.Kind.String(),
			Phase: "X",
			TS:    float64(ts) / float64(time.Microsecond),
			Dur:   float64(dur) / float64(time.Microsecond),
			PID:   int(s.Rank) + 1,
			TID:   int(s.Proc) + 1,
			Args: map[string]any{
				"step":  s.Step,
				"value": s.Value,
			},
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
