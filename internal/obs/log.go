package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// Log formats accepted by NewLogger (the -log-format flag values).
const (
	LogText = "text"
	LogJSON = "json"
)

// NewLogger builds the structured logger the cluster binaries share:
// log/slog with either a human-readable text handler or a JSON handler
// (one object per line, machine-ingestable alongside the metrics plane).
// Components attach their correlation attributes — rank, step, episode —
// via logger.With, so a cluster-wide grep for `rank=2 episode=1` (or the
// JSON equivalent) reconstructs one outage from N process logs.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s or %s)", format, LogText, LogJSON)
	}
}
