package kernel

import (
	"math/rand"
	"testing"

	"anytime/internal/graph"
)

// fullMask returns a mask with every bit < n set — a masked sweep under it
// must behave exactly like the full sweep.
func fullMask(n int) Bitset {
	b := NewBitset(n)
	b.SetRange(0, n)
	return b
}

func TestMinPlusHopsRecMatchesFullAndRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(150)
		base := rng.Intn(8)
		dst := randomRow(rng, n, 0.2)
		src := randomRow(rng, n, 0.3)
		nh := make([]int32, n)
		add := graph.Dist(rng.Intn(400))

		wantDst := append([]graph.Dist(nil), dst...)
		wantNH := append([]int32(nil), nh...)
		wlo, whi := MinPlusHops(wantDst, wantNH, src, add, 5)

		rec := NewBitset(base + n)
		lo, hi := MinPlusHopsRec(dst, nh, src, add, 5, rec, base)
		if lo != wlo || hi != whi {
			t.Fatalf("trial %d: window (%d,%d), want (%d,%d)", trial, lo, hi, wlo, whi)
		}
		for i := range dst {
			if dst[i] != wantDst[i] || nh[i] != wantNH[i] {
				t.Fatalf("trial %d: index %d diverges", trial, i)
			}
		}
		// nil rec degrades to the plain kernel without panicking.
		lo2, hi2 := MinPlusHopsRec(dst, nh, src, add, 5, nil, 0)
		if lo2 < hi2 {
			t.Fatalf("trial %d: second pass improved again (%d,%d)", trial, lo2, hi2)
		}
	}
}

// MinPlusHopsRec records the convex hull of the changed columns — every
// improved column must have its bit set (soundness: masks are supersets of
// the true change set), bits outside the returned window must stay clear,
// and the hull must be tight at both ends.
func TestMinPlusHopsRecWindowBits(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(150)
		base := rng.Intn(8)
		orig := randomRow(rng, n, 0.2)
		src := randomRow(rng, n, 0.3)
		dst := append([]graph.Dist(nil), orig...)
		nh := make([]int32, n)
		add := graph.Dist(rng.Intn(400))

		rec := NewBitset(base + n)
		lo, hi := MinPlusHopsRec(dst, nh, src, add, 5, rec, base)
		for i := 0; i < n; i++ {
			improved := dst[i] != orig[i]
			inWindow := i >= lo && i < hi
			if improved && !rec.Get(base+i) {
				t.Fatalf("trial %d: column %d improved but rec bit clear", trial, i)
			}
			if rec.Get(base+i) != inWindow {
				t.Fatalf("trial %d: rec bit %d = %v but in-window = %v",
					trial, base+i, rec.Get(base+i), inWindow)
			}
		}
		if lo < hi && (dst[lo] == orig[lo] || dst[hi-1] == orig[hi-1]) {
			t.Fatalf("trial %d: window (%d,%d) not tight", trial, lo, hi)
		}
		for i := 0; i < base; i++ {
			if rec.Get(i) {
				t.Fatalf("trial %d: bit %d below base set", trial, i)
			}
		}
	}
}

func TestMinPlusHopsMaskedFullMaskMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		dst := randomRow(rng, n, 0.2)
		src := randomRow(rng, n, 0.3)
		nh := make([]int32, n)
		for i := range nh {
			nh[i] = int32(rng.Intn(n))
		}
		add := graph.Dist(rng.Intn(400))

		wantDst := append([]graph.Dist(nil), dst...)
		wantNH := append([]int32(nil), nh...)
		wlo, whi := MinPlusHops(wantDst, wantNH, src, add, 3)

		lo, hi, ops := MinPlusHopsMasked(dst, nh, src, add, 3, fullMask(n), nil, 0)
		if lo != wlo || hi != whi {
			t.Fatalf("trial %d: window (%d,%d), want (%d,%d)", trial, lo, hi, wlo, whi)
		}
		if ops != n {
			t.Fatalf("trial %d: ops %d, want %d (full mask visits everything)", trial, ops, n)
		}
		for i := range dst {
			if dst[i] != wantDst[i] || nh[i] != wantNH[i] {
				t.Fatalf("trial %d: index %d diverges", trial, i)
			}
		}
	}
}

// TestMinPlusHopsMaskedSoundSkip builds the situation the engine relies on:
// dst is at a fixpoint w.r.t. src (no composition improves), then src is
// perturbed at a few columns with the perturbation recorded in a mask. A
// masked sweep must then match a full sweep bit-for-bit.
func TestMinPlusHopsMaskedSoundSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		n := 8 + rng.Intn(200)
		src := randomRow(rng, n, 0.3)
		add := graph.Dist(1 + rng.Intn(100))
		// Fixpoint dst: exactly the min-plus closure through src.
		dst := make([]graph.Dist, n)
		nh := make([]int32, n)
		for i := range dst {
			dst[i] = graph.Dist(rng.Intn(2000))
			if src[i] != graph.InfDist && add+src[i] < dst[i] {
				dst[i] = add + src[i]
			}
		}
		// Perturb: lower a few src columns, mask records them.
		mask := NewBitset(n)
		k := 1 + rng.Intn(5)
		for j := 0; j < k; j++ {
			c := rng.Intn(n)
			src[c] = graph.Dist(rng.Intn(50))
			mask.Set(c)
		}
		// Over-approximation is allowed: add noise bits to the mask.
		for j := 0; j < rng.Intn(4); j++ {
			mask.Set(rng.Intn(n))
		}

		wantDst := append([]graph.Dist(nil), dst...)
		wantNH := append([]int32(nil), nh...)
		wlo, whi := MinPlusHops(wantDst, wantNH, src, add, 7)

		rec := NewBitset(n)
		lo, hi, ops := MinPlusHopsMasked(dst, nh, src, add, 7, mask, rec, 0)
		if lo != wlo || hi != whi {
			t.Fatalf("trial %d: window (%d,%d), want (%d,%d)", trial, lo, hi, wlo, whi)
		}
		if ops > mask.OnesCount() {
			t.Fatalf("trial %d: visited %d > mask popcount %d", trial, ops, mask.OnesCount())
		}
		for i := range dst {
			if dst[i] != wantDst[i] {
				t.Fatalf("trial %d: dst[%d] = %d, want %d", trial, i, dst[i], wantDst[i])
			}
			if nh[i] != wantNH[i] {
				t.Fatalf("trial %d: nh[%d] = %d, want %d", trial, i, nh[i], wantNH[i])
			}
			if rec.Get(i) && wlo > i {
				t.Fatalf("trial %d: rec bit %d below changed window %d", trial, i, wlo)
			}
		}
	}
}

func TestMinPlusTileMaskedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 120; trial++ {
		n := 8 + rng.Intn(120)
		rows := 2 + rng.Intn(6)
		stride := n + rng.Intn(8)
		arena := make([]graph.Dist, rows*stride)
		for i := range arena {
			if rng.Float64() < 0.3 {
				arena[i] = graph.InfDist
			} else {
				arena[i] = graph.Dist(rng.Intn(1000))
			}
		}
		offs := make([]int32, rows)
		owners := make([]int32, rows)
		for i := range offs {
			offs[i] = int32(i)
			owners[i] = int32(rng.Intn(n))
		}
		dst := randomRow(rng, n, 0.2)
		nh := make([]int32, n)

		wantDst := append([]graph.Dist(nil), dst...)
		wantNH := append([]int32(nil), nh...)
		wlo, whi, wops := MinPlusTile(wantDst, wantNH, arena, stride, offs, owners)

		// Full masks (or forced-full dispatch) must reproduce the unmasked
		// tile exactly, including the changed window.
		masks := make([]Bitset, rows)
		mode := trial % 3
		for i := range masks {
			switch mode {
			case 0:
				masks[i] = fullMask(n)
			case 1:
				masks[i] = nil // per-pivot full fallback
			}
		}
		dstFull := mode == 2
		if dstFull {
			for i := range masks {
				masks[i] = NewBitset(n) // empty masks, overridden by dstFull
			}
		}
		rec := NewBitset(n)
		lo, hi, ops, maskedOps := MinPlusTileMasked(dst, nh, arena, stride, offs, owners, masks, rec, dstFull)
		if lo != wlo || hi != whi {
			t.Fatalf("trial %d mode %d: window (%d,%d), want (%d,%d)", trial, mode, lo, hi, wlo, whi)
		}
		if mode != 0 && maskedOps != 0 {
			t.Fatalf("trial %d mode %d: maskedOps %d on a full dispatch", trial, mode, maskedOps)
		}
		if mode != 0 && ops != wops {
			t.Fatalf("trial %d mode %d: ops %d, want %d", trial, mode, ops, wops)
		}
		for i := range dst {
			if dst[i] != wantDst[i] || nh[i] != wantNH[i] {
				t.Fatalf("trial %d mode %d: index %d diverges", trial, mode, i)
			}
		}
	}
}

// TestMinPlusTileMaskedAddChanged pins the dispatch rule that makes masked
// tiles sound when earlier pivots improve the destination's distance *to* a
// later pivot: once rec carries the owner bit, the later pivot must fall
// back to a full sweep even though its own mask is sparse.
func TestMinPlusTileMaskedAddChanged(t *testing.T) {
	inf := graph.InfDist
	n := 6
	stride := n
	// Pivot 0 (owner column 1) lowers dst[2] dramatically; pivot 1 is owned
	// by column 2, so its add operand changed mid-tile. Its mask is empty —
	// a masked sweep would skip everything and miss the improvement at
	// column 4 that the full pass finds.
	arena := []graph.Dist{
		inf, inf, 1, inf, inf, inf, // pivot 0 row
		inf, inf, inf, inf, 2, inf, // pivot 1 row
	}
	offs := []int32{0, 1}
	owners := []int32{1, 2}
	dst := []graph.Dist{0, 3, 50, 50, 50, 50}
	nh := []int32{0, 1, -1, -1, -1, -1}

	wantDst := append([]graph.Dist(nil), dst...)
	wantNH := append([]int32(nil), nh...)
	MinPlusTile(wantDst, wantNH, arena, stride, offs, owners)
	if wantDst[4] != 6 { // 3 (to col1) + 1 (to col2) + 2
		t.Fatalf("oracle wrong: dst[4] = %d, want 6", wantDst[4])
	}

	masks := []Bitset{fullMask(n), NewBitset(n)} // pivot 1 mask empty
	rec := NewBitset(n)
	MinPlusTileMasked(dst, nh, arena, stride, offs, owners, masks, rec, false)
	for i := range dst {
		if dst[i] != wantDst[i] || nh[i] != wantNH[i] {
			t.Fatalf("index %d: got (%d,%d), want (%d,%d)", i, dst[i], nh[i], wantDst[i], wantNH[i])
		}
	}
	if !rec.Get(2) || !rec.Get(4) {
		t.Fatalf("rec missing improved columns: %v", rec)
	}
}
