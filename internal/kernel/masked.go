package kernel

import (
	"math/bits"

	"anytime/internal/graph"
)

// This file holds the frontier-masked variants of the min-plus kernels.
//
// A frontier bitmask records, per row, which columns changed since the last
// clean global convergence (a fixpoint of the relaxation system). At such a
// fixpoint every composition through a pivot p satisfies
//
//	dst[p.owner] + p.D[t] >= dst[t]
//
// so a relaxation (dst, p, t) can only improve dst[t] if at least one of
// the three participating values moved since then: dst's distance to the
// pivot, the pivot's entry for t, or dst[t] itself — and dst[t] only ever
// decreases, which cannot turn a non-improving composition into an
// improving one. Hence a pass may soundly skip every column t where the
// pivot's frontier bit is clear, provided dst's own distance-to-pivot entry
// is also unchanged. Masks over-approximate the true change set, so masked
// and full sweeps produce bit-identical distance matrices; masking is
// purely a work filter.
//
// Rec variants keep a destination frontier current as they relax. The two
// variants record at different granularities, trading precision against
// hot-loop cost to match where each runs:
//
//   - MinPlusHopsRec (full sweeps) records the changed *window* [lo, hi) —
//     the convex hull of the improved columns — with one SetRange after the
//     sweep. Full sweeps run on dense passes where most compositions
//     improve, so any per-improvement instruction is hot: per-bit recording
//     inside the loop (whether a bounds-checked rec.Set or a register
//     accumulator flushed per word) measures 2-3× slower end-to-end than
//     the untouched MinPlusHops loop on the refine benches. The hull is an
//     over-approximation of the true change set, which is sound — masks
//     only ever need to be a superset — and matches the granularity the
//     delta pending windows already use.
//   - MinPlusHopsMasked (masked sweeps) records exact bits: it visits only
//     the few frontier columns, so per-improvement cost is off the hot
//     path and precision keeps sparse cascades sparse.

// MinPlusHopsRec is MinPlusHops plus frontier recording: the changed
// window [lo, hi) is folded into rec as bits base+lo .. base+hi-1 (rec
// indexes the destination row's full column space; base is dst's offset
// within it, nonzero when the caller pre-sliced dst to start mid-row).
// rec may be nil.
func MinPlusHopsRec(dst []graph.Dist, nh []int32, src []graph.Dist, add graph.Dist, hop int32, rec Bitset, base int) (lo, hi int) {
	lo, hi = MinPlusHops(dst, nh, src, add, hop)
	if rec != nil && lo < hi {
		rec.SetRange(base+lo, base+hi)
	}
	return lo, hi
}

// MinPlusHopsMasked relaxes dst through a pivot row src, visiting only the
// columns whose bits are set in mask (the pivot's frontier: columns of src
// that changed since the last convergence). Improved columns are recorded
// into rec (may be nil). It returns the changed window [lo, hi) plus the
// number of columns actually visited, which is what the caller charges to
// the LogP clock in place of the full row width.
//
// Iteration peels set bits per word via TrailingZeros64, so columns are
// visited in ascending order — the same order as the full sweep — and the
// soundness argument above makes the skipped columns provably
// non-improving, so the result is bit-identical to MinPlusHops.
func MinPlusHopsMasked(dst []graph.Dist, nh []int32, src []graph.Dist, add graph.Dist, hop int32, mask, rec Bitset, base int) (lo, hi, ops int) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	src = src[:n]
	dst = dst[:n]
	nh = nh[:n]
	lo, hi = n, 0
	words := BitsetWords(n)
	if words > len(mask) {
		words = len(mask)
	}
	for w := 0; w < words; w++ {
		word := mask[w]
		for word != 0 {
			t := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if t >= n {
				break
			}
			bt := src[t]
			ops++
			if bt == graph.InfDist {
				continue
			}
			if nd := add + bt; nd < dst[t] {
				dst[t] = nd
				nh[t] = hop
				if rec != nil {
					rec.Set(base + t)
				}
				if lo > t {
					lo = t
				}
				hi = t + 1
			}
		}
	}
	return lo, hi, ops
}

// MinPlusTileMasked is MinPlusTile with per-pivot frontier masks: pivot p's
// sweep is restricted to masks[p] unless a full sweep is forced — because
// the pivot has no mask (masks[p] == nil: dense frontier past the density
// cutover, or a ship-all row whose change extent is unknown), because the
// destination row's own change extent is unknown (dstFull), or because the
// destination's distance *to* the pivot changed since the last convergence
// (rec bit owners[p] set — the add operand moved, so unmasked columns may
// improve too). rec is the destination row's frontier and is updated as
// columns improve, so improvements applied by earlier pivots in the tile
// feed later pivots' full/masked decisions exactly as the untiled sequence
// would.
//
// Returns the changed window, total relax operations (full-width for full
// sweeps, visited columns for masked ones — the LogP charge), and the
// masked-visit subtotal (telemetry: how much work the masks let through).
func MinPlusTileMasked(dst []graph.Dist, nh []int32, arena []graph.Dist, stride int, offs, owners []int32, masks []Bitset, rec Bitset, dstFull bool) (lo, hi int, ops, maskedOps int64) {
	n := len(dst)
	lo, hi = n, 0
	for pi, off := range offs {
		owner := int(owners[pi])
		add := dst[owner]
		if add == graph.InfDist {
			continue
		}
		src := arena[int(off)*stride : int(off)*stride+n]
		full := dstFull || masks[pi] == nil || (rec != nil && rec.Get(owner))
		var clo, chi int
		if full {
			clo, chi = MinPlusHopsRec(dst, nh, src, add, nh[owner], rec, 0)
			ops += int64(n)
		} else {
			var visited int
			clo, chi, visited = MinPlusHopsMasked(dst, nh, src, add, nh[owner], masks[pi], rec, 0)
			ops += int64(visited)
			maskedOps += int64(visited)
		}
		if clo < chi {
			if lo > clo {
				lo = clo
			}
			if hi < chi {
				hi = chi
			}
		}
	}
	return lo, hi, ops, maskedOps
}
