package kernel

import (
	"math/rand"
	"testing"

	"anytime/internal/graph"
)

// prePRInnerLoop is the RC relax inner loop as it was before the kernel
// extraction (engine.relaxViaExternal body): no slice-length hints, so
// every dst/nh store carries a bounds check.
func prePRInnerLoop(dst []graph.Dist, nh []int32, src []graph.Dist, add graph.Dist, hop int32) bool {
	rowChanged := false
	for t, bt := range src {
		if bt == graph.InfDist {
			continue
		}
		if nd := add + bt; nd < dst[t] {
			dst[t] = nd
			nh[t] = hop
			rowChanged = true
		}
	}
	return rowChanged
}

// benchRows builds a relax workload where a controlled fraction of indices
// improves. 10% of src entries are unreachable; the rest are matched by dst
// entries already at the composed value (a failed relaxation) except for
// `improve` of them, which sit high enough that add+src wins. The sparse
// regime (2%) is what RC steady state looks like — most relaxations fail
// once the cascade is near convergence — while the dense regime (40%)
// stresses the store path right after a disturbance.
func benchRows(n int, improve float64, seed int64) (dst []graph.Dist, nh []int32, src []graph.Dist) {
	rng := rand.New(rand.NewSource(seed))
	dst = make([]graph.Dist, n)
	nh = make([]int32, n)
	src = make([]graph.Dist, n)
	const add = 3
	for i := range dst {
		nh[i] = -1
		if rng.Float64() < 0.1 {
			src[i] = graph.InfDist
			dst[i] = graph.Dist(500 + rng.Intn(500))
			continue
		}
		src[i] = graph.Dist(rng.Intn(1000))
		if rng.Float64() < improve {
			dst[i] = src[i] + add + graph.Dist(1+rng.Intn(50))
		} else {
			dst[i] = src[i]
		}
	}
	return dst, nh, src
}

// The kernel/prePR benchmark pairs relax identical rows; comparing within a
// pair isolates the extracted kernel's bounds-check elimination (prePRInnerLoop
// carries per-iteration checks on the dst load and nh store; MinPlusHops has
// none — verify with -gcflags='-d=ssa/check_bce') plus its changed-window
// tracking overhead on the store path.
func benchKernel(b *testing.B, improve float64, prePR bool) {
	dst, nh, src := benchRows(4096, improve, 1)
	work := append([]graph.Dist(nil), dst...)
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, dst)
		if prePR {
			prePRInnerLoop(work, nh, src, 3, 7)
		} else {
			MinPlusHops(work, nh, src, 3, 7)
		}
	}
}

// benchTile builds a refine-tile workload: one destination row relaxed
// through tileRows pivot rows that live either packed in a flat row-major
// arena (the dv.Matrix layout MinPlusTile streams) or as individually
// heap-allocated rows driven by a per-pivot MinPlusHops loop (the pre-PR
// layout). The relax arithmetic and apply order are identical — the pair
// isolates the memory-layout effect of streaming contiguous pivot rows.
func benchTile(b *testing.B, packed bool) {
	const n, tileRows = 4096, 32
	rng := rand.New(rand.NewSource(9))
	dst, nh, _ := benchRows(n, 0.02, 1)
	arena := make([]graph.Dist, tileRows*n)
	rows := make([][]graph.Dist, tileRows)
	offs := make([]int32, tileRows)
	owners := make([]int32, tileRows)
	for p := 0; p < tileRows; p++ {
		rows[p] = make([]graph.Dist, n)
		for t := 0; t < n; t++ {
			v := graph.Dist(rng.Intn(1000))
			if rng.Float64() < 0.1 {
				v = graph.InfDist
			}
			arena[p*n+t] = v
			rows[p][t] = v
		}
		offs[p] = int32(p)
		owners[p] = int32(rng.Intn(n))
		dst[owners[p]] = graph.Dist(1 + rng.Intn(4)) // pivots sit nearby
	}
	work := append([]graph.Dist(nil), dst...)
	b.SetBytes(int64(4 * n * tileRows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, dst)
		if packed {
			MinPlusTile(work, nh, arena, n, offs, owners)
		} else {
			for p := range rows {
				add := work[owners[p]]
				if add == graph.InfDist {
					continue
				}
				MinPlusHops(work, nh, rows[p], add, nh[owners[p]])
			}
		}
	}
}

func BenchmarkRCKernelTileArena(b *testing.B) { benchTile(b, true) }

func BenchmarkRCKernelTilePerRow(b *testing.B) { benchTile(b, false) }

func BenchmarkRCKernelMinPlusHopsSparse(b *testing.B) { benchKernel(b, 0.02, false) }

func BenchmarkRCKernelPrePRLoopSparse(b *testing.B) { benchKernel(b, 0.02, true) }

func BenchmarkRCKernelMinPlusHopsDense(b *testing.B) { benchKernel(b, 0.40, false) }

func BenchmarkRCKernelPrePRLoopDense(b *testing.B) { benchKernel(b, 0.40, true) }
