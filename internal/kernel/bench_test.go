package kernel

import (
	"math/rand"
	"testing"

	"anytime/internal/graph"
)

// prePRInnerLoop is the RC relax inner loop as it was before the kernel
// extraction (engine.relaxViaExternal body): no slice-length hints, so
// every dst/nh store carries a bounds check.
func prePRInnerLoop(dst []graph.Dist, nh []int32, src []graph.Dist, add graph.Dist, hop int32) bool {
	rowChanged := false
	for t, bt := range src {
		if bt == graph.InfDist {
			continue
		}
		if nd := add + bt; nd < dst[t] {
			dst[t] = nd
			nh[t] = hop
			rowChanged = true
		}
	}
	return rowChanged
}

// benchRows builds a relax workload where a controlled fraction of indices
// improves. 10% of src entries are unreachable; the rest are matched by dst
// entries already at the composed value (a failed relaxation) except for
// `improve` of them, which sit high enough that add+src wins. The sparse
// regime (2%) is what RC steady state looks like — most relaxations fail
// once the cascade is near convergence — while the dense regime (40%)
// stresses the store path right after a disturbance.
func benchRows(n int, improve float64, seed int64) (dst []graph.Dist, nh []int32, src []graph.Dist) {
	rng := rand.New(rand.NewSource(seed))
	dst = make([]graph.Dist, n)
	nh = make([]int32, n)
	src = make([]graph.Dist, n)
	const add = 3
	for i := range dst {
		nh[i] = -1
		if rng.Float64() < 0.1 {
			src[i] = graph.InfDist
			dst[i] = graph.Dist(500 + rng.Intn(500))
			continue
		}
		src[i] = graph.Dist(rng.Intn(1000))
		if rng.Float64() < improve {
			dst[i] = src[i] + add + graph.Dist(1+rng.Intn(50))
		} else {
			dst[i] = src[i]
		}
	}
	return dst, nh, src
}

// The kernel/prePR benchmark pairs relax identical rows; comparing within a
// pair isolates the extracted kernel's bounds-check elimination (prePRInnerLoop
// carries per-iteration checks on the dst load and nh store; MinPlusHops has
// none — verify with -gcflags='-d=ssa/check_bce') plus its changed-window
// tracking overhead on the store path.
func benchKernel(b *testing.B, improve float64, prePR bool) {
	dst, nh, src := benchRows(4096, improve, 1)
	work := append([]graph.Dist(nil), dst...)
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, dst)
		if prePR {
			prePRInnerLoop(work, nh, src, 3, 7)
		} else {
			MinPlusHops(work, nh, src, 3, 7)
		}
	}
}

func BenchmarkRCKernelMinPlusHopsSparse(b *testing.B) { benchKernel(b, 0.02, false) }

func BenchmarkRCKernelPrePRLoopSparse(b *testing.B) { benchKernel(b, 0.02, true) }

func BenchmarkRCKernelMinPlusHopsDense(b *testing.B) { benchKernel(b, 0.40, false) }

func BenchmarkRCKernelPrePRLoopDense(b *testing.B) { benchKernel(b, 0.40, true) }
