package kernel

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(200)
	if len(b) != BitsetWords(200) || BitsetWords(200) != 4 {
		t.Fatalf("words = %d, want 4", len(b))
	}
	if b.Any() || b.OnesCount() != 0 || b.NonzeroWords() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	for _, i := range []int{0, 63, 64, 127, 199} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.OnesCount() != 5 || !b.Any() {
		t.Fatalf("popcount = %d, want 5", b.OnesCount())
	}
	if b.NonzeroWords() != 3 { // bits live in words 0, 1, 3
		t.Fatalf("nonzero words = %d, want 3", b.NonzeroWords())
	}
	b.Clear(64)
	if b.Get(64) || b.OnesCount() != 4 {
		t.Fatal("clear failed")
	}
	b.Reset()
	if b.Any() {
		t.Fatal("reset left bits")
	}
}

func TestBitsetNextSet(t *testing.T) {
	b := NewBitset(300)
	if b.NextSet(0) != -1 {
		t.Fatal("empty bitset has a set bit")
	}
	for _, i := range []int{5, 63, 64, 130, 299} {
		b.Set(i)
	}
	var got []int
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		got = append(got, i)
	}
	want := []int{5, 63, 64, 130, 299}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if b.NextSet(300) != -1 || b.NextSet(10000) != -1 {
		t.Fatal("NextSet past the end should be -1")
	}
	if b.NextSet(-5) != 5 {
		t.Fatal("negative start should clamp to 0")
	}
}

func TestBitsetSetRange(t *testing.T) {
	for _, tc := range []struct{ lo, hi int }{
		{0, 0}, {0, 1}, {0, 64}, {3, 7}, {60, 70}, {64, 128}, {1, 200}, {199, 200}, {63, 65},
	} {
		b := NewBitset(200)
		b.SetRange(tc.lo, tc.hi)
		for i := 0; i < 200; i++ {
			want := i >= tc.lo && i < tc.hi
			if b.Get(i) != want {
				t.Fatalf("range [%d,%d): bit %d = %v, want %v", tc.lo, tc.hi, i, b.Get(i), want)
			}
		}
		if b.OnesCount() != tc.hi-tc.lo {
			t.Fatalf("range [%d,%d): popcount %d", tc.lo, tc.hi, b.OnesCount())
		}
	}
}

func TestBitsetOr(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(128)
	a.Set(3)
	a.Set(100)
	b.Set(3)
	b.Set(64)
	a.Or(b)
	for _, i := range []int{3, 64, 100} {
		if !a.Get(i) {
			t.Fatalf("bit %d lost by Or", i)
		}
	}
	if a.OnesCount() != 3 {
		t.Fatalf("popcount %d after Or, want 3", a.OnesCount())
	}
	// Mismatched lengths fold only the common prefix, without panicking.
	short := NewBitset(64)
	short.Set(10)
	long := NewBitset(256)
	long.Set(200)
	short.Or(long)
	long.Or(short)
	if !short.Get(10) || !long.Get(10) || !long.Get(200) {
		t.Fatal("mismatched-length Or wrong")
	}
}

// FuzzBitset drives a random op sequence against a map[int]bool reference
// model, checking set/clear/get/or and full NextSet iteration round-trip.
func FuzzBitset(f *testing.F) {
	f.Add([]byte{0, 5, 1, 5, 2, 5, 3, 0})
	f.Add([]byte{0, 63, 0, 64, 0, 127, 3, 0, 2, 64})
	seed := make([]byte, 64)
	rand.New(rand.NewSource(9)).Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 193 // odd size: last word partially used
		b := NewBitset(n)
		other := NewBitset(n)
		ref := map[int]bool{}
		otherRef := map[int]bool{}
		for len(data) >= 2 {
			op := data[0] % 5
			i := int(data[1]) % n
			data = data[2:]
			switch op {
			case 0:
				b.Set(i)
				ref[i] = true
			case 1:
				b.Clear(i)
				delete(ref, i)
			case 2:
				other.Set(i)
				otherRef[i] = true
			case 3:
				b.Or(other)
				for k := range otherRef {
					ref[k] = true
				}
			case 4:
				if b.Get(i) != ref[i] {
					t.Fatalf("Get(%d) = %v, ref %v", i, b.Get(i), ref[i])
				}
			}
		}
		// Round-trip: NextSet iteration must reproduce the reference set.
		got := map[int]bool{}
		for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
			if i >= n {
				t.Fatalf("NextSet returned %d >= n", i)
			}
			if got[i] {
				t.Fatalf("NextSet revisited %d", i)
			}
			got[i] = true
		}
		if len(got) != len(ref) {
			t.Fatalf("iterated %d bits, ref has %d", len(got), len(ref))
		}
		for k := range ref {
			if !got[k] {
				t.Fatalf("bit %d in ref but not iterated", k)
			}
		}
		if b.OnesCount() != len(ref) {
			t.Fatalf("popcount %d, ref %d", b.OnesCount(), len(ref))
		}
	})
}
