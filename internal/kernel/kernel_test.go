package kernel

import (
	"math/rand"
	"testing"

	"anytime/internal/graph"
)

// referenceMinPlus is the pre-extraction inner loop from the engine,
// kept as the semantic oracle for the kernel.
func referenceMinPlus(dst []graph.Dist, nh []int32, src []graph.Dist, add graph.Dist, hop int32) (lo, hi int) {
	lo, hi = len(src), 0
	for t, bt := range src {
		if t >= len(dst) {
			break
		}
		if bt == graph.InfDist {
			continue
		}
		if nd := add + bt; nd < dst[t] {
			dst[t] = nd
			nh[t] = hop
			if lo > t {
				lo = t
			}
			hi = t + 1
		}
	}
	return lo, hi
}

func randomRow(rng *rand.Rand, n int, infFrac float64) []graph.Dist {
	d := make([]graph.Dist, n)
	for i := range d {
		if rng.Float64() < infFrac {
			d[i] = graph.InfDist
		} else {
			d[i] = graph.Dist(rng.Intn(1000))
		}
	}
	return d
}

func TestMinPlusHopsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		srcLen := n
		if trial%3 == 0 {
			srcLen = 1 + rng.Intn(n) // shorter shipped snapshot
		}
		dst := randomRow(rng, n, 0.2)
		src := randomRow(rng, srcLen, 0.3)
		nh := make([]int32, n)
		for i := range nh {
			nh[i] = int32(rng.Intn(n))
		}
		add := graph.Dist(rng.Intn(500))
		hop := int32(rng.Intn(n))

		wantDst := append([]graph.Dist(nil), dst...)
		wantNH := append([]int32(nil), nh...)
		wlo, whi := referenceMinPlus(wantDst, wantNH, src, add, hop)

		lo, hi := MinPlusHops(dst, nh, src, add, hop)
		if lo != wlo || hi != whi {
			t.Fatalf("trial %d: window (%d,%d), want (%d,%d)", trial, lo, hi, wlo, whi)
		}
		for i := range dst {
			if dst[i] != wantDst[i] || nh[i] != wantNH[i] {
				t.Fatalf("trial %d: index %d: got (%d,%d), want (%d,%d)",
					trial, i, dst[i], nh[i], wantDst[i], wantNH[i])
			}
		}
	}
}

func TestMinPlusHopsWindow(t *testing.T) {
	inf := graph.InfDist
	dst := []graph.Dist{9, 9, 9, 9, 9}
	nh := []int32{-1, -1, -1, -1, -1}
	src := []graph.Dist{inf, 3, inf, 1, inf}
	lo, hi := MinPlusHops(dst, nh, src, 2, 7)
	if lo != 1 || hi != 4 {
		t.Fatalf("window (%d,%d), want (1,4)", lo, hi)
	}
	want := []graph.Dist{9, 5, 9, 3, 9}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	if nh[1] != 7 || nh[3] != 7 || nh[0] != -1 {
		t.Fatalf("next hops wrong: %v", nh)
	}

	// no improvement possible: empty window, nothing written
	lo, hi = MinPlusHops(dst, nh, src, 100, 9)
	if lo < hi {
		t.Fatalf("expected empty window, got (%d,%d)", lo, hi)
	}
}

func TestMinPlusHopsOffsetSlicing(t *testing.T) {
	// Delta windows relax via pre-sliced dst/nh; the window comes back in
	// src index space.
	dst := []graph.Dist{0, 50, 50, 50}
	nh := []int32{-1, -1, -1, -1}
	delta := []graph.Dist{4, graph.InfDist} // columns 2..3 of some row
	lo, hi := MinPlusHops(dst[2:], nh[2:], delta, 10, 3)
	if lo != 0 || hi != 1 {
		t.Fatalf("window (%d,%d), want (0,1)", lo, hi)
	}
	if dst[2] != 14 || nh[2] != 3 || dst[3] != 50 {
		t.Fatalf("offset relax wrong: %v %v", dst, nh)
	}
}

func TestMinPlusMatchesHops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(48)
		dst := randomRow(rng, n, 0.2)
		src := randomRow(rng, n, 0.3)
		add := graph.Dist(rng.Intn(300))
		dst2 := append([]graph.Dist(nil), dst...)
		nh := make([]int32, n)

		changed := MinPlus(dst, src, add)
		lo, hi := MinPlusHops(dst2, nh, src, add, 1)
		if changed != (lo < hi) {
			t.Fatalf("trial %d: changed=%v window=(%d,%d)", trial, changed, lo, hi)
		}
		for i := range dst {
			if dst[i] != dst2[i] {
				t.Fatalf("trial %d: index %d diverges", trial, i)
			}
		}
	}
}
