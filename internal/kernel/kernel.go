// Package kernel holds the min-plus relaxation inner loops that dominate
// the engine's recombination (RC) phase. Both RC relaxations — external
// boundary-delta relaxation and the local Floyd–Warshall-style refinement —
// and the dense APSP oracle reduce to the same operation: lower a distance
// row by composing a base distance with a pivot row,
//
//	dst[t] = min(dst[t], add + src[t]).
//
// The loops are written so the compiler can eliminate the per-iteration
// bounds checks: every slice is re-sliced to the shared loop bound up
// front, making the `range src` induction variable provably in range for
// all of them.
//
// Distances use the engine-wide invariant that true distances stay far
// below InfDist/2 (enforced by the generators keeping weights small
// relative to n), so `add + src[t]` cannot overflow once both operands are
// known finite.
package kernel

import "anytime/internal/graph"

// MinPlusHops relaxes dst through a pivot whose distance column is src:
// for every index t, dst[t] = min(dst[t], add+src[t]), recording hop as
// the next hop nh[t] whenever the composition improves. add is the
// caller's distance to the pivot and must be finite; src entries equal to
// InfDist are skipped. If src and dst lengths differ, the overlap is
// relaxed (shipped columns may trail the local width, and delta windows
// start mid-row via pre-sliced dst/nh).
//
// It returns the half-open window [lo, hi) of indices that changed, in
// src's index space; lo >= hi means nothing improved.
func MinPlusHops(dst []graph.Dist, nh []int32, src []graph.Dist, add graph.Dist, hop int32) (lo, hi int) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	src = src[:n]
	dst = dst[:n]
	nh = nh[:n]
	lo, hi = n, 0
	for t, bt := range src {
		if bt == graph.InfDist {
			continue
		}
		if nd := add + bt; nd < dst[t] {
			dst[t] = nd
			nh[t] = hop
			if lo > t {
				lo = t
			}
			hi = t + 1
		}
	}
	return lo, hi
}

// MinPlusTile relaxes dst through a tile of pivot rows resident in a flat
// row-major arena (see dv.Matrix): pivot p's distance row is
// arena[offs[p]*stride : offs[p]*stride+len(dst)] and owners[p] is its
// owner's global vertex ID (the column of dst holding the distance to the
// pivot). Pivots apply in slice order, and dst[owners[p]] is re-read per
// pivot so improvements from earlier pivots in the tile feed later ones —
// exactly the sequence the one-pivot-at-a-time loop produces, which keeps
// tiled refinement bit-identical to the untiled pass.
//
// dst must not alias any pivot row in the tile (the caller skips the tile's
// own rows). It returns the changed window [lo, hi) like MinPlusHops plus
// the number of relax operations performed (len(dst) per applied pivot).
//
// The per-pivot sweep delegates to MinPlusHops rather than open-coding the
// loop: keeping lo/hi/ops and the five slice headers live across a fused
// inner loop forces the compiler to spill the induction variable and dst
// base to the stack each iteration, which measures ~30% slower than the
// tight two-header loop (see BenchmarkRCKernelTile*).
func MinPlusTile(dst []graph.Dist, nh []int32, arena []graph.Dist, stride int, offs, owners []int32) (lo, hi int, ops int64) {
	n := len(dst)
	lo, hi = n, 0
	for pi, off := range offs {
		add := dst[owners[pi]]
		if add == graph.InfDist {
			continue
		}
		src := arena[int(off)*stride : int(off)*stride+n]
		clo, chi := MinPlusHops(dst, nh, src, add, nh[owners[pi]])
		ops += int64(n)
		if clo < chi {
			if lo > clo {
				lo = clo
			}
			if hi < chi {
				hi = chi
			}
		}
	}
	return lo, hi, ops
}

// MinPlus is MinPlusHops without next-hop tracking, for dense matrices
// that carry distances only (the Floyd–Warshall oracle). Reports whether
// any index improved.
func MinPlus(dst, src []graph.Dist, add graph.Dist) bool {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	src = src[:n]
	dst = dst[:n]
	changed := false
	for t, bt := range src {
		if bt == graph.InfDist {
			continue
		}
		if nd := add + bt; nd < dst[t] {
			dst[t] = nd
			changed = true
		}
	}
	return changed
}
