// Package kernel holds the min-plus relaxation inner loops that dominate
// the engine's recombination (RC) phase. Both RC relaxations — external
// boundary-delta relaxation and the local Floyd–Warshall-style refinement —
// and the dense APSP oracle reduce to the same operation: lower a distance
// row by composing a base distance with a pivot row,
//
//	dst[t] = min(dst[t], add + src[t]).
//
// The loops are written so the compiler can eliminate the per-iteration
// bounds checks: every slice is re-sliced to the shared loop bound up
// front, making the `range src` induction variable provably in range for
// all of them.
//
// Distances use the engine-wide invariant that true distances stay far
// below InfDist/2 (enforced by the generators keeping weights small
// relative to n), so `add + src[t]` cannot overflow once both operands are
// known finite.
package kernel

import "anytime/internal/graph"

// MinPlusHops relaxes dst through a pivot whose distance column is src:
// for every index t, dst[t] = min(dst[t], add+src[t]), recording hop as
// the next hop nh[t] whenever the composition improves. add is the
// caller's distance to the pivot and must be finite; src entries equal to
// InfDist are skipped. If src and dst lengths differ, the overlap is
// relaxed (shipped columns may trail the local width, and delta windows
// start mid-row via pre-sliced dst/nh).
//
// It returns the half-open window [lo, hi) of indices that changed, in
// src's index space; lo >= hi means nothing improved.
func MinPlusHops(dst []graph.Dist, nh []int32, src []graph.Dist, add graph.Dist, hop int32) (lo, hi int) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	src = src[:n]
	dst = dst[:n]
	nh = nh[:n]
	lo, hi = n, 0
	for t, bt := range src {
		if bt == graph.InfDist {
			continue
		}
		if nd := add + bt; nd < dst[t] {
			dst[t] = nd
			nh[t] = hop
			if lo > t {
				lo = t
			}
			hi = t + 1
		}
	}
	return lo, hi
}

// MinPlus is MinPlusHops without next-hop tracking, for dense matrices
// that carry distances only (the Floyd–Warshall oracle). Reports whether
// any index improved.
func MinPlus(dst, src []graph.Dist, add graph.Dist) bool {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	src = src[:n]
	dst = dst[:n]
	changed := false
	for t, bt := range src {
		if bt == graph.InfDist {
			continue
		}
		if nd := add + bt; nd < dst[t] {
			dst[t] = nd
			changed = true
		}
	}
	return changed
}
