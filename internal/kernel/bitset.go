package kernel

import "math/bits"

// Bitset is a dense bitmask over column indices, stored SWAR-style as
// uint64 words (bit i lives in word i/64). The engine uses it for the
// per-row dirty frontiers that drive the masked min-plus kernels: bit t set
// means column t changed since the last clean global convergence.
//
// All methods are allocation-free; a Bitset is just a word slice, so views
// into a shared word arena (see dv.Matrix) and private copies behave
// identically.
type Bitset []uint64

// BitsetWords returns the number of uint64 words needed for n bits.
func BitsetWords(n int) int { return (n + 63) >> 6 }

// NewBitset allocates a zeroed bitset with capacity for n bits.
func NewBitset(n int) Bitset { return make(Bitset, BitsetWords(n)) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Or folds every set bit of o into b (over the common word prefix).
func (b Bitset) Or(o Bitset) {
	n := len(o)
	if len(b) < n {
		n = len(b)
	}
	for w := 0; w < n; w++ {
		b[w] |= o[w]
	}
}

// Reset clears every bit.
func (b Bitset) Reset() {
	for w := range b {
		b[w] = 0
	}
}

// SetRange sets every bit in the half-open range [lo, hi).
func (b Bitset) SetRange(lo, hi int) {
	if lo >= hi {
		return
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	mLo := ^uint64(0) << uint(lo&63)
	mHi := ^uint64(0) >> uint(63-(hi-1)&63)
	if wLo == wHi {
		b[wLo] |= mLo & mHi
		return
	}
	b[wLo] |= mLo
	for w := wLo + 1; w < wHi; w++ {
		b[w] = ^uint64(0)
	}
	b[wHi] |= mHi
}

// NextSet returns the index of the first set bit >= i, or -1 if none.
func (b Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(b) {
		return -1
	}
	if word := b[w] >> uint(i&63); word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(b); w++ {
		if b[w] != 0 {
			return w<<6 + bits.TrailingZeros64(b[w])
		}
	}
	return -1
}

// OnesCount returns the number of set bits (the frontier's population — the
// numerator of the density cutover).
func (b Bitset) OnesCount() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// NonzeroWords returns how many words hold at least one set bit (the
// FrontierWords telemetry unit).
func (b Bitset) NonzeroWords() int {
	c := 0
	for _, w := range b {
		if w != 0 {
			c++
		}
	}
	return c
}

// Any reports whether any bit is set.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}
