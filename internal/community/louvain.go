// Package community implements Louvain modularity-based community detection.
// The paper extracts the community-structured vertex batches for its
// CutEdge-PS experiments with Pajek's Louvain method; this package plays
// that role for the workload generator, and is exercised directly by the
// examples.
package community

import (
	"math/rand"
	"sort"

	"anytime/internal/graph"
)

// Modularity returns the Newman modularity Q of the labeling over the
// weighted graph: Q = sum_c (in_c/(2W) - (tot_c/(2W))^2), where in_c is
// twice the intra-community weight and tot_c the total degree-weight of c.
func Modularity(g *graph.Graph, label []int32) float64 {
	twoW := 2 * float64(g.TotalWeight())
	if twoW == 0 {
		return 0
	}
	in := map[int32]float64{}  // 2 * intra-community edge weight
	tot := map[int32]float64{} // sum of weighted degrees
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Neighbors(v) {
			tot[label[v]] += float64(a.Weight)
			if label[v] == label[a.To] {
				in[label[v]] += float64(a.Weight)
			}
		}
	}
	q := 0.0
	for c, t := range tot {
		q += in[c]/twoW - (t/twoW)*(t/twoW)
	}
	return q
}

// Result holds the outcome of a Louvain run.
type Result struct {
	Label      []int32 // community of every vertex, dense IDs [0, K)
	K          int     // number of communities
	Modularity float64
	Levels     int // number of aggregation levels performed
}

// Louvain runs the Louvain method (local moving + graph aggregation) until
// modularity stops improving. Deterministic for a fixed seed.
func Louvain(g *graph.Graph, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	// mapping from original vertices to current communities across levels
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i)
	}
	work := g
	levels := 0
	for {
		moved, label, k := localMove(work, rng)
		levels++
		// Project this level's labels onto the original vertices.
		for v := range assign {
			assign[v] = label[assign[v]]
		}
		if !moved || k == work.NumVertices() {
			break
		}
		work = aggregate(work, label, k)
	}
	// densify labels
	dense := make(map[int32]int32)
	for v, c := range assign {
		d, ok := dense[c]
		if !ok {
			d = int32(len(dense))
			dense[c] = d
		}
		assign[v] = d
	}
	return &Result{
		Label:      assign,
		K:          len(dense),
		Modularity: Modularity(g, assign),
		Levels:     levels,
	}
}

// localMove performs the Louvain phase-1 sweep: repeatedly move vertices to
// the neighboring community with the best modularity gain until no move
// improves. Returns whether anything moved, the labels, and the community
// count.
func localMove(g *graph.Graph, rng *rand.Rand) (bool, []int32, int) {
	n := g.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i)
	}
	twoW := 2 * float64(g.TotalWeight())
	if twoW == 0 {
		return false, label, n
	}
	wdeg := make([]float64, n) // weighted degree of each vertex
	for v := 0; v < n; v++ {
		for _, a := range g.Neighbors(v) {
			wdeg[v] += float64(a.Weight)
		}
	}
	tot := append([]float64(nil), wdeg...) // per-community degree sums

	order := rng.Perm(n)
	movedAny := false
	neigh := map[int32]float64{} // weight from v to each neighboring community
	var keys []int32             // neighbor communities in encounter order (determinism)
	for pass := 0; pass < 32; pass++ {
		movedPass := false
		for _, v := range order {
			cur := label[v]
			for _, k := range keys {
				delete(neigh, k)
			}
			keys = keys[:0]
			for _, a := range g.Neighbors(v) {
				c := label[a.To]
				if _, ok := neigh[c]; !ok {
					keys = append(keys, c)
				}
				neigh[c] += float64(a.Weight)
			}
			tot[cur] -= wdeg[v]
			bestC, bestGain := cur, 0.0
			for _, c := range keys {
				// Delta-Q of moving v into c (relative to isolation):
				gain := neigh[c]/twoW - tot[c]*wdeg[v]/(twoW*twoW)*2
				if gain > bestGain ||
					(gain == bestGain && bestC != cur && (c == cur || c < bestC)) {
					bestC, bestGain = c, gain
				}
			}
			tot[bestC] += wdeg[v]
			if bestC != cur {
				label[v] = bestC
				movedPass, movedAny = true, true
			}
		}
		if !movedPass {
			break
		}
	}
	// densify community IDs for aggregation
	dense := make(map[int32]int32)
	for v := range label {
		d, ok := dense[label[v]]
		if !ok {
			d = int32(len(dense))
			dense[label[v]] = d
		}
		label[v] = d
	}
	return movedAny, label, len(dense)
}

// aggregate builds the community super-graph: one vertex per community,
// edge weights summed over inter-community edges. Intra-community weight is
// dropped (self-loops are not representable in graph.Graph); Modularity is
// always re-evaluated against the original graph, so this only biases the
// move heuristic slightly, not the reported result.
func aggregate(g *graph.Graph, label []int32, k int) *graph.Graph {
	super := graph.New(k)
	acc := make(map[int64]int64)
	g.ForEachEdge(func(u, v int, w graph.Weight) {
		cu, cv := label[u], label[v]
		if cu == cv {
			return
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		acc[int64(cu)<<32|int64(cv)] += int64(w)
	})
	keys := make([]int64, 0, len(acc))
	for key := range acc {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		w := acc[key]
		cu, cv := int(key>>32), int(key&0xffffffff)
		if w > int64(^uint32(0)>>1) {
			w = int64(^uint32(0) >> 1)
		}
		super.MustAddEdge(cu, cv, graph.Weight(w))
	}
	return super
}
