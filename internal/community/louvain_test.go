package community_test

import (
	"math/rand"
	"testing"

	"anytime/internal/community"
	"anytime/internal/gen"
	"anytime/internal/graph"
)

func TestModularityKnownValues(t *testing.T) {
	// two triangles joined by one edge
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(3, 5, 1)
	g.MustAddEdge(2, 3, 1)
	perfect := []int32{0, 0, 0, 1, 1, 1}
	q := community.Modularity(g, perfect)
	// Q = 2*(3/7 - (7/14)^2) = 0.357142...
	if q < 0.35 || q > 0.36 {
		t.Fatalf("modularity = %g", q)
	}
	allOne := []int32{0, 0, 0, 0, 0, 0}
	if q1 := community.Modularity(g, allOne); q1 > 1e-9 || q1 < -1e-9 {
		t.Fatalf("single community modularity = %g, want 0", q1)
	}
}

func TestModularityEmptyGraph(t *testing.T) {
	if q := community.Modularity(graph.New(3), []int32{0, 1, 2}); q != 0 {
		t.Fatalf("edgeless modularity = %g", q)
	}
}

func TestLouvainRecoversPlantedCommunities(t *testing.T) {
	g, truth, err := gen.PlantedPartition(240, 4, 0.25, 0.005, gen.Weights{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := community.Louvain(g, 3)
	if res.Modularity < 0.5 {
		t.Fatalf("modularity %g too low for a strongly clustered graph", res.Modularity)
	}
	// agreement: most pairs of same-truth vertices share a Louvain label
	agree, total := 0, 0
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4000; i++ {
		u, v := rng.Intn(240), rng.Intn(240)
		if u == v || truth[u] != truth[v] {
			continue
		}
		total++
		if res.Label[u] == res.Label[v] {
			agree++
		}
	}
	if total == 0 || float64(agree)/float64(total) < 0.9 {
		t.Fatalf("pair agreement %d/%d too low", agree, total)
	}
}

func TestLouvainLabelsDenseAndValid(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, gen.Weights{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := community.Louvain(g, 5)
	if len(res.Label) != 300 {
		t.Fatalf("labels = %d", len(res.Label))
	}
	seen := map[int32]bool{}
	for _, c := range res.Label {
		if int(c) < 0 || int(c) >= res.K {
			t.Fatalf("label %d outside [0,%d)", c, res.K)
		}
		seen[c] = true
	}
	if len(seen) != res.K {
		t.Fatalf("K=%d but %d labels used", res.K, len(seen))
	}
	if res.K <= 1 || res.K >= 300 {
		t.Fatalf("implausible community count %d", res.K)
	}
	if res.Levels < 1 {
		t.Fatal("no levels recorded")
	}
}

func TestLouvainBeatsSingletonModularity(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 2, gen.Weights{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res := community.Louvain(g, 7)
	singleton := make([]int32, 200)
	for i := range singleton {
		singleton[i] = int32(i)
	}
	if res.Modularity <= community.Modularity(g, singleton) {
		t.Fatalf("Louvain modularity %g not above singleton baseline", res.Modularity)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 2, gen.Weights{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	a := community.Louvain(g, 11)
	b := community.Louvain(g, 11)
	for v := range a.Label {
		if a.Label[v] != b.Label[v] {
			t.Fatalf("nondeterministic at %d", v)
		}
	}
}

func TestLouvainEdgelessGraph(t *testing.T) {
	res := community.Louvain(graph.New(5), 1)
	if res.K != 5 {
		t.Fatalf("edgeless graph should give singleton communities, K=%d", res.K)
	}
}
