package sssp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"anytime/internal/graph"
)

// MultiSource runs Dijkstra from every source in sources concurrently with
// `workers` goroutines (0 = GOMAXPROCS), writing results through the
// caller-provided sink. This is the paper's multithreaded IA kernel: each
// processor owns n/P sources and fans them across its cores, for an
// O(((n/P)·n log n)/t) phase.
//
// rows[i] must be a pre-initialized (InfDist-filled, possibly seeded)
// distance slice for sources[i]; mask carries the local-sub-graph
// restriction described at DijkstraInto. hops, when non-nil, receives the
// per-source first-hop vectors (see DijkstraIntoHops); hops[i] may be nil
// to skip a source.
// It returns the total operation count across all sources (for LogP
// accounting; the caller divides by the worker count to model the
// parallel-section time).
func MultiSource(g *graph.Graph, sources []int32, rows [][]graph.Dist, mask []bool, workers int) int64 {
	return MultiSourceHops(g, sources, rows, nil, mask, workers)
}

// MultiSourceHops is MultiSource with optional first-hop tracking.
func MultiSourceHops(g *graph.Graph, sources []int32, rows [][]graph.Dist, hops [][]int32, mask []bool, workers int) int64 {
	hopOf := hopIndexer(sources, rows, hops)
	return multiSourceRun(len(sources), workers, func() func(i int) int64 {
		buf := &heapBuf{}
		return func(i int) int64 {
			return DijkstraIntoHops(g, sources[i], rows[i], hopOf(i), mask, buf)
		}
	})
}

// MultiSourceHopsBFS is MultiSourceHops for unit-weight graphs: every
// source runs the flat-FIFO BFS of BFSIntoHops instead of heap Dijkstra.
// The caller is responsible for ensuring all edge weights equal 1 (see
// graph.Stats).
func MultiSourceHopsBFS(g *graph.Graph, sources []int32, rows [][]graph.Dist, hops [][]int32, mask []bool, workers int) int64 {
	hopOf := hopIndexer(sources, rows, hops)
	return multiSourceRun(len(sources), workers, func() func(i int) int64 {
		buf := &queueBuf{}
		return func(i int) int64 {
			return BFSIntoHops(g, sources[i], rows[i], hopOf(i), mask, buf)
		}
	})
}

func hopIndexer(sources []int32, rows [][]graph.Dist, hops [][]int32) func(int) []int32 {
	if len(sources) != len(rows) {
		panic("sssp: sources/rows length mismatch")
	}
	return func(i int) []int32 {
		if hops == nil {
			return nil
		}
		return hops[i]
	}
}

// multiSourceRun fans the source indices [0, n) across `workers`
// goroutines. newWorker is called once per goroutine to build its runner
// around private scratch buffers.
func multiSourceRun(n, workers int, newWorker func() func(i int) int64) int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		run := newWorker()
		var ops int64
		for i := 0; i < n; i++ {
			ops += run(i)
		}
		return ops
	}
	// next is the shared source cursor: workers claim indices with one
	// atomic fetch-add each — no lock, no contention beyond the cache line.
	var next int64
	var totalOps int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			run := newWorker()
			var ops int64
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= n {
					atomic.AddInt64(&totalOps, ops)
					return
				}
				ops += run(i)
			}
		}()
	}
	wg.Wait()
	return totalOps
}
