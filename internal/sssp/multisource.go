package sssp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"anytime/internal/graph"
)

// MultiSource runs Dijkstra from every source in sources concurrently with
// `workers` goroutines (0 = GOMAXPROCS), writing results through the
// caller-provided sink. This is the paper's multithreaded IA kernel: each
// processor owns n/P sources and fans them across its cores, for an
// O(((n/P)·n log n)/t) phase.
//
// rows[i] must be a pre-initialized (InfDist-filled, possibly seeded)
// distance slice for sources[i]; mask carries the local-sub-graph
// restriction described at DijkstraInto. hops, when non-nil, receives the
// per-source first-hop vectors (see DijkstraIntoHops); hops[i] may be nil
// to skip a source.
// It returns the total operation count across all sources (for LogP
// accounting; the caller divides by the worker count to model the
// parallel-section time).
func MultiSource(g *graph.Graph, sources []int32, rows [][]graph.Dist, mask []bool, workers int) int64 {
	return MultiSourceHops(g, sources, rows, nil, mask, workers)
}

// MultiSourceHops is MultiSource with optional first-hop tracking.
func MultiSourceHops(g *graph.Graph, sources []int32, rows [][]graph.Dist, hops [][]int32, mask []bool, workers int) int64 {
	if len(sources) != len(rows) {
		panic("sssp: sources/rows length mismatch")
	}
	hopOf := func(i int) []int32 {
		if hops == nil {
			return nil
		}
		return hops[i]
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		buf := &heapBuf{}
		var ops int64
		for i, s := range sources {
			ops += DijkstraIntoHops(g, s, rows[i], hopOf(i), mask, buf)
		}
		return ops
	}
	var next int64
	var totalOps int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		i := int(next)
		next++
		mu.Unlock()
		return i
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			buf := &heapBuf{}
			var ops int64
			for {
				i := take()
				if i >= len(sources) {
					atomic.AddInt64(&totalOps, ops)
					return
				}
				ops += DijkstraIntoHops(g, sources[i], rows[i], hopOf(i), mask, buf)
			}
		}()
	}
	wg.Wait()
	return totalOps
}
