package sssp

import (
	"anytime/internal/graph"
	"anytime/internal/kernel"
)

// FloydWarshall computes APSP on a dense distance matrix in place. dist
// must be square with dist[i][i] == 0 and dist[i][j] the direct edge weight
// or InfDist. Used as a small-graph verification oracle and as the model
// for the engine's local refinement strategy; the inner relaxation is the
// same min-plus kernel the engine uses.
func FloydWarshall(dist [][]graph.Dist) {
	n := len(dist)
	for k := 0; k < n; k++ {
		dk := dist[k]
		for i := 0; i < n; i++ {
			di := dist[i]
			dik := di[k]
			if dik == graph.InfDist {
				continue
			}
			kernel.MinPlus(di, dk, dik)
		}
	}
}

// DenseFromGraph builds the dense initial matrix FloydWarshall expects.
func DenseFromGraph(g *graph.Graph) [][]graph.Dist {
	n := g.NumVertices()
	dist := make([][]graph.Dist, n)
	for i := range dist {
		row := make([]graph.Dist, n)
		for j := range row {
			row[j] = graph.InfDist
		}
		row[i] = 0
		dist[i] = row
	}
	g.ForEachEdge(func(u, v int, w graph.Weight) {
		if w < dist[u][v] {
			dist[u][v], dist[v][u] = w, w
		}
	})
	return dist
}

// BellmanFord computes single-source shortest paths by edge relaxation.
// O(V·E); retained as an independent oracle for cross-checking Dijkstra in
// tests.
func BellmanFord(g *graph.Graph, src int) []graph.Dist {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		g.ForEachEdge(func(u, v int, w graph.Weight) {
			if d := graph.AddDist(dist[u], w); d < dist[v] {
				dist[v] = d
				changed = true
			}
			if d := graph.AddDist(dist[v], w); d < dist[u] {
				dist[u] = d
				changed = true
			}
		})
		if !changed {
			break
		}
	}
	return dist
}
