package sssp

import (
	"anytime/internal/graph"
	"anytime/internal/kernel"
)

// queueBuf is a reusable flat FIFO queue for repeated BFS runs, the
// unit-weight counterpart of heapBuf. seed is the scratch one-bit frontier
// BFSIntoHops hands the frontier-seeded core.
type queueBuf struct {
	q    []int32
	seed kernel.Bitset
}

// BFSIntoHops is DijkstraIntoHops specialized to unit edge weights: with
// every weight equal to 1 the priority queue pops vertices in nondecreasing
// distance order anyway, so the binary heap degenerates to a plain FIFO —
// no sift-up/down, no lazy duplicates, one queue slot per vertex. The
// contract (pre-filled dist, mask = relax-but-don't-expand boundary
// semantics, first-hop tracking, LogP op count of pops plus edge scans) is
// identical to DijkstraIntoHops; calling it on a graph with any weight
// != 1 yields wrong distances. It is a one-bit wrapper over the
// frontier-seeded core BFSFrontierIntoHops.
func BFSIntoHops(g *graph.Graph, src int32, dist []graph.Dist, hops []int32, mask []bool, buf *queueBuf) int64 {
	dist[src] = 0
	if hops != nil {
		hops[src] = src
	}
	if want := kernel.BitsetWords(len(dist)); len(buf.seed) < want {
		buf.seed = kernel.NewBitset(len(dist))
	}
	buf.seed.Set(int(src))
	ops := BFSFrontierIntoHops(g, src, buf.seed, dist, hops, mask, buf)
	buf.seed.Clear(int(src))
	return ops
}

// BFSFrontierIntoHops is the frontier-seeded core of the unit-weight BFS
// fast path: instead of expanding from a single source, the queue is
// seeded with every vertex set in frontier — at its pre-filled distance —
// found by word-level NextSet iteration over the bitmask rather than an
// O(n) row scan. The loop is SPFA-shaped rather than strict BFS: a vertex
// re-enqueues whenever its distance improves, so mixed-depth seeds (the
// change frontier a masked relaxation pass leaves behind) converge to the
// same fixed point a full re-expansion from the source would.
//
// Contract: dist holds valid unit-weight upper bounds; seeds at InfDist
// are skipped (nothing to expand yet); every finite-distance seed other
// than src carries a valid hops entry, which its BFS children inherit.
// src names the row's source vertex and is used only for first-hop
// bookkeeping. Returns the LogP op count (pops plus edge scans).
func BFSFrontierIntoHops(g *graph.Graph, src int32, frontier kernel.Bitset, dist []graph.Dist, hops []int32, mask []bool, buf *queueBuf) int64 {
	q := buf.q[:0]
	for v := frontier.NextSet(0); v >= 0 && v < len(dist); v = frontier.NextSet(v + 1) {
		if dist[v] == graph.InfDist {
			continue
		}
		q = append(q, int32(v))
	}
	var ops int64
	for head := 0; head < len(q); head++ {
		v := q[head]
		ops++
		if mask != nil && !mask[v] {
			continue // boundary vertex: relaxed but not expanded
		}
		d := dist[v]
		for _, a := range g.Neighbors(int(v)) {
			ops++
			nd := d + 1
			if nd < dist[a.To] {
				dist[a.To] = nd
				if hops != nil {
					if v == src {
						hops[a.To] = a.To
					} else {
						hops[a.To] = hops[v]
					}
				}
				q = append(q, a.To)
			}
		}
	}
	buf.q = q[:0]
	return ops
}
