package sssp

import (
	"anytime/internal/graph"
)

// queueBuf is a reusable flat FIFO queue for repeated BFS runs, the
// unit-weight counterpart of heapBuf.
type queueBuf struct{ q []int32 }

// BFSIntoHops is DijkstraIntoHops specialized to unit edge weights: with
// every weight equal to 1 the priority queue pops vertices in nondecreasing
// distance order anyway, so the binary heap degenerates to a plain FIFO —
// no sift-up/down, no lazy duplicates, one queue slot per vertex. The
// contract (pre-filled dist, mask = relax-but-don't-expand boundary
// semantics, first-hop tracking, LogP op count of pops plus edge scans) is
// identical to DijkstraIntoHops; calling it on a graph with any weight
// != 1 yields wrong distances.
func BFSIntoHops(g *graph.Graph, src int32, dist []graph.Dist, hops []int32, mask []bool, buf *queueBuf) int64 {
	q := buf.q[:0]
	dist[src] = 0
	if hops != nil {
		hops[src] = src
	}
	q = append(q, src)
	var ops int64
	for head := 0; head < len(q); head++ {
		v := q[head]
		ops++
		if mask != nil && !mask[v] {
			continue // boundary vertex: relaxed but not expanded
		}
		d := dist[v]
		for _, a := range g.Neighbors(int(v)) {
			ops++
			nd := d + 1
			if nd < dist[a.To] {
				dist[a.To] = nd
				if hops != nil {
					if v == src {
						hops[a.To] = a.To
					} else {
						hops[a.To] = hops[v]
					}
				}
				q = append(q, a.To)
			}
		}
	}
	buf.q = q[:0]
	return ops
}
