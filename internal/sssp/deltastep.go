package sssp

import (
	"anytime/internal/graph"
)

// DeltaStepping computes single-source shortest paths with the Δ-stepping
// algorithm (Meyer & Sanders): tentative distances are kept in buckets of
// width delta; each bucket is settled by iterated *light*-edge (w ≤ Δ)
// relaxations, after which *heavy* edges are relaxed once. Δ-stepping is
// the classic parallel-friendly SSSP used by HPC graph frameworks; it is
// provided as an alternative to the Dijkstra IA kernel and benchmarked
// against it.
//
// delta must be positive; a common choice is the average edge weight.
// Returns the distance slice and the operation count (for LogP
// accounting).
func DeltaStepping(g *graph.Graph, src int, delta graph.Weight) ([]graph.Dist, int64) {
	n := g.NumVertices()
	dist := make([]graph.Dist, n)
	for i := range dist {
		dist[i] = graph.InfDist
	}
	if delta <= 0 {
		delta = 1
	}
	if n == 0 {
		return dist, 0
	}
	var ops int64

	bucketOf := func(d graph.Dist) int { return int(d / delta) }
	var buckets [][]int32
	inBucket := make([]int, n) // bucket index the vertex currently sits in, -1 = none
	for i := range inBucket {
		inBucket[i] = -1
	}
	place := func(v int32, d graph.Dist) {
		b := bucketOf(d)
		for len(buckets) <= b {
			buckets = append(buckets, nil)
		}
		buckets[b] = append(buckets[b], v)
		inBucket[v] = b
	}
	relax := func(v int32, d graph.Dist) {
		ops++
		if d < dist[v] {
			dist[v] = d
			place(v, d)
		}
	}

	relax(int32(src), 0)
	for bi := 0; bi < len(buckets); bi++ {
		// settle the bucket with light edges; remember its members for the
		// heavy pass
		var settled []int32
		for len(buckets[bi]) > 0 {
			frontier := buckets[bi]
			buckets[bi] = nil
			for _, v := range frontier {
				if inBucket[v] != bi || bucketOf(dist[v]) != bi {
					continue // moved to an earlier bucket by a better path
				}
				inBucket[v] = -1
				settled = append(settled, v)
				dv := dist[v]
				for _, a := range g.Neighbors(int(v)) {
					ops++
					if a.Weight <= delta {
						relax(a.To, dv+a.Weight)
					}
				}
			}
		}
		for _, v := range settled {
			dv := dist[v]
			if bucketOf(dv) != bi {
				continue // improved after settling; will be (was) handled in its bucket
			}
			for _, a := range g.Neighbors(int(v)) {
				ops++
				if a.Weight > delta {
					relax(a.To, dv+a.Weight)
				}
			}
		}
	}
	return dist, ops
}
