package sssp

import (
	"math/rand"
	"testing"

	"anytime/internal/graph"
	"anytime/internal/kernel"
)

func unitGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 1)
	}
	return g
}

func infRow(n int) []graph.Dist {
	d := make([]graph.Dist, n)
	for i := range d {
		d[i] = graph.InfDist
	}
	return d
}

func negRow(n int) []int32 {
	h := make([]int32, n)
	for i := range h {
		h[i] = -1
	}
	return h
}

// On unit-weight graphs Dijkstra degenerates to BFS: the flat-FIFO fast
// path must produce bit-identical distances, and its first hops must be
// valid (a shortest path to t really does leave src through hops[t]).
func TestBFSMatchesDijkstraUnitWeights(t *testing.T) {
	const n = 70
	g := unitGraph(n, 160, 41)
	apsp := APSP(g)
	var hb heapBuf
	var qb queueBuf
	for src := int32(0); src < n; src += 7 {
		dd, dh := infRow(n), negRow(n)
		DijkstraIntoHops(g, src, dd, dh, nil, &hb)
		bd, bh := infRow(n), negRow(n)
		BFSIntoHops(g, src, bd, bh, nil, &qb)
		for t2 := 0; t2 < n; t2++ {
			if bd[t2] != dd[t2] {
				t.Fatalf("src %d: BFS dist[%d] = %d, Dijkstra %d", src, t2, bd[t2], dd[t2])
			}
			if bd[t2] == graph.InfDist || t2 == int(src) {
				continue
			}
			// First-hop validity: hops[t] neighbors src and lies on a
			// shortest path (equal-length ties may route differently than
			// Dijkstra's heap order, so we check the invariant, not
			// equality).
			h := bh[t2]
			if h < 0 || !g.HasEdge(int(src), int(h)) {
				t.Fatalf("src %d: BFS hop[%d] = %d is not a neighbor", src, t2, h)
			}
			w, _ := g.EdgeWeight(int(src), int(h))
			if graph.Dist(w)+apsp[h][t2] != bd[t2] {
				t.Fatalf("src %d: hop %d not on a shortest path to %d", src, h, t2)
			}
		}
	}
}

// BFS must honor the IA-phase mask contract: boundary vertices are relaxed
// but never expanded.
func TestBFSMaskSemantics(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(0, 3, 1)
	mask := []bool{true, true, true, false, false} // {0,1,2} local
	dist := infRow(5)
	var buf queueBuf
	BFSIntoHops(g, 0, dist, nil, mask, &buf)
	if dist[3] != 1 {
		t.Fatalf("dist[3] = %d, want 1", dist[3])
	}
	if dist[4] != graph.InfDist {
		t.Fatalf("dist[4] = %d, want InfDist (mask violated)", dist[4])
	}
}

// The BFS multi-source pool must agree with the Dijkstra pool for every
// worker count (distances are weight-1 exact either way).
func TestMultiSourceBFSMatchesDijkstra(t *testing.T) {
	const n = 60
	g := unitGraph(n, 140, 43)
	sources := []int32{0, 5, 11, 23, 42, 59}
	mk := func() ([][]graph.Dist, [][]int32) {
		rows := make([][]graph.Dist, len(sources))
		hops := make([][]int32, len(sources))
		for i := range rows {
			rows[i] = infRow(n)
			hops[i] = negRow(n)
		}
		return rows, hops
	}
	refRows, refHops := mk()
	MultiSourceHops(g, sources, refRows, refHops, nil, 1)
	for _, workers := range []int{1, 2, 4} {
		rows, hops := mk()
		ops := MultiSourceHopsBFS(g, sources, rows, hops, nil, workers)
		if ops == 0 {
			t.Fatal("no ops reported")
		}
		for i := range sources {
			for j := 0; j < n; j++ {
				if rows[i][j] != refRows[i][j] {
					t.Fatalf("workers=%d source=%d dist mismatch at %d", workers, sources[i], j)
				}
			}
		}
	}
}

// The frontier-seeded core must absorb mixed-depth seeds: seeding the
// queue with any subset of correctly-distanced vertices (src included)
// reproduces the full single-source answer, because the SPFA-shaped loop
// re-enqueues on every improvement rather than assuming BFS level order.
func TestBFSFrontierMixedDepthSeeds(t *testing.T) {
	const n = 80
	g := unitGraph(n, 180, 47)
	var qb queueBuf
	ref := infRow(n)
	BFSIntoHops(g, 0, ref, nil, nil, &qb)
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 10; trial++ {
		frontier := kernel.NewBitset(n)
		dist := infRow(n)
		frontier.Set(0)
		dist[0] = 0
		for v := 1; v < n; v++ {
			if rng.Intn(3) == 0 {
				frontier.Set(v)
				dist[v] = ref[v] // seed at its true depth
			}
		}
		BFSFrontierIntoHops(g, 0, frontier, dist, nil, nil, &qb)
		for v := 0; v < n; v++ {
			if dist[v] != ref[v] {
				t.Fatalf("trial %d: frontier-seeded dist[%d] = %d, want %d", trial, v, dist[v], ref[v])
			}
		}
	}
}
