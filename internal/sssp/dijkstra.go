// Package sssp implements the shortest-path kernels of the engine:
// binary-heap Dijkstra (single source), the multithreaded multi-source
// Dijkstra used by the Initial Approximation phase, Bellman–Ford and
// Floyd–Warshall reference/refinement algorithms, and a sequential APSP
// oracle used to verify the distributed computation.
package sssp

import (
	"anytime/internal/graph"
)

// heap is a hand-rolled binary min-heap of (vertex, dist) keyed by dist.
// Hand-rolled (rather than container/heap) to avoid interface boxing on the
// hot path; decrease-key is realized by lazy insertion with a settled mask.
type heap struct {
	v []int32
	d []graph.Dist
}

func (h *heap) push(v int32, d graph.Dist) {
	h.v = append(h.v, v)
	h.d = append(h.d, d)
	i := len(h.v) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.d[p] <= h.d[i] {
			break
		}
		h.v[p], h.v[i] = h.v[i], h.v[p]
		h.d[p], h.d[i] = h.d[i], h.d[p]
		i = p
	}
}

func (h *heap) pop() (int32, graph.Dist) {
	v, d := h.v[0], h.d[0]
	last := len(h.v) - 1
	h.v[0], h.d[0] = h.v[last], h.d[last]
	h.v, h.d = h.v[:last], h.d[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.d[l] < h.d[m] {
			m = l
		}
		if r < last && h.d[r] < h.d[m] {
			m = r
		}
		if m == i {
			break
		}
		h.v[m], h.v[i] = h.v[i], h.v[m]
		h.d[m], h.d[i] = h.d[i], h.d[m]
		i = m
	}
	return v, d
}

func (h *heap) empty() bool { return len(h.v) == 0 }

func (h *heap) reset() { h.v, h.d = h.v[:0], h.d[:0] }

// Dijkstra computes single-source shortest path distances from src over the
// whole graph, returning a length-N distance slice (InfDist = unreachable).
func Dijkstra(g *graph.Graph, src int) []graph.Dist {
	dist := make([]graph.Dist, g.NumVertices())
	for i := range dist {
		dist[i] = graph.InfDist
	}
	DijkstraInto(g, int32(src), dist, nil, &heapBuf{})
	return dist
}

// heapBuf is a reusable scratch buffer for repeated Dijkstra runs.
type heapBuf struct{ h heap }

// DijkstraInto runs Dijkstra from src into the provided dist slice (which
// must be pre-filled with InfDist except any entries the caller wants to
// seed). If mask is non-nil, traversal is restricted to vertices v with
// mask[v] == true; arcs leading outside the mask still relax the target's
// distance but the target is not expanded. This is exactly the "local
// sub-graph with external boundary vertices" semantics of the IA phase:
// boundary vertices receive distances but do not propagate through their
// (unknown) external edges.
//
// If hops is non-nil it receives the distance-vector-routing first hop:
// hops[t] = the neighbor of src that a shortest path to t leaves through
// (hops[src] = src; untouched entries stay as provided for unreachable t).
//
// The returned count of heap pops plus edge scans feeds the LogP
// virtual-time accounting.
func DijkstraInto(g *graph.Graph, src int32, dist []graph.Dist, mask []bool, buf *heapBuf) int64 {
	return DijkstraIntoHops(g, src, dist, nil, mask, buf)
}

// DijkstraIntoHops is DijkstraInto with optional first-hop tracking.
func DijkstraIntoHops(g *graph.Graph, src int32, dist []graph.Dist, hops []int32, mask []bool, buf *heapBuf) int64 {
	h := &buf.h
	h.reset()
	dist[src] = 0
	if hops != nil {
		hops[src] = src
	}
	h.push(src, 0)
	var ops int64
	for !h.empty() {
		v, d := h.pop()
		ops++
		if d > dist[v] {
			continue // stale entry
		}
		if mask != nil && !mask[v] {
			continue // boundary vertex: relaxed but not expanded
		}
		for _, a := range g.Neighbors(int(v)) {
			ops++
			nd := d + a.Weight
			if nd < dist[a.To] {
				dist[a.To] = nd
				if hops != nil {
					if v == src {
						hops[a.To] = a.To
					} else {
						hops[a.To] = hops[v]
					}
				}
				h.push(a.To, nd)
			}
		}
	}
	return ops
}

// APSP computes all-pairs shortest paths sequentially (one Dijkstra per
// source); row i is the distance vector of vertex i. It is the verification
// oracle for the distributed engine.
func APSP(g *graph.Graph) [][]graph.Dist {
	n := g.NumVertices()
	out := make([][]graph.Dist, n)
	buf := &heapBuf{}
	for s := 0; s < n; s++ {
		row := make([]graph.Dist, n)
		for i := range row {
			row[i] = graph.InfDist
		}
		DijkstraInto(g, int32(s), row, nil, buf)
		out[s] = row
	}
	return out
}
